#!/usr/bin/env bash
# bench.sh — run the headline microbenchmarks behind the PRs' performance
# claims and capture benchstat-ready output plus JSON summaries.
#
# Usage: scripts/bench.sh [pr1-out.json] [pr2-out.json] [pr4-out.json] [pr5-out.json] [pr6-out.json] [pr7-out.json] [pr8-out.json] [pr9-out.json] [pr10-out.json]
# Stage 1: the four PR-1 hot-path microbenchmarks -> BENCH_PR1.json.
# Stage 2: the PR-2 service-throughput benchmark (batches/sec at 1, 2, and
# 4 clients over loopback TCP) -> BENCH_PR2.json.
# Stage 3: the PR-4 cluster-throughput benchmark (batches/sec routed across
# 1, 2, and 3 emulate-time loopback nodes) -> BENCH_PR4.json, plus a check
# that the 3-node aggregate beats the single node.
# Stage 4: the PR-5 materialized-batch-cache comparison (uncached vs cached
# service throughput at 1..8 clients, plus the pooled-encode benchmarks)
# -> BENCH_PR5.json, plus a check that cached clients=4 is at least 2x the
# uncached clients=1 baseline.
# Stage 5: the PR-6 split-point sample-cache comparison on the augmented
# workload (every iteration is a fresh epoch, so the batch cache never hits)
# -> BENCH_PR6.json, plus a check that the sampleCached series is at least
# 5x the cold series.
# Stage 6: the PR-7 warm-restart comparison (fresh server per iteration,
# cold recompute vs a disk directory warmed once) -> BENCH_PR7.json, plus a
# check that warmRestart is at least 5x cold.
# Stage 7: the PR-8 straggler-tail comparison (p99 epoch latency across a
# 3-node cluster with one degraded node, hedged vs unhedged) ->
# BENCH_PR8.json, plus a check that hedging cuts the p99 at least 2x.
# Stage 8: the PR-9 closed-loop balancer comparison (aggregate throughput of
# an imbalanced 3-node emulate cluster whose busiest node pays ~3x per
# batch, autotune off vs on) -> BENCH_PR9.json, plus a check that the
# balancer lifts throughput at least 1.5x.
# Stage 9: the PR-10 multi-tenancy scalability suite -> BENCH_PR10.json:
# per-session footprint (bytes and goroutines, idle and streaming), aggregate
# cache-served throughput at 8/64/256/1024 concurrent sessions, and tenant
# fairness with one adversarial greedy tenant (Jain index, worst per-tenant
# p99). Gates: clients=256 aggregate >= 0.8x the clients=8 baseline, and
# Jain >= 0.9 under the greedy tenant.
# The raw `go test -bench` output (6 repetitions, suitable for feeding to
# benchstat old.txt new.txt) is written next to each JSON as <outfile>.txt.
set -euo pipefail

cd "$(dirname "$0")/.."

# Fail loudly before any stage runs: a package that no longer builds would
# otherwise surface as a confusing mid-run awk parse of go's error text.
echo "preflight: go build ./... ..."
if ! go build ./...; then
    echo "FAIL: go build ./... failed — fix the build before benchmarking" >&2
    exit 1
fi

# require_bench FILE STAGE: a stage whose `go test -bench` output contains no
# benchmark lines produced nothing to summarize (regex typo, build failure
# swallowed by tee, benchmark renamed) — fail instead of writing empty JSON.
require_bench() {
    if ! grep -q '^Benchmark' "$1"; then
        echo "FAIL: $2 produced no benchmark lines in $1" >&2
        exit 1
    fi
}

OUT_JSON="${1:-BENCH_PR1.json}"
OUT_TXT="${OUT_JSON%.json}.txt"
SERVE_JSON="${2:-BENCH_PR2.json}"
SERVE_TXT="${SERVE_JSON%.json}.txt"
CLUSTER_JSON="${3:-BENCH_PR4.json}"
CLUSTER_TXT="${CLUSTER_JSON%.json}.txt"
CACHE_JSON="${4:-BENCH_PR5.json}"
CACHE_TXT="${CACHE_JSON%.json}.txt"
SCACHE_JSON="${5:-BENCH_PR6.json}"
SCACHE_TXT="${SCACHE_JSON%.json}.txt"
DISK_JSON="${6:-BENCH_PR7.json}"
DISK_TXT="${DISK_JSON%.json}.txt"
STRAG_JSON="${7:-BENCH_PR8.json}"
STRAG_TXT="${STRAG_JSON%.json}.txt"
TUNE_JSON="${8:-BENCH_PR9.json}"
TUNE_TXT="${TUNE_JSON%.json}.txt"
MT_JSON="${9:-BENCH_PR10.json}"
MT_TXT="${MT_JSON%.json}.txt"

BENCHES='BenchmarkBilinearResize|BenchmarkSJPGDecode|BenchmarkUntracedEpoch|BenchmarkTracerEmit'

echo "running: $BENCHES (6 reps, -benchmem) ..."
go test -run '^$' -bench "$BENCHES" -benchmem -count=6 . | tee "$OUT_TXT"
require_bench "$OUT_TXT" "stage 1"

# Summarize medians into JSON (portable awk, no gawk extensions).
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      bop[name]    = bop[name] " " $i
        if ($(i+1) == "allocs/op") allocs[name] = allocs[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"B_op\": %s, \"allocs_op\": %s}%s\n", \
            name, median(ns[name]), median(bop[name]), median(allocs[name]), \
            (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$OUT_TXT" > "$OUT_JSON"

echo "summary written to $OUT_JSON (raw benchstat input: $OUT_TXT)"

echo "running: BenchmarkServiceThroughput (6 reps) ..."
# Anchored so the PR-5 BenchmarkServiceThroughputCached does not pollute the
# PR-2 baseline series.
go test -run '^$' -bench '^BenchmarkServiceThroughput$' -count=6 ./internal/serve | tee "$SERVE_TXT"
require_bench "$SERVE_TXT" "stage 2"

awk '
/^BenchmarkServiceThroughput\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec") bps[name] = bps[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"batches_per_sec\": %s}%s\n", \
            name, median(ns[name]), median(bps[name]), \
            (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$SERVE_TXT" > "$SERVE_JSON"

echo "summary written to $SERVE_JSON (raw benchstat input: $SERVE_TXT)"

echo "running: BenchmarkClusterThroughput (3 reps) ..."
go test -run '^$' -bench 'BenchmarkClusterThroughput' -count=3 ./internal/cluster | tee "$CLUSTER_TXT"
require_bench "$CLUSTER_TXT" "stage 3"

awk '
/^BenchmarkClusterThroughput/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec") bps[name] = bps[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"batches_per_sec\": %s}%s\n", \
            name, median(ns[name]), median(bps[name]), \
            (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$CLUSTER_TXT" > "$CLUSTER_JSON"

echo "summary written to $CLUSTER_JSON (raw benchstat input: $CLUSTER_TXT)"

# Scaling check: the 3-node cluster must out-serve the single node.
awk -F'[:,}]' '
/nodes=1/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) one = $(i+1) + 0 }
/nodes=3/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) three = $(i+1) + 0 }
END {
    printf "cluster scaling: nodes=1 %.1f batches/sec, nodes=3 %.1f batches/sec (%.2fx)\n", one, three, three / one
    if (!(three > one)) { print "FAIL: 3-node cluster is not faster than a single node" > "/dev/stderr"; exit 1 }
}' "$CLUSTER_JSON"

echo "running: BenchmarkServiceThroughput(Cached)? + encode benchmarks (6 reps) ..."
go test -run '^$' -bench '^(BenchmarkServiceThroughput|BenchmarkServiceThroughputCached|BenchmarkEncodeBatch|BenchmarkEncodeBatchPooled)$' \
    -benchmem -count=6 ./internal/serve | tee "$CACHE_TXT"
require_bench "$CACHE_TXT" "stage 4"

awk '
/^Benchmark(ServiceThroughput|EncodeBatch)/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec") bps[name] = bps[name] " " $i
        if ($(i+1) == "allocs/op")   allocs[name] = allocs[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s", name, median(ns[name])
        if (bps[name] != "")    printf ", \"batches_per_sec\": %s", median(bps[name])
        if (allocs[name] != "") printf ", \"allocs_op\": %s", median(allocs[name])
        printf "}%s\n", (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$CACHE_TXT" > "$CACHE_JSON"

echo "summary written to $CACHE_JSON (raw benchstat input: $CACHE_TXT)"

# Acceptance checks: cached clients=4 must be at least 2x the uncached
# clients=1 baseline, and the pooled encoder must be allocation-free.
awk -F'[:,}]' '
/"BenchmarkServiceThroughput\/clients=1"/       { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) base = $(i+1) + 0 }
/"BenchmarkServiceThroughputCached\/clients=4"/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) cached = $(i+1) + 0 }
/"BenchmarkEncodeBatchPooled"/                  { for (i = 1; i <= NF; i++) if ($i ~ /allocs_op/)       pooled_allocs = $(i+1) + 0 }
END {
    printf "cache scaling: uncached clients=1 %.1f batches/sec, cached clients=4 %.1f batches/sec (%.2fx)\n", base, cached, cached / base
    if (!(cached >= 2 * base)) { print "FAIL: cached clients=4 is not 2x the uncached clients=1 baseline" > "/dev/stderr"; exit 1 }
    printf "pooled encode: %d allocs/op\n", pooled_allocs
    if (pooled_allocs != 0) { print "FAIL: pooled batch encoder allocates" > "/dev/stderr"; exit 1 }
}' "$CACHE_JSON"

echo "running: BenchmarkServiceThroughputAugmented (6 reps) ..."
go test -run '^$' -bench '^BenchmarkServiceThroughputAugmented$' -count=6 ./internal/serve | tee "$SCACHE_TXT"
require_bench "$SCACHE_TXT" "stage 5"

awk '
/^BenchmarkServiceThroughputAugmented\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec") bps[name] = bps[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"batches_per_sec\": %s}%s\n", \
            name, median(ns[name]), median(bps[name]), \
            (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$SCACHE_TXT" > "$SCACHE_JSON"

echo "summary written to $SCACHE_JSON (raw benchstat input: $SCACHE_TXT)"

# Acceptance check: the sample-cached augmented series must be at least 5x
# the cold series — the split-point cache's reason to exist.
awk -F'[:,}]' '
/"BenchmarkServiceThroughputAugmented\/cold"/         { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) cold = $(i+1) + 0 }
/"BenchmarkServiceThroughputAugmented\/sampleCached"/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) cached = $(i+1) + 0 }
END {
    printf "sample cache: cold %.1f batches/sec, sampleCached %.1f batches/sec (%.2fx)\n", cold, cached, cached / cold
    if (!(cached >= 5 * cold)) { print "FAIL: sampleCached is not 5x the cold augmented baseline" > "/dev/stderr"; exit 1 }
}' "$SCACHE_JSON"

echo "running: BenchmarkServiceWarmRestart (6 reps) ..."
go test -run '^$' -bench '^BenchmarkServiceWarmRestart$' -count=6 ./internal/serve | tee "$DISK_TXT"
require_bench "$DISK_TXT" "stage 6"

awk '
/^BenchmarkServiceWarmRestart\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec") bps[name] = bps[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"batches_per_sec\": %s}%s\n", \
            name, median(ns[name]), median(bps[name]), \
            (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$DISK_TXT" > "$DISK_JSON"

echo "summary written to $DISK_JSON (raw benchstat input: $DISK_TXT)"

# Acceptance check: a restart onto a warmed disk directory must stream at
# least 5x the cold-restart recompute — the persistent tier's reason to exist.
awk -F'[:,}]' '
/"BenchmarkServiceWarmRestart\/cold"/        { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) cold = $(i+1) + 0 }
/"BenchmarkServiceWarmRestart\/warmRestart"/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) warm = $(i+1) + 0 }
END {
    printf "warm restart: cold %.1f batches/sec, warmRestart %.1f batches/sec (%.2fx)\n", cold, warm, warm / cold
    if (!(warm >= 5 * cold)) { print "FAIL: warmRestart is not 5x the cold restart baseline" > "/dev/stderr"; exit 1 }
}' "$DISK_JSON"

echo "running: BenchmarkStragglerTail (3 reps) ..."
# Each iteration routes a full epoch through a 3-node cluster whose busiest
# node stalls 1.5s per batch, so reps are expensive; 3 medians are enough for
# a >=2x gate.
go test -run '^$' -bench '^BenchmarkStragglerTail$' -benchtime 4x -count=3 -timeout 30m ./internal/cluster | tee "$STRAG_TXT"
require_bench "$STRAG_TXT" "stage 7"

awk '
/^BenchmarkStragglerTail\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "p99-epoch-ms") p99[name] = p99[name] " " $i
        if ($(i+1) == "batches/sec")  bps[name] = bps[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"p99_epoch_ms\": %s, \"batches_per_sec\": %s}%s\n", \
            name, median(ns[name]), median(p99[name]), median(bps[name]), \
            (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$STRAG_TXT" > "$STRAG_JSON"

echo "summary written to $STRAG_JSON (raw benchstat input: $STRAG_TXT)"

# Acceptance check: hedged fetches must cut the straggler cluster's p99 epoch
# latency at least in half — the PR-8 headline claim. Output bytes are
# verified inside the benchmark itself (every epoch is compared to a healthy
# node's ground truth).
awk -F'[:,}]' '
/"BenchmarkStragglerTail\/hedge=off"/ { for (i = 1; i <= NF; i++) if ($i ~ /p99_epoch_ms/) off = $(i+1) + 0 }
/"BenchmarkStragglerTail\/hedge=on"/  { for (i = 1; i <= NF; i++) if ($i ~ /p99_epoch_ms/) on = $(i+1) + 0 }
END {
    printf "straggler tail: hedge=off p99 %.0f ms, hedge=on p99 %.0f ms (%.2fx)\n", off, on, off / on
    if (!(off >= 2 * on)) { print "FAIL: hedged fetches do not cut straggler p99 epoch latency 2x" > "/dev/stderr"; exit 1 }
}' "$STRAG_JSON"

echo "running: BenchmarkAutotuneImbalanced (3 reps) ..."
# Each iteration routes a full epoch through an imbalanced 3-node emulate
# cluster (the busiest node stalls 100ms per batch); the autotune=on series
# re-weights the ring as it goes, so 4 iterations per rep cover convergence
# plus the settled regime.
go test -run '^$' -bench '^BenchmarkAutotuneImbalanced$' -benchtime 4x -count=3 -timeout 30m ./internal/cluster | tee "$TUNE_TXT"
require_bench "$TUNE_TXT" "stage 8"

awk '
/^BenchmarkAutotuneImbalanced\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec")   bps[name] = bps[name] " " $i
        if ($(i+1) == "victim-weight") vw[name]  = vw[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"batches_per_sec\": %s", \
            name, median(ns[name]), median(bps[name])
        if (vw[name] != "") printf ", \"victim_weight\": %s", median(vw[name])
        printf "}%s\n", (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$TUNE_TXT" > "$TUNE_JSON"

echo "summary written to $TUNE_JSON (raw benchstat input: $TUNE_TXT)"

# Acceptance check: the closed-loop balancer must lift the imbalanced
# cluster'"'"'s aggregate throughput at least 1.5x — the PR-9 headline claim.
# Output bytes are verified inside the benchmark itself (every epoch is
# compared to ground truth).
awk -F'"'"'[:,}]'"'"' '
/"BenchmarkAutotuneImbalanced\/autotune=false"/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) off = $(i+1) + 0 }
/"BenchmarkAutotuneImbalanced\/autotune=true"/  { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/) on = $(i+1) + 0 }
END {
    printf "autotune imbalance: off %.1f batches/sec, on %.1f batches/sec (%.2fx)\n", off, on, on / off
    if (!(on >= 1.5 * off)) { print "FAIL: the balancer does not lift imbalanced-cluster throughput 1.5x" > "/dev/stderr"; exit 1 }
}' "$TUNE_JSON"

echo "running: session-scalability suite (3 reps) ..."
# Footprint: 128 idle (or streaming) sessions per iteration, reporting heap
# bytes and goroutines per session. Scaling: every client holds a live
# session and re-fetches a cache-served epoch concurrently; clients=1024 is
# the O(1000)-session headline. Fairness: three polite tenants at 4 sessions
# each against one greedy tenant at 12; the worst per-iteration Jain index
# over per-tenant served batches is the fairness claim.
go test -run '^$' -bench 'BenchmarkSessionFootprint|BenchmarkSessionScaling|BenchmarkTenantFairness' \
    -benchtime 3x -count=3 -timeout 30m ./internal/serve | tee "$MT_TXT"
require_bench "$MT_TXT" "stage 9"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[++n_names] = name }
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "batches/sec")        bps[name]  = bps[name] " " $i
        if ($(i+1) == "bytes/session")      bpsn[name] = bpsn[name] " " $i
        if ($(i+1) == "goroutines/session") gpsn[name] = gpsn[name] " " $i
        if ($(i+1) == "jain")               jain[name] = jain[name] " " $i
        if ($(i+1) == "p99-us")             p99[name]  = p99[name] " " $i
    }
}
function median(s,   a, n, i, j, t) {
    n = split(s, a, " ")
    for (i = 2; i <= n; i++) {
        t = a[i] + 0
        for (j = i - 1; j >= 1 && a[j] + 0 > t; j--) a[j+1] = a[j]
        a[j+1] = t
    }
    if (n % 2) return a[(n+1)/2]
    return (a[n/2] + a[n/2+1]) / 2
}
END {
    printf "{\n"
    for (i = 1; i <= n_names; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s", name, median(ns[name])
        if (bps[name]  != "") printf ", \"batches_per_sec\": %s", median(bps[name])
        if (bpsn[name] != "") printf ", \"bytes_per_session\": %s", median(bpsn[name])
        if (gpsn[name] != "") printf ", \"goroutines_per_session\": %s", median(gpsn[name])
        if (jain[name] != "") printf ", \"jain\": %s", median(jain[name])
        if (p99[name]  != "") printf ", \"p99_us\": %s", median(p99[name])
        printf "}%s\n", (i < n_names ? "," : "")
    }
    printf "}\n"
}' "$MT_TXT" > "$MT_JSON"

echo "summary written to $MT_JSON (raw benchstat input: $MT_TXT)"

# Acceptance checks: the PR-10 headline claims. Scaling must be flat — the
# 256-session aggregate holds at least 0.8x the 8-session baseline (and the
# 1024-session series must exist: the benchmark fails internally if sessions
# die). Fairness: Jain >= 0.9 with the greedy tenant over-subscribed 3x.
# Byte-identity under concurrency is asserted inside the soak/chaos tests.
awk -F'[:,}]' '
/"BenchmarkSessionScaling\/clients=8"/    { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/)  base = $(i+1) + 0 }
/"BenchmarkSessionScaling\/clients=256"/  { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/)  mid  = $(i+1) + 0 }
/"BenchmarkSessionScaling\/clients=1024"/ { for (i = 1; i <= NF; i++) if ($i ~ /batches_per_sec/)  big  = $(i+1) + 0 }
/"BenchmarkTenantFairness"/               { for (i = 1; i <= NF; i++) if ($i ~ /"jain"/)           j    = $(i+1) + 0 }
END {
    printf "session scaling: clients=8 %.0f, clients=256 %.0f (%.2fx), clients=1024 %.0f batches/sec; jain %.3f\n", \
        base, mid, mid / base, big, j
    if (big <= 0)            { print "FAIL: the 1024-session series produced no throughput" > "/dev/stderr"; exit 1 }
    if (!(mid >= 0.8 * base)) { print "FAIL: 256-session aggregate fell below 0.8x the 8-session baseline" > "/dev/stderr"; exit 1 }
    if (!(j >= 0.9))          { print "FAIL: Jain fairness below 0.9 under the greedy tenant" > "/dev/stderr"; exit 1 }
}' "$MT_JSON"
