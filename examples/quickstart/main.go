// Quickstart: trace a small real-data preprocessing pipeline end to end.
//
// This example runs in REAL time with REAL pixel work: images are
// synthesized, SJPG-encoded, decoded, cropped, resampled, converted and
// normalized by actual kernels on actual buffers, under ordinary goroutines.
// LotusTrace instruments the run; we then print per-operation statistics and
// write a Chrome Trace Viewer file.
//
// Run: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"lotus"
)

func main() {
	var logBuf bytes.Buffer
	tracer := lotus.NewTracer(&logBuf)
	hooks := tracer.Hooks()

	// A small synthetic "ImageNet": 48 images with realistic size spread.
	dataset := lotus.NewImageDataset(lotus.ImageConfig{
		Name: "quickstart", N: 48,
		MeanFileKB: 40, StdFileKB: 25, MinFileKB: 10, MaxFileKB: 120,
		CompressionRatio: 10, Classes: 10, Seed: 7,
		IO: lotus.IOModel{BaseLatency: 200 * time.Microsecond, BandwidthMBps: 700},
	})

	compose := lotus.NewCompose(
		&lotus.Loader{IO: dataset.IO},
		&lotus.RandomResizedCrop{Size: 64},
		&lotus.RandomHorizontalFlip{},
		&lotus.ToTensor{},
		&lotus.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
	)
	compose.Hooks = hooks

	clk := lotus.NewRealClock()
	loader := lotus.NewDataLoader(clk, lotus.NewImageFolder(dataset, compose), lotus.LoaderConfig{
		BatchSize:      8,
		NumWorkers:     2,
		Shuffle:        true,
		Seed:           7,
		Hooks:          hooks,
		Mode:           lotus.RealData,
		MaterializeDim: 128,
	})

	start := time.Now()
	batches := 0
	clk.Run("main", func(p lotus.Proc) {
		it := loader.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			batches++
			fmt.Printf("batch %d from worker %d: tensor %v, %d samples\n",
				b.ID, b.WorkerID, b.Data.Shape, b.Size())
		}
	})
	if err := tracer.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nepoch: %d batches in %v (real time, real pixels)\n", batches, time.Since(start).Round(time.Millisecond))

	analysis := lotus.Analyze(lotus.MustReadLog(bytes.NewReader(logBuf.Bytes())))
	fmt.Println("\nper-operation elapsed time (measured by LotusTrace):")
	for op, st := range analysis.OpStats() {
		fmt.Printf("  %-22s n=%-4d mean=%-12v p90=%v\n", op, st.Count, st.Mean.Round(time.Microsecond), st.P90.Round(time.Microsecond))
	}

	viz, err := lotus.ExportChrome(analysis.Records, lotus.Fine)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("quickstart_trace.json", viz, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote quickstart_trace.json — open chrome://tracing to see the data flow")
}
