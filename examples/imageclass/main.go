// Image-classification characterization: the paper's § V-B/C analysis on
// the simulated ImageNet pipeline — per-op statistics (Table II), per-batch
// preprocessing variance (Figure 4), wait/delay distributions and
// out-of-order arrivals (Figures 3 & 5) — in a few seconds of wall time
// thanks to the virtual clock.
//
// Run: go run ./examples/imageclass
package main

import (
	"bytes"
	"fmt"
	"time"

	"lotus"
)

func main() {
	// The Table II configuration: batch 128, 1 GPU, 1 data loader.
	fmt.Println("== per-operation statistics (Table II configuration) ==")
	spec := lotus.ICWorkload(2048, 1)
	a, stats := run(spec)
	for _, op := range spec.OpOrder() {
		st := a.OpStats()[op]
		fmt.Printf("  %-22s avg=%-10v p90=%-10v <10ms=%5.1f%%  <100µs=%5.1f%%\n",
			op, st.Mean.Round(10*time.Microsecond), st.P90.Round(10*time.Microsecond),
			100*st.Under10ms, 100*st.Under100us)
	}
	fmt.Printf("epoch %v, GPU utilization %.1f%% -> preprocessing-bound\n\n",
		stats.Elapsed.Round(time.Millisecond), 100*stats.GPUUtilization())

	// Scaling up batch size raises per-batch variance (Figure 4).
	fmt.Println("== per-batch preprocessing variance vs batch size (Figure 4) ==")
	for _, bs := range []int{128, 256, 512, 1024} {
		s := lotus.ICWorkload(bs*12, 2)
		s.BatchSize, s.GPUs, s.NumWorkers = bs, 4, 4
		av, _ := run(s)
		fmt.Printf("  b=%-5d mean=%-12v std/mean=%5.1f%%  IQR=%v\n",
			bs, distOf(av).Mean.Round(time.Millisecond),
			100*distOf(av).StdOfMean, distOf(av).IQR.Round(time.Millisecond))
	}

	// Wait/delay and out-of-order arrivals with multiple loaders (Figs 3&5).
	fmt.Println("\n== wait, delay, and out-of-order arrivals (b=512, 4 GPUs, 4 loaders) ==")
	s := lotus.ICWorkload(512*10, 3)
	s.BatchSize, s.GPUs, s.NumWorkers = 512, 4, 4
	av, _ := run(s)
	fmt.Printf("  batches waiting >500ms: %.1f%%\n", 100*av.WaitsOver(500*time.Millisecond))
	fmt.Printf("  batches delayed >500ms: %.1f%%\n", 100*av.DelaysOver(500*time.Millisecond))
	fmt.Printf("  out-of-order batches:   %v\n", av.OutOfOrderBatches())
	for _, b := range av.Batches() {
		if b.OutOfOrder() {
			fmt.Printf("  e.g. batch %d was ready %v before the main process consumed it\n",
				b.ID, b.Delay().Round(time.Millisecond))
			break
		}
	}
}

func run(spec lotus.WorkloadSpec) (*lotus.Analysis, lotus.EpochStats) {
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	stats, _, _ := spec.Run(tracer.Hooks())
	_ = tracer.Flush()
	return lotus.Analyze(lotus.MustReadLog(&buf)), stats
}

func distOf(a *lotus.Analysis) lotus.DistStats {
	return lotus.ComputeDistStats(a.PreprocessTimes())
}
