// The full optimization loop Lotus enables, end to end:
//
//  1. trace a baseline run (LotusTrace);
//  2. diagnose it (the automated advisor);
//  3. act on the diagnosis (autotune the worker count on trace signals);
//  4. re-trace the tuned configuration;
//  5. diff the two runs per operation.
//
// Run: go run ./examples/optimize
package main

import (
	"bytes"
	"fmt"
	"time"

	"lotus"
)

func tracedRun(spec lotus.WorkloadSpec) (*lotus.Analysis, lotus.EpochStats) {
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	stats, _, _ := spec.Run(tracer.Hooks())
	_ = tracer.Flush()
	return lotus.Analyze(lotus.MustReadLog(&buf)), stats
}

func main() {
	base := lotus.ICWorkload(2048, 1)
	base.BatchSize, base.GPUs, base.NumWorkers = 64, 4, 1

	// 1. Baseline trace.
	fmt.Println("== step 1: baseline (1 data loader) ==")
	beforeAnalysis, beforeStats := tracedRun(base)
	fmt.Printf("epoch %v, GPU utilization %.1f%%\n\n",
		beforeStats.Elapsed.Round(time.Millisecond), 100*beforeStats.GPUUtilization())

	// 2. Diagnose.
	fmt.Println("== step 2: advisor findings ==")
	findings := beforeAnalysis.Advise(lotus.AdvisorConfig{})
	fmt.Print(lotus.FormatFindings(findings))

	// 3. Act: the advisor says preprocessing-bound -> tune the workers.
	fmt.Println("\n== step 3: autotune the worker count on trace signals ==")
	result := lotus.Tune(base, lotus.TuneConfig{MinWorkers: 1, MaxWorkers: 16})
	fmt.Print(result.String())

	// 4. Re-trace the tuned configuration.
	tuned := base
	tuned.NumWorkers = result.Best.Workers
	fmt.Printf("\n== step 4: re-trace with %d workers ==\n", tuned.NumWorkers)
	afterAnalysis, afterStats := tracedRun(tuned)
	fmt.Printf("epoch %v, GPU utilization %.1f%%\n", afterStats.Elapsed.Round(time.Millisecond),
		100*afterStats.GPUUtilization())
	fmt.Println(lotus.FormatFindings(afterAnalysis.Advise(lotus.AdvisorConfig{})))

	// 5. Diff.
	fmt.Println("== step 5: before/after diff ==")
	fmt.Print(lotus.DiffAnalyses(beforeAnalysis, afterAnalysis).Render())

	fmt.Println("\nterminal timeline of the tuned run:")
	fmt.Print(lotus.RenderTimeline(afterAnalysis.Records, 100))
}
