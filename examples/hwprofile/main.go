// Hardware-profiling case study: the full LotusMap workflow of the paper's
// § V-D on the simulated substrate.
//
//  1. Reconstruct the operation → native-function mapping by profiling each
//     IC operation in isolation (warm-ups, sleep gaps, multi-run capture).
//  2. Run a whole epoch under the VTune-like profiler, producing a
//     function-granularity counter report (hundreds of symbols, no
//     operation labels — the attribution gap).
//  3. Combine the mapping with LotusTrace elapsed-time weights to attribute
//     counters to operations, and show how the microarchitectural story
//     changes between 8 and 24 data loader workers.
//
// Run: go run ./examples/hwprofile
package main

import (
	"fmt"
	"time"

	"lotus"
)

func main() {
	engine := lotus.NewEngine(lotus.Intel)
	model := lotus.DefaultHWModel(engine)

	// Step 1: the one-time mapping step.
	spec := lotus.ICWorkload(4, 1)
	cfg := lotus.DefaultMapConfig(lotus.VTuneSampler(1), model)
	proto := spec.Prototype()
	proto.Width, proto.Height, proto.FileBytes = proto.Width*2, proto.Height*2, proto.FileBytes*4
	fmt.Println("reconstructing the op -> C/C++ mapping (LotusMap)...")
	mapping := lotus.MapPipeline(engine, spec.MappingCompose(), proto, cfg)
	for _, op := range []string{"Loader", "RandomResizedCrop"} {
		fmt.Printf("\n%s maps to:\n", op)
		for _, f := range mapping.Symbols(op) {
			fmt.Printf("  %-40s %s\n", f.Symbol, f.Library)
		}
	}
	fmt.Println("\nmapping quality vs simulator ground truth:")
	for _, q := range lotus.EvaluateMapping(mapping, engine, spec.MappingCompose()) {
		fmt.Printf("  %-28s precision=%.2f recall=%.2f\n", q.Op, q.Precision, q.Recall)
	}

	// Steps 2+3 at two worker counts.
	for _, workers := range []int{8, 24} {
		fmt.Printf("\n== epoch with %d data loaders under the VTune-like profiler ==\n", workers)
		runAndAttribute(mapping, workers)
	}
}

func runAndAttribute(mapping *lotus.Mapping, workers int) {
	engine := lotus.NewEngine(lotus.Intel)
	sess := lotus.NewSession(engine)

	spec := lotus.ICWorkload(128*50, 2)
	spec.BatchSize, spec.GPUs, spec.NumWorkers = 128, 4, workers

	// Collect LotusTrace records in memory for the weights.
	var records []lotus.Record
	hooks := &lotus.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			records = append(records, lotus.Record{Kind: lotus.KindOp, PID: pid, BatchID: batchID, SampleIndex: sampleIndex, Op: op, Start: start, Dur: dur})
		},
	}

	sess.Resume(lotus.Epoch)
	stats, _, sim := spec.RunWithEngine(hooks, engine)
	sess.Detach(sim.Now())

	report := sess.Collect(lotus.VTuneSampler(3), lotus.DefaultHWModel(engine), "vtune")
	fmt.Printf("epoch (virtual): %v; profiler saw %d distinct functions\n",
		stats.Elapsed.Round(time.Millisecond), len(report.Rows))

	analysis := lotus.Analyze(records)
	weights := analysis.OpWeights(spec.OpOrder())
	att := lotus.Attribute(report, mapping, weights)
	fmt.Print(att.String())
}
