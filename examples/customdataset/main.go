// Custom datasets: LotusTrace works with any map-style dataset, not just
// the built-in folders — the analogue of the paper's Listing 2, where a
// user's torch.utils.data.Dataset subclass passes a log file and a Compose
// object and gets full instrumentation.
//
// This example defines a synthetic time-series dataset with a custom
// windowing transform and traces it through the standard DataLoader.
//
// Run: go run ./examples/customdataset
package main

import (
	"bytes"
	"fmt"
	"time"

	"lotus"
)

// windowDataset yields sliding windows over a long synthetic signal. It
// implements lotus.Dataset: preprocessing happens inside GetItem via the
// instrumented Compose, exactly as in Listing 2.
type windowDataset struct {
	n         int
	window    int
	transform *lotus.Compose
}

func (d *windowDataset) Len() int { return d.n }

func (d *windowDataset) GetItem(ctx *lotus.Ctx, pid, batchID, index int) lotus.Sample {
	s := lotus.Sample{
		Index:    index,
		Seed:     int64(index),
		Width:    d.window, // 1-D window modeled as [1 x window]
		Height:   1,
		Channels: 1,
		Dtype:    lotus.DTypeFloat32,
	}
	return d.transform.Apply(ctx, pid, batchID, s)
}

// standardize is a user-defined transform: it "loads" the window and
// standardizes it. In simulated mode its cost comes from declared kernel
// work (here borrowed from the normalize kernel).
type standardize struct{}

func (standardize) Name() string        { return "Standardize" }
func (standardize) Kernels() []string   { return []string{"normalize_f32"} }
func (standardize) Deterministic() bool { return true }

func (standardize) Apply(ctx *lotus.Ctx, s lotus.Sample) lotus.Sample {
	ctx.Work(lotus.KernelCall{Kernel: "normalize_f32", Bytes: s.RawBytes() * 16})
	return s
}

// jitter adds randomized augmentation half the time — demonstrating that
// branchy custom ops get per-application timing like the built-ins.
type jitter struct{}

func (jitter) Name() string        { return "Jitter" }
func (jitter) Kernels() []string   { return []string{"scale_f32"} }
func (jitter) Deterministic() bool { return false }

func (jitter) Apply(ctx *lotus.Ctx, s lotus.Sample) lotus.Sample {
	if ctx.SampleRNG(s.Index).Bool(0.5) {
		ctx.Work(lotus.KernelCall{Kernel: "scale_f32", Bytes: s.RawBytes() * 8})
	}
	return s
}

func main() {
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	hooks := tracer.Hooks()

	compose := lotus.NewCompose(standardize{}, jitter{})
	compose.Hooks = hooks

	ds := &windowDataset{n: 256, window: 4096, transform: compose}
	clk := lotus.NewSimClock()
	loader := lotus.NewDataLoader(clk, ds, lotus.LoaderConfig{
		BatchSize:  32,
		NumWorkers: 2,
		Seed:       9,
		Hooks:      hooks,
		Mode:       lotus.Simulated,
		Engine:     lotus.NewEngine(lotus.Intel),
	})

	clk.Run("main", func(p lotus.Proc) {
		it := loader.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	_ = tracer.Flush()

	a := lotus.Analyze(lotus.MustReadLog(&buf))
	fmt.Println("custom dataset traced through the standard DataLoader:")
	for op, st := range a.OpStats() {
		fmt.Printf("  %-14s n=%-4d mean=%-10v  <100µs=%5.1f%%\n",
			op, st.Count, st.Mean.Round(time.Microsecond), 100*st.Under100us)
	}
	fmt.Printf("batches: %d; total preprocessing CPU: %.3fs (virtual)\n",
		len(a.Batches()), a.TotalCPUSeconds())

	// The same instrumentation also covers stream datasets
	// (torch.utils.data.IterableDataset): workers walk shards instead of
	// receiving index lists, and the hooks are identical.
	fmt.Println("\nstream dataset through the IterableLoader:")
	runIterable()
}

func runIterable() {
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	hooks := tracer.Hooks()

	compose := lotus.NewCompose(
		&lotus.Loader{IO: lotus.DefaultIO()},
		&lotus.ToTensor{},
	)
	compose.Hooks = hooks
	folder := lotus.NewImageFolder(lotus.NewImageDataset(lotus.ImageNetConfig(50, 3)), compose)

	clk := lotus.NewSimClock()
	il := lotus.NewIterableLoader(clk, &lotus.ImageStream{Folder: folder}, lotus.LoaderConfig{
		BatchSize:  8,
		NumWorkers: 3,
		Seed:       3,
		Hooks:      hooks,
		Mode:       lotus.Simulated,
		Engine:     lotus.NewEngine(lotus.Intel),
	})
	samples := 0
	clk.Run("main", func(p lotus.Proc) {
		it := il.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				return
			}
			samples += b.Size()
		}
	})
	_ = tracer.Flush()
	a := lotus.Analyze(lotus.MustReadLog(&buf))
	fmt.Printf("  %d samples over 3 shards; %d batches traced; Loader mean %v\n",
		samples, len(a.Batches()), a.OpStats()["Loader"].Mean.Round(10*time.Microsecond))
}
