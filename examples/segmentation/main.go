// Segmentation pipeline characterization: the IS (kits19 + U-Net3D)
// pipeline is GPU-bound — preprocessed batches pile up behind the device,
// producing the long delay arrows of the paper's Figure 2(b). This example
// shows how LotusTrace's delay metric exposes that, and contrasts it with a
// preprocessing-starved variant of the same pipeline.
//
// Run: go run ./examples/segmentation
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"lotus"
)

func main() {
	fmt.Println("== IS pipeline, paper defaults (batch 2, 8 loaders, U-Net3D ~750ms/batch) ==")
	spec := lotus.ISWorkload(48, 1)
	a, stats := run(spec)
	report(spec, a, stats)

	// Same pipeline with a single loader and a fast device: now the
	// preprocessing side is the bottleneck and the delays vanish.
	fmt.Println("\n== same pipeline, 1 loader + 10x faster device ==")
	starved := lotus.ISWorkload(48, 1)
	starved.NumWorkers = 1
	starved.GPU.PerSample /= 10
	a2, stats2 := run(starved)
	report(starved, a2, stats2)

	// Export the GPU-bound run's trace for chrome://tracing.
	viz, err := lotus.ExportChrome(a.Records, lotus.Coarse)
	if err == nil {
		_ = os.WriteFile("segmentation_trace.json", viz, 0o644)
		fmt.Println("\nwrote segmentation_trace.json (coarse trace with flow arrows)")
	}
}

func run(spec lotus.WorkloadSpec) (*lotus.Analysis, lotus.EpochStats) {
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	stats, _, _ := spec.Run(tracer.Hooks())
	_ = tracer.Flush()
	return lotus.Analyze(lotus.MustReadLog(&buf)), stats
}

func report(spec lotus.WorkloadSpec, a *lotus.Analysis, stats lotus.EpochStats) {
	var delays []time.Duration
	for _, b := range a.Batches() {
		delays = append(delays, b.Delay())
	}
	d := lotus.ComputeDistStats(delays)
	fmt.Printf("  epoch %v; GPU utilization %.1f%%; main wait %v\n",
		stats.Elapsed.Round(time.Millisecond), 100*stats.GPUUtilization(),
		stats.MainWaitTime.Round(time.Millisecond))
	fmt.Printf("  batch delay: median %v, max %v (GPU batch time %v)\n",
		d.Median.Round(time.Millisecond), d.Max.Round(time.Millisecond),
		spec.GPU.BatchTime(spec.BatchSize, spec.GPUs).Round(time.Millisecond))
	verdict := "preprocessing-bound (GPU starves)"
	if d.Median > spec.GPU.BatchTime(spec.BatchSize, spec.GPUs) {
		verdict = "GPU-bound (batches queue up)"
	}
	fmt.Printf("  verdict: %s\n", verdict)
	st := a.OpStats()
	fmt.Printf("  op means: Loader=%v RBC=%v (P90 %v) GN=%v\n",
		st["Loader"].Mean.Round(time.Millisecond),
		st["RandBalancedCrop"].Mean.Round(time.Millisecond),
		st["RandBalancedCrop"].P90.Round(time.Millisecond),
		st["GaussianNoise"].Mean.Round(time.Millisecond))
}
