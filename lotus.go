// Package lotus is the public API of the Lotus reproduction: a profiling
// toolkit for ML preprocessing pipelines, consisting of LotusTrace
// (fine-grained, low-overhead instrumentation of the DataLoader's
// asynchronous data flow) and LotusMap (reconstruction of the mapping from
// framework-level operations to the native functions they execute, and
// attribution of hardware counters to operations).
//
// The package re-exports the user-facing types from the internal substrate
// packages. A minimal traced run looks like:
//
//	clk := lotus.NewSimClock()
//	var buf bytes.Buffer
//	tracer := lotus.NewTracer(&buf)
//	hooks := tracer.Hooks()
//
//	dataset := lotus.NewImageFolder(
//		lotus.NewImageDataset(lotus.ImageNetConfig(10000, 1)),
//		lotus.NewCompose(
//			&lotus.Loader{IO: lotus.DefaultIO()},
//			&lotus.RandomResizedCrop{Size: 224},
//			&lotus.RandomHorizontalFlip{},
//			&lotus.ToTensor{},
//			&lotus.Normalize{Mean: ..., Std: ...},
//		),
//	)
//	loader := lotus.NewDataLoader(clk, dataset, lotus.LoaderConfig{...})
//	clk.Run("main", func(p lotus.Proc) {
//		it := loader.Start(p)
//		for { if _, ok := it.Next(p); !ok { break } }
//	})
//	tracer.Flush()
//	analysis := lotus.Analyze(lotus.MustReadLog(&buf))
package lotus

import (
	"io"

	"lotus/internal/autotune"
	"lotus/internal/clock"
	"lotus/internal/core/lotusmap"
	"lotus/internal/core/trace"
	"lotus/internal/data"
	"lotus/internal/experiments"
	"lotus/internal/gpusim"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/profilers"
	"lotus/internal/tensor"
	"lotus/internal/workloads"
)

// ---------------------------------------------------------------------------
// Execution substrate
// ---------------------------------------------------------------------------

// Clock is the execution substrate pipelines run under.
type Clock = clock.Clock

// Proc is a handle held by each concurrently executing activity.
type Proc = clock.Proc

// SimClock is the deterministic virtual-time scheduler.
type SimClock = clock.Sim

// Epoch is the virtual-time origin used by simulated clocks.
var Epoch = clock.Epoch

// NewSimClock returns a deterministic virtual-time clock; multi-worker
// pipelines characterized under it are reproducible and run in milliseconds
// of wall time.
func NewSimClock() *SimClock { return clock.NewSim() }

// NewRealClock returns a wall-clock execution substrate (real goroutines).
func NewRealClock() Clock { return clock.NewReal() }

// ---------------------------------------------------------------------------
// Pipeline (the PyTorch DataLoader analogue)
// ---------------------------------------------------------------------------

// Sample, Batch, and Hooks are the pipeline's data and instrumentation types.
type (
	Sample = pipeline.Sample
	Batch  = pipeline.Batch
	Hooks  = pipeline.Hooks
)

// Compose chains transforms (torchvision.transforms.Compose).
type Compose = pipeline.Compose

// NewCompose chains the given transforms.
func NewCompose(ts ...pipeline.Transform) *Compose { return pipeline.NewCompose(ts...) }

// Transform is one preprocessing operation.
type Transform = pipeline.Transform

// Ctx is the per-worker execution context threaded through transforms.
type Ctx = pipeline.Ctx

// KernelCall requests native-kernel work from a custom transform
// (ctx.Work(lotus.KernelCall{Kernel: "...", Bytes: n})).
type KernelCall = native.Call

// Tensor is the dense array type batches carry; DType selects the element
// type.
type (
	Tensor = tensor.Tensor
	DType  = tensor.DType
)

// Element types.
const (
	DTypeUint8   = tensor.Uint8
	DTypeFloat32 = tensor.Float32
)

// The transform set used by the MLPerf pipelines.
type (
	Loader                       = pipeline.Loader
	RandomResizedCrop            = pipeline.RandomResizedCrop
	Resize                       = pipeline.Resize
	RandomHorizontalFlip         = pipeline.RandomHorizontalFlip
	ToTensor                     = pipeline.ToTensor
	Normalize                    = pipeline.Normalize
	VolumeLoader                 = pipeline.VolumeLoader
	RandBalancedCrop             = pipeline.RandBalancedCrop
	RandomFlip                   = pipeline.RandomFlip
	Cast                         = pipeline.Cast
	RandomBrightnessAugmentation = pipeline.RandomBrightnessAugmentation
	GaussianNoise                = pipeline.GaussianNoise
)

// Dataset is the map-style dataset contract.
type Dataset = pipeline.Dataset

// ImageFolder and VolumeFolder adapt synthetic datasets to the Dataset
// contract.
type (
	ImageFolder  = pipeline.ImageFolder
	VolumeFolder = pipeline.VolumeFolder
)

// NewImageFolder wraps an image dataset with a transform chain.
func NewImageFolder(ds *data.ImageDataset, tf *Compose) *ImageFolder {
	return pipeline.NewImageFolder(ds, tf)
}

// NewVolumeFolder wraps a volume dataset with a transform chain.
func NewVolumeFolder(ds *data.VolumeDataset, tf *Compose) *VolumeFolder {
	return pipeline.NewVolumeFolder(ds, tf)
}

// LoaderConfig parameterizes a DataLoader (torch.utils.data.DataLoader).
type LoaderConfig = pipeline.Config

// DataLoader is the multi-worker loader with per-worker index queues and a
// shared data queue.
type DataLoader = pipeline.DataLoader

// Iterator consumes batches in order.
type Iterator = pipeline.Iterator

// NewDataLoader constructs a loader.
func NewDataLoader(clk Clock, ds Dataset, cfg LoaderConfig) *DataLoader {
	return pipeline.NewDataLoader(clk, ds, cfg)
}

// Execution modes for LoaderConfig.Mode.
const (
	Simulated = pipeline.Simulated
	RealData  = pipeline.RealData
)

// ---------------------------------------------------------------------------
// Datasets and storage
// ---------------------------------------------------------------------------

// Synthetic dataset types and configurations.
type (
	ImageDataset  = data.ImageDataset
	VolumeDataset = data.VolumeDataset
	ImageConfig   = data.ImageConfig
	VolumeConfig  = data.VolumeConfig
	IOModel       = data.IOModel
)

// NewImageDataset synthesizes an image dataset.
func NewImageDataset(cfg ImageConfig) *ImageDataset { return data.NewImageDataset(cfg) }

// NewVolumeDataset synthesizes a volume dataset.
func NewVolumeDataset(cfg VolumeConfig) *VolumeDataset { return data.NewVolumeDataset(cfg) }

// ImageNetConfig, COCOConfig, and Kits19Config match the paper's datasets'
// size statistics.
func ImageNetConfig(n int, seed int64) ImageConfig { return data.ImageNetConfig(n, seed) }

// COCOConfig approximates MS-COCO.
func COCOConfig(n int, seed int64) ImageConfig { return data.COCOConfig(n, seed) }

// Kits19Config approximates the kits19 volumes.
func Kits19Config(n int, seed int64) VolumeConfig { return data.Kits19Config(n, seed) }

// DefaultIO returns the remote-storage I/O model.
func DefaultIO() IOModel { return data.DefaultIO() }

// ---------------------------------------------------------------------------
// LotusTrace
// ---------------------------------------------------------------------------

// Tracer is the LotusTrace logger; Record is one log entry.
type (
	Tracer      = trace.Tracer
	Record      = trace.Record
	Analysis    = trace.Analysis
	OpStat      = trace.OpStat
	BatchInfo   = trace.BatchInfo
	DistStats   = trace.DistStats
	Granularity = trace.Granularity
)

// Trace visualization granularities.
const (
	Coarse = trace.Coarse
	Fine   = trace.Fine
)

// Record kinds.
const (
	KindOp                = trace.KindOp
	KindBatchPreprocessed = trace.KindBatchPreprocessed
	KindBatchWait         = trace.KindBatchWait
	KindBatchConsumed     = trace.KindBatchConsumed
)

// NewTracer writes LotusTrace records to w.
func NewTracer(w io.Writer, opts ...trace.Option) *Tracer { return trace.NewTracer(w, opts...) }

// WithPerLogCost models the per-record emission cost.
var WithPerLogCost = trace.WithPerLogCost

// ReadLog parses a LotusTrace log stream.
func ReadLog(r io.Reader) ([]Record, error) { return trace.ReadLog(r) }

// ReadLogWithMeta parses a log and returns its provenance header (nil if
// absent).
func ReadLogWithMeta(r io.Reader) ([]Record, map[string]string, error) {
	return trace.ReadLogWithMeta(r)
}

// MustReadLog is ReadLog for logs the caller just wrote (panics on error).
func MustReadLog(r io.Reader) []Record {
	recs, err := trace.ReadLog(r)
	if err != nil {
		panic(err)
	}
	return recs
}

// Analyze builds the wait/delay/per-op analyses over records.
func Analyze(records []Record) *Analysis { return trace.Analyze(records) }

// ComputeDistStats summarizes a duration sample (mean, stddev, quartiles).
var ComputeDistStats = trace.ComputeDistStats

// Finding and AdvisorConfig drive the automated log analysis
// (Analysis.Advise), the rule-based bottleneck diagnosis.
type (
	Finding       = trace.Finding
	AdvisorConfig = trace.AdvisorConfig
)

// FormatFindings renders advisor findings as a report.
var FormatFindings = trace.FormatFindings

// Aggregator computes per-op statistics in one streaming pass with bounded
// memory (for epoch-scale logs).
type Aggregator = trace.Aggregator

// NewAggregator creates a streaming aggregator; reservoirSize bounds per-op
// quantile memory (0 = default 1024).
func NewAggregator(reservoirSize int) *Aggregator { return trace.NewAggregator(reservoirSize) }

// ExportChrome renders records as a Chrome Trace Viewer file with data-flow
// arrows and negative synthetic ids.
func ExportChrome(records []Record, g Granularity) ([]byte, error) {
	return trace.ExportChrome(records, g)
}

// AugmentChrome merges LotusTrace events into an existing trace JSON.
func AugmentChrome(existing []byte, records []Record, g Granularity) ([]byte, error) {
	return trace.AugmentChrome(existing, records, g)
}

// ---------------------------------------------------------------------------
// Hardware layer and LotusMap
// ---------------------------------------------------------------------------

// Engine executes native kernels under a cost model; Arch selects the CPU
// vendor.
type (
	Engine   = native.Engine
	Arch     = native.Arch
	Kernel   = native.Kernel
	Counters = hwsim.Counters
	Session  = hwsim.Session
	Report   = hwsim.Report
	HWModel  = hwsim.Model
)

// CPU vendors.
const (
	Intel = native.Intel
	AMD   = native.AMD
)

// NewEngine builds an engine with the standard kernel inventory.
func NewEngine(arch Arch) *Engine { return native.NewEngine(arch, native.DefaultCPU()) }

// NewSession attaches an ITT/AMDProfileControl-style collection session.
func NewSession(engine *Engine) *Session { return hwsim.NewSession(engine) }

// VTuneSampler and UProfSampler return the two hardware profilers' sampling
// configurations (10 ms and 1 ms user-mode intervals).
var (
	VTuneSampler = hwsim.VTuneSampler
	UProfSampler = hwsim.UProfSampler
)

// DefaultHWModel returns the calibrated counter model for the engine's CPU.
func DefaultHWModel(e *Engine) HWModel { return hwsim.DefaultModel(e.CPU()) }

// Mapping is LotusMap's reconstructed op→native-function map; MapConfig
// tunes the methodology.
type (
	Mapping     = lotusmap.Mapping
	MapConfig   = lotusmap.Config
	MappedFunc  = lotusmap.MappedFunc
	Attribution = lotusmap.Attribution
	MapQuality  = lotusmap.Quality
)

// DefaultMapConfig returns the paper-calibrated methodology.
func DefaultMapConfig(sampler hwsim.SamplerConfig, model HWModel) MapConfig {
	return lotusmap.DefaultConfig(sampler, model)
}

// MapPipeline reconstructs the mapping for every transform of the chain.
func MapPipeline(engine *Engine, compose *Compose, prototype Sample, cfg MapConfig) *Mapping {
	return lotusmap.MapPipeline(engine, compose, prototype, cfg)
}

// Attribute splits function-granularity hardware counters across operations
// using LotusTrace elapsed-time weights.
func Attribute(report *Report, m *Mapping, opWeights map[string]float64) *Attribution {
	return lotusmap.Attribute(report, m, opWeights)
}

// EvaluateMapping scores a reconstruction against the simulator's ground
// truth.
func EvaluateMapping(m *Mapping, engine *Engine, compose *Compose) []MapQuality {
	return lotusmap.Evaluate(m, engine, compose)
}

// RunsNeeded is the § IV-B capture formula: the smallest n with
// C >= 1-(1-f/s)^n.
var RunsNeeded = lotusmap.RunsNeeded

// ---------------------------------------------------------------------------
// Training, workloads, profiler comparison, experiments
// ---------------------------------------------------------------------------

// Trainer consumes batches on simulated GPUs; GPUConfig models device time.
type (
	Trainer    = gpusim.Trainer
	GPUConfig  = gpusim.GPUConfig
	EpochStats = gpusim.EpochStats
)

// Workload specs for the MLPerf pipelines. Spec.MappingCompose returns the
// transform chain extended with a batch collation op for LotusMap.
type WorkloadSpec = workloads.Spec

// CollateN adapts batch collation to the Transform interface for isolation
// profiling.
type CollateN = pipeline.CollateN

// ICWorkload, ISWorkload, and ODWorkload return the paper-default specs.
func ICWorkload(samples int, seed int64) WorkloadSpec { return workloads.ICSpec(samples, seed) }

// ISWorkload is the image-segmentation pipeline.
func ISWorkload(samples int, seed int64) WorkloadSpec { return workloads.ISSpec(samples, seed) }

// ODWorkload is the object-detection pipeline.
func ODWorkload(samples int, seed int64) WorkloadSpec { return workloads.ODSpec(samples, seed) }

// ProfilerModel describes a comparison tool's mechanism (Tables III/IV).
type ProfilerModel = profilers.Profiler

// AllProfilers returns the comparison set.
func AllProfilers() []ProfilerModel { return profilers.All() }

// Experiment regenerates one paper table/figure.
type (
	Experiment       = experiments.Experiment
	ExperimentResult = experiments.Result
	ExperimentScale  = experiments.Scale
)

// Experiment scales.
const (
	ScaleSmall = experiments.Small
	ScaleFull  = experiments.Full
)

// Experiments returns every table/figure regenerator in paper order.
func Experiments() []Experiment { return experiments.All() }

// Validate checks a trace log's structural invariants.
var Validate = trace.Validate

// RenderTimeline draws the coarse trace as a terminal Gantt chart.
var RenderTimeline = trace.RenderTimeline

// DiffAnalyses compares two traced runs per operation and per epoch metric.
var DiffAnalyses = trace.DiffAnalyses

// TraceDiff is the before/after comparison of two traced runs.
type TraceDiff = trace.Diff

// PageCache models the OS page cache in front of the dataset mount.
type PageCache = data.PageCache

// NewPageCache creates a page cache with the given byte capacity.
func NewPageCache(capacity int64) *PageCache { return data.NewPageCache(capacity) }

// Error policies for LoaderConfig.OnError.
const (
	FailEpoch = pipeline.FailEpoch
	SkipBatch = pipeline.SkipBatch
)

// Issue is one trace-consistency violation.
type Issue = trace.Issue

// TuneConfig / TuneResult drive the LotusTrace-signal-based worker-count
// autotuner.
type (
	TuneConfig = autotune.Config
	TuneResult = autotune.Result
)

// Tune searches the worker count for a workload using trace signals.
func Tune(spec WorkloadSpec, cfg TuneConfig) TuneResult { return autotune.Tune(spec, cfg) }

// Stream datasets (torch.utils.data.IterableDataset analogue).
type (
	IterableDataset  = pipeline.IterableDataset
	SampleIter       = pipeline.SampleIter
	IterableLoader   = pipeline.IterableLoader
	IterableIterator = pipeline.IterableIterator
	ImageStream      = pipeline.ImageStream
)

// NewIterableLoader constructs the stream-dataset loader.
func NewIterableLoader(clk Clock, ds IterableDataset, cfg LoaderConfig) *IterableLoader {
	return pipeline.NewIterableLoader(clk, ds, cfg)
}

// Dispatch policies for LoaderConfig.Dispatch.
const (
	DispatchProducer     = pipeline.DispatchProducer
	DispatchLeastWork    = pipeline.DispatchLeastWork
	DispatchWorkStealing = pipeline.DispatchWorkStealing
)

// Refined attribution (per-function mix weighting) and its validation
// oracle.
var (
	AttributeRefined = lotusmap.AttributeRefined
	TrueOpCounters   = lotusmap.TrueOpCounters
	AttributionError = lotusmap.AttributionError
)

// LookupExperiment finds an experiment by id ("table1" .. "fig6").
func LookupExperiment(id string) (Experiment, bool) { return experiments.Lookup(id) }
