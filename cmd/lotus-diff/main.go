// Command lotus-diff compares two LotusTrace logs — the before/after view
// for judging an optimization (more workers, offline decode, a dispatch
// policy change) at the same per-operation granularity LotusTrace measures.
//
// Usage:
//
//	lotus-diff -before base.lotustrace -after tuned.lotustrace
package main

import (
	"flag"
	"fmt"
	"os"

	"lotus/internal/core/trace"
)

func load(path string) (*trace.Analysis, map[string]string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-diff: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	recs, meta, err := trace.ReadLogWithMeta(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-diff: parse %s: %v\n", path, err)
		os.Exit(1)
	}
	return trace.Analyze(recs), meta
}

func main() {
	var (
		before = flag.String("before", "", "baseline LotusTrace log")
		after  = flag.String("after", "", "comparison LotusTrace log")
	)
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "lotus-diff: both -before and -after are required")
		os.Exit(2)
	}
	ba, bm := load(*before)
	aa, am := load(*after)
	// Warn when the two runs are not directly comparable (different
	// workload, dataset, or batch size).
	for _, key := range []string{"workload", "samples", "batch"} {
		if bm != nil && am != nil && bm[key] != am[key] {
			fmt.Printf("warning: runs differ in %s (%q vs %q)\n", key, bm[key], am[key])
		}
	}
	fmt.Print(trace.DiffAnalyses(ba, aa).Render())
}
