// Command lotus-viz converts a LotusTrace log into a Chrome Trace Viewer
// JSON file (chrome://tracing / perfetto), with preprocessing spans per
// worker, wait/consume spans in the main process, and data-flow arrows from
// each batch's preprocessing span to its consumption — the visualization of
// the paper's Figure 2.
//
// Usage:
//
//	lotus-viz -log run.lotustrace -out viz.json            # coarse
//	lotus-viz -log run.lotustrace -out viz.json -fine      # + per-op spans
//	lotus-viz -log run.lotustrace -augment torch.json -out merged.json
package main

import (
	"flag"
	"fmt"
	"os"

	"lotus/internal/core/trace"
)

func main() {
	var (
		logPath = flag.String("log", "run.lotustrace", "LotusTrace log input")
		outPath = flag.String("out", "viz.json", "Chrome trace output path")
		fine    = flag.Bool("fine", false, "include per-operation spans")
		augment = flag.String("augment", "", "existing trace JSON to merge into (PyTorch-profiler format)")
		ascii   = flag.Bool("ascii", false, "print a terminal Gantt chart instead of writing JSON")
		width   = flag.Int("width", 100, "terminal chart width (with -ascii)")
	)
	flag.Parse()

	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadLog(f)
	if err != nil {
		fatal(fmt.Errorf("parse %s: %w", *logPath, err))
	}

	if *ascii {
		fmt.Print(trace.RenderTimeline(recs, *width))
		return
	}

	g := trace.Coarse
	if *fine {
		g = trace.Fine
	}

	var out []byte
	if *augment != "" {
		existing, err := os.ReadFile(*augment)
		if err != nil {
			fatal(err)
		}
		out, err = trace.AugmentChrome(existing, recs, g)
		if err != nil {
			fatal(err)
		}
	} else {
		out, err = trace.ExportChrome(recs, g)
		if err != nil {
			fatal(err)
		}
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d records, %d bytes); open chrome://tracing and load it\n",
		*outPath, len(recs), len(out))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lotus-viz: %v\n", err)
	os.Exit(1)
}
