// Command lotus-map runs the LotusMap preparatory step: it profiles each
// preprocessing operation of a pipeline in isolation under the simulated
// hardware profiler and reconstructs the operation → C/C++ function mapping
// (the paper's Table I / mapping_funcs.json artifact).
//
// Usage:
//
//	lotus-map -workload IC -arch intel -out mapping_funcs.json
package main

import (
	"flag"
	"fmt"
	"os"

	"lotus/internal/core/lotusmap"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "IC", "pipeline: IC, IS, or OD")
		arch     = flag.String("arch", "intel", "simulated CPU vendor: intel or amd")
		outPath  = flag.String("out", "mapping_funcs.json", "mapping JSON output path")
		seed     = flag.Int64("seed", 1, "sampler randomness root")
		evaluate = flag.Bool("evaluate", true, "score the mapping against simulator ground truth")
	)
	flag.Parse()

	var spec workloads.Spec
	switch workloads.Kind(*workload) {
	case workloads.IC:
		spec = workloads.ICSpec(4, *seed)
	case workloads.IS:
		spec = workloads.ISSpec(4, *seed)
	case workloads.OD:
		spec = workloads.ODSpec(4, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lotus-map: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	vendor := native.Intel
	sampler := hwsim.VTuneSampler(*seed)
	profName := "VTune (10ms user-mode sampling)"
	if *arch == "amd" {
		vendor = native.AMD
		sampler = hwsim.UProfSampler(*seed)
		profName = "uProf (1ms user-mode sampling)"
	}
	spec.Arch = vendor

	engine := native.NewEngine(vendor, native.DefaultCPU())
	cfg := lotusmap.DefaultConfig(sampler, hwsim.DefaultModel(engine.CPU()))

	// § IV-B: profile with a larger input so short-lived kernels span more
	// of the sampling interval.
	proto := spec.Prototype()
	proto.Width *= 2
	proto.Height *= 2
	proto.FileBytes *= 4
	if proto.Depth > 0 {
		proto.Depth *= 2
	}

	fmt.Printf("mapping %s pipeline on %s via %s ...\n", spec.Kind, vendor, profName)
	m := lotusmap.MapPipeline(engine, spec.MappingCompose(), proto, cfg)
	fmt.Println(m.String())

	if *evaluate {
		fmt.Println("quality vs simulator ground truth:")
		for _, q := range lotusmap.Evaluate(m, engine, spec.MappingCompose()) {
			fmt.Printf("  %-28s precision=%.2f recall=%.2f\n", q.Op, q.Precision, q.Recall)
		}
	}

	blob, err := m.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-map: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lotus-map: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outPath)
}
