// Command lotus-fetch is the reference client for lotus-serve: it joins as
// one rank of a world, pulls N epochs of its shard, and reports end-to-end
// throughput plus a per-batch arrival-latency histogram.
//
// Usage:
//
//	lotus-fetch -addr localhost:9317 -epochs 2 -rank 0 -world 2
//
// Transient failures (refused connections, resets, mid-stream EOF) are
// retried with exponential backoff by reconnecting and re-requesting the
// failed epoch; fatal server errors abort.
//
// Replicated serving: -addrs takes a comma-separated endpoint list and the
// client falls back across the replicas — a dead endpoint costs one dial,
// and a mid-run death rotates to the next replica (every endpoint must serve
// the same workload spec, so the stream stays byte-identical).
//
// Cluster mode: -cluster partitions every epoch's full batch plan across
// the -addrs nodes with a consistent-hash ring and streams the shards
// concurrently; a node death mid-epoch re-routes its unserved batches to
// survivors, preserving exactly-once delivery:
//
//	lotus-fetch -cluster -addrs host1:9317,host2:9317,host3:9317 -epochs 2
//
// -rank/-world are ignored in cluster mode (the router consumes whole
// plans).
//
// -hedge-quantile arms straggler hedging in cluster mode: when a node goes
// quiet past that quantile of the observed batch-arrival latency, its
// unserved batches are speculatively re-requested from their ring successors
// and the first byte-identical answer wins (duplicates are absorbed by the
// exactly-once ledger and reported as wasted hedges).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"lotus/internal/cluster"
	"lotus/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:9317", "server wire address")
		addrs       = flag.String("addrs", "", "comma-separated endpoint list (replaces -addr; ordered fallback, or the member set with -cluster)")
		clustered   = flag.Bool("cluster", false, "consistent-hash route whole epoch plans across the -addrs nodes with mid-epoch failover")
		replication = flag.Int("replication", 1, "cluster mode: preferred replica-set size per batch on the hash ring")
		heartbeat   = flag.Duration("heartbeat", 500*time.Millisecond, "cluster mode: node heartbeat interval")
		hedgeQ      = flag.Float64("hedge-quantile", 0, "cluster mode: hedge a node's unserved batches to its ring successor once it lags past this latency quantile (e.g. 0.95; 0 disables)")
		epochs      = flag.Int("epochs", 2, "epochs to stream")
		rank        = flag.Int("rank", 0, "this client's shard rank")
		world       = flag.Int("world", 1, "total shard count")
		name        = flag.String("name", "", "session label in server metrics")
		tenant      = flag.String("tenant", "", "QoS tenant this session bills to (empty = server default tenant)")
		retries     = flag.Int("retries", 4, "reconnect attempts per epoch on transient failures")
		backoff     = flag.Duration("backoff", 50*time.Millisecond, "retry backoff base (doubles per attempt)")
		quiet       = flag.Bool("quiet", false, "suppress per-epoch progress lines")
		autotune    = flag.Bool("autotune", false, "cluster mode: re-weight each node's hash-ring share from its observed per-batch cadence so slow nodes shed load until throughput converges")
	)
	flag.Parse()

	var endpoints []string
	for _, a := range strings.Split(*addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			endpoints = append(endpoints, a)
		}
	}
	if len(endpoints) == 0 {
		endpoints = []string{*addr}
	}

	if *clustered {
		runCluster(endpoints, *epochs, *replication, *heartbeat, *hedgeQ, *name, *tenant, *quiet, *autotune)
		return
	}

	client := serve.NewClient(serve.ClientConfig{
		Addr:        endpoints[0],
		Addrs:       endpoints,
		Rank:        *rank,
		World:       *world,
		Name:        *name,
		Tenant:      *tenant,
		Retries:     *retries,
		BackoffBase: *backoff,
		OnRetry: func(epoch, attempt int, err error) {
			log.Printf("lotus-fetch: epoch %d attempt %d failed (%v), retrying", epoch, attempt, err)
		},
	})
	defer client.Close()

	// The initial connect honors the same busy-retry contract as Run: a
	// CodeBusy refusal is the server's admission control asking this client
	// to come back, not a fatal error.
	if err := connectRetryingBusy(client, *retries, *backoff); err != nil {
		fmt.Fprintf(os.Stderr, "lotus-fetch: connect %s: %v\n", strings.Join(endpoints, ","), err)
		os.Exit(1)
	}
	ack, _ := client.Ack()
	modeName := "sim"
	if ack.Mode == 1 {
		modeName = "real"
	}
	fmt.Printf("lotus-fetch: %s workload %s (%s): %d samples, batch %d; shard %d/%d -> %d of %d batches/epoch\n",
		client.Addr(), ack.Workload, modeName, ack.DatasetLen, ack.BatchSize,
		*rank, *world, ack.ShardBatches, ack.PlanBatches)

	epochBatches := 0
	curEpoch := -1
	onBatch := func(b *serve.Batch, payload []byte) {
		if b.Epoch != curEpoch {
			if curEpoch >= 0 && !*quiet {
				fmt.Printf("lotus-fetch: epoch %d: %d batches\n", curEpoch, epochBatches)
			}
			curEpoch, epochBatches = b.Epoch, 0
		}
		epochBatches++
	}
	stats, err := client.Run(*epochs, onBatch)
	if curEpoch >= 0 && !*quiet {
		fmt.Printf("lotus-fetch: epoch %d: %d batches\n", curEpoch, epochBatches)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-fetch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lotus-fetch: %d epochs, %d batches, %.1f MB in %v (%.1f batches/sec, %d retries)\n",
		stats.Epochs, stats.Batches, float64(stats.Bytes)/(1<<20),
		stats.Elapsed.Round(time.Millisecond), stats.BatchesPerSec(), stats.Retries)
	fmt.Println(stats.Hist.String())
}

// runCluster consumes epochs through the consistent-hash cluster router
// instead of a single rank/world session.
// connectRetryingBusy dials with up to retries extra attempts when the
// server answers the handshake with a retryable CodeBusy refusal, backing
// off exponentially from base. Every other error — including fatal server
// refusals — surfaces immediately.
func connectRetryingBusy(c *serve.Client, retries int, base time.Duration) error {
	for attempt := 0; ; attempt++ {
		err := c.Connect()
		if err == nil {
			return nil
		}
		var se *serve.ServerError
		if !errors.As(err, &se) || se.Code != serve.CodeBusy || attempt >= retries {
			return err
		}
		d := base << attempt
		log.Printf("lotus-fetch: server busy, retrying in %v (attempt %d/%d)", d, attempt+1, retries)
		time.Sleep(d)
	}
}

func runCluster(endpoints []string, epochs, replication int, heartbeat time.Duration, hedgeQuantile float64, name, tenant string, quiet, autotune bool) {
	nodes := make([]cluster.Node, len(endpoints))
	for i, a := range endpoints {
		nodes[i] = cluster.Node{ID: a, Addr: a}
	}
	mem := cluster.NewMembership(cluster.MembershipConfig{
		Nodes:    nodes,
		Interval: heartbeat,
		Logf:     log.Printf,
	})
	mem.Start()
	defer mem.Stop()

	if name == "" {
		name = "lotus-fetch"
	}
	c, err := cluster.New(cluster.Config{
		Nodes:         nodes,
		Replication:   replication,
		Name:          name,
		Tenant:        tenant,
		Membership:    mem,
		HedgeQuantile: hedgeQuantile,
		AutoTune:      autotune,
		Logf:          log.Printf,
		OnReroute: func(epoch int, ids []int) {
			log.Printf("lotus-fetch: epoch %d: rerouting %d batches to survivors", epoch, len(ids))
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-fetch: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	perEpoch := 0
	stats, err := c.Run(epochs, func(node string, b *serve.Batch, payload []byte) {
		perEpoch++
		if !quiet && b != nil && perEpoch%64 == 0 {
			log.Printf("lotus-fetch: epoch %d: %d batches so far", b.Epoch, perEpoch)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-fetch: %v\n", err)
		os.Exit(1)
	}
	if ack, ok := c.Ack(); ok {
		fmt.Printf("lotus-fetch: cluster of %d nodes, workload %s: %d samples, batch %d, %d batches/epoch\n",
			len(nodes), ack.Workload, ack.DatasetLen, ack.BatchSize, ack.PlanBatches)
	}
	fmt.Printf("lotus-fetch: %d epochs, %d batches, %.1f MB in %v (%.1f batches/sec; rerouted=%d node_failures=%d)\n",
		stats.Epochs, stats.Batches, float64(stats.Bytes)/(1<<20),
		stats.Elapsed.Round(time.Millisecond), stats.BatchesPerSec(),
		stats.Rerouted, stats.NodeFailures)
	if hedgeQuantile > 0 {
		fmt.Printf("lotus-fetch: hedged=%d won=%d wasted=%d\n",
			stats.Hedged, stats.HedgeWon, stats.HedgeWasted)
	}
	ids := make([]string, 0, len(stats.PerNode))
	for id := range stats.PerNode {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	weights := c.Weights()
	for _, id := range ids {
		line := fmt.Sprintf("lotus-fetch:   %-24s %6d batches (%s)", id, stats.PerNode[id], mem.State(id))
		if autotune {
			line += fmt.Sprintf(" weight %.2f", weights[id])
		}
		fmt.Println(line)
	}
}
