// Command lotus-fetch is the reference client for lotus-serve: it joins as
// one rank of a world, pulls N epochs of its shard, and reports end-to-end
// throughput plus a per-batch arrival-latency histogram.
//
// Usage:
//
//	lotus-fetch -addr localhost:9317 -epochs 2 -rank 0 -world 2
//
// Transient failures (refused connections, resets, mid-stream EOF) are
// retried with exponential backoff by reconnecting and re-requesting the
// failed epoch; fatal server errors abort.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lotus/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:9317", "server wire address")
		epochs  = flag.Int("epochs", 2, "epochs to stream")
		rank    = flag.Int("rank", 0, "this client's shard rank")
		world   = flag.Int("world", 1, "total shard count")
		name    = flag.String("name", "", "session label in server metrics")
		retries = flag.Int("retries", 4, "reconnect attempts per epoch on transient failures")
		backoff = flag.Duration("backoff", 50*time.Millisecond, "retry backoff base (doubles per attempt)")
		quiet   = flag.Bool("quiet", false, "suppress per-epoch progress lines")
	)
	flag.Parse()

	client := serve.NewClient(serve.ClientConfig{
		Addr:        *addr,
		Rank:        *rank,
		World:       *world,
		Name:        *name,
		Retries:     *retries,
		BackoffBase: *backoff,
		OnRetry: func(epoch, attempt int, err error) {
			log.Printf("lotus-fetch: epoch %d attempt %d failed (%v), retrying", epoch, attempt, err)
		},
	})
	defer client.Close()

	if err := client.Connect(); err != nil {
		fmt.Fprintf(os.Stderr, "lotus-fetch: connect %s: %v\n", *addr, err)
		os.Exit(1)
	}
	ack, _ := client.Ack()
	modeName := "sim"
	if ack.Mode == 1 {
		modeName = "real"
	}
	fmt.Printf("lotus-fetch: %s workload %s (%s): %d samples, batch %d; shard %d/%d -> %d of %d batches/epoch\n",
		*addr, ack.Workload, modeName, ack.DatasetLen, ack.BatchSize,
		*rank, *world, ack.ShardBatches, ack.PlanBatches)

	epochBatches := 0
	curEpoch := -1
	onBatch := func(b *serve.Batch, payload []byte) {
		if b.Epoch != curEpoch {
			if curEpoch >= 0 && !*quiet {
				fmt.Printf("lotus-fetch: epoch %d: %d batches\n", curEpoch, epochBatches)
			}
			curEpoch, epochBatches = b.Epoch, 0
		}
		epochBatches++
	}
	stats, err := client.Run(*epochs, onBatch)
	if curEpoch >= 0 && !*quiet {
		fmt.Printf("lotus-fetch: epoch %d: %d batches\n", curEpoch, epochBatches)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-fetch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lotus-fetch: %d epochs, %d batches, %.1f MB in %v (%.1f batches/sec, %d retries)\n",
		stats.Epochs, stats.Batches, float64(stats.Bytes)/(1<<20),
		stats.Elapsed.Round(time.Millisecond), stats.BatchesPerSec(), stats.Retries)
	fmt.Println(stats.Hist.String())
}
