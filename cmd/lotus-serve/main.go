// Command lotus-serve runs the disaggregated preprocessing service: one
// workload pipeline served over TCP to any number of lotus-fetch (or custom)
// clients, with live observability on an HTTP sidecar.
//
// Usage:
//
//	lotus-serve -workload IC -samples 5120 -addr :9317 -http :9318
//
// Clients handshake with a rank/world pair and receive disjoint shards of
// every epoch's batch plan; /metrics and /trace expose live throughput and a
// Chrome-Trace view of the serving pipeline while it runs. SIGINT/SIGTERM
// starts a graceful drain (in-flight epochs finish, bounded by -drain).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", ":9317", "wire protocol listen address")
		httpAddr = flag.String("http", ":9318", "observability sidecar address (empty = disabled)")
		workload = flag.String("workload", "IC", "pipeline: IC, IS, or OD")
		samples  = flag.Int("samples", 5120, "dataset size")
		batch    = flag.Int("batch", 0, "batch size (0 = workload default)")
		workers  = flag.Int("workers", 0, "DataLoader workers (0 = workload default)")
		prefetch = flag.Int("prefetch", 0, "DataLoader prefetch factor (0 = default)")
		queue    = flag.Int("queue", 4, "per-session server prefetch queue depth in batches")
		mode     = flag.String("mode", "sim", "preprocessing mode: sim (meta tensors) or real (pixel payloads)")
		seed     = flag.Int64("seed", 1, "randomness root")
		arch     = flag.String("arch", "intel", "simulated CPU vendor: intel or amd")
		matDim   = flag.Int("materialize-dim", 96, "real mode: synthesized image resolution cap")
		ring     = flag.Int("ring", 16384, "live trace ring capacity in records")
		drain    = flag.Duration("drain", 15*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	var spec workloads.Spec
	switch workloads.Kind(*workload) {
	case workloads.IC:
		spec = workloads.ICSpec(*samples, *seed)
	case workloads.IS:
		spec = workloads.ISSpec(*samples, *seed)
	case workloads.OD:
		spec = workloads.ODSpec(*samples, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lotus-serve: unknown workload %q (want IC, IS, or OD)\n", *workload)
		os.Exit(2)
	}
	if *batch > 0 {
		spec.BatchSize = *batch
	}
	if *workers > 0 {
		spec.NumWorkers = *workers
	}
	if *prefetch > 0 {
		spec.Prefetch = *prefetch
	}
	if *arch == "amd" {
		spec.Arch = native.AMD
	}

	pmode := pipeline.Simulated
	switch *mode {
	case "sim":
	case "real":
		pmode = pipeline.RealData
	default:
		fmt.Fprintf(os.Stderr, "lotus-serve: unknown mode %q (want sim or real)\n", *mode)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Spec:           spec,
		Mode:           pmode,
		Prefetch:       *queue,
		MaterializeDim: *matDim,
		RingSize:       *ring,
		Logf:           log.Printf,
	})
	if err := srv.Start(*addr, *httpAddr); err != nil {
		fmt.Fprintf(os.Stderr, "lotus-serve: %v\n", err)
		os.Exit(1)
	}
	if h := srv.HTTPAddr(); h != "" {
		log.Printf("lotus-serve: observability on http://%s (/healthz /metrics /trace)", h)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("lotus-serve: draining (budget %v)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("lotus-serve: drain budget exhausted, sessions aborted: %v", err)
		os.Exit(1)
	}
}
