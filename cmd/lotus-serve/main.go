// Command lotus-serve runs the disaggregated preprocessing service: one
// workload pipeline served over TCP to any number of lotus-fetch (or custom)
// clients, with live observability on an HTTP sidecar.
//
// Usage:
//
//	lotus-serve -workload IC -samples 5120 -addr :9317 -http :9318
//
// Clients handshake with a rank/world pair and receive disjoint shards of
// every epoch's batch plan; /metrics and /trace expose live throughput and a
// Chrome-Trace view of the serving pipeline while it runs. SIGINT/SIGTERM
// starts a graceful drain (in-flight epochs finish, bounded by -drain).
//
// Cluster mode: pass -join with every member's endpoints (including this
// node's) and the server heartbeats its peers' /healthz sidecars, serving
// the live membership view on the sidecar's /cluster endpoint:
//
//	lotus-serve -addr :9317 -http :9318 -node n0 \
//	    -join n0=localhost:9317/localhost:9318,n1=localhost:9417/localhost:9418
//
// Nodes never coordinate work — the deterministic epoch plan plus the
// consumer-side consistent-hash router (internal/cluster) partition it — so
// joining is purely an observability concern here.
//
// Persistent cache: -disk-cache-dir roots a content-addressed disk tier
// under the in-memory caches. Frames and sample snapshots spill there as
// they are produced, survive restarts (even SIGKILL — the index rebuilds
// from checksummed segment scans), and are shared by any job pointed at the
// same directory:
//
//	lotus-serve -workload ICA -cache-mb 256 -sample-cache-mb 256 \
//	    -disk-cache-dir /var/cache/lotus -disk-cache-gb 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lotus/internal/cluster"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/workloads"
)

// parseJoin parses the -join list: comma-separated members, each
// [id=]wireAddr[/httpAddr].
func parseJoin(join string) ([]cluster.Node, error) {
	var nodes []cluster.Node
	for _, entry := range strings.Split(join, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		n := cluster.Node{}
		if id, rest, ok := strings.Cut(entry, "="); ok {
			n.ID, entry = id, rest
		}
		addr, httpAddr, _ := strings.Cut(entry, "/")
		if addr == "" {
			return nil, fmt.Errorf("member %q has no wire address", entry)
		}
		n.Addr, n.HTTPAddr = addr, httpAddr
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-join given but no members parsed")
	}
	return nodes, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":9317", "wire protocol listen address")
		httpAddr = flag.String("http", ":9318", "observability sidecar address (empty = disabled)")
		workload = flag.String("workload", "IC", "pipeline: IC, ICA, IS, or OD")
		samples  = flag.Int("samples", 5120, "dataset size")
		batch    = flag.Int("batch", 0, "batch size (0 = workload default)")
		workers  = flag.Int("workers", 0, "DataLoader workers (0 = workload default)")
		prefetch = flag.Int("prefetch", 0, "DataLoader prefetch factor (0 = default)")
		queue    = flag.Int("queue", 4, "per-session server prefetch queue depth in batches")
		mode     = flag.String("mode", "sim", "preprocessing mode: sim (meta tensors), real (pixel payloads), or emulate (sim pipeline paced on the wall clock)")
		dispatch = flag.String("dispatch", "producer", "DataLoader index-dispatch policy: producer (static round-robin), leastwork (lightest backlog), or steal (work-stealing: idle workers drain the most-backlogged peer)")
		seed     = flag.Int64("seed", 1, "randomness root")
		arch     = flag.String("arch", "intel", "simulated CPU vendor: intel or amd")
		matDim   = flag.Int("materialize-dim", 96, "real mode: synthesized image resolution cap")
		ring     = flag.Int("ring", 16384, "live trace ring capacity in records")
		cacheMB  = flag.Int64("cache-mb", 256, "materialized-batch cache budget in MiB (0 = disabled); cached epochs are served without re-running the pipeline")
		scacheMB = flag.Int64("sample-cache-mb", 0, "split-point sample cache budget in MiB (0 = disabled); materializes each sample's deterministic prefix once so augmented epochs skip decode work")
		diskDir  = flag.String("disk-cache-dir", "", "persistent cache directory (empty = disabled); spilled frames and sample snapshots survive restarts and are shared across jobs pointing at the same directory")
		diskGB   = flag.Float64("disk-cache-gb", 4, "persistent cache budget in GiB (segment-granularity LRU eviction above it)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful drain budget on SIGINT/SIGTERM")
		nodeID   = flag.String("node", "", "this node's cluster identity (default: -addr)")
		join     = flag.String("join", "", "cluster member list ([id=]wire[/http] per entry, comma-separated); serves the membership view on /cluster")
		interval = flag.Duration("heartbeat", 500*time.Millisecond, "peer heartbeat interval in cluster mode")
		autotune = flag.Bool("autotune", false, "closed-loop controller: observe wait/queue/cache signals at every completed epoch and retune workers, prefetch, and cache budgets at runtime")
		longWait = flag.Duration("autotune-long-wait", 0, "wait duration the controller counts as a stall (0 = 500ms default)")

		maxSessions = flag.Int("max-sessions", 0, "admission control: concurrent session cap (0 = unlimited); excess connections queue briefly, then get a retryable busy reply")
		admitQueue  = flag.Int("admit-queue", 16, "admission control: connections allowed to wait for a session slot before busy-rejection (negative = reject immediately when full)")
		admitWait   = flag.Duration("admit-wait", 2*time.Second, "admission control: how long a queued connection waits for a slot before busy-rejection")
		qos         = flag.Bool("qos", false, "enable per-tenant QoS (fair scheduling + rate limits) even with no -tenant-limit entries")
		qosLeadKB   = flag.Int("qos-lead-kb", 0, "max weighted KiB a tenant may run ahead of the slowest active tenant (0 = 1024; negative disables lead pacing)")
		pidStride   = flag.Int("pid-stride", 0, "trace-pid stride between streaming sessions (0 = 1000); raised automatically if the worker count needs more pid space")
		coalesceN   = flag.Int("coalesce-frames", 0, "max batch frames folded into one vectored write (0 = 8; negative = one write per frame)")
		coalesceKB  = flag.Int("coalesce-kb", 0, "max pending KiB before a coalesced write flushes (0 = 64)")
		coalesceWin = flag.Duration("coalesce-window", 0, "max latency a frame may wait in the coalescing buffer (0 = 1ms)")
		logRate     = flag.Float64("log-rate", 0, "per-session server log lines per second before suppression (0 = 50; negative = unlimited)")
		pprofOn     = flag.Bool("pprof", false, "expose /debug/pprof on the observability sidecar")
	)
	tenants := map[string]serve.TenantLimit{}
	flag.Func("tenant-limit",
		"per-tenant QoS limit, repeatable: name:weight=W,bytes=N,batches=N (rates per second, 0 = unlimited); implies -qos",
		func(s string) error {
			name, spec, _ := strings.Cut(s, ":")
			if name = strings.TrimSpace(name); name == "" {
				return fmt.Errorf("tenant-limit %q: empty tenant name", s)
			}
			var lim serve.TenantLimit
			for _, kv := range strings.Split(spec, ",") {
				if kv = strings.TrimSpace(kv); kv == "" {
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return fmt.Errorf("tenant-limit %q: %q is not key=value", s, kv)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("tenant-limit %q: %q: %v", s, kv, err)
				}
				switch k {
				case "weight":
					lim.Weight = n
				case "bytes":
					lim.BytesPerSec = int64(n)
				case "batches":
					lim.BatchesPerSec = int64(n)
				default:
					return fmt.Errorf("tenant-limit %q: unknown key %q (want weight, bytes, or batches)", s, k)
				}
			}
			tenants[name] = lim
			return nil
		})
	flag.Parse()

	var spec workloads.Spec
	switch workloads.Kind(*workload) {
	case workloads.IC:
		spec = workloads.ICSpec(*samples, *seed)
	case workloads.ICA:
		spec = workloads.ICASpec(*samples, *seed)
	case workloads.IS:
		spec = workloads.ISSpec(*samples, *seed)
	case workloads.OD:
		spec = workloads.ODSpec(*samples, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lotus-serve: unknown workload %q (want IC, ICA, IS, or OD)\n", *workload)
		os.Exit(2)
	}
	if *batch > 0 {
		spec.BatchSize = *batch
	}
	if *workers > 0 {
		spec.NumWorkers = *workers
	}
	if *prefetch > 0 {
		spec.Prefetch = *prefetch
	}
	if *arch == "amd" {
		spec.Arch = native.AMD
	}
	switch *dispatch {
	case "producer":
	case "leastwork":
		spec.Dispatch = pipeline.DispatchLeastWork
	case "steal":
		spec.Dispatch = pipeline.DispatchWorkStealing
	default:
		fmt.Fprintf(os.Stderr, "lotus-serve: unknown dispatch %q (want producer, leastwork, or steal)\n", *dispatch)
		os.Exit(2)
	}

	pmode := pipeline.Simulated
	emulate := false
	switch *mode {
	case "sim":
	case "real":
		pmode = pipeline.RealData
	case "emulate":
		// Simulated pipeline on the wall clock: modeled latencies pace the
		// stream in real time (load generation, cluster scaling runs).
		emulate = true
	default:
		fmt.Fprintf(os.Stderr, "lotus-serve: unknown mode %q (want sim, real, or emulate)\n", *mode)
		os.Exit(2)
	}

	var mem *cluster.Membership
	self := *nodeID
	if self == "" {
		self = *addr
	}
	var clusterInfo func() any
	if *join != "" {
		nodes, err := parseJoin(*join)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lotus-serve: -join: %v\n", err)
			os.Exit(2)
		}
		mem = cluster.NewMembership(cluster.MembershipConfig{
			Nodes:    nodes,
			Interval: *interval,
			Logf:     log.Printf,
		})
		clusterInfo = func() any {
			return map[string]any{"node": self, "members": mem.Snapshot()}
		}
	}

	srv := serve.New(serve.Config{
		Spec:             spec,
		Mode:             pmode,
		EmulateTime:      emulate,
		Prefetch:         *queue,
		MaterializeDim:   *matDim,
		RingSize:         *ring,
		BatchCacheBytes:  *cacheMB << 20,
		SampleCacheBytes: *scacheMB << 20,
		DiskCacheDir:     *diskDir,
		DiskCacheBytes:   int64(*diskGB * float64(1<<30)),
		AutoTune:         *autotune,
		AutoTuneLongWait: *longWait,
		MaxSessions:      *maxSessions,
		AdmitQueue:       *admitQueue,
		AdmitWait:        *admitWait,
		QoS:              *qos,
		QoSLeadBytes:     int64(*qosLeadKB) << 10,
		Tenants:          tenants,
		TracePIDStride:   *pidStride,
		CoalesceFrames:   *coalesceN,
		CoalesceBytes:    *coalesceKB << 10,
		CoalesceWindow:   *coalesceWin,
		LogLinesPerSec:   *logRate,
		Pprof:            *pprofOn,
		ClusterInfo:      clusterInfo,
		Logf:             log.Printf,
	})
	if err := srv.Start(*addr, *httpAddr); err != nil {
		fmt.Fprintf(os.Stderr, "lotus-serve: %v\n", err)
		os.Exit(1)
	}
	if h := srv.HTTPAddr(); h != "" {
		endpoints := "/healthz /metrics /trace"
		if mem != nil {
			endpoints += " /cluster"
		}
		log.Printf("lotus-serve: observability on http://%s (%s)", h, endpoints)
	}
	if mem != nil {
		mem.Start()
		defer mem.Stop()
		log.Printf("lotus-serve: node %s probing %d cluster members every %v", self, len(mem.Snapshot()), *interval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("lotus-serve: draining (budget %v)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("lotus-serve: drain budget exhausted, sessions aborted: %v", err)
		os.Exit(1)
	}
}
