// Command lotus-advise runs the automated log analysis over a LotusTrace
// log: a rule-based bottleneck diagnosis (preprocessing-bound vs GPU-bound,
// out-of-order pressure, per-batch variance, dominant operations) with
// concrete numbers and remediation hints — the "automated log analysis" the
// paper's conclusion lists as the tool's next feature.
//
// Usage:
//
//	lotus-advise -log run.lotustrace
//	lotus-advise -log run.lotustrace -long-wait 250ms -dominant 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lotus/internal/core/trace"
)

func main() {
	var (
		logPath  = flag.String("log", "run.lotustrace", "LotusTrace log input")
		longWait = flag.Duration("long-wait", 500*time.Millisecond, "wait threshold indicating GPU stalls")
		longDly  = flag.Duration("long-delay", 500*time.Millisecond, "delay threshold indicating queueing")
		variance = flag.Float64("variance", 0.15, "per-batch stddev/mean warning threshold")
		dominant = flag.Float64("dominant", 0.6, "dominant-operation CPU share threshold")
	)
	flag.Parse()

	f, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-advise: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	recs, err := trace.ReadLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-advise: parse: %v\n", err)
		os.Exit(1)
	}

	a := trace.Analyze(recs)
	findings := a.Advise(trace.AdvisorConfig{
		LongWait:        *longWait,
		LongDelay:       *longDly,
		HighVariance:    *variance,
		DominantOpShare: *dominant,
	})

	fmt.Printf("analyzed %d records, %d batches\n\n", len(recs), len(a.Batches()))
	fmt.Print(trace.FormatFindings(findings))

	// Exit non-zero when something critical was found, so the command works
	// as a CI gate on pipeline regressions.
	for _, fd := range findings {
		if fd.Severity == trace.Critical {
			os.Exit(3)
		}
	}
}
