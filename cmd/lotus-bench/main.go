// Command lotus-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them in the paper's shape, with the
// paper's reported values alongside for comparison.
//
// Usage:
//
//	lotus-bench                      # every experiment at full scale
//	lotus-bench -experiment fig6     # one experiment
//	lotus-bench -scale small         # fast pass
//	lotus-bench -outdir results/     # additionally save each rendering
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lotus/internal/experiments"
)

func main() {
	var (
		which  = flag.String("experiment", "all", "experiment id (table1..table4, fig2..fig6) or 'all'")
		scale  = flag.String("scale", "full", "small or full")
		outdir = flag.String("outdir", "", "directory to save renderings (optional)")
	)
	flag.Parse()

	sc := experiments.Full
	if *scale == "small" {
		sc = experiments.Small
	}

	var list []experiments.Experiment
	if *which == "all" {
		list = experiments.All()
	} else {
		exp, ok := experiments.Lookup(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "lotus-bench: unknown experiment %q; available:", *which)
			for _, e := range experiments.All() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		list = []experiments.Experiment{exp}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lotus-bench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, exp := range list {
		fmt.Printf("=== %s — %s (scale=%s) ===\n", exp.ID, exp.Title, *scale)
		start := time.Now()
		res := exp.Run(sc)
		out := res.Render()
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		if *outdir != "" {
			path := filepath.Join(*outdir, exp.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "lotus-bench: write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
		// Figure 2 additionally yields the Chrome Trace Viewer files.
		if fig2, ok := res.(*experiments.Fig2Result); ok && *outdir != "" {
			for kind, blob := range fig2.Traces {
				path := filepath.Join(*outdir, fmt.Sprintf("fig2_%s_trace.json", kind))
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "lotus-bench: write %s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
	}
	if *which == "all" {
		fmt.Println(strings.Repeat("-", 60))
		fmt.Println("all experiments regenerated; see EXPERIMENTS.md for paper-vs-measured notes")
	}
}
