// Command lotus-report renders a LotusTrace log as a single self-contained
// HTML page: run summary, advisor findings, per-operation statistics,
// wait/delay histograms, and an SVG timeline.
//
// Usage:
//
//	lotus-report -log run.lotustrace -out report.html
package main

import (
	"flag"
	"fmt"
	"os"

	"lotus/internal/core/trace"
)

func main() {
	var (
		logPath = flag.String("log", "run.lotustrace", "LotusTrace log input")
		outPath = flag.String("out", "report.html", "HTML output path")
	)
	flag.Parse()

	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, meta, err := trace.ReadLogWithMeta(f)
	if err != nil {
		fatal(fmt.Errorf("parse %s: %w", *logPath, err))
	}
	html, err := trace.BuildHTMLReport(recs, meta)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outPath, html, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d records, %d bytes)\n", *outPath, len(recs), len(html))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lotus-report: %v\n", err)
	os.Exit(1)
}
