// Command lotus-run executes one simulated training epoch of an MLPerf
// pipeline with LotusTrace attached and writes the trace log.
//
// Usage:
//
//	lotus-run -workload IC -samples 10000 -batch 512 -workers 4 -gpus 4 \
//	          -log run.lotustrace
//
// The written log is the input to lotus-viz and to the analyses; a summary
// (per-op statistics, wait/delay, bottleneck verdict) is printed on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/gpusim"
	"lotus/internal/native"
	"lotus/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "IC", "pipeline: IC, IS, or OD")
		samples  = flag.Int("samples", 5120, "dataset size")
		batch    = flag.Int("batch", 0, "batch size (0 = workload default)")
		workers  = flag.Int("workers", 0, "DataLoader workers (0 = workload default)")
		gpus     = flag.Int("gpus", 0, "GPU count (0 = workload default)")
		seed     = flag.Int64("seed", 1, "randomness root")
		arch     = flag.String("arch", "intel", "simulated CPU vendor: intel or amd")
		logPath  = flag.String("log", "run.lotustrace", "LotusTrace log output path")
		epochs   = flag.Int("epochs", 1, "training epochs (batch IDs offset per epoch)")
	)
	flag.Parse()

	var spec workloads.Spec
	switch workloads.Kind(*workload) {
	case workloads.IC:
		spec = workloads.ICSpec(*samples, *seed)
	case workloads.IS:
		spec = workloads.ISSpec(*samples, *seed)
	case workloads.OD:
		spec = workloads.ODSpec(*samples, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lotus-run: unknown workload %q (want IC, IS, or OD)\n", *workload)
		os.Exit(2)
	}
	if *batch > 0 {
		spec.BatchSize = *batch
	}
	if *workers > 0 {
		spec.NumWorkers = *workers
	}
	if *gpus > 0 {
		spec.GPUs = *gpus
	}
	if *arch == "amd" {
		spec.Arch = native.AMD
	}

	out, err := os.Create(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-run: %v\n", err)
		os.Exit(1)
	}
	defer out.Close()

	tracer := trace.NewTracer(out)
	tracer.WriteMeta(map[string]string{
		"workload": string(spec.Kind),
		"samples":  fmt.Sprint(spec.NumSamples),
		"batch":    fmt.Sprint(spec.BatchSize),
		"workers":  fmt.Sprint(spec.NumWorkers),
		"gpus":     fmt.Sprint(spec.GPUs),
		"seed":     fmt.Sprint(spec.Seed),
		"arch":     spec.Arch.String(),
	})
	var stats gpusim.EpochStats
	if *epochs > 1 {
		all, _, _ := spec.RunEpochs(tracer.Hooks(), *epochs)
		for _, s := range all {
			stats.Batches += s.Batches
			stats.Elapsed += s.Elapsed
			stats.GPUBusy += s.GPUBusy
			stats.GPUIdle += s.GPUIdle
			stats.MainWaitTime += s.MainWaitTime
		}
	} else {
		stats, _, _ = spec.Run(tracer.Hooks())
	}
	if err := tracer.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "lotus-run: flush: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload %s: %d samples, batch %d, %d workers, %d GPUs (%s)\n",
		spec.Kind, spec.NumSamples, spec.BatchSize, spec.NumWorkers, spec.GPUs, spec.Arch)
	fmt.Printf("epoch: %v simulated; %d batches; GPU utilization %.1f%%; main wait %v\n",
		stats.Elapsed.Round(time.Millisecond), stats.Batches,
		100*stats.GPUUtilization(), stats.MainWaitTime.Round(time.Millisecond))
	fmt.Printf("trace: %d records, %d bytes -> %s\n\n", tracer.Records(), tracer.Bytes(), *logPath)

	// Reload and summarize, demonstrating the log is self-contained.
	f, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-run: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	recs, err := trace.ReadLog(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotus-run: parse: %v\n", err)
		os.Exit(1)
	}
	a := trace.Analyze(recs)
	fmt.Println(trace.FormatOpStats(a.OpStats(), spec.OpOrder()))
	fmt.Printf("waits > 500ms: %.1f%%   delays > 500ms: %.1f%%   out-of-order batches: %d\n",
		100*a.WaitsOver(500*time.Millisecond), 100*a.DelaysOver(500*time.Millisecond),
		len(a.OutOfOrderBatches()))
}
