// Command lotus-tune searches the DataLoader worker count for a workload
// using LotusTrace signals (long-wait fraction, accelerator utilization,
// preprocessing CPU seconds) instead of blind end-to-end timing — the
// optimization use the paper's Takeaway 5 motivates.
//
// Usage:
//
//	lotus-tune -workload IC -samples 4096 -batch 128 -gpus 4
//	lotus-tune -workload IC -cpu-budget 600
package main

import (
	"flag"
	"fmt"
	"os"

	"lotus/internal/autotune"
	"lotus/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "IC", "pipeline: IC, IS, or OD")
		samples  = flag.Int("samples", 2048, "dataset size per candidate run")
		batch    = flag.Int("batch", 0, "batch size (0 = workload default)")
		gpus     = flag.Int("gpus", 0, "GPU count (0 = workload default)")
		minW     = flag.Int("min-workers", 1, "search lower bound")
		maxW     = flag.Int("max-workers", 32, "search upper bound")
		budget   = flag.Float64("cpu-budget", 0, "max preprocessing CPU seconds per epoch (0 = unlimited)")
		seed     = flag.Int64("seed", 1, "randomness root")
	)
	flag.Parse()

	var spec workloads.Spec
	switch workloads.Kind(*workload) {
	case workloads.IC:
		spec = workloads.ICSpec(*samples, *seed)
	case workloads.IS:
		spec = workloads.ISSpec(*samples, *seed)
	case workloads.OD:
		spec = workloads.ODSpec(*samples, *seed)
	default:
		fmt.Fprintf(os.Stderr, "lotus-tune: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *batch > 0 {
		spec.BatchSize = *batch
	}
	if *gpus > 0 {
		spec.GPUs = *gpus
	}

	res := autotune.Tune(spec, autotune.Config{
		MinWorkers:       *minW,
		MaxWorkers:       *maxW,
		CPUBudgetSeconds: *budget,
	})
	fmt.Printf("tuning %s (%d samples, batch %d, %d GPUs)\n\n", spec.Kind, spec.NumSamples, spec.BatchSize, spec.GPUs)
	fmt.Print(res.String())
}
