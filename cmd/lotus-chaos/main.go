// lotus-chaos runs the deterministic fault-injection sweep from the command
// line: every fault class × workload cell of internal/chaos, with the same
// invariants the test suite asserts. Exit status is non-zero if any cell
// violates an invariant, which makes it usable as a CI gate:
//
//	lotus-chaos            # full matrix
//	lotus-chaos -short     # CI short mode: one workload per loader class
//	lotus-chaos -seed 42   # reproduce a failing cell's schedule
package main

import (
	"flag"
	"fmt"
	"os"

	"lotus/internal/chaos"
)

func main() {
	short := flag.Bool("short", false, "trim the matrix to one workload per loader fault class")
	seed := flag.Int64("seed", 1, "seed for every injected fault decision")
	quiet := flag.Bool("q", false, "only print failures and the summary line")
	flag.Parse()

	opts := chaos.Options{Seed: *seed, Short: *short}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	results := chaos.Sweep(opts)

	failed := 0
	var injected int64
	for _, r := range results {
		injected += r.Injected
		if !r.OK() {
			failed++
			if *quiet {
				fmt.Printf("chaos: %s\n", r)
			}
		}
	}
	fmt.Printf("lotus-chaos: %d cells, %d faults injected, %d failed (seed %d)\n",
		len(results), injected, failed, *seed)
	if failed > 0 {
		os.Exit(1)
	}
}
