package lotus_test

import (
	"bytes"
	"fmt"
	"time"

	"lotus"
)

// ExampleNewTracer traces a small simulated epoch and prints per-operation
// statistics — the minimal LotusTrace workflow.
func ExampleNewTracer() {
	clk := lotus.NewSimClock()
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	hooks := tracer.Hooks()

	compose := lotus.NewCompose(
		&lotus.Loader{IO: lotus.DefaultIO()},
		&lotus.RandomResizedCrop{Size: 224},
		&lotus.ToTensor{},
	)
	compose.Hooks = hooks
	loader := lotus.NewDataLoader(clk,
		lotus.NewImageFolder(lotus.NewImageDataset(lotus.ImageNetConfig(20, 1)), compose),
		lotus.LoaderConfig{
			BatchSize: 10, NumWorkers: 2, Seed: 1, Hooks: hooks,
			Mode: lotus.Simulated, Engine: lotus.NewEngine(lotus.Intel),
		})

	clk.Run("main", func(p lotus.Proc) {
		it := loader.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	tracer.Flush()

	analysis := lotus.Analyze(lotus.MustReadLog(&buf))
	fmt.Printf("batches traced: %d\n", len(analysis.Batches()))
	fmt.Printf("Loader applications: %d\n", analysis.OpStats()["Loader"].Count)
	// Output:
	// batches traced: 2
	// Loader applications: 20
}

// ExampleRunsNeeded reproduces the paper's § IV-B worked example: a 660 µs
// function under 10 ms sampling needs ~20 runs for 75% capture confidence
// (the exact ceiling of ln(0.25)/ln(1-0.066) is 21; the paper rounds to 20).
func ExampleRunsNeeded() {
	n := lotus.RunsNeeded(0.75, 660*time.Microsecond, 10*time.Millisecond)
	fmt.Println(n)
	// Output:
	// 21
}

// ExampleMapPipeline reconstructs the operation → C/C++ mapping for the IC
// pipeline on the AMD (1 ms sampling) profiler and prints whether the
// dominant decode kernel was recovered.
func ExampleMapPipeline() {
	engine := lotus.NewEngine(lotus.AMD)
	spec := lotus.ICWorkload(4, 1)
	cfg := lotus.DefaultMapConfig(lotus.UProfSampler(1), lotus.DefaultHWModel(engine))
	proto := spec.Prototype()
	proto.Width, proto.Height, proto.FileBytes = proto.Width*2, proto.Height*2, proto.FileBytes*4

	mapping := lotus.MapPipeline(engine, spec.MappingCompose(), proto, cfg)
	for _, f := range mapping.Symbols("Loader") {
		if f.Symbol == "decode_mcu" {
			fmt.Println("Loader -> decode_mcu (libjpeg.so.9)")
		}
	}
	// Output:
	// Loader -> decode_mcu (libjpeg.so.9)
}

// ExampleWorkloadSpec_Run runs a paper workload and reports its bottleneck.
func ExampleWorkloadSpec_Run() {
	spec := lotus.ISWorkload(16, 1) // segmentation: U-Net3D dominates
	stats, _, _ := spec.Run(nil)
	if stats.GPUUtilization() > 0.9 {
		fmt.Println("GPU-bound")
	} else {
		fmt.Println("preprocessing-bound")
	}
	// Output:
	// GPU-bound
}

// ExampleAnalysis_Advise runs the automated log analysis over a starved
// configuration.
func ExampleAnalysis_Advise() {
	spec := lotus.ICWorkload(512, 1)
	spec.BatchSize, spec.GPUs, spec.NumWorkers = 64, 4, 1

	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	spec.Run(tracer.Hooks())
	tracer.Flush()

	findings := lotus.Analyze(lotus.MustReadLog(&buf)).Advise(lotus.AdvisorConfig{})
	for _, f := range findings {
		if f.Rule == "preprocessing-bound" {
			fmt.Println("finding: preprocessing-bound (critical)")
		}
	}
	// Output:
	// finding: preprocessing-bound (critical)
}
