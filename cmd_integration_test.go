package lotus_test

// End-to-end integration test of the command-line tools: build the real
// binaries and push a trace through the whole flow —
// lotus-run → lotus-viz (JSON + ascii) → lotus-advise → lotus-diff →
// lotus-map. Skipped with -short.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		// lotus-advise exits 3 on critical findings by design.
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 3 && strings.Contains(bin, "advise") {
			return string(out)
		}
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()

	lotusRun := buildTool(t, dir, "lotus-run")
	lotusViz := buildTool(t, dir, "lotus-viz")
	lotusAdvise := buildTool(t, dir, "lotus-advise")
	lotusDiff := buildTool(t, dir, "lotus-diff")

	// 1. Trace a baseline and a tuned run.
	baseLog := filepath.Join(dir, "base.lotustrace")
	tunedLog := filepath.Join(dir, "tuned.lotustrace")
	out := run(t, lotusRun, "-workload", "IC", "-samples", "512", "-batch", "64",
		"-workers", "1", "-gpus", "2", "-log", baseLog)
	if !strings.Contains(out, "Loader") {
		t.Fatalf("lotus-run output missing op table:\n%s", out)
	}
	run(t, lotusRun, "-workload", "IC", "-samples", "512", "-batch", "64",
		"-workers", "4", "-gpus", "2", "-log", tunedLog)

	// 2. Visualize: Chrome JSON and terminal Gantt.
	vizPath := filepath.Join(dir, "viz.json")
	run(t, lotusViz, "-log", baseLog, "-out", vizPath, "-fine")
	blob, err := os.ReadFile(vizPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("viz output is not valid chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
	ascii := run(t, lotusViz, "-log", baseLog, "-ascii", "-width", "80")
	if !strings.Contains(ascii, "main") || !strings.Contains(ascii, "legend") {
		t.Fatalf("ascii timeline broken:\n%s", ascii)
	}

	// 3. Advise on the preprocessing-bound baseline.
	advice := run(t, lotusAdvise, "-log", baseLog)
	if !strings.Contains(advice, "preprocessing-bound") {
		t.Fatalf("advisor missed the bottleneck:\n%s", advice)
	}

	// 4. Diff baseline vs tuned.
	diff := run(t, lotusDiff, "-before", baseLog, "-after", tunedLog)
	if !strings.Contains(diff, "wall span") || !strings.Contains(diff, "Loader") {
		t.Fatalf("diff output broken:\n%s", diff)
	}
}

func TestCLIMapProducesLoadableMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	lotusMap := buildTool(t, dir, "lotus-map")
	mappingPath := filepath.Join(dir, "mapping_funcs.json")
	out := run(t, lotusMap, "-workload", "IC", "-arch", "amd", "-out", mappingPath)
	if !strings.Contains(out, "decode_mcu") {
		t.Fatalf("mapping output missing decode path:\n%s", out)
	}
	blob, err := os.ReadFile(mappingPath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Arch string                       `json:"arch"`
		Ops  map[string][]json.RawMessage `json:"ops"`
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatalf("mapping JSON invalid: %v", err)
	}
	if m.Arch != "amd" || len(m.Ops["Loader"]) == 0 {
		t.Fatalf("mapping content wrong: arch=%s loader=%d", m.Arch, len(m.Ops["Loader"]))
	}
}
