package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestNilInjectorIsInert: production call sites carry a nil injector; every
// method must be a no-op.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if stall, err := in.ReadFault(3); stall != 0 || err != nil {
		t.Fatalf("nil ReadFault = (%v, %v)", stall, err)
	}
	if in.SamplePanic(3) || in.WouldPanic(3) || in.WouldReadError(3) {
		t.Fatal("nil injector selected a fault")
	}
	if d := in.BatchStall(3); d != 0 {
		t.Fatalf("nil BatchStall = %v", d)
	}
	if d := in.WorkerSlowdown(0); d != 0 {
		t.Fatalf("nil WorkerSlowdown = %v", d)
	}
	if a := in.NextWireAction(); a != WireNone {
		t.Fatalf("nil NextWireAction = %v", a)
	}
	if in.FailingBatches([][]int{{1, 2}}) != nil {
		t.Fatal("nil FailingBatches non-empty")
	}
	if c := in.Counts(); c.Total() != 0 {
		t.Fatalf("nil Counts = %+v", c)
	}
}

// TestDecisionsAreDeterministicAndSeedDependent: the same (seed, index)
// always decides the same way; different seeds select different sets.
func TestDecisionsAreDeterministicAndSeedDependent(t *testing.T) {
	spec := Spec{Seed: 42, ReadErrorNth: 5, PanicNth: 7}
	a, b := New(spec), New(spec)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.WouldReadError(i) != b.WouldReadError(i) || a.WouldPanic(i) != b.WouldPanic(i) {
			t.Fatalf("two injectors with the same spec disagree on index %d", i)
		}
		if a.WouldReadError(i) {
			same++
		}
	}
	if same == 0 || same == 1000 {
		t.Fatalf("ReadErrorNth=5 selected %d of 1000 indices", same)
	}
	// A different seed must select a different set (overwhelmingly likely
	// with 1000 indices at 1/5 selection).
	c := New(Spec{Seed: 43, ReadErrorNth: 5})
	diff := 0
	for i := 0; i < 1000; i++ {
		if a.WouldReadError(i) != c.WouldReadError(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 selected identical read-error sets")
	}
}

// TestSelectionRateRoughlyMatchesNth: ~1/Nth of keys are selected.
func TestSelectionRateRoughlyMatchesNth(t *testing.T) {
	in := New(Spec{Seed: 7, PanicNth: 10})
	n := 0
	for i := 0; i < 10000; i++ {
		if in.WouldPanic(i) {
			n++
		}
	}
	if n < 700 || n > 1300 {
		t.Fatalf("PanicNth=10 selected %d of 10000 keys, want ~1000", n)
	}
}

// TestReadFaultStallAndError: stalls and errors compose, counters fire, and
// the error wraps ErrInjectedRead.
func TestReadFaultStallAndError(t *testing.T) {
	in := New(Spec{Seed: 1, ReadErrorNth: 1, ReadStallNth: 1, ReadStall: 3 * time.Millisecond})
	stall, err := in.ReadFault(0)
	if stall != 3*time.Millisecond {
		t.Fatalf("stall = %v, want 3ms", stall)
	}
	if !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("err = %v, want ErrInjectedRead", err)
	}
	c := in.Counts()
	if c.ReadErrors != 1 || c.ReadStalls != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestWireFaultsFireExactlyOnce: each wire class fires on its configured
// frame and never re-fires — the property that lets a client retry succeed.
func TestWireFaultsFireExactlyOnce(t *testing.T) {
	in := New(Spec{DropFrame: 2, TruncateFrame: 4, CorruptFrame: 5})
	var got []WireAction
	for i := 0; i < 12; i++ {
		got = append(got, in.NextWireAction())
	}
	want := []WireAction{WireNone, WireDrop, WireNone, WireTruncate, WireCorrupt,
		WireNone, WireNone, WireNone, WireNone, WireNone, WireNone, WireNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: action %v, want %v (full: %v)", i+1, got[i], want[i], got)
		}
	}
	if c := in.Counts(); c.WireFaults != 3 {
		t.Fatalf("wire faults fired %d times, want 3", c.WireFaults)
	}
}

// TestFailingBatchesMatchesPerSampleDecisions: the batch-level prediction is
// exactly the union of per-sample decisions.
func TestFailingBatchesMatchesPerSampleDecisions(t *testing.T) {
	in := New(Spec{Seed: 11, ReadErrorNth: 4, PanicNth: 6})
	plan := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}
	want := map[int]bool{}
	for pos, idxs := range plan {
		for _, idx := range idxs {
			if in.WouldReadError(idx) || in.WouldPanic(idx) {
				want[pos] = true
			}
		}
	}
	got := in.FailingBatches(plan)
	if len(got) != len(want) {
		t.Fatalf("FailingBatches = %v, want %d positions %v", got, len(want), want)
	}
	for _, pos := range got {
		if !want[pos] {
			t.Fatalf("position %d reported failing but no sample is selected", pos)
		}
	}
}

// TestWorkerSlowdownIsWorkerKeyed: only the 1-based selected worker stalls,
// it stalls on every call, and the zero spec selects nobody — including
// worker 0, which a 0-based field would have conflated with "disabled".
func TestWorkerSlowdownIsWorkerKeyed(t *testing.T) {
	in := New(Spec{SlowWorkerID: 1, SlowWorkerStall: 40 * time.Millisecond})
	for call := 0; call < 3; call++ {
		if d := in.WorkerSlowdown(0); d != 40*time.Millisecond {
			t.Fatalf("slow worker 0 call %d: stall %v", call, d)
		}
	}
	if d := in.WorkerSlowdown(1); d != 0 {
		t.Fatalf("healthy worker stalled %v", d)
	}
	if got := in.Counts().WorkerStalls; got != 3 {
		t.Fatalf("WorkerStalls = %d, want 3", got)
	}
	if d := New(Spec{SlowWorkerStall: time.Second}).WorkerSlowdown(0); d != 0 {
		t.Fatalf("zero SlowWorkerID selected worker 0: stall %v", d)
	}
}
