// Package faultinject is the seeded, deterministic fault-injection layer
// threaded through the substrate seams: blob-store reads (the internal/data
// I/O model consulted by the pipeline loaders), per-sample worker execution
// and per-batch engine stalls (internal/pipeline), and the serving wire
// (internal/serve).
//
// Two decision families keep every injected schedule reproducible:
//
//   - Index-keyed decisions (read errors, read stalls, worker panics, batch
//     stalls) are pure functions of (Seed, class, key). The same sample fails
//     no matter which worker picks it up, how many workers exist, or how the
//     scheduler interleaves them — so a chaos run's failure set is computable
//     up front and skip accounting can be asserted exactly.
//
//   - Sequence-keyed decisions (wire drop / truncate / corrupt) fire on the
//     Nth event of a monotonic per-injector counter and then never again:
//     a transient wire fault that a client retry must mask. Because the
//     counter keeps advancing across reconnects, the retried epoch does not
//     re-hit the same fault.
//
// The zero Spec injects nothing, and every Injector method is safe on a nil
// receiver, so production call sites need no fault-injection branches.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjectedRead tags injected blob-store read failures so tests and error
// policies can distinguish them from genuine bugs.
var ErrInjectedRead = errors.New("faultinject: injected blob read error")

// Spec configures one injector. Index-keyed classes select roughly one key in
// Nth via a seeded hash (0 disables the class); wire classes name the exact
// 1-based frame the fault fires on.
type Spec struct {
	// Seed drives every hash-keyed decision.
	Seed int64

	// ReadErrorNth: the blob read for a hash-selected ~1/Nth of sample
	// indices fails with ErrInjectedRead (surfaced as a dataset exception,
	// like PyTorch re-raising a worker's IOError).
	ReadErrorNth int
	// ReadStallNth / ReadStall: the blob read for a hash-selected ~1/Nth of
	// sample indices takes ReadStall longer (a slow replica or a cold cache).
	ReadStallNth int
	ReadStall    time.Duration

	// PanicNth: a hash-selected ~1/Nth of sample indices panic inside the
	// worker loop (corrupt record / transform bug).
	PanicNth int
	// StallNth / WorkerStall: a hash-selected ~1/Nth of batch IDs stall the
	// worker after preprocessing (GC pause, CPU contention, engine hiccup).
	StallNth    int
	WorkerStall time.Duration

	// SlowWorkerID / SlowWorkerStall: worker SlowWorkerID-1 stalls
	// SlowWorkerStall after preprocessing every batch it handles (1-based so
	// the zero Spec stays inert; SlowWorkerID 1 slows worker 0). Unlike the
	// batch-keyed StallNth, this models a persistently degraded worker — a
	// throttled core, a noisy neighbor — so straggler-mitigation tests get a
	// guaranteed, schedule-independent laggard instead of a seed-lucky one.
	SlowWorkerID    int
	SlowWorkerStall time.Duration

	// DropFrame: the server closes the connection instead of writing the Nth
	// outgoing batch frame (1-based; 0 disables).
	DropFrame int
	// TruncateFrame: the Nth outgoing batch frame is cut mid-payload and the
	// connection failed, so the client sees an unexpected EOF.
	TruncateFrame int
	// CorruptFrame: the Nth outgoing batch frame has one byte flipped after
	// the stream checksum is taken — the wire delivers garbage that the
	// client must catch by decode failure or checksum mismatch.
	CorruptFrame int

	// CorruptDiskAppend: the Nth record appended to the persistent disk
	// cache has one payload byte flipped after its checksum is taken — bit
	// rot that the store must catch at read time (checksum mismatch → clean
	// miss and recompute, never stale bytes served).
	CorruptDiskAppend int
	// TornManifest: the Nth disk-cache manifest write is torn — only the
	// first half of the manifest bytes land before the atomic rename, as if
	// the machine died mid-write on a filesystem that reordered the rename.
	// The manifest's self-checksum must catch it on the next open and force
	// a rebuild from segment scans.
	TornManifest int
}

// WireAction is the fault applied to one outgoing wire frame.
type WireAction int

const (
	WireNone WireAction = iota
	WireDrop
	WireTruncate
	WireCorrupt
)

func (a WireAction) String() string {
	switch a {
	case WireNone:
		return "none"
	case WireDrop:
		return "drop"
	case WireTruncate:
		return "truncate"
	case WireCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("WireAction(%d)", int(a))
}

// Counts reports how many faults an injector has fired, per class.
type Counts struct {
	ReadErrors   int64
	ReadStalls   int64
	Panics       int64
	WorkerStalls int64
	WireFaults   int64
	DiskFaults   int64
}

// Total sums every class.
func (c Counts) Total() int64 {
	return c.ReadErrors + c.ReadStalls + c.Panics + c.WorkerStalls +
		c.WireFaults + c.DiskFaults
}

// Injector makes fault decisions for one run. Methods are safe for
// concurrent use and on a nil receiver (nil injects nothing).
type Injector struct {
	spec Spec

	frames       atomic.Int64 // outgoing wire frames observed
	appends      atomic.Int64 // disk-cache records appended
	manifests    atomic.Int64 // disk-cache manifest writes observed
	readErrors   atomic.Int64
	readStalls   atomic.Int64
	panics       atomic.Int64
	workerStalls atomic.Int64
	wireFaults   atomic.Int64
	diskFaults   atomic.Int64
}

// New builds an injector from spec. A zero spec (or a nil *Injector) injects
// nothing.
func New(spec Spec) *Injector { return &Injector{spec: spec} }

// Spec returns the injector's configuration (zero for nil).
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Counts snapshots the per-class fired-fault counters.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	return Counts{
		ReadErrors:   in.readErrors.Load(),
		ReadStalls:   in.readStalls.Load(),
		Panics:       in.panics.Load(),
		WorkerStalls: in.workerStalls.Load(),
		WireFaults:   in.wireFaults.Load(),
		DiskFaults:   in.diskFaults.Load(),
	}
}

// selected is the pure decision function behind every index-keyed class:
// an FNV-1a style mix of (seed, class, key) modulo nth. It depends on
// nothing but its arguments, so decisions are identical across workers,
// schedules, and processes.
func selected(seed int64, class byte, key int64, nth int) bool {
	if nth <= 0 {
		return false
	}
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	h ^= uint64(class)
	h *= prime64
	mix(uint64(key))
	return h%uint64(nth) == 0
}

// Class tags for the hash mix; changing one changes that class's selection
// set, so they are frozen.
const (
	classReadError = 'R'
	classReadStall = 'S'
	classPanic     = 'P'
	classStall     = 'B'
)

// WouldReadError reports whether the blob read for sample index is selected
// to fail, without firing counters — the prediction used for exact skip
// accounting.
func (in *Injector) WouldReadError(index int) bool {
	if in == nil {
		return false
	}
	return selected(in.spec.Seed, classReadError, int64(index), in.spec.ReadErrorNth)
}

// WouldPanic reports whether sample index is selected to panic in the
// worker, without firing counters.
func (in *Injector) WouldPanic(index int) bool {
	if in == nil {
		return false
	}
	return selected(in.spec.Seed, classPanic, int64(index), in.spec.PanicNth)
}

// ReadFault is consulted by the pipeline loaders before each blob read. It
// returns an extra stall to add to the modeled storage delay and, when the
// read is selected to fail, an ErrInjectedRead-wrapped error the loader
// surfaces as a dataset exception.
func (in *Injector) ReadFault(index int) (stall time.Duration, err error) {
	if in == nil {
		return 0, nil
	}
	if selected(in.spec.Seed, classReadStall, int64(index), in.spec.ReadStallNth) {
		stall = in.spec.ReadStall
		in.readStalls.Add(1)
	}
	if in.WouldReadError(index) {
		in.readErrors.Add(1)
		return stall, fmt.Errorf("%w: sample %d", ErrInjectedRead, index)
	}
	return stall, nil
}

// SamplePanic reports whether the worker should panic on sample index.
func (in *Injector) SamplePanic(index int) bool {
	if in == nil {
		return false
	}
	if in.WouldPanic(index) {
		in.panics.Add(1)
		return true
	}
	return false
}

// BatchStall returns the extra stall charged to the worker after it finishes
// preprocessing batchID (0 when the batch is not selected).
func (in *Injector) BatchStall(batchID int) time.Duration {
	if in == nil {
		return 0
	}
	if in.spec.WorkerStall > 0 &&
		selected(in.spec.Seed, classStall, int64(batchID), in.spec.StallNth) {
		in.workerStalls.Add(1)
		return in.spec.WorkerStall
	}
	return 0
}

// WorkerSlowdown returns the per-batch stall for a persistently degraded
// worker (0 when this worker is healthy or the class is disabled). Counted
// with the WorkerStalls class: both are worker-execution stalls, differing
// only in what selects them.
func (in *Injector) WorkerSlowdown(workerID int) time.Duration {
	if in == nil {
		return 0
	}
	if in.spec.SlowWorkerStall > 0 && in.spec.SlowWorkerID == workerID+1 {
		in.workerStalls.Add(1)
		return in.spec.SlowWorkerStall
	}
	return 0
}

// NextWireAction advances the outgoing-frame counter and returns the fault
// to apply to this frame. Each configured wire fault fires exactly once (on
// its configured frame number) over the injector's lifetime.
func (in *Injector) NextWireAction() WireAction {
	if in == nil {
		return WireNone
	}
	n := in.frames.Add(1)
	switch {
	case in.spec.DropFrame > 0 && n == int64(in.spec.DropFrame):
		in.wireFaults.Add(1)
		return WireDrop
	case in.spec.TruncateFrame > 0 && n == int64(in.spec.TruncateFrame):
		in.wireFaults.Add(1)
		return WireTruncate
	case in.spec.CorruptFrame > 0 && n == int64(in.spec.CorruptFrame):
		in.wireFaults.Add(1)
		return WireCorrupt
	}
	return WireNone
}

// NextDiskAppendCorrupt advances the disk-append counter and reports whether
// this record's payload should be bit-flipped after checksumming. Fires
// exactly once, on the configured 1-based append number.
func (in *Injector) NextDiskAppendCorrupt() bool {
	if in == nil {
		return false
	}
	n := in.appends.Add(1)
	if in.spec.CorruptDiskAppend > 0 && n == int64(in.spec.CorruptDiskAppend) {
		in.diskFaults.Add(1)
		return true
	}
	return false
}

// NextManifestTorn advances the manifest-write counter and reports whether
// this manifest write should be torn (truncated mid-file before the rename).
// Fires exactly once, on the configured 1-based write number.
func (in *Injector) NextManifestTorn() bool {
	if in == nil {
		return false
	}
	n := in.manifests.Add(1)
	if in.spec.TornManifest > 0 && n == int64(in.spec.TornManifest) {
		in.diskFaults.Add(1)
		return true
	}
	return false
}

// FailingBatches returns the positions (in plan order) of batches containing
// at least one sample selected to read-error or panic — exactly the batches
// a SkipBatch run must report in Iterator.Skipped, and a FailEpoch run must
// fail on the first of.
func (in *Injector) FailingBatches(plan [][]int) []int {
	if in == nil {
		return nil
	}
	var out []int
	for pos, indices := range plan {
		for _, idx := range indices {
			if in.WouldReadError(idx) || in.WouldPanic(idx) {
				out = append(out, pos)
				break
			}
		}
	}
	return out
}
