package clock

import (
	"container/heap"
	"fmt"
	"strings"
	"sync"
	"time"
)

// procState tracks where a simulated proc currently is in its lifecycle.
type procState int

const (
	// stateRunning: the proc holds the execution token (at most one proc at a
	// time does).
	stateRunning procState = iota
	// stateRunnable: the proc is ready to run and queued behind the current
	// proc.
	stateRunnable
	// stateSleeping: the proc is parked until a virtual deadline.
	stateSleeping
	// stateWaiting: the proc is parked on a Cond until Broadcast.
	stateWaiting
	// stateDone: the proc function returned.
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateRunning:
		return "running"
	case stateRunnable:
		return "runnable"
	case stateSleeping:
		return "sleeping"
	case stateWaiting:
		return "waiting"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// Sim is the deterministic cooperative virtual-time scheduler. Exactly one
// proc executes between blocking points; ties in wake-up time are broken by
// spawn order, so a given program produces the same schedule every run.
type Sim struct {
	mu   sync.Mutex
	cond *sync.Cond

	now      time.Duration // virtual time since Epoch
	seq      int           // next proc sequence number
	current  *simProc      // proc holding the execution token, nil when idle
	runnable []*simProc    // FIFO of procs ready to run (valid from rhead)
	rhead    int           // index of the FIFO's front element
	due      []*simProc    // scratch for procs waking at the same instant
	sleepers sleepHeap
	waiting  int        // procs parked in Cond.Wait
	live     int        // procs not yet done
	procs    []*simProc // every proc ever spawned, for diagnostics
	fail     string     // non-empty once the scheduler detects deadlock
	switches int        // token handoffs
	advances int        // virtual-time steps
}

// NewSim returns a fresh virtual-time Clock. The clock starts at Epoch.
func NewSim() *Sim {
	s := &Sim{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Now reports the current virtual time. It is safe to call from outside a
// proc (e.g. after Run returns, to read the total elapsed virtual time).
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Epoch.Add(s.now)
}

// Elapsed reports the total virtual time that has passed since the clock was
// created.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// SimStats summarizes scheduler activity — useful for judging a workload's
// simulation cost independent of host speed.
type SimStats struct {
	// Procs is the number of procs ever spawned.
	Procs int
	// Switches counts token handoffs (context switches).
	Switches int
	// Advances counts distinct virtual-time steps.
	Advances int
}

// Stats reports scheduler activity so far.
func (s *Sim) Stats() SimStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SimStats{Procs: len(s.procs), Switches: s.switches, Advances: s.advances}
}

// Run implements Clock.
func (s *Sim) Run(name string, fn func(p Proc)) {
	s.mu.Lock()
	s.spawnLocked(name, fn)
	// Hand the token to the root proc if the scheduler is idle.
	if s.current == nil {
		s.scheduleLocked()
	}
	// Block the caller (a real goroutine outside the simulation) until every
	// proc has finished or the scheduler detects a deadlock.
	for s.live > 0 && s.fail == "" {
		s.cond.Wait()
	}
	fail := s.fail
	s.mu.Unlock()
	if fail != "" {
		panic(fail)
	}
}

func (s *Sim) NewCond() Cond { return &simCond{sim: s} }

// spawnLocked registers a new proc and queues it as runnable. The proc's
// goroutine parks immediately until it is handed the token.
func (s *Sim) spawnLocked(name string, fn func(p Proc)) *simProc {
	p := &simProc{sim: s, name: name, seq: s.seq, state: stateRunnable}
	s.seq++
	s.live++
	s.procs = append(s.procs, p)
	s.runnable = append(s.runnable, p)
	go func() {
		s.mu.Lock()
		for p.state != stateRunning {
			s.cond.Wait()
		}
		s.mu.Unlock()

		fn(p)

		s.mu.Lock()
		p.state = stateDone
		s.live--
		s.current = nil
		s.scheduleLocked()
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	return p
}

// scheduleLocked picks the next proc to run. If nothing is runnable it
// advances virtual time to the earliest sleep deadline; if nothing is
// sleeping either but procs are parked on conds, the simulation is
// deadlocked and we panic with a diagnostic.
func (s *Sim) scheduleLocked() {
	if s.current != nil {
		return
	}
	for {
		if s.rhead < len(s.runnable) {
			p := s.runnable[s.rhead]
			s.runnable[s.rhead] = nil
			s.rhead++
			if s.rhead == len(s.runnable) {
				// FIFO drained: rewind so pushes reuse the backing array
				// instead of growing it forever.
				s.runnable = s.runnable[:0]
				s.rhead = 0
			} else if s.rhead >= 64 && s.rhead*2 >= len(s.runnable) {
				// Mostly-consumed FIFO that never fully drains: compact so
				// the dead prefix is reclaimed.
				n := copy(s.runnable, s.runnable[s.rhead:])
				for i := n; i < len(s.runnable); i++ {
					s.runnable[i] = nil
				}
				s.runnable = s.runnable[:n]
				s.rhead = 0
			}
			p.state = stateRunning
			s.current = p
			s.switches++
			s.cond.Broadcast()
			return
		}
		if s.sleepers.Len() > 0 {
			// Advance time to the earliest deadline and wake every proc due
			// at that instant, in spawn order.
			t := s.sleepers[0].deadline
			if t > s.now {
				s.now = t
				s.advances++
			}
			due := s.due[:0]
			for s.sleepers.Len() > 0 && s.sleepers[0].deadline <= s.now {
				due = append(due, heap.Pop(&s.sleepers).(*simProc))
			}
			// Insertion sort by spawn order: due batches are small, and
			// unlike sort.Slice this does not allocate in the scheduler's
			// hottest loop.
			for i := 1; i < len(due); i++ {
				for j := i; j > 0 && due[j-1].seq > due[j].seq; j-- {
					due[j-1], due[j] = due[j], due[j-1]
				}
			}
			for _, p := range due {
				p.state = stateRunnable
				s.runnable = append(s.runnable, p)
			}
			s.due = due[:0]
			continue
		}
		if s.live == 0 {
			return // simulation finished
		}
		if s.waiting > 0 {
			s.failLocked("clock: simulation deadlock — all procs waiting on conds:\n" + s.dumpLocked())
			return
		}
		// live > 0 but nothing runnable, sleeping, or waiting: procs must be
		// blocked outside the clock, which the scheduler cannot recover from.
		s.failLocked("clock: simulation stalled — live procs blocked outside the clock:\n" + s.dumpLocked())
		return
	}
}

// failLocked records a fatal scheduler condition and wakes Run's caller,
// which re-raises it as a panic on the caller's goroutine. Parked procs are
// intentionally left parked: the simulation is unrecoverable.
func (s *Sim) failLocked(msg string) {
	if s.fail == "" {
		s.fail = msg
	}
	s.cond.Broadcast()
}

// dumpLocked renders proc states for deadlock diagnostics.
func (s *Sim) dumpLocked() string {
	var b strings.Builder
	for _, p := range s.procs {
		if p.state == stateDone {
			continue
		}
		fmt.Fprintf(&b, "  proc %q (#%d): %s\n", p.name, p.seq, p.state)
	}
	return b.String()
}

// yieldLocked releases the token from proc p (which must be current) and
// hands it to the next runnable proc, then blocks until p runs again.
func (s *Sim) blockLocked(p *simProc) {
	s.current = nil
	s.scheduleLocked()
	for p.state != stateRunning {
		s.cond.Wait()
	}
}

// simProc is a proc under the simulated scheduler.
type simProc struct {
	sim      *Sim
	name     string
	seq      int
	state    procState
	deadline time.Duration // valid while sleeping
}

func (p *simProc) Name() string { return p.name }

func (p *simProc) Now() time.Time {
	p.sim.mu.Lock()
	defer p.sim.mu.Unlock()
	return Epoch.Add(p.sim.now)
}

func (p *simProc) Sleep(d time.Duration) {
	if d <= 0 {
		// Even zero-length sleeps yield the token so that same-instant procs
		// interleave deterministically rather than one proc monopolizing.
		d = 0
	}
	s := p.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	p.deadline = s.now + d
	p.state = stateSleeping
	heap.Push(&s.sleepers, p)
	s.blockLocked(p)
}

func (p *simProc) Go(name string, fn func(p Proc)) {
	s := p.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spawnLocked(name, fn)
}

// simCond is a condition variable in the simulated domain. All simConds of a
// Sim share the scheduler mutex, which is safe because only one proc executes
// at a time; each cond keeps its own waiter list so Broadcast wakes only its
// own waiters.
type simCond struct {
	sim     *Sim
	waiters []*simProc
}

func (c *simCond) Lock()   { c.sim.mu.Lock() }
func (c *simCond) Unlock() { c.sim.mu.Unlock() }

func (c *simCond) Wait(proc Proc) {
	p, ok := proc.(*simProc)
	if !ok {
		panic("clock: simCond.Wait called with a non-sim proc")
	}
	s := c.sim
	c.waiters = append(c.waiters, p)
	p.state = stateWaiting
	s.waiting++
	s.blockLocked(p)
}

func (c *simCond) Broadcast() {
	s := c.sim
	for _, p := range c.waiters {
		p.state = stateRunnable
		s.waiting--
		s.runnable = append(s.runnable, p)
	}
	c.waiters = c.waiters[:0]
}

// sleepHeap is a min-heap of sleeping procs ordered by (deadline, seq).
type sleepHeap []*simProc

func (h sleepHeap) Len() int { return len(h) }
func (h sleepHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h sleepHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *sleepHeap) Push(x any) { *h = append(*h, x.(*simProc)) }

func (h *sleepHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
