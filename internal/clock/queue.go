package clock

// Queue is a bounded, closable FIFO usable under either clock. It mirrors the
// semantics of Python's multiprocessing.Queue as used by PyTorch's
// DataLoader: multiple producers, multiple consumers, blocking Put when full
// and blocking Get when empty.
//
// Capacity 0 means unbounded (Put never blocks).
type Queue[T any] struct {
	cond   Cond
	items  []T
	cap    int
	closed bool

	// puts/gets count completed operations, for tests and overhead models.
	puts int
	gets int
}

// NewQueue creates a queue with the given capacity under clk's time domain.
func NewQueue[T any](clk Clock, capacity int) *Queue[T] {
	return &Queue[T]{cond: clk.NewCond(), cap: capacity}
}

// Put appends v, blocking while the queue is full. Put on a closed queue
// panics (it indicates a pipeline shutdown bug, as in the real DataLoader).
func (q *Queue[T]) Put(p Proc, v T) {
	q.cond.Lock()
	defer q.cond.Unlock()
	for q.cap > 0 && len(q.items) >= q.cap && !q.closed {
		q.cond.Wait(p)
	}
	if q.closed {
		panic("clock: Put on closed queue")
	}
	q.items = append(q.items, v)
	q.puts++
	q.cond.Broadcast()
}

// Get removes and returns the head item, blocking while the queue is empty.
// ok is false if the queue was closed and drained.
func (q *Queue[T]) Get(p Proc) (v T, ok bool) {
	q.cond.Lock()
	defer q.cond.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait(p)
	}
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.gets++
	q.cond.Broadcast()
	return v, true
}

// TryGet removes the head item without blocking. ok is false if the queue is
// currently empty (whether or not it is closed).
func (q *Queue[T]) TryGet() (v T, ok bool) {
	q.cond.Lock()
	defer q.cond.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.gets++
	q.cond.Broadcast()
	return v, true
}

// Close marks the queue closed. Blocked Gets return ok=false once drained;
// blocked Puts panic.
func (q *Queue[T]) Close() {
	q.cond.Lock()
	defer q.cond.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len reports the number of items currently buffered.
func (q *Queue[T]) Len() int {
	q.cond.Lock()
	defer q.cond.Unlock()
	return len(q.items)
}

// Stats reports the number of completed Put and Get operations.
func (q *Queue[T]) Stats() (puts, gets int) {
	q.cond.Lock()
	defer q.cond.Unlock()
	return q.puts, q.gets
}
