// Package clock provides the execution substrate shared by every simulated
// component in the repository: a Clock under which concurrent "procs"
// (workers, the main training loop, GPU devices) run, sleep, and synchronize.
//
// Two implementations exist:
//
//   - Real: procs are ordinary goroutines, Sleep is time.Sleep, and Now is
//     time.Now. Used by the runnable examples and by instrumentation-overhead
//     benchmarks, where wall-clock behaviour is the point.
//
//   - Sim: a deterministic cooperative virtual-time scheduler. Exactly one
//     proc executes at a time; when it blocks (Sleep or Cond.Wait) the
//     scheduler hands control to the next runnable proc, and advances virtual
//     time only when nothing is runnable. Given the same program and seed the
//     schedule is fully reproducible, and a multi-worker pipeline can be
//     characterized on a single-core host in milliseconds of wall time.
//
// Pipeline, GPU, and profiler code is written once against these interfaces;
// the mode is chosen by the caller.
package clock

import (
	"sync"
	"time"
)

// Epoch is the virtual-time origin used by the simulated clock. Using a fixed
// origin keeps trace timestamps reproducible across runs.
var Epoch = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)

// Proc is a handle held by each concurrently executing activity. All blocking
// must go through the Proc (Sleep) or through a Cond created by the same
// Clock; blocking on anything else stalls the simulated scheduler.
type Proc interface {
	// Name returns the name the proc was spawned with, e.g. "worker-3".
	Name() string
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Sleep blocks the proc for d. Negative or zero durations return
	// immediately.
	Sleep(d time.Duration)
	// Go spawns a sibling proc. The spawned proc keeps the Clock's Run alive
	// until it returns.
	Go(name string, fn func(p Proc))
}

// Cond is a condition variable tied to a Clock. The usage pattern is the
// classic one:
//
//	c.Lock()
//	for !predicate() {
//		c.Wait(p)
//	}
//	... mutate state ...
//	c.Broadcast()
//	c.Unlock()
//
// Wait must be called with the lock held; it atomically releases the lock,
// blocks until a Broadcast, and reacquires it. Broadcast must be called with
// the lock held. Procs must not call Sleep while holding a Cond lock.
type Cond interface {
	Lock()
	Unlock()
	Wait(p Proc)
	Broadcast()
}

// Clock creates procs and synchronization primitives in either the real or
// the simulated time domain.
type Clock interface {
	// Run spawns the root proc and blocks until it and every proc
	// transitively spawned from it have returned.
	Run(name string, fn func(p Proc))
	// NewCond returns a condition variable usable by this Clock's procs.
	NewCond() Cond
}

// ---------------------------------------------------------------------------
// Real clock
// ---------------------------------------------------------------------------

// realClock implements Clock over the operating system scheduler.
type realClock struct {
	wg sync.WaitGroup
}

// NewReal returns a Clock whose procs are plain goroutines in real time.
func NewReal() Clock { return &realClock{} }

func (c *realClock) Run(name string, fn func(p Proc)) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn(&realProc{name: name, clk: c})
	}()
	c.wg.Wait()
}

func (c *realClock) NewCond() Cond {
	rc := &realCond{}
	rc.cond = sync.NewCond(&rc.mu)
	return rc
}

// realCond wraps sync.Cond; Wait ignores the proc handle.
type realCond struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func (c *realCond) Lock()      { c.mu.Lock() }
func (c *realCond) Unlock()    { c.mu.Unlock() }
func (c *realCond) Wait(Proc)  { c.cond.Wait() }
func (c *realCond) Broadcast() { c.cond.Broadcast() }

// sleepResolution is the shortest duration worth handing to the OS timer:
// below it, time.Sleep's per-call overshoot (about a millisecond on a
// coarse-timer host) dwarfs the requested pause.
const sleepResolution = time.Millisecond

// sleepForgiveness bounds how much oversleep is carried forward as credit. A
// scheduler stall should not let the proc skip pacing for seconds afterward.
const sleepForgiveness = 100 * time.Millisecond

type realProc struct {
	name string
	clk  *realClock
	// debt is requested-but-unslept pacing time. Each realProc belongs to
	// exactly one goroutine, so no locking.
	debt time.Duration
}

func (p *realProc) Name() string   { return p.name }
func (p *realProc) Now() time.Time { return time.Now() }

// Sleep paces the proc by d with sub-resolution requests coalesced: they
// accumulate into a debt, and only when the debt reaches the OS timer's
// resolution does the proc actually sleep it off, crediting any overshoot
// against future requests. Long-run pacing converges on the requested total
// — which is what emulate-mode serving and modeled I/O need — while a
// modeled pipeline's thousands of microsecond-scale charges no longer pay a
// millisecond of timer overshoot each.
func (p *realProc) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	p.debt += d
	if p.debt < sleepResolution {
		return
	}
	start := time.Now()
	time.Sleep(p.debt)
	p.debt -= time.Since(start)
	if p.debt < -sleepForgiveness {
		p.debt = -sleepForgiveness
	}
}

// IsReal reports whether p executes on the real clock (an ordinary
// goroutine). Code that must block on channels or OS events — which would
// stall the simulated scheduler — can branch on it to take a real-clock
// select path while staying deterministic under simulation.
func IsReal(p Proc) bool {
	_, ok := p.(*realProc)
	return ok
}

func (p *realProc) Go(name string, fn func(p Proc)) {
	p.clk.wg.Add(1)
	go func() {
		defer p.clk.wg.Done()
		fn(&realProc{name: name, clk: p.clk})
	}()
}
