package clock

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// scheduleFingerprint runs a randomized proc structure derived from the
// inputs and returns the exact interleaving trace.
func scheduleFingerprint(nProcs uint8, sleepSeed uint32) []string {
	procs := int(nProcs%6) + 2
	sim := NewSim()
	var order []string
	sim.Run("root", func(p Proc) {
		for i := 0; i < procs; i++ {
			i := i
			p.Go(fmt.Sprintf("w%d", i), func(p Proc) {
				s := sleepSeed
				for step := 0; step < 5; step++ {
					// Deterministic pseudo-random sleeps per proc/step.
					s = s*1664525 + 1013904223 + uint32(i)
					p.Sleep(time.Duration(s%5000) * time.Microsecond)
					order = append(order, fmt.Sprintf("%s@%d:%d", p.Name(), step, sim.Elapsed()/time.Microsecond))
				}
			})
		}
	})
	return order
}

// TestPropertySimScheduleDeterministic: identical programs produce identical
// interleavings — the property every characterization experiment relies on.
func TestPropertySimScheduleDeterministic(t *testing.T) {
	if err := quick.Check(func(nProcs uint8, seed uint32) bool {
		a := scheduleFingerprint(nProcs, seed)
		b := scheduleFingerprint(nProcs, seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVirtualTimeMonotone: a proc never observes time going
// backwards, and total elapsed equals the max deadline reached.
func TestPropertyVirtualTimeMonotone(t *testing.T) {
	if err := quick.Check(func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 50 {
			delays = delays[:50]
		}
		sim := NewSim()
		ok := true
		var total time.Duration
		sim.Run("root", func(p Proc) {
			prev := p.Now()
			for _, d := range delays {
				dur := time.Duration(d) * time.Microsecond
				total += dur
				p.Sleep(dur)
				now := p.Now()
				if now.Before(prev) {
					ok = false
				}
				prev = now
			}
		})
		return ok && sim.Elapsed() == total
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQueuePreservesAllItems: for any producer/consumer structure,
// every item is delivered exactly once in FIFO order per producer.
func TestPropertyQueuePreservesAllItems(t *testing.T) {
	if err := quick.Check(func(producers uint8, perProducer uint8) bool {
		np := int(producers%4) + 1
		n := int(perProducer%40) + 1
		sim := NewSim()
		q := NewQueue[[2]int](sim, 3)
		got := map[int][]int{}
		sim.Run("root", func(p Proc) {
			done := 0
			for pr := 0; pr < np; pr++ {
				pr := pr
				p.Go(fmt.Sprintf("prod%d", pr), func(p Proc) {
					for i := 0; i < n; i++ {
						p.Sleep(time.Duration((pr*7+i*13)%5) * time.Microsecond)
						q.Put(p, [2]int{pr, i})
					}
				})
			}
			p.Go("consumer", func(p Proc) {
				for done < np*n {
					v, ok := q.Get(p)
					if !ok {
						return
					}
					got[v[0]] = append(got[v[0]], v[1])
					done++
				}
			})
		})
		for pr := 0; pr < np; pr++ {
			if len(got[pr]) != n {
				return false
			}
			for i, v := range got[pr] {
				if v != i {
					return false // per-producer FIFO violated
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
