package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	sim := NewSim()
	var woke time.Time
	sim.Run("root", func(p Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	want := Epoch.Add(5 * time.Second)
	if !woke.Equal(want) {
		t.Fatalf("woke at %v, want %v", woke, want)
	}
	if sim.Elapsed() != 5*time.Second {
		t.Fatalf("Elapsed = %v, want 5s", sim.Elapsed())
	}
}

func TestSimZeroSleepYields(t *testing.T) {
	sim := NewSim()
	var order []string
	sim.Run("a", func(p Proc) {
		p.Go("b", func(p Proc) {
			order = append(order, "b")
		})
		p.Sleep(0)
		order = append(order, "a")
	})
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestSimParallelSleepersOverlap(t *testing.T) {
	// Two procs each sleeping 10s concurrently should finish at t=10s, not
	// t=20s: virtual time models true parallelism.
	sim := NewSim()
	sim.Run("root", func(p Proc) {
		for i := 0; i < 2; i++ {
			p.Go("w", func(p Proc) { p.Sleep(10 * time.Second) })
		}
	})
	if got := sim.Elapsed(); got != 10*time.Second {
		t.Fatalf("Elapsed = %v, want 10s", got)
	}
}

func TestSimDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		sim := NewSim()
		var order []string
		sim.Run("root", func(p Proc) {
			for i := 0; i < 5; i++ {
				name := string(rune('a' + i))
				p.Go(name, func(p Proc) {
					p.Sleep(time.Duration(5-len(order)) * time.Millisecond)
					order = append(order, p.Name())
					p.Sleep(time.Millisecond)
					order = append(order, p.Name())
				})
			}
		})
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("run %d: len %d != %d", i, len(got), len(first))
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d: order diverged at %d: %v vs %v", i, j, got, first)
				}
			}
		}
	}
}

func TestSimTieBreakBySpawnOrder(t *testing.T) {
	sim := NewSim()
	var order []string
	sim.Run("root", func(p Proc) {
		for _, name := range []string{"w1", "w2", "w3"} {
			p.Go(name, func(p Proc) {
				p.Sleep(time.Second) // identical deadlines
				order = append(order, p.Name())
			})
		}
	})
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimCondHandoff(t *testing.T) {
	sim := NewSim()
	cond := sim.NewCond()
	ready := false
	var consumerSaw time.Time
	sim.Run("root", func(p Proc) {
		p.Go("consumer", func(p Proc) {
			cond.Lock()
			for !ready {
				cond.Wait(p)
			}
			cond.Unlock()
			consumerSaw = p.Now()
		})
		p.Go("producer", func(p Proc) {
			p.Sleep(3 * time.Second)
			cond.Lock()
			ready = true
			cond.Broadcast()
			cond.Unlock()
		})
	})
	if want := Epoch.Add(3 * time.Second); !consumerSaw.Equal(want) {
		t.Fatalf("consumer resumed at %v, want %v", consumerSaw, want)
	}
}

func TestSimDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	sim := NewSim()
	cond := sim.NewCond()
	sim.Run("root", func(p Proc) {
		cond.Lock()
		cond.Wait(p) // nobody will ever broadcast
		cond.Unlock()
	})
}

func TestQueueFIFOAndClose(t *testing.T) {
	sim := NewSim()
	q := NewQueue[int](sim, 0)
	var got []int
	sim.Run("root", func(p Proc) {
		p.Go("producer", func(p Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(time.Millisecond)
				q.Put(p, i)
			}
			q.Close()
		})
		p.Go("consumer", func(p Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
	})
	if len(got) != 10 {
		t.Fatalf("got %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestQueueCapacityBlocksProducer(t *testing.T) {
	sim := NewSim()
	q := NewQueue[int](sim, 2)
	var lastPut time.Time
	sim.Run("root", func(p Proc) {
		p.Go("producer", func(p Proc) {
			for i := 0; i < 3; i++ {
				q.Put(p, i)
			}
			lastPut = p.Now()
		})
		p.Go("consumer", func(p Proc) {
			p.Sleep(5 * time.Second)
			q.Get(p)
		})
	})
	// The third Put must block until the consumer frees a slot at t=5s.
	if want := Epoch.Add(5 * time.Second); !lastPut.Equal(want) {
		t.Fatalf("third Put completed at %v, want %v", lastPut, want)
	}
}

func TestQueueTryGet(t *testing.T) {
	sim := NewSim()
	q := NewQueue[string](sim, 0)
	var empty, found bool
	var v string
	sim.Run("root", func(p Proc) {
		_, ok := q.TryGet()
		empty = !ok
		q.Put(p, "x")
		v, found = q.TryGet()
	})
	if !empty {
		t.Fatal("TryGet on empty queue should report !ok")
	}
	if !found || v != "x" {
		t.Fatalf("TryGet = (%q, %v), want (x, true)", v, found)
	}
}

func TestQueueStats(t *testing.T) {
	sim := NewSim()
	q := NewQueue[int](sim, 0)
	sim.Run("root", func(p Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Get(p)
	})
	puts, gets := q.Stats()
	if puts != 2 || gets != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", puts, gets)
	}
}

func TestRealClockRunsAllProcs(t *testing.T) {
	clk := NewReal()
	var n atomic.Int32
	clk.Run("root", func(p Proc) {
		for i := 0; i < 4; i++ {
			p.Go("w", func(p Proc) {
				p.Sleep(time.Millisecond)
				n.Add(1)
			})
		}
	})
	if n.Load() != 4 {
		t.Fatalf("ran %d procs, want 4", n.Load())
	}
}

func TestRealClockNowAdvances(t *testing.T) {
	clk := NewReal()
	var d time.Duration
	clk.Run("root", func(p Proc) {
		start := p.Now()
		p.Sleep(5 * time.Millisecond)
		d = p.Now().Sub(start)
	})
	if d < 4*time.Millisecond {
		t.Fatalf("slept %v, want >= ~5ms", d)
	}
}

func TestRealQueue(t *testing.T) {
	clk := NewReal()
	q := NewQueue[int](clk, 1)
	sum := 0
	clk.Run("root", func(p Proc) {
		p.Go("producer", func(p Proc) {
			for i := 1; i <= 5; i++ {
				q.Put(p, i)
			}
			q.Close()
		})
		p.Go("consumer", func(p Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				sum += v
			}
		})
	})
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func TestSimNestedSpawn(t *testing.T) {
	sim := NewSim()
	depth := 0
	sim.Run("root", func(p Proc) {
		p.Go("child", func(p Proc) {
			depth = 1
			p.Go("grandchild", func(p Proc) {
				p.Sleep(time.Second)
				depth = 2
			})
		})
	})
	if depth != 2 {
		t.Fatalf("depth = %d, want 2 (Run must wait for transitively spawned procs)", depth)
	}
}

func TestSimManyProcsStress(t *testing.T) {
	sim := NewSim()
	q := NewQueue[int](sim, 4)
	total := 0
	sim.Run("root", func(p Proc) {
		for w := 0; w < 8; w++ {
			p.Go("producer", func(p Proc) {
				for i := 0; i < 50; i++ {
					p.Sleep(time.Duration(i%7) * time.Millisecond)
					q.Put(p, 1)
				}
			})
		}
		p.Go("consumer", func(p Proc) {
			for i := 0; i < 400; i++ {
				v, _ := q.Get(p)
				total += v
			}
		})
	})
	if total != 400 {
		t.Fatalf("total = %d, want 400", total)
	}
}

func TestSimStats(t *testing.T) {
	sim := NewSim()
	sim.Run("root", func(p Proc) {
		for i := 0; i < 3; i++ {
			p.Go("w", func(p Proc) {
				p.Sleep(time.Millisecond)
				p.Sleep(time.Millisecond)
			})
		}
	})
	st := sim.Stats()
	if st.Procs != 4 {
		t.Fatalf("Procs = %d, want 4 (root + 3 workers)", st.Procs)
	}
	if st.Switches < 7 {
		t.Fatalf("Switches = %d, want at least one per proc run segment", st.Switches)
	}
	// Both sleep deadlines are shared across workers: 2 distinct advances.
	if st.Advances != 2 {
		t.Fatalf("Advances = %d, want 2", st.Advances)
	}
}
