package pipeline

import (
	"testing"
	"testing/quick"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
)

// TestPropertyEpochInvariants: for any (n, batch, workers, prefetch,
// shuffle) the epoch delivers every index exactly once, batches arrive in ID
// order, sizes are correct, and timestamps are coherent.
func TestPropertyEpochInvariants(t *testing.T) {
	if err := quick.Check(func(nRaw, bRaw, wRaw, pfRaw uint8, shuffle bool, seed int64) bool {
		n := int(nRaw%80) + 1
		batch := int(bRaw%12) + 1
		workers := int(wRaw%5) + 1
		prefetch := int(pfRaw%3) + 1

		sim := clock.NewSim()
		ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
		c := NewCompose(
			&Loader{IO: data.DefaultIO()},
			&RandomResizedCrop{Size: 64},
			&ToTensor{},
		)
		dl := NewDataLoader(sim, NewImageFolder(ds, c), Config{
			BatchSize: batch, NumWorkers: workers, PrefetchFactor: prefetch,
			Shuffle: shuffle, Seed: seed, PinMemory: true,
			Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
		})
		var batches []*Batch
		sim.Run("main", func(p clock.Proc) {
			it := dl.Start(p)
			for {
				b, ok := it.Next(p)
				if !ok {
					break
				}
				batches = append(batches, b)
			}
		})

		wantBatches := (n + batch - 1) / batch
		if len(batches) != wantBatches {
			return false
		}
		seen := map[int]bool{}
		var prevConsumeID = -1
		for _, b := range batches {
			if b.ID != prevConsumeID+1 {
				return false
			}
			prevConsumeID = b.ID
			if b.WorkerID < 0 || b.WorkerID >= workers {
				return false
			}
			if b.PreprocessedAt.Before(clock.Epoch) {
				return false
			}
			for _, idx := range b.Indices {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIterableEpochInvariants mirrors the map-style property for the
// stream loader.
func TestPropertyIterableEpochInvariants(t *testing.T) {
	if err := quick.Check(func(nRaw, bRaw, wRaw uint8, seed int64) bool {
		n := int(nRaw%60) + 1
		batch := int(bRaw%8) + 1
		workers := int(wRaw%5) + 1

		sim := clock.NewSim()
		ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
		c := NewCompose(&Loader{IO: data.DefaultIO()}, &ToTensor{})
		il := NewIterableLoader(sim, &ImageStream{Folder: NewImageFolder(ds, c)}, Config{
			BatchSize: batch, NumWorkers: workers, Seed: seed,
			Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
		})
		seen := map[int]bool{}
		prev := -1
		okRun := true
		sim.Run("main", func(p clock.Proc) {
			it := il.Start(p)
			for {
				b, ok := it.Next(p)
				if !ok {
					return
				}
				if b.ID <= prev {
					okRun = false
				}
				prev = b.ID
				for _, idx := range b.Indices {
					if seen[idx] {
						okRun = false
					}
					seen[idx] = true
				}
			}
		})
		return okRun && len(seen) == n
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTransformGeometry: any image transform chain leaves the
// sample's logical geometry consistent with the declared output (224x224
// float32 after the IC chain), for arbitrary input sizes.
func TestPropertyTransformGeometry(t *testing.T) {
	engine := native.NewEngine(native.Intel, native.DefaultCPU())
	if err := quick.Check(func(wRaw, hRaw uint16, seed int64) bool {
		w := int(wRaw%1500) + 64
		h := int(hRaw%1500) + 64
		sim := clock.NewSim()
		out := Sample{}
		sim.Run("root", func(p clock.Proc) {
			ctx := &Ctx{Proc: p, Engine: engine, Thread: &native.Thread{ID: 1}, Mode: Simulated, Seed: seed}
			s := Sample{Index: 0, FileBytes: w * h / 4, Seed: seed, Width: w, Height: h, Channels: 3}
			c := NewCompose(
				&Loader{IO: data.IOModel{}},
				&RandomResizedCrop{Size: 224},
				&RandomHorizontalFlip{},
				&ToTensor{},
				&Normalize{Mean: []float32{0, 0, 0}, Std: []float32{1, 1, 1}},
			)
			out = c.Apply(ctx, 1, 0, s)
		})
		return out.Width == 224 && out.Height == 224 && out.Channels == 3 &&
			out.RawBytes() == 224*224*3*4
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
