package pipeline

import (
	"encoding/binary"
	"fmt"
	"math"

	"lotus/internal/imaging"
	"lotus/internal/tensor"
)

// Snapshot codec: the byte form of a cachedSample for the persistent disk
// tier. A snapshot is self-contained — sample metadata plus at most one
// payload — so a process that never ran the prefix can restore the exact
// post-prefix sample from disk. Integrity is the store's job (per-record
// checksums); the decoder only validates structure, and any error makes the
// caller drop the record and recompute.
//
// Layout (big-endian):
//
//	u8  version (1)
//	i64 Index | i64 Label | i64 FileBytes | i64 Seed
//	i64 Width | i64 Height | i64 Depth | i64 Channels | u8 Dtype
//	u8  payload tag: 0 none | 1 image | 2 volume | 3 tensor
//	  image:  u32 W | u32 H | W*H*3 pix bytes
//	  volume: u32 D | u32 H | u32 W | D*H*W f32 bits
//	  tensor: u8 dtype | u32 ndim | ndim x u32 | elems (u8 bytes or f32 bits)
const snapshotVersion = 1

const (
	snapNone   = 0
	snapImage  = 1
	snapVolume = 2
	snapTensor = 3
)

// encodeSnapshot serializes a cached sample. The snapshot borrows nothing:
// the returned slice is freshly allocated and safe to hand to the store.
func encodeSnapshot(cs *cachedSample) []byte {
	m := cs.meta
	buf := make([]byte, 0, 75+int(cs.size))
	buf = append(buf, snapshotVersion)
	for _, v := range []int64{int64(m.Index), int64(m.Label), int64(m.FileBytes), m.Seed,
		int64(m.Width), int64(m.Height), int64(m.Depth), int64(m.Channels)} {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	buf = append(buf, byte(m.Dtype))
	switch {
	case cs.img != nil:
		buf = append(buf, snapImage)
		buf = binary.BigEndian.AppendUint32(buf, uint32(cs.img.W))
		buf = binary.BigEndian.AppendUint32(buf, uint32(cs.img.H))
		buf = append(buf, cs.img.Pix...)
	case cs.vol != nil:
		buf = append(buf, snapVolume)
		buf = binary.BigEndian.AppendUint32(buf, uint32(cs.vol.D))
		buf = binary.BigEndian.AppendUint32(buf, uint32(cs.vol.H))
		buf = binary.BigEndian.AppendUint32(buf, uint32(cs.vol.W))
		for _, f := range cs.vol.Vox {
			buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(f))
		}
	case cs.ten != nil:
		buf = append(buf, snapTensor)
		buf = append(buf, byte(cs.ten.Dtype))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(cs.ten.Shape)))
		for _, d := range cs.ten.Shape {
			buf = binary.BigEndian.AppendUint32(buf, uint32(d))
		}
		if cs.ten.Dtype == tensor.Uint8 {
			buf = append(buf, cs.ten.U8...)
		} else {
			for _, f := range cs.ten.F32 {
				buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(f))
			}
		}
	default:
		buf = append(buf, snapNone)
	}
	return buf
}

// snapDecoder is a bounds-checked cursor; any overrun flags err instead of
// panicking, since the input crossed a disk.
type snapDecoder struct {
	b   []byte
	p   int
	err error
}

func (d *snapDecoder) u8() byte {
	if d.err != nil || d.p+1 > len(d.b) {
		d.err = fmt.Errorf("pipeline: snapshot truncated at %d", d.p)
		return 0
	}
	v := d.b[d.p]
	d.p++
	return v
}

func (d *snapDecoder) u32() uint32 {
	if d.err != nil || d.p+4 > len(d.b) {
		d.err = fmt.Errorf("pipeline: snapshot truncated at %d", d.p)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.p:])
	d.p += 4
	return v
}

func (d *snapDecoder) i64() int64 {
	if d.err != nil || d.p+8 > len(d.b) {
		d.err = fmt.Errorf("pipeline: snapshot truncated at %d", d.p)
		return 0
	}
	v := int64(binary.BigEndian.Uint64(d.b[d.p:]))
	d.p += 8
	return v
}

func (d *snapDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.p+n > len(d.b) {
		d.err = fmt.Errorf("pipeline: snapshot truncated at %d", d.p)
		return nil
	}
	v := d.b[d.p : d.p+n]
	d.p += n
	return v
}

// maxSnapshotDim bounds decoded geometry so a corrupt record cannot demand
// a giant allocation before its content is even looked at.
const maxSnapshotDim = 1 << 16

func snapDim(d *snapDecoder) int {
	v := d.u32()
	if d.err == nil && (v == 0 || v > maxSnapshotDim) {
		d.err = fmt.Errorf("pipeline: snapshot dimension %d out of range", v)
	}
	return int(v)
}

// decodeSnapshot reconstructs a cached sample from its byte form. Payloads
// land in pooled buffers, exactly as snapshotSample would have produced
// them; the returned snapshot holds one reference (the cache's own).
func decodeSnapshot(b []byte) (*cachedSample, error) {
	d := &snapDecoder{b: b}
	if v := d.u8(); d.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("pipeline: snapshot version %d unsupported", v)
	}
	var m Sample
	m.Index = int(d.i64())
	m.Label = int(d.i64())
	m.FileBytes = int(d.i64())
	m.Seed = d.i64()
	m.Width = int(d.i64())
	m.Height = int(d.i64())
	m.Depth = int(d.i64())
	m.Channels = int(d.i64())
	m.Dtype = tensor.DType(d.u8())
	tag := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	cs := &cachedSample{meta: m}
	fail := func(err error) (*cachedSample, error) {
		cs.img.Release()
		cs.vol.Release()
		return nil, err
	}
	switch tag {
	case snapNone:
		cs.size = int64(m.RawBytes())
	case snapImage:
		w, h := snapDim(d), snapDim(d)
		if d.err != nil {
			return nil, d.err
		}
		pix := d.bytes(w * h * 3)
		if d.err != nil {
			return nil, d.err
		}
		cs.img = imaging.GetImage(w, h)
		copy(cs.img.Pix, pix)
		cs.size = int64(len(cs.img.Pix))
	case snapVolume:
		dd, h, w := snapDim(d), snapDim(d), snapDim(d)
		if d.err != nil {
			return nil, d.err
		}
		raw := d.bytes(dd * h * w * 4)
		if d.err != nil {
			return nil, d.err
		}
		cs.vol = imaging.GetVolume(dd, h, w)
		for i := range cs.vol.Vox {
			cs.vol.Vox[i] = math.Float32frombits(binary.BigEndian.Uint32(raw[i*4:]))
		}
		cs.size = int64(len(cs.vol.Vox)) * 4
	case snapTensor:
		dt := tensor.DType(d.u8())
		ndim := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if ndim > 8 {
			return nil, fmt.Errorf("pipeline: snapshot tensor rank %d out of range", ndim)
		}
		shape := make([]int, ndim)
		for i := range shape {
			shape[i] = snapDim(d)
		}
		if d.err != nil {
			return nil, d.err
		}
		n := tensor.NumElems(shape)
		t := tensor.Meta(dt, shape...)
		switch dt {
		case tensor.Uint8:
			raw := d.bytes(n)
			if d.err != nil {
				return fail(d.err)
			}
			t.U8 = append([]uint8(nil), raw...)
		case tensor.Float32:
			raw := d.bytes(n * 4)
			if d.err != nil {
				return fail(d.err)
			}
			t.F32 = make([]float32, n)
			for i := range t.F32 {
				t.F32[i] = math.Float32frombits(binary.BigEndian.Uint32(raw[i*4:]))
			}
		default:
			return fail(fmt.Errorf("pipeline: snapshot tensor dtype %d unsupported", dt))
		}
		cs.ten = t
		cs.size = int64(t.Bytes())
	default:
		return nil, fmt.Errorf("pipeline: snapshot payload tag %d unsupported", tag)
	}
	if d.p != len(b) {
		return fail(fmt.Errorf("pipeline: snapshot has %d trailing bytes", len(b)-d.p))
	}
	cs.refs.Store(1)
	return cs, nil
}
