package pipeline

import (
	"lotus/internal/data"
	"lotus/internal/imaging"
	"lotus/internal/native"
	"lotus/internal/tensor"
)

// VolumeLoader loads a kits19-like .npy volume from storage — the IS
// pipeline's "Load" step.
type VolumeLoader struct {
	IO    data.IOModel
	Cache *data.PageCache
}

func (l *VolumeLoader) Name() string { return "Loader" }

func (l *VolumeLoader) Deterministic() bool { return true }

func (l *VolumeLoader) Kernels() []string {
	return []string{"npy_parse", "memcpy", "memset"}
}

func (l *VolumeLoader) Apply(ctx *Ctx, s Sample) Sample {
	r := ctx.OpRNG(s.Index, "vload")
	ctx.ReadBlob(s.Index, l.Cache.Delay(s.Index, s.FileBytes, l.IO, r))
	raw := s.Depth * s.Height * s.Width * 4
	if ctx.Real() {
		cap := ctx.MaterializeDim
		if cap <= 0 {
			cap = 48
		}
		d, h, w := s.Depth, s.Height, s.Width
		for (d > cap || h > cap || w > cap) && d > 8 && h > 8 && w > 8 {
			d, h, w = d/2, h/2, w/2
		}
		s.Volume = imaging.SynthesizeVolume(d, h, w, s.Seed)
		s.Depth, s.Height, s.Width = d, h, w
	} else {
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "npy_parse", Bytes: raw},
			native.Call{Kernel: "memcpy", Bytes: raw},
			native.Call{Kernel: "memset", Bytes: raw},
		))
	}
	s.Channels, s.Dtype = 1, tensor.Float32
	return s
}

// RandBalancedCrop implements the IS pipeline's foreground-aware crop: with
// probability OversampleP it searches for a patch containing foreground
// (scanning the volume and retrying up to MaxAttempts), otherwise it crops a
// uniformly random patch. The scan-and-retry loop is what gives the op its
// heavy-tailed latency in Table II (avg 91 ms, P90 299 ms).
type RandBalancedCrop struct {
	// Patch is the output size [D, H, W].
	Patch [3]int
	// OversampleP is the probability of a foreground-constrained crop.
	OversampleP float64
	// MaxAttempts bounds the rejection-sampling loop.
	MaxAttempts int
}

func (t *RandBalancedCrop) Name() string { return "RandBalancedCrop" }

func (t *RandBalancedCrop) Deterministic() bool { return false }

func (t *RandBalancedCrop) Kernels() []string {
	return []string{"argwhere_f32", "crop_copy_3d", "memcpy"}
}

func (t *RandBalancedCrop) Apply(ctx *Ctx, s Sample) Sample {
	r := ctx.OpRNG(s.Index, "rbc")
	attempts := t.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	raw := s.Depth * s.Height * s.Width * 4
	outBytes := t.Patch[0] * t.Patch[1] * t.Patch[2] * 4

	foreground := r.Bool(t.OversampleP)
	tries := 1
	if foreground {
		// Each failed attempt rescans the volume; the number of attempts is
		// geometric-ish in how hidden the foreground is. This retry loop is
		// the source of RandBalancedCrop's heavy tail (Table II: P90 ~3.3x
		// the mean).
		for tries < attempts && r.Bool(0.6) {
			tries++
		}
	}

	if ctx.Real() {
		d, h, w := minI(t.Patch[0], s.Depth), minI(t.Patch[1], s.Height), minI(t.Patch[2], s.Width)
		z0, y0, x0 := 0, 0, 0
		if foreground {
			if cz, cy, cx, ok := s.Volume.ForegroundCenter(100); ok {
				z0 = clampI(cz-d/2, 0, s.Depth-d)
				y0 = clampI(cy-h/2, 0, s.Height-h)
				x0 = clampI(cx-w/2, 0, s.Width-w)
			}
		} else {
			z0 = r.Intn(s.Depth - d + 1)
			y0 = r.Intn(s.Height - h + 1)
			x0 = r.Intn(s.Width - w + 1)
		}
		old := s.Volume
		s.Volume = imaging.CropVolume(old, z0, y0, x0, d, h, w)
		old.Release()
		s.Depth, s.Height, s.Width = d, h, w
	} else {
		calls := ctx.Calls()
		if foreground {
			for i := 0; i < tries; i++ {
				calls = append(calls, native.Call{Kernel: "argwhere_f32", Bytes: raw})
			}
		}
		calls = append(calls,
			native.Call{Kernel: "crop_copy_3d", Bytes: outBytes},
			native.Call{Kernel: "memcpy", Bytes: outBytes},
		)
		ctx.WorkCalls(calls)
		s.Depth, s.Height, s.Width = t.Patch[0], t.Patch[1], t.Patch[2]
	}
	return s
}

// RandomFlip reverses the volume along a random axis with probability P per
// axis (the IS pipeline's RandomFlip).
type RandomFlip struct {
	P float64
}

func (t *RandomFlip) Name() string { return "RandomFlip" }

func (t *RandomFlip) Deterministic() bool { return false }

func (t *RandomFlip) Kernels() []string { return []string{"flip_3d"} }

func (t *RandomFlip) Apply(ctx *Ctx, s Sample) Sample {
	p := t.P
	if p == 0 {
		p = 1.0 / 3
	}
	r := ctx.OpRNG(s.Index, "rf")
	raw := s.Depth * s.Height * s.Width * 4
	for axis := 0; axis < 3; axis++ {
		if !r.Bool(p) {
			continue
		}
		if ctx.Real() {
			imaging.FlipVolumeAxis(s.Volume, axis)
		} else {
			ctx.WorkCalls(append(ctx.Calls(), native.Call{Kernel: "flip_3d", Bytes: raw}))
		}
	}
	return s
}

// Cast converts the volume from float32 to uint8 (the IS pipeline's Cast).
type Cast struct{}

func (t *Cast) Name() string { return "Cast" }

func (t *Cast) Deterministic() bool { return true }

func (t *Cast) Kernels() []string { return []string{"cast_f32_u8"} }

func (t *Cast) Apply(ctx *Ctx, s Sample) Sample {
	if ctx.Real() {
		vol := s.Volume
		// ToUint8 copies into a fresh tensor, so the pooled voxel buffer can
		// be retired immediately.
		s.Tensor = tensor.FromF32(vol.Vox, vol.D, vol.H, vol.W).ToUint8()
		vol.Release()
		s.Volume = nil
	} else {
		ctx.WorkCalls(append(ctx.Calls(), native.Call{Kernel: "cast_f32_u8", Bytes: s.RawBytes()}))
	}
	s.Dtype = tensor.Uint8
	return s
}

// RandomBrightnessAugmentation scales intensity with probability P — another
// branchy op whose kernels only sometimes run (§ IV-B's inconsistency case).
type RandomBrightnessAugmentation struct {
	P     float64
	Range [2]float64
}

func (t *RandomBrightnessAugmentation) Name() string { return "RandomBrightnessAugmentation" }

func (t *RandomBrightnessAugmentation) Deterministic() bool { return false }

func (t *RandomBrightnessAugmentation) Kernels() []string { return []string{"scale_f32"} }

func (t *RandomBrightnessAugmentation) Apply(ctx *Ctx, s Sample) Sample {
	p := t.P
	if p == 0 {
		p = 0.1
	}
	r := ctx.OpRNG(s.Index, "rba")
	if !r.Bool(p) {
		return s
	}
	lo, hi := t.Range[0], t.Range[1]
	if lo == 0 && hi == 0 {
		lo, hi = 0.7, 1.3
	}
	factor := r.Uniform(lo, hi)
	if ctx.Real() {
		if s.Volume != nil {
			imaging.ScaleVolume(s.Volume, float32(factor))
		}
	} else {
		// Scaling runs in float regardless of the stored dtype (numpy
		// upcasts), so cost follows element count at 4 bytes each.
		ctx.WorkCalls(append(ctx.Calls(), native.Call{Kernel: "scale_f32", Bytes: s.elems() * 4}))
	}
	return s
}

// GaussianNoise adds zero-mean noise with probability P.
type GaussianNoise struct {
	P      float64
	StdDev float64
}

func (t *GaussianNoise) Name() string { return "GaussianNoise" }

func (t *GaussianNoise) Deterministic() bool { return false }

func (t *GaussianNoise) Kernels() []string { return []string{"gaussian_noise_f32", "box_muller"} }

func (t *GaussianNoise) Apply(ctx *Ctx, s Sample) Sample {
	p := t.P
	if p == 0 {
		p = 0.1
	}
	r := ctx.OpRNG(s.Index, "gn")
	if !r.Bool(p) {
		return s
	}
	sd := t.StdDev
	if sd == 0 {
		sd = 2
	}
	if ctx.Real() {
		if s.Volume != nil {
			imaging.AddGaussianNoise(s.Volume, sd, r)
		}
	} else {
		// One normal draw per element, independent of the stored dtype.
		f32 := s.elems() * 4
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "gaussian_noise_f32", Bytes: f32},
			native.Call{Kernel: "box_muller", Bytes: f32 / 2},
		))
	}
	return s
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
