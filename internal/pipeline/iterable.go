package pipeline

import (
	"fmt"
	"time"

	"lotus/internal/clock"
	"lotus/internal/native"
)

// IterableDataset is the stream-style dataset contract
// (torch.utils.data.IterableDataset): instead of random access by index,
// each worker walks its own shard of an unbounded-length stream. The paper's
// instrumentation point is the same — the common fetch method — which is why
// LotusTrace needs no fetcher-specific changes (§ III-B1); this loader
// demonstrates that by reusing the identical hooks.
type IterableDataset interface {
	// Iter returns worker workerID's shard iterator for one epoch.
	Iter(workerID, numWorkers int) SampleIter
}

// SampleIter produces preprocessed samples until the shard is exhausted.
type SampleIter interface {
	Next(ctx *Ctx, pid, batchID int) (Sample, bool)
}

// iterResult extends workerResult with the stop sentinel iterable workers
// send when their shard ends mid-epoch (PyTorch's
// _IterableDatasetStopIteration).
type iterResult struct {
	batchID int
	batch   *Batch // nil for a stop sentinel
	worker  int
}

// IterableLoader is the DataLoader over stream datasets. The main process
// dispatches batch tokens instead of index lists; a worker that exhausts its
// shard aborts its outstanding tokens via a stop sentinel, and consumption
// skips aborted batch IDs while preserving in-order delivery of the rest.
type IterableLoader struct {
	cfg     Config
	dataset IterableDataset
	clk     clock.Clock

	tokenQs []*clock.Queue[int]
	dataQ   *clock.Queue[iterResult]
	started bool
	sendIdx int
	// pending tracks each worker's outstanding token batch IDs.
	pending [][]int
	alive   []bool
}

// NewIterableLoader constructs the stream loader.
func NewIterableLoader(clk clock.Clock, ds IterableDataset, cfg Config) *IterableLoader {
	cfg = cfg.validate()
	return &IterableLoader{cfg: cfg, dataset: ds, clk: clk}
}

// Start forks workers and prefetches tokens; it must run on the main proc.
func (il *IterableLoader) Start(p clock.Proc) *IterableIterator {
	if il.started {
		panic("pipeline: IterableLoader.Start called twice")
	}
	il.started = true
	il.tokenQs = make([]*clock.Queue[int], il.cfg.NumWorkers)
	il.pending = make([][]int, il.cfg.NumWorkers)
	il.alive = make([]bool, il.cfg.NumWorkers)
	for w := range il.tokenQs {
		il.tokenQs[w] = clock.NewQueue[int](il.clk, 0)
		il.alive[w] = true
	}
	il.dataQ = clock.NewQueue[iterResult](il.clk, 0)

	for w := 0; w < il.cfg.NumWorkers; w++ {
		w := w
		p.Go(fmt.Sprintf("iterable-worker-%d", w), func(wp clock.Proc) {
			il.workerLoop(wp, w)
		})
	}
	for i := 0; i < il.cfg.PrefetchFactor*il.cfg.NumWorkers; i++ {
		il.dispatch(p, i%il.cfg.NumWorkers)
	}
	return &IterableIterator{il: il, cached: make(map[int]*Batch), aborted: make(map[int]bool)}
}

// dispatch hands the next token to worker w if it is still alive; otherwise
// to the next alive worker.
func (il *IterableLoader) dispatch(p clock.Proc, w int) {
	target := -1
	for i := 0; i < il.cfg.NumWorkers; i++ {
		cand := (w + i) % il.cfg.NumWorkers
		if il.alive[cand] {
			target = cand
			break
		}
	}
	if target < 0 {
		return // every shard exhausted
	}
	id := il.sendIdx
	il.sendIdx++
	il.pending[target] = append(il.pending[target], id)
	il.tokenQs[target].Put(p, id)
}

// workerLoop fetches batches from the worker's shard iterator.
func (il *IterableLoader) workerLoop(p clock.Proc, workerID int) {
	pid := WorkerPID(workerID)
	ctx := &Ctx{
		Proc:           p,
		Engine:         il.cfg.Engine,
		Thread:         &native.Thread{ID: pid},
		Mode:           il.cfg.Mode,
		Seed:           il.cfg.Seed,
		WorkScale:      il.cfg.WorkScale,
		MaterializeDim: il.cfg.MaterializeDim,
	}
	iter := il.dataset.Iter(workerID, il.cfg.NumWorkers)
	collate := &Collate{}
	for {
		batchID, ok := il.tokenQs[workerID].Get(p)
		if !ok {
			return
		}
		start := p.Now()
		if il.cfg.Engine != nil {
			il.cfg.Engine.BeginWork()
		}
		var samples []Sample
		exhausted := false
		for len(samples) < il.cfg.BatchSize {
			s, ok := iter.Next(ctx, pid, batchID)
			if !ok {
				exhausted = true
				break
			}
			samples = append(samples, s)
		}
		if len(samples) == 0 || (exhausted && il.cfg.DropLast) {
			if il.cfg.Engine != nil {
				il.cfg.Engine.EndWork()
			}
			// Stop sentinel: this token (and this worker) yields nothing
			// more; the main process aborts the worker's remaining tokens.
			il.dataQ.Put(p, iterResult{batchID: batchID, worker: workerID})
			return
		}
		collated := collate.Run(ctx, samples)
		if il.cfg.Hooks != nil && il.cfg.Hooks.OnOp != nil {
			il.cfg.Hooks.OnOp(pid, batchID, -1, "Collate", p.Now(), 0)
		}
		if il.cfg.Engine != nil {
			il.cfg.Engine.EndWork()
		}
		end := p.Now()
		labels := make([]int, len(samples))
		indices := make([]int, len(samples))
		for i, s := range samples {
			labels[i] = s.Label
			indices[i] = s.Index
		}
		batch := &Batch{
			ID: batchID, WorkerID: workerID, Indices: indices, Labels: labels,
			Data: collated, PreprocessedAt: end,
		}
		if il.cfg.Hooks != nil && il.cfg.Hooks.OnBatchPreprocessed != nil {
			il.cfg.Hooks.OnBatchPreprocessed(pid, batchID, start, end.Sub(start))
		}
		il.dataQ.Put(p, iterResult{batchID: batchID, batch: batch, worker: workerID})
		if exhausted {
			// The final (partial) batch is emitted; a sentinel tells the
			// main process the shard is done so it aborts any remaining
			// tokens queued for this worker.
			il.dataQ.Put(p, iterResult{batchID: batchID + 1, worker: workerID})
			return
		}
	}
}

// IterableIterator consumes stream batches in token order, skipping tokens
// aborted by exhausted shards.
type IterableIterator struct {
	il       *IterableLoader
	rcvdIdx  int
	cached   map[int]*Batch
	aborted  map[int]bool
	deadLeft int
}

// Next returns the next batch. ok is false once every shard is exhausted and
// every live batch consumed.
func (it *IterableIterator) Next(p clock.Proc) (*Batch, bool) {
	il := it.il
	for {
		want := it.rcvdIdx
		if it.aborted[want] {
			delete(it.aborted, want)
			it.rcvdIdx++
			continue
		}
		if b, ok := it.cached[want]; ok {
			delete(it.cached, want)
			it.rcvdIdx++
			il.dispatch(p, b.WorkerID)
			if il.cfg.Hooks != nil && il.cfg.Hooks.OnBatchWait != nil {
				il.cfg.Hooks.OnBatchWait(MainPID, b.ID, p.Now(), time.Microsecond)
			}
			if il.cfg.Hooks != nil && il.cfg.Hooks.OnBatchConsumed != nil {
				il.cfg.Hooks.OnBatchConsumed(MainPID, b.ID, p.Now(), 0)
			}
			return b, true
		}
		if it.allDone() {
			return nil, false
		}
		startWait := p.Now()
		res, ok := il.dataQ.Get(p)
		if !ok {
			return nil, false
		}
		if res.batch == nil {
			// Stop sentinel: worker res.worker is done. Abort every token
			// still pending on it — none of them will ever be produced —
			// and close its queue.
			il.alive[res.worker] = false
			for _, id := range il.pending[res.worker] {
				it.aborted[id] = true
			}
			il.pending[res.worker] = nil
			il.tokenQs[res.worker].Close()
			continue
		}
		il.pruneePending(res.worker, res.batchID)
		if il.cfg.Hooks != nil && il.cfg.Hooks.OnBatchWait != nil {
			dur := p.Now().Sub(startWait)
			if res.batchID != want {
				dur = time.Microsecond
			}
			il.cfg.Hooks.OnBatchWait(MainPID, res.batchID, startWait, dur)
		}
		if res.batchID == want {
			it.rcvdIdx++
			il.dispatch(p, res.worker)
			if il.cfg.Hooks != nil && il.cfg.Hooks.OnBatchConsumed != nil {
				il.cfg.Hooks.OnBatchConsumed(MainPID, res.batchID, p.Now(), 0)
			}
			return res.batch, true
		}
		it.cached[res.batchID] = res.batch
	}
}

// pruneePending removes a produced token from the worker's pending list.
func (il *IterableLoader) pruneePending(worker, batchID int) {
	pend := il.pending[worker]
	for i, id := range pend {
		if id == batchID {
			il.pending[worker] = append(pend[:i], pend[i+1:]...)
			return
		}
	}
}

// allDone reports whether no further batch can arrive: every shard is
// exhausted, nothing is queued, and nothing is cached.
func (it *IterableIterator) allDone() bool {
	il := it.il
	for _, alive := range il.alive {
		if alive {
			return false
		}
	}
	return il.dataQ.Len() == 0 && len(it.cached) == 0
}

// ---------------------------------------------------------------------------
// Stream adapter over an image dataset (stride sharding), for tests and
// examples.
// ---------------------------------------------------------------------------

// ImageStream adapts an ImageFolder into an IterableDataset: worker w of n
// yields records w, w+n, w+2n, ... (the sharding PyTorch documentation
// recommends for iterable datasets).
type ImageStream struct {
	Folder *ImageFolder
}

// Iter implements IterableDataset.
func (s *ImageStream) Iter(workerID, numWorkers int) SampleIter {
	return &imageStreamIter{folder: s.Folder, next: workerID, stride: numWorkers}
}

type imageStreamIter struct {
	folder *ImageFolder
	next   int
	stride int
}

func (it *imageStreamIter) Next(ctx *Ctx, pid, batchID int) (Sample, bool) {
	if it.next >= it.folder.Len() {
		return Sample{}, false
	}
	s := it.folder.GetItem(ctx, pid, batchID, it.next)
	it.next += it.stride
	return s, true
}
