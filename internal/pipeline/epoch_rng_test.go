package pipeline

import (
	"bytes"
	"testing"

	"lotus/internal/clock"
	"lotus/internal/data"
)

// fastRealDataset returns a small dataset with zero modeled I/O latency so
// real-clock real-mode tests finish quickly.
func fastRealDataset(n int, seed int64) *data.ImageDataset {
	return data.NewImageDataset(data.ImageConfig{
		Name: "epochtest", N: n, MeanFileKB: 20, StdFileKB: 5, MinFileKB: 10, MaxFileKB: 40,
		CompressionRatio: 10, Classes: 4, Seed: seed,
		IO: data.IOModel{BaseLatency: 0, BandwidthMBps: 0},
	})
}

// augmentedTestCompose is the ICA shape at test scale: a two-op deterministic
// prefix (decode + resize) and a fully random suffix.
func augmentedTestCompose(io data.IOModel) *Compose {
	return NewCompose(
		&Loader{IO: io},
		&Resize{W: 64, H: 64},
		&RandomCrop{Size: 48},
		&RandomHorizontalFlip{},
		&RandomPixelNoise{},
		&ToTensor{},
		&Normalize{Mean: []float32{0.5, 0.5, 0.5}, Std: []float32{0.25, 0.25, 0.25}},
	)
}

// runRealEpoch runs one real-mode epoch on the wall clock and returns each
// batch's collated float32 payload keyed by batch ID.
func runRealEpoch(t *testing.T, ds *data.ImageDataset, workers, epoch int, cache *SampleCache, fp uint64) map[int][]float32 {
	t.Helper()
	clk := clock.NewReal()
	dl := NewDataLoader(clk, NewImageFolder(ds, augmentedTestCompose(ds.IO)), Config{
		BatchSize: 4, NumWorkers: workers, Shuffle: true, Seed: 5, Epoch: epoch,
		Mode: RealData, MaterializeDim: 64, SampleCache: cache, PrefixFP: fp,
	})
	out := make(map[int][]float32)
	clk.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				if err := it.Err(); err != nil {
					t.Errorf("epoch %d loader: %v", epoch, err)
				}
				return
			}
			out[b.ID] = append([]float32(nil), b.Data.F32...)
		}
	})
	return out
}

// TestEpochZeroSaltIsIdentity pins the epoch seam's backward-compatibility
// contract: epoch 0 salts to zero, so every random stream a pre-epoch Config
// produced is preserved bit for bit, and later epochs genuinely reseed.
func TestEpochZeroSaltIsIdentity(t *testing.T) {
	if got := epochSalt(0); got != 0 {
		t.Fatalf("epochSalt(0) = %d, want 0", got)
	}
	legacy := &Ctx{Seed: 9} // Epoch field never set
	epoch0 := &Ctx{Seed: 9, Epoch: 0}
	epoch1 := &Ctx{Seed: 9, Epoch: 1}
	for idx := 0; idx < 8; idx++ {
		a, b := legacy.SampleRNG(idx), epoch0.SampleRNG(idx)
		c := epoch1.SampleRNG(idx)
		same1, diff := true, false
		for d := 0; d < 16; d++ {
			va, vb, vc := a.Int63(), b.Int63(), c.Int63()
			if va != vb {
				same1 = false
			}
			if va != vc {
				diff = true
			}
		}
		if !same1 {
			t.Fatalf("sample %d: epoch-0 stream diverges from the legacy stream", idx)
		}
		if !diff {
			t.Fatalf("sample %d: epoch-1 stream identical to epoch 0", idx)
		}
	}
}

// TestEpochVariesSuffixNotPrefix drives one sample through the augmented
// pipeline at two epochs: the deterministic prefix must produce byte-identical
// pixels (that is what makes it cacheable across epochs), while the full
// pipeline must produce different bytes (that is what makes it an
// augmentation).
func TestEpochVariesSuffixNotPrefix(t *testing.T) {
	ds := fastRealDataset(4, 3)
	run := func(epoch int, prefixOnly bool) []byte {
		clk := clock.NewReal()
		var out []byte
		clk.Run("main", func(p clock.Proc) {
			ctx := &Ctx{Proc: p, Mode: RealData, Seed: 5, Epoch: epoch, MaterializeDim: 64}
			c := augmentedTestCompose(ds.IO)
			rec := ds.Record(1)
			s := Sample{Index: 1, FileBytes: rec.FileBytes, Seed: rec.Seed,
				Width: rec.Width, Height: rec.Height, Channels: 3}
			if prefixOnly {
				s = c.ApplyPrefix(ctx, 1, 0, s)
				out = append([]byte(nil), s.Image.Pix...)
				s.Image.Release()
				return
			}
			s = c.Apply(ctx, 1, 0, s)
			out = make([]byte, 0, len(s.Tensor.F32)*4)
			for _, f := range s.Tensor.F32 {
				out = append(out, byte(f), byte(int(f*255)))
			}
		})
		return out
	}
	if !bytes.Equal(run(0, true), run(3, true)) {
		t.Fatal("deterministic prefix bytes changed with the epoch")
	}
	if bytes.Equal(run(0, false), run(3, false)) {
		t.Fatal("augmented pipeline produced identical bytes at epochs 0 and 3")
	}
}

// TestEpochBytesScheduleIndependent is the seam's core regression: per-sample
// randomness derives from (seed, epoch, index) only, so the same epoch run
// with 1 worker and with 4 workers must produce byte-identical batches even
// though samples land on different workers in a different order.
func TestEpochBytesScheduleIndependent(t *testing.T) {
	ds := fastRealDataset(24, 3)
	const epoch = 2
	one := runRealEpoch(t, ds, 1, epoch, nil, 0)
	four := runRealEpoch(t, ds, 4, epoch, nil, 0)
	if len(one) != len(four) || len(one) == 0 {
		t.Fatalf("batch counts diverge: %d vs %d", len(one), len(four))
	}
	for id, want := range one {
		got, ok := four[id]
		if !ok {
			t.Fatalf("batch %d missing from the 4-worker run", id)
		}
		if len(got) != len(want) {
			t.Fatalf("batch %d: payload lengths diverge", id)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d diverges at element %d across worker counts", id, i)
			}
		}
	}
}

// TestEpochsProduceDistinctAugmentedBytes: consecutive epochs of the augmented
// pipeline must not repeat their random draws (the bug the epoch salt exists
// to prevent: identical augmentation every epoch).
func TestEpochsProduceDistinctAugmentedBytes(t *testing.T) {
	ds := fastRealDataset(8, 3)
	e0 := runRealEpoch(t, ds, 2, 0, nil, 0)
	e1 := runRealEpoch(t, ds, 2, 1, nil, 0)
	// Shuffle plans differ across epochs, so compare the concatenation of all
	// batches in ID order — if the salt were dead, the same sample set would
	// yield the same multiset of bytes per sample; full-payload equality is a
	// conservative proxy that must not hold.
	flat := func(m map[int][]float32) []float32 {
		var out []float32
		for id := 0; id < len(m); id++ {
			out = append(out, m[id]...)
		}
		return out
	}
	a, b := flat(e0), flat(e1)
	if len(a) != len(b) {
		t.Fatalf("epoch payload sizes diverge: %d vs %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs 0 and 1 produced byte-identical augmented output")
	}
}
