package pipeline

import (
	"fmt"
	"sync"
	"testing"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/imaging"
	"lotus/internal/native"
	"lotus/internal/tensor"
)

// samplesEqual compares two per-batch payload maps element for element.
func samplesEqual(t *testing.T, label string, want, got map[int][]float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: batch counts diverge: %d vs %d", label, len(want), len(got))
	}
	for id, w := range want {
		g := got[id]
		if len(g) != len(w) {
			t.Fatalf("%s: batch %d payload lengths diverge", label, id)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: batch %d diverges at element %d", label, id, i)
			}
		}
	}
}

// TestSampleCacheByteIdentityAcrossEpochs is the end-to-end acceptance test:
// two augmented epochs served through the cache must be byte-identical to the
// same epochs run without it, the first epoch must populate one entry per
// sample, and the second must hit on every one of them.
func TestSampleCacheByteIdentityAcrossEpochs(t *testing.T) {
	const n = 24
	ds := fastRealDataset(n, 3)
	cache := NewSampleCache(64<<20, true)
	const fp = 0x5eedca11
	for _, epoch := range []int{0, 1} {
		want := runRealEpoch(t, ds, 2, epoch, nil, 0)
		got := runRealEpoch(t, ds, 2, epoch, cache, fp)
		samplesEqual(t, fmt.Sprintf("epoch %d", epoch), want, got)
	}
	st := cache.Stats()
	if st.Misses != n {
		t.Fatalf("misses %d, want %d (one prefix materialization per sample)", st.Misses, n)
	}
	// Three cached passes after the first: the uncached comparison runs do not
	// touch the cache, so accesses = 2 epochs x n, of which n missed.
	if st.Hits != n {
		t.Fatalf("hits %d, want %d (every second-epoch access must hit)", st.Hits, n)
	}
	if st.Evicted != 0 || st.Entries != n {
		t.Fatalf("unexpected eviction under an ample budget: %+v", st)
	}
	if st.BytesUsed <= 0 || st.BytesUsed > st.BytesBudget {
		t.Fatalf("bytes accounting out of range: %+v", st)
	}
}

// TestSampleCacheSingleFlight hammers one key from concurrent wall-clock
// procs: exactly one requester may compute the prefix; everyone else must
// resolve via the ready entry (hit or single-flight wait), and every result
// must carry identical bytes.
func TestSampleCacheSingleFlight(t *testing.T) {
	const procs = 8
	ds := fastRealDataset(2, 3)
	cache := NewSampleCache(64<<20, true)
	results := make([][]float32, procs)
	clk := clock.NewReal()
	clk.Run("main", func(p clock.Proc) {
		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			g := g
			wg.Add(1)
			p.Go(fmt.Sprintf("worker-%d", g), func(wp clock.Proc) {
				defer wg.Done()
				ctx := &Ctx{Proc: wp, Mode: RealData, Seed: 5, Epoch: 1,
					MaterializeDim: 64, SampleCache: cache, PrefixFP: 0x1}
				c := augmentedTestCompose(ds.IO)
				rec := ds.Record(0)
				s := Sample{Index: 0, FileBytes: rec.FileBytes, Seed: rec.Seed,
					Width: rec.Width, Height: rec.Height, Channels: 3}
				s = c.Apply(ctx, WorkerPID(g), 0, s)
				results[g] = append([]float32(nil), s.Tensor.F32...)
			})
		}
		wg.Wait()
	})
	st := cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses %d, want 1: single-flight must compute the prefix once", st.Misses)
	}
	if st.Hits+st.SingleflightWait != procs-1 {
		t.Fatalf("hits %d + waits %d, want %d resolved without recompute",
			st.Hits, st.SingleflightWait, procs-1)
	}
	if st.Bypassed != 0 || st.Abandoned != 0 {
		t.Fatalf("unexpected bypass/abandon in blocking mode: %+v", st)
	}
	for g := 1; g < procs; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("proc %d payload length diverges", g)
		}
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("proc %d output diverges at %d: cache served non-identical bytes", g, i)
			}
		}
	}
}

// TestSampleCacheEvictionChurn runs the cached pipeline under a 1-byte budget:
// every fulfilled entry is immediately evicted, the second epoch cannot hit,
// and — the property that matters — output bytes stay identical to the
// uncached run throughout the churn.
func TestSampleCacheEvictionChurn(t *testing.T) {
	const n = 12
	ds := fastRealDataset(n, 3)
	cache := NewSampleCache(1, true)
	for _, epoch := range []int{0, 1} {
		want := runRealEpoch(t, ds, 2, epoch, nil, 0)
		got := runRealEpoch(t, ds, 2, epoch, cache, 0x2)
		samplesEqual(t, fmt.Sprintf("churn epoch %d", epoch), want, got)
	}
	st := cache.Stats()
	if st.Misses != 2*n {
		t.Fatalf("misses %d, want %d (no entry survives a 1-byte budget)", st.Misses, 2*n)
	}
	if st.Hits != 0 {
		t.Fatalf("hits %d under a 1-byte budget", st.Hits)
	}
	if st.Evicted != 2*n {
		t.Fatalf("evicted %d, want %d", st.Evicted, 2*n)
	}
	if st.Entries != 0 || st.BytesUsed != 0 {
		t.Fatalf("cache retained state it should have evicted: %+v", st)
	}
}

// flakyDeterministic panics on its first N applications, then succeeds — an
// injected storage fault surfacing inside the cacheable prefix.
type flakyDeterministic struct {
	fails int
}

func (f *flakyDeterministic) Name() string        { return "FlakyDet" }
func (f *flakyDeterministic) Deterministic() bool { return true }
func (f *flakyDeterministic) Kernels() []string   { return nil }
func (f *flakyDeterministic) Apply(ctx *Ctx, s Sample) Sample {
	if f.fails > 0 {
		f.fails--
		panic("flakyDeterministic: injected prefix failure")
	}
	return s
}

// TestSampleCacheAbandonOnPanic: a panic inside a claimed prefix must abandon
// the claim (so waiters retry instead of parking forever) and leave the cache
// able to serve the key once the fault clears.
func TestSampleCacheAbandonOnPanic(t *testing.T) {
	cache := NewSampleCache(1<<20, true)
	engine := native.NewEngine(native.Intel, native.DefaultCPU())
	c := NewCompose(&flakyDeterministic{fails: 1}, &RandomHorizontalFlip{})
	sim := clock.NewSim()
	sim.Run("main", func(p clock.Proc) {
		ctx := &Ctx{Proc: p, Engine: engine, Thread: &native.Thread{ID: 1},
			Mode: Simulated, Seed: 7, SampleCache: cache, PrefixFP: 0x3}
		s := Sample{Index: 4, Width: 32, Height: 32, Channels: 3, Dtype: tensor.Uint8}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("prefix fault did not propagate")
				}
			}()
			c.Apply(ctx, 1, 0, s)
		}()
		if st := cache.Stats(); st.Abandoned != 1 {
			t.Errorf("abandoned %d after prefix panic, want 1", st.Abandoned)
		}
		c.Apply(ctx, 1, 0, s) // fault cleared: re-claim and fulfill
		c.Apply(ctx, 1, 0, s) // now a hit
	})
	st := cache.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("misses %d hits %d, want 2 misses (claim, re-claim) and 1 hit: %+v",
			st.Misses, st.Hits, st)
	}
}

// TestSampleCacheNonBlockingBypass: on a simulated clock a proc that finds a
// key in flight must never park on the owner's channel — it bypasses and
// computes privately, keeping the sim scheduler's no-foreign-blocking
// invariant.
func TestSampleCacheNonBlockingBypass(t *testing.T) {
	cache := NewSampleCache(1<<20, false)
	engine := native.NewEngine(native.Intel, native.DefaultCPU())
	sim := clock.NewSim()
	sim.Run("main", func(p clock.Proc) {
		for i := 0; i < 2; i++ {
			i := i
			p.Go(fmt.Sprintf("w%d", i), func(wp clock.Proc) {
				ctx := &Ctx{Proc: wp, Engine: engine, Thread: &native.Thread{ID: 1 + i},
					Mode: Simulated, Seed: 3, SampleCache: cache, PrefixFP: 0x4}
				// The loader's modeled I/O sleep yields the sim scheduler, so
				// the second proc arrives while the first holds the claim.
				c := NewCompose(&Loader{IO: data.DefaultIO()}, &RandomHorizontalFlip{})
				s := Sample{Index: 0, FileBytes: 50_000, Seed: 3, Width: 64, Height: 64, Channels: 3}
				c.Apply(ctx, WorkerPID(i), 0, s)
			})
		}
	})
	st := cache.Stats()
	if st.Misses != 1 || st.Bypassed != 1 {
		t.Fatalf("misses %d bypassed %d, want 1 and 1 (second proc bypasses the in-flight claim): %+v",
			st.Misses, st.Bypassed, st)
	}
	if st.SingleflightWait != 0 {
		t.Fatalf("a simulated proc registered as a blocking waiter: %+v", st)
	}
}

// TestCachedSampleRefcountSurvivesEviction: an evicted entry's pixels must
// stay valid for a reader that retained it before the eviction, through
// arbitrary pool churn, and return to the pool only on the final release.
func TestCachedSampleRefcountSurvivesEviction(t *testing.T) {
	im := imaging.GetImage(8, 8)
	for i := range im.Pix {
		im.Pix[i] = uint8(i * 7)
	}
	s := Sample{Index: 1, Width: 8, Height: 8, Channels: 3, Dtype: tensor.Uint8, Image: im}
	cs := snapshotSample(s)
	im.Release()

	cs.retain()  // a reader mid-copy
	cs.release() // the cache evicts the entry

	// Churn the pool: if the eviction freed the buffer early, one of these
	// gets handed the reader's pixels.
	for i := 0; i < 50; i++ {
		churn := imaging.GetImage(8, 8)
		for j := range churn.Pix {
			churn.Pix[j] = 0xFF
		}
		churn.Release()
	}
	for i, v := range cs.img.Pix {
		if v != uint8(i*7) {
			t.Fatalf("retained snapshot mutated at %d: eviction released pixels under a live reader", i)
		}
	}
	cs.release() // reader done: now the buffer really retires
}

// TestRandomResizedCropDegenerateBufferDiscipline hammers the real-mode
// RandomResizedCrop with 1x1 inputs — the degenerate geometry where the crop
// params always select the full frame, forcing the alias path that must not
// double-release the source buffer. Concurrent procs plus a repeat-and-compare
// check catch both races (under -race) and pool corruption from a stale
// release handing one proc's pixels to another.
func TestRandomResizedCropDegenerateBufferDiscipline(t *testing.T) {
	clk := clock.NewReal()
	clk.Run("main", func(p clock.Proc) {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			p.Go(fmt.Sprintf("rrc-%d", g), func(wp clock.Proc) {
				defer wg.Done()
				ctx := &Ctx{Proc: wp, Mode: RealData, Seed: int64(g), MaterializeDim: 32}
				for i := 0; i < 60; i++ {
					run := func() []float32 {
						src := imaging.SynthesizeImage(1, 1, int64(i))
						s := Sample{Index: i, Seed: int64(i), Width: 1, Height: 1,
							Channels: 3, Dtype: tensor.Uint8, Image: src}
						s = (&RandomResizedCrop{Size: 8}).Apply(ctx, s)
						s = (&ToTensor{}).Apply(ctx, s)
						return s.Tensor.F32
					}
					a, b := run(), run()
					for j := range a {
						if a[j] != b[j] {
							t.Errorf("proc %d iter %d: repeated degenerate crop diverged at %d (buffer discipline violated)", g, i, j)
							return
						}
					}
				}
			})
		}
		wg.Wait()
	})
}
