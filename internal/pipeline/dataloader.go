package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lotus/internal/clock"
	"lotus/internal/faultinject"
	"lotus/internal/native"
	"lotus/internal/rng"
	"lotus/internal/tensor"
)

// DispatchPolicy selects how the main process assigns the next index batch
// to a worker.
type DispatchPolicy int

const (
	// DispatchProducer replenishes the worker that produced the batch just
	// consumed — PyTorch's behaviour and the paper's § II-B description.
	DispatchProducer DispatchPolicy = iota
	// DispatchLeastWork assigns the next batch to the worker with the least
	// outstanding estimated work, using the Config.CostHint per-sample
	// estimate. This is the "better DataLoader scheduling" direction the
	// paper's Takeaway 4 suggests (and SpeedyLoader pursues): balancing
	// outstanding work reduces completion-order inversions and hence
	// out-of-order stalls.
	DispatchLeastWork
	// DispatchWorkStealing places index batches like DispatchProducer but
	// lets a worker that drains its own lane steal the oldest undispatched
	// batch from the most-backlogged peer (ties break to the lowest worker
	// id, so sim runs stay deterministic). This kills the head-of-line shape
	// MinatoLoader targets — one slow sample no longer stalls every batch
	// queued behind its worker — while the Iterator's reorder buffer keeps
	// delivery order, and hence bytes, identical to the other policies.
	DispatchWorkStealing
)

// Config parameterizes a DataLoader, mirroring torch.utils.data.DataLoader's
// arguments.
type Config struct {
	BatchSize  int
	NumWorkers int
	// PrefetchFactor is the number of batches dispatched ahead per worker at
	// startup (PyTorch default 2).
	PrefetchFactor int
	Shuffle        bool
	// PinMemory models copying received batches into page-locked memory in
	// the main process.
	PinMemory bool
	// DropLast drops the final partial batch.
	DropLast bool
	Seed     int64
	// Epoch selects the epoch this loader runs. It shifts the shuffle plan
	// through EpochSeed (preserving the historical per-epoch reshuffles) and
	// flows into worker Ctxs, where epochSalt varies the per-sample random
	// suffix while leaving deterministic prefixes untouched. Epoch 0 is
	// byte-identical to a Config that never set the field.
	Epoch int
	// BatchIDOffset shifts this epoch's batch IDs; multi-epoch trainers set
	// it to epoch*NumBatches so trace records from different epochs do not
	// collide.
	BatchIDOffset int
	// Dispatch selects the index-dispatch policy.
	Dispatch DispatchPolicy
	// CostHint estimates one sample's preprocessing cost (arbitrary units)
	// for DispatchLeastWork; nil treats all samples as equal.
	CostHint func(index int) float64
	// OnError selects the failed-batch policy (default FailEpoch).
	OnError ErrorPolicy
	// Hooks are the LotusTrace instrumentation callbacks (nil = untraced).
	Hooks *Hooks
	// Mode, Engine, WorkScale and MaterializeDim configure worker Ctxs.
	Mode           Mode
	Engine         *native.Engine
	WorkScale      float64
	MaterializeDim int
	// BatchPlan, when non-nil, is an explicit epoch batch plan: each entry is
	// one batch's dataset indices, consumed in order. Shuffle, DropLast, and
	// the plan-building half of Seed are ignored (Seed still drives per-sample
	// randomness). The serving layer (internal/serve) uses it to run a loader
	// over one session's shard of a shared epoch plan.
	BatchPlan [][]int
	// Faults, when non-nil, is the deterministic fault-injection layer: it
	// can fail or stall blob reads inside the loader transforms, panic the
	// worker on selected samples, and stall workers after selected batches.
	Faults *faultinject.Injector
	// SampleCache, when non-nil, is the shared split-point sample cache the
	// workers consult for materialized deterministic-prefix samples, keyed
	// under PrefixFP (the prefix fingerprint for this pipeline).
	SampleCache *SampleCache
	PrefixFP    uint64
}

// EpochSeed derives the per-epoch plan seed from the run seed. The additive
// form is pinned by the serving wire protocol (a remote session must shuffle
// exactly as a local multi-epoch trainer would), so it must not change.
func EpochSeed(seed int64, epoch int) int64 {
	return seed + int64(epoch)*1_000_003
}

// DefaultAutoWorkers is the worker count an auto-managed loader starts with
// when Config.NumWorkers is zero. The controller (internal/control) resizes
// from there; without a controller it is simply a sane small default.
const DefaultAutoWorkers = 2

func (c Config) validate() Config {
	if c.BatchSize <= 0 {
		panic("pipeline: BatchSize must be positive")
	}
	if c.NumWorkers < 0 {
		panic("pipeline: NumWorkers must not be negative")
	}
	if c.NumWorkers == 0 {
		// Zero means "auto": start at the default and let a controller grow
		// or shrink the pool at runtime via RequestResize.
		c.NumWorkers = DefaultAutoWorkers
	}
	if c.PrefetchFactor <= 0 {
		c.PrefetchFactor = 2
	}
	return c
}

// MainPID is the pid the main process logs under; worker w logs under
// MainPID+1+w. Fixed values keep traces reproducible.
const MainPID = 4000

// WorkerPID returns the pid assigned to worker w.
func WorkerPID(w int) int { return MainPID + 1 + w }

// indexTask is one entry on a worker's index queue.
type indexTask struct {
	batchID int
	indices []int
}

// ErrorPolicy selects what the main process does when a worker fails to
// produce a batch (a panic in dataset or transform code).
type ErrorPolicy int

const (
	// FailEpoch stops iteration and surfaces the worker's error via
	// Iterator.Err — PyTorch's behaviour (the worker exception is re-raised
	// in the main process).
	FailEpoch ErrorPolicy = iota
	// SkipBatch drops the failed batch, records it in Iterator.Skipped, and
	// keeps iterating — the robust-loader behaviour.
	SkipBatch
)

// workerResult is one entry on the shared data queue.
type workerResult struct {
	batchID int
	batch   *Batch
	worker  int
	err     error
}

// stealBoard is the index-dispatch structure behind DispatchWorkStealing:
// per-worker FIFO lanes under one condition variable. A worker takes from its
// own lane first; when that lane is empty it steals the oldest task from the
// deepest peer lane. Like clock.Queue, Close drains — Get keeps returning
// tasks until every lane is empty, then reports ok=false.
type stealBoard struct {
	cond   clock.Cond
	lanes  [][]indexTask
	closed bool
	steals int
	// retired marks lanes whose worker is shrinking away: the worker drains
	// its own lane (peers may still steal from it) and then exits instead of
	// stealing more work.
	retired []bool
}

func newStealBoard(clk clock.Clock, workers int) *stealBoard {
	return &stealBoard{cond: clk.NewCond(), lanes: make([][]indexTask, workers), retired: make([]bool, workers)}
}

// Put appends t to worker w's lane. Lanes are unbounded, so Put never blocks.
func (sb *stealBoard) Put(w int, t indexTask) {
	sb.cond.Lock()
	defer sb.cond.Unlock()
	if sb.closed {
		panic("pipeline: Put on closed steal board")
	}
	sb.lanes[w] = append(sb.lanes[w], t)
	sb.cond.Broadcast()
}

// AddLane appends an empty lane for a newly grown worker and returns its id.
func (sb *stealBoard) AddLane() int {
	sb.cond.Lock()
	defer sb.cond.Unlock()
	sb.lanes = append(sb.lanes, nil)
	sb.retired = append(sb.retired, false)
	return len(sb.lanes) - 1
}

// Retire marks worker w's lane as shrinking away (see the retired field).
func (sb *stealBoard) Retire(w int) {
	sb.cond.Lock()
	defer sb.cond.Unlock()
	sb.retired[w] = true
	sb.cond.Broadcast()
}

// Get returns the next task for worker w and the lane it came from
// (from != w is a steal). ok is false once the board is closed and drained,
// or — for a retired worker — once its own lane is empty.
func (sb *stealBoard) Get(p clock.Proc, w int) (t indexTask, from int, ok bool) {
	sb.cond.Lock()
	defer sb.cond.Unlock()
	for {
		if len(sb.lanes[w]) > 0 {
			t, sb.lanes[w] = sb.lanes[w][0], sb.lanes[w][1:]
			return t, w, true
		}
		if sb.retired[w] {
			return t, -1, false
		}
		victim, depth := -1, 0
		for i, lane := range sb.lanes {
			if len(lane) > depth {
				victim, depth = i, len(lane)
			}
		}
		if victim >= 0 {
			t, sb.lanes[victim] = sb.lanes[victim][0], sb.lanes[victim][1:]
			sb.steals++
			return t, victim, true
		}
		if sb.closed {
			return t, -1, false
		}
		sb.cond.Wait(p)
	}
}

// Close marks the board closed; idle workers drain remaining lanes and exit.
func (sb *stealBoard) Close() {
	sb.cond.Lock()
	defer sb.cond.Unlock()
	sb.closed = true
	sb.cond.Broadcast()
}

// Steals reports how many tasks were taken from a peer's lane.
func (sb *stealBoard) Steals() int {
	sb.cond.Lock()
	defer sb.cond.Unlock()
	return sb.steals
}

// DataLoader reproduces the multi-worker PyTorch loader: the main process
// dispatches index batches to per-worker index queues; workers fetch,
// preprocess, collate, and put completed batches on a shared data queue; the
// main process consumes strictly in batch order, caching out-of-order
// arrivals.
type DataLoader struct {
	cfg     Config
	dataset Dataset
	clk     clock.Clock

	batches [][]int
	indexQs []*clock.Queue[indexTask]
	// board replaces indexQs under DispatchWorkStealing.
	board   *stealBoard
	dataQ   *clock.Queue[workerResult]
	started bool
	sendIdx int
	// mu guards outstanding and creditDrift: under DispatchWorkStealing the
	// worker procs move charges at steal time, concurrently with the main
	// proc's dispatch/credit path in real mode. The critical sections never
	// block, so the mutex is also safe under the cooperative sim clock.
	mu sync.Mutex
	// outstanding tracks estimated queued work per worker for
	// DispatchLeastWork and steal accounting.
	outstanding []float64
	// creditDrift counts accounting violations in the outstanding ledger:
	// credits that would drive a worker's estimate below zero (a double
	// credit), and nonzero residue left after every dispatched batch has been
	// credited. Always zero in a correct loader; a nonzero value means the
	// load estimates steering DispatchLeastWork and stealing are corrupt.
	creditDrift int
	// batchCost caches the per-batch work estimates.
	batchCost []float64
	// stallAbort is closed by Iterator.Abort: real-clock workers sleeping
	// out an injected fault stall select against it, so an aborted epoch (a
	// severed session, a draining server) is not pinned for the remainder of
	// a long stall it no longer has any reason to honor.
	stallAbort chan struct{}
	stallOnce  sync.Once

	// workerTarget is the requested live worker count. RequestResize stores
	// it from any goroutine; the main proc applies it at the next dispatch
	// point — the one place where forking new worker procs and retiring lanes
	// cannot race the scheduler.
	workerTarget atomic.Int64
	// active lists the live (non-retired) worker ids in ascending order;
	// retired marks ids shrunk away. Guarded by mu (reads on the dispatch
	// path share the lock the outstanding ledger already takes).
	active  []int
	retired []bool
	// totalWorkers is the high-water worker id count: retired ids are never
	// reused, grown workers get fresh ids. Main proc only after Start.
	totalWorkers int
	// grown/shrunk count applied resize events (under mu).
	grown, shrunk int
}

// creditEpsilon separates real accounting drift from float64 rounding noise
// when batch costs are credited back in a different order than charged.
const creditEpsilon = 1e-6

// NewDataLoader constructs a loader over ds under clk.
func NewDataLoader(clk clock.Clock, ds Dataset, cfg Config) *DataLoader {
	cfg = cfg.validate()
	dl := &DataLoader{cfg: cfg, dataset: ds, clk: clk, stallAbort: make(chan struct{})}
	dl.workerTarget.Store(int64(cfg.NumWorkers))
	dl.buildBatches()
	return dl
}

// BuildBatchPlan returns an epoch's batch plan: the dataset indices 0..n-1,
// shuffled (optionally) with the loader's canonical seed derivation, chunked
// into batches of batchSize. This is exactly the plan NewDataLoader builds
// internally, exported so the serving layer derives a remote session's shard
// from the same plan a local loader would execute.
func BuildBatchPlan(n, batchSize int, shuffle, dropLast bool, seed int64) [][]int {
	if batchSize <= 0 {
		panic("pipeline: BuildBatchPlan needs batchSize > 0")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if shuffle {
		r := rng.New(seed, "dataloader/shuffle")
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var batches [][]int
	for at := 0; at < n; at += batchSize {
		end := at + batchSize
		if end > n {
			if dropLast {
				break
			}
			end = n
		}
		// Each batch is an independent copy, not a sub-slice of the shared
		// order array: callers (the serving layer hands plans across epochs
		// and sessions) may mutate one batch's indices without corrupting
		// its neighbors.
		batch := make([]int, end-at)
		copy(batch, order[at:end])
		batches = append(batches, batch)
	}
	return batches
}

// buildBatches installs the explicit plan or builds the canonical one.
func (dl *DataLoader) buildBatches() {
	if dl.cfg.BatchPlan != nil {
		dl.batches = dl.cfg.BatchPlan
	} else {
		dl.batches = BuildBatchPlan(dl.dataset.Len(), dl.cfg.BatchSize,
			dl.cfg.Shuffle, dl.cfg.DropLast, EpochSeed(dl.cfg.Seed, dl.cfg.Epoch))
	}
	dl.batchCost = make([]float64, len(dl.batches))
	for i, idxs := range dl.batches {
		if dl.cfg.CostHint == nil {
			dl.batchCost[i] = float64(len(idxs))
			continue
		}
		for _, idx := range idxs {
			dl.batchCost[i] += dl.cfg.CostHint(idx)
		}
	}
}

// NumBatches returns the number of batches in one epoch.
func (dl *DataLoader) NumBatches() int { return len(dl.batches) }

// Start forks the worker procs and performs initial prefetch dispatch. It
// must be called from inside the clock (p is the main proc). Start returns
// an Iterator for the epoch.
func (dl *DataLoader) Start(p clock.Proc) *Iterator {
	if dl.started {
		panic("pipeline: DataLoader.Start called twice (one epoch per loader)")
	}
	dl.started = true
	// A RequestResize issued before Start simply adjusts the construction
	// count — no fork-then-retire churn.
	n := int(dl.workerTarget.Load())
	if n < 1 {
		n = 1
	}
	dl.totalWorkers = n
	dl.retired = make([]bool, n)
	dl.outstanding = make([]float64, n)
	dl.active = make([]int, n)
	for w := range dl.active {
		dl.active[w] = w
	}
	if dl.cfg.Dispatch == DispatchWorkStealing {
		dl.board = newStealBoard(dl.clk, n)
	} else {
		dl.indexQs = make([]*clock.Queue[indexTask], n)
		for w := range dl.indexQs {
			dl.indexQs[w] = clock.NewQueue[indexTask](dl.clk, 0)
		}
	}
	dl.dataQ = clock.NewQueue[workerResult](dl.clk, 0)

	for w := 0; w < n; w++ {
		dl.forkWorker(p, w)
	}

	// Initial prefetch: prefetch_factor batches per worker, round-robin by
	// batch id (PyTorch's _try_put_index startup behaviour).
	for i := 0; i < dl.cfg.PrefetchFactor*n && dl.sendIdx < len(dl.batches); i++ {
		dl.enqueueNext(p, dl.sendIdx%n)
	}
	// An empty plan (a shard with zero batches) dispatches nothing, so the
	// close-on-last-dispatch path never runs; close here or the workers would
	// block forever on their index queues.
	if len(dl.batches) == 0 {
		dl.closeIndex()
	}
	return &Iterator{dl: dl, cached: make(map[int]*Batch), cachedWorker: make(map[int]int), cachedErr: make(map[int]error)}
}

// forkWorker starts worker w's proc, capturing its index queue at fork time
// (the indexQs slice may be appended to by a later grow, so the worker must
// not chase the slice header).
func (dl *DataLoader) forkWorker(p clock.Proc, w int) {
	var q *clock.Queue[indexTask]
	if dl.board == nil {
		q = dl.indexQs[w]
	}
	p.Go(fmt.Sprintf("dataloader-worker-%d", w), func(wp clock.Proc) {
		dl.workerLoop(wp, w, q)
	})
}

// dispatch applies any pending resize, then sends the next undistributed
// batch to a worker — the hinted one under DispatchProducer /
// DispatchWorkStealing, or the least-loaded one under DispatchLeastWork —
// and closes the index structure once everything is dispatched.
func (dl *DataLoader) dispatch(p clock.Proc, hint int) {
	dl.applyResize(p)
	dl.enqueueNext(p, hint)
}

// enqueueNext is the dispatch body without the resize check. A hint naming a
// retired worker is remapped deterministically onto the active set.
func (dl *DataLoader) enqueueNext(p clock.Proc, hint int) {
	if dl.sendIdx >= len(dl.batches) {
		return
	}
	w := hint
	dl.mu.Lock()
	if w >= len(dl.retired) || dl.retired[w] {
		w = dl.active[w%len(dl.active)]
	}
	if dl.cfg.Dispatch == DispatchLeastWork {
		w = dl.active[0]
		for _, i := range dl.active[1:] {
			if dl.outstanding[i] < dl.outstanding[w] {
				w = i
			}
		}
	}
	dl.outstanding[w] += dl.batchCost[dl.sendIdx]
	dl.mu.Unlock()
	task := indexTask{batchID: dl.sendIdx, indices: dl.batches[dl.sendIdx]}
	dl.sendIdx++
	if dl.board != nil {
		dl.board.Put(w, task)
	} else {
		dl.indexQs[w].Put(p, task)
	}
	if dl.sendIdx == len(dl.batches) {
		dl.closeIndex()
	}
}

// RequestResize asks the loader to grow or shrink to n live workers. Safe
// from any goroutine and any clock: the target is only applied by the main
// proc at its next dispatch point, so worker forking and lane retirement
// never race the scheduler. Growing workers get fresh ids (and a prefetch
// top-up so they have work immediately); shrinking retires the highest
// active ids, which drain their queued backlog and exit. The live count
// never drops below 1. Changing the worker count never changes batch bytes —
// the schedule-independence contract the loader already holds across worker
// counts.
func (dl *DataLoader) RequestResize(n int) {
	if n < 1 {
		n = 1
	}
	dl.workerTarget.Store(int64(n))
}

// Workers reports the current live (non-retired) worker count.
func (dl *DataLoader) Workers() int {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.active == nil {
		return int(dl.workerTarget.Load())
	}
	return len(dl.active)
}

// Resizes reports how many workers were grown and retired at runtime.
func (dl *DataLoader) Resizes() (grown, shrunk int) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.grown, dl.shrunk
}

// applyResize reconciles the live worker set with the requested target. Main
// proc only. Once every batch is dispatched the epoch is draining and a
// resize would be pure churn, so it is skipped.
func (dl *DataLoader) applyResize(p clock.Proc) {
	target := int(dl.workerTarget.Load())
	if dl.sendIdx >= len(dl.batches) {
		return
	}
	dl.mu.Lock()
	cur := len(dl.active)
	dl.mu.Unlock()
	if target == cur {
		return
	}
	if target > cur {
		fresh := make([]int, 0, target-cur)
		for i := cur; i < target; i++ {
			w := dl.totalWorkers
			dl.totalWorkers++
			dl.retired = append(dl.retired, false)
			if dl.board != nil {
				dl.board.AddLane()
			} else {
				dl.indexQs = append(dl.indexQs, clock.NewQueue[indexTask](dl.clk, 0))
			}
			dl.mu.Lock()
			dl.outstanding = append(dl.outstanding, 0)
			dl.active = append(dl.active, w)
			dl.grown++
			dl.mu.Unlock()
			dl.forkWorker(p, w)
			fresh = append(fresh, w)
		}
		// Top up the prefetch window so the new workers have work now rather
		// than after the next PrefetchFactor consumption rounds.
		for i := 0; i < dl.cfg.PrefetchFactor; i++ {
			for _, w := range fresh {
				dl.enqueueNext(p, w)
			}
		}
		return
	}
	for cur > target && cur > 1 {
		dl.mu.Lock()
		w := dl.active[len(dl.active)-1]
		dl.active = dl.active[:len(dl.active)-1]
		dl.shrunk++
		cur = len(dl.active)
		dl.mu.Unlock()
		dl.retired[w] = true
		if dl.board != nil {
			dl.board.Retire(w)
		} else {
			dl.indexQs[w].Close()
		}
	}
}

// closeIndex closes the index-dispatch structure (queues or steal board) so
// workers drain what was already dispatched and exit.
func (dl *DataLoader) closeIndex() {
	if dl.board != nil {
		dl.board.Close()
		return
	}
	for _, q := range dl.indexQs {
		q.Close()
	}
}

// completed credits a finished batch back against its worker's outstanding
// work estimate. A credit that would drive the estimate below zero is a
// double credit — a real accounting bug that would corrupt every
// DispatchLeastWork and stealing decision afterwards — so it is counted in
// creditDrift rather than silently clamped away.
func (dl *DataLoader) completed(batchID, worker int) {
	dl.mu.Lock()
	dl.outstanding[worker] -= dl.batchCost[batchID]
	if dl.outstanding[worker] < -creditEpsilon {
		dl.creditDrift++
	}
	if dl.outstanding[worker] < 0 {
		dl.outstanding[worker] = 0
	}
	dl.mu.Unlock()
}

// stealCharge moves a batch's outstanding charge from the lane it was queued
// on to the worker that stole it, so completed() credits the right ledger
// entry when the thief's result arrives.
func (dl *DataLoader) stealCharge(from, to, batchID int) {
	dl.mu.Lock()
	dl.outstanding[from] -= dl.batchCost[batchID]
	if dl.outstanding[from] < -creditEpsilon {
		dl.creditDrift++
	}
	if dl.outstanding[from] < 0 {
		dl.outstanding[from] = 0
	}
	dl.outstanding[to] += dl.batchCost[batchID]
	dl.mu.Unlock()
}

// noteResidual audits the outstanding ledger once every dispatched batch has
// been credited: residue beyond float rounding at that point is drift.
func (dl *DataLoader) noteResidual() {
	dl.mu.Lock()
	for _, o := range dl.outstanding {
		if o > creditEpsilon || o < -creditEpsilon {
			dl.creditDrift++
		}
	}
	dl.mu.Unlock()
}

// Steals reports how many batches were taken from a peer's lane under
// DispatchWorkStealing (always zero for the other policies).
func (dl *DataLoader) Steals() int {
	if dl.board == nil {
		return 0
	}
	return dl.board.Steals()
}

// CreditDrift reports outstanding-ledger accounting violations observed so
// far (see the field doc). Zero in a correct loader.
func (dl *DataLoader) CreditDrift() int {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.creditDrift
}

// workerLoop is the DataLoader worker body (_utils.worker._worker_loop): it
// creates a fetcher and serves index tasks until its queue closes (or, for a
// retired worker, until its backlog drains). q is the worker's own index
// queue, nil under DispatchWorkStealing.
func (dl *DataLoader) workerLoop(p clock.Proc, workerID int, q *clock.Queue[indexTask]) {
	pid := WorkerPID(workerID)
	ctx := &Ctx{
		Proc:           p,
		Engine:         dl.cfg.Engine,
		Thread:         &native.Thread{ID: pid},
		Mode:           dl.cfg.Mode,
		Seed:           dl.cfg.Seed,
		Epoch:          dl.cfg.Epoch,
		WorkScale:      dl.cfg.WorkScale,
		MaterializeDim: dl.cfg.MaterializeDim,
		Faults:         dl.cfg.Faults,
		SampleCache:    dl.cfg.SampleCache,
		PrefixFP:       dl.cfg.PrefixFP,
	}
	collate := &Collate{}
	for {
		var task indexTask
		var ok bool
		if dl.board != nil {
			var from int
			task, from, ok = dl.board.Get(p, workerID)
			if ok && from != workerID {
				dl.stealCharge(from, workerID, task.batchID)
			}
		} else {
			task, ok = q.Get(p)
		}
		if !ok {
			return
		}
		start := p.Now()
		if dl.cfg.Engine != nil {
			dl.cfg.Engine.BeginWork()
		}
		// fetch: per-sample preprocessing then collation, with panics from
		// dataset/transform code captured and forwarded to the main process
		// (PyTorch pickles the worker exception and re-raises it there).
		var samples []Sample
		var collated *tensor.Tensor
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("pipeline: worker %d failed on batch %d: %v",
						workerID, task.batchID+dl.cfg.BatchIDOffset, r)
				}
			}()
			samples = make([]Sample, len(task.indices))
			for i, idx := range task.indices {
				if dl.cfg.Faults.SamplePanic(idx) {
					panic(fmt.Sprintf("faultinject: worker panic on sample %d", idx))
				}
				samples[i] = dl.dataset.GetItem(ctx, pid, task.batchID+dl.cfg.BatchIDOffset, idx)
			}
			collateStart := p.Now()
			collated = collate.Run(ctx, samples)
			if dl.cfg.Hooks != nil && dl.cfg.Hooks.OnOp != nil {
				dl.cfg.Hooks.OnOp(pid, task.batchID+dl.cfg.BatchIDOffset, -1, "Collate", collateStart, p.Now().Sub(collateStart))
				if dl.cfg.Hooks.PerLogCost > 0 {
					p.Sleep(dl.cfg.Hooks.PerLogCost)
				}
			}
			return nil
		}()
		if dl.cfg.Engine != nil {
			dl.cfg.Engine.EndWork()
		}
		// Injected engine stall: the worker pauses after the batch's work
		// (GC pause / CPU contention), delaying its arrival on the data
		// queue without changing the batch's preprocessing span.
		if stall := dl.cfg.Faults.BatchStall(task.batchID + dl.cfg.BatchIDOffset); stall > 0 {
			dl.faultSleep(p, stall)
		}
		if stall := dl.cfg.Faults.WorkerSlowdown(workerID); stall > 0 {
			dl.faultSleep(p, stall)
		}
		if err != nil {
			dl.dataQ.Put(p, workerResult{batchID: task.batchID, worker: workerID, err: err})
			continue
		}
		end := p.Now()

		labels := make([]int, len(samples))
		for i, s := range samples {
			labels[i] = s.Label
		}
		batch := &Batch{
			ID:             task.batchID + dl.cfg.BatchIDOffset,
			WorkerID:       workerID,
			Indices:        append([]int(nil), task.indices...),
			Labels:         labels,
			Data:           collated,
			PreprocessedAt: end,
		}
		if dl.cfg.Hooks != nil && dl.cfg.Hooks.OnBatchPreprocessed != nil {
			dl.cfg.Hooks.OnBatchPreprocessed(pid, task.batchID+dl.cfg.BatchIDOffset, start, end.Sub(start))
			if dl.cfg.Hooks.PerLogCost > 0 {
				p.Sleep(dl.cfg.Hooks.PerLogCost)
			}
		}
		dl.dataQ.Put(p, workerResult{batchID: task.batchID, batch: batch, worker: workerID})
	}
}

// InterruptStalls releases every worker currently sleeping out an injected
// real-clock fault stall, and makes all future fault stalls on this loader
// return immediately. Unlike Iterator.Abort it touches no iterator state, so
// it is safe to call from any goroutine — the serving layer calls it from a
// connection watcher when a session's socket dies mid-epoch, where the main
// proc is itself blocked waiting on the stalled worker and cannot run Abort.
func (dl *DataLoader) InterruptStalls() {
	dl.stallOnce.Do(func() { close(dl.stallAbort) })
}

// faultSleep pauses a worker for an injected fault stall. Simulated-clock
// stalls are virtual — they cost teardown nothing and must stay on the
// deterministic scheduler — so they sleep normally. Real-clock stalls race
// the epoch abort: a node degraded enough to get its session severed (a
// hedged straggler, a disconnecting client) must not keep the worker
// goroutine — and the Drain waiting behind it — pinned for the remainder of
// a stall nobody will consume.
func (dl *DataLoader) faultSleep(p clock.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	if !clock.IsReal(p) {
		p.Sleep(d)
		return
	}
	select {
	case <-time.After(d):
	case <-dl.stallAbort:
	}
}

// Iterator consumes batches strictly in order from the shared data queue,
// caching and pinning batches that arrive out of order — the behaviour
// behind the paper's wait/delay analysis and Figure 3.
type Iterator struct {
	dl           *DataLoader
	rcvdIdx      int
	cached       map[int]*Batch
	cachedWorker map[int]int
	cachedErr    map[int]error
	// seen counts results received from the data queue. Every dispatched
	// batch produces exactly one result (success or error), so Drain knows
	// teardown is complete when seen == dl.sendIdx.
	seen int
	// OOOEvents counts batches that arrived before the main process wanted
	// them (out-of-order arrivals).
	OOOEvents int
	// skipped lists batch IDs dropped under the SkipBatch policy.
	skipped []int
	err     error
}

// Err reports the worker failure that stopped iteration under FailEpoch.
func (it *Iterator) Err() error { return it.err }

// Skipped lists the batch IDs dropped under SkipBatch, in consumption order.
func (it *Iterator) Skipped() []int { return append([]int(nil), it.skipped...) }

// Next returns the next batch in order. ok is false at epoch end. p must be
// the main proc.
func (it *Iterator) Next(p clock.Proc) (*Batch, bool) {
	dl := it.dl
restart:
	if it.err != nil || it.rcvdIdx >= len(dl.batches) {
		return nil, false
	}
	want := it.rcvdIdx
	startWait := p.Now()
	var batch *Batch
	var fromWorker int

	if err, ok := it.cachedErr[want]; ok {
		delete(it.cachedErr, want)
		w := it.cachedWorker[want]
		delete(it.cachedWorker, want)
		if !it.handleError(p, want, w, err) {
			return nil, false
		}
		goto restart
	}
	if b, ok := it.cached[want]; ok {
		// The desired batch already arrived while we were busy: the paper
		// marks these with a 1µs wait to denote no waiting.
		batch = b
		fromWorker = it.cachedWorker[want]
		delete(it.cached, want)
		delete(it.cachedWorker, want)
		it.logWait(p, want, startWait, time.Microsecond)
	} else {
		for {
			res, ok := dl.dataQ.Get(p)
			if !ok {
				panic("pipeline: data queue closed before epoch finished")
			}
			it.seen++
			dl.completed(res.batchID, res.worker)
			if res.err != nil {
				if res.batchID == want {
					if !it.handleError(p, want, res.worker, res.err) {
						return nil, false
					}
					goto restart
				}
				it.cachedErr[res.batchID] = res.err
				it.cachedWorker[res.batchID] = res.worker
				continue
			}
			if res.batchID == want {
				batch = res.batch
				fromWorker = res.batch.WorkerID
				it.logWait(p, want, startWait, p.Now().Sub(startWait))
				break
			}
			// Out-of-order arrival: pin to CPU memory and cache it; keep
			// polling for the desired batch.
			it.OOOEvents++
			if dl.cfg.PinMemory {
				p.Sleep(PinCost(res.batch.Bytes()))
			}
			it.cached[res.batchID] = res.batch
			it.cachedWorker[res.batchID] = res.batch.WorkerID
		}
	}

	it.rcvdIdx++
	// Replenish: hand the next index batch to the worker that produced the
	// batch we just consumed (§ II-B).
	dl.dispatch(p, fromWorker)
	if it.rcvdIdx == len(dl.batches) && it.seen == dl.sendIdx {
		// Natural epoch end with every dispatched batch credited: the
		// outstanding ledger must be back to zero.
		dl.noteResidual()
	}

	// Consumption: pin the desired batch (if configured) and log the
	// consumption marker.
	consumeStart := p.Now()
	if dl.cfg.PinMemory {
		p.Sleep(PinCost(batch.Bytes()))
	}
	if dl.cfg.Hooks != nil && dl.cfg.Hooks.OnBatchConsumed != nil {
		dl.cfg.Hooks.OnBatchConsumed(MainPID, batch.ID, consumeStart, p.Now().Sub(consumeStart))
		if dl.cfg.Hooks.PerLogCost > 0 {
			p.Sleep(dl.cfg.Hooks.PerLogCost)
		}
	}
	return batch, true
}

// handleError applies the error policy to a failed batch. It returns true
// when iteration should continue (SkipBatch) and false when the epoch is
// failed (FailEpoch). Either way the failed batch counts as processed so the
// pipeline keeps flowing or tears down cleanly.
func (it *Iterator) handleError(p clock.Proc, batchID, worker int, err error) bool {
	dl := it.dl
	it.rcvdIdx++
	if dl.cfg.OnError == SkipBatch {
		it.skipped = append(it.skipped, batchID+dl.cfg.BatchIDOffset)
		dl.dispatch(p, worker)
		return true
	}
	it.err = err
	// Tear down: close the index structure so the workers exit instead of
	// waiting for tokens that will never come.
	dl.closeIndex()
	return false
}

func (it *Iterator) logWait(p clock.Proc, batchID int, start time.Time, dur time.Duration) {
	h := it.dl.cfg.Hooks
	if h != nil && h.OnBatchWait != nil {
		h.OnBatchWait(MainPID, batchID+it.dl.cfg.BatchIDOffset, start, dur)
		if h.PerLogCost > 0 {
			p.Sleep(h.PerLogCost)
		}
	}
}

// Abort ends the epoch early: every index queue is closed and the iterator
// reports exhausted from then on. Closing an index queue does not discard
// queued tasks (Queue.Close drains remaining items first), so each worker
// still processes everything already dispatched to it and puts one result
// per task on the data queue before exiting. Call Drain afterwards to
// consume those in-flight results. The serving layer uses Abort when a
// client disconnects or the server drains mid-epoch.
func (it *Iterator) Abort() {
	it.rcvdIdx = len(it.dl.batches)
	it.dl.InterruptStalls()
	it.dl.closeIndex()
}

// Drain consumes every in-flight result after Abort (or an early stop) and
// credits completions, blocking until all workers have accounted for every
// dispatched batch. A plain TryGet poll is not enough: a worker mid-batch at
// Abort time puts its result *after* a non-blocking sweep has returned,
// leaving a stale result on the queue and its work forever uncredited in
// outstanding. Every dispatched batch produces exactly one result and data
// queue puts never block, so blocking until seen == sendIdx always
// terminates. p must be the main proc.
func (it *Iterator) Drain(p clock.Proc) {
	dl := it.dl
	for it.seen < dl.sendIdx {
		res, ok := dl.dataQ.Get(p)
		if !ok {
			return
		}
		it.seen++
		dl.completed(res.batchID, res.worker)
	}
	if it.seen == dl.sendIdx {
		dl.noteResidual()
	}
	// Results already received and parked in the caches were counted when
	// they arrived; release them so an aborted epoch does not pin batches.
	it.cached = make(map[int]*Batch)
	it.cachedWorker = make(map[int]int)
	it.cachedErr = make(map[int]error)
}
