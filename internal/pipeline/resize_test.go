package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
)

// resizeLoader builds a sim loader with an explicit dispatch policy, mirroring
// simLoader but exposing the knobs the resize tests vary.
func resizeLoader(t *testing.T, n, batch, workers int, dispatch DispatchPolicy) (*clock.Sim, *DataLoader) {
	t.Helper()
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
	folder := NewImageFolder(ds, icCompose(nil))
	dl := NewDataLoader(sim, folder, Config{
		BatchSize:  batch,
		NumWorkers: workers,
		Seed:       1,
		Mode:       Simulated,
		Dispatch:   dispatch,
		Engine:     native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	return sim, dl
}

// runEpochResizing consumes one epoch, invoking resizeAt[batchID] (if set)
// right after that batch is delivered — i.e. mid-epoch, from the main proc.
func runEpochResizing(sim *clock.Sim, dl *DataLoader, resizeAt map[int]int) []*Batch {
	var batches []*Batch
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			batches = append(batches, b)
			if target, ok := resizeAt[b.ID]; ok {
				dl.RequestResize(target)
			}
		}
	})
	return batches
}

// batchFingerprint captures everything about a batch that must be independent
// of the worker schedule: consumption order, sample membership, labels, and
// collated shape. (Simulated-mode tensors are meta, so the shape is the
// payload identity.)
func batchFingerprint(b *Batch) string {
	return fmt.Sprintf("%d|%v|%v|%v", b.ID, b.Indices, b.Labels, b.Data.Shape)
}

func TestResizeMidEpochPreservesDelivery(t *testing.T) {
	policies := map[string]DispatchPolicy{
		"producer":  DispatchProducer,
		"leastwork": DispatchLeastWork,
		"steal":     DispatchWorkStealing,
	}
	for name, policy := range policies {
		t.Run(name, func(t *testing.T) {
			sim, dl := resizeLoader(t, 320, 8, 2, policy)
			// Grow 2->5 early, then shrink 5->2 while batches remain
			// undispatched, so both paths run inside one epoch.
			batches := runEpochResizing(sim, dl, map[int]int{4: 5, 11: 2})
			if len(batches) != 40 {
				t.Fatalf("got %d batches, want 40", len(batches))
			}
			seen := make(map[int]bool)
			for i, b := range batches {
				if b.ID != i {
					t.Fatalf("batch %d delivered with ID %d — order broken by resize", i, b.ID)
				}
				for _, idx := range b.Indices {
					if seen[idx] {
						t.Fatalf("index %d delivered twice after resize", idx)
					}
					seen[idx] = true
				}
			}
			if len(seen) != 320 {
				t.Fatalf("delivered %d distinct indices, want 320", len(seen))
			}
			grown, shrunk := dl.Resizes()
			if grown != 3 || shrunk != 3 {
				t.Fatalf("Resizes() = (%d, %d), want (3, 3)", grown, shrunk)
			}
			if got := dl.Workers(); got != 2 {
				t.Fatalf("Workers() = %d after shrink back, want 2", got)
			}
		})
	}
}

func TestResizeMatchesFixedWorkerRun(t *testing.T) {
	for name, policy := range map[string]DispatchPolicy{
		"producer": DispatchProducer,
		"steal":    DispatchWorkStealing,
	} {
		t.Run(name, func(t *testing.T) {
			fixed := func() []string {
				sim, dl := resizeLoader(t, 120, 8, 3, policy)
				bs := runEpochResizing(sim, dl, nil)
				out := make([]string, len(bs))
				for i, b := range bs {
					out[i] = batchFingerprint(b)
				}
				return out
			}()
			resized := func() []string {
				sim, dl := resizeLoader(t, 120, 8, 3, policy)
				bs := runEpochResizing(sim, dl, map[int]int{2: 6, 8: 1})
				out := make([]string, len(bs))
				for i, b := range bs {
					out[i] = batchFingerprint(b)
				}
				return out
			}()
			if !reflect.DeepEqual(fixed, resized) {
				t.Fatalf("resizing changed batch content:\nfixed:   %v\nresized: %v",
					fixed, resized)
			}
		})
	}
}

func TestResizeBeforeStartSetsConstructionCount(t *testing.T) {
	sim, dl := resizeLoader(t, 80, 8, 2, DispatchProducer)
	dl.RequestResize(4)
	batches := runEpochResizing(sim, dl, nil)
	if len(batches) != 10 {
		t.Fatalf("got %d batches, want 10", len(batches))
	}
	if got := dl.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4 (pre-Start resize adjusts construction)", got)
	}
	grown, shrunk := dl.Resizes()
	if grown != 0 || shrunk != 0 {
		t.Fatalf("pre-Start resize must not count as runtime churn, got (%d, %d)", grown, shrunk)
	}
}

func TestResizeNeverDropsBelowOneWorker(t *testing.T) {
	sim, dl := resizeLoader(t, 80, 8, 3, DispatchLeastWork)
	batches := runEpochResizing(sim, dl, map[int]int{2: 0})
	if len(batches) != 10 {
		t.Fatalf("got %d batches, want 10", len(batches))
	}
	if got := dl.Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1 (resize clamps at one live worker)", got)
	}
}
