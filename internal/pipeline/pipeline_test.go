package pipeline

import (
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
	"lotus/internal/tensor"
)

// icCompose builds the paper's image-classification transform chain.
func icCompose(hooks *Hooks) *Compose {
	c := NewCompose(
		&Loader{IO: data.DefaultIO()},
		&RandomResizedCrop{Size: 224},
		&RandomHorizontalFlip{},
		&ToTensor{},
		&Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
	)
	c.Hooks = hooks
	return c
}

func simLoader(t *testing.T, n, batch, workers int, hooks *Hooks) (*clock.Sim, *DataLoader) {
	t.Helper()
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
	folder := NewImageFolder(ds, icCompose(hooks))
	dl := NewDataLoader(sim, folder, Config{
		BatchSize:  batch,
		NumWorkers: workers,
		Seed:       1,
		Hooks:      hooks,
		Mode:       Simulated,
		Engine:     native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	return sim, dl
}

func runEpoch(sim *clock.Sim, dl *DataLoader) (batches []*Batch, ooo int) {
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			batches = append(batches, b)
		}
		ooo = it.OOOEvents
	})
	return batches, ooo
}

func TestEpochDeliversAllBatchesInOrder(t *testing.T) {
	sim, dl := simLoader(t, 103, 10, 4, nil)
	batches, _ := runEpoch(sim, dl)
	if len(batches) != 11 {
		t.Fatalf("got %d batches, want 11 (103/10 with partial last)", len(batches))
	}
	for i, b := range batches {
		if b.ID != i {
			t.Fatalf("batch %d has ID %d — main must consume in order", i, b.ID)
		}
	}
	if got := batches[10].Size(); got != 3 {
		t.Fatalf("last batch size %d, want 3", got)
	}
	// Every dataset index appears exactly once across the epoch.
	seen := make(map[int]bool)
	for _, b := range batches {
		for _, idx := range b.Indices {
			if seen[idx] {
				t.Fatalf("index %d delivered twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("delivered %d distinct indices, want 103", len(seen))
	}
}

func TestDropLast(t *testing.T) {
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(25, 1))
	dl := NewDataLoader(sim, NewImageFolder(ds, icCompose(nil)), Config{
		BatchSize: 10, NumWorkers: 2, DropLast: true, Seed: 1,
		Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	if dl.NumBatches() != 2 {
		t.Fatalf("NumBatches = %d, want 2 with DropLast", dl.NumBatches())
	}
}

func TestShuffleIsDeterministicPermutation(t *testing.T) {
	mk := func() []int {
		sim := clock.NewSim()
		ds := data.NewImageDataset(data.ImageNetConfig(40, 1))
		dl := NewDataLoader(sim, NewImageFolder(ds, icCompose(nil)), Config{
			BatchSize: 8, NumWorkers: 2, Shuffle: true, Seed: 99,
			Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
		})
		batches, _ := runEpoch(sim, dl)
		var order []int
		for _, b := range batches {
			order = append(order, b.Indices...)
		}
		return order
	}
	a, b := mk(), mk()
	identity := true
	seen := make(map[int]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic for fixed seed")
		}
		if a[i] != i {
			identity = false
		}
		seen[a[i]] = true
	}
	if identity {
		t.Fatal("shuffle left indices in identity order")
	}
	if len(seen) != 40 {
		t.Fatal("shuffle dropped or duplicated indices")
	}
}

func TestHooksFireWithCorrectShape(t *testing.T) {
	type opRec struct {
		pid, batch int
		op         string
		dur        time.Duration
	}
	var ops []opRec
	var pre, wait, consumed int
	hooks := &Hooks{
		OnOp: func(pid, batchID, sample int, op string, start time.Time, dur time.Duration) {
			ops = append(ops, opRec{pid, batchID, op, dur})
		},
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) { pre++ },
		OnBatchWait:         func(pid, batchID int, start time.Time, dur time.Duration) { wait++ },
		OnBatchConsumed:     func(pid, batchID int, start time.Time, dur time.Duration) { consumed++ },
	}
	sim, dl := simLoader(t, 20, 5, 2, hooks)
	runEpoch(sim, dl)

	if pre != 4 || wait != 4 || consumed != 4 {
		t.Fatalf("batch hooks fired (pre=%d wait=%d consumed=%d), want 4 each", pre, wait, consumed)
	}
	// 20 samples x 5 transforms + 4 collates.
	wantOps := 20*5 + 4
	if len(ops) != wantOps {
		t.Fatalf("op hook fired %d times, want %d", len(ops), wantOps)
	}
	perOp := map[string]int{}
	collates := 0
	for _, o := range ops {
		perOp[o.op]++
		if o.op == "Collate" {
			collates++
			if o.pid < WorkerPID(0) || o.pid > WorkerPID(1) {
				t.Fatalf("collate logged from pid %d, want a worker pid", o.pid)
			}
		}
		if o.dur < 0 {
			t.Fatalf("negative op duration for %s", o.op)
		}
	}
	for _, name := range []string{"Loader", "RandomResizedCrop", "RandomHorizontalFlip", "ToTensor", "Normalize"} {
		if perOp[name] != 20 {
			t.Fatalf("op %s logged %d times, want 20", name, perOp[name])
		}
	}
	if collates != 4 {
		t.Fatalf("collate logged %d times, want 4", collates)
	}
}

func TestLoaderDominatesFlipInSimulatedTime(t *testing.T) {
	durs := map[string]time.Duration{}
	counts := map[string]int{}
	hooks := &Hooks{
		OnOp: func(pid, batchID, sample int, op string, start time.Time, dur time.Duration) {
			durs[op] += dur
			counts[op]++
		},
	}
	sim, dl := simLoader(t, 30, 10, 1, hooks)
	runEpoch(sim, dl)
	avgLoader := durs["Loader"] / time.Duration(counts["Loader"])
	avgFlip := durs["RandomHorizontalFlip"] / time.Duration(counts["RandomHorizontalFlip"])
	if avgLoader < time.Millisecond {
		t.Fatalf("Loader avg %v — expected milliseconds per Table II", avgLoader)
	}
	if avgFlip > 200*time.Microsecond {
		t.Fatalf("Flip avg %v — expected well under a millisecond", avgFlip)
	}
	if avgLoader < 5*avgFlip {
		t.Fatalf("Loader (%v) should dominate flip (%v)", avgLoader, avgFlip)
	}
}

func TestOutOfOrderArrivalsWaitIsMicrosecond(t *testing.T) {
	// With several workers and highly variable per-batch cost, some batches
	// arrive out of order; the wait recorded for an already-cached batch
	// must be the paper's 1µs no-wait marker.
	var waits []time.Duration
	hooks := &Hooks{
		OnBatchWait: func(pid, batchID int, start time.Time, dur time.Duration) {
			waits = append(waits, dur)
		},
	}
	sim, dl := simLoader(t, 240, 8, 4, hooks)
	_, ooo := runEpoch(sim, dl)
	if ooo == 0 {
		t.Skip("schedule produced no out-of-order arrivals at this seed")
	}
	micro := 0
	for _, w := range waits {
		if w == time.Microsecond {
			micro++
		}
	}
	if micro == 0 {
		t.Fatal("out-of-order arrivals occurred but no 1µs wait markers were logged")
	}
}

func TestBatchMetadataConsistent(t *testing.T) {
	sim, dl := simLoader(t, 24, 6, 2, nil)
	batches, _ := runEpoch(sim, dl)
	for _, b := range batches {
		if b.WorkerID < 0 || b.WorkerID >= 2 {
			t.Fatalf("batch %d from worker %d", b.ID, b.WorkerID)
		}
		if b.Data == nil || !b.Data.IsMeta() {
			t.Fatalf("simulated batch %d should carry a meta tensor", b.ID)
		}
		want := []int{6, 3, 224, 224}
		for i, d := range want {
			if b.Data.Shape[i] != d {
				t.Fatalf("batch %d shape %v, want %v", b.ID, b.Data.Shape, want)
			}
		}
		if b.PreprocessedAt.Before(clock.Epoch) {
			t.Fatalf("batch %d has zero PreprocessedAt", b.ID)
		}
	}
}

func TestPerLogCostChargesTime(t *testing.T) {
	run := func(hooks *Hooks) time.Duration {
		sim, dl := simLoader(t, 40, 10, 2, hooks)
		runEpoch(sim, dl)
		return sim.Elapsed()
	}
	quiet := run(nil)
	noop := func(int, int, int, string, time.Time, time.Duration) {}
	costly := run(&Hooks{OnOp: noop, PerLogCost: 200 * time.Microsecond})
	if costly <= quiet {
		t.Fatalf("per-log cost did not lengthen the epoch: %v vs %v", costly, quiet)
	}
}

func TestSampleRandomnessIndependentOfWorkerCount(t *testing.T) {
	// The same sample must make identical random choices (crop geometry,
	// flips) regardless of worker count — ensured by index-derived RNG.
	// Durations legitimately differ (contention), so compare the decision:
	// an un-flipped sample does no work and logs a zero duration.
	flips := func(workers int) map[int]bool {
		out := map[int]bool{}
		hooks := &Hooks{
			OnOp: func(pid, batchID, sample int, op string, start time.Time, dur time.Duration) {
				if op == "RandomHorizontalFlip" {
					out[sample] = dur > 0
				}
			},
		}
		sim, dl := simLoader(t, 30, 5, workers, hooks)
		runEpoch(sim, dl)
		return out
	}
	one := flips(1)
	three := flips(3)
	flipped := 0
	for idx, f := range one {
		if three[idx] != f {
			t.Fatalf("sample %d flip decision differs across worker counts", idx)
		}
		if f {
			flipped++
		}
	}
	if flipped == 0 || flipped == len(one) {
		t.Fatalf("flip decisions degenerate: %d/%d flipped", flipped, len(one))
	}
}

func TestRealModeEpochProducesRealTensors(t *testing.T) {
	clk := clock.NewReal()
	ds := data.NewImageDataset(data.ImageConfig{
		Name: "tiny", N: 6, MeanFileKB: 20, StdFileKB: 5, MinFileKB: 10, MaxFileKB: 40,
		CompressionRatio: 10, Classes: 4, Seed: 3,
		IO: data.IOModel{BaseLatency: 0, BandwidthMBps: 0},
	})
	c := NewCompose(
		&Loader{IO: ds.IO},
		&RandomResizedCrop{Size: 32},
		&RandomHorizontalFlip{},
		&ToTensor{},
		&Normalize{Mean: []float32{0.5, 0.5, 0.5}, Std: []float32{0.25, 0.25, 0.25}},
	)
	dl := NewDataLoader(clk, NewImageFolder(ds, c), Config{
		BatchSize: 3, NumWorkers: 2, Seed: 1, Mode: RealData, MaterializeDim: 64,
	})
	var batches []*Batch
	clk.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			batches = append(batches, b)
		}
	})
	if len(batches) != 2 {
		t.Fatalf("got %d batches", len(batches))
	}
	for _, b := range batches {
		if b.Data.IsMeta() {
			t.Fatal("real-mode batch carries no data")
		}
		if b.Data.Dtype != tensor.Float32 {
			t.Fatalf("batch dtype %v", b.Data.Dtype)
		}
		want := []int{3, 3, 32, 32}
		for i, d := range want {
			if b.Data.Shape[i] != d {
				t.Fatalf("shape %v, want %v", b.Data.Shape, want)
			}
		}
	}
}

func TestISVolumePipelineSim(t *testing.T) {
	sim := clock.NewSim()
	vds := data.NewVolumeDataset(data.Kits19Config(8, 2))
	c := NewCompose(
		&VolumeLoader{IO: vds.IO},
		&RandBalancedCrop{Patch: [3]int{128, 128, 128}, OversampleP: 0.4},
		&RandomFlip{},
		&Cast{},
		&RandomBrightnessAugmentation{},
		&GaussianNoise{},
	)
	durs := map[string]time.Duration{}
	counts := map[string]int{}
	hooks := &Hooks{OnOp: func(pid, batchID, sample int, op string, start time.Time, dur time.Duration) {
		durs[op] += dur
		counts[op]++
	}}
	c.Hooks = hooks
	dl := NewDataLoader(sim, NewVolumeFolder(vds, c), Config{
		BatchSize: 2, NumWorkers: 2, Seed: 4, Hooks: hooks,
		Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	batches, _ := runEpoch(sim, dl)
	if len(batches) != 4 {
		t.Fatalf("got %d batches", len(batches))
	}
	if counts["Loader"] != 8 || counts["RandBalancedCrop"] != 8 {
		t.Fatalf("op counts %v", counts)
	}
	avgLoad := durs["Loader"] / time.Duration(counts["Loader"])
	avgCast := durs["Cast"] / time.Duration(counts["Cast"])
	if avgLoad < 10*time.Millisecond {
		t.Fatalf("IS Loader avg %v — kits19-like loads should take tens of ms", avgLoad)
	}
	if avgCast >= avgLoad {
		t.Fatalf("Cast (%v) should be much cheaper than Loader (%v)", avgCast, avgLoad)
	}
}

func TestGroundTruthCoversAllOps(t *testing.T) {
	c := icCompose(nil)
	gt := c.GroundTruth()
	for _, name := range c.Names() {
		if len(gt[name]) == 0 {
			t.Fatalf("no ground-truth kernels for op %s", name)
		}
	}
	found := false
	for _, k := range gt["Loader"] {
		if k == "decode_mcu" {
			found = true
		}
	}
	if !found {
		t.Fatal("Loader ground truth must include decode_mcu")
	}
}

func TestConfigValidation(t *testing.T) {
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(4, 1))
	for _, cfg := range []Config{
		{BatchSize: 0, NumWorkers: 1},
		{BatchSize: 2, NumWorkers: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v should panic", cfg)
				}
			}()
			NewDataLoader(sim, NewImageFolder(ds, icCompose(nil)), cfg)
		}()
	}
	// Zero workers means "auto" (controller-managed), not a panic: the loader
	// starts at the default and can be resized from there.
	dl := NewDataLoader(sim, NewImageFolder(ds, icCompose(nil)), Config{BatchSize: 2})
	if got := dl.Workers(); got != DefaultAutoWorkers {
		t.Fatalf("NumWorkers=0 should mean auto (%d workers), got %d", DefaultAutoWorkers, got)
	}
}
