package pipeline

import (
	"lotus/internal/data"
	"lotus/internal/tensor"
)

// Dataset is a map-style dataset: GetItem loads and preprocesses one sample
// (the torch.utils.data.Dataset __getitem__ contract; transforms run inside
// it, which is why the paper instruments Compose rather than the loader
// loop).
type Dataset interface {
	Len() int
	GetItem(ctx *Ctx, pid, batchID, index int) Sample
}

// ImageFolder adapts a synthetic image dataset plus a Compose chain — the
// analogue of torchvision.datasets.ImageFolder with a transform argument.
type ImageFolder struct {
	Data      *data.ImageDataset
	Transform *Compose
}

// NewImageFolder builds the dataset.
func NewImageFolder(ds *data.ImageDataset, tf *Compose) *ImageFolder {
	return &ImageFolder{Data: ds, Transform: tf}
}

func (f *ImageFolder) Len() int { return f.Data.Len() }

func (f *ImageFolder) GetItem(ctx *Ctx, pid, batchID, index int) Sample {
	rec := f.Data.Record(index)
	s := Sample{
		Index:     index,
		Label:     rec.Label,
		FileBytes: rec.FileBytes,
		Seed:      rec.Seed,
		Width:     rec.Width,
		Height:    rec.Height,
		Channels:  3,
		Dtype:     tensor.Uint8,
	}
	return f.Transform.Apply(ctx, pid, batchID, s)
}

// VolumeFolder adapts a synthetic volume dataset plus a Compose chain (the
// IS pipeline's custom Dataset subclass of Listing 2).
type VolumeFolder struct {
	Data      *data.VolumeDataset
	Transform *Compose
}

// NewVolumeFolder builds the dataset.
func NewVolumeFolder(ds *data.VolumeDataset, tf *Compose) *VolumeFolder {
	return &VolumeFolder{Data: ds, Transform: tf}
}

func (f *VolumeFolder) Len() int { return f.Data.Len() }

func (f *VolumeFolder) GetItem(ctx *Ctx, pid, batchID, index int) Sample {
	rec := f.Data.Record(index)
	s := Sample{
		Index:     index,
		FileBytes: rec.FileBytes,
		Seed:      rec.Seed,
		Depth:     rec.D,
		Height:    rec.H,
		Width:     rec.W,
		Channels:  1,
		Dtype:     tensor.Float32,
	}
	return f.Transform.Apply(ctx, pid, batchID, s)
}
