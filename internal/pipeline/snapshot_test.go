package pipeline

import (
	"bytes"
	"testing"

	"lotus/internal/imaging"
	"lotus/internal/tensor"
)

func snapMeta(idx int) Sample {
	return Sample{Index: idx, Label: idx % 7, FileBytes: 1000 + idx, Seed: int64(42 + idx),
		Width: 8, Height: 6, Channels: 3, Dtype: tensor.Uint8}
}

func roundTrip(t *testing.T, cs *cachedSample) *cachedSample {
	t.Helper()
	got, err := decodeSnapshot(encodeSnapshot(cs))
	if err != nil {
		t.Fatal(err)
	}
	if got.meta != cs.meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.meta, cs.meta)
	}
	if got.size != cs.size {
		t.Fatalf("size mismatch: %d vs %d", got.size, cs.size)
	}
	return got
}

func TestSnapshotRoundTripImage(t *testing.T) {
	s := snapMeta(3)
	s.Image = imaging.NewImage(8, 6)
	for i := range s.Image.Pix {
		s.Image.Pix[i] = byte(i * 3)
	}
	cs := snapshotSample(s)
	got := roundTrip(t, cs)
	if got.img == nil || !bytes.Equal(got.img.Pix, s.Image.Pix) {
		t.Fatal("image pixels did not survive the round trip")
	}
	got.release()
	cs.release()
}

func TestSnapshotRoundTripVolume(t *testing.T) {
	s := snapMeta(4)
	s.Dtype = tensor.Float32
	s.Depth, s.Channels = 3, 1
	s.Volume = imaging.NewVolume(3, 6, 8)
	for i := range s.Volume.Vox {
		s.Volume.Vox[i] = float32(i) * 0.25
	}
	cs := snapshotSample(s)
	got := roundTrip(t, cs)
	if got.vol == nil || got.vol.D != 3 || got.vol.H != 6 || got.vol.W != 8 {
		t.Fatal("volume geometry lost")
	}
	for i, v := range got.vol.Vox {
		if v != s.Volume.Vox[i] {
			t.Fatalf("vox %d: %v != %v", i, v, s.Volume.Vox[i])
		}
	}
	got.release()
	cs.release()
}

func TestSnapshotRoundTripTensor(t *testing.T) {
	for _, dt := range []tensor.DType{tensor.Uint8, tensor.Float32} {
		s := snapMeta(5)
		s.Dtype = dt
		tt := tensor.Zeros(dt, 2, 3, 4)
		for i := 0; i < tt.Len(); i++ {
			if dt == tensor.Uint8 {
				tt.U8[i] = byte(i)
			} else {
				tt.F32[i] = float32(i) * 1.5
			}
		}
		s.Tensor = tt
		cs := snapshotSample(s)
		got := roundTrip(t, cs)
		if got.ten == nil || got.ten.Dtype != dt || got.ten.Len() != tt.Len() {
			t.Fatalf("tensor shape/dtype lost for %v", dt)
		}
		if dt == tensor.Uint8 && !bytes.Equal(got.ten.U8, tt.U8) {
			t.Fatal("u8 tensor data lost")
		}
		if dt == tensor.Float32 {
			for i := range tt.F32 {
				if got.ten.F32[i] != tt.F32[i] {
					t.Fatalf("f32 tensor elem %d lost", i)
				}
			}
		}
		got.release()
		cs.release()
	}
}

func TestSnapshotRoundTripSimulatedMeta(t *testing.T) {
	// Simulated-mode samples carry no payload but keep their modeled size.
	s := snapMeta(6)
	cs := snapshotSample(s)
	got := roundTrip(t, cs)
	if got.img != nil || got.vol != nil || got.ten != nil {
		t.Fatal("meta-only snapshot grew a payload")
	}
	if got.size != int64(s.RawBytes()) {
		t.Fatalf("modeled size lost: %d != %d", got.size, s.RawBytes())
	}
	got.release()
	cs.release()
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	s := snapMeta(7)
	s.Image = imaging.NewImage(8, 6)
	cs := snapshotSample(s)
	defer cs.release()
	enc := encodeSnapshot(cs)
	cases := map[string][]byte{
		"empty":      {},
		"badVersion": append([]byte{99}, enc[1:]...),
		"truncMeta":  enc[:20],
		"truncPix":   enc[:len(enc)-5],
		"trailing":   append(append([]byte(nil), enc...), 0xFF),
		// Layout: [0] version, [1:65) meta i64s, [65] dtype, [66] tag,
		// [67:71) image width.
		"badTag":  func() []byte { b := append([]byte(nil), enc...); b[66] = 77; return b }(),
		"zeroDim": func() []byte { b := append([]byte(nil), enc...); copy(b[67:71], []byte{0, 0, 0, 0}); return b }(),
		"hugeDim": func() []byte {
			b := append([]byte(nil), enc...)
			copy(b[67:71], []byte{0xFF, 0xFF, 0xFF, 0xFF})
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := decodeSnapshot(data); err == nil {
			t.Fatalf("%s: decode accepted damaged snapshot", name)
		}
	}
}
