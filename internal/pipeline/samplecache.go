package pipeline

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"lotus/internal/imaging"
	"lotus/internal/native"
	"lotus/internal/store"
	"lotus/internal/tensor"
)

// SampleCache is the split-point sample cache: materialized post-prefix
// samples keyed by (prefix fingerprint, dataset index). The prefix of a
// Compose — its maximal run of deterministic transforms, typically storage
// read + decode + deterministic resize — produces the same bytes for a given
// sample in every epoch and every session, so the first epoch materializes
// each sample once and epochs 2..N (and concurrent sessions on the same
// spec) re-run only the cheap random suffix. This is the layer below the
// materialized-batch cache: a batch-cache hit never reaches the pipeline at
// all; a batch-cache miss on an augmented spec turns into prefix hits plus a
// suffix recompute instead of a full decode.
//
// The single-flight discipline mirrors serve.BatchCache: the first requester
// of a key claims it and computes the prefix; concurrent requesters either
// block on the in-flight entry (blocking mode — real data or emulate-time
// serving, where procs are goroutines on the wall clock) or bypass the cache
// and compute the prefix privately (non-blocking mode — simulated clocks,
// whose procs must never park on channels the clock cannot see). Entries are
// refcounted so eviction can retire a sample while readers are still copying
// it out, and the byte budget is a soft bound at one-entry granularity.
type SampleCache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	blocking bool
	// waitTimeout bounds a blocking wait on another worker's in-flight
	// prefix; on expiry the waiter computes the prefix privately, so
	// liveness never depends on another session's progress.
	waitTimeout time.Duration
	entries     map[SampleKey]*sampleEntry
	lru         *list.List // of *sampleEntry; only ready entries are listed
	// disk is the optional persistent tier below this cache: claimed keys
	// consult it before running the prefix, fulfilled snapshots spill to it
	// asynchronously, and memory evictions re-spill so a restart (or a
	// sibling job on the same spec) warm-starts instead of recomputing.
	disk *store.Store

	hits, misses, waits, evicted, abandoned, bypassed int64
}

// SampleKey identifies one materialized post-prefix sample. PrefixFP pins
// every byte-affecting parameter of the prefix (spec shape, mode,
// materialize cap, the prefix op list), so reconfigured pipelines can never
// share stale pixels. Epoch is deliberately absent: prefix bytes are
// epoch-independent, which is the entire point of the split.
type SampleKey struct {
	PrefixFP uint64
	Index    int
}

type sampleEntryState int

const (
	sampleInFlight sampleEntryState = iota
	sampleReady
	sampleAbandoned
)

// sampleEntry is one key's slot, with the same state machine as
// serve.BatchCache's cacheEntry: state and payload are written only under
// SampleCache.mu and only before close(ready), so a waiter that observed
// the close may read both without the lock.
type sampleEntry struct {
	key     SampleKey
	state   sampleEntryState
	ready   chan struct{}
	sample  *cachedSample
	size    int64
	waiters int
	elem    *list.Element
}

// cachedSample is an immutable snapshot of a post-prefix sample. The meta
// Sample carries the scalar fields with payload pointers nil'd; at most one
// of img/vol/ten holds the real payload (all nil in simulated mode, where
// samples are metadata plus a modeled size). Readers copy out, never alias:
// cached pixels are shared across workers and epochs, so handing out the
// backing buffer would let a random suffix mutate everyone's prefix.
type cachedSample struct {
	refs atomic.Int32
	meta Sample
	img  *imaging.Image
	vol  *imaging.Volume
	ten  *tensor.Tensor
	size int64
}

// snapshotSample clones a just-computed post-prefix sample into pooled
// buffers. The caller keeps its own working payload. The returned snapshot
// holds one reference (the cache's own).
func snapshotSample(s Sample) *cachedSample {
	cs := &cachedSample{meta: s}
	cs.meta.Image, cs.meta.Volume, cs.meta.Tensor = nil, nil, nil
	switch {
	case s.Image != nil:
		cs.img = imaging.GetImage(s.Image.W, s.Image.H)
		copy(cs.img.Pix, s.Image.Pix)
		cs.size = int64(len(cs.img.Pix))
	case s.Volume != nil:
		cs.vol = imaging.GetVolume(s.Volume.D, s.Volume.H, s.Volume.W)
		copy(cs.vol.Vox, s.Volume.Vox)
		cs.size = int64(len(cs.vol.Vox)) * 4
	case s.Tensor != nil && !s.Tensor.IsMeta():
		cs.ten = s.Tensor.Clone()
		cs.size = int64(s.Tensor.Bytes())
	default:
		// Simulated sample: no payload, but the entry still occupies its
		// modeled footprint so eviction behaves like the real cache would.
		cs.size = int64(s.RawBytes())
	}
	cs.refs.Store(1)
	return cs
}

func (cs *cachedSample) retain() { cs.refs.Add(1) }

func (cs *cachedSample) release() {
	if cs.refs.Add(-1) != 0 {
		return
	}
	cs.img.Release()
	cs.vol.Release()
	cs.img, cs.vol, cs.ten = nil, nil, nil
}

// restore clones the snapshot out into fresh pooled buffers, charging the
// modeled copy cost in simulated mode. The result is owned by the caller
// exactly as if the prefix had just run.
func (cs *cachedSample) restore(ctx *Ctx) Sample {
	s := cs.meta
	switch {
	case cs.img != nil:
		im := imaging.GetImage(cs.img.W, cs.img.H)
		copy(im.Pix, cs.img.Pix)
		s.Image = im
	case cs.vol != nil:
		v := imaging.GetVolume(cs.vol.D, cs.vol.H, cs.vol.W)
		copy(v.Vox, cs.vol.Vox)
		s.Volume = v
	case cs.ten != nil:
		s.Tensor = cs.ten.Clone()
	}
	if !ctx.Real() {
		ctx.Work(native.Call{Kernel: "memcpy", Bytes: s.RawBytes()})
	}
	return s
}

// NewSampleCache returns a cache bounded to budget bytes of materialized
// sample payload. blocking selects whether requesters may park on another
// worker's in-flight computation: true only when the pipeline's procs run on
// the wall clock (real data or emulate-time serving); a simulated clock's
// procs must never block on channels the clock cannot see, so they bypass
// in-flight entries instead.
func NewSampleCache(budget int64, blocking bool) *SampleCache {
	return &SampleCache{
		budget:      budget,
		blocking:    blocking,
		waitTimeout: 30 * time.Second,
		entries:     make(map[SampleKey]*sampleEntry),
		lru:         list.New(),
	}
}

// SetDisk attaches the persistent tier. Call before the cache is shared
// across goroutines (the field is read without synchronization afterwards).
func (sc *SampleCache) SetDisk(st *store.Store) { sc.disk = st }

// SetBudget retargets the byte budget at runtime (the controller's cache
// knob). Shrinking evicts LRU-first down to the new bound immediately;
// victims re-spill to the disk tier, so a budget cut demotes entries
// instead of destroying them.
func (sc *SampleCache) SetBudget(budget int64) {
	if budget <= 0 {
		return
	}
	sc.mu.Lock()
	sc.budget = budget
	victims := sc.evictOverLocked()
	sc.mu.Unlock()
	for _, v := range victims {
		if sc.disk != nil && !sc.disk.Contains(diskSampleKey(v.key)) {
			sc.disk.PutAsync(diskSampleKey(v.key), encodeSnapshot(v.sample))
		}
		v.sample.release()
	}
}

func diskSampleKey(key SampleKey) store.Key {
	return store.Key{Kind: store.KindSample, FP: key.PrefixFP, A: uint64(key.Index)}
}

// diskLoad tries to restore a claimed key's snapshot from the persistent
// tier. An undecodable record (despite the store's checksum, e.g. a codec
// version skew) is dropped from the disk index so it is recomputed and
// re-spilled instead of failing forever.
func (sc *SampleCache) diskLoad(key SampleKey) *cachedSample {
	if sc.disk == nil {
		return nil
	}
	raw, ok := sc.disk.Get(diskSampleKey(key), nil)
	if !ok {
		return nil
	}
	cs, err := decodeSnapshot(raw)
	if err != nil {
		sc.disk.Drop(diskSampleKey(key))
		return nil
	}
	return cs
}

// materialize returns the post-prefix sample for s, from the cache when
// possible: hit (copy out), claim (consult the disk tier, else run the
// prefix once, publish), wait (blocking mode), or bypass (non-blocking mode
// / timed-out wait).
func (sc *SampleCache) materialize(ctx *Ctx, c *Compose, pid, batchID, split int, s Sample) Sample {
	key := SampleKey{PrefixFP: ctx.PrefixFP, Index: s.Index}
	for {
		hit, wait, claimed := sc.getOrClaim(key)
		if hit != nil {
			out := hit.restore(ctx)
			hit.release()
			return out
		}
		if claimed {
			if cs := sc.diskLoad(key); cs != nil {
				// Publish the disk copy as the memory entry. The extra
				// retain pays for our own restore; fulfill's spill is
				// skipped since the bytes are already on disk.
				cs.retain()
				sc.fulfill(key, cs, false)
				out := cs.restore(ctx)
				cs.release()
				return out
			}
			return sc.computeAndFulfill(ctx, c, pid, batchID, split, key, s)
		}
		if !sc.blocking {
			sc.mu.Lock()
			sc.bypassed++
			sc.mu.Unlock()
			return c.applyRange(ctx, pid, batchID, s, 0, split)
		}
		cs, ok := sc.wait(wait)
		if cs != nil {
			out := cs.restore(ctx)
			cs.release()
			return out
		}
		if !ok {
			// Timed out: compute privately without touching the stuck claim.
			sc.mu.Lock()
			sc.bypassed++
			sc.mu.Unlock()
			return c.applyRange(ctx, pid, batchID, s, 0, split)
		}
		// Owner abandoned: loop and race for the claim.
	}
}

// computeAndFulfill runs the prefix for a claimed key and publishes the
// snapshot. A panic in the prefix (an injected read error surfacing through
// ReadBlob, a poisoned dataset) abandons the claim before propagating, so
// waiters wake and retry instead of parking forever.
func (sc *SampleCache) computeAndFulfill(ctx *Ctx, c *Compose, pid, batchID, split int, key SampleKey, s Sample) Sample {
	done := false
	defer func() {
		if !done {
			sc.abandon(key)
		}
	}()
	out := c.applyRange(ctx, pid, batchID, s, 0, split)
	sc.fulfill(key, snapshotSample(out), true)
	done = true
	return out
}

// getOrClaim mirrors BatchCache.GetOrClaim: exactly one of hit / wait /
// claimed is meaningful. A hit carries a reference for the caller; a wait
// return registers the caller (its reference is pre-paid by fulfill); a
// claim obligates the caller to fulfill or abandon.
func (sc *SampleCache) getOrClaim(key SampleKey) (hit *cachedSample, wait *sampleEntry, claimed bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if e, ok := sc.entries[key]; ok {
		if e.state == sampleReady {
			sc.hits++
			sc.lru.MoveToBack(e.elem)
			e.sample.retain()
			return e.sample, nil, false
		}
		if !sc.blocking {
			// Bypassers never register; the caller handles the bypass.
			return nil, e, false
		}
		sc.waits++
		e.waiters++
		return nil, e, false
	}
	sc.misses++
	sc.entries[key] = &sampleEntry{key: key, ready: make(chan struct{})}
	return nil, nil, true
}

// wait parks on an in-flight entry. cs != nil: ready, reference pre-paid.
// cs == nil, ok == true: abandoned, retry the claim. cs == nil, ok == false:
// timed out (the waiter was unregistered; compute privately).
func (sc *SampleCache) wait(e *sampleEntry) (cs *cachedSample, ok bool) {
	var timeoutCh <-chan time.Time
	if sc.waitTimeout > 0 {
		t := time.NewTimer(sc.waitTimeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-e.ready:
		if e.state == sampleReady {
			return e.sample, true
		}
		return nil, true // abandoned
	case <-timeoutCh:
		sc.unregister(e)
		return nil, false
	}
}

// unregister withdraws a waiter that gave up; if the entry resolved
// concurrently, the pre-paid reference is returned instead.
func (sc *SampleCache) unregister(e *sampleEntry) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	select {
	case <-e.ready:
		if e.state == sampleReady {
			e.sample.release()
		}
	default:
		e.waiters--
	}
}

// fulfill publishes the snapshot for a claimed key: the snapshot arrives
// holding the cache's reference, one more is pre-paid per registered waiter,
// the entry joins the LRU, and overflow victims are released outside the
// lock. spill asks for an async write-through to the disk tier (false when
// the snapshot itself came from disk); eviction victims re-spill regardless
// so budget pressure demotes entries instead of destroying them.
func (sc *SampleCache) fulfill(key SampleKey, cs *cachedSample, spill bool) {
	sc.mu.Lock()
	e, ok := sc.entries[key]
	if !ok || e.state != sampleInFlight {
		sc.mu.Unlock()
		panic("pipeline: SampleCache fulfill on a key the caller does not own")
	}
	for i := 0; i < e.waiters; i++ {
		cs.retain()
	}
	e.sample = cs
	e.size = cs.size
	e.state = sampleReady
	e.elem = sc.lru.PushBack(e)
	sc.used += e.size
	victims := sc.evictOverLocked()
	close(e.ready)
	sc.mu.Unlock()
	if spill && sc.disk != nil {
		sc.disk.PutAsync(diskSampleKey(key), encodeSnapshot(cs))
	}
	for _, v := range victims {
		if sc.disk != nil && !sc.disk.Contains(diskSampleKey(v.key)) {
			sc.disk.PutAsync(diskSampleKey(v.key), encodeSnapshot(v.sample))
		}
		v.sample.release()
	}
}

// abandon resolves a claimed key without data; waiters wake and race to
// re-claim. Abandoning a key that is not an in-flight claim is a no-op.
func (sc *SampleCache) abandon(key SampleKey) {
	sc.mu.Lock()
	e, ok := sc.entries[key]
	if !ok || e.state != sampleInFlight {
		sc.mu.Unlock()
		return
	}
	e.state = sampleAbandoned
	delete(sc.entries, key)
	sc.abandoned++
	close(e.ready)
	sc.mu.Unlock()
}

// evictOverLocked pops LRU entries until used fits the budget, returning the
// victim entries (key + snapshot) so the caller can re-spill them to the
// disk tier and release the cache references outside the lock. Only ready
// entries are listed; refcounts keep a victim's pixels alive for readers
// still copying them out.
func (sc *SampleCache) evictOverLocked() []*sampleEntry {
	var victims []*sampleEntry
	for sc.used > sc.budget && sc.lru.Len() > 0 {
		e := sc.lru.Remove(sc.lru.Front()).(*sampleEntry)
		delete(sc.entries, e.key)
		sc.used -= e.size
		sc.evicted++
		victims = append(victims, e)
	}
	return victims
}

// SampleCacheStats is the JSON form of the cache counters for /metrics.
// Misses count prefix executions that populated the cache; bypassed counts
// prefix executions that ran privately past an in-flight entry (simulated
// clocks, timed-out waits).
type SampleCacheStats struct {
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	SingleflightWait int64 `json:"singleflight_waits"`
	Bypassed         int64 `json:"bypassed"`
	Evicted          int64 `json:"evicted"`
	Abandoned        int64 `json:"abandoned"`
	Entries          int   `json:"entries"`
	BytesUsed        int64 `json:"bytes_used"`
	BytesBudget      int64 `json:"bytes_budget"`
}

// Stats returns a consistent copy of the counters.
func (sc *SampleCache) Stats() SampleCacheStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return SampleCacheStats{
		Hits:             sc.hits,
		Misses:           sc.misses,
		SingleflightWait: sc.waits,
		Bypassed:         sc.bypassed,
		Evicted:          sc.evicted,
		Abandoned:        sc.abandoned,
		Entries:          len(sc.entries),
		BytesUsed:        sc.used,
		BytesBudget:      sc.budget,
	}
}
