package pipeline

import (
	"strings"
	"testing"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
)

// faultyTransform panics on specific sample indices — corrupt-record
// injection.
type faultyTransform struct {
	failOn map[int]bool
}

func (f *faultyTransform) Name() string        { return "Faulty" }
func (f *faultyTransform) Kernels() []string   { return []string{"memcpy"} }
func (f *faultyTransform) Deterministic() bool { return false }

func (f *faultyTransform) Apply(ctx *Ctx, s Sample) Sample {
	if f.failOn[s.Index] {
		panic("corrupt record")
	}
	ctx.Work(native.Call{Kernel: "memcpy", Bytes: 1024})
	return s
}

func faultyLoader(clk clock.Clock, n, batch, workers int, failOn map[int]bool, policy ErrorPolicy) *DataLoader {
	ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
	c := NewCompose(
		&Loader{IO: data.DefaultIO()},
		&faultyTransform{failOn: failOn},
		&ToTensor{},
	)
	return NewDataLoader(clk, NewImageFolder(ds, c), Config{
		BatchSize: batch, NumWorkers: workers, Seed: 1, OnError: policy,
		Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
}

func TestWorkerPanicFailsEpochWithError(t *testing.T) {
	sim := clock.NewSim()
	dl := faultyLoader(sim, 40, 10, 2, map[int]bool{25: true}, FailEpoch)
	var consumed int
	var err error
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				err = it.Err()
				return
			}
			consumed++
		}
	})
	if err == nil {
		t.Fatal("epoch should fail with the worker's error")
	}
	if !strings.Contains(err.Error(), "corrupt record") || !strings.Contains(err.Error(), "worker") {
		t.Fatalf("error should carry worker context and cause: %v", err)
	}
	if consumed >= 4 {
		t.Fatalf("consumed %d batches; the failed batch must not be delivered", consumed)
	}
}

func TestWorkerPanicSkipBatchContinues(t *testing.T) {
	sim := clock.NewSim()
	// Sample 25 lands in batch 2 (indices 20-29, unshuffled).
	dl := faultyLoader(sim, 40, 10, 2, map[int]bool{25: true}, SkipBatch)
	var ids []int
	var skipped []int
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				skipped = it.Skipped()
				if it.Err() != nil {
					t.Errorf("SkipBatch must not set Err: %v", it.Err())
				}
				return
			}
			ids = append(ids, b.ID)
		}
	})
	if len(ids) != 3 {
		t.Fatalf("delivered %d batches, want 3 (one skipped)", len(ids))
	}
	if len(skipped) != 1 || skipped[0] != 2 {
		t.Fatalf("skipped = %v, want [2]", skipped)
	}
	for _, id := range ids {
		if id == 2 {
			t.Fatal("the corrupt batch was delivered")
		}
	}
}

func TestMultipleFailuresSkipBatch(t *testing.T) {
	sim := clock.NewSim()
	dl := faultyLoader(sim, 60, 10, 3, map[int]bool{5: true, 35: true, 55: true}, SkipBatch)
	delivered := 0
	var skipped []int
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				skipped = it.Skipped()
				return
			}
			delivered++
		}
	})
	if delivered != 3 || len(skipped) != 3 {
		t.Fatalf("delivered %d, skipped %v", delivered, skipped)
	}
}

func TestFailEpochTerminatesWorkersCleanly(t *testing.T) {
	// After a FailEpoch teardown, the simulation must still finish (all
	// workers exit) — sim.Run would panic on deadlock otherwise.
	sim := clock.NewSim()
	dl := faultyLoader(sim, 100, 10, 4, map[int]bool{3: true}, FailEpoch)
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				return
			}
		}
	})
}

func TestNoFailuresNoErrNoSkips(t *testing.T) {
	sim := clock.NewSim()
	dl := faultyLoader(sim, 30, 10, 2, nil, FailEpoch)
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		n := 0
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
			n++
		}
		if n != 3 || it.Err() != nil || len(it.Skipped()) != 0 {
			t.Errorf("clean run: n=%d err=%v skipped=%v", n, it.Err(), it.Skipped())
		}
	})
}
