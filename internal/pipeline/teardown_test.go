package pipeline

import (
	"strings"
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/faultinject"
	"lotus/internal/native"
)

// TestAbortDrainCreditsAllInFlightWork pins the Abort/Drain teardown fix: a
// worker mid-batch at Abort time puts its result on the data queue *after*
// any non-blocking sweep would have returned. Drain must block until every
// dispatched batch is accounted for, so no stale result stays queued and no
// outstanding work stays uncredited.
func TestAbortDrainCreditsAllInFlightWork(t *testing.T) {
	sim := clock.NewSim()
	dl := faultyLoader(sim, 80, 10, 4, nil, FailEpoch)
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		// Consume a couple of batches so several more are dispatched and
		// in flight, then abort mid-epoch.
		for i := 0; i < 2; i++ {
			if _, ok := it.Next(p); !ok {
				t.Error("epoch ended before abort point")
				return
			}
		}
		it.Abort()
		it.Drain(p)

		// Every dispatched batch produced exactly one result and Drain saw
		// them all: nothing left on the data queue...
		if res, ok := dl.dataQ.TryGet(); ok {
			t.Errorf("stale result for batch %d left on the data queue after Drain", res.batchID)
		}
		if it.seen != dl.sendIdx {
			t.Errorf("Drain consumed %d results for %d dispatched batches", it.seen, dl.sendIdx)
		}
		// ...and every worker's outstanding-work estimate was credited back.
		for w, o := range dl.outstanding {
			if o != 0 {
				t.Errorf("worker %d still carries %.1f uncredited outstanding work", w, o)
			}
		}
		if _, ok := it.Next(p); ok {
			t.Error("iterator yielded a batch after Abort")
		}
	})
}

// TestBuildBatchPlanBatchesAreIndependent pins the batch-aliasing fix: plan
// batches used to be sub-slices of one shared order array, so appending to
// one batch (within its capacity) silently overwrote its neighbor's indices.
func TestBuildBatchPlanBatchesAreIndependent(t *testing.T) {
	plan := BuildBatchPlan(20, 5, false, false, 1)
	if len(plan) != 4 {
		t.Fatalf("plan has %d batches, want 4", len(plan))
	}
	want1 := append([]int(nil), plan[1]...)
	// With aliased sub-slices this append lands inside plan[1]'s backing
	// array and corrupts its first index.
	plan[0] = append(plan[0], 999)
	for i, idx := range plan[1] {
		if idx != want1[i] {
			t.Fatalf("appending to batch 0 corrupted batch 1: got %v, want %v", plan[1], want1)
		}
	}
}

// TestInjectedReadErrorsSkipExactlyPredictedBatches: the index-keyed fault
// decisions are schedule-independent, so FailingBatches' prediction must
// match Iterator.Skipped exactly, whatever the worker interleaving.
func TestInjectedReadErrorsSkipExactlyPredictedBatches(t *testing.T) {
	inj := faultinject.New(faultinject.Spec{Seed: 9, ReadErrorNth: 7})
	n, batch := 60, 10
	plan := BuildBatchPlan(n, batch, false, false, 1)
	predicted := inj.FailingBatches(plan)
	if len(predicted) == 0 {
		t.Fatal("test needs at least one predicted failing batch; pick another seed")
	}

	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
	c := NewCompose(&Loader{IO: data.DefaultIO()}, &ToTensor{})
	dl := NewDataLoader(sim, NewImageFolder(ds, c), Config{
		BatchSize: batch, NumWorkers: 3, Seed: 1, OnError: SkipBatch,
		Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
		Faults: inj,
	})
	var skipped []int
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				skipped = it.Skipped()
				if it.Err() != nil {
					t.Errorf("SkipBatch run set Err: %v", it.Err())
				}
				return
			}
		}
	})
	if len(skipped) != len(predicted) {
		t.Fatalf("skipped %v, predicted %v", skipped, predicted)
	}
	seen := map[int]bool{}
	for _, id := range skipped {
		seen[id] = true
	}
	for _, id := range predicted {
		if !seen[id] {
			t.Fatalf("predicted failing batch %d was not skipped (skipped %v)", id, skipped)
		}
	}
	if got := inj.Counts().ReadErrors; got == 0 {
		t.Fatal("injector fired no read errors")
	}
}

// TestInjectedWorkerStallDelaysBatch: a batch stall must delay the batch's
// arrival (visible virtual time passes) without failing it.
func TestInjectedWorkerStallDelaysBatch(t *testing.T) {
	run := func(inj *faultinject.Injector) time.Duration {
		sim := clock.NewSim()
		ds := data.NewImageDataset(data.ImageNetConfig(20, 1))
		c := NewCompose(&Loader{IO: data.DefaultIO()}, &ToTensor{})
		dl := NewDataLoader(sim, NewImageFolder(ds, c), Config{
			BatchSize: 5, NumWorkers: 2, Seed: 1,
			Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
			Faults: inj,
		})
		var end time.Time
		sim.Run("main", func(p clock.Proc) {
			it := dl.Start(p)
			n := 0
			for {
				if _, ok := it.Next(p); !ok {
					break
				}
				n++
			}
			if n != 4 || it.Err() != nil {
				t.Errorf("stall run delivered %d batches, err %v", n, it.Err())
			}
			end = p.Now()
		})
		return end.Sub(clock.Epoch)
	}
	base := run(nil)
	stalled := run(faultinject.New(faultinject.Spec{Seed: 3, StallNth: 1, WorkerStall: 500 * time.Millisecond}))
	if stalled <= base {
		t.Fatalf("stalled epoch took %v, baseline %v; injected stalls must cost virtual time", stalled, base)
	}
}

// TestInjectedReadErrorSurfacesAsInjected: under FailEpoch the surfaced
// error must be recognizable as the injected sentinel, not a generic panic.
func TestInjectedReadErrorSurfacesAsInjected(t *testing.T) {
	inj := faultinject.New(faultinject.Spec{Seed: 9, ReadErrorNth: 7})
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(60, 1))
	c := NewCompose(&Loader{IO: data.DefaultIO()}, &ToTensor{})
	dl := NewDataLoader(sim, NewImageFolder(ds, c), Config{
		BatchSize: 10, NumWorkers: 2, Seed: 1, OnError: FailEpoch,
		Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
		Faults: inj,
	})
	var err error
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				err = it.Err()
				return
			}
		}
	})
	if err == nil {
		t.Fatal("FailEpoch run with injected read errors must fail")
	}
	// The worker wraps the panic value into an error string; the sentinel
	// text must survive so operators can tell injected faults from real ones.
	if !strings.Contains(err.Error(), faultinject.ErrInjectedRead.Error()) {
		t.Fatalf("surfaced error does not identify the injected read: %v", err)
	}
}
