package pipeline

// Kernel-wiring tests: each transform's simulated execution must issue
// exactly the kernels its GroundTruth declares (no more — spurious kernels
// would corrupt LotusMap validation — and byte counts must track the
// sample's geometry). A recording engine observes the actual calls.

import (
	"testing"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
	"lotus/internal/tensor"
)

// observeKernels applies one transform to the sample and returns the
// invoked kernels with their byte counts.
func observeKernels(t *testing.T, tf Transform, s Sample, arch native.Arch) map[string]int {
	t.Helper()
	engine := native.NewEngine(arch, native.DefaultCPU())
	rec := native.NewRecording()
	engine.Attach(rec)
	sim := clock.NewSim()
	sim.Run("root", func(p clock.Proc) {
		ctx := &Ctx{Proc: p, Engine: engine, Thread: &native.Thread{ID: 1, Cursor: clock.Epoch}, Mode: Simulated, Seed: 1}
		tf.Apply(ctx, s)
	})
	engine.Detach()
	out := map[string]int{}
	for _, th := range rec.Threads() {
		for _, inv := range rec.Timeline(th) {
			out[inv.Kernel.Name] += inv.Bytes
		}
	}
	return out
}

// assertWithinGroundTruth fails if any invoked kernel is not declared.
func assertWithinGroundTruth(t *testing.T, tf Transform, got map[string]int) {
	t.Helper()
	declared := map[string]bool{}
	for _, k := range tf.Kernels() {
		declared[k] = true
	}
	for k := range got {
		if !declared[k] {
			t.Errorf("%s invoked undeclared kernel %q", tf.Name(), k)
		}
	}
}

func icSample(w, h int) Sample {
	return Sample{Index: 3, FileBytes: 100 << 10, Seed: 8, Width: w, Height: h, Channels: 3, Dtype: tensor.Uint8}
}

func TestLoaderKernelWiring(t *testing.T) {
	tf := &Loader{IO: data.IOModel{}}
	for _, arch := range []native.Arch{native.Intel, native.AMD} {
		got := observeKernels(t, tf, icSample(400, 300), arch)
		assertWithinGroundTruth(t, tf, got)
		raw := 400 * 300 * 3
		if got["decode_mcu"] != 100<<10 {
			t.Fatalf("%s: decode_mcu consumed %d bytes, want the file size", arch, got["decode_mcu"])
		}
		if got["ycc_rgb_convert"] != raw {
			t.Fatalf("%s: ycc consumed %d, want raw %d", arch, got["ycc_rgb_convert"], raw)
		}
		// IDCT covers the full raw plane whether or not the 16x16 variant
		// split off part of it.
		if got["jpeg_idct_islow"]+got["jpeg_idct_16x16"] != raw {
			t.Fatalf("%s: idct total %d, want %d", arch, got["jpeg_idct_islow"]+got["jpeg_idct_16x16"], raw)
		}
	}
	// Vendor-specific kernels appear only on their vendor.
	intel := observeKernels(t, tf, icSample(400, 300), native.Intel)
	amd := observeKernels(t, tf, icSample(400, 300), native.AMD)
	if _, ok := intel["sep_upsample"]; ok {
		t.Fatal("sep_upsample on Intel")
	}
	if _, ok := amd["calloc"]; ok {
		t.Fatal("calloc on AMD")
	}
	if _, ok := amd["sep_upsample"]; !ok {
		t.Fatal("AMD loader missing sep_upsample")
	}
}

func TestRandomResizedCropKernelWiring(t *testing.T) {
	tf := &RandomResizedCrop{Size: 224}
	got := observeKernels(t, tf, icSample(640, 480), native.Intel)
	assertWithinGroundTruth(t, tf, got)
	if got["ImagingResampleHorizontal_8bpc"] == 0 || got["ImagingResampleVertical_8bpc"] == 0 {
		t.Fatalf("resample kernels missing: %v", got)
	}
	// The vertical pass touches at least the 224x224 output.
	if got["ImagingResampleVertical_8bpc"] < 224*224*3 {
		t.Fatalf("vertical resample bytes %d below output size", got["ImagingResampleVertical_8bpc"])
	}
}

func TestToTensorAndNormalizeKernelWiring(t *testing.T) {
	s := icSample(224, 224)
	tt := &ToTensor{}
	got := observeKernels(t, tt, s, native.Intel)
	assertWithinGroundTruth(t, tt, got)
	if got["convert_u8_f32"] == 0 {
		t.Fatalf("ToTensor kernels: %v", got)
	}

	s.Dtype = tensor.Float32
	norm := &Normalize{Mean: []float32{0, 0, 0}, Std: []float32{1, 1, 1}}
	got = observeKernels(t, norm, s, native.Intel)
	assertWithinGroundTruth(t, norm, got)
	if got["normalize_f32"] != 224*224*3*4 {
		t.Fatalf("normalize bytes %d, want f32 plane", got["normalize_f32"])
	}
}

func TestVolumeOpsKernelWiring(t *testing.T) {
	vs := Sample{Index: 1, FileBytes: 8 << 20, Seed: 3, Depth: 64, Height: 128, Width: 128, Channels: 1, Dtype: tensor.Float32}
	raw := 64 * 128 * 128 * 4

	vl := &VolumeLoader{IO: data.IOModel{}}
	got := observeKernels(t, vl, vs, native.Intel)
	assertWithinGroundTruth(t, vl, got)
	if got["npy_parse"] != raw {
		t.Fatalf("npy_parse %d, want %d", got["npy_parse"], raw)
	}

	cast := &Cast{}
	got = observeKernels(t, cast, vs, native.Intel)
	assertWithinGroundTruth(t, cast, got)
	if got["cast_f32_u8"] != raw {
		t.Fatalf("cast bytes %d, want %d", got["cast_f32_u8"], raw)
	}

	// Post-cast sample: noise cost still follows the element count in f32.
	u8 := vs
	u8.Dtype = tensor.Uint8
	gn := &GaussianNoise{P: 1}
	got = observeKernels(t, gn, u8, native.Intel)
	assertWithinGroundTruth(t, gn, got)
	if got["gaussian_noise_f32"] != raw {
		t.Fatalf("noise bytes %d, want element count x4 = %d", got["gaussian_noise_f32"], raw)
	}
}

func TestSkippedBranchesInvokeNothing(t *testing.T) {
	// P=0 effectively disables the op's random branch via the sample RNG;
	// use probabilities that the per-sample stream resolves to "skip".
	vs := Sample{Index: 2, FileBytes: 1 << 20, Seed: 5, Depth: 16, Height: 32, Width: 32, Channels: 1, Dtype: tensor.Float32}
	rba := &RandomBrightnessAugmentation{P: 0.0000001}
	got := observeKernels(t, rba, vs, native.Intel)
	if len(got) != 0 {
		t.Fatalf("skipped RBA still invoked kernels: %v", got)
	}
}

func TestCollateNKernelWiring(t *testing.T) {
	cn := &CollateN{N: 4}
	got := observeKernels(t, cn, icSample(224, 224), native.Intel)
	assertWithinGroundTruth(t, cn, got)
	want := 4 * 224 * 224 * 3 // four copies of the sample's uint8 payload
	if got["cat_serial_kernel"] != want {
		t.Fatalf("collate bytes %d, want %d", got["cat_serial_kernel"], want)
	}
}
