package pipeline

import (
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
)

func runIterableEpoch(t *testing.T, n, batch, workers int, hooks *Hooks) []*Batch {
	t.Helper()
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
	c := icCompose(hooks)
	stream := &ImageStream{Folder: NewImageFolder(ds, c)}
	il := NewIterableLoader(sim, stream, Config{
		BatchSize:  batch,
		NumWorkers: workers,
		Seed:       1,
		Hooks:      hooks,
		Mode:       Simulated,
		Engine:     native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	var batches []*Batch
	sim.Run("main", func(p clock.Proc) {
		it := il.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			batches = append(batches, b)
		}
	})
	return batches
}

func TestIterableDeliversEverySampleOnce(t *testing.T) {
	batches := runIterableEpoch(t, 97, 10, 3, nil)
	seen := map[int]bool{}
	total := 0
	for _, b := range batches {
		for _, idx := range b.Indices {
			if seen[idx] {
				t.Fatalf("index %d delivered twice", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != 97 {
		t.Fatalf("delivered %d samples, want 97", total)
	}
}

func TestIterableConsumptionInTokenOrder(t *testing.T) {
	batches := runIterableEpoch(t, 120, 8, 4, nil)
	last := -1
	for _, b := range batches {
		if b.ID <= last {
			t.Fatalf("batch %d consumed after %d", b.ID, last)
		}
		last = b.ID
	}
}

func TestIterableShardingByWorker(t *testing.T) {
	// Worker w yields indices w, w+n, w+2n... — each batch's indices must
	// share a residue class.
	batches := runIterableEpoch(t, 90, 5, 3, nil)
	for _, b := range batches {
		res := b.Indices[0] % 3
		for _, idx := range b.Indices {
			if idx%3 != res {
				t.Fatalf("batch %d mixes shards: %v", b.ID, b.Indices)
			}
		}
		if res != b.WorkerID {
			t.Fatalf("batch %d from worker %d carries shard %d", b.ID, b.WorkerID, res)
		}
	}
}

func TestIterableUnevenShards(t *testing.T) {
	// 11 samples over 4 workers: shards of 3,3,3,2 — partial batches and
	// early worker exhaustion must all resolve without deadlock.
	batches := runIterableEpoch(t, 11, 2, 4, nil)
	total := 0
	for _, b := range batches {
		total += b.Size()
	}
	if total != 11 {
		t.Fatalf("delivered %d samples, want 11", total)
	}
}

func TestIterableSingleWorkerDegenerate(t *testing.T) {
	batches := runIterableEpoch(t, 7, 3, 1, nil)
	if len(batches) != 3 {
		t.Fatalf("%d batches, want 3 (3+3+1)", len(batches))
	}
	if batches[2].Size() != 1 {
		t.Fatalf("last batch size %d", batches[2].Size())
	}
}

func TestIterableMoreWorkersThanSamples(t *testing.T) {
	batches := runIterableEpoch(t, 3, 4, 8, nil)
	total := 0
	for _, b := range batches {
		total += b.Size()
	}
	if total != 3 {
		t.Fatalf("delivered %d samples, want 3", total)
	}
}

func TestIterableHooksFireLikeMapStyle(t *testing.T) {
	var pre, wait, cons, ops int
	hooks := &Hooks{
		OnOp:                func(pid, batchID, sample int, op string, start time.Time, dur time.Duration) { ops++ },
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) { pre++ },
		OnBatchWait:         func(pid, batchID int, start time.Time, dur time.Duration) { wait++ },
		OnBatchConsumed:     func(pid, batchID int, start time.Time, dur time.Duration) { cons++ },
	}
	batches := runIterableEpoch(t, 40, 5, 2, hooks)
	if pre != len(batches) || cons != len(batches) {
		t.Fatalf("pre=%d cons=%d, batches=%d", pre, cons, len(batches))
	}
	if wait < len(batches) {
		t.Fatalf("wait hooks %d < %d", wait, len(batches))
	}
	// 40 samples x 5 transforms + collates.
	if ops != 40*5+len(batches) {
		t.Fatalf("op hooks %d", ops)
	}
}

func TestIterableDropLast(t *testing.T) {
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(11, 1))
	stream := &ImageStream{Folder: NewImageFolder(ds, icCompose(nil))}
	il := NewIterableLoader(sim, stream, Config{
		BatchSize: 2, NumWorkers: 2, DropLast: true, Seed: 1,
		Mode: Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	total := 0
	sim.Run("main", func(p clock.Proc) {
		it := il.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			if b.Size() != 2 {
				t.Errorf("DropLast leaked a partial batch of %d", b.Size())
			}
			total += b.Size()
		}
	})
	// Shards are 6 and 5 samples; DropLast keeps 3+2 full batches.
	if total != 10 {
		t.Fatalf("delivered %d samples, want 10", total)
	}
}

func TestIterableStartTwicePanics(t *testing.T) {
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(4, 1))
	il := NewIterableLoader(sim, &ImageStream{Folder: NewImageFolder(ds, icCompose(nil))}, Config{
		BatchSize: 2, NumWorkers: 1, Mode: Simulated,
		Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	panicked := false
	sim.Run("main", func(p clock.Proc) {
		it := il.Start(p)
		func() {
			defer func() { panicked = recover() != nil }()
			il.Start(p)
		}()
		// Drain the epoch so the workers terminate cleanly.
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	if !panicked {
		t.Fatal("expected second Start to panic")
	}
}
