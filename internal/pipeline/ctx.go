package pipeline

import (
	"time"

	"lotus/internal/clock"
	"lotus/internal/faultinject"
	"lotus/internal/native"
	"lotus/internal/rng"
)

// Mode selects how transforms execute.
type Mode int

const (
	// Simulated: samples carry metadata only; work costs come from the
	// native cost model and advance virtual time. All characterization
	// experiments run simulated.
	Simulated Mode = iota
	// RealData: samples carry actual pixels; transforms run the real
	// kernels from package imaging and elapsed time is genuine wall time.
	RealData
)

// Ctx is the per-worker execution context threaded through transforms.
type Ctx struct {
	// Proc is the clock proc the worker runs under.
	Proc clock.Proc
	// Engine executes native kernel calls (may be nil in RealData mode).
	Engine *native.Engine
	// Thread is this worker's native timeline cursor.
	Thread *native.Thread
	// Mode selects simulated or real execution.
	Mode Mode
	// Seed is the run-level randomness root.
	Seed int64
	// Epoch is mixed into the per-sample random streams (SampleRNG, OpRNG,
	// BatchRNG) through epochSalt — the single seam that makes augmented
	// bytes vary across epochs while staying schedule-independent. It does
	// NOT feed the epoch batch plan; that derives from EpochSeed so plans
	// keep their historical shuffles.
	Epoch int
	// WorkScale multiplies simulated work durations; profiler-overhead
	// models (Table III) use it to represent sampling interference.
	WorkScale float64
	// MaterializeDim caps synthesized image/volume resolution in RealData
	// mode.
	MaterializeDim int
	// Faults is the deterministic fault-injection layer consulted by the
	// storage-facing transforms (nil injects nothing).
	Faults *faultinject.Injector
	// SampleCache, when non-nil, serves materialized post-prefix samples to
	// Compose.Apply so prefix hits skip decode entirely. PrefixFP is the
	// prefix fingerprint the cache keys entries under.
	SampleCache *SampleCache
	PrefixFP    uint64

	// rngSample and rngOp are per-worker scratch generators reused by OpRNG.
	// math/rand's source is ~5 KB; building one per sample per op used to be
	// the largest heap cost of a simulated epoch.
	rngSample *rng.Stream
	rngOp     *rng.Stream
	// callScratch is the reusable kernel-call buffer handed out by Calls.
	callScratch []native.Call
}

// Real reports whether transforms should manipulate actual payloads.
func (c *Ctx) Real() bool { return c.Mode == RealData }

// epochSalt folds the epoch into a seed. This is the one documented seam
// through which epochs change per-sample randomness: every random stream
// XORs it in, so augmented bytes differ across epochs yet remain a pure
// function of (seed, epoch, index) — identical under any worker count or
// dispatch schedule. Epoch 0 salts to zero, preserving every historical
// single-epoch random sequence bit for bit.
func epochSalt(epoch int) int64 {
	if epoch == 0 {
		return 0
	}
	// Golden-ratio odd multiplier; computed in uint64 because the constant
	// exceeds int64 range.
	return int64(uint64(epoch) * 0x9E3779B97F4A7C15)
}

// SampleRNG returns the deterministic randomness stream for one sample.
// Derivation from (seed, epoch, index) — not from the worker — keeps a
// sample's random transform decisions identical regardless of which worker
// processes it or how many workers exist.
func (c *Ctx) SampleRNG(index int) *rng.Stream {
	return rng.New(c.Seed^epochSalt(c.Epoch)^int64(index)*2654435761, "sample")
}

// BatchRNG returns the deterministic stream for batch-level decisions.
func (c *Ctx) BatchRNG(batchID int) *rng.Stream {
	return rng.New(c.Seed^epochSalt(c.Epoch)^int64(batchID)*40503, "batch")
}

// OpRNG returns the stream SampleRNG(index).Derive(name) would — the same
// seed derivation, so every historical random sequence is preserved —
// without allocating either generator. The returned stream aliases worker
// scratch state: it is valid until the next OpRNG call on this Ctx, which
// matches how transforms use it (draw parameters, then discard). A Ctx is
// per-worker and workers are single-threaded, so there is no sharing.
func (c *Ctx) OpRNG(index int, name string) *rng.Stream {
	if c.rngSample == nil {
		c.rngSample = rng.NewFromSeed(0)
		c.rngOp = rng.NewFromSeed(0)
	}
	c.rngSample.Reseed(c.Seed^epochSalt(c.Epoch)^int64(index)*2654435761, "sample")
	return c.rngSample.DeriveInto(c.rngOp, name)
}

// Calls returns the worker's reusable kernel-call scratch buffer, emptied.
// Build the op's call list with append and execute it with WorkCalls; the
// buffer is retained across ops, so steady-state simulated transforms issue
// no allocations at all.
func (c *Ctx) Calls() []native.Call {
	if c.callScratch == nil {
		c.callScratch = make([]native.Call, 0, 16)
	}
	return c.callScratch[:0]
}

// Work executes native kernel calls in simulated mode: it aligns the native
// timeline cursor with the clock, records the invocations (if a profiling
// session is attached), and advances virtual time by the modeled duration.
// In RealData mode it is a no-op — the caller performs the actual kernels
// and real time elapses by itself.
func (c *Ctx) Work(calls ...native.Call) {
	c.WorkCalls(calls)
}

// WorkCalls is Work for a call list built in the Calls scratch buffer. The
// (possibly grown) buffer is adopted back into the Ctx for the next op —
// the engine records invocations by value and never retains the slice.
func (c *Ctx) WorkCalls(calls []native.Call) {
	if cap(calls) > cap(c.callScratch) {
		c.callScratch = calls[:0]
	}
	if c.Mode == RealData || c.Engine == nil {
		return
	}
	c.Thread.Cursor = c.Proc.Now()
	d := c.Engine.Exec(c.Thread, calls)
	if c.WorkScale > 0 && c.WorkScale != 1 {
		d = time.Duration(float64(d) * c.WorkScale)
	}
	c.Proc.Sleep(d)
}

// ReadBlob advances time for the blob-store read of one sample, consulting
// the fault injector first: an injected slow-read stall lengthens the wait,
// and an injected read error panics after it — surfacing through the
// worker's recover as a dataset exception, the way PyTorch re-raises a
// worker's IOError in the main process.
func (c *Ctx) ReadBlob(index int, d time.Duration) {
	stall, err := c.Faults.ReadFault(index)
	c.IO(d + stall)
	if err != nil {
		panic(err)
	}
}

// IO advances time for a storage read. I/O wait is off-CPU, so it is not
// recorded on the native timeline (a hardware profiler would not attribute
// it to a user-space function).
func (c *Ctx) IO(d time.Duration) {
	if c.Mode == RealData {
		// Real mode still models storage latency: the synthetic blobs live
		// in memory, but a Loader that never waits would make every real
		// pipeline preprocessing-bound in an unrepresentative way.
		c.Proc.Sleep(d)
		return
	}
	if c.WorkScale > 0 && c.WorkScale != 1 {
		d = time.Duration(float64(d) * c.WorkScale)
	}
	c.Proc.Sleep(d)
}
