package pipeline

import (
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/faultinject"
)

// stragglerLoader builds a real-pixel loader under the sim clock (virtual
// stalls, real bytes) so byte-identity across dispatch policies is checked on
// actual tensor contents.
func stragglerLoader(clk clock.Clock, n, batch, workers int, policy DispatchPolicy, faults *faultinject.Injector) *DataLoader {
	ds := data.NewImageDataset(data.ImageConfig{
		Name: "steal", N: n, MeanFileKB: 20, StdFileKB: 5, MinFileKB: 10, MaxFileKB: 40,
		CompressionRatio: 10, Classes: 4, Seed: 3,
		IO: data.IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 200},
	})
	c := NewCompose(
		&Loader{IO: ds.IO},
		&RandomResizedCrop{Size: 24},
		&RandomHorizontalFlip{},
		&ToTensor{},
	)
	return NewDataLoader(clk, NewImageFolder(ds, c), Config{
		BatchSize: batch, NumWorkers: workers, Seed: 7, Dispatch: policy,
		Mode: RealData, MaterializeDim: 32, Faults: faults,
	})
}

func runStragglerEpoch(t *testing.T, policy DispatchPolicy, faults *faultinject.Injector) (batches []*Batch, steals, drift int) {
	t.Helper()
	sim := clock.NewSim()
	dl := stragglerLoader(sim, 48, 4, 3, policy, faults)
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			b, ok := it.Next(p)
			if !ok {
				break
			}
			batches = append(batches, b)
		}
	})
	return batches, dl.Steals(), dl.CreditDrift()
}

// TestWorkStealingByteIdenticalUnderSlowReads is the worker-layer straggler
// contract: with injected slow batches, DispatchWorkStealing must steal work
// off the stalled worker's lane and still deliver bytes identical to an
// unfaulted DispatchProducer epoch (batch bytes depend only on spec, seed,
// epoch, and plan indices — never on which worker ran them).
func TestWorkStealingByteIdenticalUnderSlowReads(t *testing.T) {
	want, _, _ := runStragglerEpoch(t, DispatchProducer, nil)

	faults := faultinject.New(faultinject.Spec{
		Seed: 11, StallNth: 3, WorkerStall: 250 * time.Millisecond,
	})
	got, steals, drift := runStragglerEpoch(t, DispatchWorkStealing, faults)

	if steals == 0 {
		t.Fatal("no steals under an injected straggler; work-stealing never engaged")
	}
	if drift != 0 {
		t.Fatalf("credit drift %d after a clean epoch", drift)
	}
	if faults.Counts().WorkerStalls == 0 {
		t.Fatal("fault injection never fired; the test exercises nothing")
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("batch %d delivered out of order: id %d, want %d", i, got[i].ID, want[i].ID)
		}
		if len(got[i].Indices) != len(want[i].Indices) {
			t.Fatalf("batch %d has %d indices, want %d", i, len(got[i].Indices), len(want[i].Indices))
		}
		for j := range want[i].Indices {
			if got[i].Indices[j] != want[i].Indices[j] {
				t.Fatalf("batch %d index %d differs", i, j)
			}
			if got[i].Labels[j] != want[i].Labels[j] {
				t.Fatalf("batch %d label %d differs", i, j)
			}
		}
		a, b := want[i].Data, got[i].Data
		if a.IsMeta() || b.IsMeta() {
			t.Fatalf("batch %d carries no pixel data", i)
		}
		if len(a.F32) != len(b.F32) {
			t.Fatalf("batch %d tensor length %d, want %d", i, len(b.F32), len(a.F32))
		}
		for j := range a.F32 {
			if a.F32[j] != b.F32[j] {
				t.Fatalf("batch %d byte-diverges at element %d under work-stealing", i, j)
			}
		}
	}
}

// TestWorkStealingDeterministicInSim pins the sim-mode schedule: identical
// configs must produce identical steal counts run over run.
func TestWorkStealingDeterministicInSim(t *testing.T) {
	mk := func() *faultinject.Injector {
		return faultinject.New(faultinject.Spec{
			Seed: 11, StallNth: 3, WorkerStall: 250 * time.Millisecond,
		})
	}
	_, s1, d1 := runStragglerEpoch(t, DispatchWorkStealing, mk())
	_, s2, d2 := runStragglerEpoch(t, DispatchWorkStealing, mk())
	if s1 != s2 {
		t.Fatalf("steal count not deterministic under the sim clock: %d vs %d", s1, s2)
	}
	if d1 != 0 || d2 != 0 {
		t.Fatalf("credit drift: %d, %d", d1, d2)
	}
}

// TestWorkStealingAbortDrains mirrors the teardown contract for the steal
// board: Abort closes it, workers drain already-dispatched tasks, and Drain
// leaves the outstanding ledger at zero.
func TestWorkStealingAbortDrains(t *testing.T) {
	sim := clock.NewSim()
	dl := stragglerLoader(sim, 48, 4, 3, DispatchWorkStealing, nil)
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		if _, ok := it.Next(p); !ok {
			t.Error("epoch ended before the first batch")
			return
		}
		it.Abort()
		it.Drain(p)
	})
	if drift := dl.CreditDrift(); drift != 0 {
		t.Fatalf("credit drift %d after Abort+Drain", drift)
	}
}

// TestCompletedDoubleCreditCountsDrift is the regression test for the
// satellite fix: completed() used to clamp a negative outstanding estimate to
// zero silently, hiding double-credit bugs. A clean epoch must report zero
// drift, and an injected double credit must be surfaced, not swallowed.
func TestCompletedDoubleCreditCountsDrift(t *testing.T) {
	sim := clock.NewSim()
	dl := stragglerLoader(sim, 16, 4, 2, DispatchLeastWork, nil)
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	if drift := dl.CreditDrift(); drift != 0 {
		t.Fatalf("clean epoch reports drift %d", drift)
	}
	// Credit batch 0 a second time: the ledger goes negative by a full batch
	// cost, far beyond rounding noise.
	dl.completed(0, 0)
	if drift := dl.CreditDrift(); drift == 0 {
		t.Fatal("double credit was clamped silently; drift counter never fired")
	}
	// The clamp itself must survive (estimates stay usable for dispatch).
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.outstanding[0] != 0 {
		t.Fatalf("outstanding[0] = %v, want clamped 0", dl.outstanding[0])
	}
}
