// Package pipeline reimplements the preprocessing half of PyTorch's data
// path: map-style datasets, declaratively composed transforms
// (torchvision.transforms.Compose), and a DataLoader with the same
// asynchronous structure the paper instruments — worker processes fed by
// per-worker index queues, a shared data queue back to the main process,
// prefetching, in-order consumption with caching/pinning of out-of-order
// batches, and collation.
//
// Instrumentation points mirror LotusTrace's: the worker-side fetch ([T1]),
// the main-process wait for the next batch ([T2]), each transform inside
// Compose ([T3]), and batch consumption. Hooks are nil by default; package
// core/trace installs them.
package pipeline

import (
	"time"

	"lotus/internal/imaging"
	"lotus/internal/tensor"
)

// Sample is the unit flowing through transforms: metadata that every mode
// maintains, plus optional real payloads (only in real-data mode).
type Sample struct {
	// Index is the dataset index.
	Index int
	// Label is the classification target.
	Label int

	// FileBytes is the encoded on-storage size (consumed by Loader).
	FileBytes int
	// Seed derives per-sample content and randomness.
	Seed int64

	// Current logical geometry. For 2-D data Depth is 0.
	Width, Height, Depth int
	// Channels of the current representation.
	Channels int
	// Dtype of the current representation.
	Dtype tensor.DType

	// Real payloads; at most one is non-nil, and only in real-data mode.
	Image  *imaging.Image
	Volume *imaging.Volume
	Tensor *tensor.Tensor
}

// elems returns the element count of the sample's current representation.
func (s Sample) elems() int {
	n := s.Width * s.Height
	if s.Depth > 0 {
		n *= s.Depth
	}
	if s.Channels > 0 {
		n *= s.Channels
	}
	return n
}

// RawBytes returns the size of the sample's current representation.
func (s Sample) RawBytes() int { return s.elems() * s.Dtype.Size() }

// Batch is a collated set of preprocessed samples.
type Batch struct {
	// ID is the batch index within the epoch, in consumption order.
	ID int
	// WorkerID identifies the DataLoader worker that preprocessed it.
	WorkerID int
	// Indices are the dataset indices collated into the batch.
	Indices []int
	// Labels are the per-sample targets.
	Labels []int
	// Data is the collated tensor ([k, ...]); meta in simulated mode.
	Data *tensor.Tensor
	// PreprocessedAt is when the worker finished producing the batch.
	PreprocessedAt time.Time
}

// Size returns the number of samples in the batch.
func (b *Batch) Size() int { return len(b.Indices) }

// Bytes returns the collated payload size.
func (b *Batch) Bytes() int {
	if b.Data == nil {
		return 0
	}
	return b.Data.Bytes()
}

// Hooks are the LotusTrace instrumentation points. Any field may be nil.
// PerLogCost models the (small) cost of each emitted log record; the
// pipeline charges it to the proc that produced the record, which is how
// the Table III overhead comparison measures instrumented-tracing cost.
type Hooks struct {
	// OnOp fires for each transform application ([T3]) and for collation;
	// proc is the emitting proc's pid.
	OnOp func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration)
	// OnBatchPreprocessed fires around the worker's fetch ([T1]).
	OnBatchPreprocessed func(pid, batchID int, start time.Time, dur time.Duration)
	// OnBatchWait fires when the main process finishes waiting for the batch
	// it wants ([T2]); out-of-order arrivals log a 1µs duration.
	OnBatchWait func(pid, batchID int, start time.Time, dur time.Duration)
	// OnBatchConsumed fires when the main process hands the batch to
	// training.
	OnBatchConsumed func(pid, batchID int, start time.Time, dur time.Duration)
	// PerLogCost is charged per emitted record.
	PerLogCost time.Duration
}
