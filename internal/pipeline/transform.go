package pipeline

import (
	"fmt"
	"time"

	"lotus/internal/data"
	"lotus/internal/imaging"
	"lotus/internal/native"
	"lotus/internal/tensor"
)

// Transform is one preprocessing operation. Apply may mutate and return the
// sample; Kernels declares the native functions the operation may execute —
// the ground truth LotusMap's reconstruction is validated against (the
// hardware-profiler simulation never sees it).
type Transform interface {
	// Name is the operation name as the framework level sees it, e.g.
	// "RandomResizedCrop".
	Name() string
	// Apply runs the operation.
	Apply(ctx *Ctx, s Sample) Sample
	// Kernels lists the logical native-kernel names the op may invoke.
	Kernels() []string
	// Deterministic reports whether the op's output payload is a pure
	// function of its input sample — no dependence on the run seed, the
	// epoch, or any Ctx RNG stream. Deterministic ops may only use RNG for
	// timing (e.g. modeled I/O jitter), never for bytes. A maximal run of
	// deterministic ops at the head of a Compose forms the cacheable prefix
	// of the split-point sample cache.
	Deterministic() bool
}

// Compose chains transforms, timing each application — the torchvision
// Compose.__call__ instrumentation of Listing 3 ([T3]).
type Compose struct {
	Transforms []Transform
	// Hooks receives per-op timing records; nil disables instrumentation.
	Hooks *Hooks
	// SplitOverride pins the prefix/suffix split point for the sample cache:
	// 0 computes it automatically as the maximal deterministic prefix, -1
	// disables splitting, and n > 0 forces the prefix to the first n
	// transforms (which must all be deterministic — SplitPoint panics
	// otherwise, since caching past a random op would freeze its draws).
	SplitOverride int
}

// NewCompose chains the given transforms without instrumentation.
func NewCompose(ts ...Transform) *Compose {
	return &Compose{Transforms: ts}
}

// SplitPoint returns the number of leading transforms that form the
// cacheable deterministic prefix (0 means no usable prefix). Everything at
// or after the split is the random suffix that re-runs per epoch.
func (c *Compose) SplitPoint() int {
	if c.SplitOverride < 0 {
		return 0
	}
	auto := 0
	for _, t := range c.Transforms {
		if !t.Deterministic() {
			break
		}
		auto++
	}
	if c.SplitOverride == 0 {
		return auto
	}
	if c.SplitOverride > auto {
		panic(fmt.Sprintf("pipeline: SplitOverride %d extends past the deterministic prefix (%d ops)",
			c.SplitOverride, auto))
	}
	return c.SplitOverride
}

// Apply runs every transform in order. pid and batchID flow into the op log
// records so the analysis can associate operations with batches and worker
// processes. When the Ctx carries a sample cache and the pipeline has a
// deterministic prefix, the prefix is served from (or materialized into)
// the cache and only the random suffix runs inline.
func (c *Compose) Apply(ctx *Ctx, pid, batchID int, s Sample) Sample {
	if ctx.SampleCache != nil {
		if split := c.SplitPoint(); split > 0 {
			s = ctx.SampleCache.materialize(ctx, c, pid, batchID, split, s)
			return c.applyRange(ctx, pid, batchID, s, split, len(c.Transforms))
		}
	}
	return c.applyRange(ctx, pid, batchID, s, 0, len(c.Transforms))
}

// ApplyPrefix runs only the deterministic prefix (never through the cache).
func (c *Compose) ApplyPrefix(ctx *Ctx, pid, batchID int, s Sample) Sample {
	return c.applyRange(ctx, pid, batchID, s, 0, c.SplitPoint())
}

// ApplySuffix runs only the random suffix on a post-prefix sample.
func (c *Compose) ApplySuffix(ctx *Ctx, pid, batchID int, s Sample) Sample {
	return c.applyRange(ctx, pid, batchID, s, c.SplitPoint(), len(c.Transforms))
}

func (c *Compose) applyRange(ctx *Ctx, pid, batchID int, s Sample, from, to int) Sample {
	for _, t := range c.Transforms[from:to] {
		start := ctx.Proc.Now()
		s = t.Apply(ctx, s)
		if c.Hooks != nil && c.Hooks.OnOp != nil {
			c.Hooks.OnOp(pid, batchID, s.Index, t.Name(), start, ctx.Proc.Now().Sub(start))
			if c.Hooks.PerLogCost > 0 {
				ctx.Proc.Sleep(c.Hooks.PerLogCost)
			}
		}
	}
	return s
}

// Names returns the transform names in order.
func (c *Compose) Names() []string {
	out := make([]string, len(c.Transforms))
	for i, t := range c.Transforms {
		out[i] = t.Name()
	}
	return out
}

// GroundTruth maps each transform name to its kernel set — the oracle the
// LotusMap validation tests compare reconstructed mappings against.
func (c *Compose) GroundTruth() map[string][]string {
	out := make(map[string][]string, len(c.Transforms))
	for _, t := range c.Transforms {
		out[t.Name()] = append([]string(nil), t.Kernels()...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Image transforms (IC / OD pipelines)
// ---------------------------------------------------------------------------

// Loader loads an encoded image from storage and decodes it — the paper's
// "Loader" operation (ImageFolder's pil_loader: open + decode + convert to
// RGB). Decode cost follows the libjpeg stage structure.
type Loader struct {
	// IO models the storage the dataset is mounted from.
	IO data.IOModel
	// Cache, when non-nil, models the OS page cache in front of the mount.
	Cache *data.PageCache
}

func (l *Loader) Name() string { return "Loader" }

// Deterministic: decoded pixels derive from the sample's own record seed;
// the op's RNG stream only jitters modeled I/O latency, never bytes.
func (l *Loader) Deterministic() bool { return true }

func (l *Loader) Kernels() []string {
	return []string{
		"decode_mcu", "jpeg_fill_bit_buffer", "jpeg_idct_islow", "jpeg_idct_16x16",
		"ycc_rgb_convert", "decompress_onepass", "ImagingUnpackRGB",
		"memset", "memcpy", "calloc", "process_data_simple_main", "sep_upsample",
		"pil_copy",
	}
}

func (l *Loader) Apply(ctx *Ctx, s Sample) Sample {
	r := ctx.OpRNG(s.Index, "loader")
	ctx.ReadBlob(s.Index, l.Cache.Delay(s.Index, s.FileBytes, l.IO, r))

	raw := s.Width * s.Height * 3
	if ctx.Real() {
		// Decode a real SJPG payload synthesized at a capped resolution.
		w, h := s.Width, s.Height
		cap := ctx.MaterializeDim
		if cap <= 0 {
			cap = 256
		}
		for (w > cap || h > cap) && w > 32 && h > 32 {
			w /= 2
			h /= 2
		}
		// Photographic JPEGs are typically 4:2:0; decode exercises the
		// chroma upsampling path (sep_upsample).
		src := imaging.SynthesizeImage(w, h, s.Seed)
		blob := imaging.EncodeSJPGSubsampled(src, 85, imaging.Sub420)
		src.Release()
		im, err := imaging.DecodeSJPG(blob)
		if err != nil {
			panic(fmt.Sprintf("pipeline: synthesized blob failed to decode: %v", err))
		}
		s.Image = im
		s.Width, s.Height = im.W, im.H
		s.Channels, s.Dtype = 3, tensor.Uint8
		return s
	}

	calls := append(ctx.Calls(),
		native.Call{Kernel: "decode_mcu", Bytes: s.FileBytes},
		native.Call{Kernel: "jpeg_fill_bit_buffer", Bytes: s.FileBytes},
	)
	// A minority of images take the scaled-IDCT path for part of their
	// blocks: the short-lived, inconsistently-captured kernel of § IV-B.
	if s.Seed%4 == 0 {
		calls = append(calls,
			native.Call{Kernel: "jpeg_idct_islow", Bytes: raw * 7 / 8},
			native.Call{Kernel: "jpeg_idct_16x16", Bytes: raw / 8},
		)
	} else {
		calls = append(calls, native.Call{Kernel: "jpeg_idct_islow", Bytes: raw})
	}
	calls = append(calls,
		native.Call{Kernel: "ycc_rgb_convert", Bytes: raw},
		native.Call{Kernel: "decompress_onepass", Bytes: raw},
		native.Call{Kernel: "ImagingUnpackRGB", Bytes: raw},
		native.Call{Kernel: "memset", Bytes: raw},
		native.Call{Kernel: "memcpy", Bytes: raw},
	)
	if ctx.Engine != nil {
		switch ctx.Engine.Arch() {
		case native.Intel:
			calls = append(calls, native.Call{Kernel: "calloc", Bytes: raw})
		case native.AMD:
			calls = append(calls,
				native.Call{Kernel: "process_data_simple_main", Bytes: raw},
				native.Call{Kernel: "sep_upsample", Bytes: raw / 2},
				native.Call{Kernel: "pil_copy", Bytes: raw},
			)
		}
	}
	ctx.WorkCalls(calls)
	s.Channels, s.Dtype = 3, tensor.Uint8
	return s
}

// RawLoader loads a pre-decoded image from storage — the offline
// preprocessing strategy of the paper's Takeaway 2: MLPerf's IS and OD
// pipelines decode and convert the raw dataset to numpy *before* training so
// the expensive decode never runs online. Storage reads get bigger (raw
// pixels instead of compressed), but the CPU-side decode chain disappears.
type RawLoader struct {
	IO    data.IOModel
	Cache *data.PageCache
}

func (l *RawLoader) Name() string { return "Loader" }

func (l *RawLoader) Deterministic() bool { return true }

func (l *RawLoader) Kernels() []string { return []string{"memcpy", "memset"} }

func (l *RawLoader) Apply(ctx *Ctx, s Sample) Sample {
	raw := s.Width * s.Height * 3
	r := ctx.OpRNG(s.Index, "rawload")
	ctx.ReadBlob(s.Index, l.Cache.Delay(s.Index, raw, l.IO, r))
	if ctx.Real() {
		cap := ctx.MaterializeDim
		if cap <= 0 {
			cap = 256
		}
		w, h := s.Width, s.Height
		for (w > cap || h > cap) && w > 32 && h > 32 {
			w /= 2
			h /= 2
		}
		s.Image = imaging.SynthesizeImage(w, h, s.Seed)
		s.Width, s.Height = w, h
	} else {
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "memcpy", Bytes: raw},
			native.Call{Kernel: "memset", Bytes: raw},
		))
	}
	s.Channels, s.Dtype = 3, tensor.Uint8
	return s
}

// RandomResizedCrop crops a random area/aspect region and resamples it to
// Size x Size, exactly following torchvision's parameter sampling.
type RandomResizedCrop struct {
	Size int
}

func (t *RandomResizedCrop) Name() string { return "RandomResizedCrop" }

func (t *RandomResizedCrop) Deterministic() bool { return false }

func (t *RandomResizedCrop) Kernels() []string {
	return []string{
		"ImagingCrop", "ImagingResampleHorizontal_8bpc", "ImagingResampleVertical_8bpc",
		"precompute_coeffs", "memmove", "int_free", "memcpy",
	}
}

func (t *RandomResizedCrop) Apply(ctx *Ctx, s Sample) Sample {
	r := ctx.OpRNG(s.Index, "rrc")
	x0, y0, cw, ch := imaging.RandomResizedCropParams(s.Width, s.Height, r)
	if ctx.Real() {
		// Exactly-once release discipline: a full-frame region skips the
		// copy and aliases the source, so the alias must not be released a
		// second time — the pooled struct would be re-issued with a fresh
		// Pix and a stale Release would free the new owner's buffer. The
		// params guarantee cw/ch >= 1, so Crop never sees a zero-area rect.
		src := s.Image
		crop := src
		if x0 != 0 || y0 != 0 || cw != src.W || ch != src.H {
			crop = imaging.Crop(src, x0, y0, cw, ch)
		}
		s.Image = imaging.Resize(crop, t.Size, t.Size)
		if crop != src {
			crop.Release()
		}
		src.Release()
	} else {
		cropBytes := cw * ch * 3
		midBytes := t.Size * ch * 3 // after horizontal pass
		outBytes := t.Size * t.Size * 3
		calls := append(ctx.Calls(),
			native.Call{Kernel: "ImagingCrop", Bytes: cropBytes},
			native.Call{Kernel: "ImagingResampleHorizontal_8bpc", Bytes: cropBytes + midBytes},
			native.Call{Kernel: "ImagingResampleVertical_8bpc", Bytes: midBytes + outBytes},
		)
		if ctx.Engine != nil {
			switch ctx.Engine.Arch() {
			case native.Intel:
				calls = append(calls,
					native.Call{Kernel: "memmove", Bytes: outBytes},
					native.Call{Kernel: "int_free", Bytes: 4096},
				)
			case native.AMD:
				calls = append(calls,
					native.Call{Kernel: "precompute_coeffs", Bytes: 2 * (cw + ch)},
					native.Call{Kernel: "memcpy", Bytes: outBytes},
				)
			}
		}
		ctx.WorkCalls(calls)
	}
	s.Width, s.Height = t.Size, t.Size
	return s
}

// Resize resamples to a fixed size without cropping (the OD pipeline's
// variant of RandomResizedCrop).
type Resize struct {
	W, H int
}

func (t *Resize) Name() string { return "Resize" }

func (t *Resize) Deterministic() bool { return true }

func (t *Resize) Kernels() []string {
	return []string{"ImagingResampleHorizontal_8bpc", "ImagingResampleVertical_8bpc", "precompute_coeffs", "memmove", "int_free", "memcpy"}
}

func (t *Resize) Apply(ctx *Ctx, s Sample) Sample {
	if ctx.Real() {
		old := s.Image
		s.Image = imaging.Resize(old, t.W, t.H)
		old.Release()
	} else {
		inBytes := s.Width * s.Height * 3
		midBytes := t.W * s.Height * 3
		outBytes := t.W * t.H * 3
		calls := append(ctx.Calls(),
			native.Call{Kernel: "ImagingResampleHorizontal_8bpc", Bytes: inBytes + midBytes},
			native.Call{Kernel: "ImagingResampleVertical_8bpc", Bytes: midBytes + outBytes},
		)
		if ctx.Engine != nil {
			switch ctx.Engine.Arch() {
			case native.Intel:
				calls = append(calls,
					native.Call{Kernel: "memmove", Bytes: outBytes},
					native.Call{Kernel: "int_free", Bytes: 4096},
				)
			case native.AMD:
				calls = append(calls,
					native.Call{Kernel: "precompute_coeffs", Bytes: 2 * (s.Width + s.Height)},
					native.Call{Kernel: "memcpy", Bytes: outBytes},
				)
			}
		}
		ctx.WorkCalls(calls)
	}
	s.Width, s.Height = t.W, t.H
	return s
}

// RandomHorizontalFlip mirrors the image with probability P (default 0.5).
// It is the paper's canonical sub-100µs operation: when the coin lands
// tails the op does nothing at all.
type RandomHorizontalFlip struct {
	P float64
}

func (t *RandomHorizontalFlip) Name() string { return "RandomHorizontalFlip" }

func (t *RandomHorizontalFlip) Deterministic() bool { return false }

func (t *RandomHorizontalFlip) Kernels() []string {
	return []string{"ImagingFlipLeftRight", "memcpy"}
}

func (t *RandomHorizontalFlip) Apply(ctx *Ctx, s Sample) Sample {
	p := t.P
	if p == 0 {
		p = 0.5
	}
	r := ctx.OpRNG(s.Index, "rhf")
	if !r.Bool(p) {
		return s
	}
	if ctx.Real() {
		// In place: the mirrored image replaces the sample's payload, so
		// there is no reason to materialize a second buffer.
		imaging.FlipHorizontalInPlace(s.Image)
	} else {
		raw := s.Width * s.Height * 3
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "ImagingFlipLeftRight", Bytes: raw},
			native.Call{Kernel: "memcpy", Bytes: raw},
		))
	}
	return s
}

// RandomCrop extracts a Size x Size window at a uniformly random offset
// (torchvision's RandomCrop without padding). In the augmented ICA pipeline
// it runs right after a deterministic Resize, so the expensive decode+resize
// prefix stays cacheable while the crop re-rolls every epoch.
type RandomCrop struct {
	Size int
}

func (t *RandomCrop) Name() string { return "RandomCrop" }

func (t *RandomCrop) Deterministic() bool { return false }

func (t *RandomCrop) Kernels() []string { return []string{"ImagingCrop", "memcpy"} }

func (t *RandomCrop) Apply(ctx *Ctx, s Sample) Sample {
	r := ctx.OpRNG(s.Index, "rc")
	cw, ch := t.Size, t.Size
	if cw > s.Width {
		cw = s.Width
	}
	if ch > s.Height {
		ch = s.Height
	}
	x0, y0 := 0, 0
	if s.Width > cw {
		x0 = r.Intn(s.Width - cw + 1)
	}
	if s.Height > ch {
		y0 = r.Intn(s.Height - ch + 1)
	}
	if ctx.Real() {
		// A full-frame window is the identity: keep the buffer, no copy.
		if x0 != 0 || y0 != 0 || cw != s.Image.W || ch != s.Image.H {
			old := s.Image
			s.Image = imaging.Crop(old, x0, y0, cw, ch)
			old.Release()
		}
	} else {
		out := cw * ch * 3
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "ImagingCrop", Bytes: out},
			native.Call{Kernel: "memcpy", Bytes: out},
		))
	}
	s.Width, s.Height = cw, ch
	return s
}

// RandomPixelNoise perturbs every byte by a uniform offset in [-Amp, Amp]
// with probability P per sample (default 0.5, amp 8) — the cheap additive
// photometric augmentation of the ICA pipeline. One op-stream draw seeds a
// splitmix-style LCG for the whole pass, so the noise is deterministic per
// (seed, epoch, sample) without per-byte stream overhead.
type RandomPixelNoise struct {
	P   float64
	Amp int
}

func (t *RandomPixelNoise) Name() string { return "RandomPixelNoise" }

func (t *RandomPixelNoise) Deterministic() bool { return false }

func (t *RandomPixelNoise) Kernels() []string { return []string{"pixel_noise_u8"} }

func (t *RandomPixelNoise) Apply(ctx *Ctx, s Sample) Sample {
	p := t.P
	if p == 0 {
		p = 0.5
	}
	r := ctx.OpRNG(s.Index, "rpn")
	if !r.Bool(p) {
		return s
	}
	amp := t.Amp
	if amp <= 0 {
		amp = 8
	}
	if ctx.Real() {
		state := uint64(r.Int63())
		span := uint64(2*amp + 1)
		pix := s.Image.Pix
		for i := range pix {
			state = state*6364136223846793005 + 1442695040888963407
			v := int(pix[i]) + int((state>>33)%span) - amp
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			pix[i] = uint8(v)
		}
	} else {
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "pixel_noise_u8", Bytes: s.Width * s.Height * 3}))
	}
	return s
}

// ToTensor converts the PIL-style image to a [3,H,W] float32 tensor scaled
// to [0,1], as torchvision's ToTensor does.
type ToTensor struct{}

func (t *ToTensor) Name() string { return "ToTensor" }

func (t *ToTensor) Deterministic() bool { return true }

func (t *ToTensor) Kernels() []string {
	return []string{"ImagingUnpackRGB", "convert_u8_f32", "memcpy"}
}

func (t *ToTensor) Apply(ctx *Ctx, s Sample) Sample {
	u8Bytes := s.Width * s.Height * 3
	f32Bytes := u8Bytes * 4
	if ctx.Real() {
		// Fused unpack+convert: produces the float32 planar tensor directly
		// (bit-identical to ToTensor().ToFloat32()) and retires the sample's
		// pooled image.
		s.Tensor = s.Image.ToFloat32Tensor()
		s.Image.Release()
		s.Image = nil
	} else {
		ctx.WorkCalls(append(ctx.Calls(),
			native.Call{Kernel: "ImagingUnpackRGB", Bytes: u8Bytes},
			native.Call{Kernel: "convert_u8_f32", Bytes: u8Bytes + f32Bytes/4},
			native.Call{Kernel: "memcpy", Bytes: u8Bytes},
		))
	}
	s.Dtype = tensor.Float32
	return s
}

// Normalize applies per-channel (x-mean)/std to the float tensor.
type Normalize struct {
	Mean, Std []float32
}

func (t *Normalize) Name() string { return "Normalize" }

func (t *Normalize) Deterministic() bool { return true }

func (t *Normalize) Kernels() []string { return []string{"normalize_f32"} }

func (t *Normalize) Apply(ctx *Ctx, s Sample) Sample {
	if ctx.Real() {
		s.Tensor.Normalize(t.Mean, t.Std)
	} else {
		ctx.WorkCalls(append(ctx.Calls(), native.Call{Kernel: "normalize_f32", Bytes: s.RawBytes()}))
	}
	return s
}

// Collate stacks k samples into a batch tensor (DataLoader's default
// collate_fn). It is logged as the C(k) operation of Table II.
type Collate struct{}

func (t *Collate) Name() string { return "Collate" }

func (t *Collate) Kernels() []string { return []string{"cat_serial_kernel", "memcpy"} }

// Run collates samples into the batch payload. Collation is a batch-level
// op, so it does not implement Transform.Apply.
func (t *Collate) Run(ctx *Ctx, samples []Sample) *tensor.Tensor {
	if len(samples) == 0 {
		panic("pipeline: collate of empty batch")
	}
	if ctx.Real() {
		ts := make([]*tensor.Tensor, len(samples))
		for i, s := range samples {
			ts[i] = s.Tensor
		}
		return tensor.Stack(ts)
	}
	total := 0
	for _, s := range samples {
		total += s.RawBytes()
	}
	ctx.WorkCalls(append(ctx.Calls(),
		native.Call{Kernel: "cat_serial_kernel", Bytes: total},
		native.Call{Kernel: "memcpy", Bytes: total},
	))
	first := samples[0]
	shape := []int{len(samples), first.Channels}
	if first.Depth > 0 {
		shape = append(shape, first.Depth)
	}
	shape = append(shape, first.Height, first.Width)
	return tensor.Meta(first.Dtype, shape...)
}

// CollateN adapts Collate to the Transform interface so LotusMap can
// profile collation in isolation: applying it collates N copies of the
// input sample (the batch-level work for a batch of N).
type CollateN struct {
	N int
}

func (c *CollateN) Name() string { return "Collate" }

func (c *CollateN) Deterministic() bool { return true }

func (c *CollateN) Kernels() []string { return (&Collate{}).Kernels() }

func (c *CollateN) Apply(ctx *Ctx, s Sample) Sample {
	n := c.N
	if n <= 0 {
		n = 2
	}
	samples := make([]Sample, n)
	for i := range samples {
		samples[i] = s
	}
	(&Collate{}).Run(ctx, samples)
	return s
}

// PinCost models copying a batch into page-locked memory in the main
// process (pin_memory=True), at roughly 5 GB/s.
func PinCost(bytes int) time.Duration {
	return time.Duration(float64(bytes) / 5e9 * float64(time.Second))
}
