package profilers

import "time"

// RunOutcome summarizes what attaching a profiler to a run produced — the
// Table III columns.
type RunOutcome struct {
	Profiler string
	// Wall is the instrumented run's duration.
	Wall time.Duration
	// OverheadFrac is (Wall - baseline) / baseline.
	OverheadFrac float64
	// StorageBytes is the output volume on disk.
	StorageBytes int64
	// PeakMemBytes is the tool's buffered state (trace-based tools).
	PeakMemBytes int64
	// OOM reports whether buffering exceeded the machine's memory.
	OOM bool
}

// SampleCount estimates how many samples a sampling profiler collects over a
// run of the given wall time observing the given number of processes.
func (p Profiler) SampleCount(wall time.Duration, procs int) int64 {
	if p.SampleInterval <= 0 {
		return 0
	}
	if !p.SeesWorkers {
		procs = 1
	}
	if procs < 1 {
		procs = 1
	}
	return int64(wall/p.SampleInterval) * int64(procs)
}

// Storage computes the output volume and memory footprint for a run.
// lotusBytes supplies the measured tracer output for instrumented tools
// (which is exact, not modeled); batches feeds trace-based event counts.
func (p Profiler) Storage(wall time.Duration, procs, batches int, lotusBytes int64) (storage, peakMem int64, oom bool) {
	switch {
	case p.Instrumented:
		return lotusBytes, 0, false
	case p.TraceBased:
		events := int64(batches) * int64(p.EventsPerBatch)
		storage = events * int64(p.DiskBytesPerEvent)
		peakMem = events * int64(p.MemBytesPerEvent)
		return storage, peakMem, p.RAMLimit > 0 && peakMem > p.RAMLimit
	default: // sampling
		storage = p.FixedOutputBytes + p.SampleCount(wall, procs)*int64(p.BytesPerSample)
		return storage, 0, false
	}
}
