// Package profilers models the alternative profiling tools the paper
// compares LotusTrace against (Table III overheads, Table IV functionality):
// the sampling profilers Scalene, py-spy, and austin, and the trace-based
// PyTorch profiler.
//
// Each tool is described by its *mechanism* — sampling interval, whether it
// runs in-process, what it can observe, how its output scales — rather than
// by its result numbers. Wall-time and storage overheads then fall out of
// running the instrumented pipeline under the mechanism's cost model, and
// the Table IV functionality matrix is derived from what the mechanism can
// see (a sampler with no batch markers cannot report per-batch times, a
// main-process-only tracer cannot see the workers, and so on).
//
// Interference slowdown factors (the fraction a tool's presence stretches
// the workload) are taken from the paper's measurements, since they depend
// on implementation details our simulation does not model (signal delivery,
// GIL contention, allocation interception).
package profilers

import (
	"time"
)

// Profiler describes one tool's mechanism.
type Profiler struct {
	Name string

	// --- interference model ---
	// WorkSlowdown stretches all pipeline work multiplicatively while the
	// tool is attached (1.0 = free).
	WorkSlowdown float64
	// PerLogCost is the cost of emitting one instrumentation record
	// (instrumented tracers only).
	PerLogCost time.Duration

	// --- mechanism ---
	// SampleInterval > 0 marks a sampling profiler with that period.
	SampleInterval time.Duration
	// Instrumented marks LotusTrace-style explicit instrumentation.
	Instrumented bool
	// TraceBased marks PyTorch-profiler-style exhaustive op tracing.
	TraceBased bool

	// --- visibility ---
	// SeesWorkers: observes DataLoader worker processes (not just main).
	SeesWorkers bool
	// SeesOpLabels: output rows carry preprocessing-operation names rather
	// than raw lines/frames (the __call__ labeling problem of § IV-A).
	SeesOpLabels bool
	// HasBatchMarkers: output delimits batch boundaries.
	HasBatchMarkers bool
	// CapturesMainWait: observes the main process's blocking wait for a
	// batch.
	CapturesMainWait bool
	// CapturesFlow: correlates producer (worker) and consumer (main) events
	// for the same batch — required for delay analysis and data-flow
	// visualization.
	CapturesFlow bool

	// --- output model ---
	// BytesPerSample is the log growth per captured sample (sampling
	// profilers; austin dumps whole stacks, py-spy aggregates more).
	BytesPerSample int
	// FixedOutputBytes is flat output size (Scalene's per-line summary).
	FixedOutputBytes int64
	// EventsPerBatch and DiskBytesPerEvent model trace-based output volume.
	EventsPerBatch    int
	DiskBytesPerEvent int
	// MemBytesPerEvent models in-memory buffering (the PyTorch profiler
	// holds everything until program exit); RAMLimit is the machine's
	// memory. Exceeding it is an OOM failure.
	MemBytesPerEvent int
	RAMLimit         int64
}

// Capability is one Table IV row.
type Capability struct {
	Epoch, Batch, Async, Wait, Delay bool
}

// Functionality derives the Table IV row from the mechanism.
func (p Profiler) Functionality() Capability {
	return Capability{
		// Per-epoch, per-operation elapsed times need op labels on output
		// covering the processes where preprocessing runs.
		Epoch: p.SeesOpLabels && p.SeesWorkers,
		// Per-batch times need batch boundary markers.
		Batch: p.HasBatchMarkers,
		// The asynchronous main↔worker data-flow needs both sides plus
		// correlation.
		Async: p.SeesWorkers && p.CapturesFlow,
		Wait:  p.CapturesMainWait,
		// Delay (preprocessed→consumed) needs the producer timestamp and
		// the consumer timestamp for the same batch.
		Delay: p.CapturesFlow && p.HasBatchMarkers,
	}
}

// Lotus returns the LotusTrace mechanism. perLogCost is the modeled cost of
// one record emission (§ III-B measures ~200µs on the paper's setup for the
// full logging path; the pure formatting cost is far smaller).
func Lotus(perLogCost time.Duration) Profiler {
	return Profiler{
		Name:             "Lotus",
		WorkSlowdown:     1.0,
		PerLogCost:       perLogCost,
		Instrumented:     true,
		SeesWorkers:      true,
		SeesOpLabels:     true,
		HasBatchMarkers:  true,
		CapturesMainWait: true,
		CapturesFlow:     true,
	}
}

// Scalene: in-process sampling CPU+GPU+memory profiler; line granularity
// (no op labels), 10 ms CPU sampling, heavy allocation interception. Its
// compact per-line summary output is nearly constant-size.
func Scalene() Profiler {
	return Profiler{
		Name:             "Scalene",
		WorkSlowdown:     1.961, // paper Table III: 96.1% wall overhead
		SampleInterval:   10 * time.Millisecond,
		SeesWorkers:      true,
		SeesOpLabels:     false,
		FixedOutputBytes: int64(2.5e6),
	}
}

// PySpy: out-of-process sampler at 10 ms; sees all processes and labels
// frames (but frames show __call__, not the transform — it still aggregates
// per-epoch op time within ~1%, § VI-B), no batch markers.
func PySpy() Profiler {
	return Profiler{
		Name:           "py-spy",
		WorkSlowdown:   1.08, // paper: 8%
		SampleInterval: 10 * time.Millisecond,
		SeesWorkers:    true,
		SeesOpLabels:   true,
		BytesPerSample: 90,
	}
}

// Austin: frame-stack sampler at 100 µs; dumps the full stack per sample,
// hence the 1000x storage blow-up of § VI-B.
func Austin() Profiler {
	return Profiler{
		Name:           "austin",
		WorkSlowdown:   1.032, // paper: 3.2%
		SampleInterval: 100 * time.Microsecond,
		SeesWorkers:    true,
		SeesOpLabels:   true,
		BytesPerSample: 4800,
	}
}

// TorchProfiler: the built-in trace-based profiler: records every operator
// event in the main process (workers invisible — Figure 1's blue box),
// captures the main process's DataLoader wait span, buffers events in
// memory until exit.
func TorchProfiler() Profiler {
	return Profiler{
		Name:              "PyTorch Profiler",
		WorkSlowdown:      1.864, // paper: 86.4%
		TraceBased:        true,
		SeesWorkers:       false,
		SeesOpLabels:      false,
		CapturesMainWait:  true,
		EventsPerBatch:    1500,
		DiskBytesPerEvent: 400,
		MemBytesPerEvent:  50 << 10,
		RAMLimit:          128 << 30, // the c4130's 128 GiB
	}
}

// All returns the comparison set in the paper's Table III/IV order.
func All() []Profiler {
	return []Profiler{Lotus(30 * time.Microsecond), Scalene(), PySpy(), Austin(), TorchProfiler()}
}
