package profilers

import (
	"testing"
	"time"
)

func TestFunctionalityMatrixMatchesTableIV(t *testing.T) {
	want := map[string]Capability{
		"Lotus":            {Epoch: true, Batch: true, Async: true, Wait: true, Delay: true},
		"Scalene":          {},
		"py-spy":           {Epoch: true},
		"austin":           {Epoch: true},
		"PyTorch Profiler": {Wait: true},
	}
	for _, p := range All() {
		got := p.Functionality()
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected profiler %q", p.Name)
		}
		if got != w {
			t.Errorf("%s functionality = %+v, want %+v (Table IV)", p.Name, got, w)
		}
	}
}

func TestSampleCountScalesWithRateAndProcs(t *testing.T) {
	ps := PySpy()
	// 100 s at 10 ms over 3 procs -> 30000 samples.
	if got := ps.SampleCount(100*time.Second, 3); got != 30000 {
		t.Fatalf("SampleCount = %d", got)
	}
	au := Austin()
	if au.SampleCount(time.Second, 1) != 10000 {
		t.Fatalf("austin samples = %d", au.SampleCount(time.Second, 1))
	}
	// Non-sampling tools collect no samples.
	if Lotus(0).SampleCount(time.Hour, 4) != 0 {
		t.Fatal("instrumented tool should not sample")
	}
	// A main-only tool ignores worker procs.
	tp := TorchProfiler()
	tp.SampleInterval = 10 * time.Millisecond // hypothetical
	if tp.SampleCount(time.Second, 8) != 100 {
		t.Fatal("main-only tool should count one proc")
	}
}

func TestAustinStorageDwarfsPySpy(t *testing.T) {
	wall := 10 * time.Minute
	auStorage, _, _ := Austin().Storage(wall, 2, 0, 0)
	psStorage, _, _ := PySpy().Storage(wall, 2, 0, 0)
	if auStorage < 500*psStorage {
		t.Fatalf("austin storage %d should be ~1000x py-spy %d (§ VI-B)", auStorage, psStorage)
	}
}

func TestScaleneStorageIsFlat(t *testing.T) {
	s := Scalene()
	short, _, _ := s.Storage(time.Minute, 2, 0, 0)
	long, _, _ := s.Storage(10*time.Hour, 2, 0, 0)
	if short != long {
		t.Fatalf("scalene output should be duration-independent: %d vs %d", short, long)
	}
	if short != int64(2.5e6) {
		t.Fatalf("scalene output %d", short)
	}
}

func TestTorchProfilerOOMOnLargeRuns(t *testing.T) {
	tp := TorchProfiler()
	// Full ImageNet at b=512: 2502 batches. 2502*1500 events * 50KB >> 128 GiB.
	_, mem, oom := tp.Storage(0, 1, 2502, 0)
	if !oom {
		t.Fatalf("full-ImageNet-scale run should OOM (buffered %d bytes)", mem)
	}
	// ImageNet-small at b=512: 51 batches — fits.
	storage, mem, oom := tp.Storage(0, 1, 51, 0)
	if oom {
		t.Fatalf("small run should not OOM (buffered %d)", mem)
	}
	if storage <= 0 {
		t.Fatal("trace-based run should produce output")
	}
}

func TestLotusStoragePassesThroughMeasurement(t *testing.T) {
	storage, _, oom := Lotus(0).Storage(time.Hour, 8, 1000, 299_200_000)
	if storage != 299_200_000 || oom {
		t.Fatalf("lotus storage = %d oom=%v", storage, oom)
	}
}

func TestInterferenceFactorsOrdering(t *testing.T) {
	// The paper's overhead ordering: Scalene ~ PyTorch profiler >> py-spy >
	// austin > Lotus.
	sc, tp, ps, au := Scalene(), TorchProfiler(), PySpy(), Austin()
	lo := Lotus(30 * time.Microsecond)
	if !(sc.WorkSlowdown > ps.WorkSlowdown && tp.WorkSlowdown > ps.WorkSlowdown) {
		t.Fatal("heavy tools should slow more than py-spy")
	}
	if !(ps.WorkSlowdown > au.WorkSlowdown && au.WorkSlowdown > lo.WorkSlowdown) {
		t.Fatal("austin should sit between py-spy and Lotus")
	}
	if lo.WorkSlowdown != 1.0 {
		t.Fatal("Lotus adds no multiplicative slowdown; its cost is per log record")
	}
}
