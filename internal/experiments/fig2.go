package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/workloads"
)

// Fig2Result characterizes each pipeline's bottleneck from its coarse trace:
// preprocessing-bound pipelines show long main-process waits and short batch
// delays; GPU-bound pipelines show the opposite (paper Figure 2).
type Fig2Result struct {
	Rows []Fig2Row
	// Traces holds the Chrome Trace Viewer JSON per pipeline (coarse).
	Traces map[workloads.Kind][]byte
}

// Fig2Row is one pipeline's bottleneck summary.
type Fig2Row struct {
	Kind           workloads.Kind
	Batches        int
	GPUUtilization float64
	MedianWait     time.Duration
	MedianDelay    time.Duration
	MaxDelay       time.Duration
	GPUBatchTime   time.Duration
	// PreprocessingBound is the verdict: waits dominate delays.
	PreprocessingBound bool
	// WorkersOverlap reports whether worker preprocessing spans overlap in
	// time (parallel preprocessing visible in the trace); GPU-bound
	// pipelines appear sequential (Takeaway 2).
	WorkersOverlap bool
}

// RunFig2 runs IC with the Figure 2(a) configuration (b=1024, 4 GPUs, 4
// loaders) and IS/OD with their defaults.
func RunFig2(scale Scale) *Fig2Result {
	ic := workloads.ICSpec(scale.samples(2048, 20480), 21)
	ic.BatchSize, ic.NumWorkers, ic.GPUs = 1024, 4, 4
	specs := []workloads.Spec{ic, workloads.ISSpec(scale.samples(48, 336), 22), workloads.ODSpec(scale.samples(96, 1200), 23)}

	res := &Fig2Result{Traces: map[workloads.Kind][]byte{}}
	for _, spec := range specs {
		a, stats := tracedRun(spec)
		row := Fig2Row{
			Kind:         spec.Kind,
			Batches:      stats.Batches,
			GPUBatchTime: spec.GPU.BatchTime(spec.BatchSize, spec.GPUs),
		}
		row.GPUUtilization = stats.gpuUtil()
		var waits, delays []time.Duration
		for _, bi := range a.Batches() {
			waits = append(waits, bi.WaitDur)
			delays = append(delays, bi.Delay())
		}
		row.MedianWait = trace.ComputeDistStats(waits).Median
		row.MedianDelay = trace.ComputeDistStats(delays).Median
		row.MaxDelay = a.MaxDelay()
		// The bottleneck verdict: a starved accelerator means preprocessing
		// is the bottleneck. (Wait vs delay medians are misleading when
		// synchronized workers deliver batches in waves: most batches then
		// arrive "out of order" with 1µs wait markers even though the
		// pipeline is thoroughly preprocessing-bound.)
		row.PreprocessingBound = row.GPUUtilization < 0.5
		row.WorkersOverlap = workersOverlap(a)
		res.Rows = append(res.Rows, row)

		if tr, err := trace.ExportChrome(a.Records, trace.Coarse); err == nil {
			res.Traces[spec.Kind] = tr
		}
	}
	return res
}

// workersOverlap detects whether any two preprocessing spans from different
// workers overlap in time.
func workersOverlap(a *trace.Analysis) bool {
	bs := a.Batches()
	for i := range bs {
		for j := i + 1; j < len(bs); j++ {
			if bs[i].WorkerPID == bs[j].WorkerPID {
				continue
			}
			if bs[i].PreStart.Before(bs[j].PreEnd()) && bs[j].PreStart.Before(bs[i].PreEnd()) {
				return true
			}
		}
	}
	return false
}

// Render prints the per-pipeline verdicts with the paper's observations.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("FIGURE 2 — coarse-trace bottleneck characterization\n\n")
	fmt.Fprintf(&b, "%-4s %8s %9s %12s %12s %12s %10s %8s %s\n",
		"pipe", "batches", "gpu_util", "med_wait", "med_delay", "max_delay", "gpu_batch", "overlap", "verdict")
	for _, row := range r.Rows {
		verdict := "GPU-bound"
		if row.PreprocessingBound {
			verdict = "preprocessing-bound"
		}
		fmt.Fprintf(&b, "%-4s %8d %9s %12v %12v %12v %10v %8v %s\n",
			row.Kind, row.Batches, pct(row.GPUUtilization),
			row.MedianWait.Round(time.Millisecond), row.MedianDelay.Round(time.Millisecond),
			row.MaxDelay.Round(time.Millisecond), row.GPUBatchTime.Round(time.Millisecond),
			row.WorkersOverlap, verdict)
	}
	b.WriteString("\npaper: IC preprocessing-bound (small delays); IS delays ~10.9s vs 750ms GPU; OD delays ~1.64s vs 250ms GPU;\n")
	b.WriteString("       GPU-bound pipelines' parallel preprocessing appears sequential (no overlap pressure)\n")
	return b.String()
}
