package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/workloads"
)

// Table2Result holds per-operation elapsed-time statistics for the three
// pipelines (paper Table II).
type Table2Result struct {
	Pipelines []Table2Pipeline
}

// Table2Pipeline is one block of the table.
type Table2Pipeline struct {
	Kind    workloads.Kind
	Order   []string
	Stats   map[string]trace.OpStat
	Samples int
}

// paperTable2 records the paper's Avg row (ms) for comparison in Render.
var paperTable2 = map[workloads.Kind]map[string]float64{
	workloads.IC: {"Loader": 4.76, "RandomResizedCrop": 1.11, "RandomHorizontalFlip": 0.06, "ToTensor": 0.34, "Normalize": 0.21, "Collate": 49.76},
	workloads.IS: {"Loader": 72.03, "RandBalancedCrop": 91.10, "RandomFlip": 4.39, "Cast": 2.16, "RandomBrightnessAugmentation": 0.78, "GaussianNoise": 6.46, "Collate": 14.24},
	workloads.OD: {"Loader": 9.59, "Resize": 9.43, "RandomHorizontalFlip": 0.52, "ToTensor": 6.75, "Normalize": 7.8, "Collate": 7.39},
}

// RunTable2 runs the three pipelines with their Table II configurations (IC:
// b=128, 1 GPU, 1 loader; IS: b=2, 8 loaders; OD: b=2, 4 loaders) and
// collects per-op statistics.
func RunTable2(scale Scale) *Table2Result {
	specs := []workloads.Spec{
		workloads.ICSpec(scale.samples(384, 6400), 11),
		workloads.ISSpec(scale.samples(64, 420), 12),
		workloads.ODSpec(scale.samples(128, 2000), 13),
	}
	res := &Table2Result{}
	for _, spec := range specs {
		a, _ := tracedRun(spec)
		res.Pipelines = append(res.Pipelines, Table2Pipeline{
			Kind:    spec.Kind,
			Order:   spec.OpOrder(),
			Stats:   a.OpStats(),
			Samples: spec.NumSamples,
		})
	}
	return res
}

// Render prints the Table II layout per pipeline, with the paper's Avg row
// for reference.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("TABLE II — elapsed time per preprocessing operation (ms per image; Collate per batch)\n\n")
	for _, p := range r.Pipelines {
		fmt.Fprintf(&b, "--- %s (%d samples) ---\n", p.Kind, p.Samples)
		b.WriteString(trace.FormatOpStats(p.Stats, p.Order))
		b.WriteString("paper Avg ")
		for _, op := range p.Order {
			if v, ok := paperTable2[p.Kind][op]; ok {
				fmt.Fprintf(&b, " %11.2f ", v)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteString("\n\n")
	}
	return b.String()
}

// ShortOps reports, for a pipeline, the fraction of all op applications
// under the threshold — Takeaway 1's headline ("all pipelines have
// operations under 10 ms / 100 µs").
func (p Table2Pipeline) ShortOps(threshold time.Duration) float64 {
	var n, short int
	for _, op := range p.Order {
		st := p.Stats[op]
		n += st.Count
		switch threshold {
		case 10 * time.Millisecond:
			short += int(st.Under10ms * float64(st.Count))
		case 100 * time.Microsecond:
			short += int(st.Under100us * float64(st.Count))
		}
	}
	if n == 0 {
		return 0
	}
	return float64(short) / float64(n)
}
