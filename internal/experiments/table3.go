package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/profilers"
	"lotus/internal/workloads"
)

// Table3Result compares profiler wall-time and storage overheads on the IC
// pipeline (b=512, 1 GPU, 1 data loader), on a "full" and a "small" dataset
// (paper Table III; the small dataset exists because some tools OOM or
// explode in storage on the full one).
type Table3Result struct {
	FullSamples, SmallSamples int
	BaselineFull              time.Duration
	BaselineSmall             time.Duration
	Rows                      []Table3Row
	// TorchOOMAtImageNetScale extrapolates the PyTorch profiler's in-memory
	// buffering to the real ImageNet batch count (1.28M images / 512): the
	// paper observes an OOM there. Our simulated "full" dataset is smaller,
	// so the OOM is checked at the paper's scale.
	TorchOOMAtImageNetScale bool
	TorchMemAtImageNetScale int64
}

// Table3Row is one (profiler, dataset) measurement.
type Table3Row struct {
	Profiler string
	Dataset  string // "full" or "small"
	Outcome  profilers.RunOutcome
}

// paperTable3 records the paper's numbers for Render.
var paperTable3 = []struct {
	profiler, dataset string
	overhead          string
	storage           string
}{
	{"Lotus", "full", "~0%", "299.2MB"},
	{"Scalene", "full", "96.1%", "2.5MB"},
	{"py-spy", "full", "8%", "97.8MB"},
	{"Lotus", "small", "~2%", "6.1MB"},
	{"austin", "small", "3.2%", "6.8GB"},
	{"PyTorch Profiler", "small", "86.4%", "30.3MB (OOM on full)"},
}

// table3Spec is the comparison workload.
func table3Spec(samples int, seed int64) workloads.Spec {
	spec := workloads.ICSpec(samples, seed)
	spec.BatchSize, spec.GPUs, spec.NumWorkers = 512, 1, 1
	return spec
}

// RunTable3 measures every profiler on both dataset sizes.
func RunTable3(scale Scale) *Table3Result {
	res := &Table3Result{
		FullSamples:  scale.samples(4096, 25600),
		SmallSamples: scale.samples(1024, 5120),
	}

	datasets := []struct {
		name    string
		samples int
	}{
		{"full", res.FullSamples},
		{"small", res.SmallSamples},
	}

	for _, ds := range datasets {
		// Baseline: no profiler.
		baseStats, _, _ := table3Spec(ds.samples, 71).Run(nil)
		base := baseStats.Elapsed
		if ds.name == "full" {
			res.BaselineFull = base
		} else {
			res.BaselineSmall = base
		}

		for _, p := range profilers.All() {
			spec := table3Spec(ds.samples, 71)
			var wall time.Duration
			var lotusBytes int64
			var batches int
			if p.Instrumented {
				var buf bytes.Buffer
				tr := trace.NewTracer(&buf, trace.WithPerLogCost(p.PerLogCost))
				stats, _, _ := spec.Run(tr.Hooks())
				_ = tr.Flush()
				wall = stats.Elapsed
				lotusBytes = int64(buf.Len())
				batches = stats.Batches
			} else {
				spec.WorkScale = p.WorkSlowdown
				stats, _, _ := spec.Run(nil)
				wall = stats.Elapsed
				batches = stats.Batches
			}
			storage, peak, oom := p.Storage(wall, spec.NumWorkers+1, batches, lotusBytes)
			res.Rows = append(res.Rows, Table3Row{
				Profiler: p.Name,
				Dataset:  ds.name,
				Outcome: profilers.RunOutcome{
					Profiler:     p.Name,
					Wall:         wall,
					OverheadFrac: float64(wall-base) / float64(base),
					StorageBytes: storage,
					PeakMemBytes: peak,
					OOM:          oom,
				},
			})
		}
	}

	// Extrapolate the PyTorch profiler's buffering to real-ImageNet scale.
	for _, p := range profilers.All() {
		if p.TraceBased {
			imagenetBatches := 1_281_167 / 512
			_, mem, oom := p.Storage(0, 1, imagenetBatches, 0)
			res.TorchOOMAtImageNetScale = oom
			res.TorchMemAtImageNetScale = mem
		}
	}
	return res
}

// Row finds a measurement.
func (r *Table3Result) Row(profiler, dataset string) (Table3Row, bool) {
	for _, row := range r.Rows {
		if row.Profiler == profiler && row.Dataset == dataset {
			return row, true
		}
	}
	return Table3Row{}, false
}

// Render prints the Table III layout with the paper's columns alongside.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("TABLE III — profiler overheads (IC, b=512, 1 GPU, 1 data loader)\n\n")
	fmt.Fprintf(&b, "%-18s %-7s %10s %12s %6s   %s\n", "profiler", "dataset", "overhead", "storage", "oom", "paper")
	for _, pref := range paperTable3 {
		row, ok := r.Row(pref.profiler, pref.dataset)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-18s %-7s %10s %12s %6v   %s / %s\n",
			row.Profiler, row.Dataset, pct(row.Outcome.OverheadFrac),
			fmtBytes(row.Outcome.StorageBytes), row.Outcome.OOM,
			pref.overhead, pref.storage)
	}
	// The OOM claim: the PyTorch profiler buffers everything in memory; at
	// the real ImageNet's batch count it exceeds the machine's 128 GiB.
	fmt.Fprintf(&b, "\nPyTorch Profiler extrapolated to ImageNet scale (2502 batches): buffers %s, OOM=%v (paper: OOM)\n",
		fmtBytes(r.TorchMemAtImageNetScale), r.TorchOOMAtImageNetScale)
	// Storage scales linearly with dataset size / run length; our "full"
	// dataset is a fraction of the real ImageNet's 1.28M images.
	if r.FullSamples > 0 {
		scale := 1281167.0 / float64(r.FullSamples)
		if lotus, ok := r.Row("Lotus", "full"); ok {
			fmt.Fprintf(&b, "Lotus storage extrapolated to ImageNet scale: %s (paper: 299.2MB)\n",
				fmtBytes(int64(float64(lotus.Outcome.StorageBytes)*scale)))
		}
		if pyspy, ok := r.Row("py-spy", "full"); ok {
			fmt.Fprintf(&b, "py-spy storage extrapolated to ImageNet scale: %s (paper: 97.8MB)\n",
				fmtBytes(int64(float64(pyspy.Outcome.StorageBytes)*scale)))
		}
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
