package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/workloads"
)

// Fig4Result reports per-batch preprocessing-time distributions across the
// batch-size × GPU-count grid (paper Figure 4), plus the IS/OD variance
// comparison from § V-C.
type Fig4Result struct {
	Configs []Fig4Config
	// IQRRatio is IQR(b=1024)/IQR(b=128) averaged over GPU counts — the
	// paper reports up to 6.9x.
	IQRRatio float64
	// StdOfMeanMin/Max bound stddev/mean across IC configs (paper:
	// 5.48%–10.73%).
	StdOfMeanMin, StdOfMeanMax float64
	// ISStdOfMean / ODStdOfMean are the other pipelines' per-batch
	// variability (paper: 15.47% and 66.8%).
	ISStdOfMean, ODStdOfMean float64
}

// Fig4Config is one (batch size, GPUs) cell.
type Fig4Config struct {
	BatchSize, GPUs int
	Stats           trace.DistStats
}

// RunFig4 sweeps b ∈ {128,256,512,1024} × g ∈ {1..4} with loaders = g.
func RunFig4(scale Scale) *Fig4Result {
	res := &Fig4Result{StdOfMeanMin: 1}
	batchesPerConfig := 14
	if scale == Full {
		batchesPerConfig = 40
	}
	var iqrByGPU = map[int]map[int]time.Duration{}
	for _, g := range []int{1, 2, 3, 4} {
		iqrByGPU[g] = map[int]time.Duration{}
		for _, bs := range []int{128, 256, 512, 1024} {
			spec := workloads.ICSpec(bs*batchesPerConfig, 41)
			spec.BatchSize, spec.GPUs, spec.NumWorkers = bs, g, g
			a, _ := tracedRun(spec)
			st := trace.ComputeDistStats(a.PreprocessTimes())
			res.Configs = append(res.Configs, Fig4Config{BatchSize: bs, GPUs: g, Stats: st})
			iqrByGPU[g][bs] = st.IQR
			if st.StdOfMean < res.StdOfMeanMin {
				res.StdOfMeanMin = st.StdOfMean
			}
			if st.StdOfMean > res.StdOfMeanMax {
				res.StdOfMeanMax = st.StdOfMean
			}
		}
	}
	var ratioSum float64
	var n int
	for _, g := range []int{1, 2, 3, 4} {
		if small := iqrByGPU[g][128]; small > 0 {
			ratioSum += float64(iqrByGPU[g][1024]) / float64(small)
			n++
		}
	}
	if n > 0 {
		res.IQRRatio = ratioSum / float64(n)
	}

	// IS and OD single-config variability.
	isA, _ := tracedRun(workloads.ISSpec(scale.samples(64, 300), 42))
	res.ISStdOfMean = trace.ComputeDistStats(isA.PreprocessTimes()).StdOfMean
	odA, _ := tracedRun(workloads.ODSpec(scale.samples(128, 1500), 43))
	res.ODStdOfMean = trace.ComputeDistStats(odA.PreprocessTimes()).StdOfMean
	return res
}

// Render prints the per-config distribution table and the headline ratios.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("FIGURE 4 — per-batch preprocessing time across configurations\n\n")
	fmt.Fprintf(&b, "%6s %5s %10s %10s %10s %10s %10s %9s\n",
		"batch", "gpus", "mean_ms", "std_ms", "p25_ms", "p75_ms", "iqr_ms", "std/mean")
	for _, c := range r.Configs {
		fmt.Fprintf(&b, "%6d %5d %10s %10s %10s %10s %10s %9s\n",
			c.BatchSize, c.GPUs, ms(c.Stats.Mean), ms(c.Stats.Std),
			ms(c.Stats.P25), ms(c.Stats.P75), ms(c.Stats.IQR), pct(c.Stats.StdOfMean))
	}
	fmt.Fprintf(&b, "\nIC std/mean range: %s – %s   (paper: 5.48%% – 10.73%%)\n", pct(r.StdOfMeanMin), pct(r.StdOfMeanMax))
	fmt.Fprintf(&b, "IQR(b=1024)/IQR(b=128): %.1fx       (paper: up to 6.9x)\n", r.IQRRatio)
	fmt.Fprintf(&b, "IS std/mean: %s                  (paper: 15.47%%)\n", pct(r.ISStdOfMean))
	fmt.Fprintf(&b, "OD std/mean: %s                  (paper: 66.8%%)\n", pct(r.ODStdOfMean))
	return b.String()
}
