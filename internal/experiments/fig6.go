package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/clock"
	"lotus/internal/core/lotusmap"
	"lotus/internal/core/trace"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/workloads"
)

// Fig6Result is the § V-D case study: the IC pipeline at batch 1024 on 4
// GPUs with the number of data loader workers swept from 8 to 28, profiled
// end to end with the VTune-like sampler, and the function-level counters
// attributed to preprocessing operations via LotusMap + LotusTrace weights.
type Fig6Result struct {
	Arch    native.Arch
	Mapping *lotusmap.Mapping
	Points  []Fig6Point
	// E2EDropFrac is 1 - e2e(28)/e2e(8); the paper observes ~50%.
	E2EDropFrac float64
	// CPUGrowthFrac is cpu(28)/cpu(8) - 1; the paper observes +53%.
	CPUGrowthFrac float64
	// DiminishingReturns reports whether the marginal e2e improvement of the
	// last step is well below the first step's.
	DiminishingReturns bool
}

// Fig6Point is one worker-count configuration.
type Fig6Point struct {
	Workers int
	// (a) end-to-end epoch time.
	E2E time.Duration
	// (b) total preprocessing CPU seconds and its per-op split.
	TotalCPUSeconds float64
	OpCPUTime       map[string]time.Duration
	// (c,d) the hottest native functions by attributed CPU time.
	TopFunctions []hwsim.FuncRow
	// (e-h) counters attributed per preprocessing operation.
	PerOp map[string]hwsim.Counters
	// Unmapped is what the mapping could not place.
	Unmapped hwsim.Counters
}

// fig6Workers is the paper's sweep.
var fig6Workers = []int{8, 12, 16, 20, 24, 28}

// RunFig6 executes the sweep on the Intel/VTune configuration the paper
// presents; RunFig6Arch generalizes to AMD (whose analysis the paper defers
// to its artifact repository).
func RunFig6(scale Scale) *Fig6Result { return RunFig6Arch(scale, native.Intel) }

// RunFig6Arch executes the worker sweep for the given vendor, using that
// vendor's hardware profiler (VTune-like on Intel, uProf-like on AMD).
func RunFig6Arch(scale Scale, arch native.Arch) *Fig6Result {
	res := &Fig6Result{Arch: arch}
	sampler := func(seed int64) hwsim.SamplerConfig {
		if arch == native.AMD {
			return hwsim.UProfSampler(seed)
		}
		return hwsim.VTuneSampler(seed)
	}

	// One-time preparatory mapping step (§ IV-B): reconstruct the IC
	// mapping on this "machine".
	mapEngine := native.NewEngine(arch, native.DefaultCPU())
	mcfg := lotusmap.DefaultConfig(sampler(61), hwsim.DefaultModel(mapEngine.CPU()))
	if scale == Small {
		mcfg.MaxRuns = 20
	}
	protoSpec := workloads.ICSpec(4, 61)
	protoSpec.Arch = arch
	proto := protoSpec.Prototype()
	proto.Width, proto.Height = proto.Width*2, proto.Height*2
	proto.FileBytes *= 4
	res.Mapping = lotusmap.MapPipeline(mapEngine, protoSpec.MappingCompose(), proto, mcfg)

	// The sweep needs batches >> workers: with fewer batches than workers,
	// dispatch can never keep 28 workers concurrently busy and the
	// contention trends vanish.
	batchSize := 128
	batches := 60
	if scale == Full {
		batchSize = 1024
		batches = 60
	}
	for _, w := range fig6Workers {
		spec := workloads.ICSpec(batchSize*batches, 62)
		spec.BatchSize, spec.GPUs, spec.NumWorkers = batchSize, 4, w
		spec.Arch = arch

		engine := native.NewEngine(arch, native.DefaultCPU())
		sess := hwsim.NewSession(engine)
		sess.Resume(clock.Epoch)

		col := &collector{}
		stats, _, sim := spec.RunWithEngine(col.hooks(), engine)
		sess.Detach(clock.Epoch.Add(sim.Elapsed()))

		a := trace.Analyze(col.records)
		report := sess.Collect(sampler(63), hwsim.DefaultModel(engine.CPU()), "hwprof")
		weights := a.OpWeights(spec.OpOrder())
		att := lotusmap.Attribute(report, res.Mapping, weights)

		point := Fig6Point{
			Workers:         w,
			E2E:             stats.Elapsed,
			TotalCPUSeconds: a.TotalCPUSeconds(),
			OpCPUTime:       a.OpCPUTime(),
			PerOp:           att.PerOp,
			Unmapped:        att.Unmapped,
		}
		top := report.Rows
		if len(top) > 10 {
			top = top[:10]
		}
		point.TopFunctions = append(point.TopFunctions, top...)
		res.Points = append(res.Points, point)
	}

	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.E2E > 0 {
		res.E2EDropFrac = 1 - float64(last.E2E)/float64(first.E2E)
	}
	if first.TotalCPUSeconds > 0 {
		res.CPUGrowthFrac = last.TotalCPUSeconds/first.TotalCPUSeconds - 1
	}
	if len(res.Points) >= 3 {
		firstStep := float64(res.Points[0].E2E - res.Points[1].E2E)
		lastStep := float64(res.Points[len(res.Points)-2].E2E - res.Points[len(res.Points)-1].E2E)
		res.DiminishingReturns = lastStep < firstStep/2
	}
	return res
}

// Render prints the panel series.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 6 — hardware case study: IC, batch 1024, 4 GPUs, workers 8..28 (%s)\n\n", r.Arch)
	b.WriteString("(a,b) end-to-end time and preprocessing CPU seconds\n")
	fmt.Fprintf(&b, "%8s %12s %12s\n", "workers", "e2e", "cpu_sec")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %12v %12.1f\n", p.Workers, p.E2E.Round(time.Millisecond), p.TotalCPUSeconds)
	}
	fmt.Fprintf(&b, "e2e drop 8->28: %s (paper ~50%%); cpu growth: %+.1f%% (paper +53%%); diminishing returns: %v\n\n",
		pct(r.E2EDropFrac), 100*r.CPUGrowthFrac, r.DiminishingReturns)

	if len(r.Points) > 0 {
		b.WriteString("(c,d) hottest native functions at the highest worker count\n")
		last := r.Points[len(r.Points)-1]
		for _, row := range last.TopFunctions {
			fmt.Fprintf(&b, "  %-40s %-40s %10v\n", row.Symbol, row.Library, row.Counters.CPUTime.Round(time.Millisecond))
		}
		b.WriteString("\n")
	}

	b.WriteString("(e-h) per-operation hardware metrics vs workers\n")
	ops := []string{"Loader", "RandomResizedCrop", "ToTensor", "Normalize", "Collate"}
	for _, op := range ops {
		fmt.Fprintf(&b, "%s\n", op)
		fmt.Fprintf(&b, "  %8s %12s %14s %10s %10s\n", "workers", "cpu_time", "uops/cycle", "fe_bound", "dram_bound")
		for _, p := range r.Points {
			c, ok := p.PerOp[op]
			if !ok {
				continue
			}
			upc := 0.0
			if c.Cycles > 0 {
				upc = c.UopsDelivered / c.Cycles
			}
			fmt.Fprintf(&b, "  %8d %12v %14.2f %10s %10s\n",
				p.Workers, c.CPUTime.Round(time.Millisecond), upc,
				pct(c.FrontEndBoundFrac()), pct(c.DRAMBoundFrac()))
		}
	}
	b.WriteString("\npaper: CPU time rises for all ops; µop supply to the backend falls (f), the\n")
	b.WriteString("       workload becomes front-end bound (g), and DRAM-bound stalls fall (h)\n")
	return b.String()
}

// OpSeries extracts one op's metric across worker counts (used by tests and
// the ablation benches).
func (r *Fig6Result) OpSeries(op string, metric func(hwsim.Counters) float64) []float64 {
	var out []float64
	for _, p := range r.Points {
		if c, ok := p.PerOp[op]; ok {
			out = append(out, metric(c))
		}
	}
	return out
}
