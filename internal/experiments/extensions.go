package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/autotune"
	"lotus/internal/clock"
	"lotus/internal/core/lotusmap"
	"lotus/internal/core/trace"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/workloads"
)

// ExtensionsResult collects the beyond-the-paper studies: the optimization
// directions the paper points at (Takeaways 2, 4, 5 and the § IV-B
// future-work refinement), each evaluated against the simulator's oracles.
type ExtensionsResult struct {
	// Dispatch policy comparison (Takeaway 4 / SpeedyLoader direction).
	ProducerOOO, LeastWorkOOO           int
	ProducerMaxDelay, LeastWorkMaxDelay time.Duration

	// Offline preprocessing (Takeaway 2).
	OnlineEpoch, OfflineEpoch     time.Duration
	OnlineGPUUtil, OfflineGPUUtil float64

	// Attribution refinement (§ IV-B future work) scored against the
	// ground-truth oracle.
	BasicAttrError, RefinedAttrError float64

	// Autotuner (Takeaway 5): evaluations needed per pipeline.
	ICTuneSteps, ISTuneSteps   int
	ICTuneChoice, ISTuneChoice int
	ICTuneReason, ISTuneReason string
}

// RunExtensions executes all extension studies.
func RunExtensions(scale Scale) *ExtensionsResult {
	res := &ExtensionsResult{}

	// --- dispatch policies ---
	runDispatch := func(policy pipeline.DispatchPolicy, sizeAware bool) (int, time.Duration) {
		spec := workloads.ICSpec(scale.samples(64*30, 64*120), 81)
		spec.BatchSize, spec.GPUs, spec.NumWorkers = 64, 4, 4
		spec.Dispatch = policy
		spec.SizeAware = sizeAware
		a, _ := tracedRun(spec)
		return len(a.OutOfOrderBatches()), a.MaxDelay()
	}
	res.ProducerOOO, res.ProducerMaxDelay = runDispatch(pipeline.DispatchProducer, false)
	res.LeastWorkOOO, res.LeastWorkMaxDelay = runDispatch(pipeline.DispatchLeastWork, true)

	// --- offline preprocessing ---
	online := workloads.ICSpec(scale.samples(512, 4096), 82)
	onStats, _, _ := online.Run(nil)
	offline := workloads.ICSpec(scale.samples(512, 4096), 82)
	offline.OfflineDecode = true
	offStats, _, _ := offline.Run(nil)
	res.OnlineEpoch, res.OfflineEpoch = onStats.Elapsed, offStats.Elapsed
	res.OnlineGPUUtil, res.OfflineGPUUtil = onStats.GPUUtilization(), offStats.GPUUtilization()

	// --- attribution refinement vs oracle ---
	res.BasicAttrError, res.RefinedAttrError = attributionErrors(scale)

	// --- autotuner ---
	icSpec := workloads.ICSpec(scale.samples(640, 2560), 83)
	icSpec.BatchSize, icSpec.GPUs = 64, 4
	ic := autotune.Tune(icSpec, autotune.Config{MinWorkers: 1, MaxWorkers: 16})
	res.ICTuneSteps, res.ICTuneChoice, res.ICTuneReason = len(ic.Steps), ic.Best.Workers, ic.StopReason
	is := autotune.Tune(workloads.ISSpec(scale.samples(24, 64), 84), autotune.Config{MinWorkers: 2, MaxWorkers: 16})
	res.ISTuneSteps, res.ISTuneChoice, res.ISTuneReason = len(is.Steps), is.Best.Workers, is.StopReason

	return res
}

// attributionErrors runs one traced+recorded epoch, reconstructs the
// mapping, and scores both splitting schemes against TrueOpCounters.
func attributionErrors(scale Scale) (basic, refined float64) {
	engine := native.NewEngine(native.Intel, native.DefaultCPU())
	rec := native.NewRecording()
	engine.Attach(rec)

	col := &collector{}
	spec := workloads.ICSpec(scale.samples(120, 640), 85)
	spec.BatchSize, spec.NumWorkers = 12, 2
	_, _, sim := spec.RunWithEngine(col.hooks(), engine)
	engine.Detach()

	model := hwsim.DefaultModel(engine.CPU())
	cfg := lotusmap.DefaultConfig(hwsim.UProfSampler(86), model)
	proto := spec.Prototype()
	proto.Width, proto.Height, proto.FileBytes = proto.Width*2, proto.Height*2, proto.FileBytes*4
	mapping := lotusmap.MapPipeline(engine, spec.MappingCompose(), proto, cfg)

	sampler := hwsim.UProfSampler(87)
	window := hwsim.TimeRange{Start: clock.Epoch, End: clock.Epoch.Add(sim.Elapsed())}
	report := hwsim.BuildReport(hwsim.NewSampler(sampler, model).Run(rec, []hwsim.TimeRange{window}), "uprof", engine.Arch())

	a := trace.Analyze(col.records)
	weights := a.OpWeights(spec.OpOrder())
	truth := lotusmap.TrueOpCounters(rec, col.records, model)
	basic = lotusmap.AttributionError(lotusmap.Attribute(report, mapping, weights), truth)
	refined = lotusmap.AttributionError(lotusmap.AttributeRefined(report, mapping, weights), truth)
	return basic, refined
}

// Render prints the four studies.
func (r *ExtensionsResult) Render() string {
	var b strings.Builder
	b.WriteString("EXTENSIONS — optimization directions the paper motivates, evaluated on the simulator\n\n")

	b.WriteString("Takeaway 4 — index dispatch policy (IC, b=64, 4 workers, 4 GPUs):\n")
	fmt.Fprintf(&b, "  producer (PyTorch):    %3d OOO arrivals, max delay %v\n",
		r.ProducerOOO, r.ProducerMaxDelay.Round(time.Millisecond))
	fmt.Fprintf(&b, "  least-work+size-aware: %3d OOO arrivals, max delay %v\n\n",
		r.LeastWorkOOO, r.LeastWorkMaxDelay.Round(time.Millisecond))

	b.WriteString("Takeaway 2 — offline decode (IC, Table II config):\n")
	fmt.Fprintf(&b, "  online:  epoch %v, GPU utilization %s\n",
		r.OnlineEpoch.Round(time.Millisecond), pct(r.OnlineGPUUtil))
	fmt.Fprintf(&b, "  offline: epoch %v, GPU utilization %s\n\n",
		r.OfflineEpoch.Round(time.Millisecond), pct(r.OfflineGPUUtil))

	b.WriteString("§ IV-B future work — hardware-metric splitting vs ground-truth oracle:\n")
	fmt.Fprintf(&b, "  basic elapsed-time weights:  error %.3f\n", r.BasicAttrError)
	fmt.Fprintf(&b, "  refined per-function mix:    error %.3f\n\n", r.RefinedAttrError)

	b.WriteString("Takeaway 5 — trace-signal autotuner:\n")
	fmt.Fprintf(&b, "  IC: %d evaluations -> %d workers (%s)\n", r.ICTuneSteps, r.ICTuneChoice, r.ICTuneReason)
	fmt.Fprintf(&b, "  IS: %d evaluations -> %d workers (%s)\n", r.ISTuneSteps, r.ISTuneChoice, r.ISTuneReason)
	return b.String()
}
