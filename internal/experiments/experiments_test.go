package experiments

import (
	"strings"
	"testing"
	"time"

	"lotus/internal/hwsim"
	"lotus/internal/workloads"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig6amd", "table3", "table4", "extensions"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d is %q, want %q", i, all[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestTable1MappingRecoversPaperFunctions(t *testing.T) {
	res := RunTable1(Small)
	if res.Intel == nil || res.AMD == nil {
		t.Fatal("missing vendor mapping")
	}
	// The dominant decode kernels of the paper's Table I must be present on
	// both vendors.
	for _, m := range []struct {
		name string
		ops  map[string][]string
	}{} {
		_ = m
	}
	check := func(name string, mOps map[string]bool, syms ...string) {
		for _, s := range syms {
			if !mOps[s] {
				t.Errorf("%s missing %s", name, s)
			}
		}
	}
	intelLoader := map[string]bool{}
	for _, f := range res.Intel.Ops["Loader"] {
		intelLoader[f.Symbol] = true
	}
	check("intel Loader", intelLoader, "decode_mcu", "jpeg_idct_islow", "ycc_rgb_convert")
	amdLoader := map[string]bool{}
	for _, f := range res.AMD.Ops["Loader"] {
		amdLoader[f.Symbol] = true
	}
	check("amd Loader", amdLoader, "decode_mcu", "ycc_rgb_convert")
	if !strings.Contains(res.Render(), "TABLE I") {
		t.Fatal("render missing header")
	}
	// AMD's finer sampling should deliver at least as good Loader recall.
	var intelRecall, amdRecall float64
	for _, q := range res.IntelQuality {
		if q.Op == "Loader" {
			intelRecall = q.Recall
		}
	}
	for _, q := range res.AMDQuality {
		if q.Op == "Loader" {
			amdRecall = q.Recall
		}
	}
	if amdRecall < 0.5 || intelRecall < 0.3 {
		t.Fatalf("Loader recall too low: intel=%.2f amd=%.2f", intelRecall, amdRecall)
	}
}

func TestTable2ShapesMatchPaper(t *testing.T) {
	res := RunTable2(Small)
	if len(res.Pipelines) != 3 {
		t.Fatalf("%d pipelines", len(res.Pipelines))
	}
	byKind := map[workloads.Kind]Table2Pipeline{}
	for _, p := range res.Pipelines {
		byKind[p.Kind] = p
	}
	ic := byKind[workloads.IC]
	if ic.Stats["Loader"].Mean < ic.Stats["RandomResizedCrop"].Mean {
		t.Fatal("IC: Loader must dominate RRC")
	}
	// Takeaway 1: sub-10ms ops everywhere.
	if frac := ic.ShortOps(10 * time.Millisecond); frac < 0.5 {
		t.Fatalf("IC short-op fraction %.2f", frac)
	}
	is := byKind[workloads.IS]
	if is.Stats["RandBalancedCrop"].P90 < is.Stats["RandBalancedCrop"].Mean {
		t.Fatal("IS: RBC P90 below mean")
	}
	od := byKind[workloads.OD]
	if od.Stats["Resize"].Mean < od.Stats["RandomHorizontalFlip"].Mean {
		t.Fatal("OD: Resize must dominate RHF")
	}
	if !strings.Contains(res.Render(), "paper Avg") {
		t.Fatal("render missing paper comparison")
	}
}

func TestFig2BottleneckVerdicts(t *testing.T) {
	res := RunFig2(Small)
	verdicts := map[workloads.Kind]Fig2Row{}
	for _, row := range res.Rows {
		verdicts[row.Kind] = row
	}
	if !verdicts[workloads.IC].PreprocessingBound {
		t.Fatalf("IC must be preprocessing-bound: %+v", verdicts[workloads.IC])
	}
	if verdicts[workloads.IS].PreprocessingBound {
		t.Fatalf("IS must be GPU-bound: %+v", verdicts[workloads.IS])
	}
	if verdicts[workloads.OD].PreprocessingBound {
		t.Fatalf("OD must be GPU-bound: %+v", verdicts[workloads.OD])
	}
	// GPU-bound pipelines show delays well beyond a single GPU batch time.
	if verdicts[workloads.IS].MaxDelay < 2*verdicts[workloads.IS].GPUBatchTime {
		t.Fatalf("IS max delay %v vs gpu batch %v", verdicts[workloads.IS].MaxDelay, verdicts[workloads.IS].GPUBatchTime)
	}
	// IC's parallel preprocessing must overlap in the trace (Fig 2a).
	if !verdicts[workloads.IC].WorkersOverlap {
		t.Fatal("IC worker spans should overlap")
	}
	if len(res.Traces[workloads.IC]) == 0 {
		t.Fatal("missing chrome trace export")
	}
}

func TestFig3FindsOutOfOrderArrivals(t *testing.T) {
	res := RunFig3(Small)
	if len(res.OOOBatches) == 0 {
		t.Fatal("no out-of-order arrivals with 4 workers and variable batches")
	}
	if !res.Example.Found {
		t.Fatal("no concrete OOO example extracted")
	}
	if res.Example.DelayedBy <= 0 {
		t.Fatal("OOO example has no delay")
	}
}

func TestFig4VarianceTrends(t *testing.T) {
	res := RunFig4(Small)
	if len(res.Configs) != 16 {
		t.Fatalf("%d configs, want 16", len(res.Configs))
	}
	// IQR grows with batch size (paper: up to 6.9x from 128 to 1024). Our
	// batches are i.i.d. sums, so the growth follows ~sqrt(1024/128)=2.8;
	// at Small scale quartile estimates are noisy, so require >1.5.
	if res.IQRRatio < 1.5 {
		t.Fatalf("IQR ratio %.1f — larger batches must have wider IQR", res.IQRRatio)
	}
	// The std/mean band overlaps the paper's 5.48–10.73%.
	if res.StdOfMeanMax < 0.03 || res.StdOfMeanMin > 0.30 {
		t.Fatalf("std/mean band [%.3f, %.3f] far from paper's", res.StdOfMeanMin, res.StdOfMeanMax)
	}
	// OD is the most variable pipeline (paper: 66.8% vs IS 15.47%).
	if res.ODStdOfMean <= res.StdOfMeanMax {
		t.Fatalf("OD std/mean %.3f should exceed IC's %.3f", res.ODStdOfMean, res.StdOfMeanMax)
	}
}

func TestFig5WaitAndDelay(t *testing.T) {
	res := RunFig5(Small)
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Figure 5a: substantial fractions of batches wait >500ms; the GPU
		// stalls on preprocessing.
		if row.WaitsOver500 < 0.20 {
			t.Fatalf("g=%d: waits>500ms only %.2f (paper: 30.84%%-100%%)", row.GPUs, row.WaitsOver500)
		}
		if !row.GPUStallsExist {
			t.Fatalf("g=%d: no waits exceeding GPU batch time", row.GPUs)
		}
	}
	// Figure 5b: multi-loader configs see delayed batches; single-loader
	// sees almost none (paper excepts b512 g1).
	if res.Rows[0].DelaysOver500 > 0.2 {
		t.Fatalf("g=1 delays>500ms = %.2f, should be small", res.Rows[0].DelaysOver500)
	}
	multi := false
	for _, row := range res.Rows[1:] {
		if row.DelaysOver500 > 0.05 && row.OOOBatches > 0 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("no multi-loader config shows delayed batches with OOO events")
	}
}

func TestFig6HardwareTrends(t *testing.T) {
	res := RunFig6(Small)
	if len(res.Points) != 6 {
		t.Fatalf("%d points", len(res.Points))
	}
	// (a) e2e falls substantially from 8 to 28 workers.
	if res.E2EDropFrac < 0.25 {
		t.Fatalf("e2e drop %.2f — paper observes ~50%%", res.E2EDropFrac)
	}
	// (b) CPU seconds grow.
	if res.CPUGrowthFrac < 0.15 {
		t.Fatalf("cpu growth %.2f — paper observes +53%%", res.CPUGrowthFrac)
	}
	// (e) per-op CPU time rises with workers for the major ops.
	for _, op := range []string{"Loader", "RandomResizedCrop"} {
		series := res.OpSeries(op, func(c hwsim.Counters) float64 { return float64(c.CPUTime) })
		if len(series) < 2 || series[len(series)-1] <= series[0] {
			t.Fatalf("%s CPU time did not rise: %v", op, series)
		}
	}
	// (f) µops delivered per cycle falls; (g) front-end bound rises;
	// (h) DRAM bound falls — for the dominant op.
	upc := res.OpSeries("Loader", func(c hwsim.Counters) float64 {
		if c.Cycles == 0 {
			return 0
		}
		return c.UopsDelivered / c.Cycles
	})
	fe := res.OpSeries("Loader", func(c hwsim.Counters) float64 { return c.FrontEndBoundFrac() })
	dram := res.OpSeries("Loader", func(c hwsim.Counters) float64 { return c.DRAMBoundFrac() })
	if upc[len(upc)-1] >= upc[0] {
		t.Fatalf("µop delivery should fall with workers: %v", upc)
	}
	if fe[len(fe)-1] <= fe[0] {
		t.Fatalf("front-end bound should rise with workers: %v", fe)
	}
	if dram[len(dram)-1] >= dram[0] {
		t.Fatalf("DRAM bound should fall with workers: %v", dram)
	}
	if !strings.Contains(res.Render(), "FIGURE 6") {
		t.Fatal("render broken")
	}
}

func TestTable3OverheadOrdering(t *testing.T) {
	res := RunTable3(Small)
	get := func(p, d string) Table3Row {
		row, ok := res.Row(p, d)
		if !ok {
			t.Fatalf("missing row %s/%s", p, d)
		}
		return row
	}
	lotusFull := get("Lotus", "full")
	scalene := get("Scalene", "full")
	pyspy := get("py-spy", "full")
	austin := get("austin", "small")
	torch := get("PyTorch Profiler", "small")
	lotusSmall := get("Lotus", "small")

	// Overhead ordering (Table III): Lotus < austin < py-spy << Scalene/Torch.
	if lotusFull.Outcome.OverheadFrac > 0.05 {
		t.Fatalf("Lotus overhead %.3f — paper ~0%%", lotusFull.Outcome.OverheadFrac)
	}
	if !(scalene.Outcome.OverheadFrac > 0.5 && torch.Outcome.OverheadFrac > 0.5) {
		t.Fatalf("heavy profilers not heavy: scalene=%.2f torch=%.2f",
			scalene.Outcome.OverheadFrac, torch.Outcome.OverheadFrac)
	}
	if pyspy.Outcome.OverheadFrac < lotusFull.Outcome.OverheadFrac {
		t.Fatal("py-spy should cost more than Lotus")
	}
	// Storage: austin explodes relative to Lotus (paper: 1000x).
	if austin.Outcome.StorageBytes < 50*lotusSmall.Outcome.StorageBytes {
		t.Fatalf("austin storage %d vs lotus %d — expected orders of magnitude more",
			austin.Outcome.StorageBytes, lotusSmall.Outcome.StorageBytes)
	}
	// PyTorch profiler OOMs at real-ImageNet scale, survives small.
	if !res.TorchOOMAtImageNetScale {
		t.Fatalf("torch profiler should OOM at ImageNet scale (buffers %d)", res.TorchMemAtImageNetScale)
	}
	if torch.Outcome.OOM {
		t.Fatal("torch profiler should survive the small dataset")
	}
	// Lotus storage grows with dataset size (it is measured, not modeled).
	if lotusFull.Outcome.StorageBytes <= lotusSmall.Outcome.StorageBytes {
		t.Fatal("lotus log should grow with dataset")
	}
}

func TestTable4Render(t *testing.T) {
	res := RunTable4(Small)
	out := res.Render()
	if !strings.Contains(out, "Lotus") || !strings.Contains(out, "PyTorch Profiler") {
		t.Fatal("render incomplete")
	}
	for _, row := range res.Rows {
		if row.Profiler == "Lotus" {
			c := row.Caps
			if !(c.Epoch && c.Batch && c.Async && c.Wait && c.Delay) {
				t.Fatalf("Lotus caps %+v", c)
			}
		}
	}
}

func TestExtensionsStudies(t *testing.T) {
	res := RunExtensions(Small)
	// Takeaway 2: offline decode must shorten the epoch and raise GPU use.
	if res.OfflineEpoch >= res.OnlineEpoch {
		t.Fatalf("offline %v should beat online %v", res.OfflineEpoch, res.OnlineEpoch)
	}
	if res.OfflineGPUUtil <= res.OnlineGPUUtil {
		t.Fatal("offline decode should raise GPU utilization")
	}
	// Takeaway 4: the least-work policy must not worsen the tail.
	if res.LeastWorkMaxDelay > res.ProducerMaxDelay+res.ProducerMaxDelay/4 {
		t.Fatalf("least-work max delay %v vs producer %v", res.LeastWorkMaxDelay, res.ProducerMaxDelay)
	}
	// Attribution: both schemes close to the oracle; refined not worse.
	if res.BasicAttrError > 0.5 {
		t.Fatalf("basic attribution error %.3f implausible", res.BasicAttrError)
	}
	if res.RefinedAttrError > res.BasicAttrError+0.02 {
		t.Fatalf("refined error %.3f worse than basic %.3f", res.RefinedAttrError, res.BasicAttrError)
	}
	// Takeaway 5: the GPU-bound IS pipeline needs almost no search.
	if res.ISTuneSteps > 3 {
		t.Fatalf("IS tuning took %d evaluations", res.ISTuneSteps)
	}
	if !strings.Contains(res.Render(), "Takeaway 5") {
		t.Fatal("render incomplete")
	}
}
