// Package experiments regenerates every table and figure of the paper's
// evaluation (§ V and § VI) on the simulated substrate. Each experiment is a
// pure function from a Scale to a typed result whose Render method prints
// the same rows/series the paper reports, side by side with the paper's
// values where the paper states them.
//
// Absolute numbers are not expected to match — the substrate is a calibrated
// simulator, not the authors' testbed — but the shapes are: which operation
// dominates, which pipeline is GPU-bound, where the diminishing returns
// start, who has the smallest overhead.
package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"lotus/internal/native"

	"lotus/internal/core/trace"
	"lotus/internal/pipeline"
	"lotus/internal/workloads"
)

// Scale selects how much data an experiment processes. Small keeps unit
// tests fast; Full is what cmd/lotus-bench and the benchmarks run.
type Scale int

const (
	Small Scale = iota
	Full
)

// samples scales a dataset size by the Scale.
func (s Scale) samples(small, full int) int {
	if s == Full {
		return full
	}
	return small
}

// Result is what every experiment returns.
type Result interface {
	// Render prints the experiment's rows in the paper's shape.
	Render() string
}

// Experiment binds an ID (the paper artifact it regenerates) to its runner.
type Experiment struct {
	// ID names the artifact: "table1" .. "table4", "fig2" .. "fig6".
	ID string
	// Title is the paper artifact's caption, abbreviated.
	Title string
	// Run executes the experiment.
	Run func(Scale) Result
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Mapping of Python functions to C/C++ functions (Intel & AMD)", Run: func(s Scale) Result { return RunTable1(s) }},
		{ID: "table2", Title: "Per-operation elapsed time statistics for IC/IS/OD", Run: func(s Scale) Result { return RunTable2(s) }},
		{ID: "fig2", Title: "Coarse traces: preprocessing- vs GPU-bound pipelines", Run: func(s Scale) Result { return RunFig2(s) }},
		{ID: "fig3", Title: "Out-of-order arrival causes waiting despite batch ready", Run: func(s Scale) Result { return RunFig3(s) }},
		{ID: "fig4", Title: "Per-batch preprocessing time variance across configs", Run: func(s Scale) Result { return RunFig4(s) }},
		{ID: "fig5", Title: "Wait and delay time distributions (batch 512)", Run: func(s Scale) Result { return RunFig5(s) }},
		{ID: "fig6", Title: "Hardware case study: varying data loader workers", Run: func(s Scale) Result { return RunFig6(s) }},
		{ID: "fig6amd", Title: "Hardware case study on AMD (paper defers this to its artifact)", Run: func(s Scale) Result { return RunFig6Arch(s, native.AMD) }},
		{ID: "table3", Title: "Profiler time and storage overheads", Run: func(s Scale) Result { return RunTable3(s) }},
		{ID: "table4", Title: "Profiler functionality comparison", Run: func(s Scale) Result { return RunTable4(s) }},
		{ID: "extensions", Title: "Beyond the paper: dispatch, offline decode, refined attribution, autotuning", Run: func(s Scale) Result { return RunExtensions(s) }},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// tracedRun executes one simulated epoch of the spec with LotusTrace
// attached and returns the analysis plus the epoch stats.
func tracedRun(spec workloads.Spec) (*trace.Analysis, runStats) {
	var buf bytes.Buffer
	tr := trace.NewTracer(&buf)
	stats, _, sim := spec.Run(tr.Hooks())
	_ = tr.Flush()
	recs, err := trace.ReadLog(&buf)
	if err != nil {
		panic(fmt.Sprintf("experiments: traced run produced unparseable log: %v", err))
	}
	return trace.Analyze(recs), runStats{
		Elapsed: stats.Elapsed, GPUBusy: stats.GPUBusy, GPUIdle: stats.GPUIdle,
		MainWait: stats.MainWaitTime, Batches: stats.Batches, OOO: stats.OOOEvents,
		SimEnd: sim.Elapsed(), TraceBytes: int64(buf.Len()), TraceRecords: tr.Records(),
	}
}

type runStats struct {
	Elapsed      time.Duration
	GPUBusy      time.Duration
	GPUIdle      time.Duration
	MainWait     time.Duration
	Batches      int
	OOO          int
	SimEnd       time.Duration
	TraceBytes   int64
	TraceRecords int
}

func (r runStats) gpuUtil() float64 {
	total := r.GPUBusy + r.GPUIdle
	if total == 0 {
		return 0
	}
	return float64(r.GPUBusy) / float64(total)
}

// hooksFor builds hooks that only accumulate (no log I/O) — used by sweeps
// that need analyses but not log files.
type collector struct {
	records []trace.Record
}

func (c *collector) hooks() *pipeline.Hooks {
	return &pipeline.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			c.records = append(c.records, trace.Record{Kind: trace.KindOp, PID: pid, BatchID: batchID, SampleIndex: sampleIndex, Op: op, Start: start, Dur: dur})
		},
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) {
			c.records = append(c.records, trace.Record{Kind: trace.KindBatchPreprocessed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchWait: func(pid, batchID int, start time.Time, dur time.Duration) {
			c.records = append(c.records, trace.Record{Kind: trace.KindBatchWait, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchConsumed: func(pid, batchID int, start time.Time, dur time.Duration) {
			c.records = append(c.records, trace.Record{Kind: trace.KindBatchConsumed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
	}
}

// ms formats a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// sortedKeys returns map keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
