package experiments

import (
	"fmt"
	"strings"

	"lotus/internal/profilers"
)

// Table4Result is the profiler functionality matrix (paper Table IV),
// derived from each tool's mechanism.
type Table4Result struct {
	Rows []Table4Row
}

// Table4Row is one profiler's capabilities.
type Table4Row struct {
	Profiler string
	Caps     profilers.Capability
}

// RunTable4 derives the matrix. The Scale is unused (the matrix is
// mechanism-determined), kept for interface uniformity.
func RunTable4(Scale) *Table4Result {
	res := &Table4Result{}
	for _, p := range profilers.All() {
		res.Rows = append(res.Rows, Table4Row{Profiler: p.Name, Caps: p.Functionality()})
	}
	return res
}

// Render prints the check-mark matrix.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("TABLE IV — profiler functionality\n\n")
	fmt.Fprintf(&b, "%-18s %6s %6s %6s %6s %6s\n", "profiler", "epoch", "batch", "async", "wait", "delay")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %6s %6s %6s %6s %6s\n", row.Profiler,
			mark(row.Caps.Epoch), mark(row.Caps.Batch), mark(row.Caps.Async),
			mark(row.Caps.Wait), mark(row.Caps.Delay))
	}
	b.WriteString("\npaper: only Lotus captures all five; py-spy/austin capture epoch-level only;\n")
	b.WriteString("       the PyTorch profiler captures main-process wait only; Scalene none\n")
	return b.String()
}
