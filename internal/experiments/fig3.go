package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/workloads"
)

// Fig3Result demonstrates out-of-order batch arrivals: batches that were
// ready before the main process wanted them (logged with the 1 µs no-wait
// marker) while the main process was busy pinning other workers' batches
// (paper Figure 3 / Takeaway 4).
type Fig3Result struct {
	Batches    int
	OOOBatches []int
	// WaitBeforeOOO is the main-process wait for the batch consumed right
	// before each OOO batch — the stall the OOO arrival sat behind.
	Example Fig3Example
}

// Fig3Example documents one concrete out-of-order event.
type Fig3Example struct {
	Found bool
	// BatchID arrived early; it waited DelayedBy after being preprocessed.
	BatchID   int
	DelayedBy time.Duration
}

// RunFig3 runs the IC pipeline with multiple loaders (OOO requires >= 2) and
// extracts the out-of-order events.
func RunFig3(scale Scale) *Fig3Result {
	spec := workloads.ICSpec(scale.samples(768, 8192), 31)
	spec.BatchSize, spec.NumWorkers, spec.GPUs = 64, 4, 4
	a, stats := tracedRun(spec)
	res := &Fig3Result{Batches: stats.Batches, OOOBatches: a.OutOfOrderBatches()}
	for _, bi := range a.Batches() {
		if bi.OutOfOrder() && bi.Delay() > 0 {
			res.Example = Fig3Example{Found: true, BatchID: bi.ID, DelayedBy: bi.Delay()}
			break
		}
	}
	return res
}

// Render summarizes the finding.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("FIGURE 3 — out-of-order arrivals\n\n")
	fmt.Fprintf(&b, "batches: %d; arrived out of order: %d (%.1f%%)\n",
		r.Batches, len(r.OOOBatches), 100*float64(len(r.OOOBatches))/float64(maxInt(1, r.Batches)))
	if r.Example.Found {
		fmt.Fprintf(&b, "example: batch %d was preprocessed %v before the main process consumed it,\n",
			r.Example.BatchID, r.Example.DelayedBy.Round(time.Millisecond))
		b.WriteString("         despite being ready when requested (1µs wait marker) — the main process\n")
		b.WriteString("         was busy pinning other workers' batches from the shared data queue\n")
	}
	b.WriteString("\npaper: the shared data queue among multiple data loaders causes the main process\n")
	b.WriteString("       to wait despite the desired batch being ready (Takeaway 4)\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
