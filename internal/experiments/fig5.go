package experiments

import (
	"fmt"
	"strings"
	"time"

	"lotus/internal/workloads"
)

// Fig5Result reports, for batch size 512 and varying GPU/loader counts, the
// fractions of batches with main-process wait > 500 ms (Figure 5a) and with
// delay > 500 ms (Figure 5b).
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5Row is one GPU-count configuration.
type Fig5Row struct {
	GPUs, Workers  int
	Batches        int
	WaitsOver500   float64
	DelaysOver500  float64
	OOOBatches     int
	MaxGPUBatch    time.Duration
	GPUStallsExist bool
}

// RunFig5 sweeps g ∈ {1..4} with workers = g at b = 512.
func RunFig5(scale Scale) *Fig5Result {
	res := &Fig5Result{}
	batches := 8
	if scale == Full {
		batches = 30
	}
	for _, g := range []int{1, 2, 3, 4} {
		spec := workloads.ICSpec(512*batches, 51)
		spec.BatchSize, spec.GPUs, spec.NumWorkers = 512, g, g
		a, stats := tracedRun(spec)
		row := Fig5Row{
			GPUs: g, Workers: g, Batches: stats.Batches,
			WaitsOver500:  a.WaitsOver(500 * time.Millisecond),
			DelaysOver500: a.DelaysOver(500 * time.Millisecond),
			OOOBatches:    len(a.OutOfOrderBatches()),
			MaxGPUBatch:   spec.GPU.BatchTime(512, g),
		}
		// Waits exceeding the GPU batch time mean the GPU stalled on
		// preprocessing (§ V-C2).
		row.GPUStallsExist = a.WaitsOver(row.MaxGPUBatch) > 0
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the two panels' series.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("FIGURE 5 — wait and delay times at batch size 512\n\n")
	fmt.Fprintf(&b, "%5s %8s %9s %13s %14s %6s %10s\n",
		"gpus", "workers", "batches", "wait>500ms", "delay>500ms", "ooo", "gpu_stall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5d %8d %9d %13s %14s %6d %10v\n",
			row.GPUs, row.Workers, row.Batches,
			pct(row.WaitsOver500), pct(row.DelaysOver500), row.OOOBatches, row.GPUStallsExist)
	}
	b.WriteString("\npaper: (a) 30.84%–100% of batches wait >500ms — exceeding the max GPU batch time,\n")
	b.WriteString("       so the GPU stalls on preprocessing; (b) with >1 data loader, 32.1%–61.6%\n")
	b.WriteString("       of batches are delayed >500ms by out-of-order arrivals\n")
	return b.String()
}
