package experiments

import (
	"fmt"
	"strings"

	"lotus/internal/core/lotusmap"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/workloads"
)

// Table1Result is the reconstructed Python→C/C++ mapping for the IC
// pipeline on both vendors, with quality metrics against the simulator's
// ground truth.
type Table1Result struct {
	Intel *lotusmap.Mapping
	AMD   *lotusmap.Mapping
	// Quality per vendor, per op.
	IntelQuality []lotusmap.Quality
	AMDQuality   []lotusmap.Quality
}

// paperTable1 lists the functions the paper's Table I names for the two ops
// it shows, so Render can report which were recovered.
var paperTable1 = map[string][]string{
	"Loader": {
		"decompress_onepass", "jpeg_idct_islow", "jpeg_idct_16x16",
		"ycc_rgb_convert", "decode_mcu", "ImagingUnpackRGB",
		"jpeg_fill_bit_buffer",
	},
	"RandomResizedCrop": {
		"ImagingResampleHorizontal_8bpc", "ImagingResampleVertical_8bpc",
	},
}

// RunTable1 reconstructs the IC mapping on Intel (VTune-like, 10 ms) and AMD
// (uProf-like, 1 ms).
func RunTable1(scale Scale) *Table1Result {
	res := &Table1Result{}
	for _, arch := range []native.Arch{native.Intel, native.AMD} {
		engine := native.NewEngine(arch, native.DefaultCPU())
		var sampler hwsim.SamplerConfig
		if arch == native.Intel {
			sampler = hwsim.VTuneSampler(1)
		} else {
			sampler = hwsim.UProfSampler(1)
		}
		cfg := lotusmap.DefaultConfig(sampler, hwsim.DefaultModel(engine.CPU()))
		if scale == Small {
			cfg.MaxRuns = 20
		}
		spec := workloads.ICSpec(4, 1)
		spec.Arch = arch
		proto := spec.Prototype()
		// § IV-B: short-lived operations are profiled with a larger input.
		proto.Width, proto.Height = proto.Width*2, proto.Height*2
		proto.FileBytes *= 4
		m := lotusmap.MapPipeline(engine, spec.MappingCompose(), proto, cfg)
		q := lotusmap.Evaluate(m, engine, spec.Compose(nil))
		if arch == native.Intel {
			res.Intel, res.IntelQuality = m, q
		} else {
			res.AMD, res.AMDQuality = m, q
		}
	}
	return res
}

// Render prints the Table I layout plus recovery checks against the paper's
// listed functions and precision/recall against simulator ground truth.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("TABLE I — Python-op → C/C++ function mapping (reconstructed by LotusMap)\n\n")
	for _, v := range []struct {
		name string
		m    *lotusmap.Mapping
		q    []lotusmap.Quality
	}{{"Intel (VTune, 10ms sampling)", r.Intel, r.IntelQuality}, {"AMD (uProf, 1ms sampling)", r.AMD, r.AMDQuality}} {
		fmt.Fprintf(&b, "--- %s ---\n", v.name)
		b.WriteString(v.m.String())
		b.WriteString("paper-listed functions recovered:\n")
		for op, want := range paperTable1 {
			got := map[string]bool{}
			for _, f := range v.m.Ops[op] {
				got[f.Symbol] = true
			}
			hits := 0
			var missing []string
			for _, sym := range want {
				if got[sym] {
					hits++
				} else {
					missing = append(missing, sym)
				}
			}
			fmt.Fprintf(&b, "  %-20s %d/%d", op, hits, len(want))
			if len(missing) > 0 {
				fmt.Fprintf(&b, " (missing: %s)", strings.Join(missing, ", "))
			}
			b.WriteString("\n")
		}
		b.WriteString("quality vs simulator ground truth:\n")
		for _, q := range v.q {
			fmt.Fprintf(&b, "  %-28s precision=%.2f recall=%.2f\n", q.Op, q.Precision, q.Recall)
		}
		b.WriteString("\n")
	}
	return b.String()
}
