package hwsim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lotus/internal/native"
)

// Session is the ITT / AMDProfileControl analogue: it gates hardware-event
// collection over explicit Resume/Pause windows, exactly as Listing 4 of the
// paper does around the Python operation of interest. A session attaches a
// recording to the engine on creation and stops recording on Detach.
type Session struct {
	engine  *native.Engine
	rec     *native.Recording
	windows []TimeRange
	resumed *time.Time
	done    bool
}

// NewSession attaches to the engine. Collection starts paused; call Resume.
func NewSession(engine *native.Engine) *Session {
	s := &Session{engine: engine, rec: native.NewRecording()}
	engine.Attach(s.rec)
	return s
}

// Resume opens a collection window at t (itt.resume / amd.resume(1)).
func (s *Session) Resume(t time.Time) {
	if s.done {
		panic("hwsim: Resume after Detach")
	}
	if s.resumed == nil {
		tt := t
		s.resumed = &tt
	}
}

// Pause closes the current collection window at t (itt.pause / amd.pause(1)).
func (s *Session) Pause(t time.Time) {
	if s.resumed != nil {
		s.windows = append(s.windows, TimeRange{Start: *s.resumed, End: t})
		s.resumed = nil
	}
}

// Detach finalizes the session at t (itt.detach): closes any open window and
// stops recording on the engine.
func (s *Session) Detach(t time.Time) {
	if s.done {
		return
	}
	s.Pause(t)
	s.engine.Detach()
	s.done = true
}

// Windows returns the closed collection windows.
func (s *Session) Windows() []TimeRange { return append([]TimeRange(nil), s.windows...) }

// Recording exposes the raw native timelines (for tests).
func (s *Session) Recording() *native.Recording { return s.rec }

// FuncRow is one row of a function-granularity profiler report — the shape
// of VTune's "Microarchitecture Exploration" grouped by Function, which the
// paper's workflow exports to CSV.
type FuncRow struct {
	Symbol   string
	Library  string
	Samples  int
	Counters Counters
}

// Report is a completed hardware-profile: function rows sorted by CPU time
// descending, as the VTune UI presents them.
type Report struct {
	Profiler string // "vtune" or "uprof"
	Arch     native.Arch
	Rows     []FuncRow
}

// Collect runs the sampler over the session's windows and aggregates samples
// into a function-granularity report. The session must be detached first.
func (s *Session) Collect(cfg SamplerConfig, model Model, profiler string) *Report {
	if !s.done {
		panic("hwsim: Collect before Detach")
	}
	samples := NewSampler(cfg, model).Run(s.rec, s.windows)
	return BuildReport(samples, profiler, s.engine.Arch())
}

// BuildReport aggregates raw samples into per-function rows.
func BuildReport(samples []Sample, profiler string, arch native.Arch) *Report {
	type key struct{ sym, lib string }
	agg := make(map[key]*FuncRow)
	for _, smp := range samples {
		k := key{smp.Symbol, smp.Library}
		row, ok := agg[k]
		if !ok {
			row = &FuncRow{Symbol: smp.Symbol, Library: smp.Library}
			agg[k] = row
		}
		row.Samples++
		row.Counters.Add(smp.Counters)
	}
	rep := &Report{Profiler: profiler, Arch: arch}
	for _, row := range agg {
		rep.Rows = append(rep.Rows, *row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Counters.CPUTime != rep.Rows[j].Counters.CPUTime {
			return rep.Rows[i].Counters.CPUTime > rep.Rows[j].Counters.CPUTime
		}
		return rep.Rows[i].Symbol < rep.Rows[j].Symbol
	})
	return rep
}

// Row finds a report row by symbol. ok is false if the symbol never sampled.
func (r *Report) Row(symbol string) (FuncRow, bool) {
	for _, row := range r.Rows {
		if row.Symbol == symbol {
			return row, true
		}
	}
	return FuncRow{}, false
}

// Symbols returns the distinct symbols in the report, ordered as the rows.
func (r *Report) Symbols() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Symbol
	}
	return out
}

// TotalCPUTime sums attributed CPU time over all rows.
func (r *Report) TotalCPUTime() time.Duration {
	var total time.Duration
	for _, row := range r.Rows {
		total += row.Counters.CPUTime
	}
	return total
}

// String renders the report as an aligned table (symbol, library, CPU time),
// the shape a VTune CSV export has.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s profile (%s), %d functions\n", r.Profiler, r.Arch, len(r.Rows))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-36s %-44s %10v %8d samples\n",
			row.Symbol, row.Library, row.Counters.CPUTime.Round(time.Microsecond), row.Samples)
	}
	return b.String()
}
