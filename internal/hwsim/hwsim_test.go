package hwsim

import (
	"math"
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/native"
)

func testEngine() *native.Engine {
	return native.NewEngine(native.Intel, native.DefaultCPU())
}

// runKernels executes a fixed alternating workload on one thread while a
// session records, and returns the session detached at end.
func runKernels(e *native.Engine, kernels []string, bytesPer int, reps int) (*Session, time.Time) {
	sess := NewSession(e)
	th := &native.Thread{ID: 1, Cursor: clock.Epoch}
	sess.Resume(th.Cursor)
	e.BeginWork()
	for i := 0; i < reps; i++ {
		for _, k := range kernels {
			e.Exec(th, []native.Call{{Kernel: k, Bytes: bytesPer}})
		}
	}
	e.EndWork()
	sess.Detach(th.Cursor)
	return sess, th.Cursor
}

func TestSamplerFindsLongKernels(t *testing.T) {
	e := testEngine()
	// decode_mcu at 45 cyc/B on 1 MB -> ~14 ms per call; 100 calls ≈ 1.4 s.
	sess, _ := runKernels(e, []string{"decode_mcu"}, 1<<20, 100)
	cfg := VTuneSampler(1)
	cfg.NoiseProb = 0
	rep := sess.Collect(cfg, DefaultModel(e.CPU()), "vtune")
	row, ok := rep.Row("decode_mcu")
	if !ok {
		t.Fatal("decode_mcu not sampled despite dominating the window")
	}
	// Expected CPU time ~ total window; sampled time should be within 20%.
	total := rep.TotalCPUTime()
	if math.Abs(float64(row.Counters.CPUTime-total)/float64(total)) > 0.01 {
		t.Fatalf("decode_mcu CPU time %v, total %v — should dominate", row.Counters.CPUTime, total)
	}
}

func TestSamplerMissesShortKernelsAtCoarseInterval(t *testing.T) {
	e := testEngine()
	// One short memset (25 µs at 100 KB) inside a long decode: a single
	// 10 ms-interval pass catches it rarely.
	hits := 0
	const runs = 40
	for seed := int64(0); seed < runs; seed++ {
		sess := NewSession(e)
		th := &native.Thread{ID: 1, Cursor: clock.Epoch}
		sess.Resume(th.Cursor)
		e.BeginWork()
		e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: 1 << 20}}) // ~14ms
		e.Exec(th, []native.Call{{Kernel: "memset", Bytes: 100 << 10}})   // ~8µs
		e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: 1 << 20}})
		e.EndWork()
		sess.Detach(th.Cursor)
		cfg := VTuneSampler(seed)
		cfg.NoiseProb = 0
		cfg.SkidProb = 0
		rep := sess.Collect(cfg, DefaultModel(e.CPU()), "vtune")
		if _, ok := rep.Row("__memset_avx2_unaligned_erms"); ok {
			hits++
		}
	}
	if hits > runs/4 {
		t.Fatalf("short kernel sampled in %d/%d runs; 10ms sampling should mostly miss ~8µs functions", hits, runs)
	}
}

func TestFinerIntervalCatchesMore(t *testing.T) {
	e := testEngine()
	catch := func(cfg SamplerConfig) int {
		hits := 0
		for seed := int64(0); seed < 30; seed++ {
			sess := NewSession(e)
			th := &native.Thread{ID: 1, Cursor: clock.Epoch}
			sess.Resume(th.Cursor)
			e.BeginWork()
			e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: 1 << 19}})
			e.Exec(th, []native.Call{{Kernel: "ycc_rgb_convert", Bytes: 1 << 19}}) // ~0.65ms
			e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: 1 << 19}})
			e.EndWork()
			sess.Detach(th.Cursor)
			cfg.Seed = seed
			cfg.NoiseProb = 0
			cfg.SkidProb = 0
			rep := sess.Collect(cfg, DefaultModel(e.CPU()), "x")
			if _, ok := rep.Row("ycc_rgb_convert"); ok {
				hits++
			}
		}
		return hits
	}
	coarse := catch(VTuneSampler(0))
	fine := catch(UProfSampler(0))
	if fine <= coarse {
		t.Fatalf("1ms sampling caught %d/30, 10ms caught %d/30 — finer interval must catch more", fine, coarse)
	}
}

func TestSkidMisattributesAcrossBoundary(t *testing.T) {
	e := testEngine()
	// Alternate two kernels; with an aggressive skid config, some samples
	// landing early in kernel B are credited to kernel A.
	sess, _ := runKernels(e, []string{"decode_mcu", "jpeg_idct_islow"}, 1<<20, 60)
	cfg := SamplerConfig{Interval: 10 * time.Millisecond, SkidProb: 1.0, SkidWindow: 12 * time.Millisecond, Seed: 5}
	noSkid := SamplerConfig{Interval: 10 * time.Millisecond, Seed: 5}
	model := DefaultModel(e.CPU())
	withRep := BuildReport(NewSampler(cfg, model).Run(sess.Recording(), sess.Windows()), "a", native.Intel)
	withoutRep := BuildReport(NewSampler(noSkid, model).Run(sess.Recording(), sess.Windows()), "b", native.Intel)
	// decode_mcu (~14 ms/call) dwarfs jpeg_idct_islow (~2.6 ms/call): with a
	// 12 ms skid window most decode samples get mis-credited to the idct that
	// preceded them, inflating the short kernel's count.
	skidRow, _ := withRep.Row("jpeg_idct_islow")
	cleanRow, _ := withoutRep.Row("jpeg_idct_islow")
	if skidRow.Samples <= cleanRow.Samples {
		t.Fatalf("skid should inflate the short kernel: %d vs %d samples", skidRow.Samples, cleanRow.Samples)
	}
	// Attribution errors move samples around but never create or drop them.
	var withTotal, withoutTotal int
	for _, r := range withRep.Rows {
		withTotal += r.Samples
	}
	for _, r := range withoutRep.Rows {
		withoutTotal += r.Samples
	}
	if withTotal != withoutTotal {
		t.Fatalf("skid changed total sample count: %d vs %d", withTotal, withoutTotal)
	}
}

func TestNoiseProducesBackgroundSymbols(t *testing.T) {
	e := testEngine()
	sess, _ := runKernels(e, []string{"decode_mcu"}, 1<<20, 200)
	cfg := VTuneSampler(2)
	cfg.NoiseProb = 0.3
	rep := sess.Collect(cfg, DefaultModel(e.CPU()), "vtune")
	background := 0
	for _, row := range rep.Rows {
		if row.Library == "python3.10" || row.Library == "vmlinux" || row.Library == "libcuda.so.1" {
			background += row.Samples
		}
	}
	if background == 0 {
		t.Fatal("noise probability 0.3 produced no background samples")
	}
}

func TestPauseWindowsExcludeSamples(t *testing.T) {
	e := testEngine()
	sess := NewSession(e)
	th := &native.Thread{ID: 1, Cursor: clock.Epoch}
	e.BeginWork()
	// Work before Resume: must not be sampled.
	e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: 4 << 20}})
	sess.Resume(th.Cursor)
	e.Exec(th, []native.Call{{Kernel: "ycc_rgb_convert", Bytes: 40 << 20}})
	sess.Pause(th.Cursor)
	// Work after Pause: must not be sampled.
	e.Exec(th, []native.Call{{Kernel: "jpeg_idct_islow", Bytes: 40 << 20}})
	e.EndWork()
	sess.Detach(th.Cursor)
	cfg := VTuneSampler(3)
	cfg.NoiseProb = 0
	cfg.SkidProb = 0
	rep := sess.Collect(cfg, DefaultModel(e.CPU()), "vtune")
	if _, ok := rep.Row("jpeg_idct_islow"); ok {
		t.Fatal("sampled a kernel that ran outside the collection window")
	}
	if _, ok := rep.Row("ycc_rgb_convert"); !ok {
		t.Fatal("did not sample the kernel inside the collection window")
	}
}

func TestModelFrontEndBoundGrowsWithLoad(t *testing.T) {
	e := testEngine()
	m := DefaultModel(e.CPU())
	k, _ := e.Kernel("decode_mcu")
	mk := func(active int) Counters {
		return m.InvocationCounters(native.Invocation{
			Kernel: k, Start: clock.Epoch, Dur: 10 * time.Millisecond, Bytes: 1 << 20, Active: active,
		})
	}
	low := mk(4)
	high := mk(28)
	if high.FrontEndBoundFrac() <= low.FrontEndBoundFrac() {
		t.Fatalf("front-end bound must grow with load: %.3f vs %.3f",
			low.FrontEndBoundFrac(), high.FrontEndBoundFrac())
	}
	if high.DRAMBoundFrac() >= low.DRAMBoundFrac() {
		t.Fatalf("DRAM bound must shrink with load: %.3f vs %.3f",
			low.DRAMBoundFrac(), high.DRAMBoundFrac())
	}
	// µops delivered per cycle must fall as the front end saturates.
	if high.UopsDelivered/high.Cycles >= low.UopsDelivered/low.Cycles {
		t.Fatal("µop delivery rate must fall with load")
	}
}

func TestRateCountersProportional(t *testing.T) {
	e := testEngine()
	m := DefaultModel(e.CPU())
	k, _ := e.Kernel("memcpy")
	inv := native.Invocation{Kernel: k, Start: clock.Epoch, Dur: 8 * time.Millisecond, Bytes: 1 << 20, Active: 1}
	half := m.RateCounters(inv, 4*time.Millisecond)
	whole := m.InvocationCounters(inv)
	if math.Abs(half.Instructions-whole.Instructions/2) > 1e-6*whole.Instructions {
		t.Fatalf("half-duration instructions %v, want %v", half.Instructions, whole.Instructions/2)
	}
}

func TestReportOrderingAndLookup(t *testing.T) {
	e := testEngine()
	sess, _ := runKernels(e, []string{"decode_mcu", "memset"}, 1<<20, 50)
	cfg := VTuneSampler(7)
	cfg.NoiseProb = 0
	rep := sess.Collect(cfg, DefaultModel(e.CPU()), "vtune")
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i-1].Counters.CPUTime < rep.Rows[i].Counters.CPUTime {
			t.Fatal("report rows not sorted by CPU time descending")
		}
	}
	if _, ok := rep.Row("no_such_symbol"); ok {
		t.Fatal("Row found a symbol that does not exist")
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestCollectBeforeDetachPanics(t *testing.T) {
	e := testEngine()
	sess := NewSession(e)
	sess.Resume(clock.Epoch)
	defer func() {
		e.Detach()
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sess.Collect(VTuneSampler(0), DefaultModel(e.CPU()), "vtune")
}

func TestInvocationAt(t *testing.T) {
	k := &native.Kernel{Name: "k", Symbol: "k", Library: "l"}
	tl := []native.Invocation{
		{Kernel: k, Start: clock.Epoch, Dur: time.Millisecond},
		{Kernel: k, Start: clock.Epoch.Add(2 * time.Millisecond), Dur: time.Millisecond},
	}
	cases := []struct {
		at   time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Microsecond, 0},
		{1500 * time.Microsecond, -1}, // gap
		{2500 * time.Microsecond, 1},
		{5 * time.Millisecond, -1}, // past end
	}
	for _, c := range cases {
		if got := invocationAt(tl, clock.Epoch.Add(c.at)); got != c.want {
			t.Errorf("invocationAt(+%v) = %d, want %d", c.at, got, c.want)
		}
	}
}
