package hwsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/native"
)

func TestCSVRoundTrip(t *testing.T) {
	e := testEngine()
	sess, _ := runKernels(e, []string{"decode_mcu", "memset"}, 1<<20, 40)
	cfg := VTuneSampler(9)
	cfg.NoiseProb = 0
	rep := sess.Collect(cfg, DefaultModel(e.CPU()), "vtune")

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "vtune", native.Intel)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rep.Rows) {
		t.Fatalf("round trip %d rows, want %d", len(back.Rows), len(rep.Rows))
	}
	for i := range rep.Rows {
		a, b := rep.Rows[i], back.Rows[i]
		if a.Symbol != b.Symbol || a.Library != b.Library || a.Samples != b.Samples {
			t.Fatalf("row %d identity mismatch: %+v vs %+v", i, a, b)
		}
		if a.Counters.CPUTime != b.Counters.CPUTime {
			t.Fatalf("row %d cpu time %v vs %v", i, a.Counters.CPUTime, b.Counters.CPUTime)
		}
		if a.Counters.Instructions != b.Counters.Instructions ||
			a.Counters.UopsDelivered != b.Counters.UopsDelivered ||
			a.Counters.DRAMBoundCycles != b.Counters.DRAMBoundCycles {
			t.Fatalf("row %d counters diverged", i)
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not,a,header\n1,2,3\n",
		"function,library,samples,cpu_time_ns,cycles,instructions,uops_delivered,front_end_bound_slots,dram_bound_cycles,l1_miss,llc_miss\nf,l,notanint,0,0,0,0,0,0,0,0\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in), "x", native.Intel); err == nil {
			t.Errorf("ReadCSV accepted %q", in)
		}
	}
}

func TestCSVEmptyReport(t *testing.T) {
	rep := &Report{Profiler: "vtune", Arch: native.Intel}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "vtune", native.Intel)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 0 {
		t.Fatalf("empty report round-tripped to %d rows", len(back.Rows))
	}
}

func TestCSVPreservesAttributionResults(t *testing.T) {
	// A report written to CSV and read back must drive attribution
	// identically — the paper's workflow round-trips through VTune CSV.
	e := testEngine()
	rec := native.NewRecording()
	e.Attach(rec)
	th := &native.Thread{ID: 1, Cursor: clock.Epoch}
	for i := 0; i < 30; i++ {
		e.Exec(th, []native.Call{
			{Kernel: "decode_mcu", Bytes: 1 << 20},
			{Kernel: "ycc_rgb_convert", Bytes: 1 << 20},
		})
	}
	e.Detach()
	samples := NewSampler(VTuneSampler(3), DefaultModel(e.CPU())).
		Run(rec, []TimeRange{{Start: clock.Epoch, End: th.Cursor}})
	rep := BuildReport(samples, "vtune", native.Intel)

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "vtune", native.Intel)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalCPUTime() != rep.TotalCPUTime() {
		t.Fatalf("total CPU time changed across CSV: %v vs %v", back.TotalCPUTime(), rep.TotalCPUTime())
	}
	_ = time.Now
}
