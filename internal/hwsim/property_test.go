package hwsim

import (
	"testing"
	"testing/quick"
	"time"

	"lotus/internal/clock"
	"lotus/internal/native"
)

// TestPropertySamplesStayInsideWindows: no sample may carry a timestamp
// outside the collection windows it was gathered from.
func TestPropertySamplesStayInsideWindows(t *testing.T) {
	e := testEngine()
	if err := quick.Check(func(nCalls uint8, bytesRaw uint16, winFrac uint8, seed int64) bool {
		rec := native.NewRecording()
		e.Attach(rec)
		th := &native.Thread{ID: 1, Cursor: clock.Epoch}
		n := int(nCalls%30) + 5
		for i := 0; i < n; i++ {
			e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: int(bytesRaw)%(1<<18) + 1024}})
		}
		e.Detach()
		total := th.Cursor.Sub(clock.Epoch)
		// A window covering a fraction of the run, mid-timeline.
		frac := time.Duration(int(winFrac%80)+10) * total / 100
		w := TimeRange{Start: clock.Epoch.Add(total / 10), End: clock.Epoch.Add(total/10 + frac)}
		cfg := UProfSampler(seed)
		samples := NewSampler(cfg, DefaultModel(e.CPU())).Run(rec, []TimeRange{w})
		for _, s := range samples {
			if !w.Contains(s.T) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySampleCountBounded: the number of samples in a window never
// exceeds window/interval + 1 per thread.
func TestPropertySampleCountBounded(t *testing.T) {
	e := testEngine()
	if err := quick.Check(func(nCalls uint8, seed int64) bool {
		rec := native.NewRecording()
		e.Attach(rec)
		th := &native.Thread{ID: 1, Cursor: clock.Epoch}
		for i := 0; i < int(nCalls%20)+5; i++ {
			e.Exec(th, []native.Call{{Kernel: "jpeg_idct_islow", Bytes: 1 << 18}})
		}
		e.Detach()
		w := TimeRange{Start: clock.Epoch, End: th.Cursor}
		cfg := UProfSampler(seed)
		samples := NewSampler(cfg, DefaultModel(e.CPU())).Run(rec, []TimeRange{w})
		limit := int(w.End.Sub(w.Start)/cfg.Interval) + 1
		return len(samples) <= limit
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCountersScaleCompose: Scale(a).Add(Scale(b)) == Scale(a+b) on
// the linear fields.
func TestPropertyCountersScale(t *testing.T) {
	if err := quick.Check(func(cpuUs uint32, instr uint32, a8, b8 uint8) bool {
		c := Counters{
			CPUTime:      time.Duration(cpuUs) * time.Microsecond,
			Instructions: float64(instr),
			Cycles:       float64(instr) * 1.5,
		}
		fa := float64(a8%100) / 100
		fb := float64(b8%100) / 100
		var lhs Counters
		lhs.Add(c.Scale(fa))
		lhs.Add(c.Scale(fb))
		rhs := c.Scale(fa + fb)
		near := func(x, y float64) bool {
			d := x - y
			if d < 0 {
				d = -d
			}
			return d <= 1e-6*(1+y)
		}
		return near(lhs.Instructions, rhs.Instructions) && near(lhs.Cycles, rhs.Cycles)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyModelCountersNonNegative for arbitrary invocations.
func TestPropertyModelCountersNonNegative(t *testing.T) {
	e := testEngine()
	m := DefaultModel(e.CPU())
	ks := e.Kernels()
	if err := quick.Check(func(kIdx uint8, bytesRaw uint32, durUs uint32, active uint8) bool {
		k := ks[int(kIdx)%len(ks)]
		inv := native.Invocation{
			Kernel: k,
			Start:  clock.Epoch,
			Dur:    time.Duration(durUs%1e6+1) * time.Microsecond,
			Bytes:  int(bytesRaw % (1 << 24)),
			Active: int(active%64) + 1,
		}
		c := m.InvocationCounters(inv)
		if c.Cycles < 0 || c.Instructions < 0 || c.UopsDelivered < 0 ||
			c.FrontEndBoundSlots < 0 || c.DRAMBoundCycles < 0 || c.L1Miss < 0 || c.LLCMiss < 0 {
			return false
		}
		// Derived fractions stay in [0, 1].
		fe := c.FrontEndBoundFrac()
		dr := c.DRAMBoundFrac()
		return fe >= 0 && fe <= 1 && dr >= 0 && dr <= 1
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTopDownSumsToOne: the level-1 breakdown partitions all slots.
func TestPropertyTopDownSumsToOne(t *testing.T) {
	e := testEngine()
	m := DefaultModel(e.CPU())
	ks := e.Kernels()
	if err := quick.Check(func(kIdx uint8, bytesRaw uint32, active uint8) bool {
		k := ks[int(kIdx)%len(ks)]
		bytes := int(bytesRaw%(1<<22)) + 1024
		inv := native.Invocation{
			Kernel: k, Start: clock.Epoch,
			Dur:    e.Duration(k, bytes, int(active%48)+1),
			Bytes:  bytes,
			Active: int(active%48) + 1,
		}
		td := m.InvocationCounters(inv).TopDown()
		sum := td.Retiring + td.BadSpeculation + td.FrontEndBound + td.BackEndBound
		if sum < 0.99 || sum > 1.01 {
			return false
		}
		for _, f := range []float64{td.Retiring, td.BadSpeculation, td.FrontEndBound, td.BackEndBound} {
			if f < 0 || f > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTopDownBranchyVsStreaming: compute-class kernels speculate badly more
// than streaming memory kernels.
func TestTopDownBranchyVsStreaming(t *testing.T) {
	e := testEngine()
	m := DefaultModel(e.CPU())
	mk := func(name string) TopDown {
		k, ok := e.Kernel(name)
		if !ok {
			t.Fatalf("missing kernel %s", name)
		}
		return m.InvocationCounters(native.Invocation{
			Kernel: k, Start: clock.Epoch, Dur: e.Duration(k, 1<<20, 1), Bytes: 1 << 20, Active: 1,
		}).TopDown()
	}
	if mk("decode_mcu").BadSpeculation <= mk("memcpy").BadSpeculation {
		t.Fatal("entropy decode should mispredict more than memcpy")
	}
	if mk("memcpy").BackEndBound <= mk("decode_mcu").BackEndBound {
		t.Fatal("memcpy should be more back-end bound than decode")
	}
}
