package hwsim

import (
	"sort"
	"time"

	"lotus/internal/native"
	"lotus/internal/rng"
)

// TimeRange is a half-open collection window [Start, End).
type TimeRange struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the range.
func (r TimeRange) Contains(t time.Time) bool {
	return !t.Before(r.Start) && t.Before(r.End)
}

// Sample is one sampling-driver hit: at time T on a thread, the driver
// observed symbol/library. Background samples (unrelated runtime functions:
// the interpreter loop, allocator locks, driver threads) have Kernel == nil.
type Sample struct {
	T       time.Time
	Thread  int
	Symbol  string
	Library string
	Kernel  *native.Kernel
	// Counters is the event count credited to this sample (one sampling
	// interval's worth at the sampled function's rates).
	Counters Counters
}

// SamplerConfig describes the sampling driver. The paper: Intel VTune
// user-mode sampling is limited to 10 ms intervals; AMD uProf to 1 ms.
type SamplerConfig struct {
	Interval time.Duration
	// SkidProb is the probability that a sample landing within SkidWindow
	// after a function boundary is attributed to the *previous* function —
	// the out-of-order-execution mis-bucketing the paper works around with
	// sleep() gaps.
	SkidProb   float64
	SkidWindow time.Duration
	// NoiseProb is the probability a sample is taken while the thread is in
	// unrelated runtime code (interpreter, allocator, kernel), producing the
	// "incorrect C/C++ functions" LotusMap must filter.
	NoiseProb float64
	// PhaseJitter randomizes each run's first-sample offset within the
	// interval, so short functions are caught probabilistically across runs
	// (the C >= 1-(1-f/s)^n behaviour the run-count formula handles).
	PhaseJitter bool
	Seed        int64
}

// VTuneSampler returns the Intel VTune-like configuration.
func VTuneSampler(seed int64) SamplerConfig {
	return SamplerConfig{
		Interval:    10 * time.Millisecond,
		SkidProb:    0.35,
		SkidWindow:  120 * time.Microsecond,
		NoiseProb:   0.015,
		PhaseJitter: true,
		Seed:        seed,
	}
}

// UProfSampler returns the AMD uProf-like configuration.
func UProfSampler(seed int64) SamplerConfig {
	return SamplerConfig{
		Interval:    time.Millisecond,
		SkidProb:    0.30,
		SkidWindow:  80 * time.Microsecond,
		NoiseProb:   0.015,
		PhaseJitter: true,
		Seed:        seed,
	}
}

// backgroundSymbols is the pool of unrelated functions that pollute real
// profiles (the paper reports 300+ functions in a full-pipeline VTune run).
var backgroundSymbols = []struct{ symbol, library string }{
	{"_PyEval_EvalFrameDefault", "python3.10"},
	{"PyObject_GetAttr", "python3.10"},
	{"gc_collect_main", "python3.10"},
	{"pthread_mutex_lock", "libc.so.6"},
	{"__sched_yield", "libc.so.6"},
	{"pymalloc_alloc", "python3.10"},
	{"cuLaunchKernel", "libcuda.so.1"},
	{"cudbgReportDriverApiError", "libcuda.so.1"},
	{"clear_page_erms", "vmlinux"},
	{"copy_user_enhanced_fast_string", "vmlinux"},
	{"entry_SYSCALL_64", "vmlinux"},
	{"tcp_sendmsg", "vmlinux"},
}

// Sampler walks recorded native timelines and produces samples at the
// configured interval, restricted to the given collection windows.
type Sampler struct {
	cfg   SamplerConfig
	model Model
}

// NewSampler builds a sampler.
func NewSampler(cfg SamplerConfig, model Model) *Sampler {
	return &Sampler{cfg: cfg, model: model}
}

// Run samples every thread timeline of rec within the windows and returns
// the observed samples in time order per thread. Each (thread, window) pair
// derives its own randomness from the window's start time, so sampling a
// window is independent of how many other windows the call covers — and two
// collection windows at different times get different sampling phases, which
// is what makes the multi-run capture formula work.
func (s *Sampler) Run(rec *native.Recording, windows []TimeRange) []Sample {
	var out []Sample
	for _, th := range rec.Threads() {
		tl := rec.Timeline(th)
		if len(tl) == 0 {
			continue
		}
		for _, w := range windows {
			r := rng.New(s.cfg.Seed^w.Start.UnixNano()^int64(th)*1315423911, "hwsim-sampler")
			out = append(out, s.sampleWindow(tl, th, w, r)...)
		}
	}
	return out
}

func (s *Sampler) sampleWindow(tl []native.Invocation, thread int, w TimeRange, r *rng.Stream) []Sample {
	var out []Sample
	phase := time.Duration(0)
	if s.cfg.PhaseJitter {
		phase = time.Duration(r.Float64() * float64(s.cfg.Interval))
	}
	for t := w.Start.Add(phase); t.Before(w.End); t = t.Add(s.cfg.Interval) {
		idx := invocationAt(tl, t)
		if idx < 0 {
			continue // thread idle at this instant
		}
		inv := tl[idx]
		// Sample skid: near the start of an invocation the driver may still
		// attribute to the previous function on the thread — but only if that
		// function ended recently. An idle gap (the paper's sleep() trick,
		// § IV-B) longer than the skid window therefore prevents
		// mis-bucketing across operation boundaries.
		if idx > 0 && t.Sub(inv.Start) < s.cfg.SkidWindow &&
			inv.Start.Sub(tl[idx-1].End()) < s.cfg.SkidWindow && r.Bool(s.cfg.SkidProb) {
			inv = tl[idx-1]
		}
		if r.Bool(s.cfg.NoiseProb) {
			bg := backgroundSymbols[r.Intn(len(backgroundSymbols))]
			out = append(out, Sample{
				T: t, Thread: thread,
				Symbol: bg.symbol, Library: bg.library,
				Counters: Counters{CPUTime: s.cfg.Interval},
			})
			continue
		}
		out = append(out, Sample{
			T: t, Thread: thread,
			Symbol: inv.Kernel.Symbol, Library: inv.Kernel.Library,
			Kernel:   inv.Kernel,
			Counters: s.model.RateCounters(inv, s.cfg.Interval),
		})
	}
	return out
}

// invocationAt binary-searches the timeline for the invocation covering t,
// returning -1 when the thread was idle.
func invocationAt(tl []native.Invocation, t time.Time) int {
	// First invocation starting after t.
	i := sort.Search(len(tl), func(i int) bool { return tl[i].Start.After(t) })
	if i == 0 {
		return -1
	}
	i--
	if t.Before(tl[i].End()) {
		return i
	}
	return -1
}
