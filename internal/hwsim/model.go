// Package hwsim simulates the hardware-profiling half of the paper's
// environment: performance-monitoring counters, a user-mode sampling driver
// with a fixed sampling interval (10 ms for the Intel VTune-like profiler,
// 1 ms for the AMD uProf-like one), sample skid that mis-buckets work across
// operation boundaries, background samples from unrelated runtime functions,
// and ITT/AMDProfileControl-style collection gating (Resume/Pause/Detach).
//
// The simulation observes only native-kernel timelines recorded by package
// native — symbols and libraries, never transform names — which reproduces
// exactly the attribution gap LotusMap closes.
package hwsim

import (
	"time"

	"lotus/internal/native"
)

// Counters is the PMU event set the experiments use. Fields mirror the
// metrics Figure 6 reports.
type Counters struct {
	// CPUTime is attributed on-core time.
	CPUTime time.Duration
	// Cycles and Instructions are the raw retirement counters.
	Cycles       float64
	Instructions float64
	// UopsDelivered counts micro-ops the front end delivered to the backend
	// (Fig. 6f: supply drops as data loaders increase).
	UopsDelivered float64
	// FrontEndBoundSlots counts pipeline slots stalled on instruction supply
	// (Fig. 6g: the workload becomes front-end bound under load).
	FrontEndBoundSlots float64
	// BadSpeculationSlots counts slots wasted on mispredicted paths.
	BadSpeculationSlots float64
	// RetiringSlots counts usefully retired slots.
	RetiringSlots float64
	// DRAMBoundCycles counts cycles stalled on loads serviced by local DRAM
	// (Fig. 6h: pressure decreases as the front end starves the backend).
	DRAMBoundCycles float64
	// L1Miss / LLCMiss are cache miss counts.
	L1Miss  float64
	LLCMiss float64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.CPUTime += other.CPUTime
	c.Cycles += other.Cycles
	c.Instructions += other.Instructions
	c.UopsDelivered += other.UopsDelivered
	c.FrontEndBoundSlots += other.FrontEndBoundSlots
	c.BadSpeculationSlots += other.BadSpeculationSlots
	c.RetiringSlots += other.RetiringSlots
	c.DRAMBoundCycles += other.DRAMBoundCycles
	c.L1Miss += other.L1Miss
	c.LLCMiss += other.LLCMiss
}

// Scale returns c multiplied by f.
func (c Counters) Scale(f float64) Counters {
	return Counters{
		CPUTime:             time.Duration(float64(c.CPUTime) * f),
		Cycles:              c.Cycles * f,
		Instructions:        c.Instructions * f,
		UopsDelivered:       c.UopsDelivered * f,
		FrontEndBoundSlots:  c.FrontEndBoundSlots * f,
		BadSpeculationSlots: c.BadSpeculationSlots * f,
		RetiringSlots:       c.RetiringSlots * f,
		DRAMBoundCycles:     c.DRAMBoundCycles * f,
		L1Miss:              c.L1Miss * f,
		LLCMiss:             c.LLCMiss * f,
	}
}

// FrontEndBoundFrac derives the front-end-bound fraction of pipeline slots
// (total slots = 4 per cycle on the modeled 4-wide machine).
func (c Counters) FrontEndBoundFrac() float64 {
	slots := c.Cycles * 4
	if slots == 0 {
		return 0
	}
	return c.FrontEndBoundSlots / slots
}

// TopDown is the level-1 top-down breakdown (fractions of pipeline slots;
// they sum to ~1): the grouping VTune's Microarchitecture Exploration leads
// with.
type TopDown struct {
	Retiring, BadSpeculation, FrontEndBound, BackEndBound float64
}

// TopDown derives the level-1 breakdown from the slot counters. Back-end
// bound is the remainder.
func (c Counters) TopDown() TopDown {
	slots := c.Cycles * 4
	if slots == 0 {
		return TopDown{}
	}
	td := TopDown{
		Retiring:       c.RetiringSlots / slots,
		BadSpeculation: c.BadSpeculationSlots / slots,
		FrontEndBound:  c.FrontEndBoundSlots / slots,
	}
	td.BackEndBound = 1 - td.Retiring - td.BadSpeculation - td.FrontEndBound
	if td.BackEndBound < 0 {
		td.BackEndBound = 0
	}
	return td
}

// DRAMBoundFrac derives the fraction of cycles stalled on local DRAM.
func (c Counters) DRAMBoundFrac() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.DRAMBoundCycles / c.Cycles
}

// IPC derives instructions per cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// Model converts a recorded invocation into PMU counters. The contention
// terms implement the Figure 6 microarchitectural story: as the number of
// concurrently active workers approaches and passes the core count,
// instruction supply becomes the bottleneck (front-end bound rises, µop
// delivery per cycle falls) while per-cycle DRAM pressure falls because the
// starved backend issues fewer loads.
type Model struct {
	CPU native.CPUConfig
	// FEPressure scales how quickly front-end-bound grows with load.
	FEPressure float64
	// DRAMRelief scales how quickly DRAM-bound shrinks with load.
	DRAMRelief float64
	// CacheContention scales cache-miss growth with load.
	CacheContention float64
	// Width is the pipeline issue width in µops/cycle.
	Width float64
}

// DefaultModel returns the calibrated model for the paper's testbed.
func DefaultModel(cpu native.CPUConfig) Model {
	return Model{CPU: cpu, FEPressure: 1.6, DRAMRelief: 0.7, CacheContention: 0.8, Width: 4}
}

// loadFactor maps active workers to the 0..~1.5 pressure scale.
func (m Model) loadFactor(active int) float64 {
	f := float64(active) / float64(m.CPU.Cores)
	if f > 1.5 {
		f = 1.5
	}
	return f
}

// InvocationCounters computes the counters a PMU would have accumulated over
// the full invocation.
func (m Model) InvocationCounters(inv native.Invocation) Counters {
	k := inv.Kernel
	bytes := float64(inv.Bytes)
	load := m.loadFactor(inv.Active)

	cycles := inv.Dur.Seconds() * m.CPU.FreqGHz * 1e9
	instr := k.InstrPerByte * bytes

	fe := k.FrontEndBound * (1 + m.FEPressure*load)
	if fe > 0.95 {
		fe = 0.95
	}
	dram := k.DRAMBound * (1 - m.DRAMRelief*minF(load, 1))
	if dram < 0 {
		dram = 0
	}
	uops := cycles * m.Width * (1 - fe)

	// Level-1 top-down: bad speculation by kernel class (branchy entropy
	// decoders mispredict; streaming copies do not); retiring follows the
	// instruction stream, bounded by what the front end left available.
	slots := cycles * 4
	badSpec := badSpecFrac(k.Class)
	if badSpec > 1-fe {
		badSpec = 1 - fe // a saturated front end leaves no slots to waste
	}
	retiring := 0.0
	if slots > 0 {
		retiring = instr * 1.3 / slots
	}
	if max := 1 - fe - badSpec; retiring > max {
		retiring = max
	}
	if retiring < 0 {
		retiring = 0
	}

	kb := bytes / 1024
	return Counters{
		CPUTime:             inv.Dur,
		Cycles:              cycles,
		Instructions:        instr,
		UopsDelivered:       uops,
		FrontEndBoundSlots:  slots * fe,
		BadSpeculationSlots: slots * badSpec,
		RetiringSlots:       slots * retiring,
		DRAMBoundCycles:     cycles * dram,
		L1Miss:              kb * k.L1MissPerKB * (1 + 0.5*m.CacheContention*load),
		LLCMiss:             kb * k.LLCMissPerKB * (1 + 1.2*m.CacheContention*load),
	}
}

// badSpecFrac assigns the bad-speculation share by bottleneck class.
func badSpecFrac(c native.WorkClass) float64 {
	switch c {
	case native.Compute:
		return 0.08 // branchy entropy/math code
	case native.Mixed:
		return 0.04
	default:
		return 0.015 // streaming memory ops barely branch
	}
}

// RateCounters computes counters accrued over a slice of duration d of the
// invocation, assuming uniform rates — this is how the sampling driver
// credits one sampling interval's worth of events to the sampled function.
func (m Model) RateCounters(inv native.Invocation, d time.Duration) Counters {
	if inv.Dur <= 0 {
		return Counters{}
	}
	whole := m.InvocationCounters(inv)
	return whole.Scale(float64(d) / float64(inv.Dur))
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
