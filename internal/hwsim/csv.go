package hwsim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"lotus/internal/native"
)

// This file implements the CSV interchange format for function-granularity
// profiles. The paper's workflow exports VTune's "Microarchitecture
// Exploration" grid (grouped by Function) to CSV and feeds it to the
// analysis notebooks; lotus-map and the attribution tools read and write the
// same shape here.

// csvHeader is the stable column set.
var csvHeader = []string{
	"function", "library", "samples",
	"cpu_time_ns", "cycles", "instructions",
	"uops_delivered", "front_end_bound_slots", "bad_speculation_slots",
	"retiring_slots", "dram_bound_cycles", "l1_miss", "llc_miss",
}

// WriteCSV serializes the report rows.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, row := range r.Rows {
		c := row.Counters
		rec := []string{
			row.Symbol,
			row.Library,
			strconv.Itoa(row.Samples),
			strconv.FormatInt(c.CPUTime.Nanoseconds(), 10),
			strconv.FormatFloat(c.Cycles, 'g', -1, 64),
			strconv.FormatFloat(c.Instructions, 'g', -1, 64),
			strconv.FormatFloat(c.UopsDelivered, 'g', -1, 64),
			strconv.FormatFloat(c.FrontEndBoundSlots, 'g', -1, 64),
			strconv.FormatFloat(c.BadSpeculationSlots, 'g', -1, 64),
			strconv.FormatFloat(c.RetiringSlots, 'g', -1, 64),
			strconv.FormatFloat(c.DRAMBoundCycles, 'g', -1, 64),
			strconv.FormatFloat(c.L1Miss, 'g', -1, 64),
			strconv.FormatFloat(c.LLCMiss, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a report previously written by WriteCSV. The profiler name
// and arch label what produced it.
func ReadCSV(r io.Reader, profiler string, arch native.Arch) (*Report, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("hwsim: bad profile CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("hwsim: empty profile CSV")
	}
	if len(records[0]) != len(csvHeader) || records[0][0] != "function" {
		return nil, fmt.Errorf("hwsim: unexpected CSV header %v", records[0])
	}
	rep := &Report{Profiler: profiler, Arch: arch}
	for i, rec := range records[1:] {
		if len(rec) != len(csvHeader) {
			return nil, fmt.Errorf("hwsim: row %d has %d fields, want %d", i+2, len(rec), len(csvHeader))
		}
		samples, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("hwsim: row %d samples: %w", i+2, err)
		}
		fs := make([]float64, 10)
		for j := range fs {
			fs[j], err = strconv.ParseFloat(rec[3+j], 64)
			if err != nil {
				return nil, fmt.Errorf("hwsim: row %d field %s: %w", i+2, csvHeader[3+j], err)
			}
		}
		rep.Rows = append(rep.Rows, FuncRow{
			Symbol:  rec[0],
			Library: rec[1],
			Samples: samples,
			Counters: Counters{
				CPUTime:             time.Duration(fs[0]),
				Cycles:              fs[1],
				Instructions:        fs[2],
				UopsDelivered:       fs[3],
				FrontEndBoundSlots:  fs[4],
				BadSpeculationSlots: fs[5],
				RetiringSlots:       fs[6],
				DRAMBoundCycles:     fs[7],
				L1Miss:              fs[8],
				LLCMiss:             fs[9],
			},
		})
	}
	return rep, nil
}
