// Package cluster turns N independent lotus-serve nodes into one
// fault-tolerant preprocessing service. It is control-plane-light: there is
// no coordinator process and the nodes never talk to each other about work.
// The epoch batch plan — deterministic from (spec, seed, epoch) and therefore
// identical on every node — defines the work; a consistent-hash ring keyed on
// global batch ID partitions it across whichever nodes are alive; and the
// router in each consumer re-issues exactly the unserved batch IDs of a dead
// node to survivors mid-epoch. Because every node streams byte-identical
// frames for the same batch ID (the PR-2 determinism contract), failover
// preserves exactly-once delivery and byte-identity with single-node ground
// truth.
//
// The package has three parts:
//
//   - Ring: the consistent-hash partitioner (this file);
//   - Membership: heartbeat probing of node /healthz sidecars with
//     deterministic jittered intervals (membership.go);
//   - Client: the epoch router wrapping one serve.Client per node
//     (client.go).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points per
// node keeps the max/mean shard imbalance under ~20% for small clusters
// while the ring stays tiny (a few KB).
const DefaultVNodes = 64

// ringPoint is one virtual node's position on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node IDs. It is deterministic: two
// rings built from the same node set place every key identically, no matter
// the insertion order — so every consumer and every test computes the same
// partition without coordination. Not safe for concurrent mutation; the
// router guards it with its own lock.
type Ring struct {
	vnodes int
	points []ringPoint
	nodes  map[string]bool
	// vcount is each member's current virtual-node count. Full weight is
	// r.vnodes points; a degraded member keeps a prefix of its point set
	// (node#0..node#k-1), so re-weighting moves only the keys on the dropped
	// arcs — the same minimal-disruption property Remove has.
	vcount map[string]int
}

// NewRing returns an empty ring with the given virtual-node count per node
// (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool), vcount: make(map[string]int)}
}

// fnv1a is FNV-1a 64 over a byte string — the same mix every deterministic
// decision in this repository uses.
func fnv1a(data string) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for i := 0; i < len(data); i++ {
		h ^= uint64(data[i])
		h *= prime64
	}
	return h
}

// mix64 is the 64-bit murmur3 finalizer. FNV-1a alone is too weak for ring
// placement: sequential keys like "batch/0".."batch/19" differ only in the
// last bytes, and one FNV multiply leaves their hashes within ~2^44 of each
// other — a band so narrow the whole epoch plan lands inside a single vnode
// arc (arcs average 2^64/points). The finalizer's shift-xor-multiply cascade
// avalanches those low-byte differences across all 64 bits.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// BatchKey maps a global batch ID onto the ring's keyspace. Keying on the
// batch ID (not the epoch) means a batch keeps its owner across epochs,
// which keeps any per-shard server-side cache warm epoch over epoch.
func BatchKey(globalID int) uint64 {
	return mix64(fnv1a(fmt.Sprintf("batch/%d", globalID)))
}

// Add inserts a node's virtual points at full weight. Adding a present node
// is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	r.vcount[node] = r.vnodes
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: mix64(fnv1a(fmt.Sprintf("%s#%d", node, v))), node: node})
	}
	r.sortPoints()
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op. Only keys owned by the removed node move — the minimal-disruption
// property that keeps a node death from reshuffling the whole epoch.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	delete(r.vcount, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// SetWeight scales a member's share of the keyspace to w in [0, 1] of full
// weight. The weight is quantized to a virtual-node count so every consumer
// that applies the same weight computes the same partition (no float drift).
// A nonzero weight always keeps at least one point, so a degraded-but-alive
// node still owns a sliver and keeps its caches warm; weight 0 removes the
// member from key walks entirely while leaving it in the member set (it can
// still serve spilled or hedged work addressed to it explicitly). Returns
// true when the point set changed.
func (r *Ring) SetWeight(node string, w float64) bool {
	if !r.nodes[node] {
		return false
	}
	count := quantizeWeight(w, r.vnodes)
	if count == r.vcount[node] {
		return false
	}
	r.vcount[node] = count
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	for v := 0; v < count; v++ {
		r.points = append(r.points, ringPoint{hash: mix64(fnv1a(fmt.Sprintf("%s#%d", node, v))), node: node})
	}
	r.sortPoints()
	return true
}

// Weight reports a member's current weight in [0, 1] (quantized). Absent
// members report 0.
func (r *Ring) Weight(node string) float64 {
	if !r.nodes[node] {
		return 0
	}
	return float64(r.vcount[node]) / float64(r.vnodes)
}

// quantizeWeight maps a weight in [0, 1] to a vnode count in [0, vnodes],
// rounding to nearest but never rounding a positive weight down to zero.
func quantizeWeight(w float64, vnodes int) int {
	if w <= 0 {
		return 0
	}
	if w >= 1 {
		return vnodes
	}
	count := int(w*float64(vnodes) + 0.5)
	if count < 1 {
		count = 1
	}
	if count > vnodes {
		count = vnodes
	}
	return count
}

// Nodes returns the member IDs in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owners returns up to n distinct nodes clockwise from key — the replica set
// for the key, primary first. n <= 0 returns every member in ring order.
func (r *Ring) Owners(key uint64, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Replicas returns a batch's preferred replica set: the first r distinct
// nodes clockwise from its key. With r > 1 a hot shard survives its primary:
// the batch's failover target is decided by the ring, not by which node
// happens to answer first.
func (r *Ring) Replicas(globalID, replication int) []string {
	if replication < 1 {
		replication = 1
	}
	return r.Owners(BatchKey(globalID), replication)
}

// Assignment is one routing round's partition of batch IDs across nodes.
type Assignment struct {
	// ByNode maps node ID to the batch IDs it serves this round, in
	// ascending order (plan order).
	ByNode map[string][]int
	// Unassigned lists IDs no alive node can serve (empty alive set).
	Unassigned []int
	// Spilled counts batches assigned outside their preferred replica set —
	// every replica dead, so the walk continued clockwise. A nonzero spill
	// with replication R means more than R ring-adjacent nodes are down;
	// those batches lose cache affinity but not availability.
	Spilled int
}

// Assign partitions the given global batch IDs across the alive subset of
// the ring's members: each batch goes to the first alive node of its replica
// walk, and when every preferred replica is dead the walk continues
// clockwise so the batch is still served as long as any member is alive.
func (r *Ring) Assign(ids []int, alive map[string]bool, replication int) Assignment {
	if replication < 1 {
		replication = 1
	}
	out := Assignment{ByNode: make(map[string][]int)}
	for _, id := range ids {
		owners := r.Owners(BatchKey(id), 0)
		placed := false
		for i, node := range owners {
			if alive[node] {
				out.ByNode[node] = append(out.ByNode[node], id)
				if i >= replication {
					out.Spilled++
				}
				placed = true
				break
			}
		}
		if !placed {
			out.Unassigned = append(out.Unassigned, id)
		}
	}
	for _, ids := range out.ByNode {
		sort.Ints(ids)
	}
	return out
}
