package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"lotus/internal/faultinject"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

func clusterSpec() workloads.Spec {
	spec := workloads.ICSpec(640, 7)
	spec.BatchSize = 32 // 20 batches per epoch
	spec.NumWorkers = 2
	return spec
}

// startNode boots one loopback serve node; every node of a test cluster runs
// the identical spec, which is the determinism contract the cluster relies
// on.
func startNode(t *testing.T, spec workloads.Spec, inj *faultinject.Injector) *serve.Server {
	t.Helper()
	srv := serve.New(serve.Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2, Faults: inj})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// groundTruth fetches every epoch whole from a dedicated single node — the
// byte-identity reference the cluster must reproduce. Returned frames are
// indexed [epoch][globalID].
func groundTruth(t *testing.T, spec workloads.Spec, epochs int) [][][]byte {
	t.Helper()
	srv := startNode(t, spec, nil)
	c := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: "ground-truth"})
	defer c.Close()
	byEpoch := make([]map[int][]byte, epochs)
	for e := range byEpoch {
		byEpoch[e] = make(map[int][]byte)
	}
	if _, err := c.Run(epochs, func(b *serve.Batch, payload []byte) {
		byEpoch[b.Epoch][b.GlobalID] = append([]byte(nil), payload...)
	}); err != nil {
		t.Fatalf("ground truth run: %v", err)
	}
	out := make([][][]byte, epochs)
	for e, m := range byEpoch {
		out[e] = make([][]byte, len(m))
		for gid, p := range m {
			out[e][gid] = p
		}
	}
	return out
}

// testNodes returns the cluster Node list for a set of live servers, with
// stable IDs node0..nodeN-1.
func testNodes(srvs []*serve.Server) []Node {
	nodes := make([]Node, len(srvs))
	for i, s := range srvs {
		nodes[i] = Node{ID: fmt.Sprintf("node%d", i), Addr: s.Addr()}
	}
	return nodes
}

// frameSink collects delivered frames with full exactly-once bookkeeping.
type frameSink struct {
	mu     sync.Mutex
	frames map[int]map[int][]byte // epoch -> globalID -> payload
	dups   int
}

func newFrameSink() *frameSink {
	return &frameSink{frames: make(map[int]map[int][]byte)}
}

func (fs *frameSink) onBatch(node string, b *serve.Batch, payload []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ep := fs.frames[b.Epoch]
	if ep == nil {
		ep = make(map[int][]byte)
		fs.frames[b.Epoch] = ep
	}
	if _, dup := ep[b.GlobalID]; dup {
		fs.dups++
		return
	}
	ep[b.GlobalID] = append([]byte(nil), payload...)
}

// verifyEpoch asserts one epoch was delivered exactly once and
// byte-identical to the single-node reference.
func (fs *frameSink) verifyEpoch(t *testing.T, epoch int, want [][]byte) {
	t.Helper()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dups != 0 {
		t.Fatalf("epoch %d: %d duplicate deliveries — exactly-once violated", epoch, fs.dups)
	}
	got := fs.frames[epoch]
	if len(got) != len(want) {
		t.Fatalf("epoch %d: delivered %d of %d batches", epoch, len(got), len(want))
	}
	for gid, ref := range want {
		p, ok := got[gid]
		if !ok {
			t.Fatalf("epoch %d: batch %d never delivered", epoch, gid)
		}
		if !bytes.Equal(p, ref) {
			t.Fatalf("epoch %d batch %d: cluster frame differs from single-node ground truth", epoch, gid)
		}
	}
}

// TestClusterThreeNodeLoopback is the tentpole's happy path: three nodes,
// two epochs, every batch exactly once and byte-identical to a single-node
// run, with the shards landing exactly where the ring says they should.
func TestClusterThreeNodeLoopback(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := clusterSpec()
	const epochs = 2
	want := groundTruth(t, spec, epochs)
	planLen := len(want[0])

	srvs := []*serve.Server{startNode(t, spec, nil), startNode(t, spec, nil), startNode(t, spec, nil)}
	nodes := testNodes(srvs)
	c, err := New(Config{Nodes: nodes, Name: "cluster-test", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sink := newFrameSink()
	stats, err := c.Run(epochs, sink.onBatch)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	for e := 0; e < epochs; e++ {
		sink.verifyEpoch(t, e, want[e])
	}
	if stats.Batches != epochs*planLen {
		t.Fatalf("stats counted %d batches, want %d", stats.Batches, epochs*planLen)
	}
	if stats.NodeFailures != 0 || stats.Rerouted != 0 || stats.Ignored != 0 {
		t.Fatalf("healthy cluster reported failures=%d rerouted=%d ignored=%d",
			stats.NodeFailures, stats.Rerouted, stats.Ignored)
	}

	// Placement must match the ring's deterministic assignment exactly:
	// batch keys are epoch-independent, so each node serves its shard twice.
	ring := NewRing(0)
	alive := map[string]bool{}
	for _, n := range nodes {
		ring.Add(n.ID)
		alive[n.ID] = true
	}
	ids := make([]int, planLen)
	for i := range ids {
		ids[i] = i
	}
	asn := ring.Assign(ids, alive, 1)
	for _, n := range nodes {
		if got, wantN := stats.PerNode[n.ID], epochs*len(asn.ByNode[n.ID]); got != wantN {
			t.Fatalf("node %s served %d batches, ring assigns %d", n.ID, got, wantN)
		}
	}
}

// killSwitch closes a victim server the moment the router first reports a
// fetch error against it — the deterministic "node process dies mid-epoch"
// actuator (the fault injector guarantees the stream breaks; the kill switch
// guarantees the node stays down for the retry).
type killSwitch struct {
	victim string
	srv    *serve.Server
	once   sync.Once
}

func (k *killSwitch) onFetchError(node string, epoch, attempt int, err error) {
	if node == k.victim {
		k.once.Do(func() { k.srv.Close() })
	}
}

// victimWithLargestShard picks the node the ring gives the most batches, so
// a mid-stream kill always leaves unserved work behind.
func victimWithLargestShard(nodes []Node, planLen int) (string, int) {
	ring := NewRing(0)
	alive := map[string]bool{}
	for _, n := range nodes {
		ring.Add(n.ID)
		alive[n.ID] = true
	}
	ids := make([]int, planLen)
	for i := range ids {
		ids[i] = i
	}
	asn := ring.Assign(ids, alive, 1)
	best, bestLen := "", -1
	for _, n := range nodes {
		if l := len(asn.ByNode[n.ID]); l > bestLen {
			best, bestLen = n.ID, l
		}
	}
	return best, bestLen
}

// TestClusterNodeDeathMidEpoch is the tentpole's acceptance scenario: one of
// three nodes dies mid-epoch (its connection drops after its first batch
// frame and the process stays down), and the epoch still delivers every
// batch exactly once, byte-identical to the single-node reference. The next
// epoch routes around the corpse without any failover work.
func TestClusterNodeDeathMidEpoch(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := clusterSpec()
	want := groundTruth(t, spec, 2)
	planLen := len(want[0])

	// The victim is decided by the ring before any server exists; give that
	// slot an injector that kills its connection before its second frame.
	probe := []Node{{ID: "node0"}, {ID: "node1"}, {ID: "node2"}}
	victimID, victimShard := victimWithLargestShard(probe, planLen)
	if victimShard < 2 {
		t.Fatalf("victim shard only %d batches; kill-mid-stream needs >= 2", victimShard)
	}
	srvs := make([]*serve.Server, 3)
	var victimSrv *serve.Server
	for i := range srvs {
		var inj *faultinject.Injector
		if fmt.Sprintf("node%d", i) == victimID {
			inj = faultinject.New(faultinject.Spec{Seed: 7, DropFrame: 2})
		}
		srvs[i] = startNode(t, spec, inj)
		if fmt.Sprintf("node%d", i) == victimID {
			victimSrv = srvs[i]
		}
	}
	nodes := testNodes(srvs)
	kill := &killSwitch{victim: victimID, srv: victimSrv}
	c, err := New(Config{
		Nodes: nodes, Name: "cluster-kill", Logf: t.Logf,
		OnFetchError: kill.onFetchError,
		Sleep:        func(time.Duration) {}, // no wall-clock waits in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sink := newFrameSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		t.Fatalf("epoch with node death: %v", err)
	}
	sink.verifyEpoch(t, 0, want[0])
	if stats.NodeFailures != 1 {
		t.Fatalf("node failures %d, want 1", stats.NodeFailures)
	}
	if stats.Rerouted == 0 || stats.Rounds < 2 {
		t.Fatalf("no failover observed: rerouted=%d rounds=%d", stats.Rerouted, stats.Rounds)
	}
	// DropFrame=2 let exactly one victim frame through before the cut; that
	// partial progress must be kept, not re-fetched.
	if got := stats.PerNode[victimID]; got != 1 {
		t.Fatalf("victim delivered %d frames before dying, want exactly 1 kept", got)
	}
	if stats.Rerouted != victimShard-1 {
		t.Fatalf("rerouted %d batches, want the victim's %d unserved", stats.Rerouted, victimShard-1)
	}
	if c.Membership().State(victimID) != StateDead {
		t.Fatal("victim not marked dead after failover")
	}

	// Epoch 1 on the degraded cluster: clean single-round run, no victim.
	sink2 := newFrameSink()
	stats2, err := c.RunEpoch(1, sink2.onBatch)
	if err != nil {
		t.Fatalf("epoch after node death: %v", err)
	}
	sink2.verifyEpoch(t, 1, want[1])
	if stats2.NodeFailures != 0 || stats2.Rerouted != 0 || stats2.Rounds != 1 {
		t.Fatalf("degraded-but-stable epoch did failover work: %+v", stats2)
	}
	if stats2.PerNode[victimID] != 0 {
		t.Fatal("dead node served batches in the following epoch")
	}
}

// TestRebalanceProperty is the satellite property test: across a sweep of
// victim choices and kill points (membership changes mid-epoch), the union
// of per-node served batch sets equals the plan exactly once, byte-identical
// to ground truth, with no goroutine left behind. Run under -race in CI.
func TestRebalanceProperty(t *testing.T) {
	spec := clusterSpec()
	want := groundTruth(t, spec, 1)
	planLen := len(want[0])

	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			baseline := testutil.Baseline()
			victimID := fmt.Sprintf("node%d", trial%3)
			dropFrame := 1 + trial%4 // includes a kill before the very first frame
			srvs := make([]*serve.Server, 3)
			var victimSrv *serve.Server
			for i := range srvs {
				var inj *faultinject.Injector
				if fmt.Sprintf("node%d", i) == victimID {
					inj = faultinject.New(faultinject.Spec{Seed: int64(trial + 1), DropFrame: dropFrame})
				}
				srvs[i] = startNode(t, spec, inj)
				if fmt.Sprintf("node%d", i) == victimID {
					victimSrv = srvs[i]
				}
			}
			nodes := testNodes(srvs)
			kill := &killSwitch{victim: victimID, srv: victimSrv}
			c, err := New(Config{
				Nodes: nodes, Name: fmt.Sprintf("rebalance-%d", trial),
				OnFetchError: kill.onFetchError,
				Sleep:        func(time.Duration) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			sink := newFrameSink()
			stats, err := c.RunEpoch(0, sink.onBatch)
			if err != nil {
				t.Fatalf("trial %d (victim=%s drop=%d): %v", trial, victimID, dropFrame, err)
			}
			sink.verifyEpoch(t, 0, want[0])
			if stats.Ignored != 0 {
				t.Fatalf("trial %d: %d frames hit the exactly-once filter", trial, stats.Ignored)
			}
			// The union across PerNode must be the whole plan, once.
			total := 0
			for _, n := range stats.PerNode {
				total += n
			}
			if total != planLen {
				t.Fatalf("trial %d: per-node counts sum to %d, want %d", trial, total, planLen)
			}
			// The victim died mid-epoch whenever it had work at the kill
			// point; either way the run must have noticed iff it failed.
			if stats.PerNode[victimID] >= dropFrame {
				t.Fatalf("trial %d: victim delivered %d frames past its kill point %d",
					trial, stats.PerNode[victimID], dropFrame)
			}
			for _, s := range srvs {
				s.Close()
			}
			c.Close()
			if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterNoAliveNodes: a cluster of corpses fails fast with a clear
// error instead of hanging.
func TestClusterNoAliveNodes(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	c, err := New(Config{
		Nodes:       []Node{{ID: "a", Addr: addrs[0]}, {ID: "b", Addr: addrs[1]}},
		Name:        "corpses",
		DialTimeout: 200 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.RunEpoch(0, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("epoch against dead cluster succeeded")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dead cluster hung instead of failing")
	}
	if alive := c.Membership().Alive(); len(alive) != 0 {
		t.Fatalf("dead endpoints still marked alive: %v", alive)
	}
}

// TestClusterCachedNodesReuse: with the materialized-batch cache enabled on
// every node, two runs of the same epoch are both byte-identical to ground
// truth, the first run preprocesses each batch exactly once cluster-wide
// (total misses == plan length — ShardReq routing hits the same cache the
// full-plan path fills), and the second run is served from cache (misses do
// not grow; every serving node reports hits).
func TestClusterCachedNodesReuse(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := clusterSpec()
	want := groundTruth(t, spec, 1)
	planLen := len(want[0])

	srvs := make([]*serve.Server, 3)
	for i := range srvs {
		srv := serve.New(serve.Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
			BatchCacheBytes: 64 << 20})
		if err := srv.Start("127.0.0.1:0", ""); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i] = srv
	}
	c, err := New(Config{Nodes: testNodes(srvs), Name: "cluster-cached", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sumMisses := func() int64 {
		var n int64
		for _, srv := range srvs {
			st, ok := srv.CacheStats()
			if !ok {
				t.Fatal("cache-enabled node reports cache disabled")
			}
			n += st.Misses
		}
		return n
	}

	sink := newFrameSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		t.Fatalf("first cached epoch: %v", err)
	}
	sink.verifyEpoch(t, 0, want[0])
	if got := sumMisses(); got != int64(planLen) {
		t.Fatalf("first run: cluster-wide misses %d, want %d (each batch preprocessed once)", got, planLen)
	}

	sink2 := newFrameSink()
	stats2, err := c.RunEpoch(0, sink2.onBatch)
	if err != nil {
		t.Fatalf("second cached epoch: %v", err)
	}
	sink2.verifyEpoch(t, 0, want[0])
	if got := sumMisses(); got != int64(planLen) {
		t.Fatalf("second run recomputed: cluster-wide misses %d, want still %d", got, planLen)
	}
	for i, srv := range srvs {
		st, _ := srv.CacheStats()
		id := fmt.Sprintf("node%d", i)
		if stats2.PerNode[id] > 0 && st.Hits == 0 {
			t.Fatalf("node%d served %d batches on the repeat run with zero cache hits", i, stats2.PerNode[id])
		}
	}
	if stats.Batches != planLen || stats2.Batches != planLen {
		t.Fatalf("runs delivered %d and %d batches, want %d each", stats.Batches, stats2.Batches, planLen)
	}
}

// hedgeSpec is a small real-pixel workload: wall-clock stalls on one node
// must be real for hedging to have anything to mitigate, so these tests run
// RealData servers instead of the virtual-stall Simulated ones above.
func hedgeSpec() workloads.Spec {
	spec := workloads.ICSpec(128, 7)
	spec.BatchSize = 16 // 8 batches per epoch
	spec.NumWorkers = 2
	return spec
}

// startRealNode boots one loopback RealData node at a small materialize dim.
func startRealNode(t *testing.T, spec workloads.Spec, inj *faultinject.Injector) *serve.Server {
	t.Helper()
	srv := serve.New(serve.Config{
		Spec: spec, Mode: pipeline.RealData, MaterializeDim: 24, Prefetch: 2, Faults: inj,
	})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestClusterHedgedFetchSlowNode: one of three nodes is degraded (every batch
// it produces stalls 30s on the wall clock — far past any compute noise,
// even under -race, so it is unambiguously a straggler relative to its
// peers) but never dies. Without hedging the epoch would wait out the stall
// train; with hedging the router re-issues the laggard's unserved IDs to
// ring successors, takes the first byte-identical answer, severs the
// satisfied primary (which bounds this test's runtime: the victim never
// delivers a frame on its own), and accounts every duplicate: exactly-once
// holds, nothing is reported dead, and Ignored == HedgeWasted.
func TestClusterHedgedFetchSlowNode(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := hedgeSpec()

	srv := startRealNode(t, spec, nil)
	gt := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: "ground-truth"})
	want := make([][]byte, 0)
	wantByID := make(map[int][]byte)
	if _, err := gt.Run(1, func(b *serve.Batch, payload []byte) {
		wantByID[b.GlobalID] = append([]byte(nil), payload...)
	}); err != nil {
		t.Fatalf("ground truth: %v", err)
	}
	gt.Close()
	for i := 0; i < len(wantByID); i++ {
		want = append(want, wantByID[i])
	}
	planLen := len(want)

	// The victim is the node the ring hands the most batches, so its stall
	// train dominates the epoch tail unless hedging intervenes.
	nodeIDs := []Node{{ID: "node0"}, {ID: "node1"}, {ID: "node2"}}
	victim, victimShard := victimWithLargestShard(nodeIDs, planLen)
	if victimShard == 0 {
		t.Fatal("ring assigned the victim nothing; test is vacuous")
	}
	srvs := make([]*serve.Server, 3)
	for i := range srvs {
		var inj *faultinject.Injector
		if fmt.Sprintf("node%d", i) == victim {
			inj = faultinject.New(faultinject.Spec{
				Seed: 7, StallNth: 1, WorkerStall: 30 * time.Second,
			})
		}
		srvs[i] = startRealNode(t, spec, inj)
	}
	c, err := New(Config{
		Nodes:           testNodes(srvs),
		Name:            "hedge-test",
		HedgeQuantile:   0.95,
		HedgeMinSamples: 2,
		HedgeInterval:   2 * time.Millisecond,
		HedgeMinDelay:   5 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sink := newFrameSink()
	start := time.Now()
	stats, err := c.RunEpoch(0, sink.onBatch)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged epoch: %v", err)
	}
	sink.verifyEpoch(t, 0, want)
	if stats.Hedged == 0 {
		t.Fatal("no batches were hedged off a node stalling 30s per batch")
	}
	if stats.Ignored != stats.HedgeWasted {
		t.Fatalf("Ignored=%d HedgeWasted=%d: duplicates not fully attributed to hedging",
			stats.Ignored, stats.HedgeWasted)
	}
	if stats.NodeFailures != 0 {
		t.Fatalf("a merely-degraded node was declared dead %d times", stats.NodeFailures)
	}
	// Latency gating lives in BenchmarkStragglerTail and the chaos cell: under
	// -race, pixel synthesis dwarfs the injected stalls and any wall-clock
	// bound here flakes. This test owns the correctness contract only.
	t.Logf("hedged epoch: %v (victim shard %d) hedged=%d won=%d wasted=%d",
		elapsed, victimShard, stats.Hedged, stats.HedgeWon, stats.HedgeWasted)
}

// TestWeightShiftProperty is the weighted-ring mirror of
// TestRebalanceProperty: shifting a node's vnode weight mid-epoch — alone
// and combined with a mid-epoch node death — preserves exactly-once
// delivery and byte-identity with single-node ground truth, and the shifted
// weight governs the next epoch's partition. Run under -race in CI.
func TestWeightShiftProperty(t *testing.T) {
	spec := clusterSpec()
	want := groundTruth(t, spec, 2)
	weights := []float64{0, 1.0 / 16, 0.3, 0.66}

	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			baseline := testutil.Baseline()
			victimID := fmt.Sprintf("node%d", trial%3)
			w := weights[trial%len(weights)]
			killTrial := trial%2 == 1 // odd trials also kill another node mid-epoch
			var killID string
			srvs := make([]*serve.Server, 3)
			var killSrv *serve.Server
			for i := range srvs {
				id := fmt.Sprintf("node%d", i)
				var inj *faultinject.Injector
				if killTrial && id != victimID && killID == "" {
					killID = id
					inj = faultinject.New(faultinject.Spec{Seed: int64(trial + 1), DropFrame: 2})
				}
				srvs[i] = startNode(t, spec, inj)
				if id == killID {
					killSrv = srvs[i]
				}
			}
			nodes := testNodes(srvs)
			cfg := Config{
				Nodes: nodes, Name: fmt.Sprintf("reweight-%d", trial),
				Sleep: func(time.Duration) {},
			}
			if killTrial {
				kill := &killSwitch{victim: killID, srv: killSrv}
				cfg.OnFetchError = kill.onFetchError
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// The weight shift fires from the delivery callback — i.e. from a
			// fetch goroutine mid-epoch, the hardest point to re-weight at.
			// The queue/safe-point discipline applies it at the next round or
			// epoch boundary.
			sink := newFrameSink()
			var once sync.Once
			stats, err := c.RunEpoch(0, func(node string, b *serve.Batch, payload []byte) {
				once.Do(func() {
					if !c.SetNodeWeight(victimID, w) {
						t.Errorf("SetNodeWeight(%q) rejected a known node", victimID)
					}
				})
				sink.onBatch(node, b, payload)
			})
			if err != nil {
				t.Fatalf("trial %d (victim=%s w=%.2f kill=%v): %v", trial, victimID, w, killTrial, err)
			}
			sink.verifyEpoch(t, 0, want[0])
			if stats.Ignored != 0 {
				t.Fatalf("trial %d: %d frames hit the exactly-once filter", trial, stats.Ignored)
			}

			// Epoch 1 runs fully under the shifted weight.
			sink2 := newFrameSink()
			stats2, err := c.RunEpoch(1, sink2.onBatch)
			if err != nil {
				t.Fatalf("trial %d epoch 1: %v", trial, err)
			}
			sink2.verifyEpoch(t, 1, want[1])
			wantW := float64(quantizeWeight(w, DefaultVNodes)) / DefaultVNodes
			if got := c.Weights()[victimID]; got != wantW {
				t.Fatalf("trial %d: victim weight %.4f after shift, want %.4f", trial, got, wantW)
			}
			if w == 0 && stats2.PerNode[victimID] != 0 {
				t.Fatalf("trial %d: weight-0 node still served %d batches", trial, stats2.PerNode[victimID])
			}
			for _, s := range srvs {
				s.Close()
			}
			c.Close()
			if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
				t.Fatal(err)
			}
		})
	}
}
