package cluster

import (
	"reflect"
	"testing"
)

// TestRingInsertionOrderInvariant: two rings over the same node set place
// every key identically regardless of Add order — consumers compute the same
// partition without coordination.
func TestRingInsertionOrderInvariant(t *testing.T) {
	a := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		a.Add(n)
	}
	b := NewRing(0)
	for _, n := range []string{"n3", "n1", "n4", "n2"} {
		b.Add(n)
	}
	for id := 0; id < 500; id++ {
		if ao, bo := a.Owners(BatchKey(id), 2), b.Owners(BatchKey(id), 2); !reflect.DeepEqual(ao, bo) {
			t.Fatalf("batch %d: owners %v vs %v across insertion orders", id, ao, bo)
		}
	}
}

// TestRingMinimalDisruption: removing one node moves only the keys that node
// owned; every other key keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 1000
	before := make([]string, keys)
	for id := 0; id < keys; id++ {
		before[id] = r.Owners(BatchKey(id), 1)[0]
	}
	const victim = "n3"
	r.Remove(victim)
	moved := 0
	for id := 0; id < keys; id++ {
		after := r.Owners(BatchKey(id), 1)[0]
		if before[id] == victim {
			moved++
			if after == victim {
				t.Fatalf("batch %d still owned by removed node", id)
			}
		} else if after != before[id] {
			t.Fatalf("batch %d moved %s -> %s though %s was removed", id, before[id], after, victim)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; test proves nothing")
	}
}

// TestRingOwnersDistinct: a replica set never repeats a node, is capped at
// the member count, and leads with the primary.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	for id := 0; id < 200; id++ {
		owners := r.Owners(BatchKey(id), 99)
		if len(owners) != 3 {
			t.Fatalf("batch %d: %d owners, want all 3", id, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("batch %d: duplicate owner %s in %v", id, o, owners)
			}
			seen[o] = true
		}
		if primary := r.Owners(BatchKey(id), 1); primary[0] != owners[0] {
			t.Fatalf("batch %d: primary %s vs replica head %s", id, primary[0], owners[0])
		}
	}
}

// TestRingBalance: with the default virtual-node count no member of a
// 3-node ring is starved or grossly overloaded.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 3000
	for id := 0; id < keys; id++ {
		counts[r.Owners(BatchKey(id), 1)[0]]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("node %s owns nothing", n)
		}
		if c > keys*2/3 {
			t.Fatalf("node %s owns %d of %d keys — ring badly imbalanced %v", n, c, keys, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
}

// assignUnion flattens an Assignment back into a multiset of IDs.
func assignUnion(a Assignment) map[int]int {
	seen := map[int]int{}
	for _, ids := range a.ByNode {
		for _, id := range ids {
			seen[id]++
		}
	}
	for _, id := range a.Unassigned {
		seen[id]++
	}
	return seen
}

// TestAssignPartitionsExactlyOnce: every requested ID lands in exactly one
// node's shard (or Unassigned when nothing is alive) — the static half of
// the exactly-once invariant.
func TestAssignPartitionsExactlyOnce(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i
	}

	aliveSets := []map[string]bool{
		{"n1": true, "n2": true, "n3": true},
		{"n1": true, "n3": true},
		{"n2": true},
		{},
	}
	for _, alive := range aliveSets {
		asn := r.Assign(ids, alive, 1)
		seen := assignUnion(asn)
		if len(seen) != len(ids) {
			t.Fatalf("alive=%v: %d distinct ids placed, want %d", alive, len(seen), len(ids))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("alive=%v: id %d placed %d times", alive, id, n)
			}
		}
		for node := range asn.ByNode {
			if !alive[node] {
				t.Fatalf("dead node %s received work", node)
			}
		}
		if len(alive) == 0 && len(asn.Unassigned) != len(ids) {
			t.Fatalf("empty alive set: %d unassigned, want all %d", len(asn.Unassigned), len(ids))
		}
		if len(alive) > 0 && len(asn.Unassigned) != 0 {
			t.Fatalf("alive=%v: %d ids unassigned with survivors present", alive, len(asn.Unassigned))
		}
	}
}

// TestAssignSpillAccounting: with R=1, killing one node spills exactly its
// formerly-owned batches (they are served outside their replica set); with
// everyone alive nothing spills.
func TestAssignSpillAccounting(t *testing.T) {
	r := NewRing(0)
	all := map[string]bool{"n1": true, "n2": true, "n3": true}
	for n := range all {
		r.Add(n)
	}
	ids := make([]int, 60)
	for i := range ids {
		ids[i] = i
	}
	if asn := r.Assign(ids, all, 1); asn.Spilled != 0 {
		t.Fatalf("all alive: %d spilled, want 0", asn.Spilled)
	}

	const victim = "n2"
	victimOwned := 0
	for _, id := range ids {
		if r.Owners(BatchKey(id), 1)[0] == victim {
			victimOwned++
		}
	}
	survivors := map[string]bool{"n1": true, "n3": true}
	asn := r.Assign(ids, survivors, 1)
	if asn.Spilled != victimOwned {
		t.Fatalf("victim owned %d batches but %d spilled", victimOwned, asn.Spilled)
	}
	// With R=2 the same death spills nothing: the secondary replica absorbs.
	if asn2 := r.Assign(ids, survivors, 2); asn2.Spilled != 0 {
		t.Fatalf("R=2 one death: %d spilled, want 0", asn2.Spilled)
	}
}

// TestAssignReplicaAffinity: an ID's assignment under R=2 is always a member
// of its 2-replica set while either replica lives.
func TestAssignReplicaAffinity(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		r.Add(n)
	}
	alive := map[string]bool{"n1": true, "n2": true, "n3": true, "n4": true}
	delete(alive, "n1")
	asn := r.Assign([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, alive, 2)
	for node, ids := range asn.ByNode {
		for _, id := range ids {
			reps := r.Replicas(id, 2)
			inSet := reps[0] == node || reps[1] == node
			aliveRep := alive[reps[0]] || alive[reps[1]]
			if aliveRep && !inSet {
				t.Fatalf("id %d assigned to %s outside live replica set %v", id, node, reps)
			}
		}
	}
}

// TestRingSequentialKeysDisperse is the regression test for the mix64
// finalizer: epoch plans are *sequential* batch IDs, and raw FNV-1a leaves
// "batch/0".."batch/N" hashed into a band narrower than one vnode arc — an
// entire epoch collapsing onto one node. A real plan-sized run of sequential
// keys must touch every member of a three-node ring.
func TestRingSequentialKeysDisperse(t *testing.T) {
	r := NewRing(0)
	members := []string{"node0", "node1", "node2"}
	for _, n := range members {
		r.Add(n)
	}
	for _, plan := range []int{16, 20, 64} {
		counts := map[string]int{}
		for id := 0; id < plan; id++ {
			counts[r.Owners(BatchKey(id), 1)[0]]++
		}
		for _, n := range members {
			if counts[n] == 0 {
				t.Errorf("plan of %d sequential batches left %s with no work: %v", plan, n, counts)
			}
			if counts[n] > 2*plan/3 {
				t.Errorf("plan of %d sequential batches skewed onto %s: %v", plan, n, counts)
			}
		}
	}
}

// TestRingSetWeightMinimalDisruption: shrinking one node's weight moves only
// keys that node owned (its dropped arcs); every key owned by another node
// keeps its owner. This is the property that makes a live re-weight cheap —
// the rest of the epoch's cache affinity survives.
func TestRingSetWeightMinimalDisruption(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"n1", "n2", "n3"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 1000
	before := make([]string, keys)
	for id := 0; id < keys; id++ {
		before[id] = r.Owners(BatchKey(id), 1)[0]
	}
	const victim = "n2"
	if !r.SetWeight(victim, 1.0/3) {
		t.Fatal("SetWeight reported no change for a 1/3 weight")
	}
	moved, kept := 0, 0
	for id := 0; id < keys; id++ {
		after := r.Owners(BatchKey(id), 1)[0]
		if before[id] != victim {
			if after != before[id] {
				t.Fatalf("batch %d moved %s -> %s though only %s was re-weighted",
					id, before[id], after, victim)
			}
			continue
		}
		if after == victim {
			kept++
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("down-weighting moved no keys off the victim")
	}
	if kept == 0 {
		t.Fatal("a 1/3-weight member should keep a share of its keys")
	}
}

// TestRingSetWeightDeterministic: two rings that arrive at the same weight
// state through different histories partition identically — the property
// that lets any consumer replay a weight log and agree on ownership.
func TestRingSetWeightDeterministic(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		a.Add(n)
		b.Add(n)
	}
	a.SetWeight("n2", 0.8)
	a.SetWeight("n2", 0.25) // via an intermediate step
	b.SetWeight("n2", 0.25) // directly
	for id := 0; id < 500; id++ {
		ao, bo := a.Owners(BatchKey(id), 2), b.Owners(BatchKey(id), 2)
		if !reflect.DeepEqual(ao, bo) {
			t.Fatalf("batch %d: owners %v vs %v across weight histories", id, ao, bo)
		}
	}
}

// TestRingWeightZeroAndRestore: weight 0 removes a member from every key
// walk while keeping it in the member set; restoring full weight reproduces
// the original partition exactly (the vnode prefix scheme has no memory).
func TestRingWeightZeroAndRestore(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	const keys = 500
	before := make([][]string, keys)
	for id := 0; id < keys; id++ {
		before[id] = r.Owners(BatchKey(id), 0)
	}
	r.SetWeight("n2", 0)
	if r.Weight("n2") != 0 {
		t.Fatalf("Weight(n2) = %v after SetWeight 0", r.Weight("n2"))
	}
	if got := r.Nodes(); len(got) != 3 {
		t.Fatalf("weight 0 must not remove membership, Nodes() = %v", got)
	}
	for id := 0; id < keys; id++ {
		for _, owner := range r.Owners(BatchKey(id), 0) {
			if owner == "n2" {
				t.Fatalf("batch %d walk still visits a weight-0 member", id)
			}
		}
	}
	r.SetWeight("n2", 1)
	for id := 0; id < keys; id++ {
		if got := r.Owners(BatchKey(id), 0); !reflect.DeepEqual(got, before[id]) {
			t.Fatalf("batch %d: owners %v after restore, want %v", id, got, before[id])
		}
	}
}

// TestQuantizeWeight pins the quantization contract: nearest vnode count,
// positive weights never round to zero, and everything clamps to [0, vnodes].
func TestQuantizeWeight(t *testing.T) {
	cases := []struct {
		w      float64
		vnodes int
		want   int
	}{
		{0, 64, 0},
		{-1, 64, 0},
		{1, 64, 64},
		{2, 64, 64},
		{0.5, 64, 32},
		{0.001, 64, 1}, // tiny but positive keeps a sliver
		{1.0 / 3, 64, 21},
	}
	for _, c := range cases {
		if got := quantizeWeight(c.w, c.vnodes); got != c.want {
			t.Errorf("quantizeWeight(%v, %d) = %d, want %d", c.w, c.vnodes, got, c.want)
		}
	}
}
