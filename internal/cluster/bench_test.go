package cluster

import (
	"fmt"
	"testing"

	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/workloads"
)

// BenchmarkClusterThroughput measures routed batches per second as the node
// count scales. The nodes serve in emulate-time mode: the Simulated pipeline
// runs on the wall clock, so each batch costs its modeled preprocessing and
// storage time in real time and the epoch is paced by pipeline latency, not
// by this machine's core count. Each iteration routes one full epoch plan
// through the consistent-hash router; with N nodes the per-node shards
// stream concurrently, so aggregate throughput grows with N.
// scripts/bench.sh captures the batches/sec metric into BENCH_PR4.json.
func BenchmarkClusterThroughput(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			spec := workloads.ICSpec(256, 7)
			spec.BatchSize = 16 // 16 batches per epoch
			spec.NumWorkers = 2

			nodes := make([]Node, n)
			for i := range nodes {
				srv := serve.New(serve.Config{Spec: spec, Mode: pipeline.Simulated, EmulateTime: true, Prefetch: 4})
				if err := srv.Start("127.0.0.1:0", ""); err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				nodes[i] = Node{ID: fmt.Sprintf("node%d", i), Addr: srv.Addr()}
			}
			c, err := New(Config{Nodes: nodes, Name: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := c.RunEpoch(0, nil)
				if err != nil {
					b.Fatal(err)
				}
				if stats.NodeFailures > 0 || stats.Ignored > 0 {
					b.Fatalf("benchmark epoch saw failures: %+v", stats)
				}
				total += stats.Batches
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(total)/sec, "batches/sec")
			}
		})
	}
}
