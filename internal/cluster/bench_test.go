package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"lotus/internal/control"
	"lotus/internal/faultinject"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/workloads"
)

// BenchmarkClusterThroughput measures routed batches per second as the node
// count scales. The nodes serve in emulate-time mode: the Simulated pipeline
// runs on the wall clock, so each batch costs its modeled preprocessing and
// storage time in real time and the epoch is paced by pipeline latency, not
// by this machine's core count. Each iteration routes one full epoch plan
// through the consistent-hash router; with N nodes the per-node shards
// stream concurrently, so aggregate throughput grows with N.
// scripts/bench.sh captures the batches/sec metric into BENCH_PR4.json.
func BenchmarkClusterThroughput(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			spec := workloads.ICSpec(256, 7)
			spec.BatchSize = 16 // 16 batches per epoch
			spec.NumWorkers = 2

			nodes := make([]Node, n)
			for i := range nodes {
				srv := serve.New(serve.Config{Spec: spec, Mode: pipeline.Simulated, EmulateTime: true, Prefetch: 4})
				if err := srv.Start("127.0.0.1:0", ""); err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				nodes[i] = Node{ID: fmt.Sprintf("node%d", i), Addr: srv.Addr()}
			}
			c, err := New(Config{Nodes: nodes, Name: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := c.RunEpoch(0, nil)
				if err != nil {
					b.Fatal(err)
				}
				if stats.NodeFailures > 0 || stats.Ignored > 0 {
					b.Fatalf("benchmark epoch saw failures: %+v", stats)
				}
				total += stats.Batches
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(total)/sec, "batches/sec")
			}
		})
	}
}

// BenchmarkStragglerTail quantifies the PR 8 claim: hedged fetches cut the
// p99 epoch latency of a cluster with one degraded node by at least 2x
// without changing a served byte. Three RealData nodes serve pixel payloads;
// the ring's busiest node stalls on the wall clock after every batch it
// preprocesses. The hedge=off series eats the straggler's stall train every
// epoch; hedge=on re-issues the laggard's unserved batches to ring
// successors and takes the first byte-identical answer. Every iteration's
// frames are compared against a healthy node's ground truth, so the speedup
// is proven on identical output. scripts/bench.sh captures the p99-epoch-ms
// metric into BENCH_PR8.json and gates the 2x ratio.
func BenchmarkStragglerTail(b *testing.B) {
	spec := workloads.ICSpec(128, 7)
	spec.BatchSize = 16 // 8 batches per epoch
	spec.NumWorkers = 2
	const matDim = 24
	// The victim models a genuinely degraded node — disk contention, a noisy
	// neighbor, thermal throttling — not jitter: every batch it preprocesses
	// eats a 1.5s stall, an order of magnitude over the healthy per-batch
	// cost.
	// Hedging is insurance against exactly this regime; when a "straggler" is
	// only marginally slower than the recompute cost of its work, the race is
	// a coin flip and hedging buys nothing.
	const stall = 1500 * time.Millisecond

	newNode := func(inj *faultinject.Injector) *serve.Server {
		srv := serve.New(serve.Config{
			Spec: spec, Mode: pipeline.RealData, MaterializeDim: matDim, Prefetch: 2, Faults: inj,
		})
		if err := srv.Start("127.0.0.1:0", ""); err != nil {
			b.Fatal(err)
		}
		return srv
	}

	// Ground truth from one healthy node: frames indexed by global batch ID.
	gtSrv := newNode(nil)
	gt := serve.NewClient(serve.ClientConfig{Addr: gtSrv.Addr(), Name: "bench-ground-truth"})
	want := make(map[int][]byte)
	if _, err := gt.Run(1, func(batch *serve.Batch, payload []byte) {
		want[batch.GlobalID] = append([]byte(nil), payload...)
	}); err != nil {
		b.Fatal(err)
	}
	gt.Close()
	gtSrv.Close()

	// The ring decides the victim the same way regardless of hedging config.
	ring := NewRing(0)
	alive := map[string]bool{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		ring.Add(id)
		alive[id] = true
	}
	ids := make([]int, len(want))
	for i := range ids {
		ids[i] = i
	}
	asn := ring.Assign(ids, alive, 1)
	victim, best := "", -1
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		if l := len(asn.ByNode[id]); l > best {
			best, victim = l, id
		}
	}

	for _, hedged := range []bool{false, true} {
		name := "hedge=off"
		if hedged {
			name = "hedge=on"
		}
		b.Run(name, func(b *testing.B) {
			nodes := make([]Node, 3)
			for i := range nodes {
				id := fmt.Sprintf("node%d", i)
				var inj *faultinject.Injector
				if id == victim {
					inj = faultinject.New(faultinject.Spec{Seed: 7, StallNth: 1, WorkerStall: stall})
				}
				srv := newNode(inj)
				defer srv.Close()
				nodes[i] = Node{ID: id, Addr: srv.Addr()}
			}
			cfg := Config{Nodes: nodes, Name: "bench-straggler-" + name}
			if hedged {
				cfg.HedgeQuantile = 0.95
				// MinSamples 2 arms the monitor inside the first epoch, as
				// soon as both healthy peers deliver their first frame. The
				// 400ms floor sits above warm-up jitter (every healthy first
				// frame lands well before it, even time-sharing one core with
				// two other servers) but far below the victim's stall train,
				// so only a genuinely degraded node can still be quiet when
				// the monitor is allowed to flag it. On a loaded box a noise
				// hedge is not merely wasted bytes: its recompute steals CPU
				// from the true hedge's critical path.
				cfg.HedgeMinSamples = 2
				cfg.HedgeInterval = 2 * time.Millisecond
				cfg.HedgeMinDelay = 400 * time.Millisecond
			}
			c, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			var epochSecs []float64
			totalBatches, totalHedged := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := make(map[int][]byte, len(want))
				start := time.Now()
				stats, err := c.RunEpoch(0, func(node string, batch *serve.Batch, payload []byte) {
					got[batch.GlobalID] = append([]byte(nil), payload...)
				})
				epochSecs = append(epochSecs, time.Since(start).Seconds())
				if err != nil {
					b.Fatal(err)
				}
				if stats.NodeFailures > 0 {
					b.Fatalf("degraded node was declared dead: %+v", stats)
				}
				if len(got) != len(want) {
					b.Fatalf("epoch delivered %d of %d batches", len(got), len(want))
				}
				for id, wantBytes := range want {
					if !bytes.Equal(got[id], wantBytes) {
						b.Fatalf("%s: batch %d not byte-identical to ground truth", name, id)
					}
				}
				totalBatches += stats.Batches
				totalHedged += stats.Hedged
			}
			b.StopTimer()
			sort.Float64s(epochSecs)
			p99 := epochSecs[(len(epochSecs)*99+99)/100-1]
			b.ReportMetric(p99*1000, "p99-epoch-ms")
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(totalBatches)/sec, "batches/sec")
			}
			if hedged && totalHedged == 0 {
				b.Fatal("hedge=on series never hedged a batch")
			}
		})
	}
}

// BenchmarkAutotuneImbalanced quantifies the PR 9 claim: on a 3-node cluster
// whose busiest node pays ~3x the per-batch cost, the closed-loop balancer
// lifts aggregate routed throughput at least 1.5x over the static ring, with
// every served byte unchanged. The nodes run in emulate-time mode (the
// Simulated pipeline paced on the wall clock) so each node's cadence is its
// own modeled service rate, not this host's core count; the victim's extra
// cost is a virtual stall per preprocessed batch, which emulate mode pays in
// real time. The autotune=off series eats the imbalance every epoch; the
// autotune=on series sheds ring weight from the slow node across epochs and
// settles with the cluster throughput-bound, not victim-bound. Both series
// get the same untimed warm-up epochs, so convergence happens inside the
// measured region for the "on" series too. scripts/bench.sh captures the
// batches/sec metric into BENCH_PR9.json and gates the 1.5x ratio.
func BenchmarkAutotuneImbalanced(b *testing.B) {
	spec := workloads.ICSpec(256, 7)
	spec.BatchSize = 8 // 32 batches per epoch
	spec.NumWorkers = 2
	// ~2x the healthy modeled per-batch cost on top of base: the victim runs
	// at roughly 3x per batch.
	const stall = 100 * time.Millisecond

	// Ground truth once from a plain Simulated server (same bytes, unpaced).
	gtSrv := serve.New(serve.Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 4})
	if err := gtSrv.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	gt := serve.NewClient(serve.ClientConfig{Addr: gtSrv.Addr(), Name: "bench-ground-truth"})
	want := make(map[int][]byte)
	if _, err := gt.Run(1, func(batch *serve.Batch, payload []byte) {
		want[batch.GlobalID] = append([]byte(nil), payload...)
	}); err != nil {
		b.Fatal(err)
	}
	gt.Close()
	gtSrv.Close()

	// The ring decides the victim the same way regardless of tuning config.
	ring := NewRing(0)
	alive := map[string]bool{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		ring.Add(id)
		alive[id] = true
	}
	ids := make([]int, len(want))
	for i := range ids {
		ids[i] = i
	}
	asn := ring.Assign(ids, alive, 1)
	victim, best := "", -1
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		if l := len(asn.ByNode[id]); l > best {
			best, victim = l, id
		}
	}

	for _, tune := range []bool{false, true} {
		b.Run(fmt.Sprintf("autotune=%v", tune), func(b *testing.B) {
			nodes := make([]Node, 3)
			for i := range nodes {
				id := fmt.Sprintf("node%d", i)
				var inj *faultinject.Injector
				if id == victim {
					inj = faultinject.New(faultinject.Spec{Seed: 7, StallNth: 1, WorkerStall: stall})
				}
				srv := serve.New(serve.Config{
					Spec: spec, Mode: pipeline.Simulated, EmulateTime: true, Prefetch: 4, Faults: inj,
				})
				if err := srv.Start("127.0.0.1:0", ""); err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				nodes[i] = Node{ID: id, Addr: srv.Addr()}
			}
			c, err := New(Config{
				Nodes:    nodes,
				Name:     fmt.Sprintf("bench-autotune-%v", tune),
				AutoTune: tune,
				Balancer: control.BalancerConfig{MinSamples: 2, Cooldown: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			// Equal untimed warm-up for both series: connections dialed,
			// histograms primed. The "on" series has NOT converged yet — its
			// re-weighting epochs are measured.
			for i := 0; i < 2; i++ {
				if _, err := c.RunEpoch(0, nil); err != nil {
					b.Fatal(err)
				}
			}

			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := make(map[int][]byte, len(want))
				stats, err := c.RunEpoch(0, func(node string, batch *serve.Batch, payload []byte) {
					got[batch.GlobalID] = append([]byte(nil), payload...)
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.NodeFailures > 0 || stats.Ignored > 0 {
					b.Fatalf("benchmark epoch saw failures: %+v", stats)
				}
				if len(got) != len(want) {
					b.Fatalf("delivered %d of %d batches", len(got), len(want))
				}
				for gid, w := range want {
					if !bytes.Equal(got[gid], w) {
						b.Fatalf("batch %d not byte-identical under autotune=%v", gid, tune)
					}
				}
				total += stats.Batches
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(total)/sec, "batches/sec")
			}
			if tune {
				b.ReportMetric(c.Weights()[victim], "victim-weight")
			}
		})
	}
}
