package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lotus/internal/testutil"
)

// fakeProbe is an injectable probe whose per-node verdicts tests flip.
type fakeProbe struct {
	mu     sync.Mutex
	fail   map[string]bool
	probes map[string]int
}

func newFakeProbe() *fakeProbe {
	return &fakeProbe{fail: map[string]bool{}, probes: map[string]int{}}
}

func (f *fakeProbe) probe(n Node, _ time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.probes[n.ID]++
	if f.fail[n.ID] {
		return errors.New("probe refused")
	}
	return nil
}

func (f *fakeProbe) setFail(id string, v bool) {
	f.mu.Lock()
	f.fail[id] = v
	f.mu.Unlock()
}

// TestMembershipStateMachine drives the prober with ProbeOnce: a node dies
// only after FailThreshold consecutive failures, resurrects on one success,
// and every transition fires OnChange exactly once.
func TestMembershipStateMachine(t *testing.T) {
	fp := newFakeProbe()
	var transitions []string
	m := NewMembership(MembershipConfig{
		Nodes:         []Node{{ID: "a", Addr: "1"}, {ID: "b", Addr: "2"}},
		FailThreshold: 2,
		Probe:         fp.probe,
		OnChange: func(id string, st NodeState) {
			transitions = append(transitions, id+"->"+st.String())
		},
	})

	if st := m.State("a"); st != StateAlive {
		t.Fatalf("initial state %v, want alive (optimistic start)", st)
	}

	fp.setFail("a", true)
	m.ProbeOnce() // one failure: below threshold, still alive
	if st := m.State("a"); st != StateAlive {
		t.Fatalf("after 1 failure: %v, want alive", st)
	}
	m.ProbeOnce() // second consecutive failure: dead
	if st := m.State("a"); st != StateDead {
		t.Fatalf("after 2 failures: %v, want dead", st)
	}
	if alive := m.Alive(); alive["a"] || !alive["b"] {
		t.Fatalf("alive set %v, want only b", alive)
	}

	fp.setFail("a", false)
	m.ProbeOnce() // one success resurrects
	if st := m.State("a"); st != StateAlive {
		t.Fatalf("after recovery probe: %v, want alive", st)
	}
	want := []string{"a->dead", "a->alive"}
	if strings.Join(transitions, ",") != strings.Join(want, ",") {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("snapshot not sorted by ID: %+v", snap)
	}
	if snap[0].Transitions != 2 || snap[0].Probes != 3 {
		t.Fatalf("node a counters: transitions=%d probes=%d, want 2/3", snap[0].Transitions, snap[0].Probes)
	}
}

// TestReportFailureKillsImmediately: the passive path marks a node dead
// without waiting FailThreshold probe periods; a later successful probe
// resurrects it.
func TestReportFailureKillsImmediately(t *testing.T) {
	fp := newFakeProbe()
	m := NewMembership(MembershipConfig{
		Nodes: []Node{{ID: "a", Addr: "1"}},
		Probe: fp.probe,
	})
	m.ReportFailure("a", errors.New("stream died"))
	if st := m.State("a"); st != StateDead {
		t.Fatalf("after ReportFailure: %v, want dead", st)
	}
	if s := m.Snapshot()[0]; !strings.Contains(s.LastProbeErr, "stream died") {
		t.Fatalf("last error %q does not carry the reported cause", s.LastProbeErr)
	}
	m.ProbeOnce()
	if st := m.State("a"); st != StateAlive {
		t.Fatalf("successful probe after report: %v, want alive", st)
	}
	// Reporting an unknown node is a no-op, not a panic.
	m.ReportFailure("ghost", nil)
}

// TestMembershipProbeLoop: Start launches real probe loops that observe a
// failure within a few intervals, and Stop tears every goroutine down.
func TestMembershipProbeLoop(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	fp := newFakeProbe()
	fp.setFail("a", true)
	m := NewMembership(MembershipConfig{
		Nodes:         []Node{{ID: "a", Addr: "1"}, {ID: "b", Addr: "2"}},
		Interval:      5 * time.Millisecond,
		FailThreshold: 2,
		Probe:         fp.probe,
	})
	m.Start()
	deadline := time.Now().Add(5 * time.Second)
	for m.State("a") != StateDead {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never marked the failing node dead")
		}
		time.Sleep(time.Millisecond)
	}
	if m.State("b") != StateAlive {
		t.Fatal("healthy node died")
	}
	m.Stop()
	m.Stop() // idempotent
}

// TestDefaultProbeHealthz: the production probe treats any HTTP response —
// including a draining node's 503 — as liveness, and a dead endpoint as
// failure.
func TestDefaultProbeHealthz(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ok.Close()
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer draining.Close()

	host := func(s *httptest.Server) string { return strings.TrimPrefix(s.URL, "http://") }
	if err := defaultProbe(Node{ID: "n", HTTPAddr: host(ok)}, time.Second); err != nil {
		t.Fatalf("healthy sidecar probed dead: %v", err)
	}
	if err := defaultProbe(Node{ID: "n", HTTPAddr: host(draining)}, time.Second); err != nil {
		t.Fatalf("draining (503) sidecar must count as alive: %v", err)
	}
	dead := host(ok)
	ok.Close()
	if err := defaultProbe(Node{ID: "n", HTTPAddr: dead}, 200*time.Millisecond); err == nil {
		t.Fatal("closed sidecar probed alive")
	}
	// No HTTPAddr: falls back to a TCP dial of the wire address.
	if err := defaultProbe(Node{ID: "n", Addr: host(draining)}, time.Second); err != nil {
		t.Fatalf("TCP fallback probe failed on live port: %v", err)
	}
}
