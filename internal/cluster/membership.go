package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"lotus/internal/rng"
)

// NodeState is one member's liveness as seen by a prober.
type NodeState int

const (
	// StateAlive: the last probe (or the initial assumption) succeeded.
	StateAlive NodeState = iota
	// StateDead: FailThreshold consecutive probes failed, or a router
	// reported a fatal fetch failure.
	StateDead
)

func (s NodeState) String() string {
	if s == StateDead {
		return "dead"
	}
	return "alive"
}

// Node identifies one lotus-serve member of the cluster.
type Node struct {
	// ID is the node's stable identity on the hash ring. Defaults to Addr.
	ID string
	// Addr is the wire-protocol endpoint (host:port).
	Addr string
	// HTTPAddr is the observability sidecar endpoint. When set, probes GET
	// /healthz there; when empty, probes fall back to a TCP dial of Addr.
	HTTPAddr string
}

// MemberStatus is one node's live membership row (the /cluster JSON shape).
type MemberStatus struct {
	ID           string `json:"id"`
	Addr         string `json:"addr"`
	HTTPAddr     string `json:"http_addr,omitempty"`
	State        string `json:"state"`
	Fails        int    `json:"consecutive_fails"`
	Probes       int64  `json:"probes"`
	Transitions  int64  `json:"transitions"`
	LastProbeErr string `json:"last_probe_error,omitempty"`
}

// MembershipConfig parameterizes a prober.
type MembershipConfig struct {
	// Nodes is the static member set (cluster bootstrap list).
	Nodes []Node
	// Interval is the mean heartbeat period per node (default 500ms). Each
	// node's actual gaps are jittered into [Interval/2, Interval) by a
	// deterministic per-node stream, so a fleet of probers never thunders in
	// phase and any one prober's schedule is reproducible.
	Interval time.Duration
	// Timeout bounds one probe (default Interval/2).
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a node dead
	// (default 2). One success marks it alive again.
	FailThreshold int
	// JitterSeed seeds the per-node interval jitter (default 1).
	JitterSeed int64
	// Probe overrides the network probe (tests inject deterministic fakes).
	// nil selects the default: GET http://HTTPAddr/healthz, expecting any
	// HTTP response (a draining node still answers 503 — it is alive and
	// refusing, which is a liveness yes), else a TCP dial of Addr.
	Probe func(n Node, timeout time.Duration) error
	// OnChange, when set, observes every state transition.
	OnChange func(id string, state NodeState)
	// Logf receives transition logs (nil = silent).
	Logf func(format string, args ...any)
}

// member is one node's mutable probe state.
type member struct {
	node        Node
	state       NodeState
	fails       int
	probes      int64
	transitions int64
	lastErr     string
	jitter      *rng.Stream
}

// Membership tracks node liveness: a pure-Go probe loop per node heartbeats
// the /healthz sidecar on a deterministically jittered interval, plus a
// passive path (ReportFailure) for routers that discover death faster than
// the prober. All methods are safe for concurrent use.
type Membership struct {
	cfg MembershipConfig

	mu      sync.Mutex
	members map[string]*member
	order   []string

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewMembership builds a prober over the given static member set. Nodes
// start alive (optimistic: the first failed probe cycle kills them), and no
// goroutines run until Start.
func NewMembership(cfg MembershipConfig) *Membership {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Probe == nil {
		cfg.Probe = defaultProbe
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Membership{
		cfg:     cfg,
		members: make(map[string]*member),
		stop:    make(chan struct{}),
	}
	for _, n := range cfg.Nodes {
		if n.ID == "" {
			n.ID = n.Addr
		}
		if _, dup := m.members[n.ID]; dup {
			continue
		}
		m.members[n.ID] = &member{
			node:   n,
			jitter: rng.New(cfg.JitterSeed, "cluster/heartbeat/"+n.ID),
		}
		m.order = append(m.order, n.ID)
	}
	sort.Strings(m.order)
	return m
}

// defaultProbe is the production heartbeat: the node's /healthz sidecar when
// it has one, else a TCP dial of the wire address.
func defaultProbe(n Node, timeout time.Duration) error {
	if n.HTTPAddr != "" {
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get("http://" + n.HTTPAddr + "/healthz")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	}
	conn, err := net.DialTimeout("tcp", n.Addr, timeout)
	if err != nil {
		return err
	}
	conn.Close()
	return nil
}

// Start launches one probe goroutine per node. Call Stop to tear down.
func (m *Membership) Start() {
	for _, id := range m.order {
		mem := m.members[id]
		m.wg.Add(1)
		go m.probeLoop(mem)
	}
}

// Stop halts the probe loops and waits for them to exit.
func (m *Membership) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}

func (m *Membership) probeLoop(mem *member) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		d := m.cfg.Interval/2 + time.Duration(mem.jitter.Float64()*float64(m.cfg.Interval/2))
		m.mu.Unlock()
		select {
		case <-m.stop:
			return
		case <-time.After(d):
		}
		err := m.cfg.Probe(mem.node, m.cfg.Timeout)
		m.record(mem, err)
	}
}

// ProbeOnce probes every member synchronously, in sorted ID order — the
// deterministic single-step the tests and the chaos sweep drive instead of
// the wall-clock loop.
func (m *Membership) ProbeOnce() {
	for _, id := range m.order {
		mem := m.members[id]
		err := m.cfg.Probe(mem.node, m.cfg.Timeout)
		m.record(mem, err)
	}
}

// record folds one probe result into the member's state machine.
func (m *Membership) record(mem *member, err error) {
	m.mu.Lock()
	mem.probes++
	var flip NodeState
	flipped := false
	if err != nil {
		mem.fails++
		mem.lastErr = err.Error()
		if mem.state == StateAlive && mem.fails >= m.cfg.FailThreshold {
			mem.state = StateDead
			mem.transitions++
			flip, flipped = StateDead, true
		}
	} else {
		mem.fails = 0
		mem.lastErr = ""
		if mem.state == StateDead {
			mem.state = StateAlive
			mem.transitions++
			flip, flipped = StateAlive, true
		}
	}
	m.mu.Unlock()
	if flipped {
		m.cfg.Logf("cluster: node %s -> %s", mem.node.ID, flip)
		if m.cfg.OnChange != nil {
			m.cfg.OnChange(mem.node.ID, flip)
		}
	}
}

// ReportFailure is the passive detection path: a router that just watched a
// node's stream die reports it, immediately marking the node dead without
// waiting FailThreshold probe periods. The prober resurrects the node on its
// next successful heartbeat.
func (m *Membership) ReportFailure(id string, err error) {
	m.mu.Lock()
	mem, ok := m.members[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	mem.fails = m.cfg.FailThreshold
	if err != nil {
		mem.lastErr = err.Error()
	}
	flipped := mem.state == StateAlive
	if flipped {
		mem.state = StateDead
		mem.transitions++
	}
	m.mu.Unlock()
	if flipped {
		m.cfg.Logf("cluster: node %s -> dead (reported: %v)", id, err)
		if m.cfg.OnChange != nil {
			m.cfg.OnChange(id, StateDead)
		}
	}
}

// MarkAlive force-sets a node alive (tests; a router that reconnected).
func (m *Membership) MarkAlive(id string) {
	m.mu.Lock()
	mem, ok := m.members[id]
	flipped := ok && mem.state == StateDead
	if ok {
		mem.fails = 0
		mem.lastErr = ""
		if flipped {
			mem.state = StateAlive
			mem.transitions++
		}
	}
	m.mu.Unlock()
	if flipped {
		if m.cfg.OnChange != nil {
			m.cfg.OnChange(id, StateAlive)
		}
	}
}

// Alive returns the set of currently-alive node IDs.
func (m *Membership) Alive() map[string]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool, len(m.members))
	for id, mem := range m.members {
		if mem.state == StateAlive {
			out[id] = true
		}
	}
	return out
}

// State reports one node's liveness (StateDead for unknown IDs).
func (m *Membership) State(id string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[id]; ok {
		return mem.state
	}
	return StateDead
}

// Node returns a member's static identity by ID.
func (m *Membership) Node(id string) (Node, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[id]; ok {
		return mem.node, true
	}
	return Node{}, false
}

// Snapshot returns every member's status, sorted by ID — the /cluster
// sidecar payload.
func (m *Membership) Snapshot() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberStatus, 0, len(m.order))
	for _, id := range m.order {
		mem := m.members[id]
		out = append(out, MemberStatus{
			ID:           mem.node.ID,
			Addr:         mem.node.Addr,
			HTTPAddr:     mem.node.HTTPAddr,
			State:        mem.state.String(),
			Fails:        mem.fails,
			Probes:       mem.probes,
			Transitions:  mem.transitions,
			LastProbeErr: mem.lastErr,
		})
	}
	return out
}

// String renders the membership view as one line per node.
func (m *Membership) String() string {
	var out string
	for i, st := range m.Snapshot() {
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%s=%s", st.ID, st.State)
	}
	return out
}
