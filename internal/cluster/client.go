package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lotus/internal/control"
	"lotus/internal/rng"
	"lotus/internal/serve"
)

// Config parameterizes a cluster client.
type Config struct {
	// Nodes is the cluster's member list. Every node must serve the same
	// workload spec: the epoch plan is derived from (spec, seed, epoch), so
	// any node can produce any batch, byte-identically.
	Nodes []Node
	// Replication is the preferred replica-set size per batch on the hash
	// ring (default 1). Larger values keep a batch's failover targets
	// ring-determined and its server-side caches warm on R nodes.
	Replication int
	// VNodes is the ring's virtual-node count per node (default
	// DefaultVNodes).
	VNodes int
	// Name labels this consumer's sessions in node metrics.
	Name string
	// Tenant is the QoS accounting bucket every node session (primary and
	// hedge) bills to; empty means each node's default tenant. Pure
	// passthrough — quotas live server-side, so a router cannot exempt
	// itself by misconfiguration.
	Tenant string
	// NodeRetries is how many extra same-node attempts a failed shard fetch
	// gets before the node is declared dead and its unserved batches are
	// rerouted (default 1). Only the still-unserved IDs are re-requested, so
	// a retry never re-delivers a batch.
	NodeRetries int
	// BackoffBase/BackoffMax shape the jittered sleep before a same-node
	// retry (defaults 50ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the retry jitter (0 derives one from Name).
	JitterSeed int64
	// MaxFrame / DialTimeout are passed to each node's serve.Client.
	MaxFrame    int
	DialTimeout time.Duration
	// Membership, when non-nil, is an externally-owned (typically actively
	// probing) membership view; nil builds an internal passive one that only
	// the router's own failure reports update.
	Membership *Membership
	// MaxRounds caps routing rounds per epoch (default 4 + 2*len(Nodes)) —
	// the brake against a node flapping alive-but-broken forever.
	MaxRounds int
	// HedgeQuantile, when > 0, enables hedged fetches — the consumer-side
	// straggler mitigation: a node whose in-flight shard has made no
	// progress for longer than this quantile of the cluster's recent batch
	// inter-arrival latency gets its still-unserved IDs speculatively
	// re-issued to each batch's ring successor. The exactly-once ledger
	// deduplicates, so the first byte-identical answer wins; the loser's
	// frames land in Ignored/HedgeWasted. A primary whose remaining work a
	// hedge fully delivered is severed (Kick) so the round does not wait out
	// its stall. 0.95 is the conventional choice. 0 disables hedging.
	HedgeQuantile float64
	// HedgeMinSamples is how many peer latency observations must exist in
	// the judging population (warm-up gaps for a node with no frame yet this
	// round, steady inter-arrivals otherwise) before hedging arms (default
	// 8): hedging off a cold histogram would fire on noise.
	HedgeMinSamples int
	// HedgeInterval is the hedge monitor's poll period (default 2ms).
	HedgeInterval time.Duration
	// HedgeMinDelay floors the hedge threshold (default 1ms) so a uniformly
	// fast cluster never hedges on microsecond jitter.
	HedgeMinDelay time.Duration
	// AutoTune enables the router-side ring balancer: at every epoch end the
	// per-node steady frame cadence (the same histograms the hedge monitor
	// judges stragglers by) is folded into an EWMA service-time model, and
	// each node's vnode weight on the ring is retargeted to
	// fastest/service_time — so shard sizes converge to be proportional to
	// service rate and a slowed-but-alive node sheds load until every node
	// finishes its shard at about the same time. Weight changes are queued
	// and applied only at round/epoch boundaries on the router goroutine;
	// the exactly-once ledger makes a mid-epoch re-weight safe by
	// construction (only still-unserved IDs are ever re-requested).
	AutoTune bool
	// Balancer overrides the balancer's smoothing, dead-band, and pacing
	// (zero values take control.BalancerConfig defaults).
	Balancer control.BalancerConfig
	// OnFetchError observes every failed shard fetch attempt.
	OnFetchError func(node string, epoch, attempt int, err error)
	// OnReroute observes each failover: the batch IDs being moved away from
	// dead nodes at the start of a routing round.
	OnReroute func(epoch int, ids []int)
	// Sleep replaces time.Sleep for retry backoff (tests; nil = time.Sleep).
	Sleep func(time.Duration)
	// Logf receives routing logs (nil = silent).
	Logf func(format string, args ...any)
}

// EpochStats summarizes one routed epoch.
type EpochStats struct {
	Epoch int
	// Batches/Bytes count delivered (deduplicated) batches.
	Batches int
	Bytes   int64
	// Rounds is how many routing rounds the epoch took (1 = no failover).
	Rounds int
	// NodeFailures counts nodes declared dead during the epoch.
	NodeFailures int
	// Rerouted counts batches that were re-assigned away from a dead node.
	Rerouted int
	// Spilled counts batches served outside their preferred replica set.
	Spilled int
	// Ignored counts frames dropped by the exactly-once filter (duplicate or
	// out-of-plan global IDs). Zero in a correct cluster without hedging:
	// the router only ever re-requests unserved IDs. With hedging, a
	// primary and its hedge can race the same ID, so Ignored equals
	// HedgeWasted — anything beyond that is a protocol violation.
	Ignored int
	// Hedged counts batches speculatively re-issued to a ring successor
	// while their primary was still in flight. HedgeWon counts hedged
	// batches whose speculative copy arrived first; HedgeWasted counts the
	// duplicate frames hedging caused (every one is also Ignored).
	Hedged, HedgeWon, HedgeWasted int
	// PerNode maps node ID to batches delivered by it.
	PerNode map[string]int
}

// Stats aggregates a multi-epoch Run.
type Stats struct {
	Epochs       int
	Batches      int
	Bytes        int64
	NodeFailures int
	Rerouted     int
	Ignored      int
	Hedged       int
	HedgeWon     int
	HedgeWasted  int
	Elapsed      time.Duration
	PerNode      map[string]int
}

// BatchesPerSec is the aggregate delivered-batch throughput.
func (s *Stats) BatchesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Batches) / s.Elapsed.Seconds()
}

// Client consumes epochs from a preprocessing cluster: it partitions each
// epoch's batch plan across alive nodes with the consistent-hash ring,
// streams the per-node shards concurrently, and on node death re-routes that
// node's unserved batches to survivors mid-epoch. Exactly-once delivery
// holds by construction — the router only ever requests IDs it has not
// received — and a received-set filter enforces it against misbehaving
// nodes. Not safe for concurrent use; run one Client per goroutine.
type Client struct {
	cfg     Config
	ring    *Ring
	mem     *Membership
	clients map[string]*serve.Client
	addrOf  map[string]string
	jitter  *rng.Stream

	planLen int
	ack     serve.HelloAck
	haveAck bool

	// histMu guards the per-node latency histograms the hedge monitor
	// derives its thresholds from. They accumulate across rounds and epochs:
	// recent latency, not per-round latency, defines "abnormally slow". Two
	// populations are kept apart because they differ by an order of
	// magnitude: firstHists holds each round's start-to-first-frame gap
	// (dial, handshake, pipeline spin-up, first batch), hists holds the
	// steady mid-stream inter-arrival cadence. A node that has not produced
	// its first frame yet is judged against peers' first-frame quantile —
	// folding warm-up gaps into the steady histogram would either inflate
	// the mid-stream threshold to warm-up scale or, kept apart but applied
	// uniformly, flag every node as stalled during round start. The
	// threshold for judging a node is always computed from its PEERS' merged
	// histograms — a consistent straggler must not be able to normalize its
	// own cadence into the quantile and dodge hedging.
	histMu     sync.Mutex
	hists      map[string]*serve.LatencyHist
	firstHists map[string]*serve.LatencyHist

	// balancer, when Config.AutoTune is set, converts per-epoch windows of
	// the steady histograms into ring vnode weights. balSnap remembers each
	// histogram's (sum, total) at the last epoch boundary so the window is a
	// delta, not the lifetime aggregate.
	balancer *control.Balancer
	balSnap  map[string]histSnap

	// pendMu guards weight changes queued for the next safe point — a round
	// or epoch boundary on the router goroutine, when no fetch or hedge
	// goroutine can be walking the ring — plus the applied-move counter.
	pendMu      sync.Mutex
	pending     map[string]float64
	weightMoves int
}

// histSnap is one histogram's cumulative (sum, total) at a window boundary.
type histSnap struct {
	sum   time.Duration
	total int64
}

// New builds a cluster client. No connections are made until the first run.
func New(cfg Config) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.NodeRetries < 0 {
		cfg.NodeRetries = 0
	} else if cfg.NodeRetries == 0 {
		cfg.NodeRetries = 1
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 4 + 2*len(cfg.Nodes)
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 8
	}
	if cfg.HedgeInterval <= 0 {
		cfg.HedgeInterval = 2 * time.Millisecond
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = int64(fnv1a(cfg.Name)) ^ 0x636c7573746572 // "cluster"
	}
	c := &Client{
		cfg:        cfg,
		ring:       NewRing(cfg.VNodes),
		clients:    make(map[string]*serve.Client),
		addrOf:     make(map[string]string),
		hists:      make(map[string]*serve.LatencyHist),
		firstHists: make(map[string]*serve.LatencyHist),
		jitter:     rng.New(seed, "cluster/retry"),
	}
	if cfg.AutoTune {
		c.balancer = control.NewBalancer(cfg.Balancer)
		c.balSnap = make(map[string]histSnap)
	}
	for i := range cfg.Nodes {
		if cfg.Nodes[i].ID == "" {
			cfg.Nodes[i].ID = cfg.Nodes[i].Addr
		}
		id := cfg.Nodes[i].ID
		if _, dup := c.clients[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		c.ring.Add(id)
		c.addrOf[id] = cfg.Nodes[i].Addr
		c.clients[id] = serve.NewClient(serve.ClientConfig{
			Addr:        cfg.Nodes[i].Addr,
			Name:        cfg.Name + "@" + id,
			Tenant:      cfg.Tenant,
			MaxFrame:    cfg.MaxFrame,
			DialTimeout: cfg.DialTimeout,
			JitterSeed:  seed + int64(i) + 1,
		})
	}
	c.mem = cfg.Membership
	if c.mem == nil {
		c.mem = NewMembership(MembershipConfig{Nodes: cfg.Nodes, JitterSeed: seed})
	}
	return c, nil
}

// Membership exposes the client's liveness view (for /cluster-style
// introspection and tests).
func (c *Client) Membership() *Membership { return c.mem }

// Ack returns a node's handshake response once any node has answered.
func (c *Client) Ack() (serve.HelloAck, bool) { return c.ack, c.haveAck }

// Close disconnects every node session.
func (c *Client) Close() error {
	var first error
	for _, sc := range c.clients {
		if err := sc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ensurePlan learns the epoch plan length from the first alive node's
// handshake. Every node serves the same spec, so any ack is authoritative.
func (c *Client) ensurePlan() error {
	if c.haveAck {
		return nil
	}
	var lastErr error
	alive := c.mem.Alive()
	for _, id := range c.ring.Nodes() {
		if !alive[id] {
			continue
		}
		sc := c.clients[id]
		if err := sc.Connect(); err != nil {
			lastErr = err
			c.mem.ReportFailure(id, err)
			continue
		}
		ack, _ := sc.Ack()
		c.ack = ack
		c.haveAck = true
		c.planLen = ack.PlanBatches
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no alive nodes")
	}
	return fmt.Errorf("cluster: handshake failed on every node: %w", lastErr)
}

// backoff returns the jittered sleep before same-node retry attempt k
// (1-based): exponential with a cap, jittered into [d/2, d).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.cfg.BackoffMax {
			d = c.cfg.BackoffMax
			break
		}
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	return half + time.Duration(c.jitter.Float64()*float64(half))
}

// SetNodeWeight queues a ring weight override for node (w in [0, 1] of full
// vnode weight), applied at the next round or epoch boundary. Safe to call
// from any goroutine — including mid-epoch from an onBatch callback or an
// operator control surface — because the ring itself is only ever touched at
// safe points on the router goroutine; the exactly-once ledger guarantees a
// re-weighted reroute never re-delivers a batch. Returns false for a node
// the client does not know.
func (c *Client) SetNodeWeight(node string, w float64) bool {
	if _, ok := c.clients[node]; !ok {
		return false
	}
	c.pendMu.Lock()
	if c.pending == nil {
		c.pending = make(map[string]float64)
	}
	c.pending[node] = w
	c.pendMu.Unlock()
	return true
}

// applyPendingWeights drains the queued weight changes into the ring. Called
// only from the router goroutine at round/epoch boundaries, while no fetch,
// hedge, or monitor goroutine is live to walk the ring concurrently.
func (c *Client) applyPendingWeights() {
	c.pendMu.Lock()
	pending := c.pending
	c.pending = nil
	c.pendMu.Unlock()
	if len(pending) == 0 {
		return
	}
	nodes := make([]string, 0, len(pending))
	for n := range pending {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if c.ring.SetWeight(n, pending[n]) {
			c.pendMu.Lock()
			c.weightMoves++
			c.pendMu.Unlock()
			c.cfg.Logf("cluster: ring weight %s -> %.2f", n, pending[n])
		}
	}
}

// Weights reports the ring's current per-node weights. Call it from the
// router's goroutine (between runs); it reads the ring unlocked.
func (c *Client) Weights() map[string]float64 {
	out := make(map[string]float64, len(c.clients))
	for _, n := range c.ring.Nodes() {
		out[n] = c.ring.Weight(n)
	}
	return out
}

// WeightMoves reports how many applied weight changes actually moved ring
// points.
func (c *Client) WeightMoves() int {
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	return c.weightMoves
}

// observeBalance is the balancer's epoch tick: it windows each node's steady
// histogram since the last boundary, feeds the window to the balancer, and
// queues any proposed re-weight for the next epoch's first round.
func (c *Client) observeBalance() {
	if c.balancer == nil {
		return
	}
	c.histMu.Lock()
	nodes := make([]string, 0, len(c.hists))
	for n := range c.hists {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	samples := make([]control.NodeSample, 0, len(nodes))
	for _, node := range nodes {
		h := c.hists[node]
		prev := c.balSnap[node]
		dTotal := h.Total - prev.total
		dSum := h.Sum - prev.sum
		c.balSnap[node] = histSnap{sum: h.Sum, total: h.Total}
		if dTotal > 0 {
			samples = append(samples, control.NodeSample{
				Node: node, Batches: dTotal, PerBatch: dSum / time.Duration(dTotal)})
		}
	}
	c.histMu.Unlock()
	if weights := c.balancer.Observe(samples); weights != nil {
		for node, w := range weights {
			c.SetNodeWeight(node, w)
		}
		c.cfg.Logf("cluster: autotune re-weight: %s", c.balancer)
	}
}

// epochState is the shared exactly-once ledger for one routed epoch.
type epochState struct {
	mu       sync.Mutex
	received map[int]bool
	// hedged marks IDs a speculative fetch was issued for, so a late primary
	// frame for one of them is attributed to HedgeWasted, not to a protocol
	// violation.
	hedged map[int]bool
	stats  *EpochStats
}

// unserved filters ids down to those not yet received.
func (st *epochState) unserved(ids []int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if !st.received[id] {
			out = append(out, id)
		}
	}
	return out
}

// allReceived reports whether every id has been delivered.
func (st *epochState) allReceived(ids []int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, id := range ids {
		if !st.received[id] {
			return false
		}
	}
	return true
}

// addHedged marks ids as speculatively re-issued and counts them once each.
func (st *epochState) addHedged(ids []int) {
	st.mu.Lock()
	for _, id := range ids {
		if !st.hedged[id] {
			st.hedged[id] = true
			st.stats.Hedged++
		}
	}
	st.mu.Unlock()
}

// roundCtl tracks one routing round's in-flight node fetches for the hedge
// monitor: per-node progress timestamps, completion, and deliberate aborts.
type roundCtl struct {
	mu      sync.Mutex
	byNode  map[string][]int
	last    map[string]time.Time
	seen    map[string]bool
	done    map[string]bool
	hedged  map[string]bool
	aborted map[string]bool
	hedges  []*serve.Client
	closed  bool
}

func newRoundCtl(byNode map[string][]int, now time.Time) *roundCtl {
	rc := &roundCtl{
		byNode:  byNode,
		last:    make(map[string]time.Time, len(byNode)),
		seen:    make(map[string]bool, len(byNode)),
		done:    make(map[string]bool, len(byNode)),
		hedged:  make(map[string]bool, len(byNode)),
		aborted: make(map[string]bool, len(byNode)),
	}
	for node := range byNode {
		rc.last[node] = now
	}
	return rc
}

// touch stamps progress on node and returns the previous stamp.
func (rc *roundCtl) touch(node string) (prev time.Time) {
	now := time.Now()
	rc.mu.Lock()
	prev = rc.last[node]
	rc.last[node] = now
	rc.mu.Unlock()
	return prev
}

// frameTouch stamps a frame arrival on node, returning the previous stamp
// and whether this was the node's first frame of the round (which marks the
// end of its warm-up: dial, handshake, pipeline spin-up, first batch).
func (rc *roundCtl) frameTouch(node string) (prev time.Time, first bool) {
	now := time.Now()
	rc.mu.Lock()
	prev = rc.last[node]
	rc.last[node] = now
	first = !rc.seen[node]
	rc.seen[node] = true
	rc.mu.Unlock()
	return prev, first
}

func (rc *roundCtl) markDone(node string) {
	rc.mu.Lock()
	rc.done[node] = true
	rc.mu.Unlock()
}

func (rc *roundCtl) isAborted(node string) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.aborted[node]
}

// abortIfRunning marks node's primary as deliberately severed unless it
// already finished; the caller Kicks only on true, so a completed fetch's
// idle connection is (almost) never closed under it.
func (rc *roundCtl) abortIfRunning(node string) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.done[node] {
		return false
	}
	rc.aborted[node] = true
	return true
}

// registerHedge records a hedge stream's client so the round can sever it at
// teardown. False means the round is already over: the hedge must not start.
func (rc *roundCtl) registerHedge(hc *serve.Client) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return false
	}
	rc.hedges = append(rc.hedges, hc)
	return true
}

// unflag retracts a stall flag that produced no hedge (every candidate
// successor was itself flagged, dead, or the slow node). Without retraction,
// a monitor pass that flags several warming-up nodes at once deadlocks: each
// node's target walk excludes the others and nobody gets hedged for the rest
// of the round. Retracted nodes are re-judged on the next poll, by which
// time false positives have delivered frames and dropped out of the set.
func (rc *roundCtl) unflag(node string) {
	rc.mu.Lock()
	rc.hedged[node] = false
	rc.mu.Unlock()
}

// flaggedNodes snapshots the set of nodes this round has flagged as stalled.
func (rc *roundCtl) flaggedNodes() map[string]bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make(map[string]bool, len(rc.hedged))
	for node, f := range rc.hedged {
		if f {
			out[node] = true
		}
	}
	return out
}

func (rc *roundCtl) isClosed() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.closed
}

// closeRound severs every in-flight hedge stream. Once the primaries are
// done the round's outcome is decided — anything still unserved goes to the
// next routing round — and waiting for a speculative stream to drain would
// add the successor's recompute tail to the epoch's critical path (a hedged
// epoch must never be slower than an unhedged one because of its own
// insurance).
func (rc *roundCtl) closeRound() {
	rc.mu.Lock()
	hedges := rc.hedges
	rc.hedges = nil
	rc.closed = true
	rc.mu.Unlock()
	for _, hc := range hedges {
		hc.Kick()
	}
}

// laggard is one stalled node and the threshold it was judged against.
type laggard struct {
	node      string
	threshold time.Duration
}

// stalled returns the nodes that are still running, have not been hedged
// yet, and have made no progress for longer than their threshold (false from
// threshold means the node cannot be judged yet). The threshold callback
// receives whether the node has delivered a frame this round, so warm-up
// quiet and mid-stream quiet are judged against different populations.
//
// A node is only a straggler RELATIVE to peers that are making progress: if
// every node in the round is quiet past its threshold, the slowness is
// correlated — a loaded box, a consumer-side pause, round-start warm-up —
// and hedging would only add load to whatever is already saturated (worse,
// simultaneous flags used to exclude each other as hedge targets, so the
// one genuinely degraded node could end up with nowhere to hedge to). So a
// quiet node is flagged only while at least one other node is current:
// finished, or heard from within its own threshold.
func (rc *roundCtl) stalled(now time.Time, threshold func(node string, seen bool) (time.Duration, bool)) []laggard {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	current := 0
	var candidates []laggard
	for node := range rc.byNode {
		if rc.done[node] {
			current++
			continue
		}
		th, ok := threshold(node, rc.seen[node])
		if !ok {
			continue
		}
		if now.Sub(rc.last[node]) <= th {
			current++
			continue
		}
		if rc.hedged[node] || rc.aborted[node] {
			continue
		}
		candidates = append(candidates, laggard{node: node, threshold: th})
	}
	if current == 0 {
		return nil
	}
	for _, lag := range candidates {
		rc.hedged[lag.node] = true
	}
	return candidates
}

// RunEpoch routes one epoch: every batch of the plan is delivered to onBatch
// exactly once (node names which member served it), or an error is returned
// once no routing round can make progress. The concatenation of payloads in
// global-ID order is byte-identical to a single-node epoch stream.
func (c *Client) RunEpoch(epoch int, onBatch func(node string, b *serve.Batch, payload []byte)) (*EpochStats, error) {
	stats := &EpochStats{Epoch: epoch, PerNode: make(map[string]int)}
	if err := c.ensurePlan(); err != nil {
		return stats, err
	}
	remaining := make([]int, c.planLen)
	for i := range remaining {
		remaining[i] = i
	}
	st := &epochState{
		received: make(map[int]bool, c.planLen),
		hedged:   make(map[int]bool),
		stats:    stats,
	}

	for round := 0; len(remaining) > 0; round++ {
		// Round start is a safe point: the previous round's fetch, hedge, and
		// monitor goroutines are fully joined, so queued re-weights (from the
		// balancer or SetNodeWeight) land on the ring before Assign partitions
		// the remaining work.
		c.applyPendingWeights()
		if round >= c.cfg.MaxRounds {
			return stats, fmt.Errorf("cluster: epoch %d: %d batches still unserved after %d routing rounds",
				epoch, len(remaining), round)
		}
		alive := c.mem.Alive()
		if len(alive) == 0 {
			return stats, fmt.Errorf("cluster: epoch %d: no alive nodes with %d batches unserved",
				epoch, len(remaining))
		}
		if round > 0 {
			stats.Rerouted += len(remaining)
			if c.cfg.OnReroute != nil {
				c.cfg.OnReroute(epoch, remaining)
			}
			c.cfg.Logf("cluster: epoch %d round %d: rerouting %d batches across %d nodes",
				epoch, round, len(remaining), len(alive))
		}
		asn := c.ring.Assign(remaining, alive, c.cfg.Replication)
		stats.Spilled += asn.Spilled
		stats.Rounds = round + 1

		rc := newRoundCtl(asn.ByNode, time.Now())
		var wg sync.WaitGroup
		for node, ids := range asn.ByNode {
			wg.Add(1)
			go func(node string, ids []int) {
				defer wg.Done()
				defer rc.markDone(node)
				if err := c.fetchNode(epoch, node, ids, st, rc, onBatch); err != nil {
					st.mu.Lock()
					stats.NodeFailures++
					st.mu.Unlock()
					c.mem.ReportFailure(node, err)
				}
			}(node, ids)
		}
		// The hedge monitor breaks the wg.Wait barrier's head-of-line
		// blocking: while primaries stream, it watches per-node progress and
		// speculatively re-issues a stalled node's unserved IDs to ring
		// successors, severing the stalled primary once its work is covered.
		// A single-node round has no successor to hedge to.
		var monDone chan struct{}
		stop := make(chan struct{})
		if c.cfg.HedgeQuantile > 0 && len(asn.ByNode) > 1 {
			monDone = make(chan struct{})
			go func() {
				defer close(monDone)
				c.hedgeMonitor(epoch, rc, st, onBatch, stop)
			}()
		}
		wg.Wait()
		close(stop)
		rc.closeRound()
		if monDone != nil {
			<-monDone
		}

		next := remaining[:0]
		st.mu.Lock()
		for _, id := range remaining {
			if !st.received[id] {
				next = append(next, id)
			}
		}
		st.mu.Unlock()
		remaining = next
	}
	c.observeBalance()
	return stats, nil
}

// deliver runs a received frame through the exactly-once filter and credits
// it. hedge marks frames arriving on a speculative stream: a duplicate on
// either side of a hedged ID is the race's loser and lands in HedgeWasted as
// well as Ignored.
func (c *Client) deliver(st *epochState, node string, b *serve.Batch, payload []byte, hedge bool, onBatch func(string, *serve.Batch, []byte)) {
	st.mu.Lock()
	if b.GlobalID < 0 || b.GlobalID >= c.planLen || st.received[b.GlobalID] {
		st.stats.Ignored++
		if hedge || st.hedged[b.GlobalID] {
			st.stats.HedgeWasted++
		}
		st.mu.Unlock()
		return
	}
	st.received[b.GlobalID] = true
	if hedge {
		st.stats.HedgeWon++
	}
	st.stats.Batches++
	st.stats.Bytes += int64(len(payload)) + 4
	st.stats.PerNode[node]++
	st.mu.Unlock()
	if onBatch != nil {
		onBatch(node, b, payload)
	}
}

// observe stamps progress on node and feeds the frame gap into the right
// latency histogram: the round's first frame measures warm-up (firstHists),
// every later frame measures steady inter-arrival cadence (hists).
func (c *Client) observe(rc *roundCtl, node string) {
	prev, first := rc.frameTouch(node)
	if prev.IsZero() {
		return
	}
	c.histMu.Lock()
	m := c.hists
	if first {
		m = c.firstHists
	}
	h := m[node]
	if h == nil {
		h = &serve.LatencyHist{}
		m[node] = h
	}
	h.Record(time.Since(prev))
	c.histMu.Unlock()
}

// fetchNode streams one node's assigned IDs, retrying the node itself (with
// only the still-unserved IDs) NodeRetries times before giving it up. The
// serve.Client is owned by this goroutine for the duration of the round —
// Assign hands each node to exactly one fetchNode call per round; hedges use
// fresh clients. A fetch severed by the hedge monitor (abortIfRunning+Kick)
// is not a node failure: its work was delivered elsewhere, and reporting it
// would wrongly push a merely-degraded node toward dead.
func (c *Client) fetchNode(epoch int, node string, ids []int, st *epochState, rc *roundCtl, onBatch func(string, *serve.Batch, []byte)) error {
	sc := c.clients[node]
	var lastErr error
	for attempt := 0; attempt <= c.cfg.NodeRetries; attempt++ {
		need := st.unserved(ids)
		if len(need) == 0 {
			return nil
		}
		if attempt > 0 {
			c.cfg.Sleep(c.backoff(attempt))
		}
		rc.touch(node)
		err := sc.FetchShard(epoch, need, func(b *serve.Batch, payload []byte) {
			c.observe(rc, node)
			c.deliver(st, node, b, payload, false, onBatch)
		})
		if err == nil {
			return nil
		}
		if rc.isAborted(node) {
			return nil
		}
		lastErr = err
		if c.cfg.OnFetchError != nil {
			c.cfg.OnFetchError(node, epoch, attempt+1, err)
		}
		c.cfg.Logf("cluster: epoch %d node %s attempt %d: %v", epoch, node, attempt+1, err)
	}
	return lastErr
}

// hedgeThreshold returns the no-progress bound for judging node, or false
// while its peers' histograms are too cold to trust. The quantile is taken
// over the merged latencies of every OTHER node: a straggler is a node slow
// relative to its peers. Folding the judged node's own cadence in would let
// a consistently degraded node drag the quantile up to its own pace and
// never look stalled. seen selects the population: a node still in warm-up
// (no frame this round) is compared against peers' warm-up gaps, a
// mid-stream node against peers' steady inter-arrival cadence — so hedging
// fires at tens of milliseconds mid-stream without storming at round start,
// when every node is legitimately quiet for a warm-up's worth of time.
func (c *Client) hedgeThreshold(node string, seen bool) (time.Duration, bool) {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	m := c.hists
	if !seen {
		m = c.firstHists
	}
	var peers serve.LatencyHist
	for id, h := range m {
		if id != node {
			peers.Merge(h)
		}
	}
	if peers.Total < int64(c.cfg.HedgeMinSamples) {
		return 0, false
	}
	th := peers.Quantile(c.cfg.HedgeQuantile)
	if th < c.cfg.HedgeMinDelay {
		th = c.cfg.HedgeMinDelay
	}
	return th, true
}

// hedgeTargets groups a slow node's unserved IDs by ring successor: for each
// batch, the first alive node on its ownership walk that is not the slow
// node and is not itself flagged as stalled this round — insurance bought
// from a node already known to be struggling is worthless. Batches with no
// such successor are left to the normal reroute path.
func (c *Client) hedgeTargets(rc *roundCtl, slow string, ids []int) map[string][]int {
	alive := c.mem.Alive()
	flagged := rc.flaggedNodes()
	out := make(map[string][]int)
	for _, id := range ids {
		for _, n := range c.ring.Owners(BatchKey(id), 0) {
			if n != slow && alive[n] && !flagged[n] {
				out[n] = append(out[n], id)
				break
			}
		}
	}
	return out
}

// hedgeMonitor watches a round's in-flight fetches and speculatively
// re-issues a stalled node's unserved IDs. It polls on the real clock —
// stalls it exists to catch are wall-clock stalls.
func (c *Client) hedgeMonitor(epoch int, rc *roundCtl, st *epochState, onBatch func(string, *serve.Batch, []byte), stop <-chan struct{}) {
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		select {
		case <-stop:
			return
		case <-time.After(c.cfg.HedgeInterval):
		}
		for _, lag := range rc.stalled(time.Now(), c.hedgeThreshold) {
			slow := lag.node
			unserved := st.unserved(rc.byNode[slow])
			if len(unserved) == 0 {
				continue
			}
			targets := c.hedgeTargets(rc, slow, unserved)
			hedging := make([]int, 0, len(unserved))
			for _, ids := range targets {
				hedging = append(hedging, ids...)
			}
			if len(hedging) == 0 {
				rc.unflag(slow)
				continue
			}
			st.addHedged(hedging)
			c.cfg.Logf("cluster: epoch %d: node %s stalled past %v; hedging %d batches to %d successors",
				epoch, slow, lag.threshold, len(hedging), len(targets))
			for succ, ids := range targets {
				hwg.Add(1)
				go func(succ string, ids []int) {
					defer hwg.Done()
					c.hedgeFetch(epoch, slow, succ, ids, rc, st, onBatch)
				}(succ, ids)
			}
		}
	}
}

// hedgeFetch streams a slow node's unserved IDs from one ring successor on a
// fresh connection (the successor's primary client is busy with its own
// shard). On success, if nothing assigned to the slow node remains unserved,
// the slow primary is severed so the round stops waiting for it. Hedge
// failures are advisory — the primary and the normal reroute path still
// stand — so they are never reported to membership.
func (c *Client) hedgeFetch(epoch int, slow, succ string, ids []int, rc *roundCtl, st *epochState, onBatch func(string, *serve.Batch, []byte)) {
	hc := serve.NewClient(serve.ClientConfig{
		Addr:        c.addrOf[succ],
		Name:        c.cfg.Name + "@" + succ + "/hedge",
		Tenant:      c.cfg.Tenant,
		MaxFrame:    c.cfg.MaxFrame,
		DialTimeout: c.cfg.DialTimeout,
	})
	defer hc.Close()
	if !rc.registerHedge(hc) {
		return
	}
	err := hc.FetchShardHedged(epoch, ids, func(b *serve.Batch, payload []byte) {
		c.deliver(st, succ, b, payload, true, onBatch)
	})
	if err != nil {
		// A round-teardown kick is the expected end of a hedge that lost the
		// race; only a hedge that died on its own is worth a log line.
		if !rc.isClosed() {
			c.cfg.Logf("cluster: epoch %d: hedge to %s for %s failed: %v", epoch, succ, slow, err)
		}
		return
	}
	if st.allReceived(rc.byNode[slow]) && rc.abortIfRunning(slow) {
		c.cfg.Logf("cluster: epoch %d: hedges covered node %s; severing its in-flight fetch", epoch, slow)
		c.clients[slow].Kick()
	}
}

// Run routes epochs 0..epochs-1 and aggregates their stats.
func (c *Client) Run(epochs int, onBatch func(node string, b *serve.Batch, payload []byte)) (*Stats, error) {
	out := &Stats{PerNode: make(map[string]int)}
	start := time.Now()
	defer func() { out.Elapsed = time.Since(start) }()
	for e := 0; e < epochs; e++ {
		es, err := c.RunEpoch(e, onBatch)
		out.Batches += es.Batches
		out.Bytes += es.Bytes
		out.NodeFailures += es.NodeFailures
		out.Rerouted += es.Rerouted
		out.Ignored += es.Ignored
		out.Hedged += es.Hedged
		out.HedgeWon += es.HedgeWon
		out.HedgeWasted += es.HedgeWasted
		for n, b := range es.PerNode {
			out.PerNode[n] += b
		}
		if err != nil {
			return out, fmt.Errorf("cluster: epoch %d: %w", e, err)
		}
		out.Epochs++
	}
	return out, nil
}
