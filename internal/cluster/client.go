package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lotus/internal/rng"
	"lotus/internal/serve"
)

// Config parameterizes a cluster client.
type Config struct {
	// Nodes is the cluster's member list. Every node must serve the same
	// workload spec: the epoch plan is derived from (spec, seed, epoch), so
	// any node can produce any batch, byte-identically.
	Nodes []Node
	// Replication is the preferred replica-set size per batch on the hash
	// ring (default 1). Larger values keep a batch's failover targets
	// ring-determined and its server-side caches warm on R nodes.
	Replication int
	// VNodes is the ring's virtual-node count per node (default
	// DefaultVNodes).
	VNodes int
	// Name labels this consumer's sessions in node metrics.
	Name string
	// NodeRetries is how many extra same-node attempts a failed shard fetch
	// gets before the node is declared dead and its unserved batches are
	// rerouted (default 1). Only the still-unserved IDs are re-requested, so
	// a retry never re-delivers a batch.
	NodeRetries int
	// BackoffBase/BackoffMax shape the jittered sleep before a same-node
	// retry (defaults 50ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the retry jitter (0 derives one from Name).
	JitterSeed int64
	// MaxFrame / DialTimeout are passed to each node's serve.Client.
	MaxFrame    int
	DialTimeout time.Duration
	// Membership, when non-nil, is an externally-owned (typically actively
	// probing) membership view; nil builds an internal passive one that only
	// the router's own failure reports update.
	Membership *Membership
	// MaxRounds caps routing rounds per epoch (default 4 + 2*len(Nodes)) —
	// the brake against a node flapping alive-but-broken forever.
	MaxRounds int
	// OnFetchError observes every failed shard fetch attempt.
	OnFetchError func(node string, epoch, attempt int, err error)
	// OnReroute observes each failover: the batch IDs being moved away from
	// dead nodes at the start of a routing round.
	OnReroute func(epoch int, ids []int)
	// Sleep replaces time.Sleep for retry backoff (tests; nil = time.Sleep).
	Sleep func(time.Duration)
	// Logf receives routing logs (nil = silent).
	Logf func(format string, args ...any)
}

// EpochStats summarizes one routed epoch.
type EpochStats struct {
	Epoch int
	// Batches/Bytes count delivered (deduplicated) batches.
	Batches int
	Bytes   int64
	// Rounds is how many routing rounds the epoch took (1 = no failover).
	Rounds int
	// NodeFailures counts nodes declared dead during the epoch.
	NodeFailures int
	// Rerouted counts batches that were re-assigned away from a dead node.
	Rerouted int
	// Spilled counts batches served outside their preferred replica set.
	Spilled int
	// Ignored counts frames dropped by the exactly-once filter (duplicate or
	// out-of-plan global IDs). Zero in a correct cluster: the router only
	// ever re-requests unserved IDs.
	Ignored int
	// PerNode maps node ID to batches delivered by it.
	PerNode map[string]int
}

// Stats aggregates a multi-epoch Run.
type Stats struct {
	Epochs       int
	Batches      int
	Bytes        int64
	NodeFailures int
	Rerouted     int
	Ignored      int
	Elapsed      time.Duration
	PerNode      map[string]int
}

// BatchesPerSec is the aggregate delivered-batch throughput.
func (s *Stats) BatchesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Batches) / s.Elapsed.Seconds()
}

// Client consumes epochs from a preprocessing cluster: it partitions each
// epoch's batch plan across alive nodes with the consistent-hash ring,
// streams the per-node shards concurrently, and on node death re-routes that
// node's unserved batches to survivors mid-epoch. Exactly-once delivery
// holds by construction — the router only ever requests IDs it has not
// received — and a received-set filter enforces it against misbehaving
// nodes. Not safe for concurrent use; run one Client per goroutine.
type Client struct {
	cfg     Config
	ring    *Ring
	mem     *Membership
	clients map[string]*serve.Client
	jitter  *rng.Stream

	planLen int
	ack     serve.HelloAck
	haveAck bool
}

// New builds a cluster client. No connections are made until the first run.
func New(cfg Config) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.NodeRetries < 0 {
		cfg.NodeRetries = 0
	} else if cfg.NodeRetries == 0 {
		cfg.NodeRetries = 1
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 4 + 2*len(cfg.Nodes)
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = int64(fnv1a(cfg.Name)) ^ 0x636c7573746572 // "cluster"
	}
	c := &Client{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes),
		clients: make(map[string]*serve.Client),
		jitter:  rng.New(seed, "cluster/retry"),
	}
	for i := range cfg.Nodes {
		if cfg.Nodes[i].ID == "" {
			cfg.Nodes[i].ID = cfg.Nodes[i].Addr
		}
		id := cfg.Nodes[i].ID
		if _, dup := c.clients[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		c.ring.Add(id)
		c.clients[id] = serve.NewClient(serve.ClientConfig{
			Addr:        cfg.Nodes[i].Addr,
			Name:        cfg.Name + "@" + id,
			MaxFrame:    cfg.MaxFrame,
			DialTimeout: cfg.DialTimeout,
			JitterSeed:  seed + int64(i) + 1,
		})
	}
	c.mem = cfg.Membership
	if c.mem == nil {
		c.mem = NewMembership(MembershipConfig{Nodes: cfg.Nodes, JitterSeed: seed})
	}
	return c, nil
}

// Membership exposes the client's liveness view (for /cluster-style
// introspection and tests).
func (c *Client) Membership() *Membership { return c.mem }

// Ack returns a node's handshake response once any node has answered.
func (c *Client) Ack() (serve.HelloAck, bool) { return c.ack, c.haveAck }

// Close disconnects every node session.
func (c *Client) Close() error {
	var first error
	for _, sc := range c.clients {
		if err := sc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ensurePlan learns the epoch plan length from the first alive node's
// handshake. Every node serves the same spec, so any ack is authoritative.
func (c *Client) ensurePlan() error {
	if c.haveAck {
		return nil
	}
	var lastErr error
	alive := c.mem.Alive()
	for _, id := range c.ring.Nodes() {
		if !alive[id] {
			continue
		}
		sc := c.clients[id]
		if err := sc.Connect(); err != nil {
			lastErr = err
			c.mem.ReportFailure(id, err)
			continue
		}
		ack, _ := sc.Ack()
		c.ack = ack
		c.haveAck = true
		c.planLen = ack.PlanBatches
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no alive nodes")
	}
	return fmt.Errorf("cluster: handshake failed on every node: %w", lastErr)
}

// backoff returns the jittered sleep before same-node retry attempt k
// (1-based): exponential with a cap, jittered into [d/2, d).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.cfg.BackoffMax {
			d = c.cfg.BackoffMax
			break
		}
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	return half + time.Duration(c.jitter.Float64()*float64(half))
}

// epochState is the shared exactly-once ledger for one routed epoch.
type epochState struct {
	mu       sync.Mutex
	received map[int]bool
	stats    *EpochStats
}

// RunEpoch routes one epoch: every batch of the plan is delivered to onBatch
// exactly once (node names which member served it), or an error is returned
// once no routing round can make progress. The concatenation of payloads in
// global-ID order is byte-identical to a single-node epoch stream.
func (c *Client) RunEpoch(epoch int, onBatch func(node string, b *serve.Batch, payload []byte)) (*EpochStats, error) {
	stats := &EpochStats{Epoch: epoch, PerNode: make(map[string]int)}
	if err := c.ensurePlan(); err != nil {
		return stats, err
	}
	remaining := make([]int, c.planLen)
	for i := range remaining {
		remaining[i] = i
	}
	st := &epochState{received: make(map[int]bool, c.planLen), stats: stats}

	for round := 0; len(remaining) > 0; round++ {
		if round >= c.cfg.MaxRounds {
			return stats, fmt.Errorf("cluster: epoch %d: %d batches still unserved after %d routing rounds",
				epoch, len(remaining), round)
		}
		alive := c.mem.Alive()
		if len(alive) == 0 {
			return stats, fmt.Errorf("cluster: epoch %d: no alive nodes with %d batches unserved",
				epoch, len(remaining))
		}
		if round > 0 {
			stats.Rerouted += len(remaining)
			if c.cfg.OnReroute != nil {
				c.cfg.OnReroute(epoch, remaining)
			}
			c.cfg.Logf("cluster: epoch %d round %d: rerouting %d batches across %d nodes",
				epoch, round, len(remaining), len(alive))
		}
		asn := c.ring.Assign(remaining, alive, c.cfg.Replication)
		stats.Spilled += asn.Spilled
		stats.Rounds = round + 1

		var wg sync.WaitGroup
		for node, ids := range asn.ByNode {
			wg.Add(1)
			go func(node string, ids []int) {
				defer wg.Done()
				if err := c.fetchNode(epoch, node, ids, st, onBatch); err != nil {
					st.mu.Lock()
					stats.NodeFailures++
					st.mu.Unlock()
					c.mem.ReportFailure(node, err)
				}
			}(node, ids)
		}
		wg.Wait()

		next := remaining[:0]
		st.mu.Lock()
		for _, id := range remaining {
			if !st.received[id] {
				next = append(next, id)
			}
		}
		st.mu.Unlock()
		remaining = next
	}
	return stats, nil
}

// fetchNode streams one node's assigned IDs, retrying the node itself (with
// only the still-unserved IDs) NodeRetries times before giving it up. The
// serve.Client is owned by this goroutine for the duration of the round —
// Assign hands each node to exactly one fetchNode call per round.
func (c *Client) fetchNode(epoch int, node string, ids []int, st *epochState, onBatch func(string, *serve.Batch, []byte)) error {
	sc := c.clients[node]
	var lastErr error
	for attempt := 0; attempt <= c.cfg.NodeRetries; attempt++ {
		need := make([]int, 0, len(ids))
		st.mu.Lock()
		for _, id := range ids {
			if !st.received[id] {
				need = append(need, id)
			}
		}
		st.mu.Unlock()
		if len(need) == 0 {
			return nil
		}
		if attempt > 0 {
			c.cfg.Sleep(c.backoff(attempt))
		}
		err := sc.FetchShard(epoch, need, func(b *serve.Batch, payload []byte) {
			st.mu.Lock()
			if b.GlobalID < 0 || b.GlobalID >= c.planLen || st.received[b.GlobalID] {
				st.stats.Ignored++
				st.mu.Unlock()
				return
			}
			st.received[b.GlobalID] = true
			st.stats.Batches++
			st.stats.Bytes += int64(len(payload)) + 4
			st.stats.PerNode[node]++
			st.mu.Unlock()
			if onBatch != nil {
				onBatch(node, b, payload)
			}
		})
		if err == nil {
			return nil
		}
		lastErr = err
		if c.cfg.OnFetchError != nil {
			c.cfg.OnFetchError(node, epoch, attempt+1, err)
		}
		c.cfg.Logf("cluster: epoch %d node %s attempt %d: %v", epoch, node, attempt+1, err)
	}
	return lastErr
}

// Run routes epochs 0..epochs-1 and aggregates their stats.
func (c *Client) Run(epochs int, onBatch func(node string, b *serve.Batch, payload []byte)) (*Stats, error) {
	out := &Stats{PerNode: make(map[string]int)}
	start := time.Now()
	defer func() { out.Elapsed = time.Since(start) }()
	for e := 0; e < epochs; e++ {
		es, err := c.RunEpoch(e, onBatch)
		out.Batches += es.Batches
		out.Bytes += es.Bytes
		out.NodeFailures += es.NodeFailures
		out.Rerouted += es.Rerouted
		out.Ignored += es.Ignored
		for n, b := range es.PerNode {
			out.PerNode[n] += b
		}
		if err != nil {
			return out, fmt.Errorf("cluster: epoch %d: %w", e, err)
		}
		out.Epochs++
	}
	return out, nil
}
