package chaos

import (
	"testing"

	"lotus/internal/faultinject"
	"lotus/internal/workloads"
)

// TestSweepAllInvariantsHold is the chaos acceptance test: every cell of the
// fault-class × workload matrix passes its invariants, and every fault class
// has at least one run where faults actually fired. Short mode (-short, the
// CI configuration) trims workloads but keeps every class.
func TestSweepAllInvariantsHold(t *testing.T) {
	results := Sweep(Options{Seed: 1, Short: testing.Short(), Logf: t.Logf})
	injectedByClass := map[string]int64{}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("chaos cell failed: %s", r)
		}
		injectedByClass[r.Class] += r.Injected
	}
	for _, class := range []string{
		"read-error", "read-stall", "worker-panic", "worker-stall",
		"wire-drop", "wire-truncate", "wire-corrupt", "server-panic", "client-disconnect",
		"disk-rewarm", "disk-torn-manifest", "disk-corrupt-segment",
		"cluster-node-kill", "cluster-node-slow", "cluster-heartbeat-flap",
		"cluster-node-kill-rewarm",
		"slow-read-steal", "cluster-hedge-slow-node",
		"cluster-autotune-slow-node",
	} {
		if injectedByClass[class] == 0 {
			t.Errorf("fault class %q never injected a fault", class)
		}
	}
	if n, ok := injectedByClass["baseline"]; !ok || n != 0 {
		t.Errorf("baseline cells missing or injected faults: %d", n)
	}
}

// TestSweepIsSeedDeterministic: two sweeps with the same seed inject the
// identical fault counts per cell — the property that makes a failing cell
// reproducible.
func TestSweepIsSeedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full sweep is not worth short-mode time")
	}
	a := Sweep(Options{Seed: 7, Short: true})
	b := Sweep(Options{Seed: 7, Short: true})
	if len(a) != len(b) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Injected != b[i].Injected {
			t.Errorf("cell %d diverged: %s=%d vs %s=%d",
				i, a[i].Class, a[i].Injected, b[i].Class, b[i].Injected)
		}
	}
}

// TestPredictionIndependentOfWorkerCount: the same spec predicts and skips
// the same batches whether one worker or many process the epoch — the
// schedule-independence that makes skip accounting exact.
func TestPredictionIndependentOfWorkerCount(t *testing.T) {
	fspec := faultinject.Spec{Seed: 3, ReadErrorNth: 5}
	var first []string
	for _, workers := range []int{1, 2, 4} {
		spec := chaosSpec(workloads.IC, 1)
		spec.NumWorkers = workers
		res := pipelineCellWithSpec("read-error", spec, fspec)
		if !res.OK() {
			t.Fatalf("workers=%d: %s", workers, res)
		}
		if first == nil {
			first = res.Notes
		} else if len(res.Notes) > 0 && len(first) > 0 && res.Notes[0] != first[0] {
			t.Errorf("workers=%d changed the outcome: %v vs %v", workers, res.Notes, first)
		}
	}
}

// TestClusterAutotuneSlowNodeCell runs the balancer-convergence cell on its
// own so CI can gate it (and a failure reproduces) without a full sweep.
func TestClusterAutotuneSlowNodeCell(t *testing.T) {
	r := clusterAutotuneSlowNodeCell(1)
	if !r.OK() {
		t.Fatalf("chaos cell failed: %s", r)
	}
	t.Logf("chaos: %s", r)
}
