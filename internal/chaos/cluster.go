package chaos

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lotus/internal/cluster"
	"lotus/internal/control"
	"lotus/internal/faultinject"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

// The cluster cells exercise the failover plane: a routed epoch across three
// loopback nodes must deliver the plan exactly once and byte-identical to
// the local ground truth whatever happens to the membership mid-epoch — a
// node killed mid-stream, a node slowed to a crawl, or a heartbeat that
// flaps. The invariants mirror the single-node cells (no leaks, clean
// errors) plus the cluster's own: no duplicate deliveries, no spurious
// failover.

// clusterHarness is the shared 3-node fixture for one cluster cell.
type clusterHarness struct {
	spec     workloads.Spec
	expected [][]byte // epoch-0 ground truth, indexed by global batch ID
	srvs     []*serve.Server
	nodes    []cluster.Node
	victim   string // node with the largest ring shard
}

// startClusterHarness boots three nodes serving spec; mkInjector selects the
// victim's fault injector (nil for a healthy node). The serverOpts apply to
// every node, so a cache-enabled harness runs the cache on victim and
// survivors alike.
func startClusterHarness(spec workloads.Spec, mkInjector func() *faultinject.Injector, o serverOpts) (*clusterHarness, error) {
	h := &clusterHarness{spec: spec}
	expected, err := groundTruthFramesMode(h.spec, 0, o.mode)
	if err != nil {
		return nil, fmt.Errorf("ground truth: %w", err)
	}
	h.expected = expected

	// The ring decides the victim before any server exists: the node with
	// the most batches, so a mid-stream kill always strands work.
	ring := cluster.NewRing(0)
	alive := map[string]bool{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		ring.Add(id)
		alive[id] = true
	}
	ids := make([]int, len(expected))
	for i := range ids {
		ids[i] = i
	}
	asn := ring.Assign(ids, alive, 1)
	best := -1
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		if l := len(asn.ByNode[id]); l > best {
			best, h.victim = l, id
		}
	}

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("node%d", i)
		var inj *faultinject.Injector
		if id == h.victim && mkInjector != nil {
			inj = mkInjector()
		}
		srv, err := startServerOpts(h.spec, inj, o)
		if err != nil {
			h.close()
			return nil, err
		}
		h.srvs = append(h.srvs, srv)
		h.nodes = append(h.nodes, cluster.Node{ID: id, Addr: srv.Addr()})
	}
	return h, nil
}

func (h *clusterHarness) victimServer() *serve.Server {
	for i, n := range h.nodes {
		if n.ID == h.victim {
			return h.srvs[i]
		}
	}
	return nil
}

func (h *clusterHarness) close() {
	for _, s := range h.srvs {
		s.Close()
	}
}

// clusterSink records deliveries with exactly-once bookkeeping.
type clusterSink struct {
	mu     sync.Mutex
	frames map[int][]byte
	dups   int
}

func newClusterSink() *clusterSink { return &clusterSink{frames: make(map[int][]byte)} }

func (cs *clusterSink) onBatch(node string, b *serve.Batch, payload []byte) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, dup := cs.frames[b.GlobalID]; dup {
		cs.dups++
		return
	}
	cs.frames[b.GlobalID] = append([]byte(nil), payload...)
}

// check appends exactly-once and byte-identity violations to failures.
func (cs *clusterSink) check(expected [][]byte, failures []string) []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.dups > 0 {
		failures = append(failures, fmt.Sprintf("%d duplicate deliveries", cs.dups))
	}
	if len(cs.frames) != len(expected) {
		failures = append(failures, fmt.Sprintf("delivered %d of %d batches", len(cs.frames), len(expected)))
		return failures
	}
	for gid, want := range expected {
		got, ok := cs.frames[gid]
		if !ok {
			failures = append(failures, fmt.Sprintf("batch %d never delivered", gid))
			continue
		}
		if !bytes.Equal(got, want) {
			failures = append(failures, fmt.Sprintf("batch %d not byte-identical to ground truth", gid))
		}
	}
	return failures
}

// clusterNodeKillCell kills the busiest node mid-epoch (its connection drops
// after its first frame and the process stays down) and asserts the routed
// epoch still delivers the plan exactly once, byte-identical, by rerouting
// the corpse's unserved batches to survivors. With cacheBytes > 0 every node
// runs the materialized-batch cache, so the cell additionally proves failover
// correctness is unchanged when survivors serve rerouted work from (or into)
// their caches.
func clusterNodeKillCell(seed int64, cacheBytes int64) Result {
	res := Result{Class: "cluster-node-kill", Workload: "IC"}
	if cacheBytes > 0 {
		res.Class = "cluster-node-kill-cached"
	}
	inj := faultinject.New(faultinject.Spec{Seed: seed, DropFrame: 2})
	baseline := testutil.Baseline()
	h, err := startClusterHarness(serveSpec(seed), func() *faultinject.Injector { return inj }, serverOpts{batchCacheBytes: cacheBytes})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer h.close()

	var once sync.Once
	victimSrv := h.victimServer()
	c, err := cluster.New(cluster.Config{
		Nodes: h.nodes, Name: "chaos-node-kill",
		Sleep: func(time.Duration) {},
		OnFetchError: func(node string, epoch, attempt int, err error) {
			if node == h.victim {
				once.Do(func() { victimSrv.Close() })
			}
		},
	})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer c.Close()

	sink := newClusterSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("routed epoch failed: %v", err))
	} else {
		res.Failures = sink.check(h.expected, res.Failures)
		if stats.NodeFailures != 1 {
			res.Failures = append(res.Failures, fmt.Sprintf("node failures %d, want 1", stats.NodeFailures))
		}
		if stats.Rerouted == 0 {
			res.Failures = append(res.Failures, "node died but nothing was rerouted")
		}
		if stats.Ignored != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("%d frames hit the exactly-once filter", stats.Ignored))
		}
		if cacheBytes > 0 {
			// Survivors absorbed the rerouted work through their caches; the
			// byte-identity check above already proved the rerouted frames
			// clean, so here only confirm the caches were actually in play.
			for i, n := range h.nodes {
				if n.ID == h.victim {
					continue
				}
				if st, ok := h.srvs[i].CacheStats(); !ok || st.Misses == 0 {
					res.Failures = append(res.Failures, fmt.Sprintf("survivor %s cache idle during failover", n.ID))
				}
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf("rerouted=%d rounds=%d", stats.Rerouted, stats.Rounds))
	}
	c.Close()
	h.close()
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().WireFaults
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// clusterNodeKillWarmSampleCacheCell is the node-kill cell on the augmented
// real-mode workload with every node running the split-point sample cache
// (batch cache off, so rerouted work exercises the sample-cache path). Each
// survivor's cache is pre-warmed by a direct full-plan fetch; the routed epoch
// then kills the busiest node mid-stream, and the survivors collate the
// rerouted batches from their warm prefix entries. Exactly-once delivery plus
// pixel-level byte-identity against the cache-less ground truth prove warm
// caches survive failover without serving stale or polluted prefixes.
func clusterNodeKillWarmSampleCacheCell(seed int64) Result {
	res := Result{Class: "cluster-node-kill-scache", Workload: "ICA"}
	spec := augmentedServeSpec(seed)
	inj := faultinject.New(faultinject.Spec{Seed: seed, DropFrame: 2})
	baseline := testutil.Baseline()
	h, err := startClusterHarness(spec, func() *faultinject.Injector { return inj },
		serverOpts{sampleCacheBytes: chaosCacheBytes, mode: pipeline.RealData})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer h.close()

	// Warm every survivor: a direct rank-0/world-1 session fetches the whole
	// epoch plan, materializing every sample's prefix into that node's cache.
	// The victim is left cold — it dies mid-epoch either way.
	for i, n := range h.nodes {
		if n.ID == h.victim {
			continue
		}
		wc := serve.NewClient(serve.ClientConfig{Addr: h.srvs[i].Addr(), Name: "chaos-warm-" + n.ID})
		if _, err := wc.Run(1, nil); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("warming %s: %v", n.ID, err))
		}
		wc.Close()
	}
	if len(res.Failures) > 0 {
		return res
	}

	var once sync.Once
	victimSrv := h.victimServer()
	c, err := cluster.New(cluster.Config{
		Nodes: h.nodes, Name: "chaos-node-kill-scache",
		Sleep: func(time.Duration) {},
		OnFetchError: func(node string, epoch, attempt int, err error) {
			if node == h.victim {
				once.Do(func() { victimSrv.Close() })
			}
		},
	})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer c.Close()

	sink := newClusterSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("routed epoch failed: %v", err))
	} else {
		res.Failures = sink.check(h.expected, res.Failures)
		if stats.NodeFailures != 1 {
			res.Failures = append(res.Failures, fmt.Sprintf("node failures %d, want 1", stats.NodeFailures))
		}
		if stats.Rerouted == 0 {
			res.Failures = append(res.Failures, "node died but nothing was rerouted")
		}
		if stats.Ignored != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("%d frames hit the exactly-once filter", stats.Ignored))
		}
		var hits int64
		for i, n := range h.nodes {
			if n.ID == h.victim {
				continue
			}
			st, ok := h.srvs[i].SampleCacheStats()
			if !ok {
				res.Failures = append(res.Failures, fmt.Sprintf("survivor %s reports the sample cache disabled", n.ID))
				continue
			}
			if st.Hits == 0 {
				res.Failures = append(res.Failures, fmt.Sprintf("survivor %s never hit its warm sample cache", n.ID))
			}
			if st.Misses != int64(spec.NumSamples) {
				// The warm pass materialized every prefix; the routed epoch
				// (shard + rerouted work) must be served entirely from it.
				res.Failures = append(res.Failures, fmt.Sprintf(
					"survivor %s missed after warming: misses %d, want %d", n.ID, st.Misses, spec.NumSamples))
			}
			hits += st.Hits
		}
		res.Notes = append(res.Notes, fmt.Sprintf("rerouted=%d rounds=%d warm_hits=%d", stats.Rerouted, stats.Rounds, hits))
	}
	c.Close()
	h.close()
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().WireFaults
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// clusterNodeSlowCell stalls every batch on the busiest node (virtual time —
// the node is slow, not broken) and asserts the router does NOT fail over:
// a slow-but-correct node must keep its shard, and the epoch still completes
// exactly once, byte-identical.
func clusterNodeSlowCell(seed int64) Result {
	res := Result{Class: "cluster-node-slow", Workload: "IC"}
	inj := faultinject.New(faultinject.Spec{Seed: seed, StallNth: 1, WorkerStall: 500 * time.Millisecond})
	baseline := testutil.Baseline()
	h, err := startClusterHarness(serveSpec(seed), func() *faultinject.Injector { return inj }, serverOpts{})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer h.close()

	c, err := cluster.New(cluster.Config{Nodes: h.nodes, Name: "chaos-node-slow"})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer c.Close()

	sink := newClusterSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("routed epoch failed: %v", err))
	} else {
		res.Failures = sink.check(h.expected, res.Failures)
		if stats.NodeFailures != 0 || stats.Rerouted != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"slow node triggered spurious failover: failures=%d rerouted=%d",
				stats.NodeFailures, stats.Rerouted))
		}
		if stats.PerNode[h.victim] == 0 {
			res.Failures = append(res.Failures, "slow node served nothing — its shard went elsewhere")
		}
		res.Notes = append(res.Notes, fmt.Sprintf("victim served %d batches through stalls", stats.PerNode[h.victim]))
	}
	c.Close()
	h.close()
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().WorkerStalls
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// clusterAutotuneSlowNodeCell degrades the busiest node with a stall on
// every batch it produces and turns the closed-loop balancer on. The nodes
// serve in emulate-time mode — the Simulated pipeline paced on the wall
// clock — so each node's frame cadence reflects its own modeled service
// rate rather than this host's CPU contention (three RealData servers on
// one machine are CPU-coupled, which makes the busiest node's inter-arrival
// gaps look FASTEST and would invert the signal). Across four routed epochs
// the balancer must shift ring weight away from the slowed-but-alive node —
// no operator input, no failover, no hedging — until its batch share drops,
// while every epoch still delivers the plan exactly once and byte-identical
// to the ground truth. This is the convergence cell for the autotuner:
// re-weighting is a throughput move and must never become a correctness
// event.
func clusterAutotuneSlowNodeCell(seed int64) Result {
	res := Result{Class: "cluster-autotune-slow-node", Workload: "IC"}
	// Enough batches per epoch that every node clears the balancer's
	// MinSamples window even after weight has shifted.
	spec := workloads.ICSpec(256, seed)
	spec.BatchSize = 8 // 32 batches per epoch
	spec.NumWorkers = 2
	// The stall is virtual time, which emulate mode pays on the wall clock:
	// every victim batch costs an extra 60ms real, dwarfing the healthy
	// modeled per-batch cadence so the victim is an unambiguous outlier.
	// Warm-up frames are excluded from the cadence histograms, so only the
	// steady stalls register.
	inj := faultinject.New(faultinject.Spec{Seed: seed, StallNth: 1, WorkerStall: 60 * time.Millisecond})
	baseline := testutil.Baseline()
	h, err := startClusterHarness(spec, func() *faultinject.Injector { return inj },
		serverOpts{emulate: true})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer h.close()

	c, err := cluster.New(cluster.Config{
		Nodes:    h.nodes,
		Name:     "chaos-autotune",
		AutoTune: true,
		// Tight windows so four epochs are plenty: trust two steady frames,
		// allow a re-weight every epoch.
		Balancer: control.BalancerConfig{MinSamples: 2, Cooldown: 1},
	})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer c.Close()

	const epochs = 4
	shares := make([]int, epochs)
	for e := 0; e < epochs; e++ {
		expected, err := groundTruthFrames(spec, e)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("epoch %d ground truth: %v", e, err))
			return res
		}
		sink := newClusterSink()
		stats, err := c.RunEpoch(e, sink.onBatch)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("epoch %d failed: %v", e, err))
			return res
		}
		res.Failures = sink.check(expected, res.Failures)
		if stats.NodeFailures != 0 || stats.Rerouted != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"epoch %d: re-weighting became failover: failures=%d rerouted=%d",
				e, stats.NodeFailures, stats.Rerouted))
		}
		if stats.Ignored != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"epoch %d: %d frames hit the exactly-once filter", e, stats.Ignored))
		}
		shares[e] = stats.PerNode[h.victim]
	}

	// Convergence: the balancer noticed (at least one applied re-weight),
	// the victim's ring weight dropped while healthy peers kept full weight,
	// and its routed share shrank — yet it stayed alive and serving.
	if c.WeightMoves() == 0 {
		res.Failures = append(res.Failures, "balancer never re-weighted a 60ms-stalled node")
	}
	weights := c.Weights()
	if w := weights[h.victim]; w > 0.75 {
		res.Failures = append(res.Failures, fmt.Sprintf("victim weight %.2f never dropped", w))
	}
	// Healthy peers may trade a few percent on scheduling jitter, but the
	// stalled node must be an unambiguous outlier below all of them.
	for _, n := range h.nodes {
		if n.ID == h.victim {
			continue
		}
		w := weights[n.ID]
		if w < 0.75 {
			res.Failures = append(res.Failures, fmt.Sprintf("healthy node %s lost weight: %.2f", n.ID, w))
		}
		if weights[h.victim] >= w {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"victim weight %.2f not below healthy %s (%.2f)", weights[h.victim], n.ID, w))
		}
	}
	if shares[epochs-1] >= shares[0] {
		res.Failures = append(res.Failures, fmt.Sprintf(
			"victim share never converged down: epoch 0 served %d, epoch %d served %d",
			shares[0], epochs-1, shares[epochs-1]))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"victim=%s weight=%.2f shares=%v moves=%d", h.victim, weights[h.victim], shares, c.WeightMoves()))

	c.Close()
	h.close()
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().WorkerStalls
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// clusterHeartbeatFlapCell drives a membership whose probe of the busiest
// node fails on every other heartbeat (FailThreshold 1, so each verdict
// flips the state). The member must transition dead/alive repeatedly; an
// epoch routed while it is marked dead completes exactly once without it,
// and after the next good heartbeat it rejoins and serves its shard again.
func clusterHeartbeatFlapCell(seed int64) Result {
	res := Result{Class: "cluster-heartbeat-flap", Workload: "IC"}
	baseline := testutil.Baseline()
	h, err := startClusterHarness(serveSpec(seed), nil, serverOpts{})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer h.close()

	var injected, flips atomic.Int64
	var probeCalls int
	mem := cluster.NewMembership(cluster.MembershipConfig{
		Nodes:         h.nodes,
		FailThreshold: 1,
		Probe: func(n cluster.Node, _ time.Duration) error {
			if n.ID != h.victim {
				return nil
			}
			probeCalls++
			if probeCalls%2 == 1 { // odd heartbeats fail: flap
				injected.Add(1)
				return fmt.Errorf("chaos: injected heartbeat loss %d", probeCalls)
			}
			return nil
		},
		// OnChange can also fire from router goroutines via ReportFailure.
		OnChange: func(string, cluster.NodeState) { flips.Add(1) },
	})
	c, err := cluster.New(cluster.Config{Nodes: h.nodes, Name: "chaos-flap", Membership: mem})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer c.Close()

	// Three heartbeats: dead, alive, dead. The victim is a flapping corpse
	// as far as the router knows, though the process is healthy.
	mem.ProbeOnce()
	mem.ProbeOnce()
	mem.ProbeOnce()
	if flips.Load() < 3 {
		res.Failures = append(res.Failures, fmt.Sprintf("%d state transitions after 3 flapping probes, want 3", flips.Load()))
	}
	if mem.State(h.victim) != cluster.StateDead {
		res.Failures = append(res.Failures, "victim not dead at epoch start")
	}

	sink := newClusterSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("epoch around flapped-out node failed: %v", err))
	} else {
		res.Failures = sink.check(h.expected, res.Failures)
		if stats.PerNode[h.victim] != 0 {
			res.Failures = append(res.Failures, "node marked dead was routed work")
		}
		if stats.Rerouted != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"membership settled before routing, yet %d batches rerouted", stats.Rerouted))
		}
	}

	// One good heartbeat rejoins the victim; the next epoch uses it again.
	mem.ProbeOnce()
	if mem.State(h.victim) != cluster.StateAlive {
		res.Failures = append(res.Failures, "victim did not rejoin on a good heartbeat")
	}
	sink2 := newClusterSink()
	stats2, err := c.RunEpoch(1, sink2.onBatch)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("epoch after rejoin failed: %v", err))
	} else {
		// Epoch 1 has its own ground truth; only exactly-once and placement
		// are asserted here (byte-identity for epoch 0 is covered above).
		if sink2.dups != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("%d duplicates after rejoin", sink2.dups))
		}
		if len(sink2.frames) != len(h.expected) {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"epoch after rejoin delivered %d of %d batches", len(sink2.frames), len(h.expected)))
		}
		if stats2.PerNode[h.victim] == 0 {
			res.Failures = append(res.Failures, "rejoined node was never routed work")
		}
		res.Notes = append(res.Notes, fmt.Sprintf("flips=%d rejoined_served=%d", flips.Load(), stats2.PerNode[h.victim]))
	}
	c.Close()
	h.close()
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = injected.Load()
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}
