package chaos

import (
	"bytes"
	"fmt"
	"time"

	"lotus/internal/clock"
	"lotus/internal/cluster"
	"lotus/internal/faultinject"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

// The straggler cells exercise the two mitigation layers from PR 8: worker
// work-stealing under the virtual clock, and hedged cluster fetches over
// loopback TCP. Both mitigations are pure scheduling moves — batch bytes
// depend only on (spec, seed, epoch, plan), so a stolen or hedged batch must
// be byte-identical to the unmitigated run, and every duplicate a hedge
// produces must be absorbed by the exactly-once ledger.

// stealFrames runs one real-mode epoch through a DataLoader with the given
// dispatch policy and injector, returning the encoded frames plus the
// loader's steal and credit-drift counters.
func stealFrames(spec workloads.Spec, dispatch pipeline.DispatchPolicy, inj *faultinject.Injector) (frames [][]byte, steals, drift int, err error) {
	plan := serve.BuildEpochPlan(spec.NumSamples, spec.BatchSize, spec.Shuffle, false, spec.Seed, 0)
	batchPlan := make([][]int, len(plan))
	for i, pb := range plan {
		batchPlan[i] = pb.Indices
	}
	frames = make([][]byte, 0, len(plan))
	sim := clock.NewSim()
	sim.Run("chaos-steal", func(p clock.Proc) {
		dl := pipeline.NewDataLoader(sim, spec.Dataset(nil), pipeline.Config{
			BatchSize:      spec.BatchSize,
			NumWorkers:     spec.NumWorkers,
			PinMemory:      spec.PinMemory,
			Seed:           spec.Seed,
			BatchPlan:      batchPlan,
			Dispatch:       dispatch,
			Mode:           pipeline.RealData,
			MaterializeDim: chaosMaterializeDim,
			Engine:         native.NewEngine(spec.Arch, native.DefaultCPU()),
			Faults:         inj,
		})
		it := dl.Start(p)
		for i := 0; ; i++ {
			b, ok := it.Next(p)
			if !ok {
				err = it.Err()
				steals, drift = dl.Steals(), dl.CreditDrift()
				return
			}
			wb := &serve.Batch{Epoch: 0, GlobalID: i, Indices: b.Indices, Labels: b.Labels}
			if b.Data != nil {
				wb.Dtype = b.Data.Dtype
				wb.Shape = b.Data.Shape
				wb.U8 = b.Data.U8
				wb.F32 = b.Data.F32
			}
			frames = append(frames, serve.EncodeBatch(wb))
		}
	})
	return frames, steals, drift, err
}

// slowReadStealCell degrades worker 0 persistently (it stalls after every
// batch it handles) and asserts work-stealing drains its backlog without
// changing a byte: the stealing run must match the static-dispatch no-fault
// run frame for frame, steal at least once, and close the epoch with the
// outstanding-work ledger balanced to zero (the PR 8 credit-drift fix).
func slowReadStealCell(seed int64) Result {
	res := Result{Class: "slow-read-steal", Workload: "IC"}
	spec := serveSpec(seed)

	baseline := testutil.Baseline()
	expected, _, _, err := stealFrames(spec, pipeline.DispatchProducer, nil)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("ground truth: %v", err))
		return res
	}

	// The stall is virtual time (sim clock) and worker-keyed, so the healthy
	// worker always finds a backlog to steal — the window is guaranteed, not
	// seed-lucky like a batch-keyed StallNth.
	inj := faultinject.New(faultinject.Spec{Seed: seed, SlowWorkerID: 1, SlowWorkerStall: 500 * time.Millisecond})
	got, steals, drift, err := stealFrames(spec, pipeline.DispatchWorkStealing, inj)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("stealing run: %v", err))
	}
	if len(got) != len(expected) {
		res.Failures = append(res.Failures, fmt.Sprintf("delivered %d frames, want %d", len(got), len(expected)))
	} else {
		for i := range got {
			if !bytes.Equal(got[i], expected[i]) {
				res.Failures = append(res.Failures, fmt.Sprintf("frame %d not byte-identical under stealing", i))
				break
			}
		}
	}
	if steals == 0 {
		res.Failures = append(res.Failures, "stalled workers never had work stolen")
	}
	if drift != 0 {
		res.Failures = append(res.Failures, fmt.Sprintf("outstanding-work ledger drifted %d times", drift))
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().WorkerStalls
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	res.Notes = append(res.Notes, fmt.Sprintf("steals=%d batches=%d", steals, len(got)))
	return res
}

// clusterHedgeSlowNodeCell degrades the busiest node with a real wall-clock
// stall on every batch it produces (RealData servers, so the stall actually
// blocks the stream) and turns hedging on. The routed epoch must finish
// byte-identical and exactly-once, at least one batch must be hedged, every
// exactly-once rejection must be a hedge loser (Ignored == HedgeWasted), and
// the merely-slow node must never be declared dead or rerouted away from —
// hedging is a latency move, not a failover.
func clusterHedgeSlowNodeCell(seed int64) Result {
	res := Result{Class: "cluster-hedge-slow-node", Workload: "IC"}
	// The stall must make the victim a clear outlier against its peers'
	// latency quantiles even on a loaded single-core host, where healthy
	// first frames already cost a few hundred ms of warm-up: the monitor
	// judges relative progress, not absolute lateness, so a marginal stall
	// would (correctly) never be flagged. The kick severs the victim once
	// its batches are hedged and the stall interrupt releases its sleeping
	// workers, so a fat stall does not linger into teardown.
	inj := faultinject.New(faultinject.Spec{Seed: seed, StallNth: 1, WorkerStall: 2 * time.Second})
	baseline := testutil.Baseline()
	h, err := startClusterHarness(serveSpec(seed), func() *faultinject.Injector { return inj },
		serverOpts{mode: pipeline.RealData})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer h.close()

	c, err := cluster.New(cluster.Config{
		Nodes:           h.nodes,
		Name:            "chaos-hedge",
		HedgeQuantile:   0.95,
		HedgeMinSamples: 2,
		HedgeInterval:   2 * time.Millisecond,
		// High enough that a healthy peer's scheduling hiccup rarely draws
		// a noise hedge (wasted recompute steals CPU from the real one on
		// this host), far below the 2s stall train.
		HedgeMinDelay: 250 * time.Millisecond,
	})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer c.Close()

	sink := newClusterSink()
	stats, err := c.RunEpoch(0, sink.onBatch)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("hedged epoch failed: %v", err))
	} else {
		res.Failures = sink.check(h.expected, res.Failures)
		if stats.Hedged == 0 {
			res.Failures = append(res.Failures, "no batches hedged off a node stalling every batch")
		}
		if stats.Ignored != stats.HedgeWasted {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"Ignored=%d HedgeWasted=%d: a duplicate was not a hedge loser", stats.Ignored, stats.HedgeWasted))
		}
		if stats.NodeFailures != 0 || stats.Rerouted != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"hedging escalated to failover: failures=%d rerouted=%d", stats.NodeFailures, stats.Rerouted))
		}
		// The successors served the speculative requests; their /metrics hedge
		// block must have surfaced them.
		var hedgeServed int64
		for i, n := range h.nodes {
			if n.ID == h.victim {
				continue
			}
			snap := h.srvs[i].Metrics().Snapshot(time.Now(), 0)
			if snap.Hedge != nil {
				hedgeServed += snap.Hedge.Batches
			}
		}
		if hedgeServed == 0 {
			res.Failures = append(res.Failures, "no successor's /metrics recorded a hedged ShardReq")
		}
		res.Notes = append(res.Notes, fmt.Sprintf("hedged=%d won=%d wasted=%d served=%d",
			stats.Hedged, stats.HedgeWon, stats.HedgeWasted, hedgeServed))
	}
	c.Close()
	h.close()
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	// The kick severs the victim's stream at a wall-clock point, so the raw
	// stall count varies run to run; report injection as a binary to keep
	// sweeps seed-deterministic.
	if inj.Counts().WorkerStalls > 0 {
		res.Injected = 1
	}
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}
