// Package chaos is the deterministic fault-injection sweep runner: it
// executes a fault-class × workload matrix through the loader substrate
// (under the virtual clock) and the serving stack (over loopback TCP),
// asserting the failure-path invariants after every run:
//
//   - no deadlocked procs (the sim clock's deadlock panic is a failure);
//   - no leaked goroutines once a run tears down;
//   - the trace log is still parseable and passes trace.Validate, modulo
//     the op-without-batch issues a failed batch legitimately produces;
//   - Iterator.Skipped matches the injector's up-front failure prediction
//     exactly under SkipBatch;
//   - a served session either completes byte-identically to a local
//     DataLoader run or fails with a clean Error frame;
//   - a clustered epoch (three loopback nodes) delivers its plan exactly
//     once and byte-identically whatever the membership does mid-epoch:
//     node killed, node slowed, heartbeat flapping (cluster.go);
//   - straggler mitigation never changes bytes: work-stealing drains a
//     stalled worker's backlog byte-identically with the outstanding-work
//     ledger balanced, and hedged fetches around a degraded node deliver
//     exactly once with every duplicate attributed to a hedge loser
//     (straggler.go).
//
// Every decision the sweep injects is a pure function of the seed, so a
// failing cell reproduces by rerunning with the same seed.
package chaos

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"lotus/internal/clock"
	"lotus/internal/core/trace"
	"lotus/internal/faultinject"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/serve"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

// Options configures a sweep.
type Options struct {
	// Seed drives every injected decision (default 1).
	Seed int64
	// Short trims the matrix to one workload per fault class — the CI
	// configuration. Every fault class still gets at least one injected run.
	Short bool
	// Logf receives per-cell progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Result is one sweep cell's outcome.
type Result struct {
	// Class names the fault class ("read-error", "wire-drop", ...).
	Class string
	// Workload names the pipeline the faults were injected into.
	Workload string
	// Injected counts the faults that actually fired.
	Injected int64
	// Failures lists every violated invariant (empty = cell passed).
	Failures []string
	// Notes carries non-fatal observations (batches delivered, retries...).
	Notes []string
}

// OK reports whether every invariant held.
func (r Result) OK() bool { return len(r.Failures) == 0 }

func (r Result) String() string {
	status := "ok"
	if !r.OK() {
		status = "FAIL: " + strings.Join(r.Failures, "; ")
	}
	s := fmt.Sprintf("%-16s %-4s injected=%-3d %s", r.Class, r.Workload, r.Injected, status)
	if len(r.Notes) > 0 {
		s += " (" + strings.Join(r.Notes, ", ") + ")"
	}
	return s
}

// Sweep runs the full fault-class × workload matrix and returns one Result
// per cell.
func Sweep(opts Options) []Result {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	kinds := []workloads.Kind{workloads.IC, workloads.IS, workloads.OD}
	if opts.Short {
		kinds = []workloads.Kind{workloads.IC}
	}

	var out []Result
	run := func(r Result) {
		logf("chaos: %s", r)
		out = append(out, r)
	}

	// Loader-substrate classes under the virtual clock.
	for _, kind := range kinds {
		run(pipelineCell("baseline", kind, opts.Seed, faultinject.Spec{}))
		run(pipelineCell("read-error", kind, opts.Seed, faultinject.Spec{Seed: opts.Seed, ReadErrorNth: 6}))
		run(pipelineCell("read-stall", kind, opts.Seed, faultinject.Spec{Seed: opts.Seed, ReadStallNth: 4, ReadStall: 20 * time.Millisecond}))
		run(pipelineCell("worker-panic", kind, opts.Seed, faultinject.Spec{Seed: opts.Seed, PanicNth: 6}))
		run(pipelineCell("worker-stall", kind, opts.Seed, faultinject.Spec{Seed: opts.Seed, StallNth: 3, WorkerStall: 50 * time.Millisecond}))
	}

	// Serving-stack classes over loopback TCP. Sharing one workload keeps
	// the short sweep fast; the classes exercise independent seams.
	run(serveWireCell("wire-drop", opts.Seed, faultinject.Spec{DropFrame: 3}, serverOpts{}))
	run(serveWireCell("wire-truncate", opts.Seed, faultinject.Spec{TruncateFrame: 5}, serverOpts{}))
	run(serveWireCell("wire-corrupt", opts.Seed, faultinject.Spec{CorruptFrame: 4}, serverOpts{}))
	run(servePanicCell(opts.Seed))
	run(serveDisconnectCell(opts.Seed))

	// Wire classes re-run with the materialized-batch cache enabled: the
	// retried fetch is served from cache and must still be byte-identical,
	// proving faults land per-connection, never in the shared cache bytes.
	run(serveWireCell("wire-drop-cached", opts.Seed, faultinject.Spec{DropFrame: 3}, serverOpts{batchCacheBytes: chaosCacheBytes}))
	run(serveWireCell("wire-corrupt-cached", opts.Seed, faultinject.Spec{CorruptFrame: 4}, serverOpts{batchCacheBytes: chaosCacheBytes}))

	// Split-point sample cache cells: real-mode augmented pipeline, so
	// byte-identity is over actual pixels. Corruption must never reach the
	// materialized prefixes; eviction churn must never change served bytes.
	run(serveWireCell("wire-corrupt-scache", opts.Seed, faultinject.Spec{CorruptFrame: 4}, serverOpts{sampleCacheBytes: chaosCacheBytes}))
	run(sampleCacheChurnCell(opts.Seed))

	// Multi-tenant QoS adversary: a rate-capped tenant floods from three
	// sessions; the cap must hold tenant-wide, the polite tenant must run
	// uncapped, and every session still completes byte-identically.
	run(tenantGreedyCell(opts.Seed))

	// Persistent disk tier crash cells (disk.go): SIGKILL-equivalent
	// restarts rebuild the index and serve warm bytes; torn manifests and
	// rotten records degrade to clean recomputes, never corrupt bytes.
	run(diskRewarmCell(opts.Seed))
	run(diskTornManifestCell(opts.Seed))
	run(diskCorruptSegmentCell(opts.Seed))

	// Straggler-mitigation cells (straggler.go): work-stealing dispatch under
	// injected stalls, and hedged fetches around a degraded cluster node.
	run(slowReadStealCell(opts.Seed))
	run(clusterHedgeSlowNodeCell(opts.Seed))

	// Cluster failover plane over three loopback nodes (cluster.go).
	run(clusterNodeKillCell(opts.Seed, 0))
	run(clusterNodeKillCell(opts.Seed, chaosCacheBytes))
	run(clusterNodeKillWarmSampleCacheCell(opts.Seed))
	run(clusterNodeSlowCell(opts.Seed))
	run(clusterHeartbeatFlapCell(opts.Seed))
	run(clusterNodeKillRewarmCell(opts.Seed))
	// Closed-loop balancer convergence: a slowed-but-alive node sheds ring
	// weight until throughput converges, with byte-identity every epoch.
	run(clusterAutotuneSlowNodeCell(opts.Seed))
	return out
}

// chaosCacheBytes is the batch-cache budget for the cache-enabled cells:
// large enough that nothing is evicted, so every isolation failure is a
// correctness bug rather than an eviction artifact.
const chaosCacheBytes = 64 << 20

// chaosSpec returns a small instance of one workload, sized so a sweep cell
// runs in well under a second.
func chaosSpec(kind workloads.Kind, seed int64) workloads.Spec {
	switch kind {
	case workloads.IC:
		spec := workloads.ICSpec(64, seed)
		spec.BatchSize = 8
		spec.NumWorkers = 2
		return spec
	case workloads.IS:
		spec := workloads.ISSpec(16, seed)
		return spec
	default:
		spec := workloads.ODSpec(16, seed)
		return spec
	}
}

// pipelineCell runs one fault class through one workload's DataLoader under
// SkipBatch and checks the loader invariants.
func pipelineCell(class string, kind workloads.Kind, seed int64, fspec faultinject.Spec) Result {
	return pipelineCellWithSpec(class, chaosSpec(kind, seed), fspec)
}

// pipelineCellWithSpec is pipelineCell over an explicit workload spec.
func pipelineCellWithSpec(class string, spec workloads.Spec, fspec faultinject.Spec) Result {
	res := Result{Class: class, Workload: string(spec.Kind)}
	inj := faultinject.New(fspec)

	plan := pipeline.BuildBatchPlan(spec.NumSamples, spec.BatchSize, spec.Shuffle, false, spec.Seed)
	predicted := inj.FailingBatches(plan)

	var buf bytes.Buffer
	tracer := trace.NewTracer(&buf)
	hooks := tracer.Hooks()

	baseline := testutil.Baseline()
	var skipped []int
	var delivered int
	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("deadlock or panic: %v", r))
			}
		}()
		sim := clock.NewSim()
		ds := spec.Dataset(hooks)
		dl := pipeline.NewDataLoader(sim, ds, pipeline.Config{
			BatchSize:  spec.BatchSize,
			NumWorkers: spec.NumWorkers,
			Seed:       spec.Seed,
			BatchPlan:  plan,
			PinMemory:  spec.PinMemory,
			OnError:    pipeline.SkipBatch,
			Hooks:      hooks,
			Mode:       pipeline.Simulated,
			Engine:     native.NewEngine(spec.Arch, native.DefaultCPU()),
			Faults:     inj,
		})
		sim.Run("chaos-main", func(p clock.Proc) {
			it := dl.Start(p)
			for {
				if _, ok := it.Next(p); !ok {
					skipped = it.Skipped()
					runErr = it.Err()
					return
				}
				delivered++
			}
		})
	}()
	if runErr != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("SkipBatch run surfaced Err: %v", runErr))
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}

	// Exact skip accounting: Skipped must equal the injector's prediction.
	sort.Ints(skipped)
	if !equalInts(skipped, predicted) {
		res.Failures = append(res.Failures, fmt.Sprintf("skipped %v, predicted %v", skipped, predicted))
	}
	if delivered != len(plan)-len(predicted) {
		res.Failures = append(res.Failures, fmt.Sprintf("delivered %d batches, want %d", delivered, len(plan)-len(predicted)))
	}

	// The trace must still parse, and every surviving Validate issue must be
	// one a failed batch legitimately produces (its ops were logged before
	// the panic, so they reference a batch with no preprocessing record).
	tracer.Flush()
	records, err := trace.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("trace unparseable: %v", err))
	} else {
		failed := map[int]bool{}
		for _, id := range predicted {
			failed[id] = true
		}
		for _, issue := range trace.Validate(records) {
			if allowedIssue(issue, failed) {
				continue
			}
			res.Failures = append(res.Failures, "trace invariant: "+issue.String())
		}
	}

	counts := inj.Counts()
	res.Injected = counts.Total()
	res.Notes = append(res.Notes, fmt.Sprintf("batches=%d skipped=%d records=%d", delivered, len(skipped), len(records)))
	if class != "baseline" && res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// allowedIssue reports whether a Validate issue is the expected artifact of
// an injected batch failure rather than an instrumentation bug.
func allowedIssue(issue trace.Issue, failed map[int]bool) bool {
	if issue.Code != "op-without-batch" || len(failed) == 0 {
		return false
	}
	var op string
	var id int
	if _, err := fmt.Sscanf(issue.Detail, "op %s references batch %d", &op, &id); err != nil {
		return false
	}
	return failed[id]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// serveSpec is the serving-stack sweep workload: small enough that one epoch
// is a handful of frames.
func serveSpec(seed int64) workloads.Spec {
	spec := workloads.ICSpec(64, seed)
	spec.BatchSize = 8 // 8 batches per epoch
	spec.NumWorkers = 2
	return spec
}

// chaosMaterializeDim caps real-mode synthesis so augmented cells stay fast.
const chaosMaterializeDim = 48

// groundTruthFrames encodes every batch of one epoch exactly as the server
// would, from a local simulated DataLoader run over the full plan.
func groundTruthFrames(spec workloads.Spec, epoch int) ([][]byte, error) {
	return groundTruthFramesMode(spec, epoch, pipeline.Simulated)
}

// groundTruthFramesMode is groundTruthFrames in an explicit pipeline mode; in
// RealData the frames carry actual pixel payloads, so byte-identity against
// them proves cached or rerouted bytes are the true pipeline output.
func groundTruthFramesMode(spec workloads.Spec, epoch int, mode pipeline.Mode) ([][]byte, error) {
	plan := serve.BuildEpochPlan(spec.NumSamples, spec.BatchSize, spec.Shuffle, false, spec.Seed, epoch)
	batchPlan := make([][]int, len(plan))
	for i, pb := range plan {
		batchPlan[i] = pb.Indices
	}
	out := make([][]byte, len(plan))
	var runErr error
	sim := clock.NewSim()
	sim.Run("chaos-local", func(p clock.Proc) {
		dl := pipeline.NewDataLoader(sim, spec.Dataset(nil), pipeline.Config{
			BatchSize:      spec.BatchSize,
			NumWorkers:     spec.NumWorkers,
			PinMemory:      spec.PinMemory,
			Seed:           spec.Seed,
			Epoch:          epoch,
			BatchPlan:      batchPlan,
			Mode:           mode,
			MaterializeDim: chaosMaterializeDim,
			Engine:         native.NewEngine(spec.Arch, native.DefaultCPU()),
		})
		it := dl.Start(p)
		for i := 0; ; i++ {
			b, ok := it.Next(p)
			if !ok {
				runErr = it.Err()
				return
			}
			wb := &serve.Batch{Epoch: epoch, GlobalID: i, Indices: b.Indices, Labels: b.Labels}
			if b.Data != nil {
				wb.Dtype = b.Data.Dtype
				wb.Shape = b.Data.Shape
				wb.U8 = b.Data.U8
				wb.F32 = b.Data.F32
			}
			out[i] = serve.EncodeBatch(wb)
		}
	})
	return out, runErr
}

// serverOpts selects the optional serving-stack features a cell runs with.
// The zero value is the plain configuration: simulated mode, no caches.
type serverOpts struct {
	batchCacheBytes  int64
	sampleCacheBytes int64
	diskDir          string        // non-empty enables the persistent disk tier
	mode             pipeline.Mode // zero value = Simulated
	emulate          bool          // Simulated pipeline paced on the wall clock
	qos              bool          // per-tenant fair scheduling
	tenants          map[string]serve.TenantLimit
}

// startServer boots a loopback server with the given injector; cacheBytes > 0
// enables the materialized-batch cache.
func startServer(spec workloads.Spec, inj *faultinject.Injector, cacheBytes int64) (*serve.Server, error) {
	return startServerOpts(spec, inj, serverOpts{batchCacheBytes: cacheBytes})
}

// startServerOpts is startServer with the full feature selection.
func startServerOpts(spec workloads.Spec, inj *faultinject.Injector, o serverOpts) (*serve.Server, error) {
	srv := serve.New(serve.Config{Spec: spec, Mode: o.mode, EmulateTime: o.emulate,
		MaterializeDim: chaosMaterializeDim,
		Prefetch:       2, Faults: inj,
		BatchCacheBytes: o.batchCacheBytes, SampleCacheBytes: o.sampleCacheBytes,
		DiskCacheDir: o.diskDir, QoS: o.qos, Tenants: o.tenants})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		return nil, err
	}
	return srv, nil
}

// augmentedServeSpec is the serving-stack sweep workload for sample-cache
// cells: the ICA pipeline, whose two-op deterministic prefix is what the
// split-point cache materializes.
func augmentedServeSpec(seed int64) workloads.Spec {
	spec := workloads.ICASpec(32, seed)
	spec.BatchSize = 8 // 4 batches per epoch
	spec.NumWorkers = 2
	return spec
}

// serveWireCell injects one wire fault (drop, truncate, or corrupt) into a
// served epoch stream and asserts the client's retries mask it: the session
// must still complete byte-identically against the local ground truth. With
// o.batchCacheBytes > 0 the materialized-batch cache is enabled and the cell
// proves the PR 5 isolation invariant: wire faults land on the connection,
// never in the shared cache bytes — the retried fetch is served (partly) from
// cache and is still byte-identical to ground truth. With o.sampleCacheBytes
// > 0 the cell runs the augmented workload in real mode and proves the same
// isolation one layer down: corrupted frames never pollute the materialized
// prefix pixels the split-point sample cache re-serves.
func serveWireCell(class string, seed int64, fspec faultinject.Spec, o serverOpts) Result {
	spec := serveSpec(seed)
	if o.sampleCacheBytes > 0 {
		spec = augmentedServeSpec(seed)
		o.mode = pipeline.RealData
	}
	res := Result{Class: class, Workload: string(spec.Kind)}
	fspec.Seed = seed
	inj := faultinject.New(fspec)
	const epochs = 2

	expected := make([][][]byte, epochs)
	for e := 0; e < epochs; e++ {
		frames, err := groundTruthFramesMode(spec, e, o.mode)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("ground truth epoch %d: %v", e, err))
			return res
		}
		expected[e] = frames
	}

	baseline := testutil.Baseline()
	srv, err := startServerOpts(spec, inj, o)
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}

	got := make([][][]byte, epochs)
	c := serve.NewClient(serve.ClientConfig{
		Addr: srv.Addr(), Name: "chaos-" + class,
		// A retried epoch is re-fetched whole: drop the failed attempt's
		// partial (possibly corrupted) frames before the re-request.
		OnRetry: func(epoch, attempt int, err error) { got[epoch] = nil },
	})
	stats, runErr := c.Run(epochs, func(b *serve.Batch, payload []byte) {
		if b.Epoch >= 0 && b.Epoch < epochs {
			got[b.Epoch] = append(got[b.Epoch], append([]byte(nil), payload...))
		}
	})
	cacheStats, cacheOn := srv.CacheStats()
	scacheStats, scacheOn := srv.SampleCacheStats()
	c.Close()
	srv.Close()

	if o.batchCacheBytes > 0 {
		if !cacheOn {
			res.Failures = append(res.Failures, "cache-enabled cell reports cache disabled")
		} else if cacheStats.Hits == 0 {
			// The failed attempt fulfilled frames before the fault cut it; the
			// retry must reuse them — a zero hit count means the retry
			// recomputed everything and the cache isolation claim is untested.
			res.Failures = append(res.Failures, "retried fetch never hit the cache")
		} else {
			res.Notes = append(res.Notes, fmt.Sprintf("cache hits=%d misses=%d", cacheStats.Hits, cacheStats.Misses))
		}
	}
	if o.sampleCacheBytes > 0 {
		if !scacheOn {
			res.Failures = append(res.Failures, "sample-cache cell reports the cache disabled")
		} else if scacheStats.Hits == 0 {
			// Epoch 1 (and the retried fetch) must re-serve epoch 0's
			// materialized prefixes, or the pollution claim went untested.
			res.Failures = append(res.Failures, "no request ever hit the sample cache")
		} else {
			res.Notes = append(res.Notes, fmt.Sprintf("sample-cache hits=%d misses=%d", scacheStats.Hits, scacheStats.Misses))
		}
	}

	if runErr != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("client did not mask the wire fault: %v", runErr))
	}
	for e := 0; e < epochs && runErr == nil; e++ {
		if len(got[e]) != len(expected[e]) {
			res.Failures = append(res.Failures, fmt.Sprintf("epoch %d: %d frames, want %d", e, len(got[e]), len(expected[e])))
			continue
		}
		for i := range got[e] {
			if !bytes.Equal(got[e][i], expected[e][i]) {
				res.Failures = append(res.Failures, fmt.Sprintf("epoch %d frame %d not byte-identical after retry", e, i))
				break
			}
		}
	}
	if stats != nil && stats.Retries == 0 {
		res.Failures = append(res.Failures, "wire fault fired but the client never retried")
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().WireFaults
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	if stats != nil {
		res.Notes = append(res.Notes, fmt.Sprintf("retries=%d batches=%d", stats.Retries, stats.Batches))
	}
	return res
}

// tenantGreedyCell is the multi-tenancy adversary cell: a rate-capped greedy
// tenant floods the server from three concurrent sessions while a polite
// tenant streams alongside. The QoS layer must hold the cap across all the
// greedy tenant's sessions (its /metrics row shows throttled time), must
// never rate-limit the polite tenant, and every session — greedy included —
// must still complete byte-identically to local ground truth: QoS is
// schedule, never content.
func tenantGreedyCell(seed int64) Result {
	spec := serveSpec(seed)
	res := Result{Class: "tenant-greedy", Workload: string(spec.Kind)}
	const (
		epochs         = 2
		greedySessions = 3
	)

	expected := make([][][]byte, epochs)
	for e := 0; e < epochs; e++ {
		frames, err := groundTruthFramesMode(spec, e, pipeline.Simulated)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("ground truth epoch %d: %v", e, err))
			return res
		}
		expected[e] = frames
	}

	baseline := testutil.Baseline()
	srv, err := startServerOpts(spec, nil, serverOpts{
		batchCacheBytes: chaosCacheBytes,
		qos:             true,
		tenants: map[string]serve.TenantLimit{
			"greedy": {BatchesPerSec: 100, BurstBatches: 4},
		},
	})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}

	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	runSession := func(name, tenant string) {
		got := make([][][]byte, epochs)
		c := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: name, Tenant: tenant,
			OnRetry: func(epoch, attempt int, err error) { got[epoch] = nil }})
		defer c.Close()
		if _, err := c.Run(epochs, func(b *serve.Batch, payload []byte) {
			if b.Epoch >= 0 && b.Epoch < epochs {
				got[b.Epoch] = append(got[b.Epoch], append([]byte(nil), payload...))
			}
		}); err != nil {
			fail("%s: session failed under QoS: %v", name, err)
			return
		}
		for e := 0; e < epochs; e++ {
			if len(got[e]) != len(expected[e]) {
				fail("%s: epoch %d: %d frames, want %d", name, e, len(got[e]), len(expected[e]))
				return
			}
			for i := range got[e] {
				if !bytes.Equal(got[e][i], expected[e][i]) {
					fail("%s: epoch %d frame %d not byte-identical under QoS", name, e, i)
					return
				}
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < greedySessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runSession(fmt.Sprintf("greedy-%d", i), "greedy")
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		runSession("polite-0", "polite")
	}()
	wg.Wait()

	snap := srv.Snapshot(time.Now())
	var greedyMs, politeMs float64
	var seen int
	for _, row := range snap.Tenants {
		switch row.Tenant {
		case "greedy":
			greedyMs = row.ThrottledMs
			seen++
		case "polite":
			politeMs = row.ThrottledMs
			seen++
		}
	}
	if seen != 2 {
		res.Failures = append(res.Failures, fmt.Sprintf("tenant rows on /metrics: %d, want greedy and polite", seen))
	}
	if greedyMs <= 0 {
		res.Failures = append(res.Failures, "greedy tenant was never throttled: the cap did not hold across its sessions")
	}
	if politeMs != 0 {
		res.Failures = append(res.Failures, fmt.Sprintf("polite tenant throttled %.1fms by the greedy tenant's cap", politeMs))
	}
	srv.Close()

	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = greedySessions
	res.Notes = append(res.Notes, fmt.Sprintf("greedy throttled=%.0fms polite=%.0fms", greedyMs, politeMs))
	return res
}

// sampleCacheChurnCell serves the augmented workload through a sample cache
// whose budget is smaller than a single materialized prefix: every fulfilled
// entry is evicted on insert, no request ever hits, and refcounted entries
// are torn down under maximal churn. The served pixels must stay identical to
// a cache-less local run — eviction is a performance event, never a
// correctness one — and nothing may leak or deadlock on the eviction path.
func sampleCacheChurnCell(seed int64) Result {
	res := Result{Class: "scache-churn", Workload: "ICA"}
	spec := augmentedServeSpec(seed)
	const epochs = 2

	expected := make([][][]byte, epochs)
	for e := 0; e < epochs; e++ {
		frames, err := groundTruthFramesMode(spec, e, pipeline.RealData)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("ground truth epoch %d: %v", e, err))
			return res
		}
		expected[e] = frames
	}

	baseline := testutil.Baseline()
	// 1 KiB holds no 48×48 RGB prefix, so the cache runs at full churn.
	srv, err := startServerOpts(spec, nil, serverOpts{sampleCacheBytes: 1 << 10, mode: pipeline.RealData})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}

	got := make([][][]byte, epochs)
	c := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: "chaos-scache-churn"})
	_, runErr := c.Run(epochs, func(b *serve.Batch, payload []byte) {
		if b.Epoch >= 0 && b.Epoch < epochs {
			got[b.Epoch] = append(got[b.Epoch], append([]byte(nil), payload...))
		}
	})
	stats, on := srv.SampleCacheStats()
	c.Close()
	srv.Close()

	if runErr != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("session failed under eviction churn: %v", runErr))
	}
	for e := 0; e < epochs && runErr == nil; e++ {
		if len(got[e]) != len(expected[e]) {
			res.Failures = append(res.Failures, fmt.Sprintf("epoch %d: %d frames, want %d", e, len(got[e]), len(expected[e])))
			continue
		}
		for i := range got[e] {
			if !bytes.Equal(got[e][i], expected[e][i]) {
				res.Failures = append(res.Failures, fmt.Sprintf("epoch %d frame %d bytes changed under eviction churn", e, i))
				break
			}
		}
	}
	if !on {
		res.Failures = append(res.Failures, "sample cache reports disabled")
	} else {
		if stats.Hits != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("%d hits against a sub-entry budget", stats.Hits))
		}
		if stats.Evicted != stats.Misses || stats.Misses < int64(spec.NumSamples) {
			res.Failures = append(res.Failures, fmt.Sprintf("evictions %d, misses %d: churn accounting broken", stats.Evicted, stats.Misses))
		}
		res.Notes = append(res.Notes, fmt.Sprintf("misses=%d evicted=%d", stats.Misses, stats.Evicted))
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = stats.Evicted // the eviction pressure is the injected fault
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// servePanicCell injects worker panics into the served pipeline and asserts
// the failure surfaces as a clean Error frame (a fatal ServerError on the
// client), not a wedged or crashed server.
func servePanicCell(seed int64) Result {
	res := Result{Class: "server-panic", Workload: "IC"}
	inj := faultinject.New(faultinject.Spec{Seed: seed, PanicNth: 6})
	spec := serveSpec(seed)

	baseline := testutil.Baseline()
	srv, err := startServer(spec, inj, 0)
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}

	c := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: "chaos-panic"})
	_, runErr := c.Run(1, nil)
	c.Close()
	if runErr == nil {
		res.Failures = append(res.Failures, "epoch with injected panics completed; expected a clean Error frame")
	} else if !strings.Contains(runErr.Error(), "server error") {
		res.Failures = append(res.Failures, fmt.Sprintf("failure was not a clean Error frame: %v", runErr))
	}

	// The server must survive the failed session: a fresh handshake works.
	c2 := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: "chaos-panic-2"})
	if err := c2.Connect(); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("server dead after panic session: %v", err))
	}
	c2.Close()
	srv.Close()

	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().Panics
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// serveDisconnectCell drops the client connection mid-stream and asserts the
// server aborts the epoch cleanly: the next session completes byte-identically
// and no producer goroutine is stranded.
func serveDisconnectCell(seed int64) Result {
	res := Result{Class: "client-disconnect", Workload: "IC"}
	spec := serveSpec(seed)

	expected, err := groundTruthFrames(spec, 0)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("ground truth: %v", err))
		return res
	}

	baseline := testutil.Baseline()
	srv, err := startServer(spec, nil, 0)
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}

	// Rude client: handshake, request an epoch, read two frames, vanish.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		srv.Close()
		return res
	}
	serve.WriteFrame(conn, serve.EncodeHello(serve.Hello{Version: serve.ProtocolVersion, World: 1, Name: "chaos-rude"}))
	if _, err := serve.ReadFrame(conn, 0); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("handshake: %v", err))
	}
	serve.WriteFrame(conn, serve.EncodeEpochReq(serve.EpochReq{Epoch: 0}))
	for i := 0; i < 2; i++ {
		if _, err := serve.ReadFrame(conn, 0); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("frame %d before disconnect: %v", i, err))
			break
		}
	}
	conn.Close()
	res.Injected = 1 // the disconnect itself is the fault

	// A clean session right after must stream the identical epoch.
	var got [][]byte
	c := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: "chaos-clean"})
	_, runErr := c.Run(1, func(b *serve.Batch, payload []byte) {
		got = append(got, append([]byte(nil), payload...))
	})
	c.Close()
	srv.Close()
	if runErr != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("clean session after disconnect: %v", runErr))
	} else if len(got) != len(expected) {
		res.Failures = append(res.Failures, fmt.Sprintf("clean session got %d frames, want %d", len(got), len(expected)))
	} else {
		for i := range got {
			if !bytes.Equal(got[i], expected[i]) {
				res.Failures = append(res.Failures, fmt.Sprintf("frame %d not byte-identical after disconnect recovery", i))
				break
			}
		}
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	return res
}
