package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lotus/internal/cluster"
	"lotus/internal/faultinject"
	"lotus/internal/serve"
	"lotus/internal/testutil"
)

// The disk cells exercise the persistent cache tier's crash story:
//
//   - disk-rewarm: a server killed without writing its manifest (the
//     SIGKILL model) restarts on the same directory, rebuilds the index by
//     scanning segments, and serves every warm frame byte-identical with
//     zero recomputation;
//   - disk-torn-manifest: a manifest write torn mid-rename (injected) is
//     detected by the self-checksum on restart and recovered by rebuild;
//   - disk-corrupt-segment: a record whose payload rotted after
//     checksumming (injected bit flip) is dropped at read time — the server
//     recomputes that one batch cleanly and never serves corrupt bytes;
//   - cluster-node-kill-rewarm: all three cluster nodes are killed
//     (manifests deleted) and restarted on their own directories; the
//     re-routed epoch is exactly-once, byte-identical, and entirely
//     disk-served on every node.

// diskCellFetch streams one full epoch and byte-checks it against expected.
// Returns the number of mismatched or missing frames appended as failures.
func diskCellFetch(srv *serve.Server, name string, expected [][]byte, failures []string) []string {
	c := serve.NewClient(serve.ClientConfig{Addr: srv.Addr(), Name: name})
	defer c.Close()
	got := 0
	_, err := c.Run(1, func(b *serve.Batch, payload []byte) {
		if b.GlobalID < 0 || b.GlobalID >= len(expected) {
			failures = append(failures, fmt.Sprintf("%s: batch id %d out of plan", name, b.GlobalID))
			return
		}
		got++
		if !bytes.Equal(payload, expected[b.GlobalID]) {
			failures = append(failures, fmt.Sprintf("%s: batch %d not byte-identical", name, b.GlobalID))
		}
	})
	if err != nil {
		failures = append(failures, fmt.Sprintf("%s: %v", name, err))
	} else if got != len(expected) {
		failures = append(failures, fmt.Sprintf("%s: %d of %d frames", name, got, len(expected)))
	}
	return failures
}

// diskRewarmCell: warm a disk directory, kill the server before its manifest
// lands (delete MANIFEST after close — the SIGKILL-equivalent state), and
// restart on the same directory. The restart must rebuild the index from
// segment scans and serve the whole epoch from disk: zero disk misses,
// byte-identical frames.
func diskRewarmCell(seed int64) Result {
	res := Result{Class: "disk-rewarm", Workload: "IC"}
	spec := serveSpec(seed)
	expected, err := groundTruthFramesMode(spec, 0, 0)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("ground truth: %v", err))
		return res
	}
	dir, err := os.MkdirTemp("", "lotus-chaos-disk-*")
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer os.RemoveAll(dir)
	baseline := testutil.Baseline()

	warm, err := startServerOpts(spec, nil, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dir})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	res.Failures = diskCellFetch(warm, "disk-rewarm-warm", expected, res.Failures)
	warm.Close()
	// Close drained the spill queue and synced segments; deleting the
	// manifest leaves exactly the on-disk state a SIGKILL would have.
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("remove manifest: %v", err))
		return res
	}
	res.Injected = 1 // the deleted manifest is the injected fault

	cold, err := startServerOpts(spec, nil, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dir})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	res.Failures = diskCellFetch(cold, "disk-rewarm-restart", expected, res.Failures)
	st, ok := cold.DiskCacheStats()
	cold.Close()
	if !ok {
		res.Failures = append(res.Failures, "disk-enabled cell reports the disk cache disabled")
	} else {
		if st.Rebuilds != 1 {
			res.Failures = append(res.Failures, fmt.Sprintf("rebuilds %d, want 1", st.Rebuilds))
		}
		if st.BatchMisses != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("restart recomputed: %d disk misses", st.BatchMisses))
		}
		if st.BatchHits != int64(len(expected)) {
			res.Failures = append(res.Failures, fmt.Sprintf("disk hits %d, want %d", st.BatchHits, len(expected)))
		}
		res.Notes = append(res.Notes, fmt.Sprintf("rewarm hits=%d segments=%d", st.BatchHits, st.Segments))
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	return res
}

// diskTornManifestCell: the injector tears the warm server's only manifest
// write (truncating the temp file before the rename — the reordered-rename
// crash). The restart must detect the damage via the manifest self-checksum,
// rebuild from segment scans, and still serve everything warm.
func diskTornManifestCell(seed int64) Result {
	res := Result{Class: "disk-torn-manifest", Workload: "IC"}
	spec := serveSpec(seed)
	expected, err := groundTruthFramesMode(spec, 0, 0)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("ground truth: %v", err))
		return res
	}
	dir, err := os.MkdirTemp("", "lotus-chaos-disk-*")
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer os.RemoveAll(dir)
	baseline := testutil.Baseline()
	inj := faultinject.New(faultinject.Spec{Seed: seed, TornManifest: 1})

	warm, err := startServerOpts(spec, inj, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dir})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	res.Failures = diskCellFetch(warm, "disk-torn-warm", expected, res.Failures)
	// Close writes the first (and only) manifest — the injector tears it.
	warm.Close()

	cold, err := startServerOpts(spec, nil, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dir})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	res.Failures = diskCellFetch(cold, "disk-torn-restart", expected, res.Failures)
	st, ok := cold.DiskCacheStats()
	cold.Close()
	if !ok {
		res.Failures = append(res.Failures, "disk-enabled cell reports the disk cache disabled")
	} else {
		if st.Rebuilds != 1 {
			res.Failures = append(res.Failures, fmt.Sprintf("torn manifest not rebuilt: rebuilds %d", st.Rebuilds))
		}
		if st.BatchMisses != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("restart recomputed: %d disk misses", st.BatchMisses))
		}
		res.Notes = append(res.Notes, fmt.Sprintf("rebuilt hits=%d", st.BatchHits))
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().DiskFaults
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// diskCorruptSegmentCell: the injector flips one bit in one spilled record
// AFTER its checksum was computed — silent media corruption. The restart's
// read-time verification must drop exactly that record (a clean recompute),
// and every served frame must still be byte-identical to ground truth:
// corruption degrades to a miss, never to corrupt bytes.
func diskCorruptSegmentCell(seed int64) Result {
	res := Result{Class: "disk-corrupt-segment", Workload: "IC"}
	spec := serveSpec(seed)
	expected, err := groundTruthFramesMode(spec, 0, 0)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("ground truth: %v", err))
		return res
	}
	dir, err := os.MkdirTemp("", "lotus-chaos-disk-*")
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	defer os.RemoveAll(dir)
	baseline := testutil.Baseline()
	inj := faultinject.New(faultinject.Spec{Seed: seed, CorruptDiskAppend: 3})

	warm, err := startServerOpts(spec, inj, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dir})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	res.Failures = diskCellFetch(warm, "disk-corrupt-warm", expected, res.Failures)
	warm.Close()

	cold, err := startServerOpts(spec, nil, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dir})
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	res.Failures = diskCellFetch(cold, "disk-corrupt-restart", expected, res.Failures)
	st, ok := cold.DiskCacheStats()
	cold.Close()
	if !ok {
		res.Failures = append(res.Failures, "disk-enabled cell reports the disk cache disabled")
	} else {
		if st.CorruptDropped != 1 {
			res.Failures = append(res.Failures, fmt.Sprintf("corrupt records dropped %d, want 1", st.CorruptDropped))
		}
		if st.BatchMisses != 1 {
			res.Failures = append(res.Failures, fmt.Sprintf("disk misses %d, want exactly the corrupted record", st.BatchMisses))
		}
		if st.BatchHits != int64(len(expected)-1) {
			res.Failures = append(res.Failures, fmt.Sprintf("disk hits %d, want %d", st.BatchHits, len(expected)-1))
		}
		res.Notes = append(res.Notes, fmt.Sprintf("dropped=%d recomputed=%d", st.CorruptDropped, st.BatchMisses))
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	res.Injected = inj.Counts().DiskFaults
	if res.Injected == 0 {
		res.Failures = append(res.Failures, "fault class injected nothing")
	}
	return res
}

// clusterNodeKillRewarmCell: three nodes, each with a batch cache and its own
// disk directory, serve a routed epoch; then ALL of them are killed
// (manifests deleted — the whole cluster SIGKILLed at once) and restarted on
// their original directories with their original node IDs. The re-routed
// epoch must be exactly-once and byte-identical, with every node serving its
// shard entirely from its rebuilt disk tier: cluster-wide recomputation == 0.
func clusterNodeKillRewarmCell(seed int64) Result {
	res := Result{Class: "cluster-node-kill-rewarm", Workload: "IC"}
	spec := serveSpec(seed)
	expected, err := groundTruthFramesMode(spec, 0, 0)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("ground truth: %v", err))
		return res
	}
	var dirs [3]string
	for i := range dirs {
		d, err := os.MkdirTemp("", "lotus-chaos-cluster-disk-*")
		if err != nil {
			res.Failures = append(res.Failures, err.Error())
			return res
		}
		dirs[i] = d
		defer os.RemoveAll(d)
	}
	baseline := testutil.Baseline()

	boot := func() ([]*serve.Server, []cluster.Node, error) {
		var srvs []*serve.Server
		var nodes []cluster.Node
		for i := 0; i < 3; i++ {
			srv, err := startServerOpts(spec, nil, serverOpts{batchCacheBytes: chaosCacheBytes, diskDir: dirs[i]})
			if err != nil {
				for _, s := range srvs {
					s.Close()
				}
				return nil, nil, err
			}
			srvs = append(srvs, srv)
			nodes = append(nodes, cluster.Node{ID: fmt.Sprintf("node%d", i), Addr: srv.Addr()})
		}
		return srvs, nodes, nil
	}
	routeEpoch := func(nodes []cluster.Node, name string) (*clusterSink, *cluster.EpochStats, error) {
		c, err := cluster.New(cluster.Config{Nodes: nodes, Name: name})
		if err != nil {
			return nil, nil, err
		}
		defer c.Close()
		sink := newClusterSink()
		stats, err := c.RunEpoch(0, sink.onBatch)
		return sink, stats, err
	}

	// Warm pass: a healthy routed epoch populates every node's disk tier
	// with exactly its ring shard.
	srvs, nodes, err := boot()
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	sink, _, err := routeEpoch(nodes, "chaos-rewarm-warm")
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("warm epoch: %v", err))
		for _, s := range srvs {
			s.Close()
		}
		return res
	}
	res.Failures = sink.check(expected, res.Failures)

	// Kill the whole cluster: close (which syncs segments) then delete each
	// manifest, leaving the SIGKILL on-disk state everywhere.
	for i, s := range srvs {
		s.Close()
		if err := os.Remove(filepath.Join(dirs[i], "MANIFEST")); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("remove manifest %d: %v", i, err))
			return res
		}
		res.Injected++
	}

	// Restart on the same directories with the same IDs; the ring reproduces
	// the original shard assignment, so every claim lands on warm disk.
	srvs2, nodes2, err := boot()
	if err != nil {
		res.Failures = append(res.Failures, err.Error())
		return res
	}
	sink2, stats2, err := routeEpoch(nodes2, "chaos-rewarm-restart")
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("rewarm epoch: %v", err))
	} else {
		res.Failures = sink2.check(expected, res.Failures)
		if stats2.NodeFailures != 0 || stats2.Rerouted != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"restarted cluster misbehaved: failures=%d rerouted=%d", stats2.NodeFailures, stats2.Rerouted))
		}
		if stats2.Ignored != 0 {
			res.Failures = append(res.Failures, fmt.Sprintf("%d frames hit the exactly-once filter", stats2.Ignored))
		}
		var hits int64
		for i, s := range srvs2 {
			st, ok := s.DiskCacheStats()
			if !ok {
				res.Failures = append(res.Failures, fmt.Sprintf("node%d reports the disk cache disabled", i))
				continue
			}
			if st.Rebuilds != 1 {
				res.Failures = append(res.Failures, fmt.Sprintf("node%d rebuilds %d, want 1", i, st.Rebuilds))
			}
			if st.BatchMisses != 0 {
				res.Failures = append(res.Failures, fmt.Sprintf("node%d recomputed %d batches after rewarm", i, st.BatchMisses))
			}
			hits += st.BatchHits
		}
		if hits != int64(len(expected)) {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"cluster-wide disk hits %d, want the whole plan (%d)", hits, len(expected)))
		}
		res.Notes = append(res.Notes, fmt.Sprintf("disk_hits=%d rounds=%d", hits, stats2.Rounds))
	}
	for _, s := range srvs2 {
		s.Close()
	}
	if err := testutil.WaitNoLeaks(baseline, 5*time.Second); err != nil {
		res.Failures = append(res.Failures, err.Error())
	}
	return res
}
