// Package control is the closed-loop autotuner: it turns the structured
// signals the system already emits (T2 batch waits and queue depths, cache
// hit/miss/eviction counters, per-node service latencies from the cluster
// router's hedge histograms) into runtime actuations of four knobs —
// DataLoader worker count, PrefetchFactor, the three cache byte budgets, and
// per-node vnode weights on the consistent-hash ring.
//
// The package deliberately contains no sampling and no actuation of its own:
// drivers (internal/serve for the node-local knobs, internal/cluster for ring
// weights, internal/autotune for the offline search) feed observations in
// and apply the returned decisions. That keeps every decision a pure
// function of the observation sequence — deterministic under the sim clock,
// where drivers observe at counter-keyed points (epoch boundaries) instead
// of wall-clock ticks.
//
// This file is the shared bottleneck model: the classification thresholds
// and the configuration-selection rule used by both the live controller and
// the offline tuner (one scoring function, two drivers).
package control

import "time"

// Bottleneck classifies where a pipeline's time is going.
type Bottleneck int

const (
	// BottleneckUnknown: the signals are mixed — neither clearly
	// preprocessing-bound nor clearly consumer-bound.
	BottleneckUnknown Bottleneck = iota
	// BottleneckPreprocessing: the consumer waits on preprocessing (the
	// paper's § V-C2 accelerator starvation). More workers help.
	BottleneckPreprocessing
	// BottleneckAccelerator: the accelerator is saturated; preprocessing
	// keeps up and extra workers only burn CPU.
	BottleneckAccelerator
	// BottleneckBalanced: stalls are eliminated and the accelerator is well
	// utilized — the operating point the controller steers toward.
	BottleneckBalanced
)

func (b Bottleneck) String() string {
	switch b {
	case BottleneckPreprocessing:
		return "preprocessing-bound"
	case BottleneckAccelerator:
		return "accelerator-bound"
	case BottleneckBalanced:
		return "balanced"
	}
	return "unknown"
}

// Classification thresholds, shared by the live controller, the offline
// tuner's stopping rules, and the trace advisor's headline diagnosis. The
// up/down pair (HighWaitFrac vs StallFreeWaitFrac) is the hysteresis band:
// a pipeline must cross 25% long waits to be called preprocessing-bound but
// drop under 5% to be called stall-free, so a signal hovering near either
// threshold cannot flip the diagnosis back and forth.
const (
	// HighWaitFrac: above this fraction of long batch waits the consumer is
	// starving (grow workers).
	HighWaitFrac = 0.25
	// StallFreeWaitFrac: below this fraction stalls are considered
	// eliminated (stop growing; shrink if the queue stays full).
	StallFreeWaitFrac = 0.05
	// SaturatedGPUUtil: accelerator utilization above this means more
	// preprocessing throughput cannot help.
	SaturatedGPUUtil = 0.9
	// HealthyGPUUtil: minimum utilization for a run to count as balanced
	// rather than merely idle.
	HealthyGPUUtil = 0.5
)

// Sample is one measured operating point: a configuration plus the signals
// it produced. The offline tuner evaluates Samples on the virtual clock; the
// live controller assembles the same shape from /metrics counters.
type Sample struct {
	Workers int
	// Prefetch is the prefetch factor (0 = the DataLoader default of 2).
	Prefetch     int
	E2E          time.Duration
	CPUSeconds   float64
	GPUUtil      float64
	LongWaitFrac float64
}

// Classify maps a sample's signals onto the bottleneck taxonomy.
func Classify(s Sample) Bottleneck {
	if s.GPUUtil > SaturatedGPUUtil {
		return BottleneckAccelerator
	}
	if s.LongWaitFrac > HighWaitFrac {
		return BottleneckPreprocessing
	}
	if s.LongWaitFrac < StallFreeWaitFrac && s.GPUUtil > HealthyGPUUtil {
		return BottleneckBalanced
	}
	return BottleneckUnknown
}

// SelectCheapest picks the configuration to run: the fewest CPU seconds
// among samples within tolerance of the fastest in-budget epoch time
// (cpuBudget <= 0 means unlimited). When nothing fits the budget it falls
// back to the cheapest sample outright. Returns the index into samples, or
// -1 for an empty slice. This is the selection rule the paper's Takeaway 5
// motivates: past the knee, more workers buy little time for a lot of CPU.
func SelectCheapest(samples []Sample, tolerance, cpuBudget float64) int {
	withinBudget := func(s Sample) bool {
		return cpuBudget <= 0 || s.CPUSeconds <= cpuBudget
	}
	var bestE2E time.Duration
	for _, s := range samples {
		if !withinBudget(s) {
			continue
		}
		if bestE2E == 0 || s.E2E < bestE2E {
			bestE2E = s.E2E
		}
	}
	chosen := -1
	for i, s := range samples {
		if !withinBudget(s) {
			continue
		}
		if float64(s.E2E) <= float64(bestE2E)*(1+tolerance) {
			if chosen < 0 || s.CPUSeconds < samples[chosen].CPUSeconds {
				chosen = i
			}
		}
	}
	if chosen < 0 {
		for i, s := range samples {
			if chosen < 0 || s.CPUSeconds < samples[chosen].CPUSeconds {
				chosen = i
			}
		}
	}
	return chosen
}
