package control

import (
	"fmt"
	"sync"
	"time"
)

// Signals is one observation of a serving node's live counters. The wait
// fields describe a recent window (the driver hands over whatever its trace
// ring currently buffers); the cache counters are cumulative — the
// controller windows those itself by differencing against the previous
// observation, so drivers can pass raw /metrics values without bookkeeping.
type Signals struct {
	// Counter is the observation key: a monotonically increasing count of
	// completed work (the server uses epochs served). The controller acts at
	// most once per advance, which is what makes it deterministic under the
	// sim clock — decisions are keyed off observed progress, never off wall
	// time.
	Counter int64

	// T2 wait signal (trace.Ring KindBatchWait records currently buffered):
	// how often and how long the consumer-facing main process waited on
	// preprocessing.
	WaitCount    int64
	LongWaitFrac float64
	MeanWait     time.Duration

	// QueueFill is the mean prefetch-queue fill fraction (0..1) across live
	// epoch streams. A full queue with no waits means the consumer is the
	// bottleneck; an empty queue with waits means preprocessing is.
	QueueFill float64

	// Cache tier counters.
	Batch, Sample, Disk CacheSignals
}

// CacheSignals is one cache tier's cumulative counters.
type CacheSignals struct {
	Enabled     bool
	Hits        int64
	Misses      int64
	Evictions   int64
	BytesUsed   int64
	BytesBudget int64
}

// Knobs is the controller's view of the actuatable configuration.
type Knobs struct {
	Workers  int
	Prefetch int
	// Byte budgets per cache tier; 0 = tier disabled (never actuated).
	BatchBytes  int64
	SampleBytes int64
	DiskBytes   int64
}

// Action records one actuation: knob moved from From to To at observation
// Tick because Reason.
type Action struct {
	Tick   int64  `json:"tick"`
	Knob   string `json:"knob"`
	From   int64  `json:"from"`
	To     int64  `json:"to"`
	Reason string `json:"reason"`
}

func (a Action) String() string {
	return fmt.Sprintf("tick %d: %s %d -> %d (%s)", a.Tick, a.Knob, a.From, a.To, a.Reason)
}

// Config bounds and paces the controller. Zero values take defaults.
type Config struct {
	MinWorkers, MaxWorkers   int
	MinPrefetch, MaxPrefetch int
	// MaxCacheGrowth caps each cache budget at this multiple of its initial
	// value (default 2.0). Budgets never shrink below the initial value.
	MaxCacheGrowth float64
	// Cooldown is the number of observations a knob rests after moving
	// (default 2). Cooldown plus the hysteresis band in the thresholds is
	// what prevents oscillation: a knob cannot reverse course until the
	// effect of its last move has been observed at least Cooldown times.
	Cooldown int64
	// ShrinkStreak is how many consecutive consumer-bound observations are
	// required before shrinking workers (default 2) — a single idle window
	// must not throw capacity away.
	ShrinkStreak int
	// MinWaitSamples is the minimum number of windowed wait observations
	// before the wait signal is trusted (default 8).
	MinWaitSamples int64
	// CacheHitTarget is the windowed hit rate below which an evicting cache
	// is considered capacity-starved (default 0.7).
	CacheHitTarget float64
	// MinCacheLookups is the minimum windowed lookups before the hit rate is
	// trusted (default 16).
	MinCacheLookups int64
}

func (c Config) defaults() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 16
	}
	if c.MinPrefetch <= 0 {
		c.MinPrefetch = 1
	}
	if c.MaxPrefetch <= 0 {
		c.MaxPrefetch = 8
	}
	if c.MaxCacheGrowth <= 1 {
		c.MaxCacheGrowth = 2.0
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.ShrinkStreak <= 0 {
		c.ShrinkStreak = 2
	}
	if c.MinWaitSamples <= 0 {
		c.MinWaitSamples = 8
	}
	if c.CacheHitTarget <= 0 {
		c.CacheHitTarget = 0.7
	}
	if c.MinCacheLookups <= 0 {
		c.MinCacheLookups = 16
	}
	return c
}

// Controller is the node-local control loop. Observe feeds it one Signals
// snapshot; it returns the actions the driver should apply. Safe for
// concurrent use (the server observes from whichever session goroutine
// finishes an epoch).
type Controller struct {
	mu      sync.Mutex
	cfg     Config
	knobs   Knobs
	initial Knobs
	// lastActed maps knob name to the observation tick it last moved.
	lastActed map[string]int64
	// consumerStreak counts consecutive consumer-bound observations.
	consumerStreak int
	// lazyStreak counts consecutive over-provisioned cache observations.
	lazyStreak map[string]int
	prev       Signals
	hasPrev    bool
	lastTick   int64
	history    []Action
}

// NewController returns a controller starting from the given knob settings.
func NewController(cfg Config, initial Knobs) *Controller {
	cfg = cfg.defaults()
	if initial.Workers < cfg.MinWorkers {
		initial.Workers = cfg.MinWorkers
	}
	if initial.Prefetch <= 0 {
		initial.Prefetch = 2
	}
	return &Controller{
		cfg:       cfg,
		knobs:     initial,
		initial:   initial,
		lastActed: make(map[string]int64),
		lazyStreak: map[string]int{
			"cache.batch": 0, "cache.sample": 0, "cache.disk": 0,
		},
	}
}

// Knobs returns the current knob settings.
func (c *Controller) Knobs() Knobs {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.knobs
}

// History returns a copy of every action taken so far.
func (c *Controller) History() []Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Action(nil), c.history...)
}

// Observe feeds one signals snapshot and returns the actions to apply. A
// snapshot whose Counter has not advanced past the previous observation is
// ignored — the controller only acts on progress, so repeated scrapes of an
// idle server decide nothing.
func (c *Controller) Observe(sig Signals) []Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hasPrev && sig.Counter <= c.lastTick {
		return nil
	}
	tick := sig.Counter
	prev, hadPrev := c.prev, c.hasPrev
	c.prev, c.hasPrev, c.lastTick = sig, true, tick
	if !hadPrev {
		return nil
	}

	var out []Action
	act := func(knob string, from, to int64, reason string) {
		a := Action{Tick: tick, Knob: knob, From: from, To: to, Reason: reason}
		c.history = append(c.history, a)
		c.lastActed[knob] = tick
		out = append(out, a)
	}
	ready := func(knob string) bool {
		last, moved := c.lastActed[knob]
		return !moved || tick-last >= c.cfg.Cooldown
	}

	// --- Workers / prefetch: steer toward BottleneckBalanced. ---
	waitTrusted := sig.WaitCount >= c.cfg.MinWaitSamples
	preprocessingBound := waitTrusted && sig.LongWaitFrac > HighWaitFrac
	consumerBound := waitTrusted && sig.LongWaitFrac < StallFreeWaitFrac && sig.QueueFill >= 0.75

	if consumerBound {
		c.consumerStreak++
	} else {
		c.consumerStreak = 0
	}

	switch {
	case preprocessingBound && c.knobs.Workers < c.cfg.MaxWorkers && ready("workers"):
		from := c.knobs.Workers
		c.knobs.Workers++
		act("workers", int64(from), int64(c.knobs.Workers),
			fmt.Sprintf("preprocessing-bound: %.0f%% long waits", 100*sig.LongWaitFrac))
	case preprocessingBound && c.knobs.Workers >= c.cfg.MaxWorkers &&
		c.knobs.Prefetch < c.cfg.MaxPrefetch && ready("prefetch"):
		// Workers are capped; deepen the prefetch window instead so arrival
		// jitter stops surfacing as consumer waits.
		from := c.knobs.Prefetch
		c.knobs.Prefetch++
		act("prefetch", int64(from), int64(c.knobs.Prefetch),
			fmt.Sprintf("preprocessing-bound at worker cap: %.0f%% long waits", 100*sig.LongWaitFrac))
	case c.consumerStreak >= c.cfg.ShrinkStreak && c.knobs.Workers > c.cfg.MinWorkers && ready("workers"):
		from := c.knobs.Workers
		c.knobs.Workers--
		c.consumerStreak = 0
		act("workers", int64(from), int64(c.knobs.Workers),
			fmt.Sprintf("consumer-bound: queue %.0f%% full, %.1f%% long waits", 100*sig.QueueFill, 100*sig.LongWaitFrac))
	}

	// --- Cache budgets: grow a tier that evicts while missing; reclaim a
	// tier that hits without pressure. ---
	type tier struct {
		name      string
		cur, init int64
		now, was  CacheSignals
		set       func(int64)
	}
	tiers := []tier{
		{"cache.batch", c.knobs.BatchBytes, c.initial.BatchBytes, sig.Batch, prev.Batch, func(v int64) { c.knobs.BatchBytes = v }},
		{"cache.sample", c.knobs.SampleBytes, c.initial.SampleBytes, sig.Sample, prev.Sample, func(v int64) { c.knobs.SampleBytes = v }},
		{"cache.disk", c.knobs.DiskBytes, c.initial.DiskBytes, sig.Disk, prev.Disk, func(v int64) { c.knobs.DiskBytes = v }},
	}
	for _, t := range tiers {
		if !t.now.Enabled || t.cur <= 0 || t.init <= 0 || !ready(t.name) {
			continue
		}
		maxBytes := int64(float64(t.init) * c.cfg.MaxCacheGrowth)
		dHits := t.now.Hits - t.was.Hits
		dMiss := t.now.Misses - t.was.Misses
		dEvict := t.now.Evictions - t.was.Evictions
		lookups := dHits + dMiss
		if lookups < c.cfg.MinCacheLookups {
			c.lazyStreak[t.name] = 0
			continue
		}
		hitRate := float64(dHits) / float64(lookups)
		switch {
		case hitRate < c.cfg.CacheHitTarget && dEvict > 0 && t.cur < maxBytes:
			to := t.cur + t.cur/2
			if to > maxBytes {
				to = maxBytes
			}
			t.set(to)
			c.lazyStreak[t.name] = 0
			act(t.name, t.cur, to,
				fmt.Sprintf("capacity-starved: %.0f%% hit rate with %d evictions", 100*hitRate, dEvict))
		case hitRate >= 0.95 && t.now.BytesUsed*2 < t.cur && t.cur > t.init:
			// Over-provisioned twice in a row: give memory back, but never
			// below the operator-configured initial budget.
			c.lazyStreak[t.name]++
			if c.lazyStreak[t.name] >= 2 {
				to := t.cur / 2
				if to < t.init {
					to = t.init
				}
				t.set(to)
				c.lazyStreak[t.name] = 0
				act(t.name, t.cur, to,
					fmt.Sprintf("over-provisioned: %.0f%% hit rate using %d of %d bytes", 100*hitRate, t.now.BytesUsed, t.cur))
			}
		default:
			c.lazyStreak[t.name] = 0
		}
	}
	return out
}
