package control

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeSample is one node's observed service metrics over a window (the
// cluster router assembles these from its per-node steady-state latency
// histograms — the PR 8 hedge signal reused as the degradation signal).
type NodeSample struct {
	Node string
	// Batches is the number of steady-frame observations in the window.
	Batches int64
	// PerBatch is the mean steady inter-arrival time in the window: the
	// node's effective per-batch service time while streaming. Unlike
	// batches/sec over the epoch wall time, it is load-independent — a node
	// idle half the epoch because its shard was small still reports its true
	// per-batch cost.
	PerBatch time.Duration
}

// BalancerConfig tunes the ring re-weighter. Zero values take defaults.
type BalancerConfig struct {
	// Alpha is the EWMA smoothing factor on per-batch service time
	// (default 0.5): high enough to track a node that degrades mid-run,
	// low enough that one noisy window cannot swing the ring.
	Alpha float64
	// DeadBand suppresses re-weights smaller than this relative change
	// (default 0.15) — the hysteresis that stops the ring thrashing when
	// nodes are roughly balanced.
	DeadBand float64
	// MinWeight floors every alive node's weight (default 1/16): a degraded
	// node keeps a sliver of the keyspace so its recovery is observable
	// (weight 0 would starve it of work and freeze its service estimate).
	MinWeight float64
	// MinSamples is the minimum steady-frame observations in a window before
	// a node's estimate updates (default 3).
	MinSamples int64
	// Cooldown is the number of observations the ring rests after a
	// re-weight (default 1).
	Cooldown int
}

func (c BalancerConfig) defaults() BalancerConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.DeadBand <= 0 {
		c.DeadBand = 0.15
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 1.0 / 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 1
	}
	return c
}

// Balancer converts per-node service-time observations into consistent-hash
// vnode weights: each node's weight is the ratio of the fastest node's
// per-batch time to its own, so shard sizes converge to be proportional to
// service rate and every node finishes its shard at the same time — the
// minimum-makespan partition for heterogeneous nodes. Deterministic: the
// same observation sequence always produces the same weights.
type Balancer struct {
	mu  sync.Mutex
	cfg BalancerConfig
	// svc is the EWMA per-batch service time per node, in seconds.
	svc map[string]float64
	// weights is the currently applied weight per node (default 1).
	weights  map[string]float64
	tick     int
	lastMove int
	moves    int
}

// NewBalancer returns a balancer with every node at full weight.
func NewBalancer(cfg BalancerConfig) *Balancer {
	return &Balancer{
		cfg:     cfg.defaults(),
		svc:     make(map[string]float64),
		weights: make(map[string]float64),
	}
}

// Observe feeds one window of per-node samples. It returns the new weight
// map when a re-weight is warranted, nil otherwise. The caller applies the
// returned weights to its ring.
func (b *Balancer) Observe(samples []NodeSample) map[string]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick++
	for _, s := range samples {
		if s.Batches < b.cfg.MinSamples || s.PerBatch <= 0 {
			continue
		}
		obs := s.PerBatch.Seconds()
		if old, ok := b.svc[s.Node]; ok {
			b.svc[s.Node] = (1-b.cfg.Alpha)*old + b.cfg.Alpha*obs
		} else {
			b.svc[s.Node] = obs
		}
	}
	if len(b.svc) < 2 || b.tick-b.lastMove < b.cfg.Cooldown {
		return nil
	}

	nodes := make([]string, 0, len(b.svc))
	fastest := 0.0
	for n, s := range b.svc {
		nodes = append(nodes, n)
		if fastest == 0 || s < fastest {
			fastest = s
		}
	}
	sort.Strings(nodes)

	proposed := make(map[string]float64, len(nodes))
	changed := false
	for _, n := range nodes {
		w := fastest / b.svc[n]
		if w < b.cfg.MinWeight {
			w = b.cfg.MinWeight
		}
		if w > 1 {
			w = 1
		}
		proposed[n] = w
		cur, ok := b.weights[n]
		if !ok {
			cur = 1
		}
		if diff := w - cur; diff > b.cfg.DeadBand*cur || -diff > b.cfg.DeadBand*cur {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	for n, w := range proposed {
		b.weights[n] = w
	}
	b.lastMove = b.tick
	b.moves++
	return proposed
}

// Weights returns a copy of the currently applied weight map.
func (b *Balancer) Weights() map[string]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]float64, len(b.weights))
	for n, w := range b.weights {
		out[n] = w
	}
	return out
}

// Moves reports how many re-weights have been issued.
func (b *Balancer) Moves() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.moves
}

// String renders the current state for logs.
func (b *Balancer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	nodes := make([]string, 0, len(b.svc))
	for n := range b.svc {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	out := ""
	for _, n := range nodes {
		w, ok := b.weights[n]
		if !ok {
			w = 1
		}
		out += fmt.Sprintf("%s: %.1fms/batch w=%.2f; ", n, 1e3*b.svc[n], w)
	}
	return out
}
