package control

import (
	"reflect"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		s    Sample
		want Bottleneck
	}{
		{"saturated gpu wins", Sample{GPUUtil: 0.95, LongWaitFrac: 0.9}, BottleneckAccelerator},
		{"long waits", Sample{GPUUtil: 0.3, LongWaitFrac: 0.5}, BottleneckPreprocessing},
		{"balanced", Sample{GPUUtil: 0.8, LongWaitFrac: 0.01}, BottleneckBalanced},
		{"stall-free but idle gpu", Sample{GPUUtil: 0.2, LongWaitFrac: 0.01}, BottleneckUnknown},
		{"hysteresis band", Sample{GPUUtil: 0.8, LongWaitFrac: 0.15}, BottleneckUnknown},
	}
	for _, c := range cases {
		if got := Classify(c.s); got != c.want {
			t.Errorf("%s: Classify(%+v) = %v, want %v", c.name, c.s, got, c.want)
		}
	}
}

func TestSelectCheapest(t *testing.T) {
	samples := []Sample{
		{Workers: 1, E2E: 10 * time.Second, CPUSeconds: 1},
		{Workers: 4, E2E: 4 * time.Second, CPUSeconds: 5},
		{Workers: 8, E2E: 3900 * time.Millisecond, CPUSeconds: 11},
	}
	// 4 workers is within 8% of the fastest and much cheaper.
	if got := SelectCheapest(samples, 0.08, 0); got != 1 {
		t.Fatalf("SelectCheapest = %d, want 1", got)
	}
	// A CPU budget of 2s leaves only the 1-worker run in budget.
	if got := SelectCheapest(samples, 0.08, 2); got != 0 {
		t.Fatalf("SelectCheapest(budget=2) = %d, want 0", got)
	}
	// Nothing in budget: fall back to the cheapest outright.
	if got := SelectCheapest(samples, 0.08, 0.5); got != 0 {
		t.Fatalf("SelectCheapest(budget=0.5) = %d, want 0", got)
	}
	if got := SelectCheapest(nil, 0.08, 0); got != -1 {
		t.Fatalf("SelectCheapest(nil) = %d, want -1", got)
	}
}

// boundSig builds a preprocessing-bound observation at the given tick.
func boundSig(tick int64) Signals {
	return Signals{Counter: tick, WaitCount: 100, LongWaitFrac: 0.6, MeanWait: 50 * time.Millisecond}
}

// idleSig builds a consumer-bound observation (no stalls, full queue).
func idleSig(tick int64) Signals {
	return Signals{Counter: tick, WaitCount: 100, LongWaitFrac: 0.0, QueueFill: 1.0}
}

func TestControllerGrowsWorkersUnderStalls(t *testing.T) {
	c := NewController(Config{Cooldown: 1}, Knobs{Workers: 2, Prefetch: 2})
	if acts := c.Observe(boundSig(1)); acts != nil {
		t.Fatalf("first observation must only set the baseline, got %v", acts)
	}
	acts := c.Observe(boundSig(2))
	if len(acts) != 1 || acts[0].Knob != "workers" || acts[0].To != 3 {
		t.Fatalf("expected workers 2->3, got %v", acts)
	}
	if k := c.Knobs(); k.Workers != 3 {
		t.Fatalf("Knobs().Workers = %d, want 3", k.Workers)
	}
}

func TestControllerCooldownAndRepeatedTicks(t *testing.T) {
	c := NewController(Config{Cooldown: 3}, Knobs{Workers: 2, Prefetch: 2})
	c.Observe(boundSig(1))
	if acts := c.Observe(boundSig(2)); len(acts) != 1 {
		t.Fatalf("expected one action, got %v", acts)
	}
	// Same counter again: no decision, whatever the signals say.
	if acts := c.Observe(boundSig(2)); acts != nil {
		t.Fatalf("non-advancing counter must be ignored, got %v", acts)
	}
	// Within the cooldown window: the knob rests.
	if acts := c.Observe(boundSig(3)); acts != nil {
		t.Fatalf("cooldown must hold the knob, got %v", acts)
	}
	if acts := c.Observe(boundSig(5)); len(acts) != 1 || acts[0].To != 4 {
		t.Fatalf("expected workers 3->4 after cooldown, got %v", acts)
	}
}

func TestControllerPrefetchAtWorkerCap(t *testing.T) {
	c := NewController(Config{MaxWorkers: 2, Cooldown: 1}, Knobs{Workers: 2, Prefetch: 2})
	c.Observe(boundSig(1))
	acts := c.Observe(boundSig(2))
	if len(acts) != 1 || acts[0].Knob != "prefetch" || acts[0].To != 3 {
		t.Fatalf("expected prefetch 2->3 at worker cap, got %v", acts)
	}
}

func TestControllerShrinkNeedsStreak(t *testing.T) {
	c := NewController(Config{Cooldown: 1, ShrinkStreak: 2}, Knobs{Workers: 4, Prefetch: 2})
	c.Observe(idleSig(1))
	if acts := c.Observe(idleSig(2)); acts != nil {
		t.Fatalf("one idle window must not shrink, got %v", acts)
	}
	acts := c.Observe(idleSig(3))
	if len(acts) != 1 || acts[0].Knob != "workers" || acts[0].To != 3 {
		t.Fatalf("expected workers 4->3 after streak, got %v", acts)
	}
	// A bound window resets the streak.
	c2 := NewController(Config{Cooldown: 1, ShrinkStreak: 2}, Knobs{Workers: 4, Prefetch: 2})
	c2.Observe(idleSig(1))
	c2.Observe(idleSig(2))
	c2.Observe(boundSig(3)) // grows workers, resets streak
	if acts := c2.Observe(idleSig(5)); acts != nil {
		t.Fatalf("streak must restart after a bound window, got %v", acts)
	}
}

func TestControllerUntrustedWaitSignal(t *testing.T) {
	c := NewController(Config{Cooldown: 1, MinWaitSamples: 50}, Knobs{Workers: 2, Prefetch: 2})
	sig := boundSig(1)
	sig.WaitCount = 10 // below MinWaitSamples
	c.Observe(sig)
	sig.Counter = 2
	if acts := c.Observe(sig); acts != nil {
		t.Fatalf("untrusted wait signal must not act, got %v", acts)
	}
}

func TestControllerCacheGrowAndReclaim(t *testing.T) {
	c := NewController(Config{Cooldown: 1, MaxCacheGrowth: 4},
		Knobs{Workers: 2, Prefetch: 2, BatchBytes: 1000})
	cacheSig := func(tick, hits, misses, evicts, used int64) Signals {
		return Signals{Counter: tick,
			Batch: CacheSignals{Enabled: true, Hits: hits, Misses: misses, Evictions: evicts, BytesUsed: used}}
	}
	c.Observe(cacheSig(1, 0, 0, 0, 900))
	// Window: 5 hits / 45 misses with evictions -> capacity-starved, grow 1.5x.
	acts := c.Observe(cacheSig(2, 5, 45, 10, 1000))
	if len(acts) != 1 || acts[0].Knob != "cache.batch" || acts[0].To != 1500 {
		t.Fatalf("expected cache.batch 1000->1500, got %v", acts)
	}
	// Growth is capped at MaxCacheGrowth * initial.
	acts = c.Observe(cacheSig(4, 10, 90, 20, 1500))
	if len(acts) != 1 || acts[0].To != 2250 {
		t.Fatalf("expected cache.batch 1500->2250, got %v", acts)
	}
	// Reclaim path: near-perfect hit rate with half the budget idle, twice.
	c.Observe(cacheSig(6, 110, 91, 20, 300))
	acts = c.Observe(cacheSig(8, 210, 92, 20, 300))
	if len(acts) != 1 || acts[0].Knob != "cache.batch" || acts[0].To >= 2250 {
		t.Fatalf("expected cache.batch reclaim below 2250, got %v", acts)
	}
	// Budgets never fall below the operator's initial value.
	if k := c.Knobs(); k.BatchBytes < 1000 {
		t.Fatalf("budget shrank below initial: %d", k.BatchBytes)
	}
}

func TestControllerDeterministic(t *testing.T) {
	run := func() []Action {
		c := NewController(Config{Cooldown: 1}, Knobs{Workers: 1, Prefetch: 2, BatchBytes: 1 << 20})
		for tick := int64(1); tick <= 10; tick++ {
			sig := boundSig(tick)
			sig.Batch = CacheSignals{Enabled: true, Hits: tick * 10, Misses: tick * 30, Evictions: tick, BytesUsed: 1 << 20}
			c.Observe(sig)
		}
		return c.History()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same observation sequence produced different actions:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("expected at least one action")
	}
}

func TestBalancerConvergesOnSlowNode(t *testing.T) {
	b := NewBalancer(BalancerConfig{})
	sample := func(ms map[string]int) []NodeSample {
		out := make([]NodeSample, 0, len(ms))
		for n, m := range ms {
			out = append(out, NodeSample{Node: n, Batches: 10, PerBatch: time.Duration(m) * time.Millisecond})
		}
		return out
	}
	var weights map[string]float64
	for i := 0; i < 6; i++ {
		if w := b.Observe(sample(map[string]int{"a": 10, "b": 10, "c": 30})); w != nil {
			weights = w
		}
	}
	if weights == nil {
		t.Fatal("balancer never proposed a re-weight for a 3x-slow node")
	}
	if weights["a"] != 1 || weights["b"] != 1 {
		t.Fatalf("fast nodes must keep full weight, got %v", weights)
	}
	// 3x slower -> weight converges to ~1/3.
	if w := weights["c"]; w < 0.25 || w > 0.45 {
		t.Fatalf("slow node weight = %.2f, want ~0.33", w)
	}
}

func TestBalancerDeadBandSuppressesNoise(t *testing.T) {
	b := NewBalancer(BalancerConfig{})
	moves := 0
	for i := 0; i < 10; i++ {
		// +-5% jitter around a balanced cluster: inside the dead band.
		m := 10 + i%2
		if w := b.Observe([]NodeSample{
			{Node: "a", Batches: 10, PerBatch: time.Duration(m) * time.Millisecond},
			{Node: "b", Batches: 10, PerBatch: 10 * time.Millisecond},
		}); w != nil {
			moves++
		}
	}
	if moves != 0 {
		t.Fatalf("balanced cluster with jitter inside the dead band re-weighted %d times", moves)
	}
}

func TestBalancerMinWeightFloor(t *testing.T) {
	b := NewBalancer(BalancerConfig{})
	var weights map[string]float64
	for i := 0; i < 4; i++ {
		if w := b.Observe([]NodeSample{
			{Node: "fast", Batches: 10, PerBatch: time.Millisecond},
			{Node: "dead-slow", Batches: 10, PerBatch: time.Second},
		}); w != nil {
			weights = w
		}
	}
	if weights == nil {
		t.Fatal("expected a re-weight")
	}
	if w := weights["dead-slow"]; w != 1.0/16 {
		t.Fatalf("slow node floored at %.4f, want 1/16", w)
	}
}

func TestBalancerNeedsMinSamples(t *testing.T) {
	b := NewBalancer(BalancerConfig{})
	for i := 0; i < 5; i++ {
		if w := b.Observe([]NodeSample{
			{Node: "a", Batches: 1, PerBatch: time.Millisecond}, // below MinSamples
			{Node: "b", Batches: 1, PerBatch: 30 * time.Millisecond},
		}); w != nil {
			t.Fatalf("cold windows must not re-weight, got %v", w)
		}
	}
}
