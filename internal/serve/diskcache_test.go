package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lotus/internal/pipeline"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

// startDiskCachedServer brings up a server with the persistent tier rooted
// at dir (plus the given memory caches).
func startDiskCachedServer(t *testing.T, spec workloads.Spec, dir string,
	batchBytes, sampleBytes int64, mode pipeline.Mode, materializeDim int, withHTTP bool) *Server {
	t.Helper()
	srv := New(Config{Spec: spec, Mode: mode, MaterializeDim: materializeDim,
		Prefetch: 2, BatchCacheBytes: batchBytes, SampleCacheBytes: sampleBytes,
		DiskCacheDir: dir, Logf: t.Logf})
	httpAddr := ""
	if withHTTP {
		httpAddr = "127.0.0.1:0"
	}
	if err := srv.Start("127.0.0.1:0", httpAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestDiskCacheCrossJobSharing is the two-process sharing acceptance test:
// job A computes two epochs and spills every frame; job B — a fresh Server
// over the same directory, the "second job" — must serve the same epochs
// byte-identical to ground truth with ZERO pipeline recomputation: every
// one of its claims is satisfied by the disk tier (disk batch misses == 0).
func TestDiskCacheCrossJobSharing(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	dir := t.TempDir()
	const epochs = 2

	expected := make([][][]byte, epochs)
	for e := 0; e < epochs; e++ {
		expected[e] = localEpochFrames(t, spec, e)
	}
	planLen := len(expected[0])

	run := func(srv *Server, name string) int {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: name})
		defer c.Close()
		frames := 0
		if _, err := c.Run(epochs, func(b *Batch, payload []byte) {
			frames++
			if !bytes.Equal(payload, expected[b.Epoch][b.GlobalID]) {
				t.Fatalf("%s: epoch %d batch %d differs from ground truth", name, b.Epoch, b.GlobalID)
			}
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return frames
	}

	// Job A: cold directory, computes everything, spills write-through.
	jobA := startDiskCachedServer(t, spec, dir, 64<<20, 0, pipeline.Simulated, 0, true)
	if n := run(jobA, "job-a"); n != epochs*planLen {
		t.Fatalf("job A saw %d frames, want %d", n, epochs*planLen)
	}
	if err := jobA.FlushDiskCache(); err != nil {
		t.Fatal(err)
	}
	stA, ok := jobA.DiskCacheStats()
	if !ok {
		t.Fatal("disk stats unavailable on a disk-enabled server")
	}
	if stA.BatchMisses != int64(epochs*planLen) {
		t.Fatalf("job A should miss disk on every claim: %+v", stA)
	}
	if stA.Spills != int64(epochs*planLen) {
		t.Fatalf("job A should spill every frame: %+v", stA)
	}

	// The /metrics sidecar publishes the disk_cache block.
	resp, err := http.Get("http://" + jobA.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := snap["disk_cache"]; !ok {
		t.Fatal("/metrics is missing the disk_cache block")
	}

	if err := jobA.Close(); err != nil {
		t.Fatal(err)
	}

	// Job B: a different process's server over the same directory. Every
	// claim must land on disk — cluster-wide recomputes == 0.
	jobB := startDiskCachedServer(t, spec, dir, 64<<20, 0, pipeline.Simulated, 0, false)
	if n := run(jobB, "job-b"); n != epochs*planLen {
		t.Fatalf("job B saw %d frames, want %d", n, epochs*planLen)
	}
	stB, _ := jobB.DiskCacheStats()
	if stB.BatchMisses != 0 {
		t.Fatalf("job B recomputed: disk misses %+v", stB)
	}
	if stB.BatchHits != int64(epochs*planLen) {
		t.Fatalf("job B should have hit disk %d times: %+v", epochs*planLen, stB)
	}
	if stB.Rebuilds != 0 {
		t.Fatalf("clean handoff must not rebuild: %+v", stB)
	}
	if err := jobB.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCacheKillRewarm is the SIGKILL-equivalent restart: the manifest
// never made it to disk, so the restarted server rebuilds the index from
// segment scans — and still serves byte-identical frames with zero
// recomputation.
func TestDiskCacheKillRewarm(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	dir := t.TempDir()
	expected := localEpochFrames(t, spec, 0)

	fetch := func(srv *Server, name string) {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: name})
		defer c.Close()
		if _, err := c.Run(1, func(b *Batch, payload []byte) {
			if !bytes.Equal(payload, expected[b.GlobalID]) {
				t.Fatalf("%s: batch %d differs from ground truth", name, b.GlobalID)
			}
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	warm := startDiskCachedServer(t, spec, dir, 64<<20, 0, pipeline.Simulated, 0, false)
	fetch(warm, "warm")
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL-equivalent: the manifest write never happened.
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}

	restarted := startDiskCachedServer(t, spec, dir, 64<<20, 0, pipeline.Simulated, 0, false)
	fetch(restarted, "restarted")
	st, _ := restarted.DiskCacheStats()
	if st.Rebuilds != 1 {
		t.Fatalf("restart without manifest must rebuild once: %+v", st)
	}
	if st.BatchMisses != 0 {
		t.Fatalf("restart recomputed warm entries: %+v", st)
	}
	if st.BatchHits != int64(len(expected)) {
		t.Fatalf("restart should serve all %d batches from disk: %+v", len(expected), st)
	}
}

// TestDiskSampleTierCrossJobSharing exercises the sample-snapshot tier in
// real mode: job A materializes every prefix in epoch 0; job B, a fresh
// server on the same directory asked for a DIFFERENT epoch, restores all
// its prefixes from disk (sample misses == 0) and still serves bytes
// identical to an uncached server's.
func TestDiskSampleTierCrossJobSharing(t *testing.T) {
	spec := workloads.ICASpec(64, 7)
	spec.BatchSize = 16
	spec.NumWorkers = 2
	dir := t.TempDir()

	fetchEpochFrames := func(srv *Server, epoch int, name string) map[int][]byte {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: name})
		defer c.Close()
		if err := c.Connect(); err != nil {
			t.Fatal(err)
		}
		got := make(map[int][]byte)
		if err := c.fetchEpoch(epoch, func(b *Batch, payload []byte) {
			got[b.GlobalID] = append([]byte(nil), payload...)
		}, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return got
	}

	// Ground truth for epoch 1: a plain server with no caches at all.
	plain := New(Config{Spec: spec, Mode: pipeline.RealData, MaterializeDim: 48,
		Prefetch: 2, Logf: t.Logf})
	if err := plain.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	want := fetchEpochFrames(plain, 1, "plain")
	plain.Close()

	// Job A warms the sample tier with epoch 0.
	jobA := startDiskCachedServer(t, spec, dir, 0, 256<<20, pipeline.RealData, 48, false)
	fetchEpochFrames(jobA, 0, "job-a")
	stA, _ := jobA.DiskCacheStats()
	if stA.SampleMisses != int64(spec.NumSamples) {
		t.Fatalf("job A should miss disk once per sample: %+v", stA)
	}
	if err := jobA.Close(); err != nil {
		t.Fatal(err)
	}

	// Job B runs a different epoch: the batch tier could never help, but
	// every deterministic prefix comes back from disk.
	jobB := startDiskCachedServer(t, spec, dir, 0, 256<<20, pipeline.RealData, 48, false)
	got := fetchEpochFrames(jobB, 1, "job-b")
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("frame counts diverge: %d vs %d", len(got), len(want))
	}
	for gid, w := range want {
		if !bytes.Equal(got[gid], w) {
			t.Fatalf("epoch 1 batch %d: disk-restored prefixes changed the bytes", gid)
		}
	}
	stB, _ := jobB.DiskCacheStats()
	if stB.SampleMisses != 0 {
		t.Fatalf("job B recomputed prefixes: %+v", stB)
	}
	if stB.SampleHits != int64(spec.NumSamples) {
		t.Fatalf("job B should restore all %d prefixes from disk: %+v", spec.NumSamples, stB)
	}
	memB, ok := jobB.SampleCacheStats()
	if !ok {
		t.Fatal("sample cache stats unavailable")
	}
	if memB.Misses != int64(spec.NumSamples) {
		t.Fatalf("job B memory-tier misses %d, want %d (each claimed once, then disk-filled)",
			memB.Misses, spec.NumSamples)
	}
	if err := jobB.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCacheBudgetEviction keeps the disk tier under a tiny budget and
// verifies the server still serves correct bytes when old segments are
// evicted mid-run — budget pressure degrades to recompute, never to error.
func TestDiskCacheBudgetEviction(t *testing.T) {
	spec := loopbackSpec()
	dir := t.TempDir()
	expected := make([][][]byte, 2)
	for e := 0; e < 2; e++ {
		expected[e] = localEpochFrames(t, spec, e)
	}
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		BatchCacheBytes: 64 << 20, DiskCacheDir: dir, DiskCacheBytes: 8 << 10,
		DiskSegmentBytes: 4 << 10, Logf: t.Logf})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "evict"})
	defer c.Close()
	if _, err := c.Run(2, func(b *Batch, payload []byte) {
		if !bytes.Equal(payload, expected[b.Epoch][b.GlobalID]) {
			t.Fatalf("epoch %d batch %d differs under disk eviction", b.Epoch, b.GlobalID)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.FlushDiskCache(); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.DiskCacheStats()
	if st.SegmentsEvicted == 0 {
		t.Fatalf("tiny budget should have evicted segments: %+v", st)
	}
	if st.BytesUsed > (8<<10)+(4<<10)+int64(len(expected[0][0]))+64 {
		t.Fatalf("disk usage way over budget: %+v", st)
	}
}

// TestDiskCacheFingerprintIsolation: two servers with different specs over
// the same directory must not see each other's frames — the fingerprint in
// the key keeps the namespaces disjoint.
func TestDiskCacheFingerprintIsolation(t *testing.T) {
	dir := t.TempDir()
	specA := loopbackSpec()
	expectedA := localEpochFrames(t, specA, 0)

	a := startDiskCachedServer(t, specA, dir, 64<<20, 0, pipeline.Simulated, 0, false)
	ca := NewClient(ClientConfig{Addr: a.Addr(), Name: "fp-a"})
	if _, err := ca.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	ca.Close()
	a.Close()

	// Same workload, different seed: every frame changes, so job B must
	// miss the disk everywhere and serve its own (different) ground truth.
	specB := loopbackSpec()
	specB.Seed = specA.Seed + 1
	expectedB := localEpochFrames(t, specB, 0)
	b := startDiskCachedServer(t, specB, dir, 64<<20, 0, pipeline.Simulated, 0, false)
	cb := NewClient(ClientConfig{Addr: b.Addr(), Name: "fp-b"})
	if _, err := cb.Run(1, func(bb *Batch, payload []byte) {
		if !bytes.Equal(payload, expectedB[bb.GlobalID]) {
			t.Fatalf("batch %d: wrong bytes under a shared directory", bb.GlobalID)
		}
		if bytes.Equal(payload, expectedA[bb.GlobalID]) && !bytes.Equal(expectedA[bb.GlobalID], expectedB[bb.GlobalID]) {
			t.Fatalf("batch %d: served the OTHER spec's frame", bb.GlobalID)
		}
	}); err != nil {
		t.Fatal(err)
	}
	cb.Close()
	st, _ := b.DiskCacheStats()
	if st.BatchHits != 0 {
		t.Fatalf("different fingerprint must never hit: %+v", st)
	}
	b.Close()
}
