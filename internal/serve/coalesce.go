package serve

import (
	"net"
	"sync"
	"time"
)

// Connection-level write coalescing. At O(1000) sessions the per-frame
// syscall is the dominant wire cost for small (sim/meta) batches: every
// frame is a writev of header+payload, so 1000 sessions × 20 batches/epoch
// is 20k syscalls per epoch sweep even when every payload is ~100 bytes. A
// frameWriter batches consecutive frames of one connection into a single
// vectored write, bounded three ways:
//
//   - coalesceBytes of pending payload (default 64 KiB),
//   - coalesceFrames pending frames (default 8, the writev iovec budget),
//   - a latency window since the first pending frame (default 1ms).
//
// The session's write loop additionally flushes whenever the *next* frame is
// not already available, so coalescing only ever batches frames that were
// ready anyway — it trades syscalls, not first-frame latency. With
// maxFrames=1 the writer degenerates to exactly the old one-writev-per-frame
// behavior; the server forces that mode when a fault injector is active so
// the wire-fault seams keep their per-frame semantics.
type frameWriter struct {
	conn      net.Conn
	maxBytes  int
	maxFrames int
	window    time.Duration

	// QoS: when gate is non-nil every flush holds one write slot, charged
	// the flushed byte total against the tenant's deficit.
	gate   *fairGate
	tenant string
	weight int

	// onFlush observes each vectored write (frame count) for the coalescing
	// metrics; nil = uncounted.
	onFlush func(frames int)

	hdrs     [][4]byte // preallocated to maxFrames; entries referenced by bufs
	bufs     net.Buffers
	held     []*Frame
	pend     int // pending payload+header bytes
	firstAdd time.Time
}

const (
	defaultCoalesceBytes  = 64 << 10
	defaultCoalesceFrames = 8
	defaultCoalesceWindow = time.Millisecond
)

var frameWriterPool sync.Pool

// newFrameWriter returns a pooled writer for one connection. maxFrames <= 1
// selects immediate mode (every add writes through).
func newFrameWriter(conn net.Conn, maxBytes, maxFrames int, window time.Duration) *frameWriter {
	if maxBytes <= 0 {
		maxBytes = defaultCoalesceBytes
	}
	if maxFrames <= 0 {
		maxFrames = defaultCoalesceFrames
	}
	if window <= 0 {
		window = defaultCoalesceWindow
	}
	w, _ := frameWriterPool.Get().(*frameWriter)
	if w == nil {
		w = &frameWriter{}
	}
	w.conn = conn
	w.maxBytes = maxBytes
	w.maxFrames = maxFrames
	w.window = window
	if cap(w.hdrs) < maxFrames {
		w.hdrs = make([][4]byte, maxFrames)
		w.bufs = make(net.Buffers, 0, 2*maxFrames)
		w.held = make([]*Frame, 0, maxFrames)
	}
	return w
}

// pending reports the number of frames awaiting a flush.
func (w *frameWriter) pending() int { return len(w.held) }

// add enqueues one frame (taking its own reference) and flushes when a bound
// trips. The caller keeps its reference to f.
func (w *frameWriter) add(f *Frame, cancel <-chan struct{}) error {
	payload := f.Bytes()
	i := len(w.held)
	hdr := &w.hdrs[i]
	putU32(hdr[:], uint32(len(payload)))
	w.bufs = append(w.bufs, hdr[:], payload)
	w.held = append(w.held, f.Retain())
	w.pend += len(payload) + 4
	if i == 0 {
		w.firstAdd = time.Now()
	}
	if len(w.held) >= w.maxFrames || w.pend >= w.maxBytes ||
		time.Since(w.firstAdd) >= w.window {
		return w.flush(cancel)
	}
	return nil
}

// flush writes every pending frame as one vectored write. Pending frames are
// released whether or not the write succeeds (the connection is dead on
// error and the stream aborts).
func (w *frameWriter) flush(cancel <-chan struct{}) error {
	n := len(w.held)
	if n == 0 {
		return nil
	}
	if w.gate != nil {
		if err := w.gate.acquire(w.tenant, w.weight, int64(w.pend), cancel); err != nil {
			w.reset()
			return err
		}
	}
	bufs := w.bufs // WriteTo consumes its receiver; w.bufs is reset below
	_, err := bufs.WriteTo(w.conn)
	if w.gate != nil {
		w.gate.release()
	}
	if w.onFlush != nil {
		w.onFlush(n)
	}
	w.reset()
	return err
}

// reset releases pending frames and clears the buffers.
func (w *frameWriter) reset() {
	for i, f := range w.held {
		f.Release()
		w.held[i] = nil
	}
	w.held = w.held[:0]
	for i := range w.bufs {
		w.bufs[i] = nil
	}
	w.bufs = w.bufs[:0]
	w.pend = 0
}

// close releases any pending frames and repools the writer.
func (w *frameWriter) close() {
	w.reset()
	w.conn = nil
	w.gate = nil
	w.onFlush = nil
	frameWriterPool.Put(w)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
