package serve

import (
	"container/list"
	"errors"
	"sync"
	"time"
)

// BatchCache is the server-wide materialized-batch cache: canonical encoded
// Batch frame bytes keyed by (spec fingerprint, epoch, global batch ID).
// Because the epoch plan is deterministic and the encoding canonical, every
// session that needs a given key needs the *same bytes* — so the first
// requester computes the frame once (single-flight) and everyone else either
// hits the ready entry or blocks on the in-flight computation. This is what
// turns the N-clients serving plateau into fan-out: N ranks, cluster ShardReq
// routes, and replication fetches share one preprocessing pass per batch.
//
// Frames are refcounted (Frame) so an entry can be evicted while sessions
// are still writing its bytes to their sockets; eviction follows the LRU
// byte-budget discipline of internal/data.PageCache (container/list, front =
// least recently used, O(1) everything). The budget is a soft bound at the
// granularity of one frame: a frame is always published first and evicted
// by the overflow scan second, so a single frame larger than the whole
// budget still serves its waiters before leaving.
type BatchCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[BatchKey]*cacheEntry
	lru     *list.List // of *cacheEntry; only ready entries are listed
	// spill, when set, receives every published frame and every eviction
	// victim (outside mu, frame reference NOT transferred) so a persistent
	// tier can write-through asynchronously.
	spill func(BatchKey, *Frame)

	hits, misses, waits, evicted, abandoned int64
}

// BatchKey identifies one materialized batch frame. Fingerprint pins the
// frame-determining spec parameters (SpecFingerprint), so a reconfigured
// server can never serve stale bytes out of a persisted or shared cache.
type BatchKey struct {
	Fingerprint uint64
	Epoch       int
	GlobalID    int
}

type entryState int

const (
	entryInFlight entryState = iota
	entryReady
	entryAbandoned
)

// cacheEntry is one key's slot: in-flight (owner computing, waiters parked on
// ready), ready (frame published), or abandoned (owner failed; waiters retry).
// state and frame are written only while holding BatchCache.mu and only
// before close(ready), so a waiter that has observed the close may read both
// without the lock.
type cacheEntry struct {
	key     BatchKey
	state   entryState
	owner   int
	ready   chan struct{}
	frame   *Frame
	size    int64
	waiters int
	elem    *list.Element
}

// ErrCacheWaitTimeout reports that an in-flight computation outlived the
// waiter's patience; callers fall back to computing the batch themselves.
var ErrCacheWaitTimeout = errors.New("serve: batch cache wait timed out")

// NewBatchCache returns a cache bounded to budget bytes of frame payload.
func NewBatchCache(budget int64) *BatchCache {
	return &BatchCache{
		budget:  budget,
		entries: make(map[BatchKey]*cacheEntry),
		lru:     list.New(),
	}
}

// SetSpill installs the write-through hook for the persistent tier. Call
// before the cache is shared across goroutines (the field is read without
// synchronization afterwards). The hook runs outside the cache lock, on the
// fulfilling goroutine, and must not retain the frame beyond the call
// unless it takes its own reference.
func (c *BatchCache) SetSpill(fn func(BatchKey, *Frame)) { c.spill = fn }

// SetBudget retargets the byte budget at runtime (the controller's cache
// knob). Shrinking evicts LRU-first down to the new bound immediately;
// victims spill to the disk tier like any other eviction, so a budget cut
// demotes bytes instead of destroying them.
func (c *BatchCache) SetBudget(budget int64) {
	if budget <= 0 {
		return
	}
	c.mu.Lock()
	c.budget = budget
	victims := c.evictOverLocked()
	c.mu.Unlock()
	for _, v := range victims {
		if c.spill != nil {
			c.spill(v.key, v.frame)
		}
		v.frame.Release()
	}
}

// Claim registers owner as the computer of key if and only if no entry
// exists, without blocking and without touching any frame. Sessions claim
// their whole shard up front at epoch start, which partitions the epoch's
// compute across concurrent sessions exactly once; the stream then fills
// claimed slots from the session's own pipeline and everything else from the
// cache. A true return obligates the caller to eventually Fulfill or Abandon
// the key.
func (c *BatchCache) Claim(key BatchKey, owner int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.misses++
	c.entries[key] = &cacheEntry{
		key:   key,
		owner: owner,
		ready: make(chan struct{}),
	}
	return true
}

// TryGet is a non-blocking probe: a ready entry returns a retained frame
// (counted as a hit and freshened in the LRU); an absent or in-flight entry
// returns nil without registering the caller as anything. The coalescing
// write path uses it to keep batching frames that are already materialized
// without committing to a blocking Wait.
func (c *BatchCache) TryGet(key BatchKey) *Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.state == entryReady {
		c.hits++
		c.lru.MoveToBack(e.elem)
		return e.frame.Retain()
	}
	return nil
}

// GetOrClaim is the streaming-side lookup. Exactly one of the three results
// is meaningful:
//
//   - hit != nil: ready entry; hit carries a reference for the caller.
//   - wait != nil: another owner is computing; pass it to Wait. The caller is
//     registered as a waiter and MUST call Wait (its reference to the
//     eventual frame is pre-paid).
//   - claimed == true: the caller owns the key and must Fulfill or Abandon.
func (c *BatchCache) GetOrClaim(key BatchKey, owner int) (hit *Frame, wait *cacheEntry, claimed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.state == entryReady {
			c.hits++
			c.lru.MoveToBack(e.elem)
			return e.frame.Retain(), nil, false
		}
		c.waits++
		e.waiters++
		return nil, e, false
	}
	c.misses++
	c.entries[key] = &cacheEntry{
		key:   key,
		owner: owner,
		ready: make(chan struct{}),
	}
	return nil, nil, true
}

// Wait parks on an in-flight entry until the owner resolves it, the caller's
// cancel fires, or timeout (0 = no timeout) elapses. On ok=true the returned
// frame carries a reference for the caller. ok=false with a nil error means
// the owner abandoned the claim: retry GetOrClaim (the caller typically wins
// the claim and computes the batch itself).
func (c *BatchCache) Wait(e *cacheEntry, cancel <-chan struct{}, timeout time.Duration) (*Frame, bool, error) {
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-e.ready:
		if e.state == entryReady {
			return e.frame, true, nil // reference pre-paid by Fulfill
		}
		return nil, false, nil // abandoned
	case <-cancel:
		return nil, false, c.unregister(e, errWaitCanceled)
	case <-timeoutCh:
		return nil, false, c.unregister(e, ErrCacheWaitTimeout)
	}
}

var errWaitCanceled = errors.New("serve: batch cache wait canceled")

// unregister withdraws a waiter that gave up. If the entry resolved
// concurrently, the pre-paid reference is returned instead.
func (c *BatchCache) unregister(e *cacheEntry, err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-e.ready:
		if e.state == entryReady {
			e.frame.Release()
		}
	default:
		e.waiters--
	}
	return err
}

// Fulfill publishes the frame for a key the caller claimed. The cache takes
// its own reference and pre-pays one per registered waiter; the caller keeps
// the reference it arrived with. Entries over budget are evicted LRU-first
// after the insert.
func (c *BatchCache) Fulfill(key BatchKey, f *Frame) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.state != entryInFlight {
		c.mu.Unlock()
		panic("serve: BatchCache.Fulfill on a key the caller does not own")
	}
	for i := 0; i < e.waiters+1; i++ { // waiters + the cache's own reference
		f.Retain()
	}
	e.frame = f
	e.size = int64(f.Len())
	e.state = entryReady
	e.elem = c.lru.PushBack(e)
	c.used += e.size
	victims := c.evictOverLocked()
	close(e.ready)
	c.mu.Unlock()
	if c.spill != nil {
		c.spill(key, f)
	}
	for _, v := range victims {
		if c.spill != nil {
			c.spill(v.key, v.frame)
		}
		v.frame.Release()
	}
}

// Abandon resolves a claimed key without data: the entry leaves the cache and
// every waiter wakes to retry (one of them will claim the key). Owners call
// it on pipeline failure, epoch abort, or session teardown; abandoning a key
// that is not an in-flight claim is a no-op, so cleanup paths may call it
// unconditionally.
func (c *BatchCache) Abandon(key BatchKey) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || e.state != entryInFlight {
		c.mu.Unlock()
		return
	}
	e.state = entryAbandoned
	delete(c.entries, key)
	c.abandoned++
	close(e.ready)
	c.mu.Unlock()
}

// Acquire obtains key's frame whatever it takes: cache hit, waiting out
// another session's in-flight computation (bounded by timeout), or computing
// it via compute after claiming. The returned frame always carries a
// reference for the caller. A timed-out wait computes the batch locally
// without touching the stuck claim — liveness never depends on another
// session's progress.
func (c *BatchCache) Acquire(key BatchKey, owner int, cancel <-chan struct{}, timeout time.Duration,
	compute func() (*Frame, error)) (*Frame, error) {
	for {
		hit, wait, claimed := c.GetOrClaim(key, owner)
		if hit != nil {
			return hit, nil
		}
		if claimed {
			f, err := compute()
			if err != nil {
				c.Abandon(key)
				return nil, err
			}
			c.Fulfill(key, f)
			return f, nil
		}
		f, ok, err := c.Wait(wait, cancel, timeout)
		if err != nil {
			if errors.Is(err, ErrCacheWaitTimeout) {
				return compute()
			}
			return nil, err
		}
		if ok {
			return f, nil
		}
		// Owner abandoned: loop and race for the claim.
	}
}

// evictOverLocked pops LRU entries until used fits the budget, returning the
// victim entries (key + frame) so the caller can offer them to the spill
// hook and release the cache references outside the lock. In-flight entries
// are never listed, so only ready frames are evictable; refcounts keep a
// victim's bytes alive for any session still streaming them.
func (c *BatchCache) evictOverLocked() []*cacheEntry {
	var victims []*cacheEntry
	for c.used > c.budget && c.lru.Len() > 0 {
		e := c.lru.Remove(c.lru.Front()).(*cacheEntry)
		delete(c.entries, e.key)
		c.used -= e.size
		c.evicted++
		victims = append(victims, e)
	}
	return victims
}

// BatchCacheStats is the JSON form of the cache counters for /metrics.
type BatchCacheStats struct {
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	SingleflightWait int64 `json:"singleflight_waits"`
	Evicted          int64 `json:"evicted"`
	Abandoned        int64 `json:"abandoned"`
	Entries          int   `json:"entries"`
	BytesUsed        int64 `json:"bytes_used"`
	BytesBudget      int64 `json:"bytes_budget"`
}

// Stats returns a consistent copy of the counters. Misses count claims, i.e.
// pipeline executions started; hits and singleflight waits are requests
// served without one.
func (c *BatchCache) Stats() BatchCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return BatchCacheStats{
		Hits:             c.hits,
		Misses:           c.misses,
		SingleflightWait: c.waits,
		Evicted:          c.evicted,
		Abandoned:        c.abandoned,
		Entries:          len(c.entries),
		BytesUsed:        c.used,
		BytesBudget:      c.budget,
	}
}
