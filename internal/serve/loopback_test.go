package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/tensor"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

func loopbackSpec() workloads.Spec {
	spec := workloads.ICSpec(640, 7)
	spec.BatchSize = 64 // 10 batches per epoch
	spec.NumWorkers = 2
	return spec
}

func startTestServer(t *testing.T, spec workloads.Spec, withHTTP bool) *Server {
	t.Helper()
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2, Logf: t.Logf})
	httpAddr := ""
	if withHTTP {
		httpAddr = "127.0.0.1:0"
	}
	if err := srv.Start("127.0.0.1:0", httpAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// localEpochFrames runs the full epoch through a local simulated DataLoader
// and encodes every batch exactly as the server would — the ground truth for
// the byte-identical serving assertion.
func localEpochFrames(t *testing.T, spec workloads.Spec, epoch int) [][]byte {
	t.Helper()
	plan := BuildEpochPlan(spec.NumSamples, spec.BatchSize, spec.Shuffle, false, spec.Seed, epoch)
	batchPlan := make([][]int, len(plan))
	for i, pb := range plan {
		batchPlan[i] = pb.Indices
	}
	cfg := pipeline.Config{
		BatchSize:      spec.BatchSize,
		NumWorkers:     spec.NumWorkers,
		PrefetchFactor: spec.Prefetch,
		PinMemory:      spec.PinMemory,
		Seed:           spec.Seed,
		Epoch:          epoch,
		BatchPlan:      batchPlan,
		Mode:           pipeline.Simulated,
		Engine:         native.NewEngine(spec.Arch, native.DefaultCPU()),
	}
	ds := spec.Dataset(nil)
	out := make([][]byte, len(plan))
	sim := clock.NewSim()
	sim.Run("local", func(p clock.Proc) {
		dl := pipeline.NewDataLoader(sim, ds, cfg)
		it := dl.Start(p)
		for i := 0; ; i++ {
			b, ok := it.Next(p)
			if !ok {
				if err := it.Err(); err != nil {
					t.Errorf("local loader: %v", err)
				}
				return
			}
			out[i] = EncodeBatch(batchToWire(epoch, i, b))
		}
	})
	return out
}

// TestLoopbackTwoClientsTwoEpochs is the end-to-end acceptance test: two
// concurrent sessions shard two epochs, their shards are disjoint and
// exhaustive, every streamed frame is byte-identical to a local DataLoader
// run over the full plan, and /healthz, /metrics, and /trace serve live data
// mid-stream.
func TestLoopbackTwoClientsTwoEpochs(t *testing.T) {
	// Registered before startTestServer's Close cleanup so it runs after the
	// server has shut down (t.Cleanup is LIFO).
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	srv := startTestServer(t, spec, true)
	const world, epochs = 2, 2

	expected := make([][][]byte, epochs) // [epoch][globalID]payload
	for e := 0; e < epochs; e++ {
		expected[e] = localEpochFrames(t, spec, e)
	}
	planLen := len(expected[0])

	type received struct {
		epoch, globalID int
		payload         []byte
	}
	got := make([][]received, world)
	stats := make([]*FetchStats, world)
	clientErr := make([]error, world)
	firstBatch := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := NewClient(ClientConfig{
				Addr: srv.Addr(), Rank: rank, World: world,
				Name: fmt.Sprintf("loopback-%d", rank),
			})
			defer c.Close()
			stats[rank], clientErr[rank] = c.Run(epochs, func(b *Batch, payload []byte) {
				once.Do(func() { close(firstBatch) })
				got[rank] = append(got[rank], received{b.Epoch, b.GlobalID, payload})
			})
		}(rank)
	}

	// Live observability while batches are in flight: the clients above are
	// still connected (they Close only after Run returns), so the sidecar
	// must report active sessions, sent batches, and trace events.
	select {
	case <-firstBatch:
	case <-time.After(30 * time.Second):
		t.Fatal("no batch arrived within 30s")
	}
	base := "http://" + srv.HTTPAddr()
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz mid-run: %q", health.Status)
	}
	var snap MetricsSnapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.SessionsActive < 1 || snap.BatchesSent < 1 {
		t.Fatalf("metrics mid-run not live: %+v", snap)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	getJSON(t, base+"/trace?granularity=fine", &chrome)
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace mid-run has no events")
	}

	wg.Wait()
	for rank := 0; rank < world; rank++ {
		if clientErr[rank] != nil {
			t.Fatalf("client %d: %v", rank, clientErr[rank])
		}
		if stats[rank].Epochs != epochs {
			t.Fatalf("client %d completed %d epochs, want %d", rank, stats[rank].Epochs, epochs)
		}
		if stats[rank].Retries != 0 {
			t.Fatalf("client %d needed %d retries on loopback", rank, stats[rank].Retries)
		}
	}

	// Shards must be disjoint and exhaustive per epoch, and every frame
	// byte-identical to the local run.
	for e := 0; e < epochs; e++ {
		claimed := make(map[int]int)
		for rank := 0; rank < world; rank++ {
			count := 0
			for _, rec := range got[rank] {
				if rec.epoch != e {
					continue
				}
				count++
				if prev, dup := claimed[rec.globalID]; dup {
					t.Fatalf("epoch %d batch %d streamed to ranks %d and %d", e, rec.globalID, prev, rank)
				}
				claimed[rec.globalID] = rank
				if rec.globalID < 0 || rec.globalID >= planLen {
					t.Fatalf("epoch %d: global id %d out of plan", e, rec.globalID)
				}
				if !bytes.Equal(rec.payload, expected[e][rec.globalID]) {
					t.Fatalf("epoch %d batch %d: served frame differs from local DataLoader", e, rec.globalID)
				}
			}
			if want := ShardSize(planLen, rank, world); count != want {
				t.Fatalf("epoch %d rank %d got %d batches, want %d", e, rank, count, want)
			}
		}
		if len(claimed) != planLen {
			t.Fatalf("epoch %d: clients covered %d of %d batches", e, len(claimed), planLen)
		}
	}

	getJSON(t, base+"/metrics", &snap)
	if want := int64(world * epochs); snap.EpochsServed != want {
		t.Fatalf("epochs_served %d, want %d", snap.EpochsServed, want)
	}

	// Graceful drain: both clients said Bye, so the server empties quickly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

// TestMalformedFramesGetErrorNotPanic throws protocol garbage at a live
// server: every bad connection must be answered with an Error frame and a
// close — never a panic — and the server must keep serving well-formed
// clients afterwards.
func TestMalformedFramesGetErrorNotPanic(t *testing.T) {
	spec := loopbackSpec()
	srv := startTestServer(t, spec, false)

	expectErrorFrame := func(conn net.Conn, context string) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		payload, err := ReadFrame(conn, 0)
		if err != nil {
			t.Fatalf("%s: reading server reply: %v", context, err)
		}
		msg, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("%s: decoding server reply: %v", context, err)
		}
		if _, ok := msg.(ErrorMsg); !ok {
			t.Fatalf("%s: server replied %T, want ErrorMsg", context, msg)
		}
		// The server closes after an Error; the next read must be EOF-ish,
		// not more data.
		if _, err := ReadFrame(conn, 0); err == nil {
			t.Fatalf("%s: server kept talking after Error", context)
		}
	}

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	// Unknown message type as the handshake.
	conn := dial()
	WriteFrame(conn, []byte{0xfe, 1, 2, 3})
	expectErrorFrame(conn, "unknown type")
	conn.Close()

	// Valid handshake, then a truncated EpochReq.
	conn = dial()
	WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion, Rank: 0, World: 1}))
	if _, err := ReadFrame(conn, 0); err != nil {
		t.Fatalf("handshake ack: %v", err)
	}
	WriteFrame(conn, []byte{byte(MsgEpochReq), 0x00})
	expectErrorFrame(conn, "truncated EpochReq")
	conn.Close()

	// Oversized frame header straight away.
	conn = dial()
	conn.Write([]byte{0xff, 0xff, 0xff, 0xff})
	expectErrorFrame(conn, "oversized frame")
	conn.Close()

	// Wrong protocol version.
	conn = dial()
	WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion + 9, Rank: 0, World: 1}))
	expectErrorFrame(conn, "bad version")
	conn.Close()

	// The server must still be fully functional.
	c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "after-garbage"})
	defer c.Close()
	stats, err := c.Run(1, nil)
	if err != nil {
		t.Fatalf("clean client after garbage: %v", err)
	}
	if stats.Batches != 10 {
		t.Fatalf("clean client got %d batches, want 10", stats.Batches)
	}
}

// TestClientRetriesTransientFailures fronts the client with a flaky fake
// server that drops the connection mid-epoch on the first attempt. The
// client must back off, reconnect, re-request the epoch, and end with
// exactly one epoch's worth of batches counted.
func TestClientRetriesTransientFailures(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	mkBatch := func(gid int) []byte {
		return EncodeBatch(&Batch{Epoch: 0, GlobalID: gid, Indices: []int{gid}, Labels: []int{gid},
			Dtype: tensor.Uint8, Shape: []int{1, 8}})
	}

	go func() {
		for attempt := 1; ; attempt++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			func() {
				defer conn.Close()
				if _, err := ReadFrame(conn, 0); err != nil { // Hello
					return
				}
				WriteFrame(conn, EncodeHelloAck(HelloAck{Version: ProtocolVersion, DatasetLen: 2, BatchSize: 1, PlanBatches: 2, ShardBatches: 2}))
				if _, err := ReadFrame(conn, 0); err != nil { // EpochReq
					return
				}
				sum := fnv.New64a()
				p0 := mkBatch(0)
				WriteFrame(conn, p0)
				sum.Write(p0)
				if attempt == 1 {
					return // abrupt mid-epoch disconnect
				}
				p1 := mkBatch(1)
				WriteFrame(conn, p1)
				sum.Write(p1)
				WriteFrame(conn, EncodeEpochEnd(EpochEnd{Epoch: 0, Batches: 2, Checksum: sum.Sum64()}))
				ReadFrame(conn, 0) // Bye or close
			}()
		}
	}()

	var sleeps []time.Duration
	c := NewClient(ClientConfig{
		Addr: ln.Addr().String(), Retries: 3,
		BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	defer c.Close()
	stats, err := c.Run(1, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Retries != 1 {
		t.Fatalf("retries %d, want 1", stats.Retries)
	}
	// The aborted first attempt's partial batch must not be double-counted.
	if stats.Batches != 2 {
		t.Fatalf("batches %d, want 2", stats.Batches)
	}
	// One jittered backoff sleep in [base/2, base).
	if len(sleeps) != 1 || sleeps[0] < 5*time.Millisecond || sleeps[0] >= 10*time.Millisecond {
		t.Fatalf("backoff sleeps %v, want one sleep in [5ms, 10ms)", sleeps)
	}
}

// TestServerErrorIsFatal: a deliberate server-side refusal must not be
// retried.
func TestServerErrorIsFatal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := ReadFrame(conn, 0); err != nil {
					return
				}
				WriteFrame(conn, EncodeHelloAck(HelloAck{Version: ProtocolVersion}))
				if _, err := ReadFrame(conn, 0); err != nil {
					return
				}
				WriteFrame(conn, EncodeError(ErrorMsg{Message: "nope"}))
			}()
		}
	}()

	var sleeps []time.Duration
	c := NewClient(ClientConfig{
		Addr:  ln.Addr().String(),
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	defer c.Close()
	stats, err := c.Run(1, nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v, want ServerError", err)
	}
	if stats.Retries != 0 || len(sleeps) != 0 {
		t.Fatalf("fatal error was retried: retries=%d sleeps=%v", stats.Retries, sleeps)
	}
}

// TestBackoffSchedule: each attempt's sleep lands in the jittered window
// [cap/2, cap) of the exponential schedule 10, 20, 40, 80, 80, 80 ms.
func TestBackoffSchedule(t *testing.T) {
	c := NewClient(ClientConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond})
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		lo, hi := w*time.Millisecond/2, w*time.Millisecond
		if got := c.backoff(i + 1); got < lo || got >= hi {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v)", i+1, got, lo, hi)
		}
	}
}

// TestBackoffSchedulesDiverge pins the lockstep-retry fix: two clients with
// different identities must not compute the same backoff schedule, or a
// server restart makes the whole fleet reconnect in synchronized waves. The
// same identity must still be reproducible run to run.
func TestBackoffSchedulesDiverge(t *testing.T) {
	mk := func(name string, rank int) []time.Duration {
		c := NewClient(ClientConfig{Name: name, Rank: rank, World: 4,
			BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond})
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = c.backoff(i + 1)
		}
		return out
	}
	a, b := mk("trainer-0", 0), mk("trainer-1", 1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("two distinct clients computed identical schedules %v — lockstep retries", a)
	}
	// Determinism: the same identity replays the same schedule.
	a2 := mk("trainer-0", 0)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatalf("same identity diverged between runs: %v vs %v", a, a2)
		}
	}
	// An explicit JitterSeed overrides the identity-derived one.
	c1 := NewClient(ClientConfig{JitterSeed: 7, BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond})
	c2 := NewClient(ClientConfig{JitterSeed: 7, Name: "other", BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond})
	for i := 0; i < 6; i++ {
		if d1, d2 := c1.backoff(i+1), c2.backoff(i+1); d1 != d2 {
			t.Fatalf("same JitterSeed produced different schedules at attempt %d: %v vs %v", i+1, d1, d2)
		}
	}
}

// TestShutdownForcesIdleSessions: a connected-but-idle client cannot hold
// the drain open past its budget; Shutdown reports the deadline and all
// connections are gone.
func TestShutdownForcesIdleSessions(t *testing.T) {
	spec := loopbackSpec()
	srv := startTestServer(t, spec, false)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion, Rank: 0, World: 1}))
	if _, err := ReadFrame(conn, 0); err != nil {
		t.Fatalf("handshake: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("forced drain hung")
	}
	// The session's connection is force-closed.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil && !errors.Is(err, io.EOF) {
		// reset or EOF both mean closed; a deadline error means it hung open
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			t.Fatal("connection still open after forced drain")
		}
	}
	// New connections are refused.
	if c2, err := net.Dial("tcp", srv.Addr()); err == nil {
		c2.Close()
		t.Fatal("listener still accepting after drain")
	}
}
