package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTokenBucketPacing pins the debt-model arithmetic: take always
// succeeds, the balance may go negative, and the returned delay repays the
// debt at exactly the configured rate.
func TestTokenBucketPacing(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newTokenBucket(1000, 1000, t0) // 1000 tokens/sec, burst 1000

	if d := b.take(1000, t0); d != 0 {
		t.Fatalf("burst take delayed %v, want 0", d)
	}
	if d := b.take(500, t0); d != 500*time.Millisecond {
		t.Fatalf("debt take delayed %v, want 500ms", d)
	}
	// One second later the bucket refilled 1000: balance -500+1000 = 500.
	t1 := t0.Add(time.Second)
	if d := b.take(250, t1); d != 0 {
		t.Fatalf("refilled take delayed %v, want 0", d)
	}
	// Refill never exceeds burst.
	t2 := t1.Add(time.Hour)
	if d := b.take(1500, t2); d != 500*time.Millisecond {
		t.Fatalf("capped-burst take delayed %v, want 500ms", d)
	}
}

// TestFairGateFastPath: an uncontended gate is a decrement, no queues built.
func TestFairGateFastPath(t *testing.T) {
	g := newFairGate(2, 0)
	for i := 0; i < 10; i++ {
		if err := g.acquire("a", 1, 100, nil); err != nil {
			t.Fatal(err)
		}
		g.release()
	}
	grants, queued := g.stats()
	if grants != 10 || queued != 0 {
		t.Fatalf("grants=%d queued=%d, want 10 grants with nothing queued", grants, queued)
	}
	if len(g.queues) != 0 {
		t.Fatalf("fast path built %d tenant queues", len(g.queues))
	}
}

// drainGrantOrder queues `per` equal-cost waiters for each tenant (in slice
// order) against a gate whose single slot is held, then releases the slot
// and records the order in which tenants are granted. Each grantee reports
// itself before releasing, so with one slot the channel order is exactly the
// scheduler's grant order.
func drainGrantOrder(t *testing.T, g *fairGate, tenants []string, weights []int, cost int64, per int) []string {
	t.Helper()
	if err := g.acquire("holder", 1, 1, nil); err != nil { // pin the slot
		t.Fatal(err)
	}
	order := make(chan string, len(tenants)*per)
	var wg sync.WaitGroup
	for ti, name := range tenants {
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func(name string, w int) {
				defer wg.Done()
				if err := g.acquire(name, w, cost, nil); err != nil {
					t.Error(err)
					return
				}
				order <- name
				g.release()
			}(name, weights[ti])
			// Enqueue one at a time so ring order is deterministic.
			waitForQueued(t, g, ti*per+i+1)
		}
	}
	g.release() // free the pinned slot; grants cascade one at a time
	wg.Wait()
	close(order)
	var got []string
	for name := range order {
		got = append(got, name)
	}
	return got
}

func waitForQueued(t *testing.T, g *fairGate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		w := g.waiting
		g.mu.Unlock()
		if w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters queued", w, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFairGateWeightedOrder pins deficit-weighted fairness under the
// sequential single-slot regime: with quantum == cost, a weight-2 tenant
// must receive exactly two grants per scheduling round to the weight-1
// tenant's one — the regression case for re-crediting a queue on dispatch
// resume, which would collapse weights to plain round robin.
func TestFairGateWeightedOrder(t *testing.T) {
	g := newFairGate(1, 100)
	got := drainGrantOrder(t, g, []string{"heavy", "light"}, []int{2, 1}, 100, 6)
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light",
		"heavy", "heavy", "light", "light", "light", "light"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want %v", got, want)
	}
}

// TestFairGateEqualWeightsInterleave: equal weights alternate regardless of
// how many waiters each tenant has queued.
func TestFairGateEqualWeightsInterleave(t *testing.T) {
	g := newFairGate(1, 100)
	got := drainGrantOrder(t, g, []string{"a", "b"}, []int{1, 1}, 100, 4)
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want %v", got, want)
	}
}

// TestFairGateCancel: a canceled waiter returns errQoSCanceled, does not
// leak a slot, and does not block later waiters.
func TestFairGateCancel(t *testing.T) {
	g := newFairGate(1, 0)
	if err := g.acquire("holder", 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- g.acquire("victim", 1, 1, cancel) }()
	waitForQueued(t, g, 1)
	close(cancel)
	if err := <-errCh; err != errQoSCanceled {
		t.Fatalf("canceled acquire returned %v, want errQoSCanceled", err)
	}
	g.release()
	// The slot must be immediately acquirable: the canceled waiter left no
	// phantom claim behind.
	done := make(chan error, 1)
	go func() { done <- g.acquire("next", 1, 1, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire blocked after canceled waiter")
	}
	g.release()
}

// TestThrottleDeterministic drives qosState with an injected clock and
// sleeper: the pacing delays are pure token-bucket arithmetic.
func TestThrottleDeterministic(t *testing.T) {
	qs := newQoSState(map[string]TenantLimit{
		"capped": {BytesPerSec: 1000, BurstBytes: 1000},
	}, TenantLimit{}, 1, 1, 0)
	now := time.Unix(2000, 0)
	var slept []time.Duration
	qs.now = func() time.Time { return now }
	qs.sleep = func(d time.Duration, cancel <-chan struct{}) bool {
		slept = append(slept, d)
		now = now.Add(d) // sleeping advances the virtual clock
		return true
	}

	capped := qs.tenant("capped")
	free := qs.tenant("free")
	for i := 0; i < 3; i++ {
		if err := qs.throttle(capped, 1000, nil); err != nil {
			t.Fatal(err)
		}
		if err := qs.throttle(free, 1<<20, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Frame 1 spends the burst; frames 2 and 3 each owe a full second.
	want := []time.Duration{time.Second, time.Second}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("throttle sleeps %v, want %v", slept, want)
	}
	snap := qs.snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot rows %d, want 2", len(snap))
	}
	if snap[0].Tenant != "capped" || snap[0].ThrottledMs != 2000 {
		t.Fatalf("capped row %+v, want 2000ms throttled", snap[0])
	}
	if snap[1].Tenant != "free" || snap[1].ThrottledMs != 0 {
		t.Fatalf("free row %+v, want 0ms throttled", snap[1])
	}
}

// TestFairPacerLeadBound pins the bounded-lead arithmetic: a tenant with no
// active peers is never paced, a leader is paced once it runs maxLead past
// the slowest active peer, and it resumes as the laggard advances.
func TestFairPacerLeadBound(t *testing.T) {
	p := newFairPacer(1000, 100*time.Millisecond, time.Millisecond)
	now := time.Unix(3000, 0)

	// Alone, "a" charges freely no matter how far it runs.
	for i := 0; i < 5; i++ {
		if w := p.admit("a", 1, 10_000, now); w != 0 {
			t.Fatalf("solo admit %d paced %v", i, w)
		}
	}

	// "b" joins: it fast-forwards to the active floor (a's vtime), so "a"
	// holds no exploitable lead and "b" owes no catch-up debt.
	if w := p.admit("b", 1, 100, now); w != 0 {
		t.Fatalf("joining tenant paced %v", w)
	}
	// a: 50_000, b: 50_100. a may lead b by at most 1000 bytes, and the
	// lead is checked before each charge.
	if w := p.admit("a", 1, 600, now); w != 0 { // lead -100 -> a: 50_600
		t.Fatalf("in-bound admit paced %v", w)
	}
	if w := p.admit("a", 1, 600, now); w != 0 { // lead 500 -> a: 51_200
		t.Fatalf("in-bound admit paced %v", w)
	}
	if w := p.admit("a", 1, 600, now); w != p.step { // lead 1100 > 1000: paced
		t.Fatalf("over-lead admit returned %v, want step %v", w, p.step)
	}
	// The laggard is never paced, and its progress releases the leader.
	if w := p.admit("b", 1, 600, now); w != 0 { // b: 50_700
		t.Fatalf("laggard paced %v", w)
	}
	if w := p.admit("a", 1, 600, now); w != 0 { // lead 500 again
		t.Fatalf("released leader paced %v", w)
	}
	if p.stats() == 0 {
		t.Fatal("paced counter never incremented")
	}

	// Once "b" idles past the window it stops constraining "a".
	later := now.Add(time.Second)
	if w := p.admit("a", 1, 1_000_000, later); w != 0 {
		t.Fatalf("admit with expired peer paced %v", w)
	}
}

// TestFairPacerWeights: a weight-2 tenant's vtime advances at half the rate
// per byte, so it may serve twice the bytes before hitting the same lead.
func TestFairPacerWeights(t *testing.T) {
	p := newFairPacer(1000, 100*time.Millisecond, time.Millisecond)
	now := time.Unix(4000, 0)
	p.admit("light", 1, 1, now) // floor at ~0
	served := 0
	for p.admit("heavy", 2, 100, now) == 0 {
		served += 100
		if served > 10_000 {
			t.Fatal("weight-2 lead never bound")
		}
	}
	// Lead bound 1000 vtime units = 2000 weighted bytes for weight 2.
	if served < 2000 || served > 2200 {
		t.Fatalf("weight-2 tenant served %d bytes before pacing, want ~2000", served)
	}
}

// TestPaceCancelAndClock drives qosState.pace with an injected clock: the
// paced tenant sleeps in steps until the laggard ages out, and a canceled
// pace returns errQoSCanceled.
func TestPaceCancelAndClock(t *testing.T) {
	qs := newQoSState(nil, TenantLimit{}, 1, 1, 1000)
	now := time.Unix(5000, 0)
	var slept time.Duration
	qs.now = func() time.Time { return now }
	qs.sleep = func(d time.Duration, cancel <-chan struct{}) bool {
		slept += d
		now = now.Add(d)
		return true
	}

	lag := qs.tenant("lag")
	lead := qs.tenant("lead")
	if err := qs.pace(lag, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := qs.pace(lead, 5000, nil); err != nil { // joins at floor, charges past lead
		t.Fatal(err)
	}
	// Next charge exceeds the 1000-byte lead; with the laggard silent the
	// pacer steps until the laggard leaves the 100ms active window.
	if err := qs.pace(lead, 5000, nil); err != nil {
		t.Fatal(err)
	}
	if slept < 99*time.Millisecond || slept > 110*time.Millisecond {
		t.Fatalf("paced tenant slept %v, want ~the 100ms active window", slept)
	}
	snap := qs.snapshot()
	if snap[1].Tenant != "lead" || snap[1].PacedMs < 99 {
		t.Fatalf("lead row %+v, want ~100 paced_ms", snap[1])
	}
	if snap[0].Tenant != "lag" || snap[0].PacedMs != 0 {
		t.Fatalf("lag row %+v, want 0 paced_ms", snap[0])
	}

	// A canceled pace unblocks immediately.
	qs.sleep = func(d time.Duration, cancel <-chan struct{}) bool { return false }
	if err := qs.pace(lag, 100, nil); err != nil { // refresh laggard activity
		t.Fatal(err)
	}
	if err := qs.pace(lead, 1_000_000, nil); err != nil { // admitted, runs far ahead
		t.Fatal(err)
	}
	if err := qs.pace(lead, 1, nil); err != errQoSCanceled {
		t.Fatalf("canceled pace returned %v, want errQoSCanceled", err)
	}
}

// TestJainIndex pins the fairness metric at its two boundary shapes.
func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{5, 5, 5, 5}); j < 0.999 {
		t.Fatalf("equal shares scored %f, want 1", j)
	}
	if j := JainIndex([]float64{10, 0, 0, 0}); j < 0.249 || j > 0.251 {
		t.Fatalf("one-takes-all scored %f, want 0.25", j)
	}
	if j := JainIndex(nil); j != 1 {
		t.Fatalf("empty scored %f, want 1", j)
	}
}

// TestLogLimiter: a burst beyond the bucket is suppressed and counted, never
// dropped silently.
func TestLogLimiter(t *testing.T) {
	logged := 0
	l := newLogLimiter(5, func(string, ...any) { logged++ })
	for i := 0; i < 50; i++ {
		l.Logf("line %d", i)
	}
	sup := l.suppressed.Load()
	if int64(logged)+sup != 50 {
		t.Fatalf("logged %d + suppressed %d != 50", logged, sup)
	}
	// Burst is 2x rate = 10 tokens; a tight loop refills essentially nothing.
	if logged < 5 || logged > 15 {
		t.Fatalf("logged %d lines, want about the 10-token burst", logged)
	}
	if sup < 35 {
		t.Fatalf("suppressed %d, want the bulk of the storm", sup)
	}

	// Negative rate = unlimited, nothing suppressed.
	logged = 0
	l = newLogLimiter(-1, func(string, ...any) { logged++ })
	for i := 0; i < 50; i++ {
		l.Logf("x")
	}
	if logged != 50 || l.suppressed.Load() != 0 {
		t.Fatalf("unlimited limiter logged %d, suppressed %d", logged, l.suppressed.Load())
	}
}
