// Package serve implements the disaggregated preprocessing service: a
// long-running TCP server that wraps the internal/pipeline DataLoader behind
// a length-prefixed binary wire protocol, serving collated tensor batches to
// multiple concurrent client sessions with per-session epoch sharding,
// bounded server-side prefetch (backpressure), graceful drain, and live
// observability over an HTTP sidecar (/healthz, /metrics, /trace).
//
// This is the step after a fast local hot path that tf.data service and the
// disaggregated-preprocessing literature take: many trainers share one pool
// of preprocessing workers, caches, and the LotusTrace instrumentation the
// repository already has.
//
// # Wire format
//
// Every frame is a 4-byte big-endian payload length followed by the payload;
// the payload's first byte is the message type. Integers are big-endian;
// strings are a u16 length plus UTF-8 bytes. A frame longer than the
// negotiated maximum, an unknown type, or a payload that does not parse
// exactly is malformed: the server answers with an Error frame and closes
// the session (it never panics on remote input).
//
//	client -> server: Hello{version, rank, world, name}
//	server -> client: HelloAck{version, datasetLen, batchSize, planBatches, shardBatches, mode, workload}
//	client -> server: EpochReq{epoch}            (rank/world shard of the epoch)
//	client -> server: ShardReq{epoch, ids}       (explicit batch-ID subset — cluster routing)
//	server -> client: Batch{epoch, globalID, indices, labels, dtype, shape, payload}...
//	server -> client: EpochEnd{epoch, batches, fnv1a checksum of batch payloads}
//	client -> server: Bye{} (or just closes)
//	server -> client: Error{message} before closing on any failure
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"lotus/internal/tensor"
)

// Protocol constants.
const (
	// ProtocolVersion is bumped on incompatible wire changes.
	ProtocolVersion = 1
	// DefaultMaxFrame bounds one frame's payload; larger frames are
	// malformed. Large enough for a real-mode collated batch.
	DefaultMaxFrame = 64 << 20
	// MaxWorld bounds the shard count a Hello may request.
	MaxWorld = 4096
	// maxTensorRank bounds a batch tensor's rank on the wire.
	maxTensorRank = 8
)

// MsgType discriminates frame payloads.
type MsgType byte

const (
	MsgHello    MsgType = 0x01
	MsgHelloAck MsgType = 0x02
	MsgEpochReq MsgType = 0x03
	MsgBatch    MsgType = 0x04
	MsgEpochEnd MsgType = 0x05
	MsgError    MsgType = 0x06
	MsgBye      MsgType = 0x07
	// MsgShardReq is additive (protocol version unchanged): servers that
	// predate it answer with a clean Error frame, which a cluster router
	// treats like any other node failure.
	MsgShardReq MsgType = 0x08
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgHelloAck:
		return "HelloAck"
	case MsgEpochReq:
		return "EpochReq"
	case MsgBatch:
		return "Batch"
	case MsgEpochEnd:
		return "EpochEnd"
	case MsgError:
		return "Error"
	case MsgBye:
		return "Bye"
	case MsgShardReq:
		return "ShardReq"
	}
	return fmt.Sprintf("MsgType(0x%02x)", byte(t))
}

// ErrMalformed tags every decode failure; errors.Is(err, ErrMalformed)
// distinguishes protocol violations from I/O errors.
var ErrMalformed = errors.New("serve: malformed frame")

// Hello is the client's session request.
type Hello struct {
	Version int
	// Rank / World select the session's static shard: the session receives
	// epoch plan batches i with i % World == Rank.
	Rank, World int
	// Name labels the session in metrics.
	Name string
	// Tenant identifies the paying principal the session belongs to, for
	// per-tenant QoS (rate limits and weighted-fair scheduling). Empty means
	// the default tenant. Like the ShardReq hedge byte, the field is an
	// additive trailing string inside the same message (every Hello peer in
	// this codebase emits and expects it).
	Tenant string
}

// HelloAck is the server's session acceptance.
type HelloAck struct {
	Version int
	// DatasetLen is the number of samples in the served dataset.
	DatasetLen int
	// BatchSize is the serving batch size.
	BatchSize int
	// PlanBatches is the full per-epoch plan length; ShardBatches is this
	// session's share of it.
	PlanBatches  int
	ShardBatches int
	// Mode is 0 for simulated (meta tensors) and 1 for real payloads.
	Mode byte
	// Workload names the served pipeline (IC, IS, OD).
	Workload string
}

// EpochReq asks the server to stream the session's shard of one epoch.
type EpochReq struct {
	Epoch int
}

// ShardReq asks the server to stream an explicit subset of one epoch's batch
// plan, identified by global batch IDs, in the order given. This is the
// cluster routing primitive: the batch plan — not the rank/world pair —
// defines the work, so a router can re-issue exactly the unserved IDs of a
// dead node to a survivor. IDs must be in-range, duplicate-free plan
// positions.
type ShardReq struct {
	Epoch int
	IDs   []int
	// Hedge marks the request as a speculative re-issue by a straggler-
	// mitigating router: the stream is identical, but the server accounts the
	// traffic separately so hedge storms are visible on /metrics.
	Hedge bool
}

// Batch is the wire form of one collated batch. U8/F32 mirror
// tensor.Tensor: both nil for a meta (shape-only) tensor.
type Batch struct {
	Epoch    int
	GlobalID int
	Indices  []int
	Labels   []int
	Dtype    tensor.DType
	Shape    []int
	U8       []uint8
	F32      []float32
}

// Tensor reconstructs the batch's collated tensor.
func (b *Batch) Tensor() *tensor.Tensor {
	t := tensor.Meta(b.Dtype, b.Shape...)
	t.U8 = b.U8
	t.F32 = b.F32
	return t
}

// EpochEnd terminates an epoch stream.
type EpochEnd struct {
	Epoch   int
	Batches int
	// Checksum is FNV-1a 64 folded over every batch frame payload of the
	// epoch, in order, so the client can verify stream integrity.
	Checksum uint64
}

// Error codes carried by ErrorMsg.Code. CodeFatal is the zero value every
// pre-existing error site uses; CodeBusy marks an admission-control rejection
// the client should retry with backoff rather than treat as fatal.
const (
	CodeFatal byte = 0
	CodeBusy  byte = 1
)

// ErrorMsg carries a server-side error; the server closes the session after
// sending it. Code distinguishes retryable overload (CodeBusy) from fatal
// protocol or pipeline failures (CodeFatal); it is an additive trailing byte
// in the same message (the ShardReq hedge-byte precedent).
type ErrorMsg struct {
	Message string
	Code    byte
}

// Bye is the client's clean goodbye.
type Bye struct{}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

// WriteFrame writes one length-prefixed frame. payload must already start
// with the message type byte. Header and payload go out as one vectored
// write (writev on a TCP conn): a single syscall per frame and no risk of a
// header-only packet when Nagle is off. The payload is not copied, which is
// what lets cached sessions stream one shared immutable frame buffer to many
// connections.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(w)
	return err
}

// ReadFrame reads one frame's payload, enforcing maxFrame (0 means
// DefaultMaxFrame). It returns io.EOF on a clean connection close at a frame
// boundary and ErrMalformed-wrapped errors on protocol violations.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrMalformed)
	}
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit %d", ErrMalformed, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// EncodeHello renders a Hello frame payload.
func EncodeHello(h Hello) []byte {
	b := []byte{byte(MsgHello)}
	b = appendU16(b, uint16(h.Version))
	b = appendU32(b, uint32(h.Rank))
	b = appendU32(b, uint32(h.World))
	b = appendStr(b, h.Name)
	return appendStr(b, h.Tenant)
}

// EncodeHelloAck renders a HelloAck frame payload.
func EncodeHelloAck(a HelloAck) []byte {
	b := []byte{byte(MsgHelloAck)}
	b = appendU16(b, uint16(a.Version))
	b = appendU32(b, uint32(a.DatasetLen))
	b = appendU32(b, uint32(a.BatchSize))
	b = appendU32(b, uint32(a.PlanBatches))
	b = appendU32(b, uint32(a.ShardBatches))
	b = append(b, a.Mode)
	return appendStr(b, a.Workload)
}

// EncodeEpochReq renders an EpochReq frame payload.
func EncodeEpochReq(r EpochReq) []byte {
	b := []byte{byte(MsgEpochReq)}
	return appendU32(b, uint32(r.Epoch))
}

// EncodeShardReq renders a ShardReq frame payload. The trailing hedge byte
// rides inside the same additive message (every ShardReq peer in this
// codebase emits and expects it; a strict pre-hedge decoder would reject the
// frame with a clean Error, which a router treats as a node failure).
func EncodeShardReq(r ShardReq) []byte {
	b := make([]byte, 0, 1+4+4+4*len(r.IDs)+1)
	b = append(b, byte(MsgShardReq))
	b = appendU32(b, uint32(r.Epoch))
	b = appendU32(b, uint32(len(r.IDs)))
	for _, id := range r.IDs {
		b = appendU32(b, uint32(id))
	}
	hedge := byte(0)
	if r.Hedge {
		hedge = 1
	}
	return append(b, hedge)
}

// batchWireSize returns the exact encoded length of a Batch frame payload,
// so encode buffers can be sized without growth reallocations.
func batchWireSize(m *Batch) int {
	size := 1 + 4 + 4 + 4 + 8*len(m.Indices) + 1 + 1 + 4*len(m.Shape) + 1
	if m.U8 != nil || m.F32 != nil {
		size += 4 + len(m.U8) + 4*len(m.F32)
	}
	return size
}

// EncodeBatch renders a Batch frame payload. The encoding is deterministic,
// so two batches with identical content encode to identical bytes — the
// property the byte-identical serving test asserts. The serving hot path
// avoids this allocation via encodeBatchFrame (pooled buffers); EncodeBatch
// stays as the allocate-per-call form for clients and tests.
func EncodeBatch(m *Batch) []byte {
	return AppendBatch(make([]byte, 0, batchWireSize(m)), m)
}

// AppendBatch appends the canonical Batch frame encoding to dst and returns
// the extended slice. It is the single encoder behind EncodeBatch and the
// pooled frame path, so both produce byte-identical output by construction.
func AppendBatch(dst []byte, m *Batch) []byte {
	b := dst
	b = append(b, byte(MsgBatch))
	b = appendU32(b, uint32(m.Epoch))
	b = appendU32(b, uint32(m.GlobalID))
	b = appendU32(b, uint32(len(m.Indices)))
	for _, idx := range m.Indices {
		b = appendU32(b, uint32(idx))
	}
	for _, l := range m.Labels {
		b = appendU32(b, uint32(int32(l)))
	}
	b = append(b, byte(m.Dtype))
	b = append(b, byte(len(m.Shape)))
	for _, d := range m.Shape {
		b = appendU32(b, uint32(d))
	}
	switch {
	case m.U8 != nil:
		b = append(b, 1)
		b = appendU32(b, uint32(len(m.U8)))
		b = append(b, m.U8...)
	case m.F32 != nil:
		b = append(b, 1)
		b = appendU32(b, uint32(4*len(m.F32)))
		for _, v := range m.F32 {
			b = appendU32(b, math.Float32bits(v))
		}
	default:
		b = append(b, 0)
	}
	return b
}

// EncodeEpochEnd renders an EpochEnd frame payload.
func EncodeEpochEnd(e EpochEnd) []byte {
	b := []byte{byte(MsgEpochEnd)}
	b = appendU32(b, uint32(e.Epoch))
	b = appendU32(b, uint32(e.Batches))
	return appendU64(b, e.Checksum)
}

// EncodeError renders an Error frame payload.
func EncodeError(e ErrorMsg) []byte {
	b := []byte{byte(MsgError)}
	b = appendStr(b, e.Message)
	return append(b, e.Code)
}

// EncodeBye renders a Bye frame payload.
func EncodeBye() []byte { return []byte{byte(MsgBye)} }

// EncodeMessage renders any wire message (used by the round-trip fuzz test).
func EncodeMessage(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case Hello:
		return EncodeHello(m), nil
	case HelloAck:
		return EncodeHelloAck(m), nil
	case EpochReq:
		return EncodeEpochReq(m), nil
	case ShardReq:
		return EncodeShardReq(m), nil
	case *Batch:
		return EncodeBatch(m), nil
	case EpochEnd:
		return EncodeEpochEnd(m), nil
	case ErrorMsg:
		return EncodeError(m), nil
	case Bye:
		return EncodeBye(), nil
	}
	return nil, fmt.Errorf("serve: cannot encode %T", msg)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

// dec is a bounds-checked cursor over a frame payload. Every read method
// reports malformed input through err instead of panicking; remote bytes
// must never be able to crash the server.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrMalformed}, args...)...)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated u8 at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 2 {
		d.fail("truncated u16 at offset %d", d.off)
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("truncated u32 at offset %d", d.off)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated u64 at offset %d", d.off)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.fail("truncated %d-byte field at offset %d", n, d.off)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) str() string {
	n := int(d.u16())
	return string(d.bytes(n))
}

// count validates an element count against the bytes still available, so a
// forged count cannot trigger a huge allocation.
func (d *dec) count(elemBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n > d.remaining()/elemBytes {
		d.fail("element count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return nil
}

// DecodeMessage parses a frame payload into its typed message. It never
// panics on malformed input; failures wrap ErrMalformed.
func DecodeMessage(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrMalformed)
	}
	d := &dec{b: payload, off: 1}
	switch MsgType(payload[0]) {
	case MsgHello:
		h := Hello{}
		h.Version = int(d.u16())
		h.Rank = int(d.u32())
		h.World = int(d.u32())
		h.Name = d.str()
		h.Tenant = d.str()
		if err := d.done(); err != nil {
			return nil, err
		}
		if h.World < 1 || h.World > MaxWorld || h.Rank < 0 || h.Rank >= h.World {
			return nil, fmt.Errorf("%w: invalid shard rank %d of world %d", ErrMalformed, h.Rank, h.World)
		}
		return h, nil
	case MsgHelloAck:
		a := HelloAck{}
		a.Version = int(d.u16())
		a.DatasetLen = int(d.u32())
		a.BatchSize = int(d.u32())
		a.PlanBatches = int(d.u32())
		a.ShardBatches = int(d.u32())
		a.Mode = d.u8()
		a.Workload = d.str()
		if err := d.done(); err != nil {
			return nil, err
		}
		return a, nil
	case MsgEpochReq:
		r := EpochReq{Epoch: int(d.u32())}
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	case MsgShardReq:
		r := ShardReq{Epoch: int(d.u32())}
		n := d.count(4)
		if d.err == nil {
			r.IDs = make([]int, n)
			for i := range r.IDs {
				r.IDs[i] = int(d.u32())
			}
		}
		switch h := d.u8(); h {
		case 0:
		case 1:
			r.Hedge = true
		default:
			d.fail("shardreq hedge flag %d", h)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	case MsgBatch:
		return decodeBatch(d)
	case MsgEpochEnd:
		e := EpochEnd{}
		e.Epoch = int(d.u32())
		e.Batches = int(d.u32())
		e.Checksum = d.u64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return e, nil
	case MsgError:
		e := ErrorMsg{Message: d.str()}
		e.Code = d.u8()
		if err := d.done(); err != nil {
			return nil, err
		}
		return e, nil
	case MsgBye:
		if err := d.done(); err != nil {
			return nil, err
		}
		return Bye{}, nil
	}
	return nil, fmt.Errorf("%w: unknown message type 0x%02x", ErrMalformed, payload[0])
}

func decodeBatch(d *dec) (*Batch, error) {
	m := &Batch{}
	m.Epoch = int(d.u32())
	m.GlobalID = int(d.u32())
	n := d.count(8) // each sample costs >= 8 bytes (index + label)
	if d.err == nil {
		m.Indices = make([]int, n)
		for i := range m.Indices {
			m.Indices[i] = int(d.u32())
		}
		m.Labels = make([]int, n)
		for i := range m.Labels {
			m.Labels[i] = int(int32(d.u32()))
		}
	}
	dtype := d.u8()
	if d.err == nil && dtype != byte(tensor.Uint8) && dtype != byte(tensor.Float32) {
		d.fail("unknown dtype %d", dtype)
	}
	m.Dtype = tensor.DType(dtype)
	rank := int(d.u8())
	if d.err == nil && rank > maxTensorRank {
		d.fail("tensor rank %d exceeds limit %d", rank, maxTensorRank)
	}
	if d.err == nil {
		m.Shape = make([]int, rank)
		elems := uint64(1)
		for i := range m.Shape {
			dim := d.u32()
			m.Shape[i] = int(dim)
			elems *= uint64(dim)
			if elems > uint64(DefaultMaxFrame) {
				d.fail("tensor shape %v overflows the frame limit", m.Shape[:i+1])
				break
			}
		}
	}
	if mat := d.u8(); d.err == nil && mat == 1 {
		nbytes := int(d.u32())
		if d.err == nil {
			want := tensor.NumElems(m.Shape) * m.Dtype.Size()
			if nbytes != want {
				d.fail("payload %d bytes does not match shape %v dtype %s (%d bytes)",
					nbytes, m.Shape, m.Dtype, want)
			}
		}
		raw := d.bytes(nbytes)
		if d.err == nil {
			switch m.Dtype {
			case tensor.Uint8:
				// make (not append on a nil slice) so a zero-length
				// materialized payload still round-trips as non-nil.
				m.U8 = make([]uint8, nbytes)
				copy(m.U8, raw)
			case tensor.Float32:
				m.F32 = make([]float32, nbytes/4)
				for i := range m.F32 {
					m.F32[i] = math.Float32frombits(binary.BigEndian.Uint32(raw[4*i:]))
				}
			}
		}
	} else if d.err == nil && mat != 0 {
		d.fail("bad materialized flag %d", mat)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return m, nil
}
