package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"lotus/internal/control"
	"lotus/internal/core/trace"
	"lotus/internal/pipeline"
)

// This file is the server-side driver of the internal/control loop: it
// assembles Signals from counters the server already exports (the trace
// ring's T2 wait records, the per-session prefetch-queue gauges, the three
// cache tiers' stats) and applies the controller's Actions to the live
// knobs — pipeline worker count and prefetch factor for epochs in flight
// and epochs to come, and the byte budgets of the batch, sample, and disk
// caches.
//
// The tick point is epoch completion (after Metrics.AddEpoch), and the
// controller keys every decision off the epochs-served counter, so in sim
// mode the loop is deterministic: the same workload history produces the
// same action sequence, and no goroutine samples the wall clock to decide
// anything.

// controlPID is the trace PID actuation records are filed under; it sits
// below every session's private pid range (session pids are
// pipeline.MainPID + streamSeq*Config.TracePIDStride, so never below
// pipeline.MainPID = 4000) and controller spans can never collide with
// pipeline spans regardless of the configured stride.
const controlPID = 999

// tuner binds one Server to one control.Controller.
type tuner struct {
	srv      *Server
	ctrl     *control.Controller
	longWait time.Duration

	// workers/prefetch mirror the controller's pipeline knobs for lock-free
	// reads on the epoch-start path (produceClaimed).
	workers  atomic.Int64
	prefetch atomic.Int64

	// loaders is the registry of DataLoaders currently running an epoch;
	// a worker-count action resizes them mid-epoch via RequestResize.
	mu      sync.Mutex
	loaders map[*pipeline.DataLoader]struct{}
}

func newTuner(s *Server, cfg control.Config, longWait time.Duration) *tuner {
	spec := s.cfg.Spec
	initial := control.Knobs{
		Workers:     spec.NumWorkers,
		Prefetch:    spec.Prefetch,
		BatchBytes:  s.cfg.BatchCacheBytes,
		SampleBytes: s.cfg.SampleCacheBytes,
		DiskBytes:   s.cfg.DiskCacheBytes,
	}
	if initial.Workers <= 0 {
		initial.Workers = pipeline.DefaultAutoWorkers
	}
	if initial.Prefetch <= 0 {
		initial.Prefetch = 2
	}
	if longWait <= 0 {
		longWait = 500 * time.Millisecond
	}
	t := &tuner{
		srv:      s,
		ctrl:     control.NewController(cfg, initial),
		longWait: longWait,
		loaders:  make(map[*pipeline.DataLoader]struct{}),
	}
	knobs := t.ctrl.Knobs()
	t.workers.Store(int64(knobs.Workers))
	t.prefetch.Store(int64(knobs.Prefetch))
	return t
}

// pipelineKnobs reads the current worker/prefetch targets for a starting
// epoch pipeline.
func (t *tuner) pipelineKnobs() (workers, prefetch int) {
	return int(t.workers.Load()), int(t.prefetch.Load())
}

func (t *tuner) register(dl *pipeline.DataLoader) {
	t.mu.Lock()
	t.loaders[dl] = struct{}{}
	t.mu.Unlock()
}

func (t *tuner) unregister(dl *pipeline.DataLoader) {
	t.mu.Lock()
	delete(t.loaders, dl)
	t.mu.Unlock()
}

// observe is the control tick: called by whichever session goroutine just
// completed an epoch. It snapshots the signals, runs the controller, and
// applies every returned action.
func (t *tuner) observe() {
	for _, a := range t.ctrl.Observe(t.signals()) {
		t.apply(a)
	}
}

// signals assembles one observation from the server's live counters.
func (t *tuner) signals() control.Signals {
	s := t.srv
	sig := control.Signals{Counter: s.metrics.EpochsServed()}

	// T2 wait window: every KindBatchWait record still in the ring.
	var waitSum time.Duration
	var long int64
	for _, r := range s.ring.Snapshot() {
		if r.Kind != trace.KindBatchWait {
			continue
		}
		sig.WaitCount++
		waitSum += r.Dur
		if r.Dur >= t.longWait {
			long++
		}
	}
	if sig.WaitCount > 0 {
		sig.LongWaitFrac = float64(long) / float64(sig.WaitCount)
		sig.MeanWait = waitSum / time.Duration(sig.WaitCount)
	}
	sig.QueueFill = s.metrics.QueueFill(s.cfg.Prefetch)

	if st, ok := s.CacheStats(); ok {
		sig.Batch = control.CacheSignals{Enabled: true, Hits: st.Hits, Misses: st.Misses,
			Evictions: st.Evicted, BytesUsed: st.BytesUsed, BytesBudget: st.BytesBudget}
	}
	if st, ok := s.SampleCacheStats(); ok {
		sig.Sample = control.CacheSignals{Enabled: true, Hits: st.Hits, Misses: st.Misses,
			Evictions: st.Evicted, BytesUsed: st.BytesUsed, BytesBudget: st.BytesBudget}
	}
	if st, ok := s.DiskCacheStats(); ok {
		sig.Disk = control.CacheSignals{Enabled: true,
			Hits: st.BatchHits + st.SampleHits, Misses: st.BatchMisses + st.SampleMisses,
			Evictions: st.SegmentsEvicted, BytesUsed: st.BytesUsed, BytesBudget: st.BytesBudget}
	}
	return sig
}

// apply actuates one controller action: worker actions resize every live
// loader and retarget future epochs, prefetch actions take effect at the
// next epoch, cache actions retarget the tier's byte budget immediately.
// Every action lands in the trace ring as a `control` op so a /trace
// export shows exactly when the loop intervened.
func (t *tuner) apply(a control.Action) {
	switch a.Knob {
	case "workers":
		t.workers.Store(a.To)
		t.mu.Lock()
		for dl := range t.loaders {
			dl.RequestResize(int(a.To))
		}
		t.mu.Unlock()
	case "prefetch":
		t.prefetch.Store(a.To)
	case "cache.batch":
		if t.srv.cache != nil {
			t.srv.cache.SetBudget(a.To)
		}
	case "cache.sample":
		if t.srv.sampleCache != nil {
			t.srv.sampleCache.SetBudget(a.To)
		}
	case "cache.disk":
		if t.srv.disk != nil {
			t.srv.disk.SetBudget(a.To)
		}
	}
	t.srv.ring.Add(trace.Record{Kind: trace.KindOp, PID: controlPID,
		BatchID: int(a.Tick), SampleIndex: -1, Op: "control:" + a.Knob,
		Start: time.Now()})
	t.srv.cfg.Logf("lotus-serve: autotune: %s", a)
}

// ControlStats is the /metrics `control` block: current knob settings plus
// the full actuation history.
type ControlStats struct {
	Workers  int              `json:"workers"`
	Prefetch int              `json:"prefetch"`
	Actions  []control.Action `json:"actions"`
}

// ControlStats reports the autotuner's knobs and history; ok is false when
// autotuning is disabled.
func (s *Server) ControlStats() (ControlStats, bool) {
	if s.tuner == nil {
		return ControlStats{}, false
	}
	knobs := s.tuner.ctrl.Knobs()
	return ControlStats{
		Workers:  knobs.Workers,
		Prefetch: knobs.Prefetch,
		Actions:  s.tuner.ctrl.History(),
	}, true
}
