package serve

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"lotus/internal/tensor"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	enc, err := EncodeMessage(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, enc); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	payload, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	if !bytes.Equal(payload, enc) {
		t.Fatal("frame payload corrupted in transit")
	}
	out, err := DecodeMessage(payload)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return out
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []any{
		Hello{Version: 1, Rank: 2, World: 5, Name: "trainer-a"},
		Hello{Version: 1, Rank: 0, World: 1, Name: ""},
		Hello{Version: 1, Rank: 1, World: 4, Name: "trainer-b", Tenant: "team-vision"},
		HelloAck{Version: 1, DatasetLen: 5120, BatchSize: 128, PlanBatches: 40, ShardBatches: 20, Mode: 1, Workload: "IC"},
		EpochReq{Epoch: 3},
		ShardReq{Epoch: 4, IDs: []int{7, 0, 3}},
		ShardReq{Epoch: 0, IDs: []int{}},
		ShardReq{Epoch: 2, IDs: []int{5, 1}, Hedge: true},
		&Batch{Epoch: 1, GlobalID: 7, Indices: []int{4, 9, 1}, Labels: []int{0, -1, 2},
			Dtype: tensor.Float32, Shape: []int{3, 3, 224, 224}},
		&Batch{Epoch: 0, GlobalID: 0, Indices: []int{1}, Labels: []int{5},
			Dtype: tensor.Uint8, Shape: []int{1, 4}, U8: []uint8{1, 2, 3, 4}},
		&Batch{Epoch: 2, GlobalID: 3, Indices: []int{2, 6}, Labels: []int{1, 1},
			Dtype: tensor.Float32, Shape: []int{2, 2}, F32: []float32{0.5, -1.25, 3e8, 0}},
		EpochEnd{Epoch: 2, Batches: 20, Checksum: 0xdeadbeefcafef00d},
		ErrorMsg{Message: "server draining"},
		ErrorMsg{Message: "server busy: session limit reached", Code: CodeBusy},
		Bye{},
	}
	for _, msg := range msgs {
		out := roundTrip(t, msg)
		if !reflect.DeepEqual(out, msg) {
			t.Errorf("round trip changed %T:\n in: %#v\nout: %#v", msg, msg, out)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown type", []byte{0xff, 1, 2, 3}},
		{"truncated hello", EncodeHello(Hello{Version: 1, World: 1})[:4]},
		{"hello rank out of world", func() []byte {
			b := EncodeHello(Hello{Version: 1, Rank: 0, World: 2})
			b[6] = 9 // low byte of rank -> rank 9 >= world 2
			return b
		}()},
		{"hello world zero", func() []byte {
			b := EncodeHello(Hello{Version: 1, Rank: 0, World: 1})
			b[7+3] = 0
			return b
		}()},
		{"trailing garbage", append(EncodeEpochReq(EpochReq{Epoch: 1}), 0)},
		{"truncated shardreq ids", EncodeShardReq(ShardReq{Epoch: 1, IDs: []int{1, 2, 3}})[:11]},
		{"shardreq forged count", func() []byte {
			b := EncodeShardReq(ShardReq{Epoch: 1, IDs: []int{1}})
			b[5+3] = 0xff // inflate the id count far past the payload
			return b
		}()},
		{"shardreq missing hedge flag", EncodeShardReq(ShardReq{Epoch: 1, IDs: []int{1}})[:13]},
		{"shardreq bogus hedge flag", func() []byte {
			b := EncodeShardReq(ShardReq{Epoch: 1, IDs: []int{1}})
			b[len(b)-1] = 7
			return b
		}()},
		{"batch forged count", func() []byte {
			b := EncodeBatch(&Batch{Indices: []int{1}, Labels: []int{1}, Dtype: tensor.Uint8})
			b[9+3] = 0xff // inflate the sample count far past the payload
			return b
		}()},
		{"batch bad dtype", func() []byte {
			b := EncodeBatch(&Batch{Indices: []int{1}, Labels: []int{1}, Dtype: tensor.Uint8})
			b[len(b)-3] = 0x7f
			return b
		}()},
		{"batch payload size mismatch", func() []byte {
			b := EncodeBatch(&Batch{Indices: []int{1}, Labels: []int{1},
				Dtype: tensor.Uint8, Shape: []int{4}, U8: []uint8{1, 2, 3, 4}})
			return b[:len(b)-1]
		}()},
	}
	for _, tc := range cases {
		msg, err := DecodeMessage(tc.payload)
		if err == nil {
			t.Errorf("%s: decoded to %#v, want error", tc.name, msg)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", tc.name, err)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB frame
	if _, err := ReadFrame(&buf, 1<<20); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized frame: got %v, want ErrMalformed", err)
	}

	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // empty payload
	if _, err := ReadFrame(&buf, 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty frame: got %v, want ErrMalformed", err)
	}

	buf.Reset()
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("clean close: got %v, want io.EOF", err)
	}

	buf.Reset()
	buf.Write([]byte{0, 0, 0, 8, 1, 2}) // header promises 8, delivers 2
	if _, err := ReadFrame(&buf, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestBatchTensorReconstruction(t *testing.T) {
	b := &Batch{Dtype: tensor.Uint8, Shape: []int{2, 3}, U8: []uint8{1, 2, 3, 4, 5, 6}}
	tt := b.Tensor()
	if tt.Dtype != tensor.Uint8 || !reflect.DeepEqual(tt.Shape, []int{2, 3}) {
		t.Fatalf("tensor meta: %v %v", tt.Dtype, tt.Shape)
	}
	if len(tt.U8) != 6 {
		t.Fatalf("tensor payload lost: %d bytes", len(tt.U8))
	}
}
