package serve

import (
	"sync"
	"sync/atomic"
)

// Frame is one encoded Batch payload in a refcounted, pool-backed buffer.
// The serving hot path produces every batch exactly once as a Frame; the
// bytes are immutable from then on, shared by the session that produced them,
// the batch cache, and every session that hits the cache. The last Release
// returns both the buffer and the Frame header to their sync.Pools, which is
// the PR 1 imaging-pool discipline applied to the wire layer: explicit
// ownership, power-of-two size classes, zero steady-state allocation.
//
// Reference rules: every *Frame a caller receives (encodeBatchFrame, cache
// GetOrClaim hit, cache Wait, cache Acquire) carries one reference owned by
// that caller, released with exactly one Release. Retain adds a reference for
// a new owner. Bytes must not be mutated or retained past the owner's
// Release.
type Frame struct {
	b    []byte
	box  *[]byte // pooled backing-buffer box; recycled with the frame
	refs atomic.Int32
}

var (
	framePool    sync.Pool // *Frame headers
	frameBufPool sync.Pool // *[]byte payload buffers, pow2 capacities
)

// frameBufFor returns a boxed zero-length buffer with capacity >= n, reusing
// a pooled buffer when one is big enough. The box pointer travels with the
// Frame so Release can repool it without re-boxing (which would allocate).
func frameBufFor(n int) *[]byte {
	if p, _ := frameBufPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		*p = (*p)[:0]
		return p
	}
	// Pool miss or undersized buffer: drop the small one (re-pooling it would
	// just hand it back on the next Get, thrashing forever once frame sizes
	// grow) and let the pool converge on the serving spec's frame class.
	b := make([]byte, 0, roundUpPow2(n))
	return &b
}

// roundUpPow2 rounds n up to the next power of two so pooled buffers fall
// into a handful of size classes instead of one class per batch geometry.
func roundUpPow2(n int) int {
	if n <= 0 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newFrame wraps an already-encoded boxed buffer in a pooled Frame with one
// reference owned by the caller. The Frame takes ownership of the box, which
// must have come from frameBufFor.
func newFrame(box *[]byte) *Frame {
	f, _ := framePool.Get().(*Frame)
	if f == nil {
		f = &Frame{}
	}
	f.b = *box
	f.box = box
	f.refs.Store(1)
	return f
}

// encodeBatchFrame encodes m into a pooled Frame — the zero-allocation
// (steady state) form of EncodeBatch, byte-identical by construction because
// both call AppendBatch.
func encodeBatchFrame(m *Batch) *Frame {
	box := frameBufFor(batchWireSize(m))
	*box = AppendBatch(*box, m)
	return newFrame(box)
}

// Bytes exposes the encoded payload. Valid only while the caller holds a
// reference; never mutate it.
func (f *Frame) Bytes() []byte { return f.b }

// Len reports the payload length.
func (f *Frame) Len() int { return len(f.b) }

// Retain adds one reference for a new owner and returns f for chaining.
func (f *Frame) Retain() *Frame {
	if f.refs.Add(1) <= 1 {
		panic("serve: Frame.Retain on a released frame")
	}
	return f
}

// Release drops one reference; the last one recycles the buffer and the
// Frame header.
func (f *Frame) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("serve: Frame over-released")
	}
	box := f.box
	f.b, f.box = nil, nil
	if box != nil {
		*box = (*box)[:0]
		frameBufPool.Put(box)
	}
	framePool.Put(f)
}
