package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"time"

	"lotus/internal/rng"
)

// ClientConfig parameterizes a fetch client.
type ClientConfig struct {
	// Addr is the server's wire address (host:port).
	Addr string
	// Addrs, when non-empty, is an ordered endpoint list the client falls
	// back across: each Connect tries the current endpoint first and then the
	// rest in rotation, and a dropped connection advances the rotation so the
	// next reconnect starts on a different endpoint. Addr, when also set, is
	// treated as the first entry. Every endpoint must serve the same workload
	// spec — epoch streams are byte-identical across such replicas, so
	// failing over mid-run preserves the client's integrity checks.
	Addrs []string
	// Rank/World select this client's shard of every epoch plan. World <= 1
	// means the full plan.
	Rank, World int
	// Name labels the session in server metrics.
	Name string
	// Tenant identifies the QoS accounting bucket this session bills to.
	// Empty means the server's default tenant; servers without QoS ignore it.
	Tenant string
	// MaxFrame bounds accepted frames (default DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Retries is how many reconnect-and-retry attempts each epoch gets after
	// a transient failure (default 4). Fatal server errors are never retried.
	Retries int
	// BackoffBase/BackoffMax shape the exponential backoff between retries
	// (defaults 50ms and 2s); attempt k sleeps a jittered duration in
	// [min(base<<(k-1), max)/2, min(base<<(k-1), max)).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the deterministic backoff jitter that desynchronizes
	// reconnect waves. 0 derives a per-client seed from Rank and Name, so
	// distinct clients diverge by default while any one client's schedule
	// stays reproducible.
	JitterSeed int64
	// OnRetry, when set, observes every retry decision.
	OnRetry func(epoch, attempt int, err error)
	// Sleep replaces time.Sleep for the backoff wait (tests inject a virtual
	// sleeper; nil = time.Sleep).
	Sleep func(time.Duration)
}

// ServerError is an error the server reported in an Error frame. Code
// distinguishes deliberate refusals (CodeFatal — never retried: the server is
// alive and said no) from transient overload (CodeBusy — admission control
// turned the connection away; the client retries it through the same jittered
// backoff as a dropped socket).
type ServerError struct {
	Message string
	Code    byte
}

func (e *ServerError) Error() string { return "serve: server error: " + e.Message }

// Client streams preprocessed batches from a lotus-serve instance. Not safe
// for concurrent use; run one Client per goroutine. The one concession to
// concurrency is Kick, which may be called from any goroutine to sever the
// live connection and unblock the owner.
type Client struct {
	cfg     ClientConfig
	addrs   []string
	addrIdx int
	// connMu guards the conn pointer itself (not the stream): the owner
	// goroutine reads and writes it freely between operations, while Kick
	// snapshots it from outside.
	connMu  sync.Mutex
	conn    net.Conn
	ack     HelloAck
	haveAck bool
	jitter  *rng.Stream
}

// NewClient returns an unconnected client; the first Run or Connect dials.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.World < 1 {
		cfg.World = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.Name))
		seed = int64(h.Sum64()) ^ int64(cfg.Rank+1)*2654435761
	}
	addrs := make([]string, 0, len(cfg.Addrs)+1)
	if cfg.Addr != "" {
		addrs = append(addrs, cfg.Addr)
	}
	for _, a := range cfg.Addrs {
		if a != "" && a != cfg.Addr {
			addrs = append(addrs, a)
		}
	}
	return &Client{cfg: cfg, addrs: addrs, jitter: rng.New(seed, "serve/backoff")}
}

// Ack returns the server's handshake response once connected.
func (c *Client) Ack() (HelloAck, bool) { return c.ack, c.haveAck }

// Addr reports the endpoint the next Connect will try first (the connected
// endpoint while a connection is live).
func (c *Client) Addr() string {
	if len(c.addrs) == 0 {
		return c.cfg.Addr
	}
	return c.addrs[c.addrIdx]
}

// Connect dials and handshakes if not already connected. With a multi-entry
// endpoint list it tries each endpoint once, starting from the rotation
// cursor, and sticks with the first that completes a handshake — a dead
// endpoint costs one dial timeout, not the whole retry budget.
func (c *Client) Connect() error {
	if c.conn != nil {
		return nil
	}
	if len(c.addrs) == 0 {
		return errors.New("serve: client has no endpoints configured")
	}
	var lastErr error
	for i := 0; i < len(c.addrs); i++ {
		idx := (c.addrIdx + i) % len(c.addrs)
		if err := c.connectTo(c.addrs[idx]); err != nil {
			// A refused handshake (e.g. "server draining") falls through to
			// the next replica like a dead socket would; it only surfaces —
			// as a fatal ServerError — when every endpoint refused.
			lastErr = err
			continue
		}
		c.addrIdx = idx
		return nil
	}
	return lastErr
}

// connectTo dials and handshakes one endpoint.
func (c *Client) connectTo(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	hello := Hello{Version: ProtocolVersion, Rank: c.cfg.Rank, World: c.cfg.World,
		Name: c.cfg.Name, Tenant: c.cfg.Tenant}
	if err := WriteFrame(conn, EncodeHello(hello)); err != nil {
		conn.Close()
		return err
	}
	msg, err := c.readMessage(conn)
	if err != nil {
		conn.Close()
		return err
	}
	ack, ok := msg.(HelloAck)
	if !ok {
		conn.Close()
		return fmt.Errorf("serve: handshake: expected HelloAck, got %T", msg)
	}
	c.setConn(conn)
	c.ack = ack
	c.haveAck = true
	return nil
}

// setConn publishes the conn pointer under connMu so Kick sees a consistent
// snapshot from other goroutines.
func (c *Client) setConn(conn net.Conn) {
	c.connMu.Lock()
	c.conn = conn
	c.connMu.Unlock()
}

// Kick severs the live connection from any goroutine: the owner's blocking
// read fails with a closed-connection error and its next call redials. The
// cluster router uses it to release a round from a degraded node whose
// outstanding work a hedge already delivered. Kick never clears the pointer —
// teardown stays with the owning goroutine (drop/Close).
func (c *Client) Kick() {
	c.connMu.Lock()
	conn := c.conn
	c.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))
	WriteFrame(c.conn, EncodeBye())
	err := c.conn.Close()
	c.setConn(nil)
	return err
}

// drop abandons the connection without protocol niceties (it is presumed
// broken) and advances the endpoint rotation so the next Connect leads with
// a different replica.
func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.setConn(nil)
	}
	if len(c.addrs) > 1 {
		c.addrIdx = (c.addrIdx + 1) % len(c.addrs)
	}
}

func (c *Client) readMessage(conn net.Conn) (any, error) {
	payload, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil {
		return nil, err
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		return nil, err
	}
	if e, ok := msg.(ErrorMsg); ok {
		return nil, &ServerError{Message: e.Message, Code: e.Code}
	}
	return msg, nil
}

// FetchStats summarizes a Run.
type FetchStats struct {
	Epochs  int
	Batches int
	Bytes   int64
	Retries int
	Elapsed time.Duration
	// Hist buckets per-batch arrival latency (time between consecutive
	// frames, or request-to-first-frame).
	Hist LatencyHist
}

// BatchesPerSec is the end-to-end streamed-batch throughput.
func (s *FetchStats) BatchesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Batches) / s.Elapsed.Seconds()
}

// Run streams epochs 0..epochs-1 of this client's shard, invoking onBatch
// (may be nil) for every decoded batch with its raw frame payload. Transient
// failures — connection refused, resets, mid-stream EOF — are retried with
// exponential backoff by reconnecting and re-requesting the failed epoch.
// Fatal ServerErrors abort immediately.
func (c *Client) Run(epochs int, onBatch func(b *Batch, payload []byte)) (*FetchStats, error) {
	stats := &FetchStats{}
	start := time.Now()
	defer func() { stats.Elapsed = time.Since(start) }()
	for e := 0; e < epochs; e++ {
		attempt := 0
		for {
			err := c.fetchEpoch(e, onBatch, stats)
			if err == nil {
				stats.Epochs++
				break
			}
			var se *ServerError
			if errors.As(err, &se) && se.Code != CodeBusy {
				return stats, err
			}
			// CodeBusy falls through: admission control asked this client to
			// come back later, and the jittered backoff below is exactly the
			// desynchronized retry the server is counting on.
			c.drop()
			if attempt >= c.cfg.Retries {
				return stats, fmt.Errorf("serve: epoch %d failed after %d attempts: %w", e, attempt+1, err)
			}
			attempt++
			stats.Retries++
			if c.cfg.OnRetry != nil {
				c.cfg.OnRetry(e, attempt, err)
			}
			c.cfg.Sleep(c.backoff(attempt))
		}
	}
	return stats, nil
}

// backoff returns the sleep before retry attempt k (1-based): exponential
// with a cap, then jittered into [d/2, d) by the client's seeded stream.
// Without jitter, every client a server restart disconnects computes the
// identical schedule and the whole fleet reconnects in synchronized waves
// that re-overload the server in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.cfg.BackoffMax {
			d = c.cfg.BackoffMax
			break
		}
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	return half + time.Duration(c.jitter.Float64()*float64(half))
}

// FetchShard requests exactly the given global batch IDs of one epoch and
// streams them, invoking onBatch per decoded batch. It is single-shot: any
// failure (dial, mid-stream EOF, checksum mismatch) is returned without
// retrying, because the caller — a cluster router — must recompute which IDs
// are still unserved before re-requesting, possibly from a different node.
// The connection is dropped on error so the next call redials.
func (c *Client) FetchShard(epoch int, ids []int, onBatch func(b *Batch, payload []byte)) error {
	return c.fetchShard(epoch, ids, false, onBatch)
}

// FetchShardHedged is FetchShard with the request marked speculative, so the
// serving node accounts hedge traffic separately on /metrics. The stream
// itself is identical — hedged batches are byte-identical to primaries.
func (c *Client) FetchShardHedged(epoch int, ids []int, onBatch func(b *Batch, payload []byte)) error {
	return c.fetchShard(epoch, ids, true, onBatch)
}

func (c *Client) fetchShard(epoch int, ids []int, hedge bool, onBatch func(b *Batch, payload []byte)) error {
	if err := c.Connect(); err != nil {
		return err
	}
	if err := WriteFrame(c.conn, EncodeShardReq(ShardReq{Epoch: epoch, IDs: ids, Hedge: hedge})); err != nil {
		c.drop()
		return err
	}
	if err := c.consumeEpoch(epoch, len(ids), onBatch, nil); err != nil {
		// A ServerError leaves the socket just as dead as an I/O failure —
		// the server closes the connection after an Error frame — so drop
		// unconditionally and let the next call redial.
		c.drop()
		return err
	}
	return nil
}

// fetchEpoch requests one epoch and consumes its batch stream. Counters are
// only credited for epochs that complete (partial streams are re-fetched
// whole, so crediting partial progress would double-count).
func (c *Client) fetchEpoch(epoch int, onBatch func(*Batch, []byte), stats *FetchStats) error {
	if err := c.Connect(); err != nil {
		return err
	}
	if err := WriteFrame(c.conn, EncodeEpochReq(EpochReq{Epoch: epoch})); err != nil {
		return err
	}
	return c.consumeEpoch(epoch, -1, onBatch, stats)
}

// consumeEpoch reads one epoch's batch stream until EpochEnd, verifying the
// batch count (against wantBatches when >= 0, and always against the
// server's EpochEnd count) and the FNV-1a stream checksum. stats, when
// non-nil, is credited only on success.
func (c *Client) consumeEpoch(epoch, wantBatches int, onBatch func(*Batch, []byte), stats *FetchStats) error {
	sum := fnv.New64a()
	batches := 0
	var bytes int64
	var hist LatencyHist
	last := time.Now()
	for {
		payload, err := ReadFrame(c.conn, c.cfg.MaxFrame)
		if err != nil {
			return err
		}
		msg, err := DecodeMessage(payload)
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *Batch:
			if m.Epoch != epoch {
				return fmt.Errorf("serve: batch for epoch %d during epoch %d", m.Epoch, epoch)
			}
			now := time.Now()
			hist.Record(now.Sub(last))
			last = now
			sum.Write(payload)
			batches++
			bytes += int64(len(payload)) + 4
			if onBatch != nil {
				onBatch(m, payload)
			}
		case EpochEnd:
			if m.Epoch != epoch {
				return fmt.Errorf("serve: end of epoch %d during epoch %d", m.Epoch, epoch)
			}
			if m.Batches != batches {
				return fmt.Errorf("serve: epoch %d: got %d batches, server sent %d", epoch, batches, m.Batches)
			}
			if wantBatches >= 0 && batches != wantBatches {
				return fmt.Errorf("serve: epoch %d: got %d batches, requested %d", epoch, batches, wantBatches)
			}
			if m.Checksum != sum.Sum64() {
				return fmt.Errorf("serve: epoch %d: stream checksum mismatch", epoch)
			}
			if stats != nil {
				stats.Batches += batches
				stats.Bytes += bytes
				stats.Hist.Merge(&hist)
			}
			return nil
		case ErrorMsg:
			return &ServerError{Message: m.Message, Code: m.Code}
		default:
			return fmt.Errorf("serve: unexpected %T in epoch stream", msg)
		}
	}
}

// LatencyHist is a fixed power-of-two histogram of batch arrival latencies,
// bucket i covering (2^(i-1), 2^i] microseconds; the last bucket is open.
type LatencyHist struct {
	Counts [24]int64
	Total  int64
	Sum    time.Duration
	Max    time.Duration
}

// Record adds one observation.
func (h *LatencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Counts[bucketOf(d)]++
	h.Total++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
}

// Merge folds other into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i, n := range other.Counts {
		h.Counts[i] += n
	}
	h.Total += other.Total
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Mean is the average observation.
func (h *LatencyHist) Mean() time.Duration {
	if h.Total == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Total)
}

// Quantile returns the latency at quantile p (clamped to [0,1]) by linear
// interpolation inside the owning log bucket: the fraction f of the bucket's
// count below the target maps to lo + f*(hi-lo), where (lo, hi] are the
// bucket bounds. Observations that all land on a bucket boundary 2^k µs are
// reported exactly (Quantile(1) of such a histogram is 2^k µs), and the
// result is monotone in p. The open last bucket interpolates toward Max.
// The cluster router's hedging trigger is built on this: a node whose
// in-flight shard exceeds Quantile(HedgeQuantile) of recent cluster latency
// is presumed degraded.
func (h *LatencyHist) Quantile(p float64) time.Duration {
	if h.Total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.Total)
	var cum float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < target {
			continue
		}
		f := (target - prev) / float64(n)
		if f < 0 {
			f = 0
		}
		lo, hi := bucketBounds(i, h.Max)
		q := lo + time.Duration(f*float64(hi-lo))
		// A sparse top bucket interpolates past the largest observation;
		// no quantile can exceed it.
		if q > h.Max {
			q = h.Max
		}
		return q
	}
	return h.Max
}

// bucketBounds returns bucket i's (lo, hi] latency bounds; the open last
// bucket is capped by the observed max.
func bucketBounds(i int, max time.Duration) (lo, hi time.Duration) {
	if i > 0 {
		lo = time.Duration(1<<(i-1)) * time.Microsecond
	}
	if i == len(LatencyHist{}.Counts)-1 {
		hi = max
		if hi < lo {
			hi = lo
		}
		return lo, hi
	}
	return lo, time.Duration(1<<i) * time.Microsecond
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	for i := 0; i < len(LatencyHist{}.Counts)-1; i++ {
		if us <= 1<<i {
			return i
		}
	}
	return len(LatencyHist{}.Counts) - 1
}

// bucketLabel renders bucket i's upper bound.
func bucketLabel(i int) string {
	if i == len(LatencyHist{}.Counts)-1 {
		return fmt.Sprintf(">%s", time.Duration(1<<(i-1))*time.Microsecond)
	}
	return fmt.Sprintf("<=%s", time.Duration(1<<i)*time.Microsecond)
}

// String renders the non-empty buckets as an ASCII histogram.
func (h *LatencyHist) String() string {
	if h.Total == 0 {
		return "(no samples)"
	}
	var peak int64
	for _, n := range h.Counts {
		if n > peak {
			peak = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "batch latency: n=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
		h.Total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max.Round(time.Microsecond))
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", int(1+n*39/peak))
		fmt.Fprintf(&b, "  %10s %7d %s\n", bucketLabel(i), n, bar)
	}
	return strings.TrimRight(b.String(), "\n")
}
