package serve

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// TestShardReqServing: an explicit batch-ID subset is streamed in request
// order, each frame byte-identical to the full-plan ground truth — the
// primitive a cluster router builds failover on.
func TestShardReqServing(t *testing.T) {
	spec := loopbackSpec()
	srv := startTestServer(t, spec, false)
	expected := localEpochFrames(t, spec, 0)

	c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "shard-req"})
	defer c.Close()
	want := []int{7, 2, 5}
	var gotIDs []int
	var gotPayloads [][]byte
	if err := c.FetchShard(0, want, func(b *Batch, payload []byte) {
		gotIDs = append(gotIDs, b.GlobalID)
		gotPayloads = append(gotPayloads, append([]byte(nil), payload...))
	}); err != nil {
		t.Fatalf("FetchShard: %v", err)
	}
	if len(gotIDs) != len(want) {
		t.Fatalf("got %d batches, want %d", len(gotIDs), len(want))
	}
	for i, id := range want {
		if gotIDs[i] != id {
			t.Fatalf("position %d: batch %d, want %d (request order must be preserved)", i, gotIDs[i], id)
		}
		if !bytes.Equal(gotPayloads[i], expected[id]) {
			t.Fatalf("batch %d: shard frame differs from full-epoch frame", id)
		}
	}

	// The same connection serves a second, disjoint shard request.
	var second []int
	if err := c.FetchShard(0, []int{0, 9}, func(b *Batch, _ []byte) {
		second = append(second, b.GlobalID)
	}); err != nil {
		t.Fatalf("second FetchShard on same session: %v", err)
	}
	if len(second) != 2 || second[0] != 0 || second[1] != 9 {
		t.Fatalf("second shard got %v, want [0 9]", second)
	}

	// An empty shard request is answered with a bare EpochEnd.
	if err := c.FetchShard(0, nil, func(b *Batch, _ []byte) {
		t.Errorf("empty shard streamed batch %d", b.GlobalID)
	}); err != nil {
		t.Fatalf("empty FetchShard: %v", err)
	}
}

// TestShardReqRejectsInvalidIDs: out-of-plan and duplicate IDs are answered
// with a clean Error frame, and the server survives to serve a correct
// request next.
func TestShardReqRejectsInvalidIDs(t *testing.T) {
	spec := loopbackSpec()
	srv := startTestServer(t, spec, false)

	for _, tc := range []struct {
		name string
		ids  []int
	}{
		{"out of range", []int{0, 99}},
		{"negative", []int{-1}},
		{"duplicate", []int{3, 3}},
	} {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "bad-shard"})
		err := c.FetchShard(0, tc.ids, nil)
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error %v, want ServerError", tc.name, err)
		}
		c.Close()
	}

	c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "good-shard"})
	defer c.Close()
	got := 0
	if err := c.FetchShard(0, []int{1, 4}, func(*Batch, []byte) { got++ }); err != nil {
		t.Fatalf("valid shard after rejections: %v", err)
	}
	if got != 2 {
		t.Fatalf("valid shard streamed %d batches, want 2", got)
	}
}

// TestClientAddrsFallback: with a multi-entry endpoint list a dead first
// endpoint costs one dial inside Connect — not a retry — and a mid-run
// endpoint death fails over to the surviving replica byte-identically.
func TestClientAddrsFallback(t *testing.T) {
	spec := loopbackSpec()
	srvA := startTestServer(t, spec, false)
	srvB := startTestServer(t, spec, false)
	expected := localEpochFrames(t, spec, 0)

	// Dead-first-endpoint: reserve an address and close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	var got [][]byte
	c := NewClient(ClientConfig{
		Addrs: []string{deadAddr, srvB.Addr()},
		Name:  "fallback", DialTimeout: 2 * time.Second,
	})
	stats, err := c.Run(1, func(b *Batch, payload []byte) {
		got = append(got, append([]byte(nil), payload...))
	})
	if err != nil {
		t.Fatalf("run with dead first endpoint: %v", err)
	}
	if stats.Retries != 0 {
		t.Fatalf("dead first endpoint consumed %d retries; fallback belongs inside Connect", stats.Retries)
	}
	if c.Addr() != srvB.Addr() {
		t.Fatalf("client settled on %s, want the live replica %s", c.Addr(), srvB.Addr())
	}
	for i, p := range got {
		if !bytes.Equal(p, expected[i]) {
			t.Fatalf("frame %d from fallback replica not byte-identical", i)
		}
	}
	c.Close()

	// Mid-run endpoint death: connected to A, then A dies between epochs;
	// the retry path must rotate to B and re-fetch cleanly.
	c2 := NewClient(ClientConfig{
		Addrs: []string{srvA.Addr(), srvB.Addr()},
		Name:  "failover", BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	defer c2.Close()
	if err := c2.Connect(); err != nil {
		t.Fatal(err)
	}
	if c2.Addr() != srvA.Addr() {
		t.Fatalf("connected to %s, want first endpoint %s", c2.Addr(), srvA.Addr())
	}
	srvA.Close()
	var got2 [][]byte
	stats2, err := c2.Run(1, func(b *Batch, payload []byte) {
		got2 = append(got2, append([]byte(nil), payload...))
	})
	if err != nil {
		t.Fatalf("run across endpoint death: %v", err)
	}
	if stats2.Retries == 0 {
		t.Fatal("endpoint death was invisible — the stale connection should have failed once")
	}
	if c2.Addr() != srvB.Addr() {
		t.Fatalf("failover settled on %s, want %s", c2.Addr(), srvB.Addr())
	}
	if len(got2) != len(expected) {
		t.Fatalf("failover epoch delivered %d frames, want %d", len(got2), len(expected))
	}
	for i, p := range got2 {
		if !bytes.Equal(p, expected[i]) {
			t.Fatalf("frame %d after failover not byte-identical", i)
		}
	}
}

// TestReconnectMetrics: a returning (name, rank) identity is counted as a
// reconnect on the server totals and on its session row — the server-side
// observable of a client retry loop.
func TestReconnectMetrics(t *testing.T) {
	spec := loopbackSpec()
	srv := startTestServer(t, spec, false)

	dial := func() *Client {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "trainer", Rank: 0})
		if err := c.Connect(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := dial()
	c1.Close()
	c2 := dial()
	defer c2.Close()
	// A distinct identity is not a reconnect.
	c3 := NewClient(ClientConfig{Addr: srv.Addr(), Name: "other", Rank: 0})
	if err := c3.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c3.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := srv.Metrics().Snapshot(time.Now(), srv.Ring().Total())
		if snap.Reconnects == 1 {
			found := false
			for _, s := range snap.Sessions {
				if s.Name == "trainer" && s.Reconnects == 1 {
					found = true
				}
				if s.Name == "other" && s.Reconnects != 0 {
					t.Fatalf("fresh identity counted as reconnect: %+v", s)
				}
			}
			if !found {
				t.Fatalf("no live session row carries the reconnect count: %+v", snap.Sessions)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reconnects_total = %d, want 1", snap.Reconnects)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
