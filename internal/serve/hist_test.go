package serve

import (
	"strings"
	"testing"
	"time"
)

// TestQuantileExactOnBucketBoundaries: observations that all land exactly on
// a bucket's upper bound 2^k µs are reported exactly — interpolation must not
// smear a degenerate distribution.
func TestQuantileExactOnBucketBoundaries(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 100; i++ {
		h.Record(1024 * time.Microsecond)
	}
	if got := h.Quantile(1); got != 1024*time.Microsecond {
		t.Fatalf("Quantile(1) = %v, want 1024µs exactly", got)
	}
	if got := h.Quantile(0); got != 512*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want the bucket's 512µs lower bound", got)
	}

	// Two boundary-valued populations: the p at the split lands exactly on
	// the lower population's upper bound; p=1 on the upper population's.
	var h2 LatencyHist
	for i := 0; i < 50; i++ {
		h2.Record(1024 * time.Microsecond)
		h2.Record(4096 * time.Microsecond)
	}
	if got := h2.Quantile(0.5); got != 1024*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want 1024µs", got)
	}
	if got := h2.Quantile(1); got != 4096*time.Microsecond {
		t.Fatalf("Quantile(1) = %v, want 4096µs", got)
	}
	// Midway into the upper bucket (2048, 4096]: linear interpolation.
	if got := h2.Quantile(0.75); got != 3072*time.Microsecond {
		t.Fatalf("Quantile(0.75) = %v, want 3072µs", got)
	}
}

// TestQuantileMonotone: Quantile must be non-decreasing in p and bounded by
// [0, Max] for an arbitrary mixed distribution.
func TestQuantileMonotone(t *testing.T) {
	var h LatencyHist
	ds := []time.Duration{
		3 * time.Microsecond, 17 * time.Microsecond, 90 * time.Microsecond,
		250 * time.Microsecond, 900 * time.Microsecond, 3 * time.Millisecond,
		7 * time.Millisecond, 40 * time.Millisecond, 300 * time.Millisecond,
		2 * time.Second,
	}
	for i, d := range ds {
		for j := 0; j <= i; j++ {
			h.Record(d)
		}
	}
	prev := time.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: Quantile(%.2f) = %v < %v", p, q, prev)
		}
		if q < 0 || q > h.Max {
			t.Fatalf("Quantile(%.2f) = %v outside [0, %v]", p, q, h.Max)
		}
		prev = q
	}
	if got := h.Quantile(1); got != h.Max {
		t.Fatalf("Quantile(1) = %v, want Max %v (last bucket interpolates to Max)", got, h.Max)
	}
}

func TestQuantileEmptyAndClamp(t *testing.T) {
	var h LatencyHist
	if got := h.Quantile(0.95); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	h.Record(100 * time.Microsecond)
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(42) != h.Quantile(1) {
		t.Fatal("out-of-range p must clamp to [0, 1]")
	}
}

func TestHistStringPrintsPercentiles(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 10; i++ {
		h.Record(time.Duration(1+i) * time.Millisecond)
	}
	s := h.String()
	for _, want := range []string{"p50=", "p95=", "p99=", "mean=", "max="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}
