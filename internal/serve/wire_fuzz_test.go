package serve

import (
	"bytes"
	"testing"

	"lotus/internal/tensor"
)

// FuzzFrameRoundTrip drives arbitrary bytes through the decoder. The decoder
// must never panic; anything it accepts must re-encode and decode to a fixed
// point (encode∘decode is idempotent), which pins the wire format as
// canonical: the server and client can compare streams byte-for-byte.
func FuzzFrameRoundTrip(f *testing.F) {
	seeds := []any{
		Hello{Version: 1, Rank: 1, World: 4, Name: "fuzz"},
		HelloAck{Version: 1, DatasetLen: 100, BatchSize: 8, PlanBatches: 13, ShardBatches: 7, Mode: 1, Workload: "OD"},
		EpochReq{Epoch: 9},
		&Batch{Epoch: 1, GlobalID: 2, Indices: []int{3, 1}, Labels: []int{0, 4},
			Dtype: tensor.Uint8, Shape: []int{2, 2}, U8: []uint8{9, 8, 7, 6}},
		&Batch{Epoch: 0, GlobalID: 1, Indices: []int{5}, Labels: []int{-2},
			Dtype: tensor.Float32, Shape: []int{1, 2}, F32: []float32{1.5, -0.25}},
		EpochEnd{Epoch: 1, Batches: 7, Checksum: 12345},
		ErrorMsg{Message: "boom"},
		Bye{},
	}
	for _, msg := range seeds {
		enc, err := EncodeMessage(msg)
		if err != nil {
			f.Fatalf("seed encode %T: %v", msg, err)
		}
		f.Add(enc)
	}
	f.Add([]byte{0xff})
	f.Add([]byte{byte(MsgBatch), 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data) // must not panic
		if err != nil {
			return
		}
		enc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
		msg2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v\npayload: %x", msg, err, enc)
		}
		enc2, err := EncodeMessage(msg2)
		if err != nil {
			t.Fatalf("second re-encode of %T: %v", msg2, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical for %T:\n first: %x\nsecond: %x", msg, enc, enc2)
		}
	})
}
