package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lotus/internal/clock"
	"lotus/internal/control"
	"lotus/internal/core/trace"
	"lotus/internal/faultinject"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/store"
	"lotus/internal/workloads"
)

// Config parameterizes a preprocessing server.
type Config struct {
	// Spec is the served pipeline (dataset, transforms, loader parameters).
	Spec workloads.Spec
	// Mode selects simulated (meta tensors, virtual-clock execution) or real
	// (actual pixels, wall-clock execution) preprocessing.
	Mode pipeline.Mode
	// EmulateTime, in Simulated mode, drives the pipeline with the wall
	// clock instead of the virtual one: the modeled preprocessing and
	// storage latencies pace the stream in real time while payloads stay
	// synthetic meta tensors. Load generation and cluster scaling
	// benchmarks use it to measure routing throughput without the pixel
	// work (and its single-machine CPU ceiling) of real mode.
	EmulateTime bool
	// Prefetch is the per-session server-side prefetch queue depth in
	// batches; the producer stalls once this many encoded batches are
	// waiting for the network, which is the service's backpressure bound
	// (default 4).
	Prefetch int
	// MaterializeDim caps synthesized image resolution in real mode.
	MaterializeDim int
	// MaxFrame bounds wire frames (default DefaultMaxFrame).
	MaxFrame int
	// RingSize is the live trace ring capacity in records (default 16384).
	RingSize int
	// HelloTimeout bounds how long a fresh connection may take to present a
	// valid Hello before the server gives up on it (default 10s).
	HelloTimeout time.Duration
	// BatchCacheBytes, when > 0, enables the server-wide materialized-batch
	// cache: each (epoch, global batch ID) frame is preprocessed and encoded
	// once, whatever the number of concurrent sessions, ShardReq routes, or
	// replication fetches asking for it, and the canonical bytes are served
	// to everyone out of an LRU cache bounded to this many payload bytes.
	// 0 disables the cache (every session runs its own pipeline, the
	// pre-cache behavior).
	BatchCacheBytes int64
	// CacheWaitTimeout bounds how long a session blocks on another session's
	// in-flight computation of a batch before giving up and computing it
	// locally (default 30s). The fallback keeps every session live even if
	// the claim's owner stalls indefinitely.
	CacheWaitTimeout time.Duration
	// DiskCacheDir, when non-empty, enables the persistent disk tier under
	// both memory caches: encoded batch frames and sample snapshots are
	// spilled to a content-addressed segment store in this directory and
	// consulted before recomputing, so restarts — and other jobs pointed at
	// the same directory with the same spec — warm-start instead of
	// re-paying the preprocessing bill. Keys embed the spec/prefix
	// fingerprints, so a reconfigured server can never alias stale bytes.
	// The batch tier engages only when BatchCacheBytes > 0 (it publishes
	// through the memory cache); the sample tier only when SampleCacheBytes
	// > 0.
	DiskCacheDir string
	// DiskCacheBytes is the disk tier's soft byte budget (segment-granular
	// LRU eviction); <= 0 means unlimited.
	DiskCacheBytes int64
	// DiskSegmentBytes overrides the store's segment roll size (tests).
	DiskSegmentBytes int64
	// SampleCacheBytes, when > 0, enables the server-wide split-point sample
	// cache: each sample's deterministic prefix (storage read + decode +
	// deterministic resize) is materialized once and shared across epochs,
	// sessions, and workers, so augmented specs whose random suffix defeats
	// the batch cache still skip the decode from epoch 2 on. 0 disables it.
	// The cache layers under the batch cache: a batch-cache hit never
	// consults it, and a batch-cache miss runs only the random suffix on
	// prefix hits.
	SampleCacheBytes int64
	// Faults, when non-nil, is the deterministic fault-injection layer: it is
	// threaded into every session's pipeline (read errors / stalls / panics)
	// and consulted per outgoing batch frame for wire faults (drop, truncate,
	// corrupt). Production servers leave it nil.
	Faults *faultinject.Injector
	// MaxSessions bounds concurrently admitted sessions (0 = unlimited).
	// Over-limit handshakes wait in a bounded admission queue for a slot and
	// are otherwise turned away with a retryable ErrServerBusy Error frame
	// (CodeBusy), so overload degrades to fast rejection plus client backoff
	// instead of unbounded goroutine and buffer growth.
	MaxSessions int
	// AdmitQueue is how many over-limit handshakes may wait for a session
	// slot (default 16; < 0 disables queueing, rejecting immediately).
	AdmitQueue int
	// AdmitWait bounds how long a queued handshake waits for a slot before
	// it is turned away busy (default 2s).
	AdmitWait time.Duration
	// Tenants maps tenant names (Hello.Tenant) to explicit QoS limits;
	// TenantDefault applies to tenants not listed (its zero value means
	// unlimited rate, weight 1). A non-empty Tenants map — or QoS — enables
	// the per-tenant scheduler.
	Tenants       map[string]TenantLimit
	TenantDefault TenantLimit
	// QoS force-enables per-tenant fair scheduling even with no explicit
	// limits configured: tenants then share the write and compute gates by
	// deficit-weighted round robin with equal weights.
	QoS bool
	// QoSWriteSlots bounds concurrently in-flight batch writes across all
	// sessions when QoS is on (default 16); the slots are granted in
	// deficit-weighted-fair order, costed by frame bytes.
	QoSWriteSlots int
	// QoSComputeSlots bounds concurrently producing pipelines when QoS is on
	// (default max(4, 2×GOMAXPROCS)), granted fairly, costed by claimed
	// batch count.
	QoSComputeSlots int
	// QoSLeadBytes bounds how many weighted wire bytes any tenant may run
	// ahead of the slowest active tenant before its writes are paced — the
	// mechanism that keeps tenants fair when the bottleneck is CPU or cache
	// rather than the gated slots, since extra sessions cannot buy service
	// past the lead bound. Default 1 MiB; < 0 disables lead pacing.
	QoSLeadBytes int64
	// CoalesceBytes / CoalesceFrames / CoalesceWindow bound connection-level
	// write coalescing: consecutive already-ready frames of one session are
	// batched into a single vectored write up to CoalesceBytes pending
	// payload (default 64 KiB) or CoalesceFrames frames (default 8), with
	// CoalesceWindow (default 1ms) as the hard latency bound on a pending
	// partial batch. CoalesceFrames < 0 disables coalescing (one vectored
	// write per frame, the pre-coalescing behavior); the server forces that
	// mode while a fault injector is active so wire-fault seams stay
	// frame-granular.
	CoalesceBytes  int
	CoalesceFrames int
	CoalesceWindow time.Duration
	// TracePIDStride spaces the private trace-pid ranges of streaming
	// sessions (default 1000). It is validated against the widest pid span a
	// session pipeline can use — main proc plus every worker the spec or the
	// autotuner's bound allows — and silently raised when too small, so two
	// sessions' pipelines can never alias in the shared trace ring.
	TracePIDStride int
	// LogLinesPerSec rate-limits per-session log lines (handshake rejects,
	// epoch errors, session opens) so a 1000-session churn storm cannot
	// serialize every connection goroutine on the logger (default 50 lines/s
	// with a 2s burst; < 0 disables limiting). Suppressed lines are counted
	// on /metrics.
	LogLinesPerSec float64
	// Pprof registers net/http/pprof handlers on the HTTP sidecar under
	// /debug/pprof/, so goroutine and heap footprint at high session counts
	// is diagnosable in production.
	Pprof bool
	// AutoTune enables the closed-loop controller: at every completed epoch
	// the server observes its own T2 wait records, prefetch-queue fill, and
	// cache counters, and actuates the pipeline worker count (including live
	// resizes of epochs in flight), the prefetch factor, and the three cache
	// byte budgets. Decisions are keyed off the epochs-served counter, so a
	// sim-mode server tunes deterministically.
	AutoTune bool
	// AutoTuneLongWait classifies a main-process batch wait as a stall for
	// the controller's wait-fraction signal (default 500ms, the advisor's
	// threshold).
	AutoTuneLongWait time.Duration
	// AutoTuneControl overrides the controller's bounds and pacing (zero
	// values take control.Config defaults). Tests tighten the cooldowns.
	AutoTuneControl control.Config
	// ClusterInfo, when non-nil, is served as JSON on the sidecar's /cluster
	// endpoint — a func (not a value) so cluster membership state stays live.
	// It keeps internal/serve free of a cluster dependency: the cluster layer
	// sits above the server and injects its view here.
	ClusterInfo func() any
	// Logf receives server lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the long-running preprocessing service. One Server owns one
// workload spec; every client session shards the same epoch plans.
type Server struct {
	cfg        Config
	datasetLen int
	planLen    int

	ln      net.Listener
	httpLn  net.Listener
	httpSrv httpCloser

	metrics     *Metrics
	ring        *trace.Ring
	cache       *BatchCache // nil when Config.BatchCacheBytes == 0
	specFP      uint64
	sampleCache *pipeline.SampleCache // nil when Config.SampleCacheBytes == 0
	prefixFP    uint64
	disk        *store.Store // nil when Config.DiskCacheDir == ""
	tuner       *tuner       // nil when Config.AutoTune is false

	ctx      context.Context
	cancel   context.CancelFunc
	draining atomic.Bool

	// Admission control: admitSem holds one token per admitted session when
	// MaxSessions > 0; admitWaiters counts handshakes parked in the bounded
	// queue.
	admitSem     chan struct{}
	admitWaiters atomic.Int32

	qos   *qosState // nil when per-tenant QoS is disabled
	slog  *logLimiter
	plans planCache // shared epoch plans (spec-fingerprint identical by construction)

	wg         sync.WaitGroup
	mu         sync.Mutex
	conns      map[net.Conn]struct{}
	sessionSeq int
	streamSeq  int // sessions that have streamed; allocates trace-pid bases lazily
}

// httpCloser is the slice of *http.Server the Server needs; an interface so
// server.go does not import net/http (observe.go does).
type httpCloser interface {
	Close() error
}

// New builds a Server. Call Start to begin listening.
func New(cfg Config) *Server {
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 4
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 16384
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.CacheWaitTimeout <= 0 {
		cfg.CacheWaitTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.AdmitQueue == 0 {
		cfg.AdmitQueue = 16
	}
	if cfg.AdmitWait <= 0 {
		cfg.AdmitWait = 2 * time.Second
	}
	// The trace-pid stride must clear the widest pid span one session's
	// pipeline can occupy: MainPID..MainPID+workers, where workers may be
	// raised to the autotuner's bound while an epoch streams. A stride that
	// small would alias the next session's range in the shared ring, so it
	// is raised, never trusted.
	maxWorkers := cfg.Spec.NumWorkers
	if maxWorkers <= 0 {
		maxWorkers = pipeline.DefaultAutoWorkers
	}
	if cfg.AutoTune {
		tunerMax := cfg.AutoTuneControl.MaxWorkers
		if tunerMax <= 0 {
			tunerMax = 16 // control.Config's default bound
		}
		if tunerMax > maxWorkers {
			maxWorkers = tunerMax
		}
	}
	if cfg.TracePIDStride <= 0 {
		cfg.TracePIDStride = 1000
	}
	if min := maxWorkers + 2; cfg.TracePIDStride < min {
		cfg.Logf("lotus-serve: trace-pid stride %d cannot hold %d workers; raised to %d",
			cfg.TracePIDStride, maxWorkers, min)
		cfg.TracePIDStride = min
	}
	if cfg.LogLinesPerSec == 0 {
		cfg.LogLinesPerSec = 50
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		datasetLen: cfg.Spec.NumSamples,
		metrics:    NewMetrics(time.Now()),
		ring:       trace.NewRing(cfg.RingSize),
		ctx:        ctx,
		cancel:     cancel,
		conns:      make(map[net.Conn]struct{}),
	}
	s.ring.SetPerLogCost(cfg.Spec.PerLogCost)
	s.planLen = len(pipeline.BuildBatchPlan(s.datasetLen, cfg.Spec.BatchSize,
		cfg.Spec.Shuffle, false, cfg.Spec.Seed))
	s.specFP = SpecFingerprint(cfg.Spec, cfg.Mode, cfg.MaterializeDim)
	if cfg.BatchCacheBytes > 0 {
		s.cache = NewBatchCache(cfg.BatchCacheBytes)
	}
	if cfg.SampleCacheBytes > 0 {
		if fp, ok := PrefixFingerprint(cfg.Spec, cfg.Mode, cfg.MaterializeDim); ok {
			// Blocking single-flight only when pipeline procs run on the wall
			// clock; pure-sim procs must never park on channels the virtual
			// clock cannot see, so they bypass in-flight entries instead.
			blocking := cfg.Mode == pipeline.RealData || cfg.EmulateTime
			s.sampleCache = pipeline.NewSampleCache(cfg.SampleCacheBytes, blocking)
			s.prefixFP = fp
		}
	}
	if cfg.AutoTune {
		s.tuner = newTuner(s, cfg.AutoTuneControl, cfg.AutoTuneLongWait)
	}
	if cfg.MaxSessions > 0 {
		s.admitSem = make(chan struct{}, cfg.MaxSessions)
	}
	if cfg.QoS || len(cfg.Tenants) > 0 {
		writeSlots := cfg.QoSWriteSlots
		if writeSlots <= 0 {
			writeSlots = 16
		}
		computeSlots := cfg.QoSComputeSlots
		if computeSlots <= 0 {
			computeSlots = 2 * runtime.GOMAXPROCS(0)
			if computeSlots < 4 {
				computeSlots = 4
			}
		}
		s.qos = newQoSState(cfg.Tenants, cfg.TenantDefault, writeSlots, computeSlots, cfg.QoSLeadBytes)
	}
	s.slog = newLogLimiter(cfg.LogLinesPerSec, cfg.Logf)
	return s
}

// slogf is the rate-limited log path for per-session lines; lifecycle lines
// (start, drain) keep the unthrottled cfg.Logf.
func (s *Server) slogf(format string, args ...any) { s.slog.Logf(format, args...) }

// logLimiter throttles high-cardinality log lines behind a token bucket so
// a session churn storm cannot serialize a thousand connection goroutines on
// the logger. Suppressed lines are counted, not silently lost.
type logLimiter struct {
	mu         sync.Mutex
	rate       float64 // lines per second; <= 0 means unlimited
	burst      float64
	tokens     float64
	last       time.Time
	logf       func(string, ...any)
	suppressed atomic.Int64
}

func newLogLimiter(rate float64, logf func(string, ...any)) *logLimiter {
	if rate < 0 {
		rate = 0 // unlimited
	}
	return &logLimiter{rate: rate, burst: 2 * rate, tokens: 2 * rate, last: time.Now(), logf: logf}
}

func (l *logLimiter) Logf(format string, args ...any) {
	if l.rate <= 0 {
		l.logf(format, args...)
		return
	}
	now := time.Now()
	l.mu.Lock()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens < 1 {
		l.mu.Unlock()
		l.suppressed.Add(1)
		return
	}
	l.tokens--
	l.mu.Unlock()
	l.logf(format, args...)
}

// planCache shares built epoch plans across every session of the server. The
// spec fingerprint is identical for all sessions by construction (one Server
// owns one spec), and BuildEpochPlan is deterministic, so a plan built once
// per epoch serves all O(1000) sessions — previously each session rebuilt
// the full O(dataset) plan on every epoch and shard request.
type planCache struct {
	mu     sync.Mutex
	epochs map[int][]PlanBatch
	order  []int // FIFO of cached epochs
	builds int64
	hits   int64
}

// planCacheEpochs bounds the retained plans; concurrent sessions cluster on
// a few adjacent epochs, so a small window gets all the reuse.
const planCacheEpochs = 4

// epochPlan returns the (shared, read-only) plan for one epoch.
func (s *Server) epochPlan(epoch int) []PlanBatch {
	pc := &s.plans
	pc.mu.Lock()
	if p, ok := pc.epochs[epoch]; ok {
		pc.hits++
		pc.mu.Unlock()
		return p
	}
	pc.mu.Unlock()
	spec := s.cfg.Spec
	plan := BuildEpochPlan(s.datasetLen, spec.BatchSize, spec.Shuffle, false, spec.Seed, epoch)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p, ok := pc.epochs[epoch]; ok { // raced another builder; identical plan
		pc.hits++
		return p
	}
	pc.builds++
	if pc.epochs == nil {
		pc.epochs = make(map[int][]PlanBatch)
	}
	pc.epochs[epoch] = plan
	pc.order = append(pc.order, epoch)
	if len(pc.order) > planCacheEpochs {
		delete(pc.epochs, pc.order[0])
		pc.order = pc.order[1:]
	}
	return plan
}

func (pc *planCache) stats() (builds, hits int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.builds, pc.hits
}

// ErrServerBusy is the admission-control rejection: the server is at
// MaxSessions and the bounded queue is full (or timed out). It travels the
// wire as an Error frame with CodeBusy, which clients treat as transient and
// retry with their jittered backoff.
var ErrServerBusy = errors.New("server busy: session limit reached")

// admit reserves one session slot, waiting in the bounded admission queue
// when the server is full. The returned release function frees the slot.
func (s *Server) admit() (release func(), err error) {
	if s.admitSem == nil {
		return func() {}, nil
	}
	select {
	case s.admitSem <- struct{}{}:
		return s.releaseSlot, nil
	default:
	}
	if n := s.admitWaiters.Add(1); int(n) > s.cfg.AdmitQueue {
		s.admitWaiters.Add(-1)
		s.metrics.AddBusy()
		return nil, ErrServerBusy
	}
	defer s.admitWaiters.Add(-1)
	s.metrics.AddAdmitQueued()
	t := time.NewTimer(s.cfg.AdmitWait)
	defer t.Stop()
	select {
	case s.admitSem <- struct{}{}:
		return s.releaseSlot, nil
	case <-t.C:
		s.metrics.AddBusy()
		return nil, ErrServerBusy
	case <-s.ctx.Done():
		return nil, ErrServerBusy
	}
}

func (s *Server) releaseSlot() { <-s.admitSem }

// CacheStats reports the materialized-batch cache counters; ok is false when
// the cache is disabled.
func (s *Server) CacheStats() (BatchCacheStats, bool) {
	if s.cache == nil {
		return BatchCacheStats{}, false
	}
	return s.cache.Stats(), true
}

// SampleCacheStats reports the split-point sample cache counters; ok is
// false when the cache is disabled (or the spec has no deterministic
// prefix).
func (s *Server) SampleCacheStats() (pipeline.SampleCacheStats, bool) {
	if s.sampleCache == nil {
		return pipeline.SampleCacheStats{}, false
	}
	return s.sampleCache.Stats(), true
}

// Start listens on addr for the wire protocol and, when httpAddr is
// non-empty, on httpAddr for the observability sidecar. It returns once both
// listeners are live.
func (s *Server) Start(addr, httpAddr string) error {
	if s.cfg.DiskCacheDir != "" {
		st, err := store.Open(s.cfg.DiskCacheDir, store.Options{
			Budget:       s.cfg.DiskCacheBytes,
			SegmentBytes: s.cfg.DiskSegmentBytes,
			Faults:       s.cfg.Faults,
			Logf:         s.cfg.Logf,
		})
		if err != nil {
			return fmt.Errorf("serve: disk cache: %w", err)
		}
		s.disk = st
		if s.cache != nil {
			s.cache.SetSpill(s.spillBatchFrame)
		}
		if s.sampleCache != nil {
			s.sampleCache.SetDisk(st)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if s.disk != nil {
			s.disk.Close()
			s.disk = nil
		}
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	if httpAddr != "" {
		if err := s.startHTTP(httpAddr); err != nil {
			ln.Close()
			if s.disk != nil {
				s.disk.Close()
				s.disk = nil
			}
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.cfg.Logf("lotus-serve: serving %s (%d samples, batch %d, %d workers, mode %s) on %s",
		s.cfg.Spec.Kind, s.datasetLen, s.cfg.Spec.BatchSize, s.cfg.Spec.NumWorkers,
		s.modeName(), ln.Addr())
	return nil
}

func (s *Server) modeName() string {
	if s.cfg.Mode == pipeline.RealData {
		return "real"
	}
	if s.cfg.EmulateTime {
		return "emulate"
	}
	return "sim"
}

// Addr reports the wire listener address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// HTTPAddr reports the observability listener address ("" if disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Ring exposes the live trace ring (for in-process observability and tests).
func (s *Server) Ring() *trace.Ring { return s.ring }

// Metrics exposes the live counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains the server: new sessions and new epoch requests are
// refused immediately, epochs already streaming run to completion until ctx
// expires, at which point in-flight epochs are aborted and connections
// closed. It returns ctx.Err() if the deadline forced the teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel()
		s.closeConns()
		<-done
	}
	s.cancel()
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.disk != nil {
		// Sessions are gone; drain queued spills and land the manifest so
		// the next open warm-starts without a rebuild. (Store.Close is
		// idempotent, so a second Shutdown is harmless.)
		if derr := s.disk.Close(); derr != nil {
			s.cfg.Logf("lotus-serve: disk cache close: %v", derr)
		}
	}
	s.cfg.Logf("lotus-serve: drained")
	return err
}

// Close tears the server down immediately (Shutdown with an expired
// deadline).
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (drain or Close)
		}
		if s.draining.Load() {
			s.sendError(conn, "server draining")
			conn.Close()
			continue
		}
		s.track(conn)
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// sendError writes a best-effort fatal Error frame before the caller closes
// the connection.
func (s *Server) sendError(conn net.Conn, msg string) {
	s.sendErrorCode(conn, msg, CodeFatal)
}

// sendErrorCode is sendError with an explicit error code (CodeBusy for
// retryable admission rejections).
func (s *Server) sendErrorCode(conn net.Conn, msg string, code byte) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	WriteFrame(conn, EncodeError(ErrorMsg{Message: msg, Code: code}))
	conn.SetWriteDeadline(time.Time{})
}

// handleConn owns one client session: handshake, then a request loop until
// the client says Bye, disconnects, or violates the protocol. Every failure
// path answers with an Error frame and closes — malformed remote input must
// never panic the server.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	hello, err := s.readHello(conn)
	if err != nil {
		s.slogf("lotus-serve: %s: rejected: %v", conn.RemoteAddr(), err)
		s.sendError(conn, err.Error())
		return
	}
	release, err := s.admit()
	if err != nil {
		s.slogf("lotus-serve: %s: turned away: %v", conn.RemoteAddr(), err)
		s.sendErrorCode(conn, err.Error(), CodeBusy)
		return
	}
	defer release()
	sess := s.newSession(conn, hello)
	defer sess.close()
	s.slogf("lotus-serve: session %d: %s rank %d/%d (%q tenant %q)",
		sess.id, conn.RemoteAddr(), hello.Rank, hello.World, hello.Name, hello.Tenant)

	ack := HelloAck{
		Version:      ProtocolVersion,
		DatasetLen:   s.datasetLen,
		BatchSize:    s.cfg.Spec.BatchSize,
		PlanBatches:  s.planLen,
		ShardBatches: ShardSize(s.planLen, hello.Rank, hello.World),
		Workload:     string(s.cfg.Spec.Kind),
	}
	if s.cfg.Mode == pipeline.RealData {
		ack.Mode = 1
	}
	if err := WriteFrame(conn, EncodeHelloAck(ack)); err != nil {
		return
	}

	for {
		payload, err := ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			if err == io.EOF {
				return // client hung up cleanly between requests
			}
			if errors.Is(err, ErrMalformed) {
				s.sendError(conn, err.Error())
			}
			return
		}
		msg, err := DecodeMessage(payload)
		if err != nil {
			s.sendError(conn, err.Error())
			return
		}
		switch m := msg.(type) {
		case EpochReq:
			if m.Epoch < 0 || m.Epoch > 1<<30 {
				s.sendError(conn, fmt.Sprintf("invalid epoch %d", m.Epoch))
				return
			}
			if s.draining.Load() {
				s.sendError(conn, "server draining")
				return
			}
			if err := sess.streamEpoch(m.Epoch); err != nil {
				sess.sm.AddEpochAbort()
				s.metrics.AddEpochAbort()
				s.slogf("lotus-serve: session %d: epoch %d: %v", sess.id, m.Epoch, err)
				return
			}
		case ShardReq:
			if m.Epoch < 0 || m.Epoch > 1<<30 {
				s.sendError(conn, fmt.Sprintf("invalid epoch %d", m.Epoch))
				return
			}
			if s.draining.Load() {
				s.sendError(conn, "server draining")
				return
			}
			if m.Hedge {
				s.metrics.AddHedge(len(m.IDs))
			}
			if err := sess.streamShardReq(m); err != nil {
				sess.sm.AddEpochAbort()
				s.metrics.AddEpochAbort()
				s.slogf("lotus-serve: session %d: epoch %d shard: %v", sess.id, m.Epoch, err)
				return
			}
		case Bye:
			return
		default:
			s.sendError(conn, fmt.Sprintf("unexpected %T mid-session", msg))
			return
		}
	}
}

func (s *Server) readHello(conn net.Conn) (Hello, error) {
	conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	defer conn.SetReadDeadline(time.Time{})
	payload, err := ReadFrame(conn, s.cfg.MaxFrame)
	if err != nil {
		return Hello{}, fmt.Errorf("handshake: %w", err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		return Hello{}, fmt.Errorf("handshake: %w", err)
	}
	hello, ok := msg.(Hello)
	if !ok {
		return Hello{}, fmt.Errorf("handshake: expected Hello, got %T", msg)
	}
	if hello.Version != ProtocolVersion {
		return Hello{}, fmt.Errorf("handshake: protocol version %d, server speaks %d",
			hello.Version, ProtocolVersion)
	}
	return hello, nil
}

// session is one connected client's server-side state. An idle session —
// connected, handshaken, not yet streaming — holds only this struct, its
// connection goroutine, and a metrics row; the pipeline-facing state
// (engine, hooks, dataset view, trace-pid range) is materialized lazily by
// ensurePipeline on the first epoch request, which is what keeps O(1000)
// mostly-idle sessions cheap.
type session struct {
	srv         *Server
	id          int
	conn        net.Conn
	rank, world int
	tenant      *tenantState // nil when QoS is disabled
	sm          *SessionMetrics
	engine      *native.Engine
	ds          pipeline.Dataset
	hks         *pipeline.Hooks
	pidBase     int // private trace-pid range base; 0 until first stream

	// Epoch-scoped state read by the trace hooks: the current shard maps the
	// DataLoader's positional batch ids back to epoch-global ids, preEnd
	// remembers preprocess end times for the delay metric. Guarded by mu
	// because real-mode workers fire hooks concurrently.
	mu      sync.Mutex
	epoch   int
	planLen int
	shard   []PlanBatch
	preEnd  map[int]time.Time
}

func (s *Server) newSession(conn net.Conn, hello Hello) *session {
	s.mu.Lock()
	s.sessionSeq++
	id := s.sessionSeq
	s.mu.Unlock()
	ss := &session{
		srv:   s,
		id:    id,
		conn:  conn,
		rank:  hello.Rank,
		world: hello.World,
		sm:    s.metrics.OpenSession(id, hello.Name, hello.Tenant, hello.Rank, hello.World, time.Now()),
	}
	if s.qos != nil {
		ss.tenant = s.qos.tenant(hello.Tenant)
		ss.tenant.mu.Lock()
		ss.tenant.sessions++
		ss.tenant.mu.Unlock()
	}
	return ss
}

// close releases the session's registry state (metrics row, tenant count).
func (ss *session) close() {
	ss.srv.metrics.CloseSession(ss.id)
	if ss.tenant != nil {
		ss.tenant.mu.Lock()
		ss.tenant.sessions--
		ss.tenant.mu.Unlock()
	}
}

// ensurePipeline lazily materializes the session's streaming state on the
// first epoch request: the native engine, the trace hooks, the session's
// dataset view, and the private trace-pid base. Idle sessions never pay for
// any of it.
func (ss *session) ensurePipeline() {
	if ss.hks != nil {
		return
	}
	s := ss.srv
	s.mu.Lock()
	s.streamSeq++
	ss.pidBase = s.streamSeq * s.cfg.TracePIDStride
	s.mu.Unlock()
	if s.cfg.Mode != pipeline.RealData {
		ss.engine = native.NewEngine(s.cfg.Spec.Arch, native.DefaultCPU())
	}
	ss.preEnd = make(map[int]time.Time)
	ss.hks = ss.hooks()
	// Each session materializes its own dataset view so its Compose chain
	// carries the session's hooks; the synthetic records are deterministic,
	// so every session sees identical data, and a shared PageCache (if the
	// spec sets one) still deduplicates I/O across sessions.
	ss.ds = s.cfg.Spec.Dataset(ss.hks)
}

// pid offsets a pipeline pid into this session's private pid range so
// concurrent sessions stay distinguishable in the shared trace ring. Bases
// are multiples of the validated TracePIDStride (> the pipeline's worker
// span), assigned in streaming order, and pipeline pids start at
// pipeline.MainPID — far above the reserved controlPID — so ranges never
// alias each other or the controller's records.
func (ss *session) pid(pid int) int { return pid + ss.pidBase }

// traceBatchID maps a DataLoader positional batch id to a globally unique
// trace id: epoch * planLen + the batch's epoch-global plan position.
func (ss *session) traceBatchID(pos int) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if pos < 0 || pos >= len(ss.shard) {
		return pos
	}
	return ss.epoch*ss.planLen + ss.shard[pos].GlobalID
}

func (ss *session) setEpoch(epoch, planLen int, shard []PlanBatch) {
	ss.mu.Lock()
	ss.epoch = epoch
	ss.planLen = planLen
	ss.shard = shard
	ss.preEnd = make(map[int]time.Time)
	ss.mu.Unlock()
}

// hooks adapts the pipeline instrumentation into the server's ring and
// metrics: pids and batch ids are remapped into session-unique ranges, wait
// records feed the wait metric, and preprocess/consume pairs feed the delay
// metric — the same wait/delay decomposition the paper's analysis uses.
func (ss *session) hooks() *pipeline.Hooks {
	ring := ss.srv.ring
	return &pipeline.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			ring.Add(trace.Record{Kind: trace.KindOp, PID: ss.pid(pid),
				BatchID: ss.traceBatchID(batchID), SampleIndex: sampleIndex,
				Op: op, Start: start, Dur: dur})
		},
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) {
			gid := ss.traceBatchID(batchID)
			ring.Add(trace.Record{Kind: trace.KindBatchPreprocessed, PID: ss.pid(pid),
				BatchID: gid, SampleIndex: -1, Start: start, Dur: dur})
			ss.mu.Lock()
			ss.preEnd[gid] = start.Add(dur)
			ss.mu.Unlock()
		},
		OnBatchWait: func(pid, batchID int, start time.Time, dur time.Duration) {
			ring.Add(trace.Record{Kind: trace.KindBatchWait, PID: ss.pid(pid),
				BatchID: ss.traceBatchID(batchID), SampleIndex: -1, Start: start, Dur: dur})
			ss.sm.AddWait(dur)
		},
		OnBatchConsumed: func(pid, batchID int, start time.Time, dur time.Duration) {
			gid := ss.traceBatchID(batchID)
			ring.Add(trace.Record{Kind: trace.KindBatchConsumed, PID: ss.pid(pid),
				BatchID: gid, SampleIndex: -1, Start: start, Dur: dur})
			ss.mu.Lock()
			end, ok := ss.preEnd[gid]
			delete(ss.preEnd, gid)
			ss.mu.Unlock()
			if ok {
				ss.sm.AddDelay(start.Sub(end))
			}
		},
		// Served runs charge the same modeled per-record cost a streamed
		// Tracer run would — the Ring/Tracer overhead parity satellite.
		PerLogCost: ss.srv.cfg.Spec.PerLogCost,
	}
}

// streamEpoch runs the session's rank/world shard of one epoch through a
// DataLoader and streams the batches.
func (ss *session) streamEpoch(epoch int) error {
	plan := ss.srv.epochPlan(epoch)
	return ss.streamShard(epoch, len(plan), Shard(plan, ss.rank, ss.world))
}

// streamShardReq validates an explicit batch-ID request against the epoch
// plan and streams exactly those batches, in request order. The plan — not
// the session — defines the work, so a cluster router can hand any subset to
// any node and still get frames byte-identical to a rank/world session's.
func (ss *session) streamShardReq(req ShardReq) error {
	plan := ss.srv.epochPlan(req.Epoch)
	shard := make([]PlanBatch, len(req.IDs))
	seen := make(map[int]bool, len(req.IDs))
	for i, id := range req.IDs {
		if id < 0 || id >= len(plan) {
			msg := fmt.Sprintf("shard request: batch id %d out of plan [0,%d)", id, len(plan))
			ss.srv.sendError(ss.conn, msg)
			return errors.New(msg)
		}
		if seen[id] {
			msg := fmt.Sprintf("shard request: duplicate batch id %d", id)
			ss.srv.sendError(ss.conn, msg)
			return errors.New(msg)
		}
		seen[id] = true
		shard[i] = plan[id]
	}
	return ss.streamShard(req.Epoch, len(plan), shard)
}

// cacheKey builds this server's cache key for one batch of one epoch.
func (ss *session) cacheKey(epoch, globalID int) BatchKey {
	return BatchKey{Fingerprint: ss.srv.specFP, Epoch: epoch, GlobalID: globalID}
}

// streamShard streams one shard of one epoch. The producer (pipeline) and
// the writer (network) are decoupled by a bounded channel of encoded frames:
// when the client or the network is slow, the channel fills and the pipeline
// stalls — bounded backpressure instead of unbounded buffering.
//
// With the batch cache enabled the session first claims, for its entire
// shard, every batch no other session is already producing; its pipeline
// then runs over exactly the claimed subset, and every other slot is
// acquired from the cache at write time (hit, or a single-flight wait on the
// producing session). The deterministic plan makes the claimed-subset
// pipeline byte-identical to a full-shard one — batch bytes depend only on
// the epoch seed and the plan's indices, not on which session or worker
// produced them — so N concurrent ranks cost one preprocessing pass, not N.
func (ss *session) streamShard(epoch, planLen int, shard []PlanBatch) error {
	ss.ensurePipeline()
	cache := ss.srv.cache

	sum := fnv.New64a()
	if len(shard) == 0 {
		return WriteFrame(ss.conn, EncodeEpochEnd(EpochEnd{Epoch: epoch, Checksum: sum.Sum64()}))
	}

	mine := make([]bool, len(shard))
	var claimed []PlanBatch
	if cache == nil {
		claimed = shard
		for i := range mine {
			mine[i] = true
		}
	} else {
		for i, pb := range shard {
			key := ss.cacheKey(epoch, pb.GlobalID)
			if !cache.Claim(key, ss.id) {
				continue
			}
			// Won the claim: consult the persistent tier before paying for
			// the pipeline. A disk hit publishes straight into the memory
			// cache (waking any cross-session waiters) and the write loop
			// picks it up as an ordinary cache hit below.
			if f := ss.srv.diskLoadBatch(key); f != nil {
				cache.Fulfill(key, f)
				f.Release()
				continue
			}
			mine[i] = true
			claimed = append(claimed, pb)
		}
	}
	// The trace hooks map positional batch ids through the pipeline's plan,
	// which is now the claimed subset, not the full shard.
	ss.setEpoch(epoch, planLen, claimed)

	ctx, cancelEpoch := context.WithCancel(ss.srv.ctx)
	defer cancelEpoch()
	unwatch := ss.watchConn(cancelEpoch)
	defer unwatch()
	frames := make(chan *Frame, ss.srv.cfg.Prefetch)
	ss.sm.SetQueueGauge(func() int { return len(frames) })
	defer ss.sm.SetQueueGauge(nil)
	fw := ss.newFrameWriter()
	defer fw.close()

	prodErr := make(chan error, 1)
	go ss.produceClaimed(ctx, epoch, claimed, frames, prodErr)

	// The write loop coalesces only frames that are already available: before
	// any wait that could block — the producer's channel empty, or a foreign
	// slot not ready in the cache — pending frames are flushed, so batching
	// trades syscalls, never adds first-frame latency.
	var werr error
	sent := 0
	for i := 0; i < len(shard) && werr == nil; i++ {
		var f *Frame
		if mine[i] {
			var ok bool
			select {
			case f, ok = <-frames:
			default:
				if werr = fw.flush(ctx.Done()); werr != nil {
					cancelEpoch()
					break
				}
				f, ok = <-frames
			}
			if !ok {
				break // producer ended early; prodErr explains why
			}
		} else {
			pb := shard[i]
			key := ss.cacheKey(epoch, pb.GlobalID)
			if f = cache.TryGet(key); f == nil {
				if werr = fw.flush(ctx.Done()); werr != nil {
					cancelEpoch()
					break
				}
				var err error
				f, err = cache.Acquire(key, ss.id,
					ctx.Done(), ss.srv.cfg.CacheWaitTimeout,
					func() (*Frame, error) { return ss.computeBatchFrame(epoch, pb) })
				if err != nil {
					werr = fmt.Errorf("batch %d: %w", pb.GlobalID, err)
					cancelEpoch()
					break
				}
			}
		}
		if werr = ss.writeBatchFrame(fw, f, sum, ctx.Done()); werr == nil {
			sent++
		} else {
			cancelEpoch()
		}
		f.Release()
	}
	if werr == nil {
		if werr = fw.flush(ctx.Done()); werr != nil {
			cancelEpoch()
		}
	}
	// Whatever ended the loop, release everything the producer still emits so
	// it never blocks forever, then collect its verdict.
	for f := range frames {
		f.Release()
	}
	perr := <-prodErr
	if werr != nil {
		return fmt.Errorf("write: %w", werr)
	}
	if perr != nil {
		if errors.Is(perr, context.Canceled) {
			perr = errors.New("server draining")
		}
		ss.srv.sendError(ss.conn, fmt.Sprintf("epoch %d: %v", epoch, perr))
		return fmt.Errorf("epoch %d: %w", epoch, perr)
	}
	ss.sm.AddEpoch()
	ss.srv.metrics.AddEpoch()
	if t := ss.srv.tuner; t != nil {
		t.observe()
	}
	// The watcher must be off the socket before EpochEnd goes out: once the
	// client sees it, the very next bytes on this connection are its next
	// request, and those belong to the session loop's reader.
	unwatch()
	return WriteFrame(ss.conn, EncodeEpochEnd(EpochEnd{Epoch: epoch, Batches: sent, Checksum: sum.Sum64()}))
}

// watchConn watches the session's socket for death while a stream is in
// flight. The protocol is strictly half-duplex — the client sends nothing
// between its request and the EpochEnd reply — so any read activity
// mid-stream means the peer hung up, was severed (a hedged straggler kicked
// by the cluster client), or broke protocol; all of those cancel the epoch
// so the pipeline aborts instead of computing — or sleeping out an injected
// stall — for a socket nobody is reading. Without it, a dead connection is
// only discovered at the next write, which can be arbitrarily far away when
// the producer is stuck behind a degraded worker.
//
// The returned stop function is idempotent; it forces the watcher off the
// socket via a read deadline and must be called before the connection is
// next used for a request/response exchange.
func (ss *session) watchConn(cancel context.CancelFunc) (stop func()) {
	done := make(chan struct{})
	var stopping atomic.Bool
	go func() {
		defer close(done)
		var buf [1]byte
		_, err := ss.conn.Read(buf[:])
		if ne, ok := err.(net.Error); ok && ne.Timeout() && stopping.Load() {
			return // kicked off the socket by stop(), stream still healthy
		}
		cancel()
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			stopping.Store(true)
			ss.conn.SetReadDeadline(time.Now())
			<-done
			ss.conn.SetReadDeadline(time.Time{})
		})
	}
}

// produceClaimed runs the session's pipeline over exactly the batches it
// claimed, publishing each frame to the cache first (so cross-session
// waiters are served at compute speed) and then to the bounded frames
// channel (so the session's own socket still backpressures the pipeline).
// On any exit — completion, failure, panic, abort — unfulfilled claims are
// abandoned so waiters elsewhere wake up and recompute instead of hanging.
func (ss *session) produceClaimed(ctx context.Context, epoch int, claimed []PlanBatch,
	frames chan<- *Frame, prodErr chan<- error) {
	cache := ss.srv.cache
	spec := ss.srv.cfg.Spec
	fulfilled := 0
	var perr error
	defer func() {
		if r := recover(); r != nil {
			perr = fmt.Errorf("serve: epoch producer panicked: %v", r)
		}
		if cache != nil {
			for _, pb := range claimed[fulfilled:] {
				cache.Abandon(ss.cacheKey(epoch, pb.GlobalID))
			}
		}
		prodErr <- perr
		close(frames)
	}()
	if len(claimed) == 0 {
		return // fully cached shard: nothing to produce
	}

	// QoS compute gate: each producer run holds one compute slot, charged
	// the number of claimed batches against the tenant's deficit, so a
	// tenant fanning out many sessions cannot monopolize the pipeline
	// dispatch tier. Scheduling only — once granted, the run produces its
	// exact claimed set, so bytes are untouched.
	if q := ss.srv.qos; q != nil && ss.tenant != nil {
		if err := q.compute.acquire(ss.tenant.name, ss.tenant.weight(),
			int64(len(claimed)), ctx.Done()); err != nil {
			perr = err
			return // defer abandons every claim
		}
		defer q.compute.release()
	}

	batchPlan := make([][]int, len(claimed))
	for i, pb := range claimed {
		batchPlan[i] = pb.Indices
	}
	numWorkers, prefetch := spec.NumWorkers, spec.Prefetch
	if t := ss.srv.tuner; t != nil {
		numWorkers, prefetch = t.pipelineKnobs()
	}
	cfg := pipeline.Config{
		BatchSize:      spec.BatchSize,
		NumWorkers:     numWorkers,
		PrefetchFactor: prefetch,
		PinMemory:      spec.PinMemory,
		Seed:           spec.Seed,
		Epoch:          epoch,
		BatchPlan:      batchPlan,
		Hooks:          ss.hks,
		Mode:           ss.srv.cfg.Mode,
		Engine:         ss.engine,
		WorkScale:      spec.WorkScale,
		MaterializeDim: ss.srv.cfg.MaterializeDim,
		Dispatch:       spec.Dispatch,
		Faults:         ss.srv.cfg.Faults,
		SampleCache:    ss.srv.sampleCache,
		PrefixFP:       ss.srv.prefixFP,
	}
	var clk clock.Clock
	if ss.srv.cfg.Mode == pipeline.RealData || ss.srv.cfg.EmulateTime {
		clk = clock.NewReal()
	} else {
		clk = clock.NewSim()
	}
	clk.Run("serve-producer", func(p clock.Proc) {
		dl := pipeline.NewDataLoader(clk, ss.ds, cfg)
		// A worker-count action taken while this epoch streams resizes the
		// loader through the registry; the loader applies it at its next
		// dispatch point.
		if t := ss.srv.tuner; t != nil {
			t.register(dl)
			defer t.unregister(dl)
		}
		// The ctx.Done branch below only runs between batches, but a
		// worker can be mid-way through a long injected stall when the
		// epoch is cancelled — and the main proc is then blocked in
		// it.Next waiting on that very worker. Bridge the cancellation to
		// the loader's stall interrupt from a plain goroutine so the
		// sleeping worker wakes, its result lands, and the abort path
		// gets to run.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				dl.InterruptStalls()
			case <-watchDone:
			}
		}()
		it := dl.Start(p)
		// Whatever ends the epoch — completion, failure, or abort —
		// consume every in-flight worker result so no batch is left
		// uncredited on the data queue and the clock winds down clean.
		defer it.Drain(p)
		for i := 0; ; i++ {
			b, ok := it.Next(p)
			if !ok {
				perr = it.Err()
				return
			}
			f := encodeBatchFrame(batchToWire(epoch, claimed[i].GlobalID, b))
			if cache != nil {
				cache.Fulfill(ss.cacheKey(epoch, claimed[i].GlobalID), f)
				fulfilled = i + 1
			}
			select {
			case frames <- f:
			case <-ctx.Done():
				// Client gone or server draining: close the index
				// queues so the workers finish what was dispatched
				// and exit. The frame stays valid in the cache (if
				// fulfilled); only this session's reference drops.
				f.Release()
				it.Abort()
				perr = ctx.Err()
				return
			}
		}
	})
}

// newFrameWriter builds the session's pooled write coalescer, wired to the
// tenant's fair write gate (when QoS is on) and the coalescing metrics. An
// active fault injector forces immediate mode so the wire-fault seams keep
// their one-write-per-frame semantics.
func (ss *session) newFrameWriter() *frameWriter {
	cfg := &ss.srv.cfg
	maxFrames := cfg.CoalesceFrames
	if cfg.Faults != nil || maxFrames < 0 {
		maxFrames = 1
	}
	fw := newFrameWriter(ss.conn, cfg.CoalesceBytes, maxFrames, cfg.CoalesceWindow)
	if q := ss.srv.qos; q != nil && ss.tenant != nil {
		fw.gate = q.write
		fw.tenant = ss.tenant.name
		fw.weight = ss.tenant.weight()
	}
	m := ss.srv.metrics
	fw.onFlush = func(frames int) { m.AddWritev(frames) }
	return fw
}

// writeBatchFrame pushes one encoded batch frame through the tenant rate
// limiter, the wire-fault seam, and the coalescing writer, folding the
// stream checksum and crediting metrics. The checksum always folds the CLEAN
// payload — wire faults model the network mangling bytes after the server
// produced them correctly — and the corrupt fault copies the payload before
// flipping a bit, so a cached frame other sessions are concurrently
// streaming is never damaged: faults land per-connection, not in shared
// cache bytes. QoS is schedule only: throttling delays the write and the
// fair gate orders flushes across tenants, but bytes and per-session order
// are untouched.
func (ss *session) writeBatchFrame(fw *frameWriter, f *Frame, sum hash.Hash64, cancel <-chan struct{}) error {
	payload := f.Bytes()
	wireBytes := len(payload) + 4
	if q := ss.srv.qos; q != nil {
		if err := q.throttle(ss.tenant, wireBytes, cancel); err != nil {
			return err
		}
		if err := q.pace(ss.tenant, wireBytes, cancel); err != nil {
			return err
		}
	}
	switch ss.srv.cfg.Faults.NextWireAction() {
	case faultinject.WireDrop:
		ss.conn.Close()
		return errors.New("faultinject: connection dropped before frame")
	case faultinject.WireTruncate:
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		ss.conn.Write(hdr[:])
		ss.conn.Write(payload[:len(payload)/2])
		ss.conn.Close()
		return errors.New("faultinject: frame truncated mid-payload")
	case faultinject.WireCorrupt:
		corrupted := append([]byte(nil), payload...)
		corrupted[len(corrupted)/2] ^= 0xa5
		if err := WriteFrame(ss.conn, corrupted); err != nil {
			return err
		}
	default:
		if err := fw.add(f, cancel); err != nil {
			return err
		}
	}
	sum.Write(payload)
	ss.sm.AddBatch(wireBytes)
	ss.srv.metrics.AddBatch(wireBytes)
	if ss.tenant != nil {
		ss.tenant.addBatch(wireBytes)
	}
	return nil
}

// computeBatchFrame materializes one batch outside the session's streaming
// pipeline: the fallback when a cache claim was abandoned by a failing owner
// or a single-flight wait timed out. The epoch plan fully determines batch
// content — bytes depend only on the epoch seed and the batch's indices,
// never on which pipeline or worker produced them — so a one-batch plan
// yields a frame byte-identical to the one the original owner would have
// cached. It runs untraced (nil hooks, fresh dataset view) so the session's
// positional trace-id mapping is undisturbed.
func (ss *session) computeBatchFrame(epoch int, pb PlanBatch) (f *Frame, err error) {
	spec := ss.srv.cfg.Spec
	cfg := pipeline.Config{
		BatchSize:      spec.BatchSize,
		NumWorkers:     1,
		PinMemory:      spec.PinMemory,
		Seed:           spec.Seed,
		Epoch:          epoch,
		BatchPlan:      [][]int{pb.Indices},
		Mode:           ss.srv.cfg.Mode,
		WorkScale:      spec.WorkScale,
		MaterializeDim: ss.srv.cfg.MaterializeDim,
		Dispatch:       spec.Dispatch,
		Faults:         ss.srv.cfg.Faults,
		SampleCache:    ss.srv.sampleCache,
		PrefixFP:       ss.srv.prefixFP,
	}
	if ss.srv.cfg.Mode != pipeline.RealData {
		cfg.Engine = native.NewEngine(spec.Arch, native.DefaultCPU())
	}
	var clk clock.Clock
	if ss.srv.cfg.Mode == pipeline.RealData || ss.srv.cfg.EmulateTime {
		clk = clock.NewReal()
	} else {
		clk = clock.NewSim()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: fallback pipeline for batch %d panicked: %v", pb.GlobalID, r)
		}
	}()
	clk.Run("serve-fallback", func(p clock.Proc) {
		dl := pipeline.NewDataLoader(clk, spec.Dataset(nil), cfg)
		it := dl.Start(p)
		defer it.Drain(p)
		b, ok := it.Next(p)
		if !ok {
			if err = it.Err(); err == nil {
				err = fmt.Errorf("serve: fallback pipeline produced no batch %d", pb.GlobalID)
			}
			return
		}
		f = encodeBatchFrame(batchToWire(epoch, pb.GlobalID, b))
	})
	return f, err
}

// batchToWire converts a pipeline batch to its wire form.
func batchToWire(epoch, globalID int, b *pipeline.Batch) *Batch {
	wb := &Batch{
		Epoch:    epoch,
		GlobalID: globalID,
		Indices:  b.Indices,
		Labels:   b.Labels,
	}
	if b.Data != nil {
		wb.Dtype = b.Data.Dtype
		wb.Shape = b.Data.Shape
		wb.U8 = b.Data.U8
		wb.F32 = b.Data.F32
	}
	return wb
}
