package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"lotus/internal/pipeline"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

func startCachedTestServer(t *testing.T, spec workloads.Spec, cacheBytes int64, withHTTP bool) *Server {
	t.Helper()
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		BatchCacheBytes: cacheBytes, Logf: t.Logf})
	httpAddr := ""
	if withHTTP {
		httpAddr = "127.0.0.1:0"
	}
	if err := srv.Start("127.0.0.1:0", httpAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestCachedServingByteIdentity is the cache's correctness acceptance test:
// with the materialized-batch cache enabled, rank/world sessions, a
// repeat full-plan session served almost entirely from cache, and an explicit
// ShardReq subset must all stream frames byte-identical to an uncached local
// DataLoader run — and the epoch must have been preprocessed exactly once.
func TestCachedServingByteIdentity(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	srv := startCachedTestServer(t, spec, 64<<20, true)
	const world, epochs = 2, 2

	expected := make([][][]byte, epochs)
	for e := 0; e < epochs; e++ {
		expected[e] = localEpochFrames(t, spec, e)
	}
	planLen := len(expected[0])

	// Pass 1: two concurrent rank/world sessions populate the cache.
	type received struct {
		epoch, globalID int
		payload         []byte
	}
	got := make([][]received, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: world,
				Name: fmt.Sprintf("cached-%d", rank)})
			defer c.Close()
			_, errs[rank] = c.Run(epochs, func(b *Batch, payload []byte) {
				got[rank] = append(got[rank], received{b.Epoch, b.GlobalID, payload})
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := range got {
		for _, rec := range got[rank] {
			if !bytes.Equal(rec.payload, expected[rec.epoch][rec.globalID]) {
				t.Fatalf("pass 1 epoch %d batch %d (rank %d): cached-serving frame differs from uncached local run",
					rec.epoch, rec.globalID, rank)
			}
		}
	}

	// Pass 2: a full-plan session re-requests both epochs; the server must
	// serve from cache (hits) and the bytes must still be identical — the
	// client's checksum verification plus this comparison prove it.
	c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "cached-repeat"})
	repeat := 0
	if _, err := c.Run(epochs, func(b *Batch, payload []byte) {
		repeat++
		if !bytes.Equal(payload, expected[b.Epoch][b.GlobalID]) {
			t.Fatalf("pass 2 epoch %d batch %d: cache-served frame differs from uncached local run",
				b.Epoch, b.GlobalID)
		}
	}); err != nil {
		t.Fatalf("repeat client: %v", err)
	}
	c.Close()
	if repeat != epochs*planLen {
		t.Fatalf("repeat client saw %d frames, want %d", repeat, epochs*planLen)
	}

	// ShardReq subset, out of plan order: the cluster-routing path must hit
	// the same cache entries.
	ids := []int{7, 3, 1}
	sc := NewClient(ClientConfig{Addr: srv.Addr(), Name: "cached-shardreq"})
	var shardGot [][]byte
	if err := sc.FetchShard(0, ids, func(b *Batch, payload []byte) {
		shardGot = append(shardGot, append([]byte(nil), payload...))
	}); err != nil {
		t.Fatalf("shard fetch: %v", err)
	}
	sc.Close()
	if len(shardGot) != len(ids) {
		t.Fatalf("shard fetch returned %d frames, want %d", len(shardGot), len(ids))
	}
	for i, gid := range ids {
		if !bytes.Equal(shardGot[i], expected[0][gid]) {
			t.Fatalf("shard fetch batch %d differs from uncached local run", gid)
		}
	}

	// Exactly-once preprocessing: misses count pipeline-executed batches.
	// Pass 1's disjoint shards computed each epoch's plan once; everything
	// after was hits (no single-flight waits needed — pass 2 ran alone).
	st, ok := srv.CacheStats()
	if !ok {
		t.Fatal("cache enabled but CacheStats reports disabled")
	}
	if want := int64(epochs * planLen); st.Misses != want {
		t.Fatalf("misses %d, want %d (each batch preprocessed exactly once)", st.Misses, want)
	}
	if st.Hits < int64(epochs*planLen+len(ids)) {
		t.Fatalf("hits %d, want >= %d", st.Hits, epochs*planLen+len(ids))
	}
	if st.Abandoned != 0 {
		t.Fatalf("abandoned %d on a healthy run", st.Abandoned)
	}

	// The sidecar exposes the cache counters.
	var snap MetricsSnapshot
	getJSON(t, "http://"+srv.HTTPAddr()+"/metrics", &snap)
	if snap.Cache == nil {
		t.Fatal("/metrics has no cache block with the cache enabled")
	}
	if snap.Cache.Hits != st.Hits || snap.Cache.Misses != st.Misses {
		t.Fatalf("/metrics cache %+v does not match CacheStats %+v", snap.Cache, st)
	}
}

// TestCachedServingSingleFlight runs K concurrent full-plan sessions over the
// same epoch and proves the single-flight property end to end: the pipeline
// executed each batch exactly once (misses == planLen), every other request
// was a hit or a single-flight wait, and all K clients got byte-identical
// streams.
func TestCachedServingSingleFlight(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	srv := startCachedTestServer(t, spec, 64<<20, false)
	expected := localEpochFrames(t, spec, 0)
	planLen := len(expected)
	const K = 4

	frames := make([][][]byte, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(ClientConfig{Addr: srv.Addr(),
				Name: fmt.Sprintf("singleflight-%d", i)})
			defer c.Close()
			frames[i] = make([][]byte, planLen)
			_, errs[i] = c.Run(1, func(b *Batch, payload []byte) {
				frames[i][b.GlobalID] = append([]byte(nil), payload...)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 0; i < K; i++ {
		for gid := 0; gid < planLen; gid++ {
			if !bytes.Equal(frames[i][gid], expected[gid]) {
				t.Fatalf("client %d batch %d differs from uncached local run", i, gid)
			}
		}
	}

	st, _ := srv.CacheStats()
	if want := int64(planLen); st.Misses != want {
		t.Fatalf("misses %d, want %d: K=%d concurrent sessions must preprocess each batch exactly once", st.Misses, want, K)
	}
	if total := st.Hits + st.SingleflightWait; total != int64((K-1)*planLen) {
		t.Fatalf("hits+waits = %d, want %d", total, (K-1)*planLen)
	}
	if st.Abandoned != 0 {
		t.Fatalf("abandoned %d on a healthy run", st.Abandoned)
	}
}

// TestCachedServingTinyBudgetRecomputes: a cache too small for the epoch
// still serves byte-identical streams — entries are evicted and recomputed,
// trading CPU for memory, never correctness.
func TestCachedServingTinyBudgetRecomputes(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	srv := startCachedTestServer(t, spec, 1024, false) // ~1-2 frames resident
	expected := localEpochFrames(t, spec, 0)

	for pass := 0; pass < 2; pass++ {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: fmt.Sprintf("tiny-%d", pass)})
		n := 0
		if _, err := c.Run(1, func(b *Batch, payload []byte) {
			n++
			if !bytes.Equal(payload, expected[b.GlobalID]) {
				t.Fatalf("pass %d batch %d differs under eviction pressure", pass, b.GlobalID)
			}
		}); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		c.Close()
		if n != len(expected) {
			t.Fatalf("pass %d saw %d frames, want %d", pass, n, len(expected))
		}
	}
	st, _ := srv.CacheStats()
	if st.Evicted == 0 {
		t.Fatal("tiny budget evicted nothing")
	}
	if st.BytesUsed > 1024 {
		t.Fatalf("resident bytes %d exceed budget 1024", st.BytesUsed)
	}
	// The second pass could not be all hits: entries were evicted and the
	// batches recomputed (misses beyond one epoch's plan).
	if st.Misses <= int64(len(expected)) {
		t.Fatalf("misses %d: eviction pressure should force recomputes beyond %d", st.Misses, len(expected))
	}
}
