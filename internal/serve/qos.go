package serve

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// Per-tenant quality of service. A tenant (Hello.Tenant) is the paying
// principal behind some set of sessions — one trainer job, one team, one
// product — and the unit of fairness once O(1000) sessions contend for the
// shared preprocessing tiers. Two mechanisms compose:
//
//   - Token buckets (TenantLimit.BytesPerSec / BatchesPerSec) cap a tenant's
//     absolute service rate. They pace the write loop of every session the
//     tenant owns, so the cap holds across however many connections the
//     tenant opens.
//   - A deficit-weighted-fair gate (fairGate) arbitrates the shared
//     contention points — concurrent producing pipelines and in-flight batch
//     writes — so that when demand exceeds capacity, tenants progress in
//     proportion to their weights regardless of how many sessions each one
//     runs. This is the tf.data-service multi-consumer model: one greedy
//     trainer cannot starve the rest.
//   - A fair-share pacer (fairPacer) bounds relative progress on the wire:
//     no tenant's weighted served bytes may run more than a fixed lead ahead
//     of the slowest *active* tenant. The gates arbitrate only when their
//     slots saturate; the pacer is what keeps tenants fair when the true
//     bottleneck is elsewhere (CPU, the shared cache, the kernel), because a
//     tenant that buys extra throughput with extra sessions runs straight
//     into its lead bound and is paced until its peers catch up. Idle
//     tenants age out of the active set, so the pacer is work conserving.
//
// QoS is pure schedule, never content: it delays or reorders work *across*
// sessions, but within a session frames still stream in plan order and the
// bytes are untouched, so byte-identity versus a clients=1 run holds by
// construction under any limit configuration.

// TenantLimit bounds one tenant's share of the server. The zero value means
// unlimited rate with weight 1.
type TenantLimit struct {
	// BytesPerSec caps the tenant's aggregate served wire bytes per second
	// across all its sessions (token bucket). <= 0 means unlimited.
	BytesPerSec int64
	// BatchesPerSec caps the tenant's aggregate served batches per second.
	// <= 0 means unlimited.
	BatchesPerSec int64
	// BurstBytes / BurstBatches are the bucket depths; 0 defaults to one
	// second's worth of the corresponding rate.
	BurstBytes   int64
	BurstBatches int64
	// Weight is the tenant's share under deficit-weighted-fair contention
	// (default 1). A weight-2 tenant drains twice the bytes per scheduling
	// round of a weight-1 tenant when both have work queued.
	Weight int
}

// errQoSCanceled reports that a gate wait or throttle sleep was cut short by
// the caller's cancel channel (epoch abort, server teardown).
var errQoSCanceled = errors.New("serve: qos wait canceled")

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

// tokenBucket is a standard leaky token bucket with debt: take always
// succeeds and returns how long the caller must pace before proceeding, which
// keeps the arithmetic deterministic for an injected clock.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take removes n tokens (the balance may go negative) and returns the delay
// until the debt is repaid; 0 means proceed immediately.
func (b *tokenBucket) take(n float64, now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	b.tokens -= n
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// ---------------------------------------------------------------------------
// Deficit-weighted-fair gate
// ---------------------------------------------------------------------------

// fairGate arbitrates a fixed pool of concurrency slots between tenants with
// deficit round robin: each queued tenant accumulates quantum*weight of
// byte-denominated credit per scheduling round and its head waiter is granted
// a slot once the credit covers the waiter's cost. When the gate is
// uncontended (no queue), acquisition is a lock-plus-decrement fast path, so
// the fair scheduler costs nothing until it is needed (work conserving).
type fairGate struct {
	mu      sync.Mutex
	free    int
	quantum int64
	queues  map[string]*gateQueue
	ring    []*gateQueue // round-robin order over queues with waiters
	idx     int
	waiting int // live (non-canceled) queued waiters

	grants int64
	queued int64
}

type gateQueue struct {
	name    string
	weight  int64
	deficit int64
	// credited marks that this queue already received its quantum for the
	// current round-robin visit. Dispatch runs incrementally — it returns
	// whenever slots run out and resumes on the next release — so without
	// the flag every resume would re-credit the queue it left off on,
	// inflating that tenant's share.
	credited bool
	q        []*gateWaiter
}

type gateWaiter struct {
	cost     int64
	ready    chan struct{}
	granted  bool
	canceled bool
}

func newFairGate(slots int, quantum int64) *fairGate {
	if slots < 1 {
		slots = 1
	}
	if quantum < 1 {
		quantum = 256 << 10
	}
	return &fairGate{free: slots, quantum: quantum, queues: make(map[string]*gateQueue)}
}

// acquire blocks until the caller holds one slot, charged cost units of the
// tenant's deficit, or cancel fires. Every successful acquire must be paired
// with exactly one release.
func (g *fairGate) acquire(tenant string, weight int, cost int64, cancel <-chan struct{}) error {
	if cost < 1 {
		cost = 1
	}
	g.mu.Lock()
	if g.waiting == 0 && g.free > 0 {
		g.free--
		g.grants++
		g.mu.Unlock()
		return nil
	}
	q := g.queues[tenant]
	if q == nil {
		w := int64(weight)
		if w < 1 {
			w = 1
		}
		q = &gateQueue{name: tenant, weight: w}
		g.queues[tenant] = q
	}
	if len(q.q) == 0 {
		g.ring = append(g.ring, q)
	}
	w := &gateWaiter{cost: cost, ready: make(chan struct{})}
	q.q = append(q.q, w)
	g.waiting++
	g.queued++
	g.dispatchLocked()
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-cancel:
		g.mu.Lock()
		if w.granted {
			// The grant raced the cancel; the caller owns the slot and its
			// normal release path runs.
			g.mu.Unlock()
			return nil
		}
		w.canceled = true
		g.waiting--
		g.mu.Unlock()
		return errQoSCanceled
	}
}

// release returns one slot and wakes whatever the scheduler grants next.
func (g *fairGate) release() {
	g.mu.Lock()
	g.free++
	g.dispatchLocked()
	g.mu.Unlock()
}

// dispatchLocked runs deficit round robin until slots or waiters run out.
// Each round-robin visit credits the queue exactly once; the loop terminates
// because every full ring cycle grows each queue's deficit by at least
// quantum while head costs are finite, so a grant (which shrinks waiting) is
// always a bounded number of cycles away while free > 0. When slots run out
// mid-service, dispatch returns with the ring pointer parked on the current
// queue (its visit credit already spent, not re-issued), so the next release
// resumes that queue's remaining deficit instead of starting a fresh visit —
// without this, sequential single-slot operation would collapse weighted
// shares to plain round robin.
func (g *fairGate) dispatchLocked() {
	for g.free > 0 && g.waiting > 0 {
		if len(g.ring) == 0 {
			return
		}
		if g.idx >= len(g.ring) {
			g.idx = 0
		}
		q := g.ring[g.idx]
		for len(q.q) > 0 && q.q[0].canceled {
			q.q = q.q[1:]
		}
		if len(q.q) == 0 {
			// Idle queues forfeit banked credit (standard DRR), so a tenant
			// cannot save up during quiet periods and burst past its share.
			q.deficit = 0
			q.credited = false
			g.ring = append(g.ring[:g.idx], g.ring[g.idx+1:]...)
			continue
		}
		if !q.credited {
			q.deficit += g.quantum * q.weight
			q.credited = true
		}
		for g.free > 0 && len(q.q) > 0 {
			w := q.q[0]
			if w.canceled {
				q.q = q.q[1:]
				continue
			}
			if q.deficit < w.cost {
				break
			}
			q.deficit -= w.cost
			q.q = q.q[1:]
			g.free--
			g.waiting--
			g.grants++
			w.granted = true
			close(w.ready)
		}
		if len(q.q) == 0 {
			q.deficit = 0
			q.credited = false
			g.ring = append(g.ring[:g.idx], g.ring[g.idx+1:]...)
			continue
		}
		if g.free == 0 {
			return // resume this queue's visit on the next release
		}
		// Deficit exhausted for this visit: move on, next visit re-credits.
		q.credited = false
		g.idx++
	}
}

func (g *fairGate) stats() (grants, queued int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.grants, g.queued
}

// ---------------------------------------------------------------------------
// Fair-share pacer
// ---------------------------------------------------------------------------

// pacerScale is the fixed-point factor for weight-normalized virtual time:
// a tenant's vtime advances by cost*pacerScale/weight per charge, so integer
// division never loses more than 1/pacerScale of a byte per frame.
const pacerScale = 256

// fairPacer implements bounded-lead fair sharing over served wire bytes.
// Each tenant carries a virtual time — cumulative served bytes divided by its
// weight — and admit refuses to charge a tenant whose vtime would run more
// than maxLead ahead of the slowest active peer. The slowest active tenant is
// never paced (its lead is <= 0), so some tenant always progresses and the
// rest are dragged along within the lead bound: weighted service rates
// equalize without the pacer ever needing to know the server's capacity.
// Tenants idle longer than window drop out of the active set and stop
// constraining their peers; a joining (or rejoining) tenant starts at the
// active minimum, so it gets no retroactive catch-up burst and owes no debt.
type fairPacer struct {
	mu      sync.Mutex
	maxLead int64 // in vtime units (bytes*pacerScale per unit weight)
	window  time.Duration
	step    time.Duration // recheck interval while paced
	entries map[string]*pacerEntry

	paced int64 // admits that had to wait at least once (stats)
}

type pacerEntry struct {
	vtime      int64
	lastActive time.Time
}

func newFairPacer(leadBytes int64, window, step time.Duration) *fairPacer {
	if leadBytes < 1 {
		leadBytes = 1 << 20
	}
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	if step <= 0 {
		step = time.Millisecond
	}
	return &fairPacer{
		maxLead: leadBytes * pacerScale,
		window:  window,
		step:    step,
		entries: make(map[string]*pacerEntry),
	}
}

// admit asks to charge cost bytes to the tenant. It returns 0 and applies the
// charge if the tenant is within its lead bound, or a pause after which the
// caller should retry — peers may have advanced, or the laggards holding the
// tenant back may have idled out of the active set by then.
func (p *fairPacer) admit(tenant string, weight int, cost int64, now time.Time) time.Duration {
	if weight < 1 {
		weight = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[tenant]
	fresh := e == nil
	if fresh {
		e = &pacerEntry{}
		p.entries[tenant] = e
	}
	// The floor is the slowest *other* tenant still inside the active window.
	// The requester itself is active by definition and never its own floor:
	// with no active peers its lead is 0 and it proceeds at full rate.
	minActive := int64(-1)
	hasPeer := false
	for name, o := range p.entries {
		if name == tenant || now.Sub(o.lastActive) > p.window {
			continue
		}
		if !hasPeer || o.vtime < minActive {
			minActive = o.vtime
			hasPeer = true
		}
	}
	if hasPeer && (fresh || now.Sub(e.lastActive) > p.window) {
		// New or returning tenant: fast-forward to the current floor (never
		// backward) so idle time is neither banked as catch-up credit nor
		// held against it.
		if e.vtime < minActive {
			e.vtime = minActive
		}
	}
	if hasPeer && e.vtime-minActive > p.maxLead {
		p.paced++
		return p.step
	}
	e.vtime += cost * pacerScale / int64(weight)
	e.lastActive = now
	return 0
}

func (p *fairPacer) stats() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.paced
}

// ---------------------------------------------------------------------------
// Tenant registry
// ---------------------------------------------------------------------------

// tenantState is one tenant's live QoS state and counters.
type tenantState struct {
	name  string
	limit TenantLimit
	bytes *tokenBucket // nil = unlimited
	batch *tokenBucket // nil = unlimited

	mu         sync.Mutex
	sessions   int
	batchesSrv int64
	bytesSrv   int64
	throttled  time.Duration
	paced      time.Duration
}

func (t *tenantState) weight() int {
	if t.limit.Weight < 1 {
		return 1
	}
	return t.limit.Weight
}

// addBatch credits one served frame to the tenant totals.
func (t *tenantState) addBatch(bytes int) {
	t.mu.Lock()
	t.batchesSrv++
	t.bytesSrv += int64(bytes)
	t.mu.Unlock()
}

// qosState is the server's QoS root: the tenant registry plus the two shared
// fair gates. now and sleep are injectable for deterministic tests.
type qosState struct {
	mu      sync.Mutex
	limits  map[string]TenantLimit
	def     TenantLimit
	tenants map[string]*tenantState

	write   *fairGate  // in-flight batch writes, cost = frame bytes
	compute *fairGate  // producing pipelines, cost = claimed batches
	pacer   *fairPacer // bounded-lead byte pacing, nil when disabled

	now   func() time.Time
	sleep func(d time.Duration, cancel <-chan struct{}) bool
}

func newQoSState(limits map[string]TenantLimit, def TenantLimit, writeSlots, computeSlots int, leadBytes int64) *qosState {
	qs := &qosState{
		limits:  limits,
		def:     def,
		tenants: make(map[string]*tenantState),
		write:   newFairGate(writeSlots, 256<<10),
		compute: newFairGate(computeSlots, 1),
		now:     time.Now,
		sleep:   sleepInterruptible,
	}
	if leadBytes >= 0 {
		qs.pacer = newFairPacer(leadBytes, 0, 0)
	}
	return qs
}

func sleepInterruptible(d time.Duration, cancel <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// tenant interns the named tenant's state, creating it with the configured
// (or default) limits on first sight.
func (qs *qosState) tenant(name string) *tenantState {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	t := qs.tenants[name]
	if t != nil {
		return t
	}
	limit, ok := qs.limits[name]
	if !ok {
		limit = qs.def
	}
	t = &tenantState{name: name, limit: limit}
	now := qs.now()
	if limit.BytesPerSec > 0 {
		t.bytes = newTokenBucket(float64(limit.BytesPerSec), float64(limit.BurstBytes), now)
	}
	if limit.BatchesPerSec > 0 {
		t.batch = newTokenBucket(float64(limit.BatchesPerSec), float64(limit.BurstBatches), now)
	}
	qs.tenants[name] = t
	return t
}

// throttle paces one outgoing frame of wireBytes against the tenant's rate
// limits, sleeping out any bucket debt. It returns errQoSCanceled if cancel
// fires mid-sleep.
func (qs *qosState) throttle(t *tenantState, wireBytes int, cancel <-chan struct{}) error {
	if t == nil || (t.bytes == nil && t.batch == nil) {
		return nil
	}
	now := qs.now()
	var d time.Duration
	if t.bytes != nil {
		d = t.bytes.take(float64(wireBytes), now)
	}
	if t.batch != nil {
		if bd := t.batch.take(1, now); bd > d {
			d = bd
		}
	}
	if d <= 0 {
		return nil
	}
	t.mu.Lock()
	t.throttled += d
	t.mu.Unlock()
	if !qs.sleep(d, cancel) {
		return errQoSCanceled
	}
	return nil
}

// pace holds one outgoing frame of wireBytes inside the tenant's fair-share
// lead bound, sleeping in pacer steps until the charge is admitted. It
// returns errQoSCanceled if cancel fires mid-pause.
func (qs *qosState) pace(t *tenantState, wireBytes int, cancel <-chan struct{}) error {
	if qs.pacer == nil || t == nil {
		return nil
	}
	for {
		wait := qs.pacer.admit(t.name, t.weight(), int64(wireBytes), qs.now())
		if wait <= 0 {
			return nil
		}
		t.mu.Lock()
		t.paced += wait
		t.mu.Unlock()
		if !qs.sleep(wait, cancel) {
			return errQoSCanceled
		}
	}
}

// TenantSnapshot is the JSON form of one tenant's counters on /metrics.
type TenantSnapshot struct {
	Tenant      string  `json:"tenant"`
	Weight      int     `json:"weight"`
	Sessions    int     `json:"sessions"`
	Batches     int64   `json:"batches_sent"`
	Bytes       int64   `json:"bytes_sent"`
	ThrottledMs float64 `json:"throttled_ms"`
	PacedMs     float64 `json:"paced_ms"`
}

// snapshot returns per-tenant rows sorted by name.
func (qs *qosState) snapshot() []TenantSnapshot {
	qs.mu.Lock()
	states := make([]*tenantState, 0, len(qs.tenants))
	for _, t := range qs.tenants {
		states = append(states, t)
	}
	qs.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(states))
	for _, t := range states {
		t.mu.Lock()
		out = append(out, TenantSnapshot{
			Tenant:      t.name,
			Weight:      t.weight(),
			Sessions:    t.sessions,
			Batches:     t.batchesSrv,
			Bytes:       t.bytesSrv,
			ThrottledMs: float64(t.throttled.Microseconds()) / 1000,
			PacedMs:     float64(t.paced.Microseconds()) / 1000,
		})
		t.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// JainIndex computes Jain's fairness index over per-tenant throughput values:
// (Σx)² / (n·Σx²), 1.0 when perfectly fair, 1/n when one tenant takes all.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
