package serve

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"lotus/internal/control"
	"lotus/internal/core/trace"
	"lotus/internal/pipeline"
	"lotus/internal/testutil"
)

// TestAutoTuneLoopActsAndStaysByteIdentical is the end-to-end acceptance
// test for the closed control loop: a sim-mode server with a deliberately
// twitchy controller (1ns stall threshold, cooldown 1) must actually move
// the worker knob while epochs stream, record every actuation in the
// /metrics control block and as control: ops in the trace ring — and every
// served frame must stay byte-identical to an untuned local DataLoader run,
// because worker count is schedule, not content.
func TestAutoTuneLoopActsAndStaysByteIdentical(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	spec := loopbackSpec()
	srv := New(Config{
		Spec:     spec,
		Mode:     pipeline.Simulated,
		Prefetch: 2,
		AutoTune: true,
		// Count every wait (even the 1µs no-wait marker) as a stall so the
		// controller is guaranteed to see a preprocessing-bound signal and
		// grow workers each tick.
		AutoTuneLongWait: time.Nanosecond,
		AutoTuneControl:  control.Config{Cooldown: 1, MinWaitSamples: 1},
		Logf:             t.Logf,
	})
	if err := srv.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	const epochs = 3
	expected := make([][][]byte, epochs)
	for e := 0; e < epochs; e++ {
		expected[e] = localEpochFrames(t, spec, e)
	}

	c := NewClient(ClientConfig{Addr: srv.Addr(), Rank: 0, World: 1, Name: "autotune"})
	type received struct {
		epoch, globalID int
		payload         []byte
	}
	var got []received
	stats, err := c.Run(epochs, func(b *Batch, payload []byte) {
		got = append(got, received{b.Epoch, b.GlobalID, payload})
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epochs != epochs {
		t.Fatalf("client completed %d epochs, want %d", stats.Epochs, epochs)
	}

	// Byte identity under live retuning: every frame matches the local run.
	perEpoch := make([]int, epochs)
	for _, rec := range got {
		perEpoch[rec.epoch]++
		if !bytes.Equal(rec.payload, expected[rec.epoch][rec.globalID]) {
			t.Fatalf("epoch %d batch %d: autotuned frame differs from untuned local run",
				rec.epoch, rec.globalID)
		}
	}
	for e, n := range perEpoch {
		if n != len(expected[e]) {
			t.Fatalf("epoch %d: got %d batches, want %d", e, n, len(expected[e]))
		}
	}

	// The controller must have acted: baseline at epoch 1, then a grow per
	// tick under the saturated wait signal.
	st, ok := srv.ControlStats()
	if !ok {
		t.Fatal("ControlStats: autotune reported disabled")
	}
	if len(st.Actions) == 0 {
		t.Fatal("controller recorded no actions over a preprocessing-bound run")
	}
	if st.Workers <= spec.NumWorkers {
		t.Fatalf("workers still %d (started at %d) — controller never grew the pool",
			st.Workers, spec.NumWorkers)
	}
	for _, a := range st.Actions {
		if a.Knob != "workers" && a.Knob != "prefetch" {
			t.Fatalf("unexpected knob %q actuated: %v", a.Knob, a)
		}
	}

	// The /metrics control block mirrors the same history.
	var snap MetricsSnapshot
	getJSON(t, "http://"+srv.HTTPAddr()+"/metrics", &snap)
	if snap.Control == nil {
		t.Fatal("/metrics has no control block with autotune on")
	}
	if len(snap.Control.Actions) != len(st.Actions) {
		t.Fatalf("/metrics control block has %d actions, ControlStats has %d",
			len(snap.Control.Actions), len(st.Actions))
	}

	// Every actuation left a control: op in the trace ring at the reserved
	// controller PID.
	controlOps := 0
	for _, r := range srv.ring.Snapshot() {
		if r.Kind == trace.KindOp && strings.HasPrefix(r.Op, "control:") {
			if r.PID != controlPID {
				t.Fatalf("control op filed under PID %d, want %d", r.PID, controlPID)
			}
			controlOps++
		}
	}
	if controlOps != len(st.Actions) {
		t.Fatalf("ring holds %d control: ops, controller history has %d actions",
			controlOps, len(st.Actions))
	}

	// Close the session before draining so Shutdown sees an idle server.
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestAutoTuneOffHasNoControlSurface pins the default: no tuner, no control
// block, no control ops.
func TestAutoTuneOffHasNoControlSurface(t *testing.T) {
	spec := loopbackSpec()
	srv := startTestServer(t, spec, false)
	if _, ok := srv.ControlStats(); ok {
		t.Fatal("ControlStats reported enabled without -autotune")
	}
}
