package serve

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"lotus/internal/pipeline"
	"lotus/internal/testutil"
	"lotus/internal/workloads"
)

// startServer is startTestServer with full Config control.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(cfg)
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// holdSession dials and completes a handshake, holding one admitted session
// slot until the returned conn is closed.
func holdSession(t *testing.T, srv *Server, name string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion, World: 1, Name: name}))
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("%s handshake: %v", name, err)
	}
	if msg, err := DecodeMessage(payload); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(HelloAck); !ok {
		t.Fatalf("%s handshake: got %T, want HelloAck", name, msg)
	}
	conn.SetReadDeadline(time.Time{})
	return conn
}

// TestAdmissionBusyReply: with the session table full and queueing disabled,
// a new connection is answered with a clean Error frame carrying CodeBusy —
// the retryable overload signal — not a hang or a raw close.
func TestAdmissionBusyReply(t *testing.T) {
	spec := loopbackSpec()
	srv := startServer(t, Config{Spec: spec, Mode: pipeline.Simulated,
		MaxSessions: 1, AdmitQueue: -1})

	holder := holdSession(t, srv, "holder")
	defer holder.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion, World: 1, Name: "turned-away"}))
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("busy reply: %v", err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	em, ok := msg.(ErrorMsg)
	if !ok {
		t.Fatalf("busy reply was %T, want ErrorMsg", msg)
	}
	if em.Code != CodeBusy {
		t.Fatalf("busy reply code %d, want CodeBusy", em.Code)
	}
	snap := srv.Snapshot(time.Now())
	if snap.BusyRejections != 1 {
		t.Fatalf("busy_rejections %d, want 1", snap.BusyRejections)
	}
}

// TestClientRetriesBusy: a busy rejection flows through the client's
// existing jittered-backoff retry loop — unlike a fatal ServerError — and
// the session succeeds once the slot frees up.
func TestClientRetriesBusy(t *testing.T) {
	spec := loopbackSpec()
	srv := startServer(t, Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		MaxSessions: 1, AdmitQueue: -1})

	holder := holdSession(t, srv, "holder")
	released := false
	var sleeps []time.Duration
	c := NewClient(ClientConfig{
		Addr: srv.Addr(), Name: "patient", Retries: 8,
		BackoffBase: 20 * time.Millisecond,
		Sleep: func(d time.Duration) {
			sleeps = append(sleeps, d)
			if !released {
				released = true
				holder.Close() // the slot frees while the client backs off
			}
			time.Sleep(d)
		},
	})
	defer c.Close()
	stats, err := c.Run(1, nil)
	if err != nil {
		t.Fatalf("run after busy: %v", err)
	}
	if stats.Retries < 1 || len(sleeps) < 1 {
		t.Fatalf("busy was not retried: retries=%d sleeps=%v", stats.Retries, sleeps)
	}
	if stats.Batches != 10 {
		t.Fatalf("got %d batches after retry, want 10", stats.Batches)
	}
}

// TestAdmissionQueueAdmits: a connection arriving while the table is full
// parks in the bounded admission queue and is admitted — not rejected — as
// soon as a slot frees within the wait budget.
func TestAdmissionQueueAdmits(t *testing.T) {
	spec := loopbackSpec()
	srv := startServer(t, Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		MaxSessions: 1, AdmitQueue: 4, AdmitWait: 30 * time.Second})

	holder := holdSession(t, srv, "holder")

	done := make(chan error, 1)
	go func() {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "queued", Retries: 0})
		defer c.Close()
		stats, err := c.Run(1, nil)
		if err == nil && stats.Retries != 0 {
			err = fmt.Errorf("queued client needed %d retries", stats.Retries)
		}
		done <- err
	}()

	// Wait until the connection is parked in the admission queue, then free
	// the slot.
	deadline := time.Now().Add(10 * time.Second)
	for srv.admitWaiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second connection never queued")
		}
		time.Sleep(time.Millisecond)
	}
	holder.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued client: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued client never completed")
	}
	if snap := srv.Snapshot(time.Now()); snap.AdmitQueued != 1 || snap.BusyRejections != 0 {
		t.Fatalf("admit_queued=%d busy=%d, want 1 queued and 0 rejected",
			snap.AdmitQueued, snap.BusyRejections)
	}
}

// TestTracePIDStrideValidation: a stride too small for the worker count is
// raised, never trusted — the regression case for session pid ranges
// aliasing each other (or crowding controlPID) once a pipeline uses more
// pids than the stride.
func TestTracePIDStrideValidation(t *testing.T) {
	spec := loopbackSpec()
	spec.NumWorkers = 500
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, TracePIDStride: 100})
	if got, want := srv.cfg.TracePIDStride, 502; got != want {
		t.Fatalf("stride %d, want raised to %d (workers+2)", got, want)
	}
	// Default is preserved when it already clears the worker span.
	srv = New(Config{Spec: loopbackSpec(), Mode: pipeline.Simulated})
	if srv.cfg.TracePIDStride != 1000 {
		t.Fatalf("default stride %d, want 1000", srv.cfg.TracePIDStride)
	}
	// The autotuner's worker bound counts too: it can raise workers above
	// the spec mid-epoch.
	spec = loopbackSpec()
	spec.NumWorkers = 2
	srv = New(Config{Spec: spec, Mode: pipeline.Simulated, AutoTune: true, TracePIDStride: 4})
	if srv.cfg.TracePIDStride < 18 { // controller default MaxWorkers 16 + 2
		t.Fatalf("autotune stride %d, want >= 18", srv.cfg.TracePIDStride)
	}
}

// TestTracePIDRangesDisjoint streams two concurrent sessions with a tight
// (but valid) stride and asserts every pipeline trace pid stays inside its
// session's private window: offsets within a stride never exceed the worker
// span, so adjacent sessions cannot alias, and nothing lands on controlPID.
func TestTracePIDRangesDisjoint(t *testing.T) {
	spec := loopbackSpec() // 2 workers
	const stride = 8
	srv := startServer(t, Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		TracePIDStride: stride})

	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: 2,
				Name: fmt.Sprintf("pid-%d", rank)})
			defer c.Close()
			if _, err := c.Run(1, nil); err != nil {
				t.Errorf("client %d: %v", rank, err)
			}
		}(rank)
	}
	wg.Wait()

	bases := map[int]bool{}
	for _, rec := range srv.ring.Snapshot() {
		if rec.PID == controlPID {
			t.Fatalf("pipeline record landed on controlPID: %+v", rec)
		}
		if rec.PID < pipeline.MainPID {
			continue
		}
		off := (rec.PID - pipeline.MainPID) % stride
		// Valid offsets: main (0) plus workers (1..NumWorkers).
		if off > spec.NumWorkers {
			t.Fatalf("pid %d offset %d spills past the %d-worker span — aliases the next session",
				rec.PID, off, spec.NumWorkers)
		}
		bases[(rec.PID-pipeline.MainPID)/stride] = true
	}
	if len(bases) != 2 {
		t.Fatalf("trace shows %d session pid windows, want 2 disjoint", len(bases))
	}
}

// TestGreedyTenantThrottled: a rate-limited tenant observes throttle time
// while an unlimited tenant on the same server does not, and both streams
// stay byte-perfect (the client checksum enforces it) — QoS is schedule,
// never content.
func TestGreedyTenantThrottled(t *testing.T) {
	spec := loopbackSpec()
	srv := startServer(t, Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		BatchCacheBytes: 64 << 20,
		Tenants: map[string]TenantLimit{
			// 20 batches/sec with a one-batch burst: a 5-batch cached shard
			// streams in well under 250ms, so debt — and therefore observed
			// throttle time — is guaranteed even on a slow, instrumented run.
			"greedy": {BatchesPerSec: 20, BurstBatches: 1},
		}})

	var wg sync.WaitGroup
	for i, tenant := range []string{"greedy", "polite"} {
		wg.Add(1)
		go func(rank int, tenant string) {
			defer wg.Done()
			c := NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: 2,
				Name: tenant + "-sess", Tenant: tenant})
			defer c.Close()
			if _, err := c.Run(2, nil); err != nil {
				t.Errorf("%s: %v", tenant, err)
			}
		}(i, tenant)
	}
	wg.Wait()

	snap := srv.Snapshot(time.Now())
	if len(snap.Tenants) != 2 {
		t.Fatalf("tenant rows %d, want 2: %+v", len(snap.Tenants), snap.Tenants)
	}
	greedy, polite := snap.Tenants[0], snap.Tenants[1]
	if greedy.Tenant != "greedy" || polite.Tenant != "polite" {
		t.Fatalf("tenant rows %+v", snap.Tenants)
	}
	if greedy.ThrottledMs <= 0 {
		t.Fatalf("rate-limited tenant shows no throttle time: %+v", greedy)
	}
	if polite.ThrottledMs != 0 {
		t.Fatalf("unlimited tenant was throttled: %+v", polite)
	}
	if greedy.Batches == 0 || polite.Batches == 0 {
		t.Fatalf("tenant accounting missing batches: %+v", snap.Tenants)
	}
}

// TestSoak256Sessions is the scale soak: 256 concurrent loopback sessions
// (64 QoS tenants, admission control armed well above the load) each stream
// their one-batch shard of a 256-batch epoch. Every frame must be
// byte-identical to a local ground-truth run, the shared epoch plan must
// have been built once — not 256+ times — and no goroutine may outlive the
// drain (the t.Cleanup leak check runs after the server closes).
func TestSoak256Sessions(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	const world = 256
	spec := workloads.ICSpec(2560, 7)
	spec.BatchSize = 10 // 256 batches: one per rank
	spec.NumWorkers = 1
	srv := startServer(t, Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		BatchCacheBytes: 128 << 20, MaxSessions: 512, QoS: true})

	expected := localEpochFrames(t, spec, 0)

	type result struct {
		rank    int
		batches int
		err     error
	}
	var mu sync.Mutex
	var mismatches []string
	results := make(chan result, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: world,
				Name:   fmt.Sprintf("soak-%d", rank),
				Tenant: fmt.Sprintf("team-%d", rank%64), Retries: 8})
			defer c.Close()
			stats, err := c.Run(1, func(b *Batch, payload []byte) {
				if !bytes.Equal(payload, expected[b.GlobalID]) {
					mu.Lock()
					mismatches = append(mismatches,
						fmt.Sprintf("rank %d batch %d differs from ground truth", rank, b.GlobalID))
					mu.Unlock()
				}
			})
			batches := 0
			if stats != nil {
				batches = stats.Batches
			}
			results <- result{rank, batches, err}
		}(rank)
	}
	wg.Wait()
	close(results)

	total := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("rank %d: %v", r.rank, r.err)
		}
		total += r.batches
	}
	if total != 256 {
		t.Fatalf("sessions streamed %d batches total, want 256", total)
	}
	if len(mismatches) > 0 {
		t.Fatalf("%d byte-identity violations, first: %s", len(mismatches), mismatches[0])
	}

	snap := srv.Snapshot(time.Now())
	if snap.BusyRejections != 0 {
		t.Fatalf("soak under the session cap saw %d busy rejections", snap.BusyRejections)
	}
	if snap.PlanBuilds != 1 {
		t.Fatalf("epoch plan built %d times across 256 sessions, want 1 shared build", snap.PlanBuilds)
	}
	if len(snap.Tenants) != 64 {
		t.Fatalf("tenant rows %d, want 64", len(snap.Tenants))
	}
	if errors.Is(srv.Close(), nil) {
		// Close before the leak check (cleanup order also closes; idempotent).
	}
}
