package serve

import (
	"net"
	"testing"
	"time"

	"lotus/internal/faultinject"
	"lotus/internal/pipeline"
	"lotus/internal/testutil"
)

// TestHelloDeadlineCutsStalledHandshake pins the handshake-timeout fix: a
// connection that dials but never completes a Hello frame (half a header,
// then silence) used to pin its handler goroutine on a blocking read. The
// server must now cut the session at HelloTimeout with an Error frame or a
// close, and stay fully functional for well-formed clients.
func TestHelloDeadlineCutsStalledHandshake(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	spec := loopbackSpec()
	srv := New(Config{
		Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		HelloTimeout: 150 * time.Millisecond, Logf: t.Logf,
	})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// expectCut waits for the server to terminate the connection: either an
	// Error frame followed by close, or a bare close. Anything else — in
	// particular a read that outlives the deadline by a wide margin — means
	// the handler goroutine is stuck.
	expectCut := func(conn net.Conn, context string) {
		t.Helper()
		start := time.Now()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		payload, err := ReadFrame(conn, 0)
		if err == nil {
			msg, derr := DecodeMessage(payload)
			if derr != nil {
				t.Fatalf("%s: undecodable server reply: %v", context, derr)
			}
			if _, ok := msg.(ErrorMsg); !ok {
				t.Fatalf("%s: server replied %T, want ErrorMsg or close", context, msg)
			}
			if _, err := ReadFrame(conn, 0); err == nil {
				t.Fatalf("%s: server kept talking after Error", context)
			}
		}
		// 150ms deadline plus generous scheduling slack; the pre-fix server
		// sat on this read for its default 10s (or forever with no default).
		if waited := time.Since(start); waited > 3*time.Second {
			t.Fatalf("%s: server took %v to cut a stalled handshake", context, waited)
		}
	}

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	// Dial and say nothing at all.
	conn := dial()
	expectCut(conn, "silent dial")
	conn.Close()

	// Half a frame header, then stall: ReadFrame is mid-read when the
	// deadline fires, the nastier variant of the same bug.
	conn = dial()
	conn.Write([]byte{0x00, 0x00})
	expectCut(conn, "partial header")
	conn.Close()

	// A full header promising a payload that never arrives.
	conn = dial()
	conn.Write([]byte{0x00, 0x00, 0x00, 0x10})
	expectCut(conn, "header without payload")
	conn.Close()

	// The server must still serve a well-formed client afterwards.
	c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "after-stalls"})
	defer c.Close()
	stats, err := c.Run(1, nil)
	if err != nil {
		t.Fatalf("clean client after stalled handshakes: %v", err)
	}
	if stats.Batches != 10 {
		t.Fatalf("clean client got %d batches, want 10", stats.Batches)
	}
}

// TestHelloDeadlineDoesNotClipSlowButValidHandshake: a client that takes a
// beat (but less than HelloTimeout) to send Hello must not be rejected, and
// the deadline must be cleared afterwards so mid-session idleness between
// epoch requests is allowed.
func TestHelloDeadlineDoesNotClipSlowButValidHandshake(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	spec := loopbackSpec()
	srv := New(Config{
		Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		HelloTimeout: 500 * time.Millisecond, Logf: t.Logf,
	})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Dawdle inside the deadline, then hand over a valid Hello.
	time.Sleep(200 * time.Millisecond)
	if err := WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion, Rank: 0, World: 1})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("slow-but-valid handshake rejected: %v", err)
	}
	if msg, err := DecodeMessage(payload); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(HelloAck); !ok {
		t.Fatalf("server replied %T, want HelloAck", msg)
	}

	// Idle past HelloTimeout mid-session: the handshake deadline must not
	// leak into the request loop.
	time.Sleep(700 * time.Millisecond)
	if err := WriteFrame(conn, EncodeEpochReq(EpochReq{Epoch: 0})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(conn, 0); err != nil {
		t.Fatalf("idle session was cut by a leaked handshake deadline: %v", err)
	}
	WriteFrame(conn, EncodeBye())
}

// TestSeveredSessionInterruptsInjectedStall pins the straggler-teardown fix:
// a session whose socket dies mid-epoch used to be discovered only at the
// next write — and with a degraded worker mid-stall, that write could be a
// full injected stall away, pinning the producer pipeline (and the server's
// drain) for the stall's duration. The connection watcher must now notice
// the dead socket immediately, and the stall interrupt must wake the
// sleeping worker, so the epoch aborts in seconds rather than the 30s the
// fault injector dictates.
func TestSeveredSessionInterruptsInjectedStall(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	spec := loopbackSpec()
	inj := faultinject.New(faultinject.Spec{Seed: 1, StallNth: 1, WorkerStall: 30 * time.Second})
	srv := New(Config{
		Spec: spec, Mode: pipeline.Simulated, EmulateTime: true, Prefetch: 2,
		Faults: inj, Logf: t.Logf,
	})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, EncodeHello(Hello{Version: ProtocolVersion, Rank: 0, World: 1})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if payload, err := ReadFrame(conn, 0); err != nil {
		t.Fatal(err)
	} else if msg, err := DecodeMessage(payload); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(HelloAck); !ok {
		t.Fatalf("server replied %T, want HelloAck", msg)
	}
	if err := WriteFrame(conn, EncodeEpochReq(EpochReq{Epoch: 0})); err != nil {
		t.Fatal(err)
	}
	// Give the epoch time to dispatch: by now every worker is asleep inside
	// its injected 30s stall. Then vanish without a Bye.
	time.Sleep(300 * time.Millisecond)
	conn.Close()

	// The abort must land well inside the injected stall. Pre-fix, the
	// severed socket sat undiscovered until the first post-stall write.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.Metrics().Snapshot(time.Now(), 0).EpochsAborted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("severed session's epoch was not aborted within 10s of the disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
