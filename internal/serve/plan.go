package serve

import (
	"fmt"
	"hash/fnv"

	"lotus/internal/pipeline"
	"lotus/internal/workloads"
)

// PlanBatch is one batch of an epoch plan: its position in the full plan
// (the global batch id clients see) plus the dataset indices collated into
// it.
type PlanBatch struct {
	GlobalID int
	Indices  []int
}

// EpochSeed derives the per-epoch shuffle seed exactly as the local
// multi-epoch trainer does (pipeline.EpochSeed, used by every DataLoader's
// plan builder), so a served epoch's plan — and therefore every batch
// streamed from it — is identical to what a local DataLoader run would
// produce.
func EpochSeed(seed int64, epoch int) int64 {
	return pipeline.EpochSeed(seed, epoch)
}

// BuildEpochPlan returns the full batch plan for one epoch over a dataset of
// n samples, using the DataLoader's canonical shuffle/chunk derivation.
func BuildEpochPlan(n, batchSize int, shuffle, dropLast bool, seed int64, epoch int) []PlanBatch {
	raw := pipeline.BuildBatchPlan(n, batchSize, shuffle, dropLast, EpochSeed(seed, epoch))
	plan := make([]PlanBatch, len(raw))
	for i, idxs := range raw {
		plan[i] = PlanBatch{GlobalID: i, Indices: idxs}
	}
	return plan
}

// Shard returns one session's slice of the plan under static round-robin
// sharding: rank of world takes plan batches rank, rank+world, rank+2*world,
// and so on, preserving plan order. Shards across all ranks are disjoint by
// construction and exhaustive (their union is the full plan), which is the
// property the multi-client sharding test asserts.
func Shard(plan []PlanBatch, rank, world int) []PlanBatch {
	if world <= 1 {
		return plan
	}
	out := make([]PlanBatch, 0, (len(plan)+world-1-rank)/world)
	for i := rank; i < len(plan); i += world {
		out = append(out, plan[i])
	}
	return out
}

// SpecFingerprint hashes the frame-determining parameters of a served
// configuration: two servers with equal fingerprints produce byte-identical
// frames for every (epoch, global batch ID). This is what keys the
// materialized-batch cache — a server reconfigured to a different dataset
// size, seed, batch geometry, workload, or preprocessing mode lands on a
// different fingerprint and can never alias cached bytes. Parameters that
// change only scheduling (worker count, prefetch, dispatch policy) are
// deliberately excluded: the deterministic plan makes batch content
// independent of them, which the byte-identity tests assert.
func SpecFingerprint(spec workloads.Spec, mode pipeline.Mode, materializeDim int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%t|%d|%g|%t|%d|%d",
		spec.Kind, spec.NumSamples, spec.BatchSize, spec.Seed, spec.Shuffle,
		spec.Arch, spec.WorkScale, spec.OfflineDecode, mode, materializeDim)
	return h.Sum64()
}

// PrefixFingerprint hashes the byte-affecting parameters of the spec's
// deterministic prefix, keying the split-point sample cache. ok is false
// when the pipeline has no usable prefix (its first transform is already
// random, or splitting is disabled).
//
// The fingerprint covers the dataset identity (Kind, NumSamples, Seed — the
// record geometry and per-sample content seeds derive from these), the
// execution parameters that change prefix bytes (Arch, WorkScale,
// OfflineDecode, mode, materializeDim), the split point, and the prefix op
// names. Transform parameters (resize targets, normalization constants) are
// a function of Spec.Kind by construction — workloads.Spec.Compose builds
// each kind's chain from constants — so hashing the kind plus op names pins
// them. BatchSize, Shuffle, and the epoch are deliberately excluded: prefix
// bytes are per-sample and epoch-independent, which is what lets epochs
// 2..N and concurrent sessions share entries.
func PrefixFingerprint(spec workloads.Spec, mode pipeline.Mode, materializeDim int) (uint64, bool) {
	c := spec.Compose(nil)
	split := c.SplitPoint()
	if split == 0 {
		return 0, false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "prefix|%s|%d|%d|%d|%g|%t|%d|%d|%d",
		spec.Kind, spec.NumSamples, spec.Seed, spec.Arch, spec.WorkScale,
		spec.OfflineDecode, mode, materializeDim, split)
	for _, name := range c.Names()[:split] {
		fmt.Fprintf(h, "|%s", name)
	}
	return h.Sum64(), true
}

// ShardSize reports len(Shard(plan, rank, world)) without building the
// shard.
func ShardSize(planLen, rank, world int) int {
	if world <= 1 {
		return planLen
	}
	if rank >= planLen {
		return 0
	}
	return (planLen - rank + world - 1) / world
}
