package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"time"

	"lotus/internal/core/trace"
)

// startHTTP brings up the observability sidecar:
//
//	GET /healthz      liveness + drain state
//	GET /metrics      MetricsSnapshot JSON (server totals + per-session rows)
//	GET /trace        Chrome Trace JSON of the live ring (?granularity=fine
//	                  for per-op spans)
//	GET /debug/pprof  standard pprof handlers (Config.Pprof only), for
//	                  diagnosing footprint regressions at high session counts
func (s *Server) startHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: http listen %s: %w", addr, err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	if s.cfg.ClusterInfo != nil {
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.cfg.ClusterInfo())
		})
	}
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.httpSrv = srv
	go srv.Serve(ln)
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":          status,
		"workload":        string(s.cfg.Spec.Kind),
		"mode":            s.modeName(),
		"sessions_active": s.metrics.Snapshot(time.Now(), s.ring.Total()).SessionsActive,
	})
}

// Snapshot composes the full /metrics document: the counter registry plus
// every optional block the server owns (caches, control, QoS tenants, log
// suppression, plan-cache stats, runtime footprint gauges).
func (s *Server) Snapshot(now time.Time) MetricsSnapshot {
	snap := s.metrics.Snapshot(now, s.ring.Total())
	if st, ok := s.CacheStats(); ok {
		snap.Cache = &st
	}
	if st, ok := s.SampleCacheStats(); ok {
		snap.SampleCache = &st
	}
	if st, ok := s.DiskCacheStats(); ok {
		snap.DiskCache = &st
	}
	if st, ok := s.ControlStats(); ok {
		snap.Control = &st
	}
	if s.qos != nil {
		snap.Tenants = s.qos.snapshot()
	}
	if s.slog != nil {
		snap.LogSuppressed = s.slog.suppressed.Load()
	}
	snap.PlanBuilds, snap.PlanHits = s.plans.stats()
	snap.Goroutines, snap.HeapBytes = runtimeGauges()
	return snap
}

// runtimeGauges reads the live goroutine count and heap footprint from
// runtime/metrics — the cheap always-on view of per-session cost; full
// profiles hide behind Config.Pprof.
func runtimeGauges() (goroutines, heapBytes int64) {
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		goroutines = int64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		heapBytes = int64(samples[1].Value.Uint64())
	}
	return goroutines, heapBytes
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot(time.Now()))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	g := trace.Coarse
	if r.URL.Query().Get("granularity") == "fine" {
		g = trace.Fine
	}
	blob, err := trace.ExportChrome(s.ring.Snapshot(), g)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
