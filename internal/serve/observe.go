package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"lotus/internal/core/trace"
)

// startHTTP brings up the observability sidecar:
//
//	GET /healthz  liveness + drain state
//	GET /metrics  MetricsSnapshot JSON (server totals + per-session rows)
//	GET /trace    Chrome Trace JSON of the live ring (?granularity=fine for
//	              per-op spans)
func (s *Server) startHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: http listen %s: %w", addr, err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	if s.cfg.ClusterInfo != nil {
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, s.cfg.ClusterInfo())
		})
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.httpSrv = srv
	go srv.Serve(ln)
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":          status,
		"workload":        string(s.cfg.Spec.Kind),
		"mode":            s.modeName(),
		"sessions_active": s.metrics.Snapshot(time.Now(), s.ring.Total()).SessionsActive,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot(time.Now(), s.ring.Total())
	if st, ok := s.CacheStats(); ok {
		snap.Cache = &st
	}
	if st, ok := s.SampleCacheStats(); ok {
		snap.SampleCache = &st
	}
	if st, ok := s.DiskCacheStats(); ok {
		snap.DiskCache = &st
	}
	if st, ok := s.ControlStats(); ok {
		snap.Control = &st
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	g := trace.Coarse
	if r.URL.Query().Get("granularity") == "fine" {
		g = trace.Fine
	}
	blob, err := trace.ExportChrome(s.ring.Snapshot(), g)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
