package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lotus/internal/pipeline"
	"lotus/internal/tensor"
	"lotus/internal/workloads"
)

// BenchmarkServiceThroughput measures served batches per second end to end
// (pipeline -> wire encode -> loopback TCP -> decode -> checksum) as the
// client count scales. Each iteration streams one full epoch sharded across
// the clients. scripts/bench.sh captures the batches/sec metric into
// BENCH_PR2.json.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, clients := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServiceThroughput(b, clients, 0)
		})
	}
}

// BenchmarkServiceThroughputCached is the same workload with the
// materialized-batch cache enabled: every client re-fetches epoch 0, so after
// the first iteration the server streams cached frames instead of re-running
// the pipeline. scripts/bench.sh compares this against the uncached series
// into BENCH_PR5.json.
func BenchmarkServiceThroughputCached(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServiceThroughput(b, clients, 256<<20)
		})
	}
}

func benchServiceThroughput(b *testing.B, clients int, cacheBytes int64) {
	spec := workloads.ICSpec(1280, 7)
	spec.BatchSize = 64 // 20 batches per epoch
	spec.NumWorkers = 2
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 4,
		BatchCacheBytes: cacheBytes})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	conns := make([]*Client, clients)
	for rank := range conns {
		conns[rank] = NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: clients})
		if err := conns[rank].Connect(); err != nil {
			b.Fatal(err)
		}
		defer conns[rank].Close()
	}

	totalBatches := 0
	var mu sync.Mutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, c := range conns {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				stats, err := c.Run(1, nil)
				if err != nil {
					b.Error(err)
					return
				}
				mu.Lock()
				totalBatches += stats.Batches
				mu.Unlock()
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(totalBatches)/sec, "batches/sec")
	}
}

// BenchmarkServiceThroughputAugmented measures the split-point sample cache's
// effect on an augmented workload: the ICA pipeline in emulate mode (modeled
// preprocessing latencies paced on the wall clock), batch cache off so every
// epoch re-runs the pipeline. Each iteration streams a *fresh* epoch — the
// augmented regime, where the batch cache can never hit — so the cold series
// pays the full decode+resize prefix every epoch, while the sampleCached
// series replays the materialized prefixes and pays only the random suffix.
// scripts/bench.sh captures both into BENCH_PR6.json and gates sampleCached
// at >= 5x cold.
func BenchmarkServiceThroughputAugmented(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchServiceAugmented(b, 0) })
	b.Run("sampleCached", func(b *testing.B) { benchServiceAugmented(b, 512<<20) })
}

func benchServiceAugmented(b *testing.B, sampleCacheBytes int64) {
	spec := workloads.ICASpec(256, 7)
	spec.BatchSize = 16 // 16 batches per epoch
	spec.NumWorkers = 4
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, EmulateTime: true,
		Prefetch: 4, BatchCacheBytes: 0, SampleCacheBytes: sampleCacheBytes})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(ClientConfig{Addr: srv.Addr()})
	if err := c.Connect(); err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Epoch 0 pays the one-time materialization cost outside the timed
	// region, so the cached series measures the steady state every later
	// epoch of a training run sees.
	if err := c.fetchEpoch(0, nil, nil); err != nil {
		b.Fatal(err)
	}

	totalBatches := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st FetchStats
		if err := c.fetchEpoch(i+1, nil, &st); err != nil {
			b.Fatal(err)
		}
		totalBatches += st.Batches
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(totalBatches)/sec, "batches/sec")
	}
}

// BenchmarkServiceWarmRestart measures restart warming from the persistent
// tier: both series bring up a FRESH server per iteration and stream epoch 0
// of the augmented ICA workload in emulate mode. The cold series has no disk
// directory, so every restart re-runs the paced pipeline from scratch; the
// warmRestart series points each fresh server at a directory warmed once
// outside the timer, so restarts serve every frame from the disk tier and
// skip the pipeline (and its pacing) entirely. scripts/bench.sh captures
// both into BENCH_PR7.json and gates warmRestart at >= 5x cold.
func BenchmarkServiceWarmRestart(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchServiceRestart(b, false) })
	b.Run("warmRestart", func(b *testing.B) { benchServiceRestart(b, true) })
}

func benchServiceRestart(b *testing.B, warm bool) {
	spec := workloads.ICASpec(256, 7)
	spec.BatchSize = 16 // 16 batches per epoch
	spec.NumWorkers = 4
	start := func(dir string) *Server {
		srv := New(Config{Spec: spec, Mode: pipeline.Simulated, EmulateTime: true,
			Prefetch: 4, BatchCacheBytes: 256 << 20, DiskCacheDir: dir})
		if err := srv.Start("127.0.0.1:0", ""); err != nil {
			b.Fatal(err)
		}
		return srv
	}
	fetch := func(srv *Server, st *FetchStats) {
		c := NewClient(ClientConfig{Addr: srv.Addr()})
		defer c.Close()
		if err := c.fetchEpoch(0, nil, st); err != nil {
			b.Fatal(err)
		}
	}

	dir := ""
	if warm {
		// Warm the directory once, outside the timed region: the one-time
		// cost every long-running job has already paid before it restarts.
		dir = b.TempDir()
		srv := start(dir)
		fetch(srv, nil)
		if err := srv.FlushDiskCache(); err != nil {
			b.Fatal(err)
		}
		srv.Close()
	}

	totalBatches := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := start(dir)
		var st FetchStats
		fetch(srv, &st)
		totalBatches += st.Batches
		srv.Close()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(totalBatches)/sec, "batches/sec")
	}
}

// benchBatch builds a materialize-sized wire batch (the shape the serving hot
// path encodes): 64 samples, one 64x3x32x32 u8 tensor payload.
func benchBatch() *Batch {
	idx := make([]int, 64)
	lab := make([]int, 64)
	for i := range idx {
		idx[i] = i
		lab[i] = i % 7
	}
	return &Batch{
		Epoch:    0,
		GlobalID: 3,
		Indices:  idx,
		Labels:   lab,
		Dtype:    tensor.Uint8,
		Shape:    []int{64, 3, 32, 32},
		U8:       make([]byte, 64*3*32*32),
	}
}

// BenchmarkEncodeBatch is the allocating encoder: one fresh buffer per frame.
func BenchmarkEncodeBatch(b *testing.B) {
	m := benchBatch()
	b.SetBytes(int64(batchWireSize(m)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeBatch(m)
	}
}

// BenchmarkEncodeBatchPooled is the serving hot path's pooled encoder; after
// warmup it must run at zero allocations per frame (guarded by
// TestEncodeBatchFramePooledAllocs).
func BenchmarkEncodeBatchPooled(b *testing.B) {
	m := benchBatch()
	b.SetBytes(int64(batchWireSize(m)))
	b.ReportAllocs()
	for i := 0; i < 16; i++ {
		encodeBatchFrame(m).Release() // warm the size class
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeBatchFrame(m).Release()
	}
}

// BenchmarkSessionFootprint reports the marginal per-session cost of the
// serving tier: heap bytes and goroutines per connected-but-idle session and
// per session that has streamed (and therefore owns lazily-built pipeline
// state: hooks, engine, dataset view, trace-pid base). scripts/bench.sh
// captures both series into BENCH_PR10.json — the session-slimming
// regression gauge for O(1000)-session serving.
func BenchmarkSessionFootprint(b *testing.B) {
	b.Run("idle", func(b *testing.B) { benchSessionFootprint(b, false) })
	b.Run("streaming", func(b *testing.B) { benchSessionFootprint(b, true) })
}

func benchSessionFootprint(b *testing.B, streamed bool) {
	const n = 128
	spec := workloads.ICSpec(1280, 7)
	spec.BatchSize = 64
	spec.NumWorkers = 1
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 2,
		BatchCacheBytes: 64 << 20})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	measure := func() (heap int64, goroutines int) {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc), runtime.NumGoroutine()
	}
	heap0, g0 := measure()

	clients := make([]*Client, n)
	for rank := range clients {
		clients[rank] = NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: n,
			Name: fmt.Sprintf("fp-%d", rank)})
		if err := clients[rank].Connect(); err != nil {
			b.Fatal(err)
		}
		defer clients[rank].Close()
	}
	if streamed {
		var wg sync.WaitGroup
		for _, c := range clients {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				if _, err := c.Run(1, nil); err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}

	heap1, g1 := measure()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The reported metrics are gauges measured in setup; nothing to time.
	}
	b.StopTimer()
	b.ReportMetric(float64(heap1-heap0)/n, "bytes/session")
	b.ReportMetric(float64(g1-g0)/n, "goroutines/session")
}

// BenchmarkSessionScaling is bench stage 9's throughput axis: every client
// is an independent full-plan session (rank 0, world 1) against a
// cache-warmed server, so aggregate served batches/sec isolates the
// session-scalability hot path — admission, shared plans, cache fan-out,
// coalesced writes — from pipeline compute. The client-side stream checksum
// enforces byte-identity to the clients=1 ground truth on every session.
// scripts/bench.sh gates clients=256 aggregate at >= 0.8x clients=8.
func BenchmarkSessionScaling(b *testing.B) {
	for _, clients := range []int{8, 64, 256, 1024} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchSessionScaling(b, clients)
		})
	}
}

func benchSessionScaling(b *testing.B, clients int) {
	spec := workloads.ICSpec(1280, 7)
	spec.BatchSize = 64 // 20 batches per full plan
	spec.NumWorkers = 1
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 4,
		BatchCacheBytes: 256 << 20, MaxSessions: 2048})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	conns := make([]*Client, clients)
	for i := range conns {
		conns[i] = NewClient(ClientConfig{Addr: srv.Addr(),
			Name: fmt.Sprintf("scale-%d", i)})
		if err := conns[i].Connect(); err != nil {
			b.Fatal(err)
		}
		defer conns[i].Close()
	}
	// Warm the batch cache once so the timed region measures the serving
	// tier, not the pipeline.
	if err := conns[0].fetchEpoch(0, nil, nil); err != nil {
		b.Fatal(err)
	}

	var totalBatches atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, c := range conns {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				var st FetchStats
				if err := c.fetchEpoch(0, nil, &st); err != nil {
					b.Error(err)
					return
				}
				totalBatches.Add(int64(st.Batches))
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(totalBatches.Load())/sec, "batches/sec")
	}
}

// BenchmarkTenantFairness is bench stage 9's fairness axis: four equal-weight
// tenants share a deliberately narrow write gate, and the adversarial tenant
// runs three times the sessions of each polite tenant. Sessions stream
// cache-served full plans continuously for a fixed window; per-tenant
// completed batches over that window yield Jain's fairness index (1.0 = the
// greedy tenant gained nothing by over-subscribing; 0.75 = its 3x sessions
// bought 3x service). The worst per-tenant p99 batch latency and aggregate
// throughput ride along. scripts/bench.sh gates jain >= 0.9.
func BenchmarkTenantFairness(b *testing.B) {
	const (
		politeTenants  = 3
		politeSessions = 4
		greedySessions = 3 * politeSessions
		windowPerIter  = 300 * time.Millisecond
	)
	spec := workloads.ICSpec(1280, 7)
	spec.BatchSize = 64
	spec.NumWorkers = 1
	srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 4,
		BatchCacheBytes: 256 << 20, QoS: true, QoSWriteSlots: 2})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	type sess struct {
		tenant int
		c      *Client
	}
	var sessions []sess
	addSessions := func(tenant int, name string, count int) {
		for i := 0; i < count; i++ {
			c := NewClient(ClientConfig{Addr: srv.Addr(),
				Name: fmt.Sprintf("%s-%d", name, i), Tenant: name})
			if err := c.Connect(); err != nil {
				b.Fatal(err)
			}
			sessions = append(sessions, sess{tenant, c})
		}
	}
	for t := 0; t < politeTenants; t++ {
		addSessions(t, fmt.Sprintf("polite-%d", t), politeSessions)
	}
	addSessions(politeTenants, "greedy", greedySessions)
	defer func() {
		for _, s := range sessions {
			s.c.Close()
		}
	}()
	if err := sessions[0].c.fetchEpoch(0, nil, nil); err != nil {
		b.Fatal(err) // warm the cache outside the window
	}

	const tenants = politeTenants + 1
	worstJain := 1.0
	var total int64
	var worstP99 time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts [tenants]atomic.Int64
		hists := make([]LatencyHist, len(sessions))
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for si, s := range sessions {
			wg.Add(1)
			go func(si int, s sess) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var st FetchStats
					if err := s.c.fetchEpoch(0, nil, &st); err != nil {
						b.Error(err)
						return
					}
					counts[s.tenant].Add(int64(st.Batches))
					hists[si].Merge(&st.Hist)
				}
			}(si, s)
		}
		time.Sleep(windowPerIter)
		close(stop)
		wg.Wait()

		xs := make([]float64, tenants)
		for t := range xs {
			xs[t] = float64(counts[t].Load())
			total += counts[t].Load()
		}
		if j := JainIndex(xs); j < worstJain {
			worstJain = j
		}
		var perTenant [tenants]LatencyHist
		for si, s := range sessions {
			perTenant[s.tenant].Merge(&hists[si])
		}
		for t := range perTenant {
			if p := perTenant[t].Quantile(0.99); p > worstP99 {
				worstP99 = p
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(worstJain, "jain")
	b.ReportMetric(float64(worstP99.Microseconds()), "p99-us")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(total)/sec, "batches/sec")
	}
}
