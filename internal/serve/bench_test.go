package serve

import (
	"fmt"
	"sync"
	"testing"

	"lotus/internal/pipeline"
	"lotus/internal/workloads"
)

// BenchmarkServiceThroughput measures served batches per second end to end
// (pipeline -> wire encode -> loopback TCP -> decode -> checksum) as the
// client count scales. Each iteration streams one full epoch sharded across
// the clients. scripts/bench.sh captures the batches/sec metric into
// BENCH_PR2.json.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, clients := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			spec := workloads.ICSpec(1280, 7)
			spec.BatchSize = 64 // 20 batches per epoch
			spec.NumWorkers = 2
			srv := New(Config{Spec: spec, Mode: pipeline.Simulated, Prefetch: 4})
			if err := srv.Start("127.0.0.1:0", ""); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			conns := make([]*Client, clients)
			for rank := range conns {
				conns[rank] = NewClient(ClientConfig{Addr: srv.Addr(), Rank: rank, World: clients})
				if err := conns[rank].Connect(); err != nil {
					b.Fatal(err)
				}
				defer conns[rank].Close()
			}

			totalBatches := 0
			var mu sync.Mutex
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, c := range conns {
					wg.Add(1)
					go func(c *Client) {
						defer wg.Done()
						stats, err := c.Run(1, nil)
						if err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						totalBatches += stats.Batches
						mu.Unlock()
					}(c)
				}
				wg.Wait()
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(totalBatches)/sec, "batches/sec")
			}
		})
	}
}
