package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lotus/internal/pipeline"
	"lotus/internal/store"
)

// Metrics aggregates live service counters for the /metrics endpoint:
// server-wide totals plus one entry per session. All methods are safe for
// concurrent use; snapshots are consistent copies.
type Metrics struct {
	mu             sync.Mutex
	start          time.Time
	sessionsTotal  int
	sessionsActive int
	batchesSent    int64
	bytesSent      int64
	epochsServed   int64
	epochsAborted  int64
	reconnects     int64
	hedgeRequests  int64
	hedgeBatches   int64
	busyRejections int64
	admitQueued    int64
	writevCalls    int64
	writevFrames   int64
	opensByName    map[string]int
	sessions       map[int]*SessionMetrics
}

// NewMetrics returns an empty registry anchored at now.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{
		start:       now,
		sessions:    make(map[int]*SessionMetrics),
		opensByName: make(map[string]int),
	}
}

// OpenSession registers a new session and returns its metrics handle. A
// session whose (name, rank) identity was seen before counts as a reconnect:
// the server-side observable of a client retry loop. Client-side OnRetry
// callbacks see each retry decision, but only this counter lets an operator
// spot a reconnect storm from the serving side.
func (m *Metrics) OpenSession(id int, name, tenant string, rank, world int, now time.Time) *SessionMetrics {
	sm := &SessionMetrics{id: id, name: name, tenant: tenant, rank: rank, world: world, connectedAt: now}
	identity := fmt.Sprintf("%s/%d", name, rank)
	m.mu.Lock()
	m.sessionsTotal++
	m.sessionsActive++
	sm.reconnects = m.opensByName[identity]
	m.opensByName[identity]++
	if sm.reconnects > 0 {
		m.reconnects++
	}
	m.sessions[id] = sm
	m.mu.Unlock()
	return sm
}

// CloseSession marks a session gone. Its counters stay visible in the
// snapshot's totals but the per-session row is dropped.
func (m *Metrics) CloseSession(id int) {
	m.mu.Lock()
	if _, ok := m.sessions[id]; ok {
		m.sessionsActive--
		delete(m.sessions, id)
	}
	m.mu.Unlock()
}

// AddBatch credits one streamed batch frame of the given wire size to the
// server totals (the session handle is credited separately by its owner).
func (m *Metrics) AddBatch(bytes int) {
	m.mu.Lock()
	m.batchesSent++
	m.bytesSent += int64(bytes)
	m.mu.Unlock()
}

// AddEpoch counts one fully streamed epoch shard.
func (m *Metrics) AddEpoch() {
	m.mu.Lock()
	m.epochsServed++
	m.mu.Unlock()
}

// EpochsServed reads the completed-epoch counter — the controller's
// observation key.
func (m *Metrics) EpochsServed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochsServed
}

// QueueFill reports the mean prefetch-queue fill fraction (0..1) across
// sessions with a stream in flight, given the per-session queue capacity.
// Sessions between epochs (no gauge installed) are skipped; 0 means no
// stream is live.
func (m *Metrics) QueueFill(capacity int) float64 {
	if capacity <= 0 {
		return 0
	}
	m.mu.Lock()
	live := make([]*SessionMetrics, 0, len(m.sessions))
	for _, sm := range m.sessions {
		live = append(live, sm)
	}
	m.mu.Unlock()
	var sum float64
	n := 0
	for _, sm := range live {
		sm.mu.Lock()
		gauge := sm.queueDepth
		sm.mu.Unlock()
		if gauge == nil {
			continue
		}
		sum += float64(gauge()) / float64(capacity)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AddEpochAbort counts one epoch stream that ended in an error (client gone,
// write failure, or producer failure) instead of a clean EpochEnd. Paired
// with the reconnect counter, a rising abort rate is the server-side
// signature of clients stuck in retry loops.
func (m *Metrics) AddEpochAbort() {
	m.mu.Lock()
	m.epochsAborted++
	m.mu.Unlock()
}

// AddHedge counts one speculative ShardReq (a straggler-mitigating router
// re-issuing ids it already asked another node for) covering the given
// number of batch IDs. A high hedge rate on a node means its *peers* look
// slow to the routers — or the routers' hedge quantile is tuned too low.
func (m *Metrics) AddHedge(ids int) {
	m.mu.Lock()
	m.hedgeRequests++
	m.hedgeBatches += int64(ids)
	m.mu.Unlock()
}

// AddBusy counts one connection turned away by admission control (full
// session table and full — or disabled — accept queue). A rising rate is the
// intended overload signature: fast rejection, not collapse.
func (m *Metrics) AddBusy() {
	m.mu.Lock()
	m.busyRejections++
	m.mu.Unlock()
}

// AddAdmitQueued counts one connection that waited in the bounded admission
// queue for a session slot (whether or not it was eventually admitted).
func (m *Metrics) AddAdmitQueued() {
	m.mu.Lock()
	m.admitQueued++
	m.mu.Unlock()
}

// AddWritev observes one coalesced vectored write covering the given number
// of batch frames. frames/calls is the live coalescing factor: 1.0 means
// every frame paid its own syscall.
func (m *Metrics) AddWritev(frames int) {
	m.mu.Lock()
	m.writevCalls++
	m.writevFrames += int64(frames)
	m.mu.Unlock()
}

// HedgeStats is the /metrics hedge block: speculative shard requests served
// by this node.
type HedgeStats struct {
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
}

// SessionMetrics tracks one session's live counters. The queue gauge reads
// the session's current prefetch channel depth.
type SessionMetrics struct {
	mu          sync.Mutex
	id          int
	name        string
	tenant      string
	rank, world int
	connectedAt time.Time

	epochsDone    int
	epochsAborted int
	reconnects    int
	batchesSent   int64
	bytesSent     int64
	queueDepth    func() int

	// Tracer-derived timings: wait is the main-proc wait for each batch
	// ([T2]); delay is preprocess-end to consumption, the paper's delay
	// metric.
	waitTotal  time.Duration
	waitCount  int64
	delayTotal time.Duration
	delayCount int64
}

// SetQueueGauge installs the live queue-depth reader for the epoch currently
// streaming (nil between epochs).
func (s *SessionMetrics) SetQueueGauge(fn func() int) {
	s.mu.Lock()
	s.queueDepth = fn
	s.mu.Unlock()
}

// AddBatch credits one streamed batch frame.
func (s *SessionMetrics) AddBatch(bytes int) {
	s.mu.Lock()
	s.batchesSent++
	s.bytesSent += int64(bytes)
	s.mu.Unlock()
}

// AddEpoch counts one completed epoch shard.
func (s *SessionMetrics) AddEpoch() {
	s.mu.Lock()
	s.epochsDone++
	s.mu.Unlock()
}

// AddEpochAbort counts one epoch stream this session failed to finish.
func (s *SessionMetrics) AddEpochAbort() {
	s.mu.Lock()
	s.epochsAborted++
	s.mu.Unlock()
}

// AddWait accumulates one tracer wait record.
func (s *SessionMetrics) AddWait(d time.Duration) {
	s.mu.Lock()
	s.waitTotal += d
	s.waitCount++
	s.mu.Unlock()
}

// AddDelay accumulates one preprocess-to-consumption delay.
func (s *SessionMetrics) AddDelay(d time.Duration) {
	s.mu.Lock()
	s.delayTotal += d
	s.delayCount++
	s.mu.Unlock()
}

// SessionSnapshot is the JSON form of one session's counters.
type SessionSnapshot struct {
	ID            int     `json:"id"`
	Name          string  `json:"name"`
	Tenant        string  `json:"tenant,omitempty"`
	Rank          int     `json:"rank"`
	World         int     `json:"world"`
	ConnectedSecs float64 `json:"connected_s"`
	EpochsDone    int     `json:"epochs_done"`
	EpochsAborted int     `json:"epochs_aborted"`
	Reconnects    int     `json:"reconnects"`
	BatchesSent   int64   `json:"batches_sent"`
	BytesSent     int64   `json:"bytes_sent"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	QueueDepth    int     `json:"queue_depth"`
	WaitCount     int64   `json:"wait_count"`
	MeanWaitUs    float64 `json:"mean_wait_us"`
	DelayCount    int64   `json:"delay_count"`
	MeanDelayUs   float64 `json:"mean_delay_us"`
}

func (s *SessionMetrics) snapshot(now time.Time) SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SessionSnapshot{
		ID:            s.id,
		Name:          s.name,
		Tenant:        s.tenant,
		Rank:          s.rank,
		World:         s.world,
		ConnectedSecs: now.Sub(s.connectedAt).Seconds(),
		EpochsDone:    s.epochsDone,
		EpochsAborted: s.epochsAborted,
		Reconnects:    s.reconnects,
		BatchesSent:   s.batchesSent,
		BytesSent:     s.bytesSent,
		WaitCount:     s.waitCount,
		DelayCount:    s.delayCount,
	}
	if out.ConnectedSecs > 0 {
		out.BatchesPerSec = float64(s.batchesSent) / out.ConnectedSecs
	}
	if s.queueDepth != nil {
		out.QueueDepth = s.queueDepth()
	}
	if s.waitCount > 0 {
		out.MeanWaitUs = float64(s.waitTotal.Microseconds()) / float64(s.waitCount)
	}
	if s.delayCount > 0 {
		out.MeanDelayUs = float64(s.delayTotal.Microseconds()) / float64(s.delayCount)
	}
	return out
}

// MetricsSnapshot is the JSON document /metrics serves.
type MetricsSnapshot struct {
	UptimeSecs     float64 `json:"uptime_s"`
	SessionsActive int     `json:"sessions_active"`
	SessionsTotal  int     `json:"sessions_total"`
	Reconnects     int64   `json:"reconnects_total"`
	EpochsServed   int64   `json:"epochs_served"`
	EpochsAborted  int64   `json:"epochs_aborted"`
	BatchesSent    int64   `json:"batches_sent"`
	BytesSent      int64   `json:"bytes_sent"`
	TraceRecords   int64   `json:"trace_records"`
	// Admission-control counters: connections turned away busy and
	// connections that waited in the bounded admission queue.
	BusyRejections int64 `json:"busy_rejections"`
	AdmitQueued    int64 `json:"admit_queued"`
	// Write-coalescing counters: vectored writes issued and batch frames
	// they covered (frames/calls = coalescing factor).
	WritevCalls  int64 `json:"writev_calls"`
	WritevFrames int64 `json:"writev_frames"`
	// LogSuppressed counts per-session log lines dropped by the server's
	// log rate limiter (filled by the server, not this registry).
	LogSuppressed int64 `json:"log_suppressed"`
	// Shared epoch-plan cache counters (filled by the server).
	PlanBuilds int64 `json:"plan_builds"`
	PlanHits   int64 `json:"plan_hits"`
	// Runtime footprint gauges from runtime/metrics (filled by the server).
	Goroutines int64 `json:"goroutines"`
	HeapBytes  int64 `json:"heap_bytes"`
	// Cache carries the materialized-batch cache counters (hits, misses,
	// singleflight waits, evictions, bytes); nil when the cache is disabled.
	Cache *BatchCacheStats `json:"cache,omitempty"`
	// SampleCache carries the split-point sample cache counters; nil when
	// that cache is disabled.
	SampleCache *pipeline.SampleCacheStats `json:"sample_cache,omitempty"`
	// DiskCache carries the persistent disk tier counters (hits, misses,
	// spills, bytes, segments, rebuilds); nil when the disk cache is
	// disabled.
	DiskCache *store.Stats `json:"disk_cache,omitempty"`
	// Hedge carries the speculative-fetch counters; nil until the first
	// hedged ShardReq arrives.
	Hedge *HedgeStats `json:"hedge,omitempty"`
	// Control carries the autotuner's current knob settings and actuation
	// history; nil when autotuning is disabled.
	Control *ControlStats `json:"control,omitempty"`
	// Tenants carries one QoS accounting row per tenant seen so far; empty
	// when QoS is disabled.
	Tenants  []TenantSnapshot  `json:"tenants,omitempty"`
	Sessions []SessionSnapshot `json:"sessions"`
}

// Snapshot returns a consistent copy of every counter. traceRecords is
// supplied by the caller (the server's trace ring total).
func (m *Metrics) Snapshot(now time.Time, traceRecords int64) MetricsSnapshot {
	m.mu.Lock()
	out := MetricsSnapshot{
		UptimeSecs:     now.Sub(m.start).Seconds(),
		SessionsActive: m.sessionsActive,
		SessionsTotal:  m.sessionsTotal,
		Reconnects:     m.reconnects,
		EpochsServed:   m.epochsServed,
		EpochsAborted:  m.epochsAborted,
		BatchesSent:    m.batchesSent,
		BytesSent:      m.bytesSent,
		TraceRecords:   traceRecords,
		BusyRejections: m.busyRejections,
		AdmitQueued:    m.admitQueued,
		WritevCalls:    m.writevCalls,
		WritevFrames:   m.writevFrames,
	}
	if m.hedgeRequests > 0 {
		out.Hedge = &HedgeStats{Requests: m.hedgeRequests, Batches: m.hedgeBatches}
	}
	live := make([]*SessionMetrics, 0, len(m.sessions))
	for _, sm := range m.sessions {
		live = append(live, sm)
	}
	m.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	out.Sessions = make([]SessionSnapshot, len(live))
	for i, sm := range live {
		out.Sessions[i] = sm.snapshot(now)
	}
	return out
}
