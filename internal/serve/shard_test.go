package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"lotus/internal/clock"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/workloads"
)

// TestShardDisjointExhaustive is the sharding property test: for random
// plan sizes, batch sizes, worlds, and seeds, the per-rank shards are
// pairwise disjoint, their union is exactly the full plan, and each shard
// preserves plan order.
func TestShardDisjointExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(500)
		batch := 1 + r.Intn(32)
		world := 1 + r.Intn(8)
		seed := r.Int63n(1 << 40)
		epoch := r.Intn(5)
		dropLast := r.Intn(2) == 0

		plan := BuildEpochPlan(n, batch, true, dropLast, seed, epoch)
		seen := make(map[int]int) // global id -> rank that claimed it
		total := 0
		for rank := 0; rank < world; rank++ {
			shard := Shard(plan, rank, world)
			if got, want := len(shard), ShardSize(len(plan), rank, world); got != want {
				t.Fatalf("iter %d: rank %d/%d shard len %d, ShardSize says %d", iter, rank, world, got, want)
			}
			lastID := -1
			for _, pb := range shard {
				if prev, dup := seen[pb.GlobalID]; dup {
					t.Fatalf("iter %d: batch %d claimed by ranks %d and %d", iter, pb.GlobalID, prev, rank)
				}
				seen[pb.GlobalID] = rank
				if pb.GlobalID <= lastID {
					t.Fatalf("iter %d: rank %d shard out of plan order: %d after %d", iter, rank, pb.GlobalID, lastID)
				}
				lastID = pb.GlobalID
				if !reflect.DeepEqual(pb.Indices, plan[pb.GlobalID].Indices) {
					t.Fatalf("iter %d: batch %d indices diverge from plan", iter, pb.GlobalID)
				}
			}
			total += len(shard)
		}
		if total != len(plan) {
			t.Fatalf("iter %d: shards cover %d of %d plan batches", iter, total, len(plan))
		}
	}
}

// TestEpochSeedMatchesTrainer pins the epoch seed derivation to the one the
// local multi-epoch trainer uses; if RunEpochs changes its derivation, served
// epochs would silently diverge from local ones.
func TestEpochSeedMatchesTrainer(t *testing.T) {
	for _, epoch := range []int{0, 1, 2, 17} {
		if got, want := EpochSeed(7, epoch), int64(7)+int64(epoch)*1_000_003; got != want {
			t.Fatalf("EpochSeed(7, %d) = %d, want %d", epoch, got, want)
		}
	}
}

// TestShardedLoadersCoverEpoch runs one virtual-clock DataLoader per rank,
// each over its shard of the same epoch plan, and checks that the union of
// the batches they deliver is exactly the batch sequence a single local
// loader produces for the full plan — the server-side invariant behind the
// multi-client loopback test, without any networking.
func TestShardedLoadersCoverEpoch(t *testing.T) {
	spec := workloads.ICSpec(192, 11)
	spec.BatchSize = 16
	spec.NumWorkers = 2
	const world, epoch = 3, 1

	plan := BuildEpochPlan(spec.NumSamples, spec.BatchSize, spec.Shuffle, false, spec.Seed, epoch)

	runShard := func(shard []PlanBatch) [][]int {
		batchPlan := make([][]int, len(shard))
		for i, pb := range shard {
			batchPlan[i] = pb.Indices
		}
		engine := native.NewEngine(spec.Arch, native.DefaultCPU())
		ds := spec.Dataset(nil)
		cfg := pipeline.Config{
			BatchSize:  spec.BatchSize,
			NumWorkers: spec.NumWorkers,
			PinMemory:  spec.PinMemory,
			Seed:       spec.Seed,
			Epoch:      epoch,
			BatchPlan:  batchPlan,
			Mode:       pipeline.Simulated,
			Engine:     engine,
		}
		var got [][]int
		sim := clock.NewSim()
		sim.Run("shard", func(p clock.Proc) {
			dl := pipeline.NewDataLoader(sim, ds, cfg)
			it := dl.Start(p)
			for {
				b, ok := it.Next(p)
				if !ok {
					if err := it.Err(); err != nil {
						t.Errorf("shard loader: %v", err)
					}
					return
				}
				got = append(got, append([]int(nil), b.Indices...))
			}
		})
		return got
	}

	assembled := make([][]int, len(plan))
	for rank := 0; rank < world; rank++ {
		shard := Shard(plan, rank, world)
		got := runShard(shard)
		if len(got) != len(shard) {
			t.Fatalf("rank %d delivered %d batches, shard has %d", rank, len(got), len(shard))
		}
		for i, indices := range got {
			assembled[shard[i].GlobalID] = indices
		}
	}
	full := runShard(plan)
	if len(full) != len(plan) {
		t.Fatalf("full run delivered %d batches, plan has %d", len(full), len(plan))
	}
	if !reflect.DeepEqual(assembled, full) {
		t.Fatal("union of sharded loader outputs diverges from the single local loader")
	}
}
