package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"lotus/internal/tensor"
)

func cacheKeyN(gid int) BatchKey {
	return BatchKey{Fingerprint: 0x107, Epoch: 0, GlobalID: gid}
}

// cacheFrame builds a pooled frame of n bytes all set to fill.
func cacheFrame(n int, fill byte) *Frame {
	box := frameBufFor(n)
	for i := 0; i < n; i++ {
		*box = append(*box, fill)
	}
	return newFrame(box)
}

func TestFrameRefcountLifecycle(t *testing.T) {
	f := cacheFrame(32, 0xab)
	if f.Len() != 32 {
		t.Fatalf("len %d, want 32", f.Len())
	}
	f.Retain() // 2 refs
	f.Release()
	if got := f.Bytes(); len(got) != 32 || got[0] != 0xab {
		t.Fatal("frame bytes gone while a reference is held")
	}
	f.Release() // last ref: recycled
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	f.Release()
}

func TestEncodeBatchFrameByteIdentity(t *testing.T) {
	m := &Batch{
		Epoch: 3, GlobalID: 17,
		Indices: []int{5, 9, 2}, Labels: []int{1, 0, 7},
		Dtype: tensor.Uint8, Shape: []int{3, 8, 8},
		U8: bytes.Repeat([]byte{0x5a}, 3*8*8),
	}
	want := EncodeBatch(m)
	for i := 0; i < 3; i++ { // repeated to exercise pooled-buffer reuse
		f := encodeBatchFrame(m)
		if !bytes.Equal(f.Bytes(), want) {
			t.Fatalf("pooled encode differs from EncodeBatch on round %d", i)
		}
		if f.Len() != len(want) {
			t.Fatalf("pooled frame len %d, want %d", f.Len(), len(want))
		}
		f.Release()
	}
}

// TestEncodeBatchFramePooledAllocs is the allocs/op guard for the pooled
// encode path: steady-state encoding must reuse pooled buffers, not allocate
// a fresh payload per batch like EncodeBatch does.
func TestEncodeBatchFramePooledAllocs(t *testing.T) {
	m := &Batch{
		Epoch: 0, GlobalID: 1,
		Indices: make([]int, 64), Labels: make([]int, 64),
		Dtype: tensor.Uint8, Shape: []int{64, 3, 32, 32},
	}
	for i := 0; i < 16; i++ { // warm the pools
		encodeBatchFrame(m).Release()
	}
	avg := testing.AllocsPerRun(500, func() {
		encodeBatchFrame(m).Release()
	})
	if avg >= 1.0 {
		t.Fatalf("pooled encode averages %.2f allocs/op, want < 1 (pool reuse)", avg)
	}
}

// TestBatchCacheSingleFlight: one claimer, K waiters on the same key. All
// waiters must block until Fulfill and then observe the same bytes; the
// counters must show exactly one miss (one pipeline execution) and K waits.
func TestBatchCacheSingleFlight(t *testing.T) {
	const K = 8
	c := NewBatchCache(1 << 20)
	key := cacheKeyN(0)

	hit, wait, claimed := c.GetOrClaim(key, 1)
	if hit != nil || wait != nil || !claimed {
		t.Fatal("first GetOrClaim did not claim")
	}

	got := make([][]byte, K)
	var wg sync.WaitGroup
	started := make(chan struct{}, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, w, cl := c.GetOrClaim(key, 100+i)
			if cl || h != nil {
				t.Errorf("waiter %d: expected in-flight entry, got claim=%v hit=%v", i, cl, h != nil)
				return
			}
			started <- struct{}{}
			f, ok, err := c.Wait(w, nil, 30*time.Second)
			if err != nil || !ok {
				t.Errorf("waiter %d: Wait ok=%v err=%v", i, ok, err)
				return
			}
			got[i] = append([]byte(nil), f.Bytes()...)
			f.Release()
		}(i)
	}
	for i := 0; i < K; i++ {
		<-started
	}

	f := cacheFrame(64, 0x42)
	c.Fulfill(key, f)
	f.Release() // claimer's own reference
	wg.Wait()

	for i := range got {
		if len(got[i]) != 64 || got[i][0] != 0x42 {
			t.Fatalf("waiter %d observed wrong bytes", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.SingleflightWait != K || st.Hits != 0 {
		t.Fatalf("stats %+v, want misses=1 waits=%d", st, K)
	}

	// A late requester is a plain hit on the ready entry.
	h, _, _ := c.GetOrClaim(key, 999)
	if h == nil {
		t.Fatal("ready entry did not hit")
	}
	h.Release()
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("hits %d after ready lookup, want 1", st.Hits)
	}
}

// TestBatchCacheAbandonWakesWaiters: an owner that fails must not strand its
// waiters — they wake, retry, and one of them claims and computes.
func TestBatchCacheAbandonWakesWaiters(t *testing.T) {
	c := NewBatchCache(1 << 20)
	key := cacheKeyN(1)
	if _, _, claimed := c.GetOrClaim(key, 1); !claimed {
		t.Fatal("setup claim failed")
	}

	computes := 0
	done := make(chan []byte, 1)
	go func() {
		f, err := c.Acquire(key, 2, nil, 30*time.Second, func() (*Frame, error) {
			computes++
			return cacheFrame(16, 0x7), nil
		})
		if err != nil {
			t.Errorf("Acquire after abandon: %v", err)
			done <- nil
			return
		}
		b := append([]byte(nil), f.Bytes()...)
		f.Release()
		done <- b
	}()

	time.Sleep(10 * time.Millisecond) // let the waiter park
	c.Abandon(key)

	select {
	case b := <-done:
		if len(b) != 16 || b[0] != 0x7 {
			t.Fatal("fallback compute produced wrong bytes")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter stranded after Abandon")
	}
	if computes != 1 {
		t.Fatalf("computes %d, want 1", computes)
	}
	st := c.Stats()
	if st.Abandoned != 1 {
		t.Fatalf("abandoned %d, want 1", st.Abandoned)
	}
}

// TestBatchCacheWaitTimeout: a stuck owner must not wedge a waiter; the wait
// times out and Acquire computes locally without touching the stuck claim.
func TestBatchCacheWaitTimeout(t *testing.T) {
	c := NewBatchCache(1 << 20)
	key := cacheKeyN(2)
	if _, _, claimed := c.GetOrClaim(key, 1); !claimed {
		t.Fatal("setup claim failed")
	}

	f, err := c.Acquire(key, 2, nil, 20*time.Millisecond, func() (*Frame, error) {
		return cacheFrame(8, 0x9), nil
	})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if f.Len() != 8 || f.Bytes()[0] != 0x9 {
		t.Fatal("timed-out Acquire returned wrong bytes")
	}
	f.Release()

	// The stuck claim is untouched: fulfilling it later still works and
	// serves subsequent lookups.
	owner := cacheFrame(8, 0xa)
	c.Fulfill(key, owner)
	owner.Release()
	h, _, _ := c.GetOrClaim(key, 3)
	if h == nil || h.Bytes()[0] != 0xa {
		t.Fatal("original claim unusable after a waiter timed out")
	}
	h.Release()
}

// TestBatchCacheEvictionOrder pins the LRU discipline (PageCache's): the
// least recently used ready entry leaves first, and a hit protects an entry
// by moving it to the MRU end.
func TestBatchCacheEvictionOrder(t *testing.T) {
	const frameSize = 100
	c := NewBatchCache(3 * frameSize)
	put := func(gid int) {
		if !c.Claim(cacheKeyN(gid), 1) {
			t.Fatalf("claim %d failed", gid)
		}
		f := cacheFrame(frameSize, byte(gid))
		c.Fulfill(cacheKeyN(gid), f)
		f.Release()
	}
	lookup := func(gid int) bool {
		h, _, claimed := c.GetOrClaim(cacheKeyN(gid), 2)
		if h != nil {
			h.Release()
			return true
		}
		if claimed {
			c.Abandon(cacheKeyN(gid)) // undo the probe's claim
		}
		return false
	}

	put(0)
	put(1)
	put(2)
	put(3) // budget 3: evicts 0, the LRU
	if lookup(0) {
		t.Fatal("entry 0 survived over-budget insert")
	}
	if !lookup(1) || !lookup(2) || !lookup(3) {
		t.Fatal("younger entries evicted out of order")
	}

	// lookup(1..3) made 1 the LRU again in order 1,2,3; touch 1 to protect it.
	if !lookup(1) {
		t.Fatal("entry 1 missing before protection check")
	}
	put(4) // evicts 2: the oldest untouched entry
	if lookup(2) {
		t.Fatal("LRU order violated: 2 should have been evicted")
	}
	if !lookup(1) || !lookup(3) || !lookup(4) {
		t.Fatal("protected or fresh entries evicted")
	}
	st := c.Stats()
	if st.Evicted != 2 {
		t.Fatalf("evicted %d, want 2", st.Evicted)
	}
	if st.BytesUsed != 3*frameSize || st.Entries != 3 {
		t.Fatalf("used=%d entries=%d, want %d/3", st.BytesUsed, st.Entries, 3*frameSize)
	}
}

// TestBatchCacheByteBudget: the budget bounds resident bytes; an entry larger
// than the whole budget still serves its waiters (publish first, evict
// second) but does not stay resident.
func TestBatchCacheByteBudget(t *testing.T) {
	c := NewBatchCache(250)
	for gid := 0; gid < 10; gid++ {
		if !c.Claim(cacheKeyN(gid), 1) {
			t.Fatalf("claim %d failed", gid)
		}
		f := cacheFrame(100, byte(gid))
		c.Fulfill(cacheKeyN(gid), f)
		// The fulfiller's reference outlives eviction: bytes stay valid.
		if f.Bytes()[0] != byte(gid) {
			t.Fatalf("frame %d corrupted after fulfill", gid)
		}
		f.Release()
		if st := c.Stats(); st.BytesUsed > 250 {
			t.Fatalf("after insert %d: %d bytes resident, budget 250", gid, st.BytesUsed)
		}
	}

	// Oversize frame: published (waiter served), then immediately evicted.
	key := cacheKeyN(99)
	if !c.Claim(key, 1) {
		t.Fatal("oversize claim failed")
	}
	waiterGot := make(chan int, 1)
	_, w, _ := c.GetOrClaim(key, 2)
	go func() {
		f, ok, err := c.Wait(w, nil, 10*time.Second)
		if !ok || err != nil {
			waiterGot <- -1
			return
		}
		n := f.Len()
		f.Release()
		waiterGot <- n
	}()
	big := cacheFrame(1000, 0xee)
	c.Fulfill(key, big)
	big.Release()
	if n := <-waiterGot; n != 1000 {
		t.Fatalf("waiter on oversize frame got %d bytes, want 1000", n)
	}
	st := c.Stats()
	if st.BytesUsed > 250 {
		t.Fatalf("oversize frame stayed resident: %d bytes", st.BytesUsed)
	}
	if h, _, _ := c.GetOrClaim(key, 3); h != nil {
		h.Release()
		t.Fatal("oversize entry still cached")
	} else {
		c.Abandon(key) // undo the probe's claim
	}
}

// TestBatchCacheConcurrentChurn hammers one small cache from many goroutines
// mixing claims, fulfills, hits, waits, and evictions — the -race workout for
// the single-flight state machine.
func TestBatchCacheConcurrentChurn(t *testing.T) {
	c := NewBatchCache(400) // 4 frames of 100: constant eviction pressure
	const (
		workers = 8
		keys    = 16
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				gid := (w + r) % keys
				f, err := c.Acquire(cacheKeyN(gid), w, nil, 10*time.Second, func() (*Frame, error) {
					return cacheFrame(100, byte(gid)), nil
				})
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				if f.Len() != 100 || f.Bytes()[0] != byte(gid) {
					t.Errorf("worker %d round %d: wrong bytes for gid %d", w, r, gid)
				}
				f.Release()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.BytesUsed > 400 {
		t.Fatalf("budget exceeded at rest: %d", st.BytesUsed)
	}
	if total := st.Hits + st.Misses + st.SingleflightWait; total < workers*rounds {
		t.Fatalf("counters %+v do not cover %d acquires", st, workers*rounds)
	}
}
