package serve

import (
	"bytes"
	"fmt"
	"testing"

	"lotus/internal/pipeline"
	"lotus/internal/workloads"
)

// TestServedSampleCacheByteIdentityAndStats serves two real-mode augmented
// epochs from a sample-cache-enabled server and from a plain one: every frame
// must be byte-identical (the cache may change timing, never bytes), the
// first epoch must materialize one prefix per sample, and the second must hit
// on all of them. The counters are also checked through the public stats
// surface the /metrics endpoint publishes.
func TestServedSampleCacheByteIdentityAndStats(t *testing.T) {
	spec := workloads.ICASpec(64, 7)
	spec.BatchSize = 16
	spec.NumWorkers = 2

	mk := func(sampleCacheBytes int64) *Server {
		srv := New(Config{
			Spec: spec, Mode: pipeline.RealData, MaterializeDim: 48,
			Prefetch: 2, SampleCacheBytes: sampleCacheBytes, Logf: t.Logf,
		})
		if err := srv.Start("127.0.0.1:0", ""); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}

	collect := func(srv *Server) map[string][]byte {
		c := NewClient(ClientConfig{Addr: srv.Addr(), Name: "sample-cache-test"})
		defer c.Close()
		got := make(map[string][]byte)
		if _, err := c.Run(2, func(b *Batch, payload []byte) {
			got[fmt.Sprintf("%d/%d", b.Epoch, b.GlobalID)] = append([]byte(nil), payload...)
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	plainSrv := mk(0)
	if _, ok := plainSrv.SampleCacheStats(); ok {
		t.Fatal("sample-cache stats published with the cache disabled")
	}
	plain := collect(plainSrv)

	cachedSrv := mk(256 << 20)
	cached := collect(cachedSrv)

	if len(plain) != len(cached) || len(plain) == 0 {
		t.Fatalf("frame counts diverge: %d vs %d", len(plain), len(cached))
	}
	for key, want := range plain {
		got, ok := cached[key]
		if !ok {
			t.Fatalf("frame %s missing from the cached server", key)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("frame %s: sample-cached server served different bytes", key)
		}
	}

	st, ok := cachedSrv.SampleCacheStats()
	if !ok {
		t.Fatal("sample-cache stats unavailable on a cache-enabled server")
	}
	if st.Misses != int64(spec.NumSamples) {
		t.Fatalf("misses %d, want %d (one prefix per sample in epoch 0)", st.Misses, spec.NumSamples)
	}
	if st.Hits != int64(spec.NumSamples) {
		t.Fatalf("hits %d, want %d (every epoch-1 access must hit)", st.Hits, spec.NumSamples)
	}
	if st.Evicted != 0 {
		t.Fatalf("unexpected evictions under an ample budget: %+v", st)
	}
}

// TestPrefixFingerprintSeparatesConfigurations: any parameter that changes
// prefix bytes must change the fingerprint, or two servers with different
// configurations sharing a cache would serve each other's pixels.
func TestPrefixFingerprintSeparatesConfigurations(t *testing.T) {
	base := workloads.ICASpec(64, 7)
	fpOf := func(spec workloads.Spec, mode pipeline.Mode, dim int) uint64 {
		fp, ok := PrefixFingerprint(spec, mode, dim)
		if !ok {
			t.Fatalf("no usable prefix for %s", spec.Kind)
		}
		return fp
	}
	ref := fpOf(base, pipeline.RealData, 96)

	seen := map[uint64]string{ref: "base"}
	variants := map[string]uint64{}
	s2 := base
	s2.Seed = 8
	variants["seed"] = fpOf(s2, pipeline.RealData, 96)
	s3 := base
	s3.NumSamples = 128
	variants["samples"] = fpOf(s3, pipeline.RealData, 96)
	s4 := workloads.ODSpec(64, 7)
	variants["kind"] = fpOf(s4, pipeline.RealData, 96)
	variants["mode"] = fpOf(base, pipeline.Simulated, 96)
	variants["materialize-dim"] = fpOf(base, pipeline.RealData, 48)
	s5 := base
	s5.OfflineDecode = true
	variants["offline-decode"] = fpOf(s5, pipeline.RealData, 96)

	for name, fp := range variants {
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q (fp %x)", name, prev, fp)
		}
		seen[fp] = name
	}
	// Stability: the same configuration always fingerprints identically.
	if again := fpOf(base, pipeline.RealData, 96); again != ref {
		t.Fatalf("fingerprint not stable: %x vs %x", again, ref)
	}
	// IC's prefix is the bare loader — still cacheable (split 1).
	if _, ok := PrefixFingerprint(workloads.ICSpec(64, 7), pipeline.RealData, 96); !ok {
		t.Fatal("IC lost its cacheable prefix")
	}
}
