package serve

import (
	"lotus/internal/store"
)

// Disk-tier glue: the persistent store sits under both memory caches.
//
//   - Batch frames: every frame the BatchCache publishes (and every eviction
//     victim) spills asynchronously via the SetSpill hook; a session that
//     wins a Claim consults the disk tier before running its pipeline, so a
//     restarted (or sibling) server serves previously produced frames
//     byte-identical without recomputing — the tf.data-service cross-job
//     reuse model over a Seneca-style SSD tier.
//   - Sample snapshots: the SampleCache owns its own disk path (SetDisk);
//     the server only threads the store through.
//
// Both tiers share one Store (one budget, one segment sequence, one
// manifest); the Kind byte in the key keeps the namespaces disjoint.

func diskBatchKey(k BatchKey) store.Key {
	return store.Key{Kind: store.KindBatch, FP: k.Fingerprint,
		A: uint64(k.Epoch), B: uint64(k.GlobalID)}
}

// diskLoadBatch tries to read one encoded batch frame from the persistent
// tier into a pooled Frame. The store verifies the record checksum; a miss
// (or corruption, degraded to a miss) returns nil and the pooled buffer
// goes straight back to its pool.
func (s *Server) diskLoadBatch(key BatchKey) *Frame {
	if s.disk == nil {
		return nil
	}
	var box *[]byte
	_, ok := s.disk.Get(diskBatchKey(key), func(n int) []byte {
		box = frameBufFor(n)
		*box = (*box)[:n]
		return *box
	})
	if !ok {
		if box != nil {
			*box = (*box)[:0]
			frameBufPool.Put(box)
		}
		return nil
	}
	return newFrame(box)
}

// spillBatchFrame is the BatchCache write-through hook: every published
// frame heads for disk without blocking the serving path (the store copies
// the bytes before PutAsync returns and dedups keys already on disk).
func (s *Server) spillBatchFrame(key BatchKey, f *Frame) {
	s.disk.PutAsync(diskBatchKey(key), f.Bytes())
}

// DiskCacheStats reports the persistent tier's counters; ok is false when
// the disk cache is disabled.
func (s *Server) DiskCacheStats() (store.Stats, bool) {
	if s.disk == nil {
		return store.Stats{}, false
	}
	return s.disk.Stats(), true
}

// FlushDiskCache drains queued spills and durably writes the store
// manifest — test and checkpoint hook; the server also flushes on Shutdown.
func (s *Server) FlushDiskCache() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Flush()
}
