package native

import (
	"testing"
	"time"

	"lotus/internal/clock"
)

func TestInventoryUniqueSymbolsPerArch(t *testing.T) {
	for _, arch := range []Arch{Intel, AMD} {
		seen := map[string]string{}
		for _, k := range Inventory() {
			if !k.availableOn(arch) {
				continue
			}
			key := k.Symbol + "@" + k.Library
			if prev, dup := seen[key]; dup {
				t.Errorf("%s: symbol %s defined by kernels %q and %q", arch, key, prev, k.Name)
			}
			seen[key] = k.Name
		}
	}
}

func TestVendorSpecificSymbols(t *testing.T) {
	intel := NewEngine(Intel, DefaultCPU())
	amd := NewEngine(AMD, DefaultCPU())

	ki, ok := intel.Kernel("memcpy")
	if !ok || ki.Symbol != "__memcpy_avx_unaligned_erms" {
		t.Fatalf("intel memcpy = %+v", ki)
	}
	ka, ok := amd.Kernel("memcpy")
	if !ok || ka.Symbol != "__memcpy_avx_unaligned" || ka.Library != "libc-2.31.so" {
		t.Fatalf("amd memcpy = %+v", ka)
	}
	if _, ok := amd.Kernel("memmove"); ok {
		t.Fatal("memmove should be Intel-specific (Table I)")
	}
	if _, ok := intel.Kernel("sep_upsample"); ok {
		t.Fatal("sep_upsample should be AMD-specific (Table I)")
	}
}

func TestDurationScalesLinearlyWithBytes(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	k, _ := e.Kernel("decode_mcu")
	d1 := e.Duration(k, 1000, 1)
	d2 := e.Duration(k, 2000, 1)
	if diff := d2 - 2*d1; diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Fatalf("duration not linear: %v vs %v", d1, d2)
	}
	// decode_mcu at 38 cyc/B, 3.2 GHz: 1000 B -> 45000 cycles -> ~14.06 µs.
	cyclesNS := 38.0 * 1000 / 3.2
	want := time.Duration(cyclesNS)
	if d1 < want-time.Microsecond || d1 > want+time.Microsecond {
		t.Fatalf("d1 = %v, want ~%v", d1, want)
	}
}

func TestMemoryKernelsStretchUnderContention(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	mem, _ := e.Kernel("memcpy")
	cmp, _ := e.Kernel("decode_mcu")
	if e.Duration(mem, 1<<20, 16) <= e.Duration(mem, 1<<20, 1) {
		t.Fatal("memory kernel should stretch with active workers")
	}
	if e.Duration(cmp, 1<<20, 16) != e.Duration(cmp, 1<<20, 1) {
		t.Fatal("compute kernel should not stretch below core count")
	}
	// Oversubscription past core count stretches everything.
	if e.Duration(cmp, 1<<20, 64) <= e.Duration(cmp, 1<<20, 32) {
		t.Fatal("compute kernel should stretch past core count")
	}
}

func TestExecAdvancesCursorAndRecords(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	rec := NewRecording()
	e.Attach(rec)
	th := &Thread{ID: 3, Cursor: clock.Epoch}
	total := e.Exec(th, []Call{
		{Kernel: "decode_mcu", Bytes: 10000},
		{Kernel: "ycc_rgb_convert", Bytes: 60000},
	})
	if th.Cursor.Sub(clock.Epoch) != total {
		t.Fatalf("cursor advanced %v, want %v", th.Cursor.Sub(clock.Epoch), total)
	}
	tl := rec.Timeline(3)
	if len(tl) != 2 {
		t.Fatalf("recorded %d invocations, want 2", len(tl))
	}
	if tl[0].Kernel.Name != "decode_mcu" || tl[1].Kernel.Name != "ycc_rgb_convert" {
		t.Fatalf("wrong kernels recorded: %s, %s", tl[0].Kernel.Name, tl[1].Kernel.Name)
	}
	if !tl[1].Start.Equal(tl[0].End()) {
		t.Fatal("invocations not contiguous on the thread timeline")
	}
	if rec.Len() != 2 {
		t.Fatalf("Len = %d", rec.Len())
	}
}

func TestExecWithoutRecordingIsSilent(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	th := &Thread{ID: 0, Cursor: clock.Epoch}
	e.Exec(th, []Call{{Kernel: "memset", Bytes: 100}})
	rec := NewRecording()
	e.Attach(rec)
	e.Exec(th, []Call{{Kernel: "memset", Bytes: 100}})
	e.Detach()
	e.Exec(th, []Call{{Kernel: "memset", Bytes: 100}})
	if rec.Len() != 1 {
		t.Fatalf("recorded %d invocations, want 1 (only while attached)", rec.Len())
	}
}

func TestExecUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine(Intel, DefaultCPU())
	e.Exec(&Thread{}, []Call{{Kernel: "sep_upsample", Bytes: 1}}) // AMD-only
}

func TestBeginEndWorkTracksConcurrency(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	if n := e.BeginWork(); n != 1 {
		t.Fatalf("first BeginWork = %d", n)
	}
	if n := e.BeginWork(); n != 2 {
		t.Fatalf("second BeginWork = %d", n)
	}
	e.EndWork()
	if e.ActiveWorkers() != 1 {
		t.Fatalf("ActiveWorkers = %d", e.ActiveWorkers())
	}
	e.EndWork()
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced EndWork must panic")
		}
	}()
	e.EndWork()
}

func TestRecordingConcurrencyCaptured(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	rec := NewRecording()
	e.Attach(rec)
	e.BeginWork()
	e.BeginWork()
	e.Exec(&Thread{ID: 1, Cursor: clock.Epoch}, []Call{{Kernel: "memcpy", Bytes: 4096}})
	if tl := rec.Timeline(1); tl[0].Active != 2 {
		t.Fatalf("Active = %d, want 2", tl[0].Active)
	}
}

func TestKernelsSortedAndComplete(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	ks := e.Kernels()
	if len(ks) < 15 {
		t.Fatalf("only %d kernels on Intel; inventory looks truncated", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1].Symbol > ks[i].Symbol {
			t.Fatal("Kernels() not sorted by symbol")
		}
	}
}

func TestCostParametersSane(t *testing.T) {
	for _, k := range Inventory() {
		if k.CyclesPerByte <= 0 || k.InstrPerByte <= 0 {
			t.Errorf("kernel %s has non-positive cost parameters", k.Name)
		}
		if k.FrontEndBound < 0 || k.FrontEndBound > 1 || k.DRAMBound < 0 || k.DRAMBound > 1 {
			t.Errorf("kernel %s has out-of-range bound fractions", k.Name)
		}
		if k.Library == "" || k.Symbol == "" {
			t.Errorf("kernel %s missing symbol/library", k.Name)
		}
	}
}

func TestBoundedRecordingDropsAndCounts(t *testing.T) {
	e := NewEngine(Intel, DefaultCPU())
	rec := NewBoundedRecording(3)
	e.Attach(rec)
	th := &Thread{ID: 1, Cursor: clock.Epoch}
	for i := 0; i < 10; i++ {
		e.Exec(th, []Call{{Kernel: "memset", Bytes: 100}})
	}
	e.Detach()
	if rec.Len() != 3 {
		t.Fatalf("retained %d invocations, want 3", rec.Len())
	}
	if rec.Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", rec.Dropped())
	}
	// Unbounded recordings never drop.
	free := NewRecording()
	e.Attach(free)
	for i := 0; i < 10; i++ {
		e.Exec(th, []Call{{Kernel: "memset", Bytes: 100}})
	}
	e.Detach()
	if free.Dropped() != 0 || free.Len() != 10 {
		t.Fatalf("unbounded recording: len=%d dropped=%d", free.Len(), free.Dropped())
	}
}
