package native

// Inventory returns the full kernel catalogue. Symbols and library names
// follow the paper's Table I where it lists them (libjpeg decode path,
// Pillow resampling, libc memory routines, vendor-specific variants); the
// remaining transforms get plausible symbols in the same style. Cost-model
// parameters are calibrated so that, with the synthetic datasets' byte
// counts, per-operation elapsed times land in the regime Table II reports
// (Loader in milliseconds, flips in tens of microseconds, and so on).
func Inventory() []Kernel {
	return []Kernel{
		// --- libjpeg decode path (Loader / Image.convert) ---
		{
			Name: "decompress_onepass", Symbol: "decompress_onepass",
			Library: "libjpeg.so.9", Class: Mixed,
			CyclesPerByte: 0.4, InstrPerByte: 1.0,
			L1MissPerKB: 2.0, LLCMissPerKB: 0.25,
			FrontEndBound: 0.22, DRAMBound: 0.08,
		},
		{
			Name: "decode_mcu", Symbol: "decode_mcu",
			Library: "libjpeg.so.9", Class: Compute,
			CyclesPerByte: 38, InstrPerByte: 46,
			L1MissPerKB: 1.2, LLCMissPerKB: 0.05,
			FrontEndBound: 0.38, DRAMBound: 0.02,
		},
		{
			Name: "jpeg_idct_islow", Symbol: "jpeg_idct_islow",
			Library: "libjpeg.so.9", Class: Compute,
			CyclesPerByte: 5, InstrPerByte: 9,
			L1MissPerKB: 1.5, LLCMissPerKB: 0.08,
			FrontEndBound: 0.18, DRAMBound: 0.03,
		},
		{
			// Scaled-output IDCT variant: short-lived and taken only for a
			// minority of blocks — the "inconsistent capture" case LotusMap's
			// multi-run technique exists for.
			Name: "jpeg_idct_16x16", Symbol: "jpeg_idct_16x16",
			Library: "libjpeg.so.9", Class: Compute,
			CyclesPerByte: 6, InstrPerByte: 10,
			L1MissPerKB: 1.5, LLCMissPerKB: 0.08,
			FrontEndBound: 0.18, DRAMBound: 0.03,
		},
		{
			Name: "ycc_rgb_convert", Symbol: "ycc_rgb_convert",
			Library: "libjpeg.so.9", Class: Mixed,
			CyclesPerByte: 2.5, InstrPerByte: 4.5,
			L1MissPerKB: 2.2, LLCMissPerKB: 0.2,
			FrontEndBound: 0.15, DRAMBound: 0.06,
		},
		{
			Name: "jpeg_fill_bit_buffer", Symbol: "jpeg_fill_bit_buffer",
			Library: "libjpeg.so.9", Class: Compute,
			CyclesPerByte: 2, InstrPerByte: 3.5,
			L1MissPerKB: 0.8, LLCMissPerKB: 0.02,
			FrontEndBound: 0.42, DRAMBound: 0.01,
		},
		{
			Name: "process_data_simple_main", Symbol: "process_data_simple_main",
			Library: "libjpeg.so.9", Class: Mixed,
			CyclesPerByte: 0.4, InstrPerByte: 0.9,
			L1MissPerKB: 1.8, LLCMissPerKB: 0.2,
			FrontEndBound: 0.2, DRAMBound: 0.07,
			Archs: []Arch{AMD},
		},
		{
			Name: "sep_upsample", Symbol: "sep_upsample",
			Library: "libjpeg.so.9", Class: Memory,
			CyclesPerByte: 0.6, InstrPerByte: 1.1,
			L1MissPerKB: 3.0, LLCMissPerKB: 0.5,
			FrontEndBound: 0.12, DRAMBound: 0.15,
			Archs: []Arch{AMD},
		},

		// --- Pillow (PIL _imaging C extension) ---
		{
			Name: "ImagingUnpackRGB", Symbol: "ImagingUnpackRGB",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Memory,
			CyclesPerByte: 1.2, InstrPerByte: 1.8,
			L1MissPerKB: 4.0, LLCMissPerKB: 0.8,
			FrontEndBound: 0.1, DRAMBound: 0.2,
		},
		{
			Name: "ImagingResampleHorizontal_8bpc", Symbol: "ImagingResampleHorizontal_8bpc",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Mixed,
			CyclesPerByte: 3.5, InstrPerByte: 6.5,
			L1MissPerKB: 2.5, LLCMissPerKB: 0.3,
			FrontEndBound: 0.16, DRAMBound: 0.07,
		},
		{
			Name: "ImagingResampleVertical_8bpc", Symbol: "ImagingResampleVertical_8bpc",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Mixed,
			CyclesPerByte: 3, InstrPerByte: 6,
			L1MissPerKB: 3.5, LLCMissPerKB: 0.6,
			FrontEndBound: 0.14, DRAMBound: 0.12,
		},
		{
			Name: "precompute_coeffs", Symbol: "precompute_coeffs",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Compute,
			CyclesPerByte: 30, InstrPerByte: 40,
			L1MissPerKB: 0.5, LLCMissPerKB: 0.01,
			FrontEndBound: 0.3, DRAMBound: 0.01,
			Archs: []Arch{AMD},
		},
		{
			Name: "ImagingFlipLeftRight", Symbol: "ImagingFlipLeftRight",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Memory,
			CyclesPerByte: 1.6, InstrPerByte: 2.4,
			L1MissPerKB: 4.5, LLCMissPerKB: 0.9,
			FrontEndBound: 0.09, DRAMBound: 0.22,
		},
		{
			Name: "ImagingCrop", Symbol: "ImagingCrop",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Memory,
			CyclesPerByte: 0.5, InstrPerByte: 0.8,
			L1MissPerKB: 4.0, LLCMissPerKB: 0.9,
			FrontEndBound: 0.08, DRAMBound: 0.24,
		},
		{
			Name: "pil_copy", Symbol: "copy",
			Library: "_imaging.cpython-310-x86_64-linux-gnu.so", Class: Memory,
			CyclesPerByte: 0.6, InstrPerByte: 0.9,
			L1MissPerKB: 4.2, LLCMissPerKB: 0.9,
			FrontEndBound: 0.08, DRAMBound: 0.22,
			Archs: []Arch{AMD},
		},

		// --- libc memory routines (vendor-specific symbols) ---
		{
			Name: "memcpy", Symbol: "__memcpy_avx_unaligned_erms",
			Library: "libc.so.6", Class: Memory,
			CyclesPerByte: 0.35, InstrPerByte: 0.12,
			L1MissPerKB: 5.0, LLCMissPerKB: 1.2,
			FrontEndBound: 0.05, DRAMBound: 0.3,
			Archs: []Arch{Intel},
		},
		{
			Name: "memcpy", Symbol: "__memcpy_avx_unaligned",
			Library: "libc-2.31.so", Class: Memory,
			CyclesPerByte: 0.35, InstrPerByte: 0.12,
			L1MissPerKB: 5.0, LLCMissPerKB: 1.2,
			FrontEndBound: 0.05, DRAMBound: 0.3,
			Archs: []Arch{AMD},
		},
		{
			Name: "memset", Symbol: "__memset_avx2_unaligned_erms",
			Library: "libc.so.6", Class: Memory,
			CyclesPerByte: 0.25, InstrPerByte: 0.08,
			L1MissPerKB: 4.0, LLCMissPerKB: 1.0,
			FrontEndBound: 0.04, DRAMBound: 0.28,
			Archs: []Arch{Intel},
		},
		{
			Name: "memset", Symbol: "__memset_avx2_unaligned",
			Library: "libc-2.31.so", Class: Memory,
			CyclesPerByte: 0.25, InstrPerByte: 0.08,
			L1MissPerKB: 4.0, LLCMissPerKB: 1.0,
			FrontEndBound: 0.04, DRAMBound: 0.28,
			Archs: []Arch{AMD},
		},
		{
			Name: "memmove", Symbol: "__memmove_avx_unaligned_erms",
			Library: "libc.so.6", Class: Memory,
			CyclesPerByte: 0.4, InstrPerByte: 0.14,
			L1MissPerKB: 5.0, LLCMissPerKB: 1.1,
			FrontEndBound: 0.05, DRAMBound: 0.3,
			Archs: []Arch{Intel},
		},
		{
			Name: "calloc", Symbol: "__libc_calloc",
			Library: "libc.so.6", Class: Memory,
			CyclesPerByte: 0.3, InstrPerByte: 0.1,
			L1MissPerKB: 3.5, LLCMissPerKB: 0.9,
			FrontEndBound: 0.06, DRAMBound: 0.26,
			Archs: []Arch{Intel},
		},
		{
			Name: "int_free", Symbol: "_int_free",
			Library: "libc.so.6", Class: Compute,
			CyclesPerByte: 2, InstrPerByte: 4,
			L1MissPerKB: 1.0, LLCMissPerKB: 0.1,
			FrontEndBound: 0.25, DRAMBound: 0.03,
			Archs: []Arch{Intel},
		},

		// --- libtorch tensor kernels (ToTensor / Normalize / Collate) ---
		{
			Name: "convert_u8_f32", Symbol: "at::native::copy_kernel_u8_f32",
			Library: "libtorch_cpu.so", Class: Mixed,
			CyclesPerByte: 2.2, InstrPerByte: 3.4,
			L1MissPerKB: 3.5, LLCMissPerKB: 0.7,
			FrontEndBound: 0.12, DRAMBound: 0.16,
		},
		{
			Name: "normalize_f32", Symbol: "at::native::normalize_vec256_f32",
			Library: "libtorch_cpu.so", Class: Mixed,
			CyclesPerByte: 1.0, InstrPerByte: 1.5,
			L1MissPerKB: 3.8, LLCMissPerKB: 0.8,
			FrontEndBound: 0.1, DRAMBound: 0.18,
		},
		{
			Name: "cat_serial_kernel", Symbol: "at::native::cat_serial_kernel",
			Library: "libtorch_cpu.so", Class: Memory,
			CyclesPerByte: 1.45, InstrPerByte: 0.7,
			L1MissPerKB: 5.5, LLCMissPerKB: 1.4,
			FrontEndBound: 0.06, DRAMBound: 0.34,
		},

		// --- numpy / volume kernels (IS pipeline) ---
		{
			Name: "npy_parse", Symbol: "PyArray_FromFile",
			Library: "_multiarray_umath.cpython-310.so", Class: Mixed,
			CyclesPerByte: 3.5, InstrPerByte: 7.5,
			L1MissPerKB: 3.2, LLCMissPerKB: 0.9,
			FrontEndBound: 0.2, DRAMBound: 0.18,
		},
		{
			Name: "argwhere_f32", Symbol: "npy_argwhere_bool",
			Library: "_multiarray_umath.cpython-310.so", Class: Mixed,
			CyclesPerByte: 9.0, InstrPerByte: 7.6,
			L1MissPerKB: 3.9, LLCMissPerKB: 1.0,
			FrontEndBound: 0.17, DRAMBound: 0.2,
		},
		{
			Name: "crop_copy_3d", Symbol: "npy_fancy_take_3d",
			Library: "_multiarray_umath.cpython-310.so", Class: Memory,
			CyclesPerByte: 0.7, InstrPerByte: 0.5,
			L1MissPerKB: 5.8, LLCMissPerKB: 1.5,
			FrontEndBound: 0.07, DRAMBound: 0.33,
		},
		{
			Name: "flip_3d", Symbol: "npy_flip_strided",
			Library: "_multiarray_umath.cpython-310.so", Class: Memory,
			CyclesPerByte: 1.4, InstrPerByte: 1.1,
			L1MissPerKB: 6.5, LLCMissPerKB: 1.8,
			FrontEndBound: 0.06, DRAMBound: 0.36,
		},
		{
			Name: "cast_f32_u8", Symbol: "npy_cast_f32_u8_avx2",
			Library: "_multiarray_umath.cpython-310.so", Class: Mixed,
			CyclesPerByte: 0.8, InstrPerByte: 1.2,
			L1MissPerKB: 3.4, LLCMissPerKB: 0.8,
			FrontEndBound: 0.11, DRAMBound: 0.17,
		},
		{
			Name: "scale_f32", Symbol: "npy_multiply_scalar_f32",
			Library: "_multiarray_umath.cpython-310.so", Class: Mixed,
			CyclesPerByte: 2.8, InstrPerByte: 1.0,
			L1MissPerKB: 3.6, LLCMissPerKB: 0.8,
			FrontEndBound: 0.1, DRAMBound: 0.18,
		},
		{
			Name: "gaussian_noise_f32", Symbol: "npy_random_normal_fill",
			Library: "_multiarray_umath.cpython-310.so", Class: Compute,
			CyclesPerByte: 18, InstrPerByte: 4.8,
			L1MissPerKB: 1.1, LLCMissPerKB: 0.15,
			FrontEndBound: 0.24, DRAMBound: 0.04,
		},
		{
			Name: "box_muller", Symbol: "npy_gauss_box_muller",
			Library: "_multiarray_umath.cpython-310.so", Class: Compute,
			CyclesPerByte: 3.4, InstrPerByte: 6.2,
			L1MissPerKB: 0.8, LLCMissPerKB: 0.05,
			FrontEndBound: 0.28, DRAMBound: 0.02,
		},
		{
			Name: "pixel_noise_u8", Symbol: "npy_random_uniform_add_u8",
			Library: "_multiarray_umath.cpython-310.so", Class: Mixed,
			CyclesPerByte: 3.0, InstrPerByte: 4.2,
			L1MissPerKB: 2.4, LLCMissPerKB: 0.3,
			FrontEndBound: 0.16, DRAMBound: 0.08,
		},
	}
}
