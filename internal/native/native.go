// Package native models the C/C++ layer beneath the preprocessing
// framework: the named native functions (kernels) that high-level transform
// operations actually execute, together with a per-kernel cost model.
//
// In the real system this layer is libjpeg, Pillow, libc, and libtorch
// reached through pybind11 — and the central difficulty the paper addresses
// is that hardware profilers see *only* this layer (function symbols), while
// framework-level tools see *only* transform names. We reproduce that
// information gap deliberately:
//
//   - transforms execute work by issuing kernel Calls through an Engine;
//   - the Engine converts calls to durations via the cost model and, when a
//     profiling session is attached, records per-thread invocation timelines;
//   - the hardware-profiler simulation (package hwsim) observes ONLY kernel
//     symbols and timelines — never transform names;
//   - the ground-truth transform→kernel mapping is available to tests via
//     GroundTruth, letting the repository *validate* LotusMap's reconstruction
//     quality, something the paper could only argue qualitatively.
package native

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Arch selects the simulated CPU vendor. Some kernels resolve to different
// symbols (or exist at all) only on one vendor, mirroring Table I's
// Intel-specific and AMD-specific rows.
type Arch int

const (
	Intel Arch = iota
	AMD
)

func (a Arch) String() string {
	if a == AMD {
		return "amd"
	}
	return "intel"
}

// WorkClass coarsely classifies a kernel's bottleneck, which the hardware
// model uses to scale contention effects.
type WorkClass int

const (
	// Compute kernels scale with core count and suffer little from memory
	// contention (DCT, entropy coding).
	Compute WorkClass = iota
	// Memory kernels are bandwidth-bound and stretch under concurrency
	// (memcpy, memset, unpack).
	Memory
	// Mixed kernels sit in between (resampling, color conversion).
	Mixed
)

func (w WorkClass) String() string {
	switch w {
	case Compute:
		return "compute"
	case Memory:
		return "memory"
	case Mixed:
		return "mixed"
	}
	return "unknown"
}

// Kernel describes one native function and its cost model. Counter rates are
// per byte processed; the hwsim package derives PMU events from them.
type Kernel struct {
	// Name is the logical kernel id used by transform code, e.g. "decode_mcu".
	Name string
	// Symbol is the linker symbol a profiler would report. Often equals Name
	// but vendor-specific kernels differ (e.g. "__memcpy_avx_unaligned_erms").
	Symbol string
	// Library is the shared object the symbol lives in.
	Library string
	// Class is the bottleneck classification.
	Class WorkClass
	// CyclesPerByte converts bytes processed to unloaded core cycles.
	CyclesPerByte float64
	// InstrPerByte converts bytes processed to retired instructions.
	InstrPerByte float64
	// L1MissPerKB / LLCMissPerKB are cache-miss rates per kilobyte.
	L1MissPerKB  float64
	LLCMissPerKB float64
	// FrontEndBound is the unloaded fraction of pipeline slots stalled on
	// instruction supply.
	FrontEndBound float64
	// DRAMBound is the unloaded fraction of cycles stalled on local DRAM.
	DRAMBound float64
	// Arch restricts the kernel to one vendor; nil means both.
	Archs []Arch
}

// availableOn reports whether the kernel exists on the given architecture.
func (k *Kernel) availableOn(a Arch) bool {
	if len(k.Archs) == 0 {
		return true
	}
	for _, x := range k.Archs {
		if x == a {
			return true
		}
	}
	return false
}

// Call is one kernel invocation request issued by a transform.
type Call struct {
	Kernel string
	Bytes  int
}

// Invocation is a recorded kernel execution on a thread timeline.
type Invocation struct {
	Kernel *Kernel
	Thread int
	Start  time.Time
	Dur    time.Duration
	Bytes  int
	// Active is the number of concurrently working threads sampled when the
	// invocation began; the hardware model scales contention effects from it.
	Active int
}

// End returns the invocation's end time.
func (inv *Invocation) End() time.Time { return inv.Start.Add(inv.Dur) }

// CPUConfig describes the simulated processor, defaulting to the paper's
// dual-socket 3.2 GHz Xeon E5-2667 (32 logical cores).
type CPUConfig struct {
	FreqGHz float64
	Cores   int
	// MemContention scales how much Memory-class kernels stretch per
	// additional concurrently active worker (fraction per worker).
	MemContention float64
	// SMTPenalty scales how much all kernels stretch once active workers
	// exceed physical cores.
	SMTPenalty float64
}

// DefaultCPU returns the paper-testbed configuration. MemContention is
// calibrated so that scaling the IC pipeline from 8 to 28 data loaders
// inflates total preprocessing CPU time by roughly the +53% Figure 6(b)
// reports.
func DefaultCPU() CPUConfig {
	return CPUConfig{FreqGHz: 3.2, Cores: 32, MemContention: 0.06, SMTPenalty: 0.8}
}

// Engine executes kernel calls under a cost model, tracks concurrency, and
// records invocation timelines for attached profiling sessions.
type Engine struct {
	arch Arch
	cpu  CPUConfig
	reg  map[string]*Kernel

	mu     sync.Mutex
	active int
	rec    *Recording
}

// NewEngine builds an engine with the standard kernel inventory for arch.
func NewEngine(arch Arch, cpu CPUConfig) *Engine {
	e := &Engine{arch: arch, cpu: cpu, reg: make(map[string]*Kernel)}
	for _, k := range Inventory() {
		if k.availableOn(arch) {
			kc := k // copy
			e.reg[k.Name] = &kc
		}
	}
	return e
}

// Arch returns the engine's simulated vendor.
func (e *Engine) Arch() Arch { return e.arch }

// CPU returns the processor configuration.
func (e *Engine) CPU() CPUConfig { return e.cpu }

// Kernel looks up a kernel by logical name. ok is false when the kernel does
// not exist on this architecture.
func (e *Engine) Kernel(name string) (*Kernel, bool) {
	k, ok := e.reg[name]
	return k, ok
}

// Kernels returns every kernel available on this architecture, sorted by
// symbol for stable iteration.
func (e *Engine) Kernels() []*Kernel {
	out := make([]*Kernel, 0, len(e.reg))
	for _, k := range e.reg {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Symbol < out[j].Symbol })
	return out
}

// BeginWork marks a worker thread as actively preprocessing; returns the
// concurrency level including this worker. EndWork undoes it.
func (e *Engine) BeginWork() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active++
	return e.active
}

// EndWork marks the end of a worker's active region.
func (e *Engine) EndWork() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.active == 0 {
		panic("native: EndWork without BeginWork")
	}
	e.active--
}

// ActiveWorkers reports the current concurrency level.
func (e *Engine) ActiveWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active
}

// Duration computes the modeled duration of a call under the given
// concurrency. It is exported so the experiment harness can reason about
// unloaded costs.
func (e *Engine) Duration(k *Kernel, bytes, active int) time.Duration {
	cycles := k.CyclesPerByte * float64(bytes)
	stretch := 1.0
	if k.Class != Compute && active > 1 {
		stretch += e.cpu.MemContention * float64(active-1)
	}
	if active > e.cpu.Cores {
		over := float64(active-e.cpu.Cores) / float64(e.cpu.Cores)
		stretch += e.cpu.SMTPenalty * over
	}
	ns := cycles * stretch / e.cpu.FreqGHz
	return time.Duration(ns)
}

// Exec runs a sequence of calls on the thread th starting at the thread's
// current cursor. It returns the total modeled duration; the caller is
// responsible for advancing simulated time (or actually burning CPU) by this
// amount. Unknown kernels panic: a transform referencing a kernel absent on
// this architecture is a programming error.
func (e *Engine) Exec(th *Thread, calls []Call) time.Duration {
	e.mu.Lock()
	active := e.active
	if active == 0 {
		active = 1
	}
	rec := e.rec
	e.mu.Unlock()

	var total time.Duration
	for _, c := range calls {
		k, ok := e.reg[c.Kernel]
		if !ok {
			panic(fmt.Sprintf("native: kernel %q not available on %s", c.Kernel, e.arch))
		}
		d := e.Duration(k, c.Bytes, active)
		if rec != nil {
			rec.add(Invocation{
				Kernel: k,
				Thread: th.ID,
				Start:  th.Cursor,
				Dur:    d,
				Bytes:  c.Bytes,
				Active: active,
			})
		}
		th.Cursor = th.Cursor.Add(d)
		total += d
	}
	return total
}

// Attach installs a recording; subsequent Exec calls append invocations to
// it. Returns the recording. Attaching replaces any previous recording.
func (e *Engine) Attach(rec *Recording) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec = rec
}

// Detach stops recording.
func (e *Engine) Detach() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec = nil
}

// Thread carries a per-worker timeline cursor. The pipeline synchronizes
// Cursor with the simulated clock at the start of each operation so recorded
// invocations line up with trace timestamps.
type Thread struct {
	ID     int
	Cursor time.Time
}

// Recording accumulates invocations grouped per thread, each thread's list
// naturally sorted by start time (cursors only move forward).
type Recording struct {
	mu      sync.Mutex
	threads map[int][]Invocation
	total   int
	// cap bounds the total retained invocations (0 = unbounded); overflow
	// is counted in dropped rather than silently discarded, so analyses can
	// report truncation.
	cap     int
	dropped int
}

// NewRecording creates an empty, unbounded recording.
func NewRecording() *Recording {
	return &Recording{threads: make(map[int][]Invocation)}
}

// NewBoundedRecording creates a recording that retains at most maxInv
// invocations; further invocations are counted as dropped. Long profiling
// sessions (multi-epoch runs) use this to bound memory.
func NewBoundedRecording(maxInv int) *Recording {
	r := NewRecording()
	r.cap = maxInv
	return r
}

func (r *Recording) add(inv Invocation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap > 0 && r.total >= r.cap {
		r.dropped++
		return
	}
	r.threads[inv.Thread] = append(r.threads[inv.Thread], inv)
	r.total++
}

// Dropped reports how many invocations overflowed a bounded recording.
func (r *Recording) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Threads returns the recorded thread IDs in ascending order.
func (r *Recording) Threads() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.threads))
	for id := range r.threads {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Timeline returns the invocations recorded for one thread, in start order.
func (r *Recording) Timeline(thread int) []Invocation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Invocation(nil), r.threads[thread]...)
}

// Len returns the total number of recorded invocations.
func (r *Recording) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.threads {
		n += len(t)
	}
	return n
}
