// Package tensor implements the minimal dense-tensor substrate the
// preprocessing pipelines operate on: uint8 and float32 tensors with
// arbitrary rank, plus the operations the MLPerf pipelines use (cast,
// normalize, flip, stack/collate).
//
// Data buffers are optional: in the virtual-time characterization runs the
// pipeline moves shape-only tensors (Meta tensors) and models the kernel cost
// from element counts, while the real-time examples carry actual data. All
// operations handle both forms.
package tensor

import (
	"fmt"
	"math"
)

// DType enumerates the element types used by the pipelines.
type DType int

const (
	Uint8 DType = iota
	Float32
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Uint8:
		return 1
	case Float32:
		return 4
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
}

func (d DType) String() string {
	switch d {
	case Uint8:
		return "uint8"
	case Float32:
		return "float32"
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Tensor is a dense n-dimensional array. Exactly one of U8/F32 is non-nil
// for a materialized tensor; both are nil for a meta (shape-only) tensor.
type Tensor struct {
	Shape []int
	Dtype DType
	U8    []uint8
	F32   []float32
}

// NumElems returns the product of the shape dimensions.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Meta creates a shape-only tensor carrying no data.
func Meta(dtype DType, shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Dtype: dtype}
}

// Zeros creates a materialized tensor filled with zeros.
func Zeros(dtype DType, shape ...int) *Tensor {
	t := Meta(dtype, shape...)
	n := NumElems(shape)
	switch dtype {
	case Uint8:
		t.U8 = make([]uint8, n)
	case Float32:
		t.F32 = make([]float32, n)
	}
	return t
}

// FromU8 wraps data (not copied) as a tensor of the given shape.
func FromU8(data []uint8, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	t := Meta(Uint8, shape...)
	t.U8 = data
	return t
}

// FromF32 wraps data (not copied) as a tensor of the given shape.
func FromF32(data []float32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	t := Meta(Float32, shape...)
	t.F32 = data
	return t
}

// IsMeta reports whether the tensor carries no data buffer.
func (t *Tensor) IsMeta() bool { return t.U8 == nil && t.F32 == nil }

// Len returns the number of elements.
func (t *Tensor) Len() int { return NumElems(t.Shape) }

// Bytes returns the buffer size in bytes the tensor represents (for meta
// tensors, the size it would occupy if materialized).
func (t *Tensor) Bytes() int { return t.Len() * t.Dtype.Size() }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := Meta(t.Dtype, t.Shape...)
	if t.U8 != nil {
		out.U8 = append([]uint8(nil), t.U8...)
	}
	if t.F32 != nil {
		out.F32 = append([]float32(nil), t.F32...)
	}
	return out
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

func (t *Tensor) String() string {
	kind := "data"
	if t.IsMeta() {
		kind = "meta"
	}
	return fmt.Sprintf("Tensor(%s, %v, %s)", t.Dtype, t.Shape, kind)
}

// ToFloat32 converts to float32, scaling uint8 values into [0, 1] the way
// torchvision's ToTensor does. Meta tensors convert to meta tensors.
func (t *Tensor) ToFloat32() *Tensor {
	if t.Dtype == Float32 {
		return t.Clone()
	}
	out := Meta(Float32, t.Shape...)
	if t.U8 != nil {
		out.F32 = make([]float32, len(t.U8))
		for i, v := range t.U8 {
			out.F32[i] = float32(v) / 255
		}
	}
	return out
}

// ToUint8 casts float32 values to uint8 with clamping (the IS pipeline's
// Cast op). Values are assumed to already be in display range.
func (t *Tensor) ToUint8() *Tensor {
	if t.Dtype == Uint8 {
		return t.Clone()
	}
	out := Meta(Uint8, t.Shape...)
	if t.F32 != nil {
		out.U8 = make([]uint8, len(t.F32))
		for i, v := range t.F32 {
			switch {
			case v <= 0:
				out.U8[i] = 0
			case v >= 255:
				out.U8[i] = 255
			default:
				out.U8[i] = uint8(v)
			}
		}
	}
	return out
}

// Normalize applies (x - mean[c]) / std[c] per leading-dimension channel,
// in place, and returns the receiver. The tensor must be float32 with shape
// [C, ...]; len(mean) and len(std) must equal C.
func (t *Tensor) Normalize(mean, std []float32) *Tensor {
	if t.Dtype != Float32 {
		panic("tensor: Normalize requires a float32 tensor")
	}
	c := t.Shape[0]
	if len(mean) != c || len(std) != c {
		panic(fmt.Sprintf("tensor: Normalize mean/std length %d/%d != channels %d", len(mean), len(std), c))
	}
	if t.F32 == nil {
		return t
	}
	per := t.Len() / c
	for ch := 0; ch < c; ch++ {
		m, s := mean[ch], std[ch]
		seg := t.F32[ch*per : (ch+1)*per]
		inv := float32(1) / s
		for i := range seg {
			seg[i] = (seg[i] - m) * inv
		}
	}
	return t
}

// FlipLastDim reverses the last dimension (horizontal flip for [C,H,W]
// layouts), in place, and returns the receiver.
func (t *Tensor) FlipLastDim() *Tensor {
	w := t.Shape[len(t.Shape)-1]
	if w <= 1 || t.IsMeta() {
		return t
	}
	rows := t.Len() / w
	switch t.Dtype {
	case Uint8:
		for r := 0; r < rows; r++ {
			seg := t.U8[r*w : (r+1)*w]
			for i, j := 0, w-1; i < j; i, j = i+1, j-1 {
				seg[i], seg[j] = seg[j], seg[i]
			}
		}
	case Float32:
		for r := 0; r < rows; r++ {
			seg := t.F32[r*w : (r+1)*w]
			for i, j := 0, w-1; i < j; i, j = i+1, j-1 {
				seg[i], seg[j] = seg[j], seg[i]
			}
		}
	}
	return t
}

// Stack collates k same-shaped tensors into one tensor of shape [k, ...].
// This is the DataLoader's default collate function. Meta inputs produce a
// meta output.
func Stack(ts []*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of zero tensors")
	}
	first := ts[0]
	for _, t := range ts[1:] {
		if t.Dtype != first.Dtype || !sameShape(t.Shape, first.Shape) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch: %v vs %v", t, first))
		}
	}
	outShape := append([]int{len(ts)}, first.Shape...)
	out := Meta(first.Dtype, outShape...)
	if first.IsMeta() {
		return out
	}
	n := first.Len()
	switch first.Dtype {
	case Uint8:
		out.U8 = make([]uint8, n*len(ts))
		for i, t := range ts {
			copy(out.U8[i*n:], t.U8)
		}
	case Float32:
		out.F32 = make([]float32, n*len(ts))
		for i, t := range ts {
			copy(out.F32[i*n:], t.F32)
		}
	}
	return out
}

// Mean returns the arithmetic mean of all elements (0 for meta tensors).
func (t *Tensor) Mean() float64 {
	n := t.Len()
	if n == 0 || t.IsMeta() {
		return 0
	}
	var sum float64
	switch t.Dtype {
	case Uint8:
		for _, v := range t.U8 {
			sum += float64(v)
		}
	case Float32:
		for _, v := range t.F32 {
			sum += float64(v)
		}
	}
	return sum / float64(n)
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	n := t.Len()
	if n == 0 || t.IsMeta() {
		return 0
	}
	m := t.Mean()
	var sq float64
	switch t.Dtype {
	case Uint8:
		for _, v := range t.U8 {
			d := float64(v) - m
			sq += d * d
		}
	case Float32:
		for _, v := range t.F32 {
			d := float64(v) - m
			sq += d * d
		}
	}
	return math.Sqrt(sq / float64(n))
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
