package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNumElems(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{3, 224, 224}, 3 * 224 * 224},
		{[]int{0, 5}, 0},
	}
	for _, c := range cases {
		if got := NumElems(c.shape); got != c.want {
			t.Errorf("NumElems(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestZerosAndMeta(t *testing.T) {
	z := Zeros(Uint8, 2, 3)
	if z.IsMeta() || len(z.U8) != 6 {
		t.Fatalf("Zeros produced %v", z)
	}
	m := Meta(Float32, 2, 3)
	if !m.IsMeta() || m.Bytes() != 24 {
		t.Fatalf("Meta produced %v with Bytes=%d", m, m.Bytes())
	}
}

func TestToFloat32ScalesLikeToTensor(t *testing.T) {
	u := FromU8([]uint8{0, 127, 255}, 3)
	f := u.ToFloat32()
	if f.Dtype != Float32 {
		t.Fatalf("dtype = %v", f.Dtype)
	}
	want := []float32{0, 127.0 / 255, 1}
	for i := range want {
		if math.Abs(float64(f.F32[i]-want[i])) > 1e-6 {
			t.Fatalf("F32[%d] = %v, want %v", i, f.F32[i], want[i])
		}
	}
}

func TestToUint8Clamps(t *testing.T) {
	f := FromF32([]float32{-4, 0.4, 128, 300}, 4)
	u := f.ToUint8()
	want := []uint8{0, 0, 128, 255}
	for i := range want {
		if u.U8[i] != want[i] {
			t.Fatalf("U8[%d] = %d, want %d", i, u.U8[i], want[i])
		}
	}
}

func TestNormalizePerChannel(t *testing.T) {
	// Shape [2, 2]: channel 0 = {2, 4}, channel 1 = {10, 20}.
	f := FromF32([]float32{2, 4, 10, 20}, 2, 2)
	f.Normalize([]float32{3, 15}, []float32{1, 5})
	want := []float32{-1, 1, -1, 1}
	for i := range want {
		if math.Abs(float64(f.F32[i]-want[i])) > 1e-6 {
			t.Fatalf("F32[%d] = %v, want %v", i, f.F32[i], want[i])
		}
	}
}

func TestNormalizeRejectsWrongDtype(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on uint8 Normalize")
		}
	}()
	Zeros(Uint8, 1, 2).Normalize([]float32{0}, []float32{1})
}

func TestFlipLastDim(t *testing.T) {
	m := FromU8([]uint8{1, 2, 3, 4, 5, 6}, 2, 3)
	m.FlipLastDim()
	want := []uint8{3, 2, 1, 6, 5, 4}
	for i := range want {
		if m.U8[i] != want[i] {
			t.Fatalf("U8 = %v, want %v", m.U8, want)
		}
	}
}

func TestFlipIsInvolution(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		w := 4
		rows := len(data) / w
		if rows == 0 {
			return true
		}
		data = data[:rows*w]
		orig := append([]byte(nil), data...)
		tt := FromU8(data, rows, w)
		tt.FlipLastDim().FlipLastDim()
		for i := range orig {
			if tt.U8[i] != orig[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStackCollate(t *testing.T) {
	a := FromU8([]uint8{1, 2}, 2)
	b := FromU8([]uint8{3, 4}, 2)
	s := Stack([]*Tensor{a, b})
	if s.Shape[0] != 2 || s.Shape[1] != 2 {
		t.Fatalf("shape = %v", s.Shape)
	}
	want := []uint8{1, 2, 3, 4}
	for i := range want {
		if s.U8[i] != want[i] {
			t.Fatalf("U8 = %v, want %v", s.U8, want)
		}
	}
}

func TestStackMeta(t *testing.T) {
	s := Stack([]*Tensor{Meta(Float32, 3, 8, 8), Meta(Float32, 3, 8, 8)})
	if !s.IsMeta() {
		t.Fatal("stack of meta tensors should be meta")
	}
	if s.Bytes() != 2*3*8*8*4 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

func TestStackRejectsMismatchedShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Stack([]*Tensor{Meta(Uint8, 2), Meta(Uint8, 3)})
}

func TestCloneIsDeep(t *testing.T) {
	a := FromF32([]float32{1, 2}, 2)
	b := a.Clone()
	b.F32[0] = 99
	if a.F32[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMeanStd(t *testing.T) {
	f := FromF32([]float32{1, 2, 3, 4}, 4)
	if m := f.Mean(); math.Abs(m-2.5) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
	if s := f.Std(); math.Abs(s-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("Std = %v", s)
	}
}

func TestNormalizeZeroMeanUnitVariance(t *testing.T) {
	// Normalizing by the tensor's own moments should yield mean~0 std~1 —
	// the property the Normalize preprocessing step exists to provide.
	raw := make([]float32, 1000)
	for i := range raw {
		raw[i] = float32(i%17) * 3.5
	}
	f := FromF32(raw, 1, 1000)
	f.Normalize([]float32{float32(f.Mean())}, []float32{float32(f.Std())})
	if m := f.Mean(); math.Abs(m) > 1e-3 {
		t.Fatalf("post-normalize mean = %v", m)
	}
	if s := f.Std(); math.Abs(s-1) > 1e-3 {
		t.Fatalf("post-normalize std = %v", s)
	}
}
