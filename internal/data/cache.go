package data

import (
	"container/list"
	"sync"
	"time"

	"lotus/internal/rng"
)

// PageCache models the OS page cache in front of the remote dataset mount:
// the first read of a file streams from storage, repeat reads within the
// cache's capacity are nearly free. This is the mechanism behind the
// caching optimizations the paper surveys (DataStalls' MinIO cache, Cachew,
// FFCV): once the working set fits, later epochs stop paying the I/O cost.
//
// The model is LRU over whole files with a byte capacity, safe for
// concurrent workers. Recency is an intrusive doubly-linked list keyed by
// the entries map, so every operation — hit, install, evict — is O(1);
// the earlier []int recency slice made each hit an O(n) scan, which
// dominated once the working set reached page-cache scale.
type PageCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	// entries maps file index -> its node in lru; lru orders recency
	// (front = least recently used, back = most recently used) and its
	// element values are *cacheEntry.
	entries map[int]*list.Element
	lru     *list.List
	hits    int
	misses  int
	// HitLatency is the read cost served from memory.
	HitLatency time.Duration
}

// cacheEntry is the lru element payload.
type cacheEntry struct {
	index int
	bytes int64
}

// NewPageCache creates a cache with the given byte capacity (0 disables
// caching: everything misses).
func NewPageCache(capacity int64) *PageCache {
	return &PageCache{
		capacity:   capacity,
		entries:    make(map[int]*list.Element),
		lru:        list.New(),
		HitLatency: 20 * time.Microsecond,
	}
}

// Delay returns the read delay for file `index` of the given size under the
// I/O model, recording the access. Hits cost HitLatency; misses pay the full
// storage delay and install the file, evicting LRU entries as needed.
func (c *PageCache) Delay(index, bytes int, m IOModel, r *rng.Stream) time.Duration {
	if c == nil {
		return m.ReadDelay(bytes, r)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[index]; ok {
		c.hits++
		c.lru.MoveToBack(el)
		return c.HitLatency
	}
	c.misses++
	if c.capacity > 0 && int64(bytes) <= c.capacity {
		for c.used+int64(bytes) > c.capacity && c.lru.Len() > 0 {
			oldest := c.lru.Remove(c.lru.Front()).(*cacheEntry)
			c.used -= oldest.bytes
			delete(c.entries, oldest.index)
		}
		c.entries[index] = c.lru.PushBack(&cacheEntry{index: index, bytes: int64(bytes)})
		c.used += int64(bytes)
	}
	return m.ReadDelay(bytes, r)
}

// Stats reports hits and misses so far.
func (c *PageCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate returns hits / (hits+misses).
func (c *PageCache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Used reports the cached bytes.
func (c *PageCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
