package data

import (
	"testing"
	"time"

	"lotus/internal/rng"
)

func TestPageCacheHitsAreFast(t *testing.T) {
	c := NewPageCache(1 << 20)
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100}
	miss := c.Delay(0, 100<<10, m, nil)
	hit := c.Delay(0, 100<<10, m, nil)
	if miss <= hit {
		t.Fatalf("miss %v should exceed hit %v", miss, hit)
	}
	if hit != c.HitLatency {
		t.Fatalf("hit delay %v, want %v", hit, c.HitLatency)
	}
	if h, ms := c.Stats(); h != 1 || ms != 1 {
		t.Fatalf("stats (%d, %d)", h, ms)
	}
}

func TestPageCacheLRUEviction(t *testing.T) {
	c := NewPageCache(300)
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100}
	c.Delay(1, 100, m, nil)
	c.Delay(2, 100, m, nil)
	c.Delay(3, 100, m, nil) // cache now holds 1,2,3
	c.Delay(1, 100, m, nil) // touch 1 -> LRU order 2,3,1
	c.Delay(4, 100, m, nil) // evicts 2
	if d := c.Delay(2, 100, m, nil); d == c.HitLatency {
		t.Fatal("entry 2 should have been evicted")
	}
	if d := c.Delay(1, 100, m, nil); d != c.HitLatency {
		t.Fatal("entry 1 should have survived (was touched)")
	}
	if c.Used() > 300 {
		t.Fatalf("cache over capacity: %d", c.Used())
	}
}

// TestPageCacheEvictionOrderInterleavedHits scripts a workload where hits
// reorder the recency list between evictions and checks every access against
// the LRU ground truth. This pins the container/list implementation to the
// exact semantics of the original slice-based one.
func TestPageCacheEvictionOrderInterleavedHits(t *testing.T) {
	c := NewPageCache(500) // room for five 100-byte files
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100}
	script := []struct {
		index int
		hit   bool
	}{
		{1, false}, {2, false}, {3, false}, {4, false}, {5, false}, // fill: LRU order 1 2 3 4 5
		{2, true},  // -> 1 3 4 5 2
		{4, true},  // -> 1 3 5 2 4
		{6, false}, // evicts 1 -> 3 5 2 4 6
		{7, false}, // evicts 3 -> 5 2 4 6 7
		{1, false}, // evicts 5 -> 2 4 6 7 1
		{3, false}, // evicts 2 -> 4 6 7 1 3
		{4, true},  // -> 6 7 1 3 4
		{5, false}, // evicts 6 -> 7 1 3 4 5
		{7, true},  // -> 1 3 4 5 7
		{2, false}, // evicts 1 -> 3 4 5 7 2
		{3, true},  // -> 4 5 7 2 3
	}
	for step, op := range script {
		d := c.Delay(op.index, 100, m, nil)
		got := d == c.HitLatency
		if got != op.hit {
			t.Fatalf("step %d: access to %d hit=%v, want hit=%v", step, op.index, got, op.hit)
		}
	}
	if h, ms := c.Stats(); h != 5 || ms != 11 {
		t.Fatalf("stats (%d hits, %d misses), want (5, 11)", h, ms)
	}
	if c.Used() != 500 {
		t.Fatalf("used %d, want 500", c.Used())
	}
}

func TestPageCacheOversizedFileNeverCached(t *testing.T) {
	c := NewPageCache(100)
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100}
	c.Delay(0, 1000, m, nil)
	if d := c.Delay(0, 1000, m, nil); d == c.HitLatency {
		t.Fatal("file larger than the cache must not be cached")
	}
	if c.Used() != 0 {
		t.Fatalf("oversized file consumed capacity: %d", c.Used())
	}
}

func TestPageCacheNilIsPassthrough(t *testing.T) {
	var c *PageCache
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100}
	if d := c.Delay(0, 100<<10, m, rng.New(1, "x")); d < time.Millisecond {
		t.Fatalf("nil cache should pass through to the IO model, got %v", d)
	}
}

func TestPageCacheZeroCapacityAlwaysMisses(t *testing.T) {
	c := NewPageCache(0)
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100}
	c.Delay(5, 100, m, nil)
	c.Delay(5, 100, m, nil)
	if c.HitRate() != 0 {
		t.Fatalf("hit rate %v with zero capacity", c.HitRate())
	}
}
