// Package data provides the synthetic datasets standing in for ImageNet,
// kits19, and MS-COCO, plus the storage I/O model for the remote-mounted
// dataset the paper's testbed uses (a ZFS zvol exported via iSCSI).
//
// Each dataset is a deterministic collection of records whose *size
// distributions* match what the paper reports (ImageNet: mean file size
// 111 KB with a 133 KB standard deviation — the stated driver of Figure 4's
// per-batch time variance). Records carry enough metadata for the
// virtual-time pipeline to model costs exactly, and can also materialize
// real encoded payloads (SJPG images) for the real-time examples.
package data

import (
	"fmt"
	"math"
	"time"

	"lotus/internal/imaging"
	"lotus/internal/rng"
)

// IOModel converts a read of n bytes into a storage delay. It models the
// paper's remote block device: per-request latency plus bandwidth-limited
// streaming, with multiplicative jitter.
type IOModel struct {
	// BaseLatency is the fixed per-read cost (network round trip + block
	// layer).
	BaseLatency time.Duration
	// BandwidthMBps is the sustained sequential throughput.
	BandwidthMBps float64
	// JitterFrac is the +/- fractional jitter applied per read.
	JitterFrac float64
}

// DefaultIO returns the iSCSI-remote-zvol-like model.
func DefaultIO() IOModel {
	return IOModel{BaseLatency: 250 * time.Microsecond, BandwidthMBps: 700, JitterFrac: 0.2}
}

// ReadDelay computes the delay for reading n bytes, drawing jitter from r.
func (m IOModel) ReadDelay(n int, r *rng.Stream) time.Duration {
	if m.BandwidthMBps <= 0 {
		return m.BaseLatency
	}
	stream := float64(n) / (m.BandwidthMBps * 1e6) // seconds
	jitter := 1.0
	if m.JitterFrac > 0 && r != nil {
		jitter = r.Uniform(1-m.JitterFrac, 1+m.JitterFrac)
	}
	d := m.BaseLatency + time.Duration(stream*jitter*float64(time.Second))
	return d
}

// ImageRecord describes one encoded image on storage.
type ImageRecord struct {
	Index     int
	FileBytes int // encoded size on disk
	Width     int // decoded width
	Height    int // decoded height
	Label     int
	Seed      int64 // content seed for materialization
}

// RawBytes returns the decoded RGB payload size.
func (r ImageRecord) RawBytes() int { return r.Width * r.Height * 3 }

// ImageDataset is a synthetic collection of encoded images.
type ImageDataset struct {
	Name    string
	Records []ImageRecord
	IO      IOModel
	Classes int
}

// ImageConfig parameterizes synthesis of an image dataset.
type ImageConfig struct {
	Name string
	// N is the number of images.
	N int
	// MeanFileKB / StdFileKB parameterize the log-normal file-size
	// distribution.
	MeanFileKB, StdFileKB float64
	// MinFileKB / MaxFileKB clip the tails.
	MinFileKB, MaxFileKB float64
	// CompressionRatio relates encoded bytes to raw RGB bytes
	// (raw = encoded * ratio). Baseline JPEG photos sit near 10:1.
	CompressionRatio float64
	// Classes is the label cardinality.
	Classes int
	Seed    int64
	IO      IOModel
}

// ImageNetConfig matches the paper's ImageNet-2012 statistics scaled to n
// images.
func ImageNetConfig(n int, seed int64) ImageConfig {
	return ImageConfig{
		Name: "imagenet-synth", N: n,
		MeanFileKB: 111, StdFileKB: 133,
		MinFileKB: 8, MaxFileKB: 2048,
		CompressionRatio: 10,
		Classes:          1000,
		Seed:             seed,
		IO:               DefaultIO(),
	}
}

// COCOConfig approximates MS-COCO's larger, less varied photos.
func COCOConfig(n int, seed int64) ImageConfig {
	return ImageConfig{
		Name: "coco-synth", N: n,
		MeanFileKB: 165, StdFileKB: 260,
		MinFileKB: 24, MaxFileKB: 2048,
		CompressionRatio: 10,
		Classes:          80,
		Seed:             seed,
		IO:               DefaultIO(),
	}
}

// NewImageDataset synthesizes a dataset from the config.
func NewImageDataset(cfg ImageConfig) *ImageDataset {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("data: dataset %q needs N > 0", cfg.Name))
	}
	sizes := rng.New(cfg.Seed, cfg.Name+"/sizes")
	labels := rng.New(cfg.Seed, cfg.Name+"/labels")
	aspects := rng.New(cfg.Seed, cfg.Name+"/aspect")
	ds := &ImageDataset{Name: cfg.Name, IO: cfg.IO, Classes: cfg.Classes}
	for i := 0; i < cfg.N; i++ {
		kb := sizes.LogNormal(cfg.MeanFileKB, cfg.StdFileKB)
		kb = math.Max(cfg.MinFileKB, math.Min(cfg.MaxFileKB, kb))
		fileBytes := int(kb * 1024)
		raw := float64(fileBytes) * cfg.CompressionRatio
		pixels := raw / 3
		aspect := aspects.Uniform(0.7, 1.5) // width/height
		w := int(math.Sqrt(pixels * aspect))
		h := int(pixels / math.Max(1, float64(w)))
		if w < 32 {
			w = 32
		}
		if h < 32 {
			h = 32
		}
		ds.Records = append(ds.Records, ImageRecord{
			Index:     i,
			FileBytes: fileBytes,
			Width:     w,
			Height:    h,
			Label:     labels.Intn(cfg.Classes),
			Seed:      cfg.Seed*1e9 + int64(i),
		})
	}
	return ds
}

// Len returns the number of images.
func (ds *ImageDataset) Len() int { return len(ds.Records) }

// Record returns the i-th image's metadata.
func (ds *ImageDataset) Record(i int) ImageRecord { return ds.Records[i] }

// Materialize synthesizes and encodes the i-th image as a real SJPG payload
// (used by the real-time examples; the virtual-time pipeline never calls it).
// Images are rendered at a reduced resolution cap to keep example runtime
// reasonable while preserving the record's nominal dimensions for costing.
func (ds *ImageDataset) Materialize(i int, maxDim int) []byte {
	rec := ds.Records[i]
	w, h := rec.Width, rec.Height
	for (w > maxDim || h > maxDim) && w > 32 && h > 32 {
		w /= 2
		h /= 2
	}
	im := imaging.SynthesizeImage(w, h, rec.Seed)
	return imaging.EncodeSJPG(im, 85)
}

// FileSizeStats returns the mean and standard deviation of encoded file
// sizes in bytes.
func (ds *ImageDataset) FileSizeStats() (mean, std float64) {
	n := float64(len(ds.Records))
	if n == 0 {
		return 0, 0
	}
	var sum, sumsq float64
	for _, r := range ds.Records {
		f := float64(r.FileBytes)
		sum += f
		sumsq += f * f
	}
	mean = sum / n
	std = math.Sqrt(math.Max(0, sumsq/n-mean*mean))
	return mean, std
}

// VolumeRecord describes one stored 3-D volume (kits19-like case).
type VolumeRecord struct {
	Index     int
	FileBytes int
	D, H, W   int
	Seed      int64
}

// RawBytes returns the in-memory float32 payload size.
func (r VolumeRecord) RawBytes() int { return r.D * r.H * r.W * 4 }

// VolumeDataset is a synthetic collection of volumes.
type VolumeDataset struct {
	Name    string
	Records []VolumeRecord
	IO      IOModel
}

// VolumeConfig parameterizes volume dataset synthesis.
type VolumeConfig struct {
	Name        string
	N           int
	MeanVoxelsM float64 // mean voxel count, millions
	StdVoxelsM  float64
	MinVoxelsM  float64
	MaxVoxelsM  float64
	Seed        int64
	IO          IOModel
}

// Kits19Config matches the MLPerf IS preprocessed kits19 cases: large
// volumes with high size variance (the driver of IS's 15.47% per-batch
// stddev and RandBalancedCrop's heavy P90 tail).
func Kits19Config(n int, seed int64) VolumeConfig {
	return VolumeConfig{
		Name: "kits19-synth", N: n,
		MeanVoxelsM: 7.5, StdVoxelsM: 1.6,
		MinVoxelsM: 1.5, MaxVoxelsM: 30,
		Seed: seed,
		IO:   DefaultIO(),
	}
}

// NewVolumeDataset synthesizes a volume dataset.
func NewVolumeDataset(cfg VolumeConfig) *VolumeDataset {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("data: dataset %q needs N > 0", cfg.Name))
	}
	sizes := rng.New(cfg.Seed, cfg.Name+"/sizes")
	shapes := rng.New(cfg.Seed, cfg.Name+"/shapes")
	ds := &VolumeDataset{Name: cfg.Name, IO: cfg.IO}
	for i := 0; i < cfg.N; i++ {
		vm := sizes.LogNormal(cfg.MeanVoxelsM, cfg.StdVoxelsM)
		vm = math.Max(cfg.MinVoxelsM, math.Min(cfg.MaxVoxelsM, vm))
		voxels := vm * 1e6
		// kits19 cases are anisotropic: D varies much more than H/W.
		hw := shapes.Uniform(160, 260)
		d := voxels / (hw * hw)
		if d < 16 {
			d = 16
		}
		rec := VolumeRecord{
			Index: i,
			D:     int(d), H: int(hw), W: int(hw),
			Seed: cfg.Seed*1e9 + int64(i),
		}
		rec.FileBytes = rec.RawBytes() // .npy stores raw float32
		ds.Records = append(ds.Records, rec)
	}
	return ds
}

// Len returns the number of volumes.
func (ds *VolumeDataset) Len() int { return len(ds.Records) }

// Record returns the i-th volume's metadata.
func (ds *VolumeDataset) Record(i int) VolumeRecord { return ds.Records[i] }

// Materialize synthesizes the i-th volume at a capped resolution for real
// execution.
func (ds *VolumeDataset) Materialize(i int, maxDim int) *imaging.Volume {
	rec := ds.Records[i]
	d, h, w := rec.D, rec.H, rec.W
	for (d > maxDim || h > maxDim || w > maxDim) && d > 8 && h > 8 && w > 8 {
		d /= 2
		h /= 2
		w /= 2
	}
	return imaging.SynthesizeVolume(maxInt(1, d), maxInt(1, h), maxInt(1, w), rec.Seed)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
