package data

import (
	"math"
	"testing"
	"time"

	"lotus/internal/imaging"
	"lotus/internal/rng"
)

func TestImageNetFileSizeDistribution(t *testing.T) {
	ds := NewImageDataset(ImageNetConfig(20000, 1))
	mean, std := ds.FileSizeStats()
	// Paper: mean 111 KB, stddev 133 KB. Clipping trims the tails, so allow
	// a generous band but require the high-variance character.
	if mean < 85e3 || mean > 135e3 {
		t.Fatalf("mean file size %.0f B, want ~111 KB", mean)
	}
	if std < 80e3 || std > 170e3 {
		t.Fatalf("file size stddev %.0f B, want ~133 KB", std)
	}
}

func TestImageDatasetDeterministic(t *testing.T) {
	a := NewImageDataset(ImageNetConfig(100, 7))
	b := NewImageDataset(ImageNetConfig(100, 7))
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across identical configs", i)
		}
	}
	c := NewImageDataset(ImageNetConfig(100, 8))
	same := 0
	for i := range a.Records {
		if a.Records[i].FileBytes == c.Records[i].FileBytes {
			same++
		}
	}
	if same == len(a.Records) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestImageRecordGeometryConsistent(t *testing.T) {
	ds := NewImageDataset(ImageNetConfig(500, 3))
	for _, r := range ds.Records {
		if r.Width < 32 || r.Height < 32 {
			t.Fatalf("record %d too small: %dx%d", r.Index, r.Width, r.Height)
		}
		// Raw size should be roughly CompressionRatio x encoded size.
		ratio := float64(r.RawBytes()) / float64(r.FileBytes)
		if ratio < 3 || ratio > 30 {
			t.Fatalf("record %d compression ratio %.1f implausible", r.Index, ratio)
		}
		if r.Label < 0 || r.Label >= 1000 {
			t.Fatalf("record %d label %d out of range", r.Index, r.Label)
		}
	}
}

func TestIOModelDelay(t *testing.T) {
	m := IOModel{BaseLatency: time.Millisecond, BandwidthMBps: 100, JitterFrac: 0}
	// 100 MB at 100 MB/s = 1 s + 1 ms base.
	d := m.ReadDelay(100e6, nil)
	want := time.Second + time.Millisecond
	if d != want {
		t.Fatalf("ReadDelay = %v, want %v", d, want)
	}
	// Larger reads take longer.
	if m.ReadDelay(1e6, nil) >= m.ReadDelay(10e6, nil) {
		t.Fatal("delay not monotone in bytes")
	}
}

func TestIOModelJitterBounded(t *testing.T) {
	m := DefaultIO()
	r := rng.New(1, "io")
	base := IOModel{BaseLatency: m.BaseLatency, BandwidthMBps: m.BandwidthMBps}.ReadDelay(111<<10, nil)
	for i := 0; i < 200; i++ {
		d := m.ReadDelay(111<<10, r)
		lo := m.BaseLatency + time.Duration(float64(base-m.BaseLatency)*(1-m.JitterFrac))
		hi := m.BaseLatency + time.Duration(float64(base-m.BaseLatency)*(1+m.JitterFrac))
		if d < lo-time.Microsecond || d > hi+time.Microsecond {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestMaterializeImageDecodes(t *testing.T) {
	ds := NewImageDataset(ImageNetConfig(3, 2))
	blob := ds.Materialize(0, 128)
	im, err := imaging.DecodeSJPG(blob)
	if err != nil {
		t.Fatalf("materialized blob does not decode: %v", err)
	}
	if im.W > 128 || im.H > 128 {
		t.Fatalf("materialized image %dx%d exceeds cap", im.W, im.H)
	}
}

func TestKits19VolumesLargeAndVariable(t *testing.T) {
	ds := NewVolumeDataset(Kits19Config(300, 4))
	var sum, sumsq float64
	for _, r := range ds.Records {
		if r.D < 16 || r.H < 100 || r.W < 100 {
			t.Fatalf("volume %d implausibly small: %dx%dx%d", r.Index, r.D, r.H, r.W)
		}
		mb := float64(r.RawBytes()) / 1e6
		sum += mb
		sumsq += mb * mb
	}
	n := float64(ds.Len())
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if mean < 10 || mean > 80 {
		t.Fatalf("mean volume %.1f MB out of expected range", mean)
	}
	if std/mean < 0.10 {
		t.Fatalf("volume size CV %.2f too low — RandBalancedCrop cost still needs size spread", std/mean)
	}
}

func TestVolumeMaterializeCapped(t *testing.T) {
	ds := NewVolumeDataset(Kits19Config(2, 5))
	v := ds.Materialize(0, 32)
	if v.D > 32 || v.H > 32 || v.W > 32 {
		t.Fatalf("materialized volume %dx%dx%d exceeds cap", v.D, v.H, v.W)
	}
}

func TestCOCOBiggerThanImageNetOnAverage(t *testing.T) {
	in := NewImageDataset(ImageNetConfig(5000, 6))
	coco := NewImageDataset(COCOConfig(5000, 6))
	im, _ := in.FileSizeStats()
	cm, _ := coco.FileSizeStats()
	if cm <= im {
		t.Fatalf("COCO mean %.0f should exceed ImageNet mean %.0f", cm, im)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N=0")
		}
	}()
	NewImageDataset(ImageConfig{Name: "x", N: 0})
}
